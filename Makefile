# Tier-1 gate: `make ci` must pass before every commit. It is what the
# repository's CI runs: vet, full build, full test suite, and the race
# detector over the concurrency-bearing packages (the parallel experiment
# pool, the event engine it drives, and the workload parser the fuzz target
# exercises).

GO ?= go

.PHONY: ci vet build test race audit fuzz bench

ci: vet build test race audit

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/workload

# Packet-conservation audit sweep: every scheme in the catalogue runs under
# the internal/audit invariant checker and must produce a clean report.
audit:
	$(GO) test -run 'TestAudit' ./internal/audit ./internal/experiments

# Short fuzz pass over the CDF text parser (CI smoke; raise -fuzztime locally).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCDFParse -fuzztime=30s ./internal/workload

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
