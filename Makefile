# Tier-1 gate: `make ci` must pass before every commit. It is what the
# repository's CI runs: vet, full build, full test suite, and the race
# detector over the concurrency-bearing packages (the parallel experiment
# pool, the event engine it drives, and the workload parser the fuzz target
# exercises).

GO ?= go

.PHONY: ci vet build test race fuzz bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/workload

# Short fuzz pass over the CDF text parser (CI smoke; raise -fuzztime locally).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCDFParse -fuzztime=30s ./internal/workload

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
