# Tier-1 gate: `make ci` must pass before every commit. It is what the
# repository's CI runs: lint (gofmt + vet), full build, full test suite, the
# race detector over the concurrency-bearing packages (the parallel
# experiment pool, the event engine it drives, and the workload parser the
# fuzz target exercises), the packet-conservation audit sweep, the
# golden-digest gate under both event schedulers, and the allocation
# regression smoke (bench-smoke).

GO ?= go

.PHONY: ci lint vet build test race audit golden shard-golden impair degrade fuzz bench bench-smoke scale scale-smoke scenario

ci: lint build test race audit golden shard-golden impair bench-smoke scale-smoke scenario

# gofmt gate (fails listing any unformatted file) + go vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/netem ./internal/workload

# Packet-conservation audit sweep: every scheme in the catalogue runs under
# the internal/audit invariant checker and must produce a clean report.
audit:
	$(GO) test -run 'TestAudit' ./internal/audit ./internal/experiments

# Golden-digest gate, one explicit invocation per event scheduler: the pinned
# behavior digests must be byte-identical under the reference heap and the
# timing wheel (the default). A drift here is a scheduler bug, not a tuning
# knob — see internal/experiments/golden_test.go.
golden:
	$(GO) test -run 'TestGoldenDigests' ./internal/experiments -sched=heap
	$(GO) test -run 'TestGoldenDigests' ./internal/experiments -sched=wheel

# Sharded-engine gate, race-enabled: the golden digest matrix across
# shards x scheduler x pool (byte-identical to the pinned sequential digests),
# the record-level sharded-vs-sequential differential on a multi-pod fabric,
# the per-shard + global conservation audit, and the ShardGroup / partitioner
# unit tests. Any divergence is a synchronization bug — see DESIGN.md §13.
shard-golden:
	$(GO) test -race -run 'TestShardGoldenMatrix|TestShardedDifferential|TestShardedDeterminism|TestShardedAuditSweep|TestShardedEventsAccounting' \
		./internal/experiments
	$(GO) test -race -run 'TestShard|TestAtHandlerFrom|TestFlushDeterministicOrder' ./internal/sim ./internal/netem

# Impairment-layer gate: the timeline-parser seed corpus (the checked-in
# fuzz inputs as a plain test), the impaired-run determinism contract across
# both schedulers, and the short loss-sweep smoke (one scheme per transport
# family completes under 5% injected loss with a clean audit).
impair:
	$(GO) test -run 'TestImpairmentTimelineSeeds|TestImpairedGoldenDeterminism|TestLossSweepSmoke|TestImpairmentDropsExactlyOnce' \
		./internal/netem ./internal/experiments

# Degradation sweep (loss rate x scheme FCT/goodput table plus link-flap
# recovery), written as JSON for plotting.
degrade:
	mkdir -p results
	$(GO) run ./cmd/aeolusbench -exp degrade -json > results/degradation.json
	@echo "wrote results/degradation.json"

# Short fuzz pass over the CDF text parser, the scheduler differential and
# the impairment-timeline parser (CI smoke; raise -fuzztime locally).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCDFParse -fuzztime=30s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzSchedulerEquivalence -fuzztime=30s ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzImpairmentTimeline -fuzztime=30s ./internal/netem
	$(GO) test -run=^$$ -fuzz=FuzzScenarioRoundTrip -fuzztime=30s ./internal/scenario

# Full benchmark ledger: micro (event engine, qdiscs, port path) and macro
# (per-scheme packets/sec) benchmarks, folded into BENCH_micro.json with the
# committed pre-pooling baseline preserved for comparison.
bench:
	( $(GO) test -bench=. -benchtime=20000x -benchmem -run=^$$ ./internal/sim ./internal/netem ./internal/transport/rdbase ./internal/flatmap ; \
	  $(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./internal/experiments ) \
	| $(GO) run ./cmd/benchjson -o BENCH_micro.json

# Allocation-regression smoke for CI: the port-path allocation and packet-slab
# churn gates (committed allocs/op + ns/op ceilings), the event-scheduler
# hot-path and cold-pending-set gates (committed schedule/cancel ceilings, both
# schedulers, cache-hot and out-of-cache), the flow-table lookup gate, one
# quick iteration of the hot-path benchmarks, and the race detector over the
# packet-pool tests.
bench-smoke:
	$(GO) test -bench='BenchmarkPortPath|BenchmarkPacketSlabChurn' -benchtime=100x -benchmem \
		-run='TestPortPathAllocs|TestPacketSlabChurnGate' ./internal/netem
	$(GO) test -bench=. -benchtime=1x -benchmem \
		-run='TestSchedulerHotPathGate|TestEngineScheduleColdGate' ./internal/sim
	$(GO) test -bench=BenchmarkFlowTableLookup -benchtime=100x -benchmem \
		-run=TestFlowTableLookupGate ./internal/transport/rdbase
	$(GO) test -run=TestCollectorScratchAllocs ./internal/stats
	$(GO) test -race -run=TestPool ./internal/netem

# Scenario gate: the scenario package's own tests (round-trip identity, the
# checked-in fuzz seed corpus as plain tests), every checked-in example under
# examples/scenarios parsed + semantically validated + digest-pinned with the
# smallest example run end to end against the golden behavior digest, and the
# pinned scenario digests of every registry experiment and golden run.
scenario:
	$(GO) test ./internal/scenario
	$(GO) test -run 'TestExampleScenario|TestRegistryScenarioDigests|TestGoldenScenarioDigests|TestScenarioDrivenGolden' \
		./internal/experiments

# Full scale sweep: the open-loop {64,256,1024}-host x {0.4,0.8}-load grid,
# folded into BENCH_scale.json with the committed baseline preserved. Cells
# run serially (wall-clock and RSS are process-wide), so expect minutes.
scale:
	$(GO) run ./cmd/aeolusscale -o BENCH_scale.json

# Scale-regression smoke for CI: the smallest fabric of the grid, both load
# points, gated against the committed BENCH_scale.json baseline (events/sec
# floor, heap / scheduler-pressure / per-flow-state ceilings), the same
# fabric run sharded (TestScaleSmokeSharded matches the -run pattern), and
# the ledger gate holding the committed h1024 cells to the per-flow state
# ceiling and the stamped slab geometry.
scale-smoke:
	$(GO) test -run='TestScaleSmoke|TestScaleLedgerStateCeiling' -v ./internal/experiments
