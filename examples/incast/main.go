// Incast: the paper's hardware-testbed scenario (§5.1, Figs. 8/11) as a
// runnable example — a 7-to-1 incast of 40 KB messages on an 8-host 10 Gbps
// single-switch fabric, under Homa and Homa+Aeolus.
//
// Original Homa prioritizes the unscheduled first-window packets, so the
// synchronized burst overflows the shared buffer and drops scheduled
// packets, stranding messages until the 10 ms retransmission timeout.
// Aeolus drops only unscheduled packets (at the 6 KB threshold), keeps
// scheduled packets safe, and recovers first-window losses via probe +
// selective ACKs one RTT later — collapsing the tail.
//
// Run it with:
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/transport/homa"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func run(aeolus bool) (stats.Summary, int, [netem.NumDropReasons]uint64) {
	opts := homa.DefaultOptions()
	// Homa's overcommitment trades buffer for utilization; on this shallow
	// 100 KB testbed switch, 3 concurrently granted messages (3 x BDP ≈
	// 54 KB of scheduled in-flight) is what the buffer affords.
	opts.Overcommit = 3
	if aeolus {
		opts.Aeolus = core.DefaultOptions()
	}
	eng := sim.NewEngine()
	// A deliberately tight 100 KB shared buffer makes the 7-way blind
	// burst (7 x BDP ≈ 126 KB of unscheduled packets) overflow, as the
	// paper's testbed switch does at full scale.
	net := netem.BuildSingleSwitch(eng, 8, netem.TopoConfig{
		HostRate:  10 * sim.Gbps,
		LinkDelay: 3 * sim.Microsecond,
		MakeQdisc: homa.QdiscFactory(opts, 100<<10),
	})
	env := transport.NewEnv(net, netem.MaxPayload)
	proto := homa.New(env, opts)

	trace := (&workload.IncastConfig{
		Fanin: 7, Receiver: 0, Hosts: 8, MsgSize: 60_000,
		Seed: 42, StartAt: sim.Time(10 * sim.Microsecond),
	}).Generate()
	transport.Runner(env, proto, trace, sim.Time(2*sim.Second))
	return stats.Summarize(env.FCT.Records()), env.FCT.TimeoutFlows(),
		netem.DropTotals(net.SwitchPorts())
}

func main() {
	fmt.Println("7-to-1 incast, 60KB messages, 10Gbps, 100KB shared switch buffer")
	fmt.Println()
	for _, aeolus := range []bool{false, true} {
		s, timeouts, drops := run(aeolus)
		name := "Homa       "
		if aeolus {
			name = "Homa+Aeolus"
		}
		fmt.Printf("%s  MCT p50 %8v  max %10v  timeout-flows %d\n",
			name, s.P50, s.Max, timeouts)
		fmt.Printf("             drops: tail=%d (any class)  selective=%d (unscheduled only)\n\n",
			drops[netem.DropTailFull], drops[netem.DropSelective])
	}
	fmt.Println("Homa's tail is bound to the 10ms RTO; Aeolus recovers in ~1 RTT.")
}
