// Quickstart: the smallest complete Aeolus simulation.
//
// Three hosts hang off one 10 Gbps switch whose ports run Aeolus selective
// dropping. Host 0 and host 1 each send a message to host 2 over
// ExpressPass+Aeolus; the program prints each flow's completion time and
// whether it finished inside the first RTT — the paper's headline benefit
// for small flows.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/transport/expresspass"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func main() {
	// 1. Transport options: ExpressPass with the Aeolus building block at
	//    the paper's default 6 KB selective-dropping threshold.
	opts := expresspass.DefaultOptions()
	opts.Aeolus = core.DefaultOptions()

	// 2. Build the fabric. The qdisc factory installs the Aeolus switch
	//    queues (shaped credit queue + selective dropping) on every port.
	eng := sim.NewEngine()
	net := netem.BuildSingleSwitch(eng, 3, netem.TopoConfig{
		HostRate:  10 * sim.Gbps,
		LinkDelay: 3 * sim.Microsecond,
		MakeQdisc: expresspass.QdiscFactory(opts, netem.DefaultBuffer),
	})
	fmt.Printf("fabric: 3 hosts @10Gbps, base RTT %v, BDP %d bytes\n\n",
		net.BaseRTT, net.BDPBytes())

	// 3. Attach the protocol and describe the flows.
	env := transport.NewEnv(net, netem.MaxPayload)
	proto := expresspass.New(env, opts)
	env.Done = func(f *transport.Flow, rec stats.FlowRecord) {
		in1 := ""
		if rec.FCT() <= net.BaseRTT {
			in1 = "  — finished within the first RTT (pre-credit burst only)"
		}
		fmt.Printf("flow %d: %6d bytes %d->%d  FCT %v%s\n",
			f.ID, f.Size, f.Src, f.Dst, rec.FCT(), in1)
	}

	trace := []workload.FlowSpec{
		// A small flow: one BDP covers it, so the Aeolus burst completes it
		// in half an RTT without waiting for any credit.
		{ID: 1, Src: 0, Dst: 2, Size: 12_000, Start: sim.Time(10 * sim.Microsecond)},
		// A larger flow: the burst covers the first BDP, credits pace the rest.
		{ID: 2, Src: 1, Dst: 2, Size: 400_000, Start: sim.Time(12 * sim.Microsecond)},
	}

	// 4. Run to completion.
	transport.Runner(env, proto, trace, sim.Time(sim.Second))

	fmt.Printf("\ndelivered %d payload bytes, transfer efficiency %.3f\n",
		env.Meter.DeliveredPayload, env.Meter.Efficiency())
}
