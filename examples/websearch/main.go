// Websearch: a realistic datacenter workload across all three transports.
//
// A 64-host two-tier 100G Clos carries Web Search traffic (the DCTCP
// distribution) at 40% core load under ExpressPass, Homa and NDP, each with
// and without the Aeolus building block. The program prints the small-flow
// FCT profile per scheme — the paper's Figs. 9/12/14 condensed into one run.
//
// It also demonstrates the Fig. 5 insight: the per-scheme drop counters
// show that Aeolus never discards a scheduled packet, so the proactive
// transports keep their deterministic core while newly arriving flows use
// the first RTT.
//
// Run it with:
//
//	go run ./examples/websearch
package main

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Budget = 48 << 20
	cfg.Seed = 7

	wl := workload.WebSearch
	fmt.Printf("Web Search at 40%% core load, 64 hosts @100G (two-tier Clos)\n\n")
	fmt.Printf("%-22s %10s %10s %10s %10s %8s\n",
		"scheme", "p50/us", "p99/us", "mean/us", "in1RTT", "schedDrop")

	for _, id := range []string{"xpass", "xpass+aeolus", "homa", "homa+aeolus", "ndp", "ndp+aeolus"} {
		r := experiments.Run(cfg, experiments.RunSpec{
			Scheme:   experiments.SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
			Topo:     experiments.TopoLeafSpine,
			Workload: wl, CoreLoad: 0.4,
			Deadline: sim.Duration(sim.Second),
		})
		// Scheduled packets must survive wherever Aeolus is active: only
		// unscheduled packets are ever selectively dropped.
		fmt.Printf("%-22s %10s %10s %10s %10.3f %8d\n",
			r.Scheme,
			stats.FormatDur(r.Small.P50), stats.FormatDur(r.Small.P99),
			stats.FormatDur(r.Small.Mean), r.FirstRTTFrac,
			r.Drops[0]) // tail drops hit scheduled packets; selective never does
	}
	fmt.Println("\nin1RTT = fraction of 0-100KB flows finishing within one base RTT.")
	fmt.Println("schedDrop = full-buffer tail drops (can hit scheduled packets);")
	fmt.Println("Aeolus's selective drops discard unscheduled packets only.")
}
