// Threshold sweep: the §5.5 parameter-sensitivity study (Figs. 15/16) as a
// runnable example.
//
// A 16-to-1 burst of 200 KB messages hits one 100G port under
// ExpressPass+Aeolus while the selective dropping threshold sweeps from one
// packet to 96 KB. Small thresholds keep the queue — and therefore the
// latency of scheduled packets — tiny but discard more of the first-RTT
// burst; large thresholds admit the whole burst but rebuild the very queues
// proactive transport exists to avoid. The paper's conclusion, visible in
// the output: ~4 packets (6 KB) already captures nearly all of the
// first-RTT throughput.
//
// Run it with:
//
//	go run ./examples/threshold_sweep
package main

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func main() {
	cfg := experiments.DefaultConfig()
	fmt.Println("16-to-1 incast, 200KB per sender, one 100G switch, ExpressPass+Aeolus")
	fmt.Println()
	fmt.Printf("%-13s %12s %12s %12s %12s\n",
		"threshold", "meanMCT/us", "maxMCT/us", "selDrops", "schedDrops")
	for _, th := range []int64{1538, 3 << 10, 6 << 10, 12 << 10, 24 << 10, 48 << 10, 96 << 10} {
		r := experiments.Run(cfg, experiments.RunSpec{
			Scheme: experiments.SchemeSpec{ID: "xpass+aeolus", Threshold: th, Seed: 1},
			Topo:   experiments.TopoMicro,
			Incast: &workload.IncastConfig{
				Fanin: 16, Receiver: 0, MsgSize: 200_000, Seed: 1,
				StartAt: sim.Time(10 * sim.Microsecond),
			},
			Deadline: sim.Duration(sim.Second),
		})
		fmt.Printf("%5.1f KB      %12s %12s %12d %12d\n",
			float64(th)/1024,
			stats.FormatDur(r.All.Mean), stats.FormatDur(r.All.Max),
			r.Drops[1], r.Drops[0])
	}
	fmt.Println("\nScheduled packets are never selectively dropped at any threshold;")
	fmt.Println("the trade is first-RTT admission (higher threshold) against queueing.")
}
