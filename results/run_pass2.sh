#!/bin/bash
# Second pass: experiments touched by the Homa spraying + per-port RED +
# tombstone fixes, plus the 100KB testbed buffer and the ablation.
set -u
cd /root/repo
BIN=/tmp/aeolusbench
go build -o $BIN ./cmd/aeolusbench
run() { echo "=== $1 (budget ${2}MiB) ==="; $BIN -exp "$1" -budget "$2" 2>&1; echo; }
{
run fig8     64
run fig11    64
run fig4     1024
run table1   1024
run fig12    1024
run table3   1024
run fig13    512
run fig1     512
run fig17    256
run fig18    256
run ablation 512
} > /root/repo/results/pass2_results.txt
echo DONE >> /root/repo/results/pass2_results.txt
