#!/bin/bash
# Final reproduction pass: per-experiment budgets sized to the experiment's
# cost profile (fat-tree runs are ~6x the per-byte cost of leaf-spine).
set -u
cd /root/repo
BIN=/tmp/aeolusbench
go build -o $BIN ./cmd/aeolusbench
run() { echo "=== $1 (budget ${2}MiB) ==="; $BIN -exp "$1" -budget "$2" 2>&1; echo; }
{
run fig2   16
run fig8   64
run fig11  64
run fig15  64
run fig16  64
run table5 64
run fig17  256
run fig4   1024
run table1 1024
run fig12  1024
run table3 1024
run fig13  512
run fig14  512
run fig1   512
run fig3   512
run fig9   512
run fig10  256
run table4 512
run fig18  256
} > /root/repo/results/full_results.txt
echo DONE >> /root/repo/results/full_results.txt
