module github.com/aeolus-transport/aeolus

go 1.24
