package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func rec(id uint64, size int64, start, finish sim.Time, ideal sim.Duration) FlowRecord {
	return FlowRecord{ID: id, Size: size, Start: start, Finish: finish, IdealFCT: ideal}
}

func TestFlowRecordBasics(t *testing.T) {
	r := rec(1, 1000, sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond), 10*sim.Microsecond)
	if r.FCT() != 20*sim.Microsecond {
		t.Fatalf("FCT = %v, want 20us", r.FCT())
	}
	if r.Slowdown() != 2 {
		t.Fatalf("Slowdown = %v, want 2", r.Slowdown())
	}
	r.IdealFCT = 0
	if r.Slowdown() != 1 {
		t.Fatalf("Slowdown with zero ideal = %v, want 1", r.Slowdown())
	}
}

func TestSummarize(t *testing.T) {
	c := &FCTCollector{}
	for i := 1; i <= 100; i++ {
		c.Add(rec(uint64(i), 1000, 0, sim.Time(i)*sim.Time(sim.Microsecond), sim.Microsecond))
	}
	s := Summarize(c.Records())
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.P50 != 50*sim.Microsecond {
		t.Fatalf("P50 = %v, want 50us", s.P50)
	}
	if s.P99 != 99*sim.Microsecond {
		t.Fatalf("P99 = %v, want 99us", s.P99)
	}
	if s.Max != 100*sim.Microsecond {
		t.Fatalf("Max = %v, want 100us", s.Max)
	}
	if s.Mean != sim.Duration(50.5*float64(sim.Microsecond)) {
		t.Fatalf("Mean = %v, want 50.5us", s.Mean)
	}
	if s.P99Slowdown != 99 {
		t.Fatalf("P99Slowdown = %v, want 99", s.P99Slowdown)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestFilter(t *testing.T) {
	c := &FCTCollector{}
	sizes := []int64{50, 100e3, 500e3, 2e6}
	for i, sz := range sizes {
		c.Add(rec(uint64(i), sz, 0, sim.Time(sim.Microsecond), sim.Microsecond))
	}
	if got := len(c.Filter(0, 100e3)); got != 1 {
		t.Fatalf("small bucket = %d, want 1", got)
	}
	if got := len(c.Filter(100e3, 1e6)); got != 2 {
		t.Fatalf("mid bucket = %d, want 2", got)
	}
	if got := len(c.Filter(1e6, 0)); got != 1 {
		t.Fatalf("large bucket = %d, want 1", got)
	}
}

func TestTimeoutFlows(t *testing.T) {
	c := &FCTCollector{}
	r := rec(1, 10, 0, 1, 1)
	r.Timeouts = 2
	c.Add(r)
	c.Add(rec(2, 10, 0, 1, 1))
	if got := c.TimeoutFlows(); got != 1 {
		t.Fatalf("TimeoutFlows = %d, want 1", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		fcts := make([]sim.Duration, len(raw))
		for i, v := range raw {
			fcts[i] = sim.Duration(math.Abs(float64(v))) + 1
		}
		sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
		last := sim.Duration(0)
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
			q := quantileDur(fcts, p)
			if q < last || q < fcts[0] || q > fcts[len(fcts)-1] {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFCTCDF(t *testing.T) {
	recs := []FlowRecord{
		rec(1, 10, 0, sim.Time(2*sim.Microsecond), 1),
		rec(2, 10, 0, sim.Time(sim.Microsecond), 1),
	}
	cdf := FCTCDF(recs)
	if len(cdf) != 2 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0][0] != 1 || cdf[0][1] != 0.5 {
		t.Fatalf("first point = %v", cdf[0])
	}
	if cdf[1][0] != 2 || cdf[1][1] != 1 {
		t.Fatalf("second point = %v", cdf[1])
	}
}

func TestByteMeter(t *testing.T) {
	m := &ByteMeter{}
	if m.Efficiency() != 1 {
		t.Fatal("empty meter efficiency should be 1")
	}
	m.SentPayload = 1000
	m.DeliveredPayload = 900
	if m.Efficiency() != 0.9 {
		t.Fatalf("efficiency = %v", m.Efficiency())
	}
	// 900 bytes over 1 µs at 10 Gbps: 7200 bits / 10000 bits = 0.72.
	if g := m.Goodput(sim.Microsecond, 10*sim.Gbps); math.Abs(g-0.72) > 1e-9 {
		t.Fatalf("goodput = %v, want 0.72", g)
	}
	if m.Goodput(0, 10*sim.Gbps) != 0 {
		t.Fatal("zero-span goodput should be 0")
	}
}

func TestQueueSampler(t *testing.T) {
	var s QueueSampler
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("zero sampler not zero")
	}
	s.Observe(100)
	s.Observe(300)
	if s.Mean() != 200 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 300 {
		t.Fatalf("max = %v", s.Max())
	}
	s.ObserveMax(500)
	if s.Max() != 500 {
		t.Fatalf("max after high-water = %v", s.Max())
	}
}

func TestUtilizationMeter(t *testing.T) {
	var u UtilizationMeter
	u.Start(1000, sim.Time(0))
	// 1250 bytes in 1 µs at 10 Gbps = 10000 bits / 10000 = 1.0.
	got := u.Stop(2250, sim.Time(sim.Microsecond), 10*sim.Gbps)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
	if u.Stop(2250, sim.Time(0), 10*sim.Gbps) != 0 {
		t.Fatal("zero-span utilization should be 0")
	}
}

func TestFormatDur(t *testing.T) {
	if got := FormatDur(1500 * sim.Nanosecond); got != "1.50" {
		t.Fatalf("FormatDur = %q", got)
	}
}

// TestCollectorSummarizeMatches pins the collector's scratch-reusing summary
// and filter paths to the allocating package-level reference.
func TestCollectorSummarizeMatches(t *testing.T) {
	c := &FCTCollector{}
	for i := 1; i <= 500; i++ {
		c.Add(rec(uint64(i), int64(i*997%3000), 0, sim.Time(i)*sim.Time(sim.Microsecond), sim.Microsecond))
	}
	for _, bucket := range [][2]int64{{0, 0}, {0, 1000}, {1000, 2500}, {2500, 0}} {
		got := c.Summarize(c.Filter(bucket[0], bucket[1]))
		var want Summary
		{
			// Reference: independent filter + allocating summary.
			var out []FlowRecord
			for _, r := range c.Records() {
				if r.Size >= bucket[0] && (bucket[1] <= 0 || r.Size < bucket[1]) {
					out = append(out, r)
				}
			}
			want = Summarize(out)
		}
		if got != want {
			t.Fatalf("bucket %v: collector summary %+v != reference %+v", bucket, got, want)
		}
	}
}

// TestCollectorScratchAllocs is the bench-smoke alloc ceiling for the
// collector's hot paths: with capacity reserved, Add allocates nothing, and
// once the scratch buffers are warm, Filter and Summarize allocate nothing
// either — collector footprint stays O(flows), not O(flows × metric passes).
func TestCollectorScratchAllocs(t *testing.T) {
	const n = 2000
	c := &FCTCollector{}
	c.Reserve(n)
	i := 0
	if avg := testing.AllocsPerRun(n, func() {
		i++
		c.Add(rec(uint64(i), int64(i%3000), 0, sim.Time(i)*sim.Time(sim.Microsecond), sim.Microsecond))
	}); avg > 0.01 {
		t.Errorf("Add after Reserve: %.3f allocs/op, want 0", avg)
	}
	c.Summarize(c.Filter(0, 0)) // warm the scratch buffers
	if avg := testing.AllocsPerRun(50, func() {
		c.Summarize(c.Filter(0, 1500))
	}); avg > 0.01 {
		t.Errorf("warm Filter+Summarize: %.3f allocs/op, want 0", avg)
	}
}
