// Package stats collects and summarizes simulation results: flow completion
// times with size-bucketed percentiles and slowdowns, transfer efficiency,
// goodput, queue-length samplers and link-utilization meters — the metrics
// of §5.1 of the Aeolus paper.
package stats

import (
	"fmt"
	"math"
	"slices"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// FlowRecord captures one completed flow.
type FlowRecord struct {
	ID       uint64
	Size     int64        // application bytes
	Start    sim.Time     // injection instant
	Finish   sim.Time     // last payload byte delivered
	IdealFCT sim.Duration // FCT of the flow alone on its path
	Timeouts int          // retransmission timeouts the flow suffered
}

// FCT returns the flow completion time.
func (r *FlowRecord) FCT() sim.Duration { return r.Finish.Sub(r.Start) }

// Slowdown returns FCT normalized by the ideal FCT (≥ 1 in a correct run,
// up to rounding).
func (r *FlowRecord) Slowdown() float64 {
	if r.IdealFCT <= 0 {
		return 1
	}
	return float64(r.FCT()) / float64(r.IdealFCT)
}

// FCTCollector accumulates completed flows. A collector belongs to one
// simulation run (the harness builds one per Env) and is not safe for
// concurrent use; the filter and summary paths reuse internal scratch
// buffers so metric extraction does not grow the heap with the flow count.
type FCTCollector struct {
	records []FlowRecord

	// Scratch buffers reused across Filter/Summarize/CDF calls so the
	// metric-collection pass after a run allocates O(1) once warm. Their
	// contents are only valid until the next call that uses them.
	scratch []FlowRecord
	fctBuf  []sim.Duration
	slowBuf []float64
}

// Reserve pre-sizes the collector for n flows, so a run with a known trace
// length performs no append growth during the simulation. It never shrinks.
func (c *FCTCollector) Reserve(n int) {
	if n > cap(c.records)-len(c.records) {
		grown := make([]FlowRecord, len(c.records), len(c.records)+n)
		copy(grown, c.records)
		c.records = grown
	}
}

// Add records a completed flow.
func (c *FCTCollector) Add(r FlowRecord) { c.records = append(c.records, r) }

// Len returns the number of completed flows.
func (c *FCTCollector) Len() int { return len(c.records) }

// Records exposes the raw records (not a copy; do not mutate).
func (c *FCTCollector) Records() []FlowRecord { return c.records }

// Filter returns the records with minSize ≤ Size < maxSize. maxSize ≤ 0
// means unbounded. The returned slice aliases an internal scratch buffer:
// it is valid until the next Filter call and must not be mutated.
func (c *FCTCollector) Filter(minSize, maxSize int64) []FlowRecord {
	out := c.scratch[:0]
	for _, r := range c.records {
		if r.Size >= minSize && (maxSize <= 0 || r.Size < maxSize) {
			out = append(out, r)
		}
	}
	c.scratch = out
	return out
}

// Summarize digests a record set (typically c.Records or a Filter result)
// using the collector's scratch buffers, so repeated summaries allocate
// nothing once warm. The records need not belong to the collector.
func (c *FCTCollector) Summarize(records []FlowRecord) Summary {
	s, fcts, slows := summarizeInto(records, c.fctBuf, c.slowBuf)
	c.fctBuf, c.slowBuf = fcts, slows
	return s
}

// TimeoutFlows counts flows that suffered at least one timeout (Fig. 13).
func (c *FCTCollector) TimeoutFlows() int {
	n := 0
	for _, r := range c.records {
		if r.Timeouts > 0 {
			n++
		}
	}
	return n
}

// Summary is a digest of a set of FCT samples.
type Summary struct {
	N                              int
	Mean, P50, P90, P99, P999, Max sim.Duration
	MeanSlowdown, P99Slowdown      float64
}

// Summarize digests a record set. An empty set yields a zero Summary.
func Summarize(records []FlowRecord) Summary {
	s, _, _ := summarizeInto(records, nil, nil)
	return s
}

// summarizeInto is the shared summary kernel: it digests records using (and
// returning, for reuse) the provided scratch buffers.
func summarizeInto(records []FlowRecord, fcts []sim.Duration, slows []float64) (Summary, []sim.Duration, []float64) {
	if len(records) == 0 {
		return Summary{}, fcts, slows
	}
	if cap(fcts) < len(records) {
		fcts = make([]sim.Duration, len(records))
	} else {
		fcts = fcts[:len(records)]
	}
	if cap(slows) < len(records) {
		slows = make([]float64, len(records))
	} else {
		slows = slows[:len(records)]
	}
	var sumF float64
	var sumS float64
	for i, r := range records {
		fcts[i] = r.FCT()
		slows[i] = r.Slowdown()
		sumF += float64(fcts[i])
		sumS += slows[i]
	}
	slices.Sort(fcts)
	slices.Sort(slows)
	return Summary{
		N:            len(records),
		Mean:         sim.Duration(sumF / float64(len(records))),
		P50:          quantileDur(fcts, 0.50),
		P90:          quantileDur(fcts, 0.90),
		P99:          quantileDur(fcts, 0.99),
		P999:         quantileDur(fcts, 0.999),
		Max:          fcts[len(fcts)-1],
		MeanSlowdown: sumS / float64(len(records)),
		P99Slowdown:  quantileF(slows, 0.99),
	}, fcts, slows
}

// quantileDur returns the p-quantile of a sorted duration slice using the
// nearest-rank method.
func quantileDur(sorted []sim.Duration, p float64) sim.Duration {
	return sorted[rank(len(sorted), p)]
}

func quantileF(sorted []float64, p float64) float64 {
	return sorted[rank(len(sorted), p)]
}

func rank(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// FCTCDF returns the empirical CDF of FCTs as (fct, cumulative fraction)
// pairs, one per record, for plotting the paper's distribution figures.
func FCTCDF(records []FlowRecord) [][2]float64 {
	fcts := make([]float64, len(records))
	for i, r := range records {
		fcts[i] = r.FCT().Microseconds()
	}
	slices.Sort(fcts)
	out := make([][2]float64, len(fcts))
	for i, f := range fcts {
		out[i] = [2]float64{f, float64(i+1) / float64(len(fcts))}
	}
	return out
}

// ByteMeter tallies sent versus usefully delivered bytes, yielding the
// paper's transfer efficiency ("total received data bytes over total sent
// bytes", §2.3 footnote 5) and goodput.
type ByteMeter struct {
	SentPayload      int64 // payload bytes placed on the wire, retransmissions included
	DeliveredPayload int64 // unique payload bytes accepted by receivers
}

// Efficiency returns delivered/sent, or 1 when nothing was sent.
func (m *ByteMeter) Efficiency() float64 {
	if m.SentPayload == 0 {
		return 1
	}
	return float64(m.DeliveredPayload) / float64(m.SentPayload)
}

// Goodput returns the delivered payload rate over the given span as a
// fraction of capacity (aggregate receiver bandwidth).
func (m *ByteMeter) Goodput(span sim.Duration, capacity sim.Rate) float64 {
	if span <= 0 || capacity <= 0 {
		return 0
	}
	return float64(m.DeliveredPayload) * 8 / span.Seconds() / float64(capacity)
}

// QueueSampler periodically samples a queue backlog and keeps the mean and
// maximum (Fig. 15).
type QueueSampler struct {
	sum     float64
	n       int
	max     int64
	maxSeen int64
}

// Observe records one backlog sample in bytes.
func (s *QueueSampler) Observe(bytes int64) {
	s.sum += float64(bytes)
	s.n++
	if bytes > s.max {
		s.max = bytes
	}
}

// ObserveMax folds in an externally tracked high-water mark (qdiscs track
// per-enqueue maxima, which sampling can miss).
func (s *QueueSampler) ObserveMax(bytes int64) {
	if bytes > s.maxSeen {
		s.maxSeen = bytes
	}
}

// Mean returns the average sampled backlog in bytes.
func (s *QueueSampler) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Max returns the largest backlog seen, combining samples and high-water
// marks.
func (s *QueueSampler) Max() int64 {
	if s.maxSeen > s.max {
		return s.maxSeen
	}
	return s.max
}

// UtilizationMeter measures the fraction of a link's capacity used over a
// window from transmitted-byte counters (Fig. 16).
type UtilizationMeter struct {
	startBytes int64
	startTime  sim.Time
}

// Start begins the window.
func (u *UtilizationMeter) Start(txBytes int64, now sim.Time) {
	u.startBytes, u.startTime = txBytes, now
}

// Stop ends the window and returns utilization in [0, ~1].
func (u *UtilizationMeter) Stop(txBytes int64, now sim.Time, rate sim.Rate) float64 {
	span := now.Sub(u.startTime)
	if span <= 0 {
		return 0
	}
	bits := float64(txBytes-u.startBytes) * 8
	return bits / (span.Seconds() * float64(rate))
}

// FormatDur renders a duration in microseconds with 2 decimals, the unit of
// every FCT table in the paper.
func FormatDur(d sim.Duration) string {
	return fmt.Sprintf("%.2f", d.Microseconds())
}
