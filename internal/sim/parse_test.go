package sim

import (
	"math"
	"testing"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"0s", 0},
		{"123ps", 123},
		{"1ns", Nanosecond},
		{"1.5us", 1500 * Picosecond * 1000},
		{"1.5µs", 1500 * Nanosecond},
		{"50ms", 50 * Millisecond},
		{"2s", 2 * Second},
		{"42", 42}, // bare number is picoseconds
		{"9223372036854775807ps", Duration(math.MaxInt64)},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "ms", "-1ms", "xns", "1e400s", "NaNs", "9300000s"} {
		if d, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted as %d", bad, d)
		}
	}
}

func TestDurationExactStringRoundTrip(t *testing.T) {
	for _, d := range []Duration{0, 1, 999, Nanosecond, 1500 * Nanosecond,
		Microsecond, 50 * Millisecond, 3 * Second, Duration(math.MaxInt64)} {
		s := d.ExactString()
		got, err := ParseDuration(s)
		if err != nil {
			t.Fatalf("%d.ExactString() = %q failed to parse: %v", d, s, err)
		}
		if got != d {
			t.Fatalf("round trip %d -> %q -> %d", d, s, got)
		}
	}
	if s := (50 * Millisecond).ExactString(); s != "50ms" {
		t.Errorf("50ms renders %q", s)
	}
	if s := Duration(1234).ExactString(); s != "1234ps" {
		t.Errorf("1234ps renders %q", s)
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want Rate
	}{
		{"0bps", 0},
		{"100Gbps", 100 * Gbps},
		{"2.5Gbps", 2500 * Mbps},
		{"640Kbps", 640 * Kbps},
		{"7", 7}, // bare number is bits/sec
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "Gbps", "-1Gbps", "1e400Gbps", "xbps"} {
		if r, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) accepted as %d", bad, r)
		}
	}
	// Rate.String is exact for any value, so it must round-trip.
	for _, r := range []Rate{0, 1, 999, Kbps, 25 * Gbps, 2500 * Mbps, Rate(12345678901)} {
		got, err := ParseRate(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %d -> %q -> %d (%v)", r, r.String(), got, err)
		}
	}
}
