package sim

import (
	"fmt"
)

// heapQueue is the reference scheduler: a binary min-heap of slab indices
// ordered by (time, schedAt, seq). Every operation is O(log n); Cancel is a
// true removal via the event's stored heap position, so — like the wheel —
// the heap never holds a canceled event. It exists as the differential
// baseline for the wheel (FuzzSchedulerEquivalence, the golden digests) and
// as the -sched=heap escape hatch. The sift routines mirror container/heap;
// since (time, schedAt, seq) is a strict total order (seq is unique), pop
// order does not depend on the internal heap shape anyway.
type heapQueue struct {
	sl   *eventSlab
	h    []uint32
	peak int
}

// less orders heap positions by the events' (time, schedAt, seq) keys: ties
// at a deadline resolve by when the scheduling decision was made, then by
// scheduling order. On a lone engine schedAt is nondecreasing in seq, so
// this is the classic (time, seq) order; the schedAt key exists for
// backdated cross-shard deliveries (Engine.AtHandlerFrom).
func (q *heapQueue) less(i, j int) bool {
	a, b := q.sl.at(q.h[i]), q.sl.at(q.h[j])
	if a.time != b.time {
		return a.time < b.time
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

func (q *heapQueue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.sl.at(q.h[i]).index = int32(i)
	q.sl.at(q.h[j]).index = int32(j)
}

func (q *heapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *heapQueue) down(i0, n int) bool {
	i := i0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		j := left
		if right := left + 1; right < n && q.less(right, left) {
			j = right
		}
		if !q.less(j, i) {
			break
		}
		q.swap(i, j)
		i = j
	}
	return i > i0
}

func (q *heapQueue) schedule(ev *Event, idx uint32) {
	ev.index = int32(len(q.h))
	q.h = append(q.h, idx)
	q.up(len(q.h) - 1)
	if len(q.h) > q.peak {
		q.peak = len(q.h)
	}
}

func (q *heapQueue) remove(ev *Event, idx uint32) {
	i := int(ev.index)
	n := len(q.h) - 1
	if i != n {
		q.swap(i, n)
	}
	q.h = q.h[:n]
	ev.index = -1
	if i != n {
		if !q.down(i, n) {
			q.up(i)
		}
	}
}

func (q *heapQueue) popDue(limit Time) uint32 {
	if len(q.h) == 0 {
		return nilIdx
	}
	root := q.h[0]
	ev := q.sl.at(root)
	if ev.time > limit {
		return nilIdx
	}
	n := len(q.h) - 1
	if n > 0 {
		q.swap(0, n)
	}
	q.h = q.h[:n]
	ev.index = -1
	q.down(0, n)
	return root
}

// next returns the earliest pending deadline — the heap root — without
// mutating the queue.
func (q *heapQueue) next() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.sl.at(q.h[0]).time, true
}

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) kind() SchedulerKind { return SchedHeap }

// stats reports occupancy; the heap has no overflow tier, so those fields
// stay zero.
func (q *heapQueue) stats() SchedStats {
	return SchedStats{Pending: len(q.h), PeakPending: q.peak}
}

// check verifies the heap's bookkeeping: every entry knows its own position,
// no resolved event is resident, no pending event is behind the clock, and
// the heap order itself holds.
func (q *heapQueue) check(now Time) error {
	for i, idx := range q.h {
		ev := q.sl.at(idx)
		if ev.index != int32(i) {
			return fmt.Errorf("sim: heap entry %d carries index %d", i, ev.index)
		}
		if ev.resolved() {
			return fmt.Errorf("sim: resolved event at heap position %d", i)
		}
		if ev.time < now {
			return fmt.Errorf("sim: live event at %v behind clock %v", ev.time, now)
		}
	}
	for i := 1; i < len(q.h); i++ {
		parent := (i - 1) / 2
		if q.less(i, parent) {
			return fmt.Errorf("sim: heap order violated between %d and parent %d", i, parent)
		}
	}
	return nil
}
