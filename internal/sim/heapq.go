package sim

import (
	"container/heap"
	"fmt"
)

// heapQueue is the container/heap reference scheduler: a binary min-heap over
// (time, seq). Every operation is O(log n); Cancel is a true removal via the
// event's stored heap index, so — like the wheel — the heap never holds a
// canceled event. It exists as the differential baseline for the wheel
// (FuzzSchedulerEquivalence, the golden digests) and as the -sched=heap
// escape hatch.
type heapQueue struct {
	h    eventHeap
	peak int
}

// eventHeap is a min-heap ordered by (time, schedAt, seq): ties at a deadline
// resolve by when the scheduling decision was made, then by scheduling order.
// On a lone engine schedAt is nondecreasing in seq, so this is the classic
// (time, seq) order; the schedAt key exists for backdated cross-shard
// deliveries (Engine.AtHandlerFrom).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].schedAt != h[j].schedAt {
		return h[i].schedAt < h[j].schedAt
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (q *heapQueue) schedule(ev *Event) {
	heap.Push(&q.h, ev)
	if len(q.h) > q.peak {
		q.peak = len(q.h)
	}
}

func (q *heapQueue) remove(ev *Event) { heap.Remove(&q.h, ev.index) }

func (q *heapQueue) popDue(limit Time) *Event {
	if len(q.h) == 0 || q.h[0].time > limit {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// next returns the earliest pending deadline — the heap root — without
// mutating the queue.
func (q *heapQueue) next() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) kind() SchedulerKind { return SchedHeap }

// stats reports occupancy; the heap has no overflow tier, so those fields
// stay zero.
func (q *heapQueue) stats() SchedStats {
	return SchedStats{Pending: len(q.h), PeakPending: q.peak}
}

// check verifies the heap's bookkeeping: every entry knows its own position,
// no resolved event is resident, no pending event is behind the clock, and
// the heap order itself holds.
func (q *heapQueue) check(now Time) error {
	for i, ev := range q.h {
		if ev.index != i {
			return fmt.Errorf("sim: heap entry %d carries index %d", i, ev.index)
		}
		if ev.fired || ev.canceled {
			return fmt.Errorf("sim: resolved event at heap position %d", i)
		}
		if ev.time < now {
			return fmt.Errorf("sim: live event at %v behind clock %v", ev.time, now)
		}
	}
	for i := 1; i < len(q.h); i++ {
		parent := (i - 1) / 2
		if q.h.Less(i, parent) {
			return fmt.Errorf("sim: heap order violated between %d and parent %d", i, parent)
		}
	}
	return nil
}
