// Package sim provides the discrete-event simulation engine used by every
// other package in this repository: a picosecond-resolution virtual clock, a
// deterministic event scheduler with cancelable timers, and seeded random
// number sources.
//
// The engine is intentionally single-threaded. Determinism is a design goal:
// two events scheduled for the same instant fire in the order they were
// scheduled, and all randomness flows from explicit seeds, so a simulation is
// a pure function of its configuration.
package sim

import (
	"fmt"
	"math"
)

// Time is an absolute simulation timestamp in picoseconds since the start of
// the run. Picosecond resolution keeps the serialization time of even a
// 64-byte probe on a 100 Gbps link (5120 ps) integer-exact.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable timestamp. It is used as an "infinitely
// far in the future" sentinel.
const MaxTime = Time(math.MaxInt64)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders the timestamp with an adaptive unit, e.g. "12.345us".
func (t Time) String() string { return Duration(t).String() }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds converts d to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds converts d to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Rate is a link or drain rate in bits per second.
type Rate int64

// Rate units.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// String renders the rate with an adaptive unit, e.g. "100Gbps".
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// TxTime returns the serialization delay of a packet of the given size at
// rate r, rounded up to the next picosecond so that back-to-back packets
// never overlap. It panics on a non-positive rate.
func TxTime(sizeBytes int, r Rate) Duration {
	if r <= 0 {
		panic(fmt.Sprintf("sim: TxTime with non-positive rate %d", r))
	}
	bits := int64(sizeBytes) * 8
	// bits is at most ~10^5 for any realistic packet; bits*Second fits int64
	// comfortably (10^5 * 10^12 = 10^17 < 2^63).
	ps := bits * int64(Second)
	d := ps / int64(r)
	if ps%int64(r) != 0 {
		d++
	}
	return Duration(d)
}

// BytesIn returns how many whole bytes rate r can transfer in duration d.
func BytesIn(d Duration, r Rate) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	// Avoid overflow: bits = d * r / Second computed via float for very large
	// d, exactly for the common case.
	if int64(d) <= (math.MaxInt64 / int64(r)) {
		return int64(d) * int64(r) / int64(Second) / 8
	}
	return int64(float64(d) / float64(Second) * float64(r) / 8)
}
