package sim

import (
	"math/rand/v2"
	"testing"
)

// wheelHorizon is the first delta that no longer fits in the wheel's levels
// and must ride the overflow list.
const wheelHorizon = Time(1) << wheelHorizonBits

// TestWheelFarFutureOverflow schedules events beyond the top level's horizon
// and checks they park on the overflow list, survive invariant checks, and
// fire in order once the clock gets there — interleaved with near events.
func TestWheelFarFutureOverflow(t *testing.T) {
	e := NewEngine()
	w := e.q.(*wheel)
	var order []int
	e.At(5, func() { order = append(order, 1) })
	e.At(wheelHorizon+7, func() { order = append(order, 3) })    // one horizon out
	e.At(3*wheelHorizon+11, func() { order = append(order, 4) }) // several horizons out
	e.At(Time(1000*Microsecond), func() { order = append(order, 2) })
	if w.overflow.empty() {
		t.Fatal("far-future events did not land on the overflow list")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("with overflow residents: %v", err)
	}
	e.Run()
	if len(order) != 4 {
		t.Fatalf("fired %d of 4 events", len(order))
	}
	for i, want := range []int{1, 2, 3, 4} {
		if order[i] != want {
			t.Fatalf("firing order %v, want [1 2 3 4]", order)
		}
	}
	if !w.overflow.empty() {
		t.Fatal("overflow list not drained")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("drained: %v", err)
	}
}

// TestWheelOverflowCancel removes overflow residents (including the cached
// minimum, forcing the lazy rescan) and checks the remaining events still
// fire correctly.
func TestWheelOverflowCancel(t *testing.T) {
	e := NewEngine()
	hMin := e.At(wheelHorizon+1, func() { t.Fatal("canceled overflow event fired") })
	fired := false
	e.At(wheelHorizon+2, func() { fired = true })
	hMin.Cancel() // cancels the cached overflow minimum
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after canceling the overflow minimum: %v", err)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	if end := e.Run(); end != wheelHorizon+2 {
		t.Fatalf("run ended at %v, want %v", end, wheelHorizon+2)
	}
	if !fired {
		t.Fatal("surviving overflow event did not fire")
	}
}

// TestWheelZeroDelay pins At(now): an event at the current instant fires in
// the same Run, after already-pending same-time events with smaller seq and
// before anything later — including when scheduled from inside a callback at
// the same timestamp.
func TestWheelZeroDelay(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedHeap, SchedWheel} {
		e := NewEngineWith(kind)
		var order []int
		e.At(10, func() {
			order = append(order, 1)
			e.At(10, func() { order = append(order, 3) }) // zero delay, mid-dispatch
			e.At(e.Now(), func() { order = append(order, 4) })
		})
		e.At(10, func() { order = append(order, 2) })
		e.At(11, func() { order = append(order, 5) })
		e.At(0, func() { order = append(order, 0) }) // zero-delay at a fresh engine's now
		e.Run()
		want := []int{0, 1, 2, 3, 4, 5}
		if len(order) != len(want) {
			t.Fatalf("%s: fired %d of %d events: %v", kind, len(order), len(want), order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("%s: firing order %v, want %v", kind, order, want)
			}
		}
	}
}

// TestTimerResetAcrossCascadeBoundary arms a rearmable Timer, lets the clock
// approach a high-level slot boundary, and Resets the deadline across it —
// the cancel-and-reinsert must survive the cascade that rebases the wheel.
func TestTimerResetAcrossCascadeBoundary(t *testing.T) {
	e := NewEngine()
	var tm Timer
	fired := 0
	tm.Init(e, func() { fired++ })

	// Park the deadline just past a level-2 boundary (64^2 = 4096 ticks),
	// then walk the clock toward the boundary with plain events, rearming the
	// timer each step so its event keeps crossing the cascade.
	boundary := Time(1) << (2 * wheelBits)
	tm.ResetAt(boundary + 100)
	for step := Time(1); step < 10; step++ {
		at := boundary - 10 + step
		e.At(at, func() { tm.ResetAt(boundary + 100) })
	}
	e.RunUntil(boundary + 50)
	if fired != 0 {
		t.Fatalf("timer fired %d times before its deadline", fired)
	}
	if !tm.Pending() || tm.When() != boundary+100 {
		t.Fatalf("timer pending=%v when=%v, want armed at %v", tm.Pending(), tm.When(), boundary+100)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("mid-run: %v", err)
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want exactly 1", fired)
	}
	if e.Now() != boundary+100 {
		t.Fatalf("run ended at %v, want %v", e.Now(), boundary+100)
	}
}

// TestWheelInvariantsUnderChurn hammers the wheel with a random
// schedule/cancel/advance mix and validates the full structural invariant
// set after every burst.
func TestWheelInvariantsUnderChurn(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewPCG(11, 7))
	var handles []Handle
	for round := 0; round < 200; round++ {
		for i := 0; i < 20; i++ {
			// Deltas spread across every level and into overflow.
			d := Duration(1) << rng.Uint64N(52)
			handles = append(handles, e.After(d+Duration(rng.Uint64N(1000)), func() {}))
		}
		for i := 0; i < 8 && len(handles) > 0; i++ {
			j := rng.IntN(len(handles))
			handles[j].Cancel()
			handles[j] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		}
		e.RunUntil(e.Now() + Time(rng.Uint64N(1<<20)))
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	e.Run()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("drained: %v", err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after full drain", e.Pending())
	}
}

// TestCheckInvariantsDetectsWheelCorruption pokes the wheel's structure
// directly and checks each corruption is caught: occupancy-bit drift, slot
// mismembership, count drift, and an overdue cascade.
func TestCheckInvariantsDetectsWheelCorruption(t *testing.T) {
	newPopulated := func() (*Engine, *wheel) {
		e := NewEngine()
		e.At(100, func() {})
		e.At(5000, func() {})
		e.At(wheelHorizon+3, func() {})
		return e, e.q.(*wheel)
	}

	e, w := newPopulated()
	w.occupied[0] |= 1 << 7 // bit set for an empty slot
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("occupancy-bit drift not detected")
	}

	e, w = newPopulated()
	w.count++
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("count drift not detected")
	}

	e, w = newPopulated()
	// Relocate an event into a slot its deadline does not select.
	from := uint16(1<<wheelBits | 1)
	idx := w.slots[from].head
	if idx == nilIdx {
		t.Fatal("test premise broken: expected a level-1 resident at slot 1")
	}
	ev := w.sl.at(idx)
	w.slots[from].unlink(w.sl, ev)
	w.occupied[1] &^= 1 << 1
	to := uint16(1<<wheelBits | 9)
	w.slots[to].pushBack(w.sl, ev, idx, to)
	w.occupied[1] |= 1 << 9
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("slot mismembership not detected")
	}

	e, w = newPopulated()
	// An overflow resident whose delta now fits the horizon is an overdue
	// migration.
	w.sl.at(w.overflow.head).time = 200
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("overdue overflow migration not detected")
	}

	e, w = newPopulated()
	// A wheel clock ahead of the engine clock means popDue overshot.
	w.cur = 50
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("wheel clock ahead of engine clock not detected")
	}
	_ = e
}

// TestWheelPendingAcrossLevels cross-checks Pending and EventAllocs while
// events sit at different levels and in overflow.
func TestWheelPendingAcrossLevels(t *testing.T) {
	e := NewEngine()
	deltas := []Duration{1, 63, 64, 4095, 4096, 1 << 18, 1 << 30, 1 << 47, 1 << 50}
	for _, d := range deltas {
		e.After(d, func() {})
	}
	if got := e.Pending(); got != len(deltas) {
		t.Fatalf("Pending() = %d, want %d", got, len(deltas))
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("populated: %v", err)
	}
	e.Run()
	if e.Fired() != uint64(len(deltas)) {
		t.Fatalf("Fired() = %d, want %d", e.Fired(), len(deltas))
	}
}

// TestWheelOverflowMassCancel is the capacity gate for the overflow list:
// with over a million events parked beyond the horizon, canceling large
// swaths of them — repeatedly including the cached minimum, in an order
// adversarial to the lazy-rescan cache — must keep the earliest-deadline
// query truthful, keep the occupancy counter exact, and leave the survivors
// firing in timestamp order.
func TestWheelOverflowMassCancel(t *testing.T) {
	const n = 1 << 20 // ~1.05M pending events
	e := NewEngine()
	w := e.q.(*wheel)

	// Park n events beyond the horizon with a deterministic shuffled order of
	// deadlines so the overflow list is thoroughly unsorted. With the wheel
	// levels empty, nextTime answers straight from the overflow cache.
	handles := make([]Handle, n)
	r := rand.New(rand.NewPCG(7, 9))
	perm := r.Perm(n)
	for _, p := range perm {
		handles[p] = e.At(wheelHorizon+Time(2*p+2), func() {})
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending() = %d, want %d", got, n)
	}
	st := e.SchedStats()
	if st.Overflow != n {
		t.Fatalf("Overflow = %d, want %d", st.Overflow, n)
	}
	if st.PeakPending != n || st.PeakOverflow != n {
		t.Fatalf("peaks = (%d, %d), want (%d, %d)", st.PeakPending, st.PeakOverflow, n, n)
	}

	// Cancel the current minimum 64 times in a row: each cancel must
	// invalidate the cached minimum so the next query rescans instead of
	// reporting a dead deadline.
	for i := 0; i < 64; i++ {
		handles[i].Cancel()
		if min, ok := w.nextTime(); !ok || min != wheelHorizon+Time(2*(i+1)+2) {
			t.Fatalf("after canceling minimum %d: nextTime = (%v, %v), want %v",
				i, min, ok, wheelHorizon+Time(2*(i+1)+2))
		}
	}
	// Mass-cancel three quarters of the remainder (every index not divisible
	// by four), shuffled, without querying in between: O(1) per cancel.
	canceled := 64
	for _, p := range perm {
		if p >= 64 && p%4 != 0 {
			handles[p].Cancel()
			canceled++
		}
	}
	if st := e.SchedStats(); st.Overflow != n-canceled {
		t.Fatalf("Overflow after mass cancel = %d, want %d", st.Overflow, n-canceled)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after mass cancellation: %v", err)
	}
	if min, ok := w.nextTime(); ok && min < wheelHorizon {
		t.Fatalf("nextTime = %v, below the horizon", min)
	}

	// The survivors must fire in timestamp order, and all of them must fire.
	var last Time
	fired := 0
	for {
		idx := e.q.popDue(MaxTime)
		if idx == nilIdx {
			break
		}
		ev := e.slab.at(idx)
		if ev.time < last {
			t.Fatalf("event at %v popped after %v", ev.time, last)
		}
		last = ev.time
		e.now = ev.time
		ev.flags |= evFired
		e.release(ev, idx)
		fired++
	}
	want := n - canceled
	if fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
	if st := e.SchedStats(); st.Pending != 0 || st.Overflow != 0 {
		t.Fatalf("post-drain stats = %+v, want empty", st)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("drained: %v", err)
	}
}
