package sim

import (
	"reflect"
	"testing"
)

// schedTrace is the observable history of one scheduler interpreting an op
// program: every firing as (label, time, firedSoFar) plus Pending and Now
// after every op. Two schedulers are equivalent iff their traces are
// identical.
type schedTrace struct {
	Fires    [][3]int64
	Pendings []int
	Nows     []Time
}

// runSchedProgram interprets prog on an engine with the given scheduler.
// Opcodes (byte % 6), with operands drawn from following bytes:
//
//	0: schedule at now+delta (delta exponential in one byte, so every wheel
//	   level and the overflow list are reachable)
//	1: cancel the k-th live handle
//	2: RunUntil(now+delta)
//	3: reset the shared rearmable timer to now+delta
//	4: stop the shared timer
//	5: schedule at now (zero delay)
func runSchedProgram(kind SchedulerKind, prog []byte) schedTrace {
	e := NewEngineWith(kind)
	var tr schedTrace
	var handles []Handle
	label := int64(0)

	var tm Timer
	tm.Init(e, func() { tr.Fires = append(tr.Fires, [3]int64{-1, int64(e.Now()), int64(e.Fired())}) })

	record := func(lbl int64) func() {
		return func() { tr.Fires = append(tr.Fires, [3]int64{lbl, int64(e.Now()), int64(e.Fired())}) }
	}
	delta := func(b byte) Duration {
		// Exponential spread: shifts 0..51 cover every level plus overflow.
		return (Duration(1) << (b % 52)) + Duration(b%7)
	}

	for i := 0; i+1 < len(prog); i += 2 {
		op, arg := prog[i], prog[i+1]
		switch op % 6 {
		case 0:
			label++
			handles = append(handles, e.At(e.Now().Add(delta(arg)), record(label)))
		case 1:
			if len(handles) > 0 {
				k := int(arg) % len(handles)
				handles[k].Cancel()
				handles = append(handles[:k], handles[k+1:]...)
			}
		case 2:
			e.RunUntil(e.Now().Add(delta(arg)))
		case 3:
			tm.Reset(delta(arg))
		case 4:
			tm.Stop()
		case 5:
			label++
			handles = append(handles, e.At(e.Now(), record(label)))
		}
		tr.Pendings = append(tr.Pendings, e.Pending())
		tr.Nows = append(tr.Nows, e.Now())
	}
	e.RunUntil(e.Now() + (1 << 53)) // drain everything, overflow included
	tr.Pendings = append(tr.Pendings, e.Pending())
	tr.Nows = append(tr.Nows, e.Now())
	return tr
}

// FuzzSchedulerEquivalence replays random schedule/cancel/reset/advance
// programs on the heap and the wheel and requires identical firing sequences
// and identical Pending()/Now() after every step — the differential proof
// that the wheel is a drop-in replacement for the reference heap.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 2, 20})                      // same-time pair, then run
	f.Add([]byte{0, 1, 0, 48, 1, 0, 2, 50})                 // overflow + cancel
	f.Add([]byte{3, 9, 2, 3, 3, 12, 2, 40, 4, 0})           // timer rearm across levels
	f.Add([]byte{5, 0, 5, 0, 2, 1, 0, 30, 1, 1, 2, 51})     // zero-delay batch
	f.Add([]byte{0, 12, 0, 24, 0, 36, 0, 51, 2, 13, 2, 37}) // one event per tier
	f.Add([]byte{0, 6, 1, 0, 0, 6, 1, 0, 0, 6, 2, 8, 0, 6}) // churny cancel/replace
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 512 {
			prog = prog[:512]
		}
		heapTr := runSchedProgram(SchedHeap, prog)
		wheelTr := runSchedProgram(SchedWheel, prog)
		if !reflect.DeepEqual(heapTr.Fires, wheelTr.Fires) {
			t.Fatalf("firing sequences diverge:\nheap:  %v\nwheel: %v", heapTr.Fires, wheelTr.Fires)
		}
		if !reflect.DeepEqual(heapTr.Pendings, wheelTr.Pendings) {
			t.Fatalf("Pending() diverges:\nheap:  %v\nwheel: %v", heapTr.Pendings, wheelTr.Pendings)
		}
		if !reflect.DeepEqual(heapTr.Nows, wheelTr.Nows) {
			t.Fatalf("Now() diverges:\nheap:  %v\nwheel: %v", heapTr.Nows, wheelTr.Nows)
		}
	})
}

// TestSchedulerEquivalenceSeeds runs the fuzz seed corpus as a plain test so
// the differential check is part of every `go test` run, not only -fuzz.
func TestSchedulerEquivalenceSeeds(t *testing.T) {
	seeds := [][]byte{
		{0, 10, 0, 10, 2, 20},
		{0, 1, 0, 48, 1, 0, 2, 50},
		{3, 9, 2, 3, 3, 12, 2, 40, 4, 0},
		{5, 0, 5, 0, 2, 1, 0, 30, 1, 1, 2, 51},
		{0, 12, 0, 24, 0, 36, 0, 51, 2, 13, 2, 37},
		{0, 6, 1, 0, 0, 6, 1, 0, 0, 6, 2, 8, 0, 6},
	}
	// A deterministic pseudo-random program sweep on top of the hand seeds.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state)
	}
	for round := 0; round < 50; round++ {
		prog := make([]byte, 64)
		for i := range prog {
			prog[i] = next()
		}
		seeds = append(seeds, prog)
	}
	for i, prog := range seeds {
		heapTr := runSchedProgram(SchedHeap, prog)
		wheelTr := runSchedProgram(SchedWheel, prog)
		if !reflect.DeepEqual(heapTr, wheelTr) {
			t.Fatalf("seed %d: schedulers diverge on %v\nheap:  %+v\nwheel: %+v", i, prog, heapTr, wheelTr)
		}
	}
}
