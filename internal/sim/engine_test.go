package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1.000s"},
		{-2 * Microsecond, "-2.000us"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Duration(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		r    Rate
		want string
	}{
		{100 * Gbps, "100Gbps"},
		{10 * Mbps, "10Mbps"},
		{5 * Kbps, "5Kbps"},
		{999, "999bps"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Rate(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestTxTime(t *testing.T) {
	tests := []struct {
		bytes int
		rate  Rate
		want  Duration
	}{
		{1500, 100 * Gbps, 120 * Nanosecond},
		{64, 100 * Gbps, 5120 * Picosecond},
		{1500, 10 * Gbps, 1200 * Nanosecond},
		{1538, 10 * Gbps, Duration(1538 * 8 * 100)}, // 1230.4ns
		{9000, 100 * Gbps, 720 * Nanosecond},
	}
	for _, tt := range tests {
		if got := TxTime(tt.bytes, tt.rate); got != tt.want {
			t.Errorf("TxTime(%d, %v) = %v, want %v", tt.bytes, tt.rate, got, tt.want)
		}
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps: 8/3 s = 2.666..s must round up.
	got := TxTime(1, 3)
	want := Duration(8*int64(Second)/3 + 1)
	if got != want {
		t.Fatalf("TxTime(1, 3bps) = %d, want %d", got, want)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TxTime(1500, 0) did not panic")
		}
	}()
	TxTime(1500, 0)
}

func TestBytesIn(t *testing.T) {
	if got := BytesIn(Duration(Microsecond), 100*Gbps); got != 12500 {
		t.Errorf("BytesIn(1us, 100Gbps) = %d, want 12500", got)
	}
	if got := BytesIn(0, 100*Gbps); got != 0 {
		t.Errorf("BytesIn(0, 100Gbps) = %d, want 0", got)
	}
	if got := BytesIn(-5, 100*Gbps); got != 0 {
		t.Errorf("BytesIn(-5, ...) = %d, want 0", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v after run, want 30", e.Now())
	}
}

func TestEngineTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of schedule order: %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 5 {
			e.After(10, rec)
		}
	}
	e.After(0, rec)
	end := e.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if end != 40 {
		t.Fatalf("end = %v, want 40", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

// Cancel is a true removal: Pending drops the moment Cancel returns — there
// is no canceled-but-undrained resident state — and a double cancel changes
// nothing. (PR 1 pinned the older lazy-cancellation exclusion semantics; the
// observable counts are identical, the removal is just immediate now.)
func TestEnginePendingDropsOnCancel(t *testing.T) {
	e := NewEngine()
	evA := e.At(10, func() {})
	evB := e.At(20, func() {})
	e.At(30, func() {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3", got)
	}
	evB.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() after cancel = %d, want 2 (removal is immediate)", got)
	}
	if !evB.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	evB.Cancel() // double cancel must not double-count
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() after double cancel = %d, want 2", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
	e.RunUntil(25) // fires A; B is long gone
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() after RunUntil(25) = %d, want 1", got)
	}
	evA.Cancel() // cancel after fire is a no-op for the count
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() after canceling fired event = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() after drain = %d, want 0", got)
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", e.Fired())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ts := range []Time{5, 15, 25} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	now := e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline 20, want 2", len(fired))
	}
	if now != 20 {
		t.Fatalf("RunUntil returned %v, want 20", now)
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d after Stop, want 4", count)
	}
	if e.Pending() == 0 {
		t.Fatal("Stop drained the queue; events should remain pending")
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

// Property: for any set of timestamps, the engine fires events in
// non-decreasing time order and the fired count matches the scheduled count.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(stamps []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			ts := Time(s)
			e.At(ts, func() { fired = append(fired, ts) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7, 1), NewRand(7, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed sources diverged")
		}
	}
	c := NewRand(7, 2)
	same := true
	a = NewRand(7, 1)
	for i := 0; i < 16; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical output")
	}
}

func TestExpMean(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	const mean = 10 * Microsecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(Exp(r, mean))
	}
	got := sum / n
	if got < 0.97*float64(mean) || got > 1.03*float64(mean) {
		t.Fatalf("empirical mean %v, want within 3%% of %v", Duration(got), mean)
	}
	if Exp(r, 0) != 0 {
		t.Fatal("Exp with zero mean should return 0")
	}
}

func TestCheckInvariantsCleanEngine(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedHeap, SchedWheel} {
		e := NewEngineWith(kind)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: fresh engine: %v", kind, err)
		}
		for i := 0; i < 10; i++ {
			e.After(Duration(i)*Microsecond, func() {})
		}
		ev := e.After(20*Microsecond, func() {})
		ev.Cancel()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: with pending and canceled events: %v", kind, err)
		}
		e.RunUntil(Time(5 * Microsecond))
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: mid-run: %v", kind, err)
		}
		e.Run()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: drained: %v", kind, err)
		}
	}
}

func TestCheckInvariantsDetectsHeapCorruption(t *testing.T) {
	e := NewEngineWith(SchedHeap)
	for i := 0; i < 4; i++ {
		e.After(Duration(i+1)*Microsecond, func() {})
	}
	q := e.q.(*heapQueue)

	// A live event behind the clock.
	e.now = Time(10 * Microsecond)
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("stale live event not detected")
	}
	e.now = 0

	// Broken heap index bookkeeping.
	root := q.sl.at(q.h[0])
	root.index = 2
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("index corruption not detected")
	}
	root.index = 0

	// Heap order violation.
	second := q.sl.at(q.h[1])
	root.time, second.time = second.time, root.time
	if q.less(1, 0) {
		if err := e.CheckInvariants(); err == nil {
			t.Fatal("heap order violation not detected")
		}
	}
}
