package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the textual side of the time and rate types: parsers for the
// "<number><unit>" forms humans write in CLIs and scenario files, and exact
// renderers whose output round-trips through the parsers bit for bit. The
// impairment-timeline format (internal/netem) is built on them and its fuzz
// target leans on the round-trip guarantee.

// durUnits maps duration suffixes to their picosecond multiplier, longest
// suffix first so "ms" is not mistaken for "s".
var durUnits = []struct {
	suffix string
	mul    Duration
}{
	{"ps", Picosecond},
	{"ns", Nanosecond},
	{"us", Microsecond},
	{"µs", Microsecond},
	{"ms", Millisecond},
	{"s", Second},
}

// ParseDuration parses a non-negative duration written as "<number><unit>"
// with unit ps, ns, us (or µs), ms or s — e.g. "50ms", "1.5us", "123ps". A
// bare number is picoseconds. Integer values are parsed exactly (no float
// rounding), so any ExactString output round-trips losslessly.
func ParseDuration(s string) (Duration, error) {
	num, mul := s, Duration(0)
	for _, u := range durUnits {
		if strings.HasSuffix(s, u.suffix) && len(s) > len(u.suffix) {
			num, mul = s[:len(s)-len(u.suffix)], u.mul
			break
		}
	}
	if mul == 0 {
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return 0, fmt.Errorf("sim: bad duration %q (want e.g. \"50ms\", \"1.5us\", \"123ps\")", s)
		}
		mul = Picosecond
	}
	// Exact integer path first: "9223372036854775807ps" and every
	// ExactString rendering must survive unharmed by float precision.
	if iv, err := strconv.ParseInt(num, 10, 64); err == nil {
		if iv < 0 {
			return 0, fmt.Errorf("sim: negative duration %q", s)
		}
		if iv > math.MaxInt64/int64(mul) {
			return 0, fmt.Errorf("sim: duration %q overflows", s)
		}
		return Duration(iv) * mul, nil
	}
	fv, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad duration %q: %v", s, err)
	}
	ps := fv * float64(mul)
	if math.IsNaN(ps) || ps < 0 {
		return 0, fmt.Errorf("sim: negative or NaN duration %q", s)
	}
	if ps >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("sim: duration %q overflows", s)
	}
	return Duration(math.Round(ps)), nil
}

// ExactString renders the duration as an integer count of the largest unit
// that divides it evenly: 50 ms renders "50ms", 1234 ps renders "1234ps".
// Unlike String (which rounds to three decimals for display), the output is
// lossless: ParseDuration(d.ExactString()) == d for every non-negative d.
func (d Duration) ExactString() string {
	if d < 0 {
		return "-" + (-d).ExactString()
	}
	for i := len(durUnits) - 1; i >= 0; i-- {
		u := durUnits[i]
		if u.suffix == "µs" {
			continue // "us" is the canonical spelling
		}
		if d%u.mul == 0 {
			return strconv.FormatInt(int64(d/u.mul), 10) + u.suffix
		}
	}
	return strconv.FormatInt(int64(d), 10) + "ps"
}

// rateUnits maps rate suffixes to bits per second, longest first.
var rateUnits = []struct {
	suffix string
	mul    Rate
}{
	{"Gbps", Gbps},
	{"Mbps", Mbps},
	{"Kbps", Kbps},
	{"bps", BitPerSecond},
}

// ParseRate parses a non-negative rate written as "<number><unit>" with unit
// bps, Kbps, Mbps or Gbps (e.g. "100Gbps", "2.5Gbps"). A bare number is bits
// per second. Integer values parse exactly, so Rate.String output (which is
// always an integer count of an exact unit) round-trips losslessly.
func ParseRate(s string) (Rate, error) {
	num, mul := s, Rate(0)
	for _, u := range rateUnits {
		if strings.HasSuffix(s, u.suffix) && len(s) > len(u.suffix) {
			num, mul = s[:len(s)-len(u.suffix)], u.mul
			break
		}
	}
	if mul == 0 {
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return 0, fmt.Errorf("sim: bad rate %q (want e.g. \"100Gbps\", \"2.5Gbps\")", s)
		}
		mul = BitPerSecond
	}
	if iv, err := strconv.ParseInt(num, 10, 64); err == nil {
		if iv < 0 {
			return 0, fmt.Errorf("sim: negative rate %q", s)
		}
		if iv > math.MaxInt64/int64(mul) {
			return 0, fmt.Errorf("sim: rate %q overflows", s)
		}
		return Rate(iv) * mul, nil
	}
	fv, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad rate %q: %v", s, err)
	}
	bps := fv * float64(mul)
	if math.IsNaN(bps) || bps < 0 {
		return 0, fmt.Errorf("sim: negative or NaN rate %q", s)
	}
	if bps >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("sim: rate %q overflows", s)
	}
	return Rate(math.Round(bps)), nil
}
