package sim

import "testing"

// A handle to a fired event must keep reporting Fired — and Cancel through it
// must not rewrite history — until the event object is reissued.
func TestCancelAfterFireReportsFired(t *testing.T) {
	e := NewEngine()
	h := e.At(10, func() {})
	e.Run()
	if !h.Fired() {
		t.Fatal("Fired() = false after the event ran")
	}
	h.Cancel() // must be a no-op
	if h.Canceled() {
		t.Fatal("Canceled() = true on an event that actually ran")
	}
	if !h.Fired() {
		t.Fatal("Cancel after fire erased Fired()")
	}
	if h.Pending() {
		t.Fatal("Pending() = true on a fired event")
	}
}

// Once a resolved event object is reissued for a new scheduling, every stale
// handle to its previous life must go inert: queries return false and Cancel
// must not touch the new occupant.
func TestStaleHandleIsInertAfterRecycle(t *testing.T) {
	e := NewEngine()
	h1 := e.At(10, func() {})
	e.Run()
	if e.EventAllocs() != 1 {
		t.Fatalf("EventAllocs() = %d, want 1", e.EventAllocs())
	}

	secondFired := false
	h2 := e.At(20, func() { secondFired = true })
	if e.EventAllocs() != 1 {
		t.Fatalf("EventAllocs() = %d after reschedule, want 1 (object not recycled)", e.EventAllocs())
	}
	if h1.idx != h2.idx {
		t.Fatal("test premise broken: second event did not reuse the first object")
	}
	if h1.gen == h2.gen {
		t.Fatal("generation not bumped on reissue")
	}

	// The stale handle must be fully inert.
	if h1.Pending() || h1.Fired() || h1.Canceled() {
		t.Fatal("stale handle still reports state from a previous life")
	}
	h1.Cancel() // must NOT cancel the new occupant
	if !h2.Pending() {
		t.Fatal("stale Cancel hit the recycled event's new occupant")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stale cancel: %v", err)
	}
	e.Run()
	if !secondFired {
		t.Fatal("recycled event did not fire")
	}
}

// Cancel is a true removal: the object recycles immediately (no
// canceled-but-undrained residency), and a stale handle to it keeps
// reporting Canceled until the object is reused, then goes inert.
func TestStaleHandleAfterCancel(t *testing.T) {
	e := NewEngine()
	h1 := e.At(10, func() { t.Fatal("canceled event fired") })
	h1.Cancel()
	if !h1.Canceled() {
		t.Fatal("Canceled() = false before the object is reused")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0 (removal is immediate)", e.Pending())
	}
	h2 := e.At(15, func() {}) // reuses the canceled object at once
	if e.EventAllocs() != 1 {
		t.Fatalf("EventAllocs() = %d, want 1 (canceled object recycled immediately)", e.EventAllocs())
	}
	if h2.idx != h1.idx {
		t.Fatal("canceled event object was not recycled")
	}
	if h1.Canceled() {
		t.Fatal("stale handle still reports Canceled after reuse")
	}
	h1.Cancel() // stale cancel must not touch the new occupant
	if !h2.Pending() {
		t.Fatal("stale Cancel hit the recycled event's new occupant")
	}
	e.Run()
	if !h2.Fired() {
		t.Fatal("recycled event did not fire")
	}
}

func TestEngineEventAllocsSteadyState(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.After(1, func() {})
		e.Run()
	}
	if e.EventAllocs() != 1 {
		t.Fatalf("EventAllocs() = %d after 1000 sequential events, want 1", e.EventAllocs())
	}
	if e.Fired() != 1000 {
		t.Fatalf("Fired() = %d, want 1000", e.Fired())
	}
}

func TestTimerResetStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	if tm.Pending() {
		t.Fatal("fresh timer is pending")
	}
	tm.Reset(10)
	if !tm.Pending() || tm.When() != 10 {
		t.Fatalf("armed timer: Pending=%v When=%v, want true, 10", tm.Pending(), tm.When())
	}
	tm.Reset(20) // rearm replaces the earlier deadline
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times after double Reset, want 1", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("fired at %v, want 20", e.Now())
	}

	tm.Reset(5)
	tm.Stop()
	e.Run()
	if fired != 1 {
		t.Fatalf("stopped timer fired (count %d)", fired)
	}
	if tm.Pending() {
		t.Fatal("Pending() = true after Stop")
	}

	// Stop on an idle timer is a no-op.
	tm.Stop()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// The callback may rearm the timer from inside Fire — the classic
// self-pacing pattern. The whole sequence must cost one Event allocation.
func TestTimerRearmInCallback(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tm Timer
	tm.Init(e, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			tm.Reset(10)
		}
	})
	tm.Reset(10)
	end := e.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v, want 5 entries", ticks)
	}
	if end != 50 {
		t.Fatalf("end = %v, want 50", end)
	}
	if e.EventAllocs() != 1 {
		t.Fatalf("EventAllocs() = %d for a rearming timer, want 1", e.EventAllocs())
	}
}

func TestTimerInitOnArmedPanics(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	tm.Reset(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Init on an armed timer did not panic")
		}
	}()
	tm.Init(e, func() {})
}

// FuzzTimerChurn interleaves Reset/Stop/advance operations on a small set of
// timers against CheckInvariants. Any sequence of timer operations must keep
// the engine's bookkeeping coherent and never fire a stopped timer.
func FuzzTimerChurn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 3, 3, 3, 1, 4, 2, 5, 9, 9})
	f.Add([]byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := NewEngine()
		const nTimers = 3
		fired := make([]int, nTimers)
		armedAt := make([]Time, nTimers) // expected deadline, 0 = idle
		timers := make([]*Timer, nTimers)
		for i := 0; i < nTimers; i++ {
			i := i
			timers[i] = NewTimer(e, func() {
				fired[i]++
				armedAt[i] = 0
			})
		}
		for _, op := range ops {
			ti := int(op) % nTimers
			switch (op / 3) % 4 {
			case 0: // Reset relative
				d := Duration(1 + int64(op%7))
				timers[ti].Reset(d)
				armedAt[ti] = e.Now().Add(d)
			case 1: // Stop
				timers[ti].Stop()
				armedAt[ti] = 0
			case 2: // advance a little, firing due timers
				e.RunUntil(e.Now() + Time(op%5))
			case 3: // rearm to a farther absolute deadline
				at := e.Now() + Time(2+op%11)
				timers[ti].ResetAt(at)
				armedAt[ti] = at
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants after op %d: %v", op, err)
			}
			for i := 0; i < nTimers; i++ {
				if want := armedAt[i] != 0; timers[i].Pending() != want {
					t.Fatalf("timer %d Pending() = %v, want %v", i, timers[i].Pending(), want)
				}
				if armedAt[i] != 0 && timers[i].When() != armedAt[i] {
					t.Fatalf("timer %d When() = %v, want %v", i, timers[i].When(), armedAt[i])
				}
			}
		}
		before := make([]int, nTimers)
		copy(before, fired)
		wasArmed := make([]bool, nTimers)
		for i := 0; i < nTimers; i++ {
			wasArmed[i] = armedAt[i] != 0
		}
		e.Run()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("invariants after drain: %v", err)
		}
		for i := 0; i < nTimers; i++ {
			wantExtra := 0
			if wasArmed[i] {
				wantExtra = 1
			}
			if fired[i] != before[i]+wantExtra {
				t.Fatalf("timer %d fired %d times at drain, want %d", i, fired[i]-before[i], wantExtra)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", e.Pending())
		}
	})
}
