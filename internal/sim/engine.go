package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Holding the pointer returned by At/After
// allows the caller to Cancel the event before it fires (a timer).
type Event struct {
	time     Time
	seq      uint64
	fn       func()
	eng      *Engine
	index    int // position in the heap, -1 once fired or canceled
	canceled bool
}

// Time returns the instant the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. The event stays in the scheduling heap
// until its timestamp is reached (canceling is O(1), not a heap removal),
// but Pending no longer counts it.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 && e.eng != nil {
		e.eng.canceledLive++
	}
}

// eventHeap is a min-heap ordered by (time, seq); seq breaks ties in
// scheduling order, which makes runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. It is not safe for concurrent use;
// the whole simulation runs on one goroutine.
type Engine struct {
	heap    eventHeap
	now     Time
	nextSeq uint64
	fired   uint64
	stopped bool

	// canceledLive counts canceled events still sitting in the heap, so
	// Pending can report live events without draining the heap.
	canceledLive int
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of live events waiting to fire. Canceled
// events that have not yet been drained from the heap are excluded — a
// simulation with Pending() == 0 will fire nothing more.
func (e *Engine) Pending() int { return len(e.heap) - e.canceledLive }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time t. Scheduling in the past panics —
// that is always a logic error in a simulation.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{time: t, seq: e.nextSeq, fn: fn, eng: e}
	e.nextSeq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d from now. A negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// CheckInvariants verifies the engine's internal bookkeeping: the canceled
// counter stays within [0, heap size] and matches the canceled events actually
// in the heap, every heap entry knows its own position, no live event is
// scheduled before the current clock, and the heap order itself holds. It
// returns nil when everything is coherent; the audit layer calls it at drain
// time, and it is cheap enough to call in tests after every run.
func (e *Engine) CheckInvariants() error {
	if e.canceledLive < 0 || e.canceledLive > len(e.heap) {
		return fmt.Errorf("sim: canceledLive %d outside [0, %d]", e.canceledLive, len(e.heap))
	}
	canceled := 0
	for i, ev := range e.heap {
		if ev.index != i {
			return fmt.Errorf("sim: heap entry %d carries index %d", i, ev.index)
		}
		if ev.canceled {
			canceled++
			continue
		}
		if ev.time < e.now {
			return fmt.Errorf("sim: live event at %v behind clock %v", ev.time, e.now)
		}
	}
	if canceled != e.canceledLive {
		return fmt.Errorf("sim: canceledLive %d but %d canceled events in heap", e.canceledLive, canceled)
	}
	for i := 1; i < len(e.heap); i++ {
		parent := (i - 1) / 2
		if e.heap.Less(i, parent) {
			return fmt.Errorf("sim: heap order violated between %d and parent %d", i, parent)
		}
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline, then sets the clock to
// the deadline (or to the last event time if the queue drained earlier and the
// deadline is MaxTime). It returns the final simulated time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.time > deadline {
			break
		}
		heap.Pop(&e.heap)
		if next.canceled {
			e.canceledLive--
			continue
		}
		e.now = next.time
		next.fn()
		e.fired++
	}
	if deadline != MaxTime && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}
