package sim

import (
	"fmt"
)

// Handler is the allocation-free alternative to scheduling a closure: an
// object implementing Fire is dispatched directly when its event comes due.
// Hot-path callers (port serialization, packet delivery, timers) implement
// Handler on long-lived objects so that scheduling captures no environment.
type Handler interface{ Fire() }

// Event flag bits. Fired and canceled survive release so stale handles keep
// reading an event's final state truthfully until the slot is reissued.
const (
	evFired uint8 = 1 << iota
	evCanceled
	evHasFn // callback is a closure in the slab's cold fns array
)

// Event is a scheduled callback, a 64-byte slot in the engine's slab arena.
// Events are owned by the engine and recycled through a free list once they
// resolve (fire or cancel); callers refer to them only through the
// generation-checked Handle returned by At/After, never by raw pointer or
// index. The layout packs the dispatch keys (time, schedAt, seq) and the
// handler word into one cache line; the cold closure path lives outside the
// struct entirely (eventSlab.fns).
type Event struct {
	time Time
	seq  uint64
	h    Handler

	// schedAt is the simulated instant the scheduling decision was made —
	// the secondary ordering key between seq and time. On the normal paths it
	// equals the engine clock at the schedule call, which makes it
	// nondecreasing in seq and therefore invisible: (time, schedAt, seq)
	// order is exactly the historical (time, seq) order. Its purpose is
	// AtHandlerFrom, where a sharded runner backdates a barrier-scheduled
	// cross-shard delivery to the instant the source shard generated it, so
	// that same-timestamp ties against locally scheduled events resolve in
	// the same order a single sequential engine would have produced.
	schedAt Time

	// Scheduler residency, all in slab indices. The heap uses index; the
	// wheel links the event into an intrusive list (a slot, the overflow
	// level, or the dispatch batch) named by in. An event outside any queue
	// has index -1 and in == listNone.
	next, prev uint32
	index      int32
	in         uint16

	gen   uint32 // bumped each time the slot is (re)issued
	flags uint8
}

func (ev *Event) fired() bool    { return ev.flags&evFired != 0 }
func (ev *Event) canceled() bool { return ev.flags&evCanceled != 0 }
func (ev *Event) resolved() bool { return ev.flags&(evFired|evCanceled) != 0 }

// Handle is a value-type reference to a scheduled event: the owning engine
// plus the event's slab index and generation. It stays truthful across slot
// recycling: once the underlying slot is reissued for a later scheduling,
// the generation no longer matches and every method on the stale handle
// becomes an inert no-op. The zero Handle refers to nothing.
type Handle struct {
	eng *Engine
	idx uint32
	gen uint32
}

// deref returns the referenced event, or nil when the handle is zero or
// stale (the slot has been reissued).
func (h Handle) deref() *Event {
	if h.eng == nil {
		return nil
	}
	if ev := h.eng.slab.at(h.idx); ev.gen == h.gen {
		return ev
	}
	return nil
}

// Time returns the instant the event is (or was) scheduled to fire, or zero
// for a stale or empty handle.
func (h Handle) Time() Time {
	if ev := h.deref(); ev != nil {
		return ev.time
	}
	return 0
}

// Pending reports whether the event is still waiting to fire.
func (h Handle) Pending() bool {
	ev := h.deref()
	return ev != nil && !ev.resolved()
}

// Fired reports whether the event ran. A fired event reports Fired even if
// Cancel was called afterwards — cancellation cannot rewrite history.
func (h Handle) Fired() bool {
	ev := h.deref()
	return ev != nil && ev.fired()
}

// Canceled reports whether the event was canceled before it fired.
func (h Handle) Canceled() bool {
	ev := h.deref()
	return ev != nil && ev.canceled() && !ev.fired()
}

// Cancel prevents the event from firing and removes it from the scheduler
// immediately — O(1) on the wheel, O(log n) on the heap — so the event
// slot recycles at once and Pending drops by one. Canceling an
// already-fired event, an already-canceled event, or through a stale handle
// is a no-op.
func (h Handle) Cancel() {
	ev := h.deref()
	if ev == nil || ev.resolved() {
		return
	}
	ev.flags |= evCanceled
	h.eng.q.remove(ev, h.idx)
	h.eng.release(ev, h.idx)
}

// Engine is the discrete-event scheduler. It is not safe for concurrent use;
// the whole simulation runs on one goroutine.
type Engine struct {
	slab    eventSlab
	q       scheduler
	now     Time
	nextSeq uint64
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero, no pending events, and
// the default (timing-wheel) scheduler.
func NewEngine() *Engine { return NewEngineWith(DefaultScheduler) }

// NewEngineWith returns an engine backed by the named scheduler. Both kinds
// fire events in identical (time, schedAt, seq) order; see SchedulerKind.
func NewEngineWith(kind SchedulerKind) *Engine {
	e := &Engine{}
	e.slab.freeHead = nilIdx
	switch kind {
	case SchedHeap:
		e.q = &heapQueue{sl: &e.slab}
	case SchedWheel, "":
		e.q = newWheel(&e.slab)
	default:
		panic(fmt.Sprintf("sim: unknown scheduler kind %q", kind))
	}
	return e
}

// Scheduler reports which event-queue implementation backs the engine.
func (e *Engine) Scheduler() SchedulerKind { return e.q.kind() }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire. Cancellation removes
// an event from the scheduler immediately, so every counted event will fire:
// a simulation with Pending() == 0 will fire nothing more.
func (e *Engine) Pending() int { return e.q.size() }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SchedStats snapshots the event queue's occupancy: current and peak pending
// events, and — on the timing wheel — the beyond-horizon overflow-list
// occupancy. The peaks are maintained inline by the scheduler, so this is a
// cheap read at any point during or after a run.
func (e *Engine) SchedStats() SchedStats { return e.q.stats() }

// EventAllocs returns how many event slots the engine has carved from its
// slab. In steady state this stays flat while Fired keeps climbing: every
// resolved event is recycled.
func (e *Engine) EventAllocs() uint64 { return e.slab.carved }

// NextEventTime returns the earliest pending deadline without firing
// anything, or false when no events are pending. The sharded runner reads it
// between windows to compute the global minimum the next lookahead window
// starts from; it never mutates the queue.
func (e *Engine) NextEventTime() (Time, bool) { return e.q.next() }

// acquire takes an event slot from the slab and stamps it with a fresh
// generation, invalidating every handle to its previous life.
func (e *Engine) acquire(t Time) (*Event, uint32) {
	ev, idx := e.slab.alloc()
	ev.gen++
	ev.time = t
	ev.seq = e.nextSeq
	ev.flags = 0
	e.nextSeq++
	return ev, idx
}

// release returns a resolved (fired or canceled) event to the slab's free
// list. The callback references are dropped so the engine does not pin
// closures or handlers alive; the generation is NOT bumped here — it bumps
// on reissue, so stale handles keep reading the event's final state
// truthfully until the slot is reused.
func (e *Engine) release(ev *Event, idx uint32) {
	ev.h = nil
	if ev.flags&evHasFn != 0 {
		e.slab.clearFn(idx)
		ev.flags &^= evHasFn
	}
	e.slab.free(idx)
}

func (e *Engine) schedule(t Time, fn func(), h Handler) Handle {
	return e.scheduleFrom(t, e.now, fn, h)
}

// scheduleFrom is schedule with an explicit schedAt stamp. The stamp must be
// set before the event enters the queue — it is part of the heap's ordering
// key, and mutating a key after insertion would corrupt the heap invariant.
func (e *Engine) scheduleFrom(t, from Time, fn func(), h Handler) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if from > t {
		panic(fmt.Sprintf("sim: schedule stamp %v after deadline %v", from, t))
	}
	ev, idx := e.acquire(t)
	ev.schedAt = from
	ev.h = h
	if fn != nil {
		ev.flags |= evHasFn
		e.slab.setFn(idx, fn)
	}
	e.q.schedule(ev, idx)
	return Handle{eng: e, idx: idx, gen: ev.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics —
// that is always a logic error in a simulation.
func (e *Engine) At(t Time, fn func()) Handle { return e.schedule(t, fn, nil) }

// After schedules fn to run d from now. A negative d panics.
func (e *Engine) After(d Duration, fn func()) Handle {
	return e.schedule(e.now.Add(d), fn, nil)
}

// AtHandler schedules h.Fire to run at absolute time t without allocating a
// closure. Scheduling in the past panics.
func (e *Engine) AtHandler(t Time, h Handler) Handle { return e.schedule(t, nil, h) }

// AfterHandler schedules h.Fire to run d from now without allocating a
// closure. A negative d panics.
func (e *Engine) AfterHandler(d Duration, h Handler) Handle {
	return e.schedule(e.now.Add(d), nil, h)
}

// AtHandlerFrom schedules h.Fire at absolute time t, stamping the event as if
// it had been scheduled at the (possibly earlier) instant from. The stamp only
// influences tie-breaking among events sharing a deadline: events fire in
// (time, schedAt, seq) order, and on a lone engine schedAt is nondecreasing in
// seq, so backdating is the one way the stamp can ever matter. The sharded
// runner uses it when a window barrier transfers a cross-shard packet delivery
// onto its destination engine: stamping the source shard's generation instant
// restores the scheduling order a sequential run would have had, so
// same-timestamp collisions at contended queues resolve identically. t must
// not precede the engine clock and from must not exceed t; either panics.
func (e *Engine) AtHandlerFrom(t, from Time, h Handler) Handle {
	return e.scheduleFrom(t, from, nil, h)
}

// Stop makes the current Run call return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// CheckInvariants verifies the engine's internal bookkeeping: the scheduler's
// own structure (heap order and index bookkeeping, or wheel slot membership,
// occupancy bitmaps, cascade currency and overflow horizon), that no pending
// event is behind the clock, and that the slab's free list holds only
// resolved, fully unlinked events. It returns nil when everything is
// coherent; the audit layer calls it at drain time, and it is cheap enough
// to call in tests after every run.
func (e *Engine) CheckInvariants() error {
	if err := e.q.check(e.now); err != nil {
		return err
	}
	if e.q.size() < 0 {
		return fmt.Errorf("sim: negative pending count %d", e.q.size())
	}
	seen := uint64(0)
	for i := e.slab.freeHead; i != nilIdx; {
		ev := e.slab.at(i)
		if ev.index != -1 {
			return fmt.Errorf("sim: free-list entry %d carries heap index %d", i, ev.index)
		}
		if ev.in != listNone {
			return fmt.Errorf("sim: free-list entry %d still claims wheel list %d", i, ev.in)
		}
		if ev.h != nil || ev.flags&evHasFn != 0 || e.slab.fn(i) != nil {
			return fmt.Errorf("sim: free-list entry %d retains a callback", i)
		}
		if !ev.resolved() {
			return fmt.Errorf("sim: free-list entry %d was never resolved", i)
		}
		if seen++; seen > e.slab.carved {
			return fmt.Errorf("sim: free-list cycle after %d entries", seen)
		}
		i = ev.next
	}
	if seen != uint64(e.slab.freeLen) {
		return fmt.Errorf("sim: free-list holds %d entries but freeLen says %d", seen, e.slab.freeLen)
	}
	if seen > e.slab.carved {
		return fmt.Errorf("sim: free-list %d exceeds total allocations %d", seen, e.slab.carved)
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline, then sets the clock to
// the deadline (or to the last event time if the queue drained earlier and the
// deadline is MaxTime). It returns the final simulated time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		idx := e.q.popDue(deadline)
		if idx == nilIdx {
			break
		}
		ev := e.slab.at(idx)
		e.now = ev.time
		ev.flags |= evFired
		h := ev.h
		var fn func()
		if h == nil {
			fn = e.slab.fn(idx)
		}
		// Release before firing: the callback may immediately reschedule and
		// reuse this very slot (the common timer-rearm pattern), which is
		// safe because reissue bumps the generation.
		e.release(ev, idx)
		if h != nil {
			h.Fire()
		} else {
			fn()
		}
		e.fired++
	}
	if deadline != MaxTime && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}
