package sim

import (
	"container/heap"
	"fmt"
)

// Handler is the allocation-free alternative to scheduling a closure: an
// object implementing Fire is dispatched directly when its event comes due.
// Hot-path callers (port serialization, packet delivery, timers) implement
// Handler on long-lived objects so that scheduling captures no environment.
type Handler interface{ Fire() }

// Event is a scheduled callback. Events are owned by the engine and recycled
// through a free-list once they fire or their cancellation is drained;
// callers refer to them only through the generation-checked Handle returned
// by At/After, never by raw pointer.
type Event struct {
	time     Time
	seq      uint64
	fn       func()
	h        Handler
	eng      *Engine
	index    int    // position in the heap, -1 once fired or canceled
	gen      uint32 // bumped each time the event is (re)issued
	canceled bool
	fired    bool
}

// Handle is a value-type reference to a scheduled event. It stays truthful
// across event recycling: once the underlying Event object is reissued for a
// later scheduling, the generation no longer matches and every method on the
// stale handle becomes an inert no-op. The zero Handle refers to nothing.
type Handle struct {
	ev  *Event
	gen uint32
}

// valid reports whether the handle still refers to the scheduling it was
// issued for (the underlying object has not been reissued).
func (h Handle) valid() bool { return h.ev != nil && h.ev.gen == h.gen }

// Time returns the instant the event is (or was) scheduled to fire, or zero
// for a stale or empty handle.
func (h Handle) Time() Time {
	if !h.valid() {
		return 0
	}
	return h.ev.time
}

// Pending reports whether the event is still waiting to fire.
func (h Handle) Pending() bool {
	return h.valid() && !h.ev.fired && !h.ev.canceled
}

// Fired reports whether the event ran. A fired event reports Fired even if
// Cancel was called afterwards — cancellation cannot rewrite history.
func (h Handle) Fired() bool { return h.valid() && h.ev.fired }

// Canceled reports whether the event was canceled before it fired.
func (h Handle) Canceled() bool {
	return h.valid() && h.ev.canceled && !h.ev.fired
}

// Cancel prevents the event from firing. Canceling an already-fired event,
// an already-canceled event, or through a stale handle is a no-op. The event
// stays in the scheduling heap until its timestamp is reached (canceling is
// O(1), not a heap removal), but Pending no longer counts it.
func (h Handle) Cancel() {
	if !h.valid() || h.ev.fired || h.ev.canceled {
		return
	}
	h.ev.canceled = true
	if h.ev.index >= 0 && h.ev.eng != nil {
		h.ev.eng.canceledLive++
	}
}

// eventHeap is a min-heap ordered by (time, seq); seq breaks ties in
// scheduling order, which makes runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. It is not safe for concurrent use;
// the whole simulation runs on one goroutine.
type Engine struct {
	heap    eventHeap
	now     Time
	nextSeq uint64
	fired   uint64
	stopped bool

	// free holds resolved Event objects awaiting reissue; allocs counts how
	// many Event objects the engine ever created, so the steady-state churn
	// rate is observable (allocs stops growing once the pool warms up).
	free   []*Event
	allocs uint64

	// canceledLive counts canceled events still sitting in the heap, so
	// Pending can report live events without draining the heap.
	canceledLive int
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of live events waiting to fire. Canceled
// events that have not yet been drained from the heap are excluded — a
// simulation with Pending() == 0 will fire nothing more.
func (e *Engine) Pending() int { return len(e.heap) - e.canceledLive }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// EventAllocs returns how many Event objects the engine has allocated. In
// steady state this stays flat while Fired keeps climbing: every resolved
// event is recycled.
func (e *Engine) EventAllocs() uint64 { return e.allocs }

// acquire takes an event from the free-list (or allocates one) and stamps it
// with a fresh generation, invalidating every handle to its previous life.
func (e *Engine) acquire(t Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
		e.allocs++
	}
	ev.gen++
	ev.time = t
	ev.seq = e.nextSeq
	ev.canceled = false
	ev.fired = false
	e.nextSeq++
	return ev
}

// release returns a resolved (fired or canceled-and-drained) event to the
// free-list. The callback references are dropped so the engine does not pin
// closures or handlers alive; the generation is NOT bumped here — it bumps on
// reissue, so stale handles keep reading the event's final state truthfully
// until the object is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.h = nil
	e.free = append(e.free, ev)
}

func (e *Engine) schedule(t Time, fn func(), h Handler) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.acquire(t)
	ev.fn = fn
	ev.h = h
	heap.Push(&e.heap, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics —
// that is always a logic error in a simulation.
func (e *Engine) At(t Time, fn func()) Handle { return e.schedule(t, fn, nil) }

// After schedules fn to run d from now. A negative d panics.
func (e *Engine) After(d Duration, fn func()) Handle {
	return e.schedule(e.now.Add(d), fn, nil)
}

// AtHandler schedules h.Fire to run at absolute time t without allocating a
// closure. Scheduling in the past panics.
func (e *Engine) AtHandler(t Time, h Handler) Handle { return e.schedule(t, nil, h) }

// AfterHandler schedules h.Fire to run d from now without allocating a
// closure. A negative d panics.
func (e *Engine) AfterHandler(d Duration, h Handler) Handle {
	return e.schedule(e.now.Add(d), nil, h)
}

// Stop makes the current Run call return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// CheckInvariants verifies the engine's internal bookkeeping: the canceled
// counter stays within [0, heap size] and matches the canceled events actually
// in the heap, every heap entry knows its own position, no live event is
// scheduled before the current clock, the heap order itself holds, and the
// free-list holds only resolved events that are out of the heap. It returns
// nil when everything is coherent; the audit layer calls it at drain time,
// and it is cheap enough to call in tests after every run.
func (e *Engine) CheckInvariants() error {
	if e.canceledLive < 0 || e.canceledLive > len(e.heap) {
		return fmt.Errorf("sim: canceledLive %d outside [0, %d]", e.canceledLive, len(e.heap))
	}
	canceled := 0
	for i, ev := range e.heap {
		if ev.index != i {
			return fmt.Errorf("sim: heap entry %d carries index %d", i, ev.index)
		}
		if ev.fired {
			return fmt.Errorf("sim: fired event at heap position %d", i)
		}
		if ev.canceled {
			canceled++
			continue
		}
		if ev.time < e.now {
			return fmt.Errorf("sim: live event at %v behind clock %v", ev.time, e.now)
		}
	}
	if canceled != e.canceledLive {
		return fmt.Errorf("sim: canceledLive %d but %d canceled events in heap", e.canceledLive, canceled)
	}
	for i := 1; i < len(e.heap); i++ {
		parent := (i - 1) / 2
		if e.heap.Less(i, parent) {
			return fmt.Errorf("sim: heap order violated between %d and parent %d", i, parent)
		}
	}
	for i, ev := range e.free {
		if ev == nil {
			return fmt.Errorf("sim: nil entry %d in free-list", i)
		}
		if ev.index != -1 {
			return fmt.Errorf("sim: free-list entry %d carries heap index %d", i, ev.index)
		}
		if ev.fn != nil || ev.h != nil {
			return fmt.Errorf("sim: free-list entry %d retains a callback", i)
		}
		if !ev.fired && !ev.canceled {
			return fmt.Errorf("sim: free-list entry %d was never resolved", i)
		}
	}
	if uint64(len(e.free)) > e.allocs {
		return fmt.Errorf("sim: free-list %d exceeds total allocations %d", len(e.free), e.allocs)
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline, then sets the clock to
// the deadline (or to the last event time if the queue drained earlier and the
// deadline is MaxTime). It returns the final simulated time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.time > deadline {
			break
		}
		heap.Pop(&e.heap)
		if next.canceled {
			e.canceledLive--
			e.release(next)
			continue
		}
		e.now = next.time
		next.fired = true
		fn, h := next.fn, next.h
		// Release before firing: the callback may immediately reschedule and
		// reuse this very object (the common timer-rearm pattern), which is
		// safe because reissue bumps the generation.
		e.release(next)
		if h != nil {
			h.Fire()
		} else {
			fn()
		}
		e.fired++
	}
	if deadline != MaxTime && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}
