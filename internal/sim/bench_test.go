package sim

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/raceflag"
)

// BenchmarkEngineSchedule measures raw event throughput: schedule + fire.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// benchTick is a trivial Handler for measuring closure-free dispatch.
type benchTick struct{ n int }

func (t *benchTick) Fire() { t.n++ }

// BenchmarkEngineScheduleHandler measures the closure-free Handler path:
// schedule + fire with zero environment capture.
func BenchmarkEngineScheduleHandler(b *testing.B) {
	e := NewEngine()
	var tick benchTick
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AtHandler(e.Now()+Time(i%1000), &tick)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineTimerChurn measures the cancel-heavy pattern transports
// used for retransmission timers before Timer existed.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var pending Handle
	for i := 0; i < b.N; i++ {
		pending.Cancel()
		pending = e.At(e.Now()+1000, func() {})
		if i%256 == 255 {
			// Advance past the armed horizon so canceled events drain and
			// recycle; lazy cancellation reclaims only at the timestamp.
			e.RunUntil(e.Now() + 2000)
		}
	}
	e.Run()
}

// BenchmarkTimerReset measures the rearmable-timer replacement for the
// cancel-and-reallocate churn pattern.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine()
	var tm Timer
	tm.Init(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(1000)
		if i%256 == 255 {
			e.RunUntil(e.Now() + 2000)
		}
	}
	e.Run()
}

// BenchmarkEngineCancel measures schedule-then-cancel round trips — the cost
// of a retransmission timer that is armed and then satisfied before firing.
// Cancel is a true removal, so the queue never accumulates dead entries.
func BenchmarkEngineCancel(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		b.Run(string(kind), func(b *testing.B) {
			e := NewEngineWith(kind)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := e.At(e.Now()+Time(1+i%4096), func() {})
				h.Cancel()
			}
			e.Run()
		})
	}
}

// BenchmarkEngineDrain measures pure dispatch: batches of events across a
// spread of deadlines, drained in one Run. This is the popDue/cascade path.
func BenchmarkEngineDrain(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		b.Run(string(kind), func(b *testing.B) {
			e := NewEngineWith(kind)
			b.ReportAllocs()
			const batch = 1024
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					// Deadline spread exercises several wheel levels.
					e.At(e.Now()+Time(1+(j*2654435761)%(1<<18)), func() {})
				}
				e.Run()
			}
		})
	}
}

// coldLivePopulation is the standing pending-event population of the cold
// benchmark: 32k live events are a ~2 MB Event slab plus wheel slots — larger
// than L2 on the CI machines — so each fired event is read from memory the
// cache no longer holds. This is the regime the h1024 scale cells run in
// (hundreds of thousands of pending events), which the cache-hot 4096-event
// loop of BenchmarkEngineSchedule never enters.
const coldLivePopulation = 1 << 15

// coldEngine parks the standing population: one event due at each of the next
// coldLivePopulation ticks, so advancing one tick fires exactly one event and
// a replacement schedule keeps the population constant.
func coldEngine(kind SchedulerKind) *Engine {
	e := NewEngineWith(kind)
	for i := 0; i < coldLivePopulation; i++ {
		e.At(e.Now()+Time(i+1), func() {})
	}
	return e
}

// BenchmarkEngineScheduleCold measures schedule+fire against an out-of-cache
// pending set: every op schedules at the horizon and fires the one due event,
// walking the event slab in allocation order instead of reusing a hot slot.
func BenchmarkEngineScheduleCold(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		b.Run(string(kind), func(b *testing.B) {
			e := coldEngine(kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.At(e.Now()+Time(coldLivePopulation+1), func() {})
				e.RunUntil(e.Now() + 1)
			}
		})
	}
}

// Committed hot-path budgets for the CI smoke gate. The steady state is zero
// allocations; the ns ceilings are deliberately loose (an order of magnitude
// above the recorded numbers in BENCH_micro.json) so the gate catches
// asymptotic regressions — an O(log n) or allocating scheduler sneaking back
// in — without flaking on machine noise. Raising either is a performance
// regression and needs a PR justifying why.
const (
	schedAllocCeiling   = 0.05 // allocs per schedule+fire / schedule+cancel cycle
	schedNsCeiling      = 2000 // ns per schedule+fire cycle
	cancelNsCeiling     = 2000 // ns per schedule+cancel round trip
	coldNsCeiling       = 4000 // ns per schedule+fire cycle against the cold pending set
	schedGateIterations = 20000
)

// TestEngineScheduleColdGate holds the out-of-cache schedule+fire path to its
// committed budget: still allocation-free (the slab recycles slots, never
// allocates per event) and within the cold ns ceiling — roughly the hot
// ceiling plus the memory stalls a 2 MB live set costs. A trip here with the
// hot gate green means the layout regressed (events scattered, a pointer
// chase reintroduced), not the algorithm.
func TestEngineScheduleColdGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		e := coldEngine(kind)
		cycle := func() {
			e.At(e.Now()+Time(coldLivePopulation+1), func() {})
			e.RunUntil(e.Now() + 1)
		}
		if avg := testing.AllocsPerRun(1000, cycle); avg > schedAllocCeiling {
			t.Errorf("%s: cold schedule+fire allocates %.3f objects/op, ceiling %v",
				kind, avg, schedAllocCeiling)
		}
		if raceflag.Enabled {
			continue // ns ceilings are meaningless under race instrumentation
		}
		res := testing.Benchmark(func(b *testing.B) {
			e := coldEngine(kind)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				e.At(e.Now()+Time(coldLivePopulation+1), func() {})
				e.RunUntil(e.Now() + 1)
			}
		})
		if ns := res.NsPerOp(); res.N >= schedGateIterations && ns > coldNsCeiling {
			t.Errorf("%s: cold schedule+fire %d ns/op, ceiling %d", kind, ns, coldNsCeiling)
		}
	}
}

// TestSchedulerHotPathGate is the schedule/cancel regression gate run by
// `make bench-smoke`: both schedulers must stay allocation-free and within
// the committed ns-per-op ceilings on the schedule+fire and schedule+cancel
// hot paths.
func TestSchedulerHotPathGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		e := NewEngineWith(kind)
		var i int
		fireCycle := func() {
			e.At(e.Now()+Time(1+i%4096), func() {})
			i++
			if i%64 == 0 {
				e.Run()
			}
		}
		cancelCycle := func() {
			h := e.At(e.Now()+Time(1+i%4096), func() {})
			i++
			h.Cancel()
		}
		// Warm the free list before measuring.
		for j := 0; j < 200; j++ {
			fireCycle()
		}
		e.Run()
		if avg := testing.AllocsPerRun(1000, fireCycle); avg > schedAllocCeiling {
			t.Errorf("%s: schedule+fire allocates %.3f objects/op, ceiling %v", kind, avg, schedAllocCeiling)
		}
		e.Run()
		if avg := testing.AllocsPerRun(1000, cancelCycle); avg > schedAllocCeiling {
			t.Errorf("%s: schedule+cancel allocates %.3f objects/op, ceiling %v", kind, avg, schedAllocCeiling)
		}
		e.Run()

		if raceflag.Enabled {
			continue // ns ceilings are meaningless under race instrumentation
		}
		res := testing.Benchmark(func(b *testing.B) {
			e := NewEngineWith(kind)
			for n := 0; n < b.N; n++ {
				e.At(e.Now()+Time(1+n%4096), func() {})
				if n%64 == 63 {
					e.Run()
				}
			}
			e.Run()
		})
		if ns := res.NsPerOp(); res.N >= schedGateIterations && ns > schedNsCeiling {
			t.Errorf("%s: schedule+fire %d ns/op, ceiling %d", kind, ns, schedNsCeiling)
		}
		res = testing.Benchmark(func(b *testing.B) {
			e := NewEngineWith(kind)
			for n := 0; n < b.N; n++ {
				h := e.At(e.Now()+Time(1+n%4096), func() {})
				h.Cancel()
			}
		})
		if ns := res.NsPerOp(); res.N >= schedGateIterations && ns > cancelNsCeiling {
			t.Errorf("%s: schedule+cancel %d ns/op, ceiling %d", kind, ns, cancelNsCeiling)
		}
	}
}

// BenchmarkTxTime measures the serialization-delay helper on the hot path.
func BenchmarkTxTime(b *testing.B) {
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += TxTime(1538, 100*Gbps)
	}
	_ = sink
}
