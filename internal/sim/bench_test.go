package sim

import "testing"

// BenchmarkEngineSchedule measures raw event throughput: schedule + fire.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// benchTick is a trivial Handler for measuring closure-free dispatch.
type benchTick struct{ n int }

func (t *benchTick) Fire() { t.n++ }

// BenchmarkEngineScheduleHandler measures the closure-free Handler path:
// schedule + fire with zero environment capture.
func BenchmarkEngineScheduleHandler(b *testing.B) {
	e := NewEngine()
	var tick benchTick
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AtHandler(e.Now()+Time(i%1000), &tick)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineTimerChurn measures the cancel-heavy pattern transports
// used for retransmission timers before Timer existed.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var pending Handle
	for i := 0; i < b.N; i++ {
		pending.Cancel()
		pending = e.At(e.Now()+1000, func() {})
		if i%256 == 255 {
			// Advance past the armed horizon so canceled events drain and
			// recycle; lazy cancellation reclaims only at the timestamp.
			e.RunUntil(e.Now() + 2000)
		}
	}
	e.Run()
}

// BenchmarkTimerReset measures the rearmable-timer replacement for the
// cancel-and-reallocate churn pattern.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine()
	var tm Timer
	tm.Init(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(1000)
		if i%256 == 255 {
			e.RunUntil(e.Now() + 2000)
		}
	}
	e.Run()
}

// BenchmarkTxTime measures the serialization-delay helper on the hot path.
func BenchmarkTxTime(b *testing.B) {
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += TxTime(1538, 100*Gbps)
	}
	_ = sink
}
