package sim

import "testing"

// BenchmarkEngineSchedule measures raw event throughput: schedule + fire.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineTimerChurn measures the cancel-heavy pattern transports
// use for retransmission timers.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var pending *Event
	for i := 0; i < b.N; i++ {
		if pending != nil {
			pending.Cancel()
		}
		pending = e.At(e.Now()+1000, func() {})
		if i%256 == 255 {
			e.RunUntil(e.Now() + 10)
		}
	}
	e.Run()
}

// BenchmarkTxTime measures the serialization-delay helper on the hot path.
func BenchmarkTxTime(b *testing.B) {
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += TxTime(1538, 100*Gbps)
	}
	_ = sink
}
