package sim

import "fmt"

// SchedulerKind selects the event-queue implementation backing an Engine.
// Both schedulers fire events in identical (time, schedAt, seq) order — the
// golden digest test and FuzzSchedulerEquivalence prove it — so the choice is
// purely a performance knob with the heap retained as the reference
// implementation.
type SchedulerKind string

const (
	// SchedWheel is the hierarchical timing wheel: O(1) schedule, O(1) true
	// removal on cancel, amortized O(levels) dispatch. The default.
	SchedWheel SchedulerKind = "wheel"

	// SchedHeap is the container/heap-equivalent reference implementation:
	// O(log n) schedule, removal and dispatch.
	SchedHeap SchedulerKind = "heap"
)

// DefaultScheduler is what NewEngine uses.
const DefaultScheduler = SchedWheel

// ParseScheduler maps a -sched flag value to a SchedulerKind. The empty
// string selects the default; anything else must name a known scheduler.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch SchedulerKind(s) {
	case "":
		return DefaultScheduler, nil
	case SchedWheel:
		return SchedWheel, nil
	case SchedHeap:
		return SchedHeap, nil
	default:
		return "", fmt.Errorf("sim: unknown scheduler %q (want %q or %q)", s, SchedWheel, SchedHeap)
	}
}

// SchedStats is a snapshot of an event queue's occupancy: how many events
// are pending now, the high-water marks over the engine's lifetime, and —
// for the timing wheel — how many events sit on the beyond-horizon overflow
// list. The peaks are maintained inline by the schedulers (a compare and a
// conditional store on the schedule path), so reading them costs nothing
// during a run; the scale sweep reports them per (hosts, load) point.
type SchedStats struct {
	Pending      int // events waiting to fire right now
	PeakPending  int // largest Pending ever observed
	Overflow     int // wheel only: events parked beyond the 2^48-tick horizon
	PeakOverflow int // wheel only: largest Overflow ever observed
}

// scheduler is the event-queue contract the Engine drives. Exactly the events
// that were scheduled and not removed are pending; Cancel is a true removal,
// so a scheduler never holds fired or canceled events. Events travel as
// (pointer, slab index) pairs: the pointer spares re-derefencing a slot the
// caller already has in hand, the index is what the queues store.
type scheduler interface {
	// schedule inserts a pending event. The engine guarantees ev.time is not
	// in the past and ev.seq is strictly larger than every earlier event's.
	schedule(ev *Event, idx uint32)

	// remove deletes a pending event before it fires.
	remove(ev *Event, idx uint32)

	// popDue removes and returns the slab index of the earliest pending
	// event by (time, schedAt, seq) if its time is ≤ limit, or nilIdx
	// (leaving the queue untouched in any observable way) when the queue is
	// empty or the earliest event is later.
	popDue(limit Time) uint32

	// next returns the earliest pending deadline without mutating the queue,
	// or false when nothing is pending. This is what the sharded runner uses
	// to compute the global lower bound of the next synchronization window.
	next() (Time, bool)

	// size is the number of pending events.
	size() int

	// kind names the implementation.
	kind() SchedulerKind

	// stats snapshots the queue's occupancy and lifetime high-water marks.
	stats() SchedStats

	// check validates the implementation's structural invariants: membership
	// bookkeeping, ordering, and that no pending event is behind now.
	check(now Time) error
}

// Wheel list identifiers, stored in Event.in. The 512 slot lists are named
// level<<wheelBits | slot; the overflow list and the dispatch batch follow.
// listNone marks an event resident in no list (free, or in the heap).
const (
	numSlotLists = wheelLevels * wheelSlots // slot list ids: 0..511
	listOverflow = numSlotLists
	listDue      = numSlotLists + 1
	listNone     = ^uint16(0)
)

// slotList is an intrusive doubly-linked list of pending events, used by the
// timing wheel for its slots, its overflow level and its same-timestamp
// dispatch batch. Links are slab indices living on the Event itself, so
// membership changes are a handful of 4-byte stores with no allocation and
// the list head is a single word. The zero value is NOT an empty list —
// index 0 is a real slot — so wheels initialize head and tail to nilIdx.
type slotList struct {
	head, tail uint32
}

func (l *slotList) init() { l.head, l.tail = nilIdx, nilIdx }

func (l *slotList) empty() bool { return l.head == nilIdx }

// pushBack appends ev (at slab index idx) and records the owning list id on
// the event.
func (l *slotList) pushBack(sl *eventSlab, ev *Event, idx uint32, id uint16) {
	ev.in = id
	ev.prev = l.tail
	ev.next = nilIdx
	if l.tail != nilIdx {
		sl.at(l.tail).next = idx
	} else {
		l.head = idx
	}
	l.tail = idx
}

// unlink removes ev from this list in O(1) and clears its links. Callers
// removing the last resident of a wheel slot must clear the level's
// occupancy bit themselves (the wheel's remove and cascade paths do).
func (l *slotList) unlink(sl *eventSlab, ev *Event) {
	if ev.prev != nilIdx {
		sl.at(ev.prev).next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nilIdx {
		sl.at(ev.next).prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	ev.next, ev.prev, ev.in = nilIdx, nilIdx, listNone
}

// checkLinks validates the list's internal link structure — every resident
// claims the list id, prev links mirror next links, tail reaches the last
// entry — and returns the number of events it holds.
func (l *slotList) checkLinks(sl *eventSlab, id uint16, what string) (int, error) {
	n := 0
	prev := nilIdx
	for i := l.head; i != nilIdx; {
		ev := sl.at(i)
		if ev.in != id {
			return n, fmt.Errorf("sim: %s entry %d claims a different owning list (%d)", what, n, ev.in)
		}
		if ev.prev != prev {
			return n, fmt.Errorf("sim: %s entry %d has a broken prev link", what, n)
		}
		prev = i
		i = ev.next
		n++
	}
	if l.tail != prev {
		return n, fmt.Errorf("sim: %s tail does not reach the last entry", what)
	}
	if (l.head == nilIdx) != (l.tail == nilIdx) {
		return n, fmt.Errorf("sim: %s head/tail nil mismatch", what)
	}
	return n, nil
}
