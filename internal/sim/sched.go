package sim

import "fmt"

// SchedulerKind selects the event-queue implementation backing an Engine.
// Both schedulers fire events in identical (time, schedAt, seq) order — the
// golden digest test and FuzzSchedulerEquivalence prove it — so the choice is
// purely a performance knob with the heap retained as the reference
// implementation.
type SchedulerKind string

const (
	// SchedWheel is the hierarchical timing wheel: O(1) schedule, O(1) true
	// removal on cancel, amortized O(levels) dispatch. The default.
	SchedWheel SchedulerKind = "wheel"

	// SchedHeap is the container/heap reference implementation: O(log n)
	// schedule, removal and dispatch.
	SchedHeap SchedulerKind = "heap"
)

// DefaultScheduler is what NewEngine uses.
const DefaultScheduler = SchedWheel

// ParseScheduler maps a -sched flag value to a SchedulerKind. The empty
// string selects the default; anything else must name a known scheduler.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch SchedulerKind(s) {
	case "":
		return DefaultScheduler, nil
	case SchedWheel:
		return SchedWheel, nil
	case SchedHeap:
		return SchedHeap, nil
	default:
		return "", fmt.Errorf("sim: unknown scheduler %q (want %q or %q)", s, SchedWheel, SchedHeap)
	}
}

// SchedStats is a snapshot of an event queue's occupancy: how many events
// are pending now, the high-water marks over the engine's lifetime, and —
// for the timing wheel — how many events sit on the beyond-horizon overflow
// list. The peaks are maintained inline by the schedulers (a compare and a
// conditional store on the schedule path), so reading them costs nothing
// during a run; the scale sweep reports them per (hosts, load) point.
type SchedStats struct {
	Pending      int // events waiting to fire right now
	PeakPending  int // largest Pending ever observed
	Overflow     int // wheel only: events parked beyond the 2^48-tick horizon
	PeakOverflow int // wheel only: largest Overflow ever observed
}

// scheduler is the event-queue contract the Engine drives. Exactly the events
// that were scheduled and not removed are pending; Cancel is a true removal,
// so a scheduler never holds fired or canceled events.
type scheduler interface {
	// schedule inserts a pending event. The engine guarantees ev.time is not
	// in the past and ev.seq is strictly larger than every earlier event's.
	schedule(ev *Event)

	// remove deletes a pending event before it fires.
	remove(ev *Event)

	// popDue removes and returns the earliest pending event by (time,
	// schedAt, seq) if its time is ≤ limit, or nil (leaving the queue
	// untouched in any observable way) when the queue is empty or the
	// earliest event is later.
	popDue(limit Time) *Event

	// next returns the earliest pending deadline without mutating the queue,
	// or false when nothing is pending. This is what the sharded runner uses
	// to compute the global lower bound of the next synchronization window.
	next() (Time, bool)

	// size is the number of pending events.
	size() int

	// kind names the implementation.
	kind() SchedulerKind

	// stats snapshots the queue's occupancy and lifetime high-water marks.
	stats() SchedStats

	// check validates the implementation's structural invariants: membership
	// bookkeeping, ordering, and that no pending event is behind now.
	check(now Time) error
}

// eventList is an intrusive doubly-linked list of pending events, used by the
// timing wheel for its slots, its overflow level and its same-timestamp
// dispatch batch. Links live on the Event itself, so membership changes are
// pointer writes with no allocation. A list backing a wheel slot knows its
// (wheel, level, slot) so emptying it can clear the occupancy bitmap bit.
type eventList struct {
	head, tail *Event
	wh         *wheel // non-nil for wheel slot lists
	level      uint8
	slot       uint8
}

// pushBack appends ev and records the owning list on the event.
func (l *eventList) pushBack(ev *Event) {
	ev.in = l
	ev.prev = l.tail
	ev.next = nil
	if l.tail != nil {
		l.tail.next = ev
	} else {
		l.head = ev
	}
	l.tail = ev
}

// unlink removes ev from this list in O(1) and clears its links. When a wheel
// slot empties, the level's occupancy bit is cleared so the bitmap scans stay
// truthful.
func (l *eventList) unlink(ev *Event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	ev.next, ev.prev, ev.in = nil, nil, nil
	if l.head == nil && l.wh != nil {
		l.wh.occupied[l.level] &^= 1 << l.slot
	}
}

// checkLinks validates the list's internal pointer structure and returns the
// number of events it holds.
func (l *eventList) checkLinks(what string) (int, error) {
	n := 0
	var prev *Event
	for ev := l.head; ev != nil; ev = ev.next {
		if ev.in != l {
			return n, fmt.Errorf("sim: %s entry %d claims a different owning list", what, n)
		}
		if ev.prev != prev {
			return n, fmt.Errorf("sim: %s entry %d has a broken prev link", what, n)
		}
		prev = ev
		n++
	}
	if l.tail != prev {
		return n, fmt.Errorf("sim: %s tail does not reach the last entry", what)
	}
	if (l.head == nil) != (l.tail == nil) {
		return n, fmt.Errorf("sim: %s head/tail nil mismatch", what)
	}
	return n, nil
}
