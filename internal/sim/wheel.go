package sim

import (
	"fmt"
	"math/bits"
	"slices"
)

// Wheel geometry. Eight levels of 64 slots cover deltas up to 2^48
// picoseconds (≈ 281 simulated seconds) — far beyond any simulation horizon
// in this repository; anything further sits on an overflow list until the
// clock gets close enough. Level l slots are 64^l ticks wide, so level 0
// slots hold exactly one timestamp and a dispatch batch is exactly the
// same-time events.
const (
	wheelBits        = 6
	wheelSlots       = 1 << wheelBits
	wheelMask        = wheelSlots - 1
	wheelLevels      = 8
	wheelHorizonBits = wheelBits * wheelLevels // 48
)

// wheel is the hierarchical timing-wheel scheduler. Placement uses the
// classic highest-differing-bit-group rule: an event at time t goes to the
// level of the top 6-bit group where t differs from the wheel clock cur,
// at slot (t >> 6·level) & 63. Because every resident event shares all
// higher groups with cur, slots within a level are strictly ordered in time
// from the clock's own slot upward — there is no circular wraparound to
// disambiguate, and the lowest set bit of a level's occupancy bitmap is
// always that level's earliest window.
//
// The slot lists are slab-index links (slotList), so the whole wheel
// skeleton is 512 two-word list heads — 4 KiB, cache-resident — and walking
// a slot touches the contiguous event slab rather than chasing heap
// pointers.
//
// Costs: schedule and remove are O(1); popDue advances the clock straight to
// the next event time (this is a discrete-event simulator — no tick parade)
// and cascades at most one slot per level, so each event is relinked at most
// wheelLevels times over its whole life.
type wheel struct {
	sl       *eventSlab
	cur      Time
	slots    [numSlotLists]slotList // indexed level<<wheelBits | slot
	occupied [wheelLevels]uint64    // bit s set iff slots[l<<6|s] is nonempty

	// overflow holds events beyond the top level's horizon, unordered; they
	// migrate into the wheel when the clock crosses a horizon boundary.
	// overflowMin caches the earliest overflow deadline so the common
	// popDue path never walks the list; a removal of the cached minimum
	// marks it dirty for lazy recomputation. overflowLen counts residents
	// (the intrusive list has no length of its own) so occupancy is
	// observable without a walk.
	overflow      slotList
	overflowMin   Time
	overflowDirty bool
	overflowLen   int

	// due is the same-timestamp dispatch batch: the level-0 slot at cur,
	// detached and sorted by (schedAt, seq). popDue serves from it until it
	// drains; events scheduled at the current instant mid-batch land back in
	// the level-0 slot and form the next batch. Such events carry schedAt ==
	// cur while everything already in the batch was scheduled strictly
	// earlier, so serving the batch first preserves the dispatch order.
	due slotList

	count   int
	scratch []uint32 // reusable sort buffer for dispatch batches

	// Lifetime high-water marks, maintained inline on the schedule path.
	peakCount    int
	peakOverflow int
}

func newWheel(sl *eventSlab) *wheel {
	w := &wheel{sl: sl}
	for i := range w.slots {
		w.slots[i].init()
	}
	w.overflow.init()
	w.due.init()
	return w
}

func (w *wheel) schedule(ev *Event, idx uint32) {
	w.count++
	if w.count > w.peakCount {
		w.peakCount = w.count
	}
	w.place(ev, idx)
}

// place links ev into the slot its deadline selects relative to the current
// wheel clock, or onto the overflow list when it is beyond the horizon.
func (w *wheel) place(ev *Event, idx uint32) {
	d := uint64(ev.time ^ w.cur)
	if d>>wheelHorizonBits != 0 {
		if !w.overflowDirty && (w.overflow.empty() || ev.time < w.overflowMin) {
			w.overflowMin = ev.time
		}
		w.overflow.pushBack(w.sl, ev, idx, listOverflow)
		w.overflowLen++
		if w.overflowLen > w.peakOverflow {
			w.peakOverflow = w.overflowLen
		}
		return
	}
	l := 0
	if d != 0 {
		l = (63 - bits.LeadingZeros64(d)) / wheelBits
	}
	s := int((uint64(ev.time) >> (l * wheelBits)) & wheelMask)
	id := uint16(l<<wheelBits | s)
	w.slots[id].pushBack(w.sl, ev, idx, id)
	w.occupied[l] |= 1 << s
}

func (w *wheel) remove(ev *Event, idx uint32) {
	switch id := ev.in; id {
	case listOverflow:
		w.overflowLen--
		// Removing the cached minimum invalidates the cache; mark it dirty so
		// the next nextTime recomputes instead of reporting a canceled
		// deadline. Mass cancellation stays O(1) per cancel — the walk is
		// deferred to the next earliest-deadline query.
		if !w.overflowDirty && ev.time == w.overflowMin {
			w.overflowDirty = true
		}
		w.overflow.unlink(w.sl, ev)
	case listDue:
		w.due.unlink(w.sl, ev)
	default:
		li := &w.slots[id]
		li.unlink(w.sl, ev)
		if li.empty() {
			w.occupied[id>>wheelBits] &^= 1 << (id & wheelMask)
		}
	}
	w.count--
}

// nextTime returns the earliest pending deadline without mutating the wheel.
// The XOR placement rule makes levels strictly ordered in time: every level-l
// resident precedes every level-(l+1) resident (they differ from the clock in
// a higher bit group), and overflow events lie beyond all of them. So the
// earliest event lives in the lowest occupied slot of the lowest occupied
// level — and at level 0 that slot holds a single timestamp, making the
// common case a bitmap scan plus one slab load.
func (w *wheel) nextTime() (Time, bool) {
	for l := 0; l < wheelLevels; l++ {
		occ := w.occupied[l]
		if occ == 0 {
			continue
		}
		s := bits.TrailingZeros64(occ)
		li := &w.slots[l<<wheelBits|s]
		if l == 0 {
			return w.sl.at(li.head).time, true
		}
		best := MaxTime
		for i := li.head; i != nilIdx; {
			ev := w.sl.at(i)
			if ev.time < best {
				best = ev.time
			}
			i = ev.next
		}
		return best, true
	}
	if !w.overflow.empty() {
		if w.overflowDirty {
			w.overflowMin = MaxTime
			for i := w.overflow.head; i != nilIdx; {
				ev := w.sl.at(i)
				if ev.time < w.overflowMin {
					w.overflowMin = ev.time
				}
				i = ev.next
			}
			w.overflowDirty = false
		}
		return w.overflowMin, true
	}
	return MaxTime, false
}

// advance jumps the wheel clock to t (the next deadline) and cascades: the
// slot containing t at each level may hold events that now share a narrower
// window with the clock, so they re-place strictly downward. Crossing a
// horizon boundary first migrates overflow events that have come into range.
func (w *wheel) advance(t Time) {
	if (uint64(w.cur^t))>>wheelHorizonBits != 0 {
		w.cur = t
		w.migrateOverflow()
	} else {
		w.cur = t
	}
	for l := wheelLevels - 1; l >= 1; l-- {
		s := int((uint64(t) >> (l * wheelBits)) & wheelMask)
		if w.occupied[l]&(1<<s) == 0 {
			continue
		}
		li := &w.slots[l<<wheelBits|s]
		for i := li.head; i != nilIdx; {
			ev := w.sl.at(i)
			next := ev.next
			li.unlink(w.sl, ev)
			// Cascades move strictly downward: ev now shares group l with the
			// clock, so place picks a lower level, never this slot again.
			w.place(ev, i)
			i = next
		}
		w.occupied[l] &^= 1 << s
	}
}

// migrateOverflow re-places every overflow event now within the horizon and
// refreshes the cached minimum of whatever stays behind.
func (w *wheel) migrateOverflow() {
	w.overflowMin = MaxTime
	for i := w.overflow.head; i != nilIdx; {
		ev := w.sl.at(i)
		next := ev.next
		if uint64(ev.time^w.cur)>>wheelHorizonBits == 0 {
			w.overflow.unlink(w.sl, ev)
			w.overflowLen--
			w.place(ev, i)
		} else if ev.time < w.overflowMin {
			w.overflowMin = ev.time
		}
		i = next
	}
	w.overflowDirty = false
}

func (w *wheel) popDue(limit Time) uint32 {
	if h := w.due.head; h != nilIdx {
		ev := w.sl.at(h)
		if ev.time > limit {
			return nilIdx
		}
		w.due.unlink(w.sl, ev)
		w.count--
		return h
	}
	t, ok := w.nextTime()
	if !ok || t > limit {
		return nilIdx
	}
	w.advance(t)

	// Detach the level-0 slot at the clock — exactly the events at time t —
	// and sort it by (schedAt, seq) into the dispatch batch. Direct local
	// schedules append in that order already; cascaded arrivals and backdated
	// cross-shard deliveries can interleave, hence the sort (pdqsort, linear
	// on the already-sorted common case).
	s := uint16(uint64(t) & wheelMask)
	li := &w.slots[s]
	if h := li.head; h != nilIdx && h == li.tail {
		// Lone event at this timestamp — the overwhelmingly common case in a
		// simulation with picosecond resolution. No batch, no sort.
		li.unlink(w.sl, w.sl.at(h))
		w.occupied[0] &^= 1 << s
		w.count--
		return h
	}
	w.scratch = w.scratch[:0]
	for i := li.head; i != nilIdx; {
		ev := w.sl.at(i)
		next := ev.next
		li.unlink(w.sl, ev)
		w.scratch = append(w.scratch, i)
		i = next
	}
	w.occupied[0] &^= 1 << s
	sl := w.sl
	slices.SortFunc(w.scratch, func(a, b uint32) int {
		ea, eb := sl.at(a), sl.at(b)
		switch {
		case ea.schedAt < eb.schedAt:
			return -1
		case ea.schedAt > eb.schedAt:
			return 1
		case ea.seq < eb.seq:
			return -1
		case ea.seq > eb.seq:
			return 1
		default:
			return 0
		}
	})
	for _, i := range w.scratch {
		w.due.pushBack(sl, sl.at(i), i, listDue)
	}
	h := w.due.head
	w.due.unlink(sl, sl.at(h))
	w.count--
	return h
}

// next returns the earliest pending deadline without mutating the wheel.
// A partially drained dispatch batch holds the current instant's remaining
// events, which by construction precede everything still in the slots.
func (w *wheel) next() (Time, bool) {
	if h := w.due.head; h != nilIdx {
		return w.sl.at(h).time, true
	}
	return w.nextTime()
}

func (w *wheel) size() int { return w.count }

func (w *wheel) kind() SchedulerKind { return SchedWheel }

func (w *wheel) stats() SchedStats {
	return SchedStats{
		Pending:      w.count,
		PeakPending:  w.peakCount,
		Overflow:     w.overflowLen,
		PeakOverflow: w.peakOverflow,
	}
}

// check validates the wheel's structural invariants: occupancy bits mirror
// slot contents, every resident event is pending, in the slot its deadline
// selects, within its level's window of the clock (no overdue cascade), and
// not behind the clock; the dispatch batch holds only current-instant events
// in seq order; overflow events are genuinely beyond the horizon with a
// truthful cached minimum; and the total count matches size.
func (w *wheel) check(now Time) error {
	if w.cur > now {
		return fmt.Errorf("sim: wheel clock %v ahead of engine clock %v", w.cur, now)
	}
	count := 0
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			id := uint16(l<<wheelBits | s)
			li := &w.slots[id]
			occupied := w.occupied[l]&(1<<s) != 0
			if occupied != !li.empty() {
				return fmt.Errorf("sim: wheel level %d slot %d occupancy bit %v disagrees with contents", l, s, occupied)
			}
			n, err := li.checkLinks(w.sl, id, fmt.Sprintf("wheel level %d slot %d", l, s))
			if err != nil {
				return err
			}
			count += n
			for i := li.head; i != nilIdx; {
				ev := w.sl.at(i)
				if ev.resolved() {
					return fmt.Errorf("sim: resolved event resident at wheel level %d slot %d", l, s)
				}
				if ev.time < w.cur {
					return fmt.Errorf("sim: wheel event at %v behind wheel clock %v", ev.time, w.cur)
				}
				if got := int((uint64(ev.time) >> (l * wheelBits)) & wheelMask); got != s {
					return fmt.Errorf("sim: event at %v in wheel level %d slot %d, deadline selects slot %d", ev.time, l, s, got)
				}
				if uint64(ev.time^w.cur)>>((l+1)*wheelBits) != 0 {
					return fmt.Errorf("sim: event at %v overdue for cascade out of level %d (clock %v)", ev.time, l, w.cur)
				}
				i = ev.next
			}
		}
	}
	n, err := w.due.checkLinks(w.sl, listDue, "wheel dispatch batch")
	if err != nil {
		return err
	}
	count += n
	var prevSchedAt Time
	var prevSeq uint64
	for i := w.due.head; i != nilIdx; {
		ev := w.sl.at(i)
		if ev.time != w.cur {
			return fmt.Errorf("sim: dispatch-batch event at %v, wheel clock %v", ev.time, w.cur)
		}
		if ev.resolved() {
			return fmt.Errorf("sim: resolved event in the dispatch batch")
		}
		if i != w.due.head && (ev.schedAt < prevSchedAt || (ev.schedAt == prevSchedAt && ev.seq <= prevSeq)) {
			return fmt.Errorf("sim: dispatch batch out of (schedAt, seq) order ((%v,%d) after (%v,%d))",
				ev.schedAt, ev.seq, prevSchedAt, prevSeq)
		}
		prevSchedAt, prevSeq = ev.schedAt, ev.seq
		i = ev.next
	}
	n, err = w.overflow.checkLinks(w.sl, listOverflow, "wheel overflow")
	if err != nil {
		return err
	}
	if n != w.overflowLen {
		return fmt.Errorf("sim: overflow list holds %d events but overflowLen says %d", n, w.overflowLen)
	}
	count += n
	min := MaxTime
	for i := w.overflow.head; i != nilIdx; {
		ev := w.sl.at(i)
		if ev.resolved() {
			return fmt.Errorf("sim: resolved event on the overflow list")
		}
		if uint64(ev.time^w.cur)>>wheelHorizonBits == 0 {
			return fmt.Errorf("sim: overflow event at %v already within the wheel horizon (clock %v)", ev.time, w.cur)
		}
		if ev.time < min {
			min = ev.time
		}
		i = ev.next
	}
	if !w.overflow.empty() && !w.overflowDirty && w.overflowMin != min {
		return fmt.Errorf("sim: cached overflow minimum %v, actual %v", w.overflowMin, min)
	}
	if count != w.count {
		return fmt.Errorf("sim: wheel holds %d events but count says %d", count, w.count)
	}
	return nil
}
