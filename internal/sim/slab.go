package sim

// Event storage: a chunked, non-moving slab arena. Events are addressed by
// dense uint32 indices instead of pointers, so the scheduler's intrusive
// links, the heap's positions and every Handle are 4-byte indices into
// contiguous chunks — the hot pending set packs into a few cache-resident
// pages instead of being scattered across the GC heap, and the chunks
// themselves hold no pointers the collector must trace (the cold closure
// path lives in a parallel, lazily allocated chunk array).
//
// Chunks never move and never shrink: an index issued once stays valid for
// the engine's lifetime, and the generation counter on each slot extends the
// PR 3 handle discipline — a recycled slot bumps its generation, so every
// stale Handle (and any stale index a test or tool holds) is detectable.

const (
	// eventChunkBits sizes a chunk at 4096 events — 256 KiB of 64-byte
	// events, a few pages of closure slots when the cold path is in use.
	eventChunkBits = 12

	// EventChunkSize is the number of events per slab chunk. Exported so the
	// scale ledger can stamp the slab geometry a measurement ran under.
	EventChunkSize = 1 << eventChunkBits

	eventChunkMask = EventChunkSize - 1
)

// nilIdx is the null event index: the end of every intrusive list and the
// "no event" return of popDue. Index 0 is a valid slot, so the sentinel is
// the all-ones pattern.
const nilIdx = ^uint32(0)

// eventSlab owns every Event an engine ever issues. Slots are carved
// sequentially from the newest chunk; resolved events thread onto a LIFO
// free list through their next links, so steady-state churn reuses the
// hottest slots first and carving stops once the pool warms up.
type eventSlab struct {
	chunks []*[EventChunkSize]Event

	// fns holds the cold closure path: fns[c][i] is the callback of event
	// c<<eventChunkBits|i when it was scheduled with At/After rather than a
	// Handler. A chunk's closure array is allocated only when the first
	// closure lands in it, so handler-only workloads (the packet hot path)
	// never pay for it.
	fns []*[EventChunkSize]func()

	freeHead uint32 // LIFO free list threaded through Event.next
	freeLen  uint32
	carved   uint64 // slots ever issued; the engine's alloc counter
}

// at returns the event at index i. The two-level lookup compiles to two
// dependent loads; no bounds check survives on the inner index.
func (s *eventSlab) at(i uint32) *Event {
	return &s.chunks[i>>eventChunkBits][i&eventChunkMask]
}

// alloc returns a free slot: the head of the free list when one is
// available, otherwise the next carved slot (growing by one chunk when the
// current one is exhausted). Fresh slots come up with clean link state;
// recycled slots were cleaned by the unlink that preceded their release.
func (s *eventSlab) alloc() (*Event, uint32) {
	if s.freeHead != nilIdx {
		idx := s.freeHead
		ev := s.at(idx)
		s.freeHead = ev.next
		s.freeLen--
		ev.next = nilIdx
		return ev, idx
	}
	idx := uint32(s.carved)
	if int(idx>>eventChunkBits) == len(s.chunks) {
		s.chunks = append(s.chunks, new([EventChunkSize]Event))
		s.fns = append(s.fns, nil)
	}
	s.carved++
	ev := s.at(idx)
	ev.index = -1
	ev.in = listNone
	ev.next, ev.prev = nilIdx, nilIdx
	return ev, idx
}

// free threads a resolved slot back onto the free list. The caller has
// already cleared the callback references; the slot's generation is NOT
// bumped here — it bumps on reissue, so stale handles keep reading the
// event's final state truthfully until the slot is reused.
func (s *eventSlab) free(idx uint32) {
	ev := s.at(idx)
	ev.next = s.freeHead
	ev.prev = nilIdx
	s.freeHead = idx
	s.freeLen++
}

// setFn stores an event's closure in the cold parallel array, allocating
// the chunk's closure slots on first use.
func (s *eventSlab) setFn(idx uint32, fn func()) {
	c := idx >> eventChunkBits
	if s.fns[c] == nil {
		s.fns[c] = new([EventChunkSize]func())
	}
	s.fns[c][idx&eventChunkMask] = fn
}

// fn returns the closure stored for idx, nil when none is set.
func (s *eventSlab) fn(idx uint32) func() {
	c := idx >> eventChunkBits
	if fns := s.fns[c]; fns != nil {
		return fns[idx&eventChunkMask]
	}
	return nil
}

// clearFn drops the closure reference so the engine does not pin it alive
// after the event resolves.
func (s *eventSlab) clearFn(idx uint32) {
	s.fns[idx>>eventChunkBits][idx&eventChunkMask] = nil
}
