package sim

import "sync"

// ShardGroup runs several engines in lockstep lookahead windows — the
// classic conservative (null-message-free, barrier-synchronized) PDES
// scheme. Each engine owns a spatial shard of the simulated system; the
// only interaction between shards is latency-bearing (a cross-shard link
// with delay ≥ Lookahead), so every engine may run freely through the
// half-open window [W, W+Lookahead) where W is the global minimum pending
// deadline: no event fired by another shard inside the window can affect
// it earlier than W+Lookahead.
//
// The protocol per round:
//
//  1. W = min over engines of NextEventTime; done when nothing is pending
//     or W exceeds the deadline.
//  2. Every engine runs RunUntil(min(W+Lookahead-1, deadline)) on its own
//     goroutine — the intra-shard hot path takes no locks and shares no
//     mutable state.
//  3. With all workers parked, Barrier runs on the coordinating goroutine:
//     it exchanges the cross-shard handoffs generated during the window.
//     Every handoff carries a delivery time ≥ W+Lookahead, which is
//     strictly after every engine's clock (W+Lookahead-1), so scheduling
//     them can never violate the no-past-events invariant.
//  4. StopWhen (optional) ends the run early — the harness uses it to stop
//     at the first barrier where every flow has completed.
//
// Each round advances the global window by at least Lookahead, so the run
// terminates. With one engine the loop degenerates to repeated RunUntil
// calls on a single goroutine and fires events in exactly the sequential
// order — but the harness keeps shards=1 on the plain Engine path anyway.
type ShardGroup struct {
	Engines   []*Engine
	Lookahead Duration // minimum cross-shard link latency; must be > 0

	// Barrier runs between windows with every worker parked. It merges and
	// schedules the pending cross-shard handoffs in deterministic order.
	Barrier func()

	// StopWhen, if non-nil, is polled after each Barrier; returning true
	// ends the run.
	StopWhen func() bool
}

// Run executes events on every engine up to deadline, synchronizing on
// lookahead windows, and returns the latest engine clock. On a normal
// (exhaustion or deadline) return every engine's clock has advanced to the
// deadline when one was given; on a StopWhen return the clocks rest at the
// end of the last window.
func (g *ShardGroup) Run(deadline Time) Time {
	if g.Lookahead <= 0 {
		panic("sim: ShardGroup requires a positive Lookahead")
	}
	n := len(g.Engines)
	targets := make([]chan Time, n)
	var wg sync.WaitGroup
	for i := range targets {
		targets[i] = make(chan Time)
	}
	for i, e := range g.Engines {
		go func(e *Engine, ch <-chan Time) {
			for t := range ch {
				e.RunUntil(t)
				wg.Done()
			}
		}(e, targets[i])
	}
	defer func() {
		for _, ch := range targets {
			close(ch)
		}
	}()

	stopped := false
	for {
		w := MaxTime
		for _, e := range g.Engines {
			if t, ok := e.NextEventTime(); ok && t < w {
				w = t
			}
		}
		if w == MaxTime || w > deadline {
			break
		}
		target := deadline
		if wl := w.Add(g.Lookahead) - 1; wl < target {
			target = wl
		}
		wg.Add(n)
		for _, ch := range targets {
			ch <- target
		}
		wg.Wait()
		if g.Barrier != nil {
			g.Barrier()
		}
		if g.StopWhen != nil && g.StopWhen() {
			stopped = true
			break
		}
	}
	// Clock parity with the sequential RunUntil contract: when the queue
	// drains (or the earliest event is past the deadline), the clock still
	// advances to the deadline. Nothing ≤ deadline is pending here, so these
	// calls move clocks without firing events.
	if !stopped && deadline != MaxTime {
		for _, e := range g.Engines {
			e.RunUntil(deadline)
		}
	}
	end := Time(0)
	for _, e := range g.Engines {
		if now := e.Now(); now > end {
			end = now
		}
	}
	return end
}

// Fired sums the event counts of every engine in the group.
func (g *ShardGroup) Fired() uint64 {
	var total uint64
	for _, e := range g.Engines {
		total += e.Fired()
	}
	return total
}
