package sim

import "math/rand/v2"

// NewRand returns a deterministic PCG-backed random source derived from the
// given seed and stream. Components of a simulation each take their own
// stream so that adding randomness to one component does not perturb another.
func NewRand(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream^0x9e3779b97f4a7c15))
}

// Exp samples an exponentially distributed duration with the given mean.
// It is the inter-arrival sampler for Poisson processes.
func Exp(r *rand.Rand, mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(r.ExpFloat64() * float64(mean))
}
