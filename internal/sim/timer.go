package sim

// Timer is a rearmable one-shot timer: a single long-lived object that can be
// scheduled, canceled, and scheduled again without the cancel-and-reallocate
// churn of calling Engine.After repeatedly. It implements Handler, so arming
// it allocates no closure and reuses a pooled engine event; the only
// allocation in its whole life is the callback captured at Init.
//
// A Timer is meant to be embedded by value in per-flow or per-port state:
//
//	type flow struct{ rto sim.Timer }
//	f.rto.Init(eng, f.onTimeout)
//	f.rto.Reset(3 * sim.Millisecond)
//
// The callback may call Reset to rearm the timer for a later deadline. A
// Timer is single-shot: after firing it stays idle until rearmed. Not safe
// for concurrent use, like the Engine itself.
type Timer struct {
	eng *Engine
	fn  func()
	h   Handle
}

// NewTimer returns an armed-capable timer; it does not schedule anything.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{}
	t.Init(eng, fn)
	return t
}

// Init binds the timer to an engine and callback. It must be called once
// before the first Reset, and must not be called on an armed timer.
func (t *Timer) Init(eng *Engine, fn func()) {
	if t.h.Pending() {
		panic("sim: Init on an armed Timer")
	}
	t.eng = eng
	t.fn = fn
}

// Fire implements Handler; the engine calls it when the deadline arrives.
// The pending handle is cleared before the callback runs so the callback can
// immediately rearm the timer.
func (t *Timer) Fire() {
	t.h = Handle{}
	t.fn()
}

// Reset (re)arms the timer to fire d from now, replacing any pending
// deadline. A negative d panics.
func (t *Timer) Reset(d Duration) { t.ResetAt(t.eng.Now().Add(d)) }

// ResetAt (re)arms the timer to fire at absolute time at, replacing any
// pending deadline. Scheduling in the past panics.
func (t *Timer) ResetAt(at Time) {
	t.h.Cancel()
	t.h = t.eng.AtHandler(at, t)
}

// Stop cancels the pending deadline, if any. The timer can be rearmed later.
func (t *Timer) Stop() {
	t.h.Cancel()
	t.h = Handle{}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.h.Pending() }

// When returns the pending deadline, or zero if the timer is idle.
func (t *Timer) When() Time { return t.h.Time() }
