package sim

import (
	"fmt"
	"testing"
)

type fnHandler func()

func (f fnHandler) Fire() { f() }

func TestShardGroupPanicsWithoutLookahead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShardGroup.Run with zero Lookahead did not panic")
		}
	}()
	g := &ShardGroup{Engines: []*Engine{NewEngine()}}
	g.Run(MaxTime)
}

// TestShardGroupExchange drives two engines that ping-pong a message across a
// latency-L boundary: each delivery schedules the reply's handoff, the barrier
// moves pending handoffs to the peer engine. The trace must be exactly the
// alternating sequence a sequential simulation of the same system produces,
// and every engine must end at the deadline.
func TestShardGroupExchange(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		t.Run(string(kind), func(t *testing.T) {
			const L = Duration(100)
			const deadline = Time(1000)
			engs := []*Engine{NewEngineWith(kind), NewEngineWith(kind)}
			type handoff struct {
				at, gen Time
				dst     int
			}
			var pending [2][]handoff
			var trace []string
			var bounce func(self int) fnHandler
			bounce = func(self int) fnHandler {
				return func() {
					now := engs[self].Now()
					trace = append(trace, fmt.Sprintf("%d@%d", self, now))
					pending[self] = append(pending[self], handoff{at: now.Add(L), gen: now, dst: 1 - self})
				}
			}
			engs[0].AtHandler(0, bounce(0))
			g := &ShardGroup{
				Engines:   engs,
				Lookahead: L,
				Barrier: func() {
					for src := range pending {
						for _, h := range pending[src] {
							engs[h.dst].AtHandlerFrom(h.at, h.gen, bounce(h.dst))
						}
						pending[src] = pending[src][:0]
					}
				},
			}
			end := g.Run(deadline)
			if end != deadline {
				t.Fatalf("Run returned %v, want deadline %v", end, deadline)
			}
			for i, e := range engs {
				if e.Now() != deadline {
					t.Errorf("engine %d clock %v, want deadline %v", i, e.Now(), deadline)
				}
			}
			var want []string
			for i := 0; i*int(L) <= int(deadline); i++ {
				want = append(want, fmt.Sprintf("%d@%d", i%2, i*int(L)))
			}
			if got := fmt.Sprint(trace); got != fmt.Sprint(want) {
				t.Errorf("trace %v, want %v", trace, want)
			}
			if got := g.Fired(); got != uint64(len(want)) {
				t.Errorf("Fired() = %d, want %d", got, len(want))
			}
		})
	}
}

// TestShardGroupStopWhen ends the run at the first barrier where the
// predicate holds; engine clocks then rest at the end of that window rather
// than advancing to the deadline.
func TestShardGroupStopWhen(t *testing.T) {
	const L = Duration(50)
	engs := []*Engine{NewEngine(), NewEngine()}
	fired := 0
	for i := 0; i < 10; i++ {
		engs[i%2].AtHandler(Time(i*200), fnHandler(func() { fired++ }))
	}
	g := &ShardGroup{
		Engines:   engs,
		Lookahead: L,
		StopWhen:  func() bool { return fired >= 3 },
	}
	g.Run(MaxTime)
	if fired != 3 {
		t.Fatalf("fired %d events before stop, want 3 (one per 200-tick window)", fired)
	}
	for i, e := range engs {
		if e.Now() >= Time(600) {
			t.Errorf("engine %d clock %v ran past the stopping window", i, e.Now())
		}
	}
}

// TestShardGroupDrainsWithoutDeadline checks the exhaustion path: with
// MaxTime as the deadline the loop ends when no events are pending and no
// final clock-advance pass runs.
func TestShardGroupDrainsWithoutDeadline(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	engs[0].AtHandler(10, fnHandler(func() {}))
	engs[1].AtHandler(70, fnHandler(func() {}))
	g := &ShardGroup{Engines: engs, Lookahead: 5}
	// The last event fires at 70 inside the window [70, 74]; worker clocks
	// advance to the window end before the group discovers the queues are dry.
	if end := g.Run(MaxTime); end != 74 {
		t.Fatalf("Run returned %v, want 74 (end of the last window)", end)
	}
	if got := g.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

// TestAtHandlerFromTieBreak pins the backdated tie-break on both schedulers:
// three events share one deadline, and the one scheduled last through
// AtHandlerFrom with the earliest stamp must fire between the two normally
// scheduled ones — (time, schedAt, seq) order, not insertion order.
func TestAtHandlerFromTieBreak(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		t.Run(string(kind), func(t *testing.T) {
			e := NewEngineWith(kind)
			var order []string
			e.AtHandler(100, fnHandler(func() { order = append(order, "early") })) // schedAt 0
			e.AtHandler(50, fnHandler(func() {
				e.AtHandler(100, fnHandler(func() { order = append(order, "late") })) // schedAt 50
			}))
			e.RunUntil(60)
			// Emulates a barrier: the engine is parked at 60 and a cross-shard
			// delivery generated at 25 on some other engine lands at 100.
			e.AtHandlerFrom(100, 25, fnHandler(func() { order = append(order, "backdated") }))
			e.Run()
			want := "[early backdated late]"
			if got := fmt.Sprint(order); got != want {
				t.Errorf("fire order %v, want %v", got, want)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAtHandlerFromPanicsOnFutureStamp: a stamp after the deadline is a logic
// error (it would claim the event was scheduled after it fired).
func TestAtHandlerFromPanicsOnFutureStamp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtHandlerFrom with stamp > deadline did not panic")
		}
	}()
	e := NewEngine()
	e.AtHandlerFrom(10, 20, fnHandler(func() {}))
}
