package sim

import "testing"

// TestHandleReuseAfterFree pins the generation-counter discipline of the
// event slab: a resolved slot keeps reporting its final state to old handles
// until it is reissued, and from the moment a new event occupies the slot
// every stale handle goes inert — reads return zero values and Cancel cannot
// touch the slot's new tenant.
func TestHandleReuseAfterFree(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		t.Run(string(kind), func(t *testing.T) {
			e := NewEngineWith(kind)
			fired := 0

			// Cancel path: the canceled handle reads its final state...
			a := e.At(10, func() { fired++ })
			a.Cancel()
			if a.Pending() || a.Fired() || !a.Canceled() {
				t.Fatalf("canceled handle misreports before reuse: pending=%v fired=%v canceled=%v",
					a.Pending(), a.Fired(), a.Canceled())
			}

			// ...until the LIFO free list hands the slot to the next event.
			b := e.At(20, func() { fired++ })
			if b.idx != a.idx {
				t.Fatalf("free list did not recycle the canceled slot: a.idx=%d b.idx=%d", a.idx, b.idx)
			}
			if b.gen == a.gen {
				t.Fatalf("reissued slot did not bump its generation (gen=%d)", b.gen)
			}
			if a.Pending() || a.Fired() || a.Canceled() || a.Time() != 0 {
				t.Errorf("stale handle not inert after slot reuse: pending=%v fired=%v canceled=%v time=%v",
					a.Pending(), a.Fired(), a.Canceled(), a.Time())
			}
			a.Cancel() // must not evict the slot's new tenant
			if !b.Pending() {
				t.Fatal("stale Cancel removed the reissued event — use-after-free through an old handle")
			}
			e.Run()
			if fired != 1 || !b.Fired() {
				t.Errorf("reissued event outcome: fired=%d b.Fired()=%v, want 1/true", fired, b.Fired())
			}

			// Fire path: same discipline when the slot resolves by firing.
			c := e.At(e.Now()+5, func() { fired++ })
			e.Run()
			if !c.Fired() {
				t.Fatal("fired handle misreports before reuse")
			}
			d := e.At(e.Now()+5, func() { fired++ })
			if d.idx != c.idx {
				t.Fatalf("free list did not recycle the fired slot: c.idx=%d d.idx=%d", c.idx, d.idx)
			}
			if c.Fired() || c.Pending() {
				t.Errorf("stale fired handle not inert after reuse: fired=%v pending=%v", c.Fired(), c.Pending())
			}
			c.Cancel()
			if !d.Pending() {
				t.Fatal("stale Cancel through a fired handle removed the slot's new tenant")
			}
			e.Run()
			if fired != 3 {
				t.Errorf("fired %d events, want 3", fired)
			}
		})
	}
}

// TestSlabChunkGrowthMassCancel drives the slab through the 2^20-pending
// mass-cancel scenario: carving must grow by whole chunks exactly as far as
// the peak population requires, a mass cancel must return every slot to the
// free list with the scheduler empty, and re-offering the same population
// must be served entirely from recycled slots — no new chunk, no new carving.
func TestSlabChunkGrowthMassCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 2^20-event slab; skipped in -short mode")
	}
	const n = 1 << 20
	const wantChunks = n / EventChunkSize
	for _, kind := range []SchedulerKind{SchedWheel, SchedHeap} {
		t.Run(string(kind), func(t *testing.T) {
			e := NewEngineWith(kind)
			handles := make([]Handle, n)
			for i := range handles {
				handles[i] = e.At(Time(1+i), func() {})
			}
			if got := len(e.slab.chunks); got != wantChunks {
				t.Fatalf("carved %d chunks for %d events, want exactly %d", got, n, wantChunks)
			}
			if e.EventAllocs() != n {
				t.Fatalf("EventAllocs = %d, want %d", e.EventAllocs(), n)
			}
			if e.Pending() != n {
				t.Fatalf("Pending = %d, want %d", e.Pending(), n)
			}

			for _, h := range handles {
				h.Cancel()
			}
			if e.Pending() != 0 {
				t.Fatalf("Pending = %d after mass cancel, want 0", e.Pending())
			}
			if e.slab.freeLen != n {
				t.Fatalf("free list holds %d slots after mass cancel, want %d", e.slab.freeLen, n)
			}

			// The same population again: recycled wholesale, zero growth.
			for i := 0; i < n; i++ {
				e.At(Time(1+i), func() {})
			}
			if e.EventAllocs() != n {
				t.Errorf("re-offer carved new slots: EventAllocs = %d, want still %d", e.EventAllocs(), n)
			}
			if got := len(e.slab.chunks); got != wantChunks {
				t.Errorf("re-offer grew the slab to %d chunks, want still %d", got, wantChunks)
			}
			e.Run()
			if e.Fired() != n {
				t.Errorf("Fired = %d, want %d (mass cancel must not eat live events)", e.Fired(), n)
			}
		})
	}
}
