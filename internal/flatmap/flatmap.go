// Package flatmap provides a dependency-free open-addressed hash index
// mapping uint64 keys to dense uint32 slots, for per-flow state tables that
// only ever grow (the simulator never forgets a flow mid-run).
//
// The point versus a built-in map is layout: the index hands out *dense*
// slots in insertion order, so callers keep their actual state in a packed
// array (or chunked slab) indexed by slot, instead of scattering
// pointer-sized map values across the heap. Lookups are one multiplicative
// hash plus a short linear probe over two flat arrays — no bucket pointers,
// no tophash bytes, no write barriers — and iteration over Keys() is
// insertion-ordered and allocation-free, which the deterministic audits
// rely on.
//
// The index does not support deletion; none of its users ever delete.
package flatmap

// Index maps uint64 keys to dense uint32 slots: the i-th distinct key ever
// Put is assigned slot i. The zero value is an empty, ready-to-use index.
type Index struct {
	// Open-addressed buckets in two parallel flat arrays. ctrl holds
	// slot+1 so the zero value means "empty" and a fresh table needs no
	// initialization pass beyond make().
	keys []uint64
	ctrl []uint32

	order []uint64 // keys in insertion order; len(order) == Len()
	shift uint     // 64 - log2(len(keys))
}

const minBuckets = 16

// hash spreads the key with the SplitMix64 multiplicative constant; the top
// bits index the table, so consecutive flow IDs land far apart.
func (ix *Index) hash(key uint64) uint32 {
	return uint32((key * 0x9e3779b97f4a7c15) >> ix.shift)
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return len(ix.order) }

// Keys returns the keys in insertion order. The slice is the index's own
// backing store: callers must treat it as read-only.
func (ix *Index) Keys() []uint64 { return ix.order }

// Get returns the slot of key, or (0, false) when absent.
func (ix *Index) Get(key uint64) (uint32, bool) {
	if len(ix.keys) == 0 {
		return 0, false
	}
	mask := uint32(len(ix.keys) - 1)
	for i := ix.hash(key); ; i = (i + 1) & mask {
		c := ix.ctrl[i]
		if c == 0 {
			return 0, false
		}
		if ix.keys[i] == key {
			return c - 1, true
		}
	}
}

// Put returns the slot of key, inserting it (with slot = Len()) when absent.
// added reports whether the key was new.
func (ix *Index) Put(key uint64) (slot uint32, added bool) {
	// Grow at 3/4 load so probe chains stay short.
	if 4*(len(ix.order)+1) > 3*len(ix.keys) {
		ix.grow()
	}
	mask := uint32(len(ix.keys) - 1)
	for i := ix.hash(key); ; i = (i + 1) & mask {
		c := ix.ctrl[i]
		if c == 0 {
			slot = uint32(len(ix.order))
			ix.keys[i] = key
			ix.ctrl[i] = slot + 1
			ix.order = append(ix.order, key)
			return slot, true
		}
		if ix.keys[i] == key {
			return c - 1, false
		}
	}
}

// grow doubles the bucket array and rehashes every occupied bucket.
func (ix *Index) grow() {
	n := 2 * len(ix.keys)
	if n < minBuckets {
		n = minBuckets
	}
	oldKeys, oldCtrl := ix.keys, ix.ctrl
	ix.keys = make([]uint64, n)
	ix.ctrl = make([]uint32, n)
	shift := uint(64)
	for m := n; m > 1; m >>= 1 {
		shift--
	}
	ix.shift = shift
	mask := uint32(n - 1)
	for b, c := range oldCtrl {
		if c == 0 {
			continue
		}
		k := oldKeys[b]
		i := ix.hash(k)
		for ix.ctrl[i] != 0 {
			i = (i + 1) & mask
		}
		ix.keys[i] = k
		ix.ctrl[i] = c
	}
}

// Reserve pre-sizes the index for at least n keys, so a caller that knows
// its flow count up front avoids incremental rehashing.
func (ix *Index) Reserve(n int) {
	need := minBuckets
	for 3*need < 4*n {
		need <<= 1
	}
	if need > len(ix.keys) {
		old := len(ix.keys)
		// grow() doubles; loop until the bucket array is large enough.
		for len(ix.keys) < need {
			ix.grow()
			if len(ix.keys) == old { // defensive: grow always makes progress
				break
			}
			old = len(ix.keys)
		}
	}
	if cap(ix.order) < n {
		order := make([]uint64, len(ix.order), n)
		copy(order, ix.order)
		ix.order = order
	}
}
