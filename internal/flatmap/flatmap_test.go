package flatmap

import (
	"math/rand/v2"
	"testing"
)

func TestIndexBasic(t *testing.T) {
	var ix Index
	if _, ok := ix.Get(7); ok {
		t.Fatal("empty index claims to hold key 7")
	}
	s, added := ix.Put(7)
	if !added || s != 0 {
		t.Fatalf("first Put = (%d, %v), want (0, true)", s, added)
	}
	s, added = ix.Put(7)
	if added || s != 0 {
		t.Fatalf("duplicate Put = (%d, %v), want (0, false)", s, added)
	}
	s, added = ix.Put(42)
	if !added || s != 1 {
		t.Fatalf("second key Put = (%d, %v), want (1, true)", s, added)
	}
	if got, ok := ix.Get(7); !ok || got != 0 {
		t.Fatalf("Get(7) = (%d, %v), want (0, true)", got, ok)
	}
	if got, ok := ix.Get(42); !ok || got != 1 {
		t.Fatalf("Get(42) = (%d, %v), want (1, true)", got, ok)
	}
	if _, ok := ix.Get(1); ok {
		t.Fatal("Get(1) found a key never inserted")
	}
	if ix.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", ix.Len())
	}
}

// Slots are dense, insertion-ordered, and stable across growth; Keys()
// mirrors the insertion order exactly.
func TestIndexDenseSlotsAcrossGrowth(t *testing.T) {
	var ix Index
	const n = 10000
	keys := make([]uint64, n)
	rng := rand.New(rand.NewPCG(1, 2))
	seen := map[uint64]bool{}
	for i := range keys {
		k := rng.Uint64()
		for seen[k] {
			k = rng.Uint64()
		}
		seen[k] = true
		keys[i] = k
		s, added := ix.Put(k)
		if !added || s != uint32(i) {
			t.Fatalf("Put(#%d) = (%d, %v), want (%d, true)", i, s, added, i)
		}
	}
	for i, k := range keys {
		if s, ok := ix.Get(k); !ok || s != uint32(i) {
			t.Fatalf("Get(#%d) = (%d, %v), want (%d, true)", i, s, ok, i)
		}
	}
	order := ix.Keys()
	if len(order) != n {
		t.Fatalf("Keys() has %d entries, want %d", len(order), n)
	}
	for i, k := range order {
		if k != keys[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, k, keys[i])
		}
	}
}

// Zero is a legal key, not a sentinel.
func TestIndexZeroKey(t *testing.T) {
	var ix Index
	s, added := ix.Put(0)
	if !added || s != 0 {
		t.Fatalf("Put(0) = (%d, %v), want (0, true)", s, added)
	}
	if got, ok := ix.Get(0); !ok || got != 0 {
		t.Fatalf("Get(0) = (%d, %v), want (0, true)", got, ok)
	}
	if _, added := ix.Put(0); added {
		t.Fatal("second Put(0) claimed to add")
	}
}

// Adversarial keys that all hash to nearby buckets must still resolve via
// linear probing.
func TestIndexCollisions(t *testing.T) {
	var ix Index
	// Keys differing only in bits below the hash shift collide maximally
	// under the multiplicative hash's top-bit extraction when crafted as
	// multiples of the modular inverse; simple sequential IDs are already a
	// decent stress since flow IDs are sequential in every run.
	for k := uint64(1); k <= 5000; k++ {
		if s, added := ix.Put(k); !added || s != uint32(k-1) {
			t.Fatalf("Put(%d) = (%d, %v)", k, s, added)
		}
	}
	for k := uint64(1); k <= 5000; k++ {
		if s, ok := ix.Get(k); !ok || s != uint32(k-1) {
			t.Fatalf("Get(%d) = (%d, %v)", k, s, ok)
		}
	}
}

func TestIndexReserve(t *testing.T) {
	var ix Index
	ix.Reserve(1000)
	buckets := len(ix.keys)
	for k := uint64(0); k < 1000; k++ {
		ix.Put(k)
	}
	if len(ix.keys) != buckets {
		t.Fatalf("reserved index rehashed: %d -> %d buckets", buckets, len(ix.keys))
	}
	for k := uint64(0); k < 1000; k++ {
		if s, ok := ix.Get(k); !ok || s != uint32(k) {
			t.Fatalf("Get(%d) = (%d, %v) after Reserve", k, s, ok)
		}
	}
}

func BenchmarkIndexPutGet(b *testing.B) {
	var ix Index
	ix.Reserve(1 << 16)
	for i := 0; i < 1<<16; i++ {
		ix.Put(uint64(i) * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i&0xffff) * 2654435761
		if _, ok := ix.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}
