package transport

import (
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	eng := sim.NewEngine()
	net := netem.BuildSingleSwitch(eng, 4, netem.TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
	return NewEnv(net, netem.MaxPayload)
}

func TestSegmenter(t *testing.T) {
	s := Segmenter{Size: 3000, MSS: 1460}
	if s.NumSegs() != 3 {
		t.Fatalf("NumSegs = %d", s.NumSegs())
	}
	if s.SegLen(0) != 1460 || s.SegLen(1) != 1460 || s.SegLen(2) != 80 {
		t.Fatalf("segment lengths wrong: %d %d %d", s.SegLen(0), s.SegLen(1), s.SegLen(2))
	}
	if s.Offset(2) != 2920 {
		t.Fatalf("Offset(2) = %d", s.Offset(2))
	}
	if s.SegOf(2920) != 2 || s.SegOf(1459) != 0 {
		t.Fatal("SegOf wrong")
	}
}

// Property: segments tile the flow exactly — no gaps, no overlap, total
// length equals the flow size.
func TestSegmenterTilingProperty(t *testing.T) {
	prop := func(size uint32, mssRaw uint16) bool {
		mss := int(mssRaw%9000) + 1
		s := Segmenter{Size: int64(size%10_000_000) + 1, MSS: mss}
		var total int64
		for i := 0; i < s.NumSegs(); i++ {
			if s.Offset(i) != total {
				return false
			}
			l := s.SegLen(i)
			if l <= 0 || l > mss {
				return false
			}
			total += int64(l)
		}
		return total == s.Size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRxTracker(t *testing.T) {
	tr := NewRxTracker(3000, 1460)
	if tr.Complete() {
		t.Fatal("empty tracker complete")
	}
	if n := tr.Accept(0); n != 1460 {
		t.Fatalf("Accept(0) = %d", n)
	}
	if n := tr.Accept(0); n != 0 {
		t.Fatalf("duplicate Accept = %d", n)
	}
	if got := tr.Missing(3, nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Missing = %v", got)
	}
	scratch := make([]int, 0, 4)
	if got := tr.Missing(3, scratch); len(got) != 2 || &got[0] != &scratch[:1][0] {
		t.Fatalf("Missing did not reuse scratch: %v", got)
	}
	tr.Accept(2920)
	tr.Accept(1460)
	if !tr.Complete() || tr.Bytes() != 3000 {
		t.Fatalf("tracker incomplete: bytes=%d", tr.Bytes())
	}
	if !tr.Has(1) {
		t.Fatal("Has(1) = false")
	}
}

func TestRxTrackerPanicsOutOfRange(t *testing.T) {
	tr := NewRxTracker(1000, 1460)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Accept did not panic")
		}
	}()
	tr.Accept(5000)
}

// Property: accepting any permutation of offsets completes the flow with
// exactly Size unique bytes.
func TestRxTrackerConservationProperty(t *testing.T) {
	prop := func(sizeRaw uint16, order []uint8) bool {
		size := int64(sizeRaw) + 1
		tr := NewRxTracker(size, 100)
		n := tr.Seg.NumSegs()
		// Accept segments in a scrambled order with duplicates.
		var unique int64
		for _, o := range order {
			unique += int64(tr.Accept(tr.Seg.Offset(int(o) % n)))
		}
		for i := 0; i < n; i++ {
			unique += int64(tr.Accept(tr.Seg.Offset(i)))
		}
		return tr.Complete() && unique == size && tr.Bytes() == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdealFCT(t *testing.T) {
	env := testEnv(t)
	small := env.IdealFCT(1460)
	large := env.IdealFCT(1_000_000)
	if small <= 0 || large <= small {
		t.Fatalf("ideal FCTs not monotone: %v %v", small, large)
	}
	// 1 MB at 10 Gbps ≈ 820 µs of serialization.
	if large < 800*sim.Microsecond || large > 900*sim.Microsecond {
		t.Fatalf("IdealFCT(1MB) = %v", large)
	}
	// Very large flows must not overflow.
	huge := env.IdealFCT(600_000_000)
	if huge <= large {
		t.Fatal("IdealFCT(600MB) overflowed or non-monotone")
	}
}

func TestFlowHashDeterministicAndSpread(t *testing.T) {
	if FlowHash(1) != FlowHash(1) {
		t.Fatal("FlowHash not deterministic")
	}
	buckets := map[uint32]int{}
	for i := uint64(0); i < 8000; i++ {
		buckets[FlowHash(i)%8]++
	}
	for b, n := range buckets {
		if n < 800 || n > 1200 {
			t.Fatalf("bucket %d has %d of 8000 (poor spread)", b, n)
		}
	}
}

// nullProto completes flows instantly without any network traffic.
type nullProto struct{ env *Env }

func (n *nullProto) Name() string { return "null" }
func (n *nullProto) Start(f *Flow) {
	n.env.FlowDone(f)
}

func TestRunnerCompletesAndStops(t *testing.T) {
	env := testEnv(t)
	p := &nullProto{env: env}
	trace := []workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 1, Size: 100, Start: 10},
		{ID: 2, Src: 0, Dst: 2, Size: 100, Start: 20},
		{ID: 3, Src: 1, Dst: 3, Size: 100, Start: 30},
	}
	done := Runner(env, p, trace, sim.MaxTime)
	if done != 3 {
		t.Fatalf("Runner completed %d, want 3", done)
	}
	if env.Completed() != 3 {
		t.Fatalf("Completed() = %d", env.Completed())
	}
	// Records carry ideal FCTs and sizes.
	for _, r := range env.FCT.Records() {
		if r.Size != 100 || r.IdealFCT <= 0 {
			t.Fatalf("bad record %+v", r)
		}
	}
}
