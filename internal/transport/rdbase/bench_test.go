package rdbase

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/raceflag"
)

// benchSender stands in for a packed per-flow sender record: 96 bytes, the
// ballpark of the ExpressPass sender state the real tables hold.
type benchSender struct {
	id      uint64
	next    int64
	credits int64
	sent    int32
	acked   int32
	_       [56]byte
}

// benchTableFlows sizes the benchmark table like an h1024 scale cell
// (1024 hosts x 100 flows/host).
const benchTableFlows = 1 << 17

// benchTable builds a table of benchTableFlows senders keyed by realistic
// sequential flow IDs.
func benchTable() *FlowTable[benchSender] {
	var t FlowTable[benchSender]
	for i := 0; i < benchTableFlows; i++ {
		v, _ := t.Put(uint64(i) + 1)
		v.id = uint64(i) + 1
	}
	return &t
}

// BenchmarkFlowTableLookup measures Get against a full-size table in
// pseudo-random key order, so neither the probe sequence nor the value slab
// stays cache-resident — the access pattern of packet receive on a large
// fabric, where consecutive packets belong to unrelated flows.
func BenchmarkFlowTableLookup(b *testing.B) {
	t := benchTable()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		id := uint64(i)*2654435761%benchTableFlows + 1
		sink += t.Get(id).id
	}
	_ = sink
}

// Committed flow-table budgets for the CI smoke gate: lookups are
// allocation-free and bounded well under a map lookup plus pointer chase —
// loose enough for machine noise, tight enough that a return to
// map-of-pointers state (the pre-optimization layout) trips it.
const (
	flowLookupNsCeiling    = 1000
	flowLookupAllocCeiling = 0.05
	flowGateIterations     = 20000
)

// TestFlowTableLookupGate is the flow-table regression gate run by
// `make bench-smoke`.
func TestFlowTableLookupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	tbl := benchTable()
	var i int
	var sink uint64
	lookup := func() {
		id := uint64(i)*2654435761%benchTableFlows + 1
		sink += tbl.Get(id).id
		i++
	}
	if avg := testing.AllocsPerRun(1000, lookup); avg > flowLookupAllocCeiling {
		t.Errorf("lookup allocates %.3f objects/op, ceiling %v", avg, flowLookupAllocCeiling)
	}
	if raceflag.Enabled {
		return // ns ceilings are meaningless under race instrumentation
	}
	res := testing.Benchmark(func(b *testing.B) {
		tbl := benchTable()
		b.ResetTimer()
		var sink uint64
		for n := 0; n < b.N; n++ {
			id := uint64(n)*2654435761%benchTableFlows + 1
			sink += tbl.Get(id).id
		}
		_ = sink
	})
	if ns := res.NsPerOp(); res.N >= flowGateIterations && ns > flowLookupNsCeiling {
		t.Errorf("lookup %d ns/op, ceiling %d", ns, flowLookupNsCeiling)
	}
	_ = sink
}
