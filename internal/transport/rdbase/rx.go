package rdbase

import (
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Rx is the per-flow receiver substrate: reassembly tracking, the RTO
// lifecycle, and the control-packet plumbing back to the sender (ACKs,
// resend requests, transport-specific control like grants and pulls).
// Transports embed it in their receiver state and keep only policy —
// crediting, grant scheduling, pull pacing — for themselves.
type Rx struct {
	Env     *transport.Env
	Flow    *transport.Flow
	Tracker *transport.RxTracker
	RTO     RTO
	Done    bool

	// CtrlPath, when non-nil, draws the path for an outgoing control packet
	// (NDP sprays control like data); nil routes on the flow's ECMP path.
	CtrlPath func() uint32

	scratch []int
}

// Accept marks the data at offset off received and meters newly delivered
// payload. It returns the number of new bytes (0 for duplicates).
func (r *Rx) Accept(off int64) int {
	n := r.Tracker.Accept(off)
	if n > 0 {
		r.Env.CountDelivered(n)
	}
	return n
}

// Complete reports whether every segment has arrived.
func (r *Rx) Complete() bool { return r.Tracker.Complete() }

func (r *Rx) path() uint32 {
	if r.CtrlPath != nil {
		return r.CtrlPath()
	}
	return r.Flow.PathID
}

// SendCtrl sends a minimum-size control packet back to the sender.
func (r *Rx) SendCtrl(typ netem.PacketType, seq, meta int64) {
	Ctrl(r.Env, r.Flow, typ, r.Flow.Dst, r.Flow.Src, seq, meta, r.path())
}

// SendAck acknowledges one arrival; mark is ProbeAckMark for a probe ACK,
// 0 for a per-packet data ACK.
func (r *Rx) SendAck(seq, mark int64) { r.SendCtrl(netem.Ack, seq, mark) }

// Missing returns the segment indices not yet received among the first n,
// backed by the receiver's scratch buffer: the slice is valid only until
// the next Missing call on this receiver.
func (r *Rx) Missing(n int) []int {
	r.scratch = r.Tracker.Missing(n, r.scratch[:0])
	return r.scratch
}

// SendResend requests retransmission of the given segments. The sender
// answers through Sender.ForceLost.
func (r *Rx) SendResend(segs []int) {
	p := r.Env.Pkt()
	p.Type, p.Flow = netem.Resend, r.Flow.ID
	p.Src, p.Dst = r.Flow.Dst, r.Flow.Src
	p.WireSize, p.Scheduled = netem.HeaderSize, true
	p.PathID = r.path()
	for _, s := range segs {
		p.SegList = append(p.SegList, int32(s))
	}
	r.Env.Net.Host(r.Flow.Dst).Send(p)
}
