// Package rdbase is the shared receiver-driven substrate under ExpressPass,
// Homa and NDP: the per-host flow/sender/receiver state tables, the
// sender-side send queue and segment iterator bound to the Aeolus PreCredit
// machine (internal/core), the receiver-side control-packet plumbing, and
// the retransmission-timeout lifecycle on the pooled sim.Timer.
//
// The split with the transport packages is policy versus mechanism: rdbase
// owns how a segment becomes a wire packet, how the PreCredit burst, probe,
// selective-ACK and lost-queue interplay is driven, and how an RTO arms,
// detects idleness and rearms; the transports own *when* those mechanisms
// fire — credit shaping (ExpressPass), grant scheduling (Homa), trimming
// and pull pacing (NDP).
package rdbase

import (
	"fmt"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// ProbeAckMark distinguishes a probe ACK from a per-packet data ACK in the
// Meta field of Ack packets. Every transport of the substrate shares it.
const ProbeAckMark int64 = 1

// Sender is the per-flow sender substrate: the Aeolus PreCredit state
// machine plus the send queue turning segment indices into wire packets.
// Transports embed it and customize the packets through the hooks.
type Sender struct {
	Env  *transport.Env
	Flow *transport.Flow
	PC   *core.PreCredit

	// Customize, when non-nil, decorates an outgoing data packet (priority,
	// spraying path, piggybacked flow size) after the common fields are set.
	Customize func(p *netem.Packet, seg int, scheduled bool)

	// CustomizeProbe, when non-nil, decorates the end-of-burst probe.
	CustomizeProbe func(p *netem.Packet)
}

// Init wires the sender substrate for one flow: the PreCredit machine is
// built over window bytes of unscheduled burst and bound to the sender's
// send queue and probe path.
func (s *Sender) Init(env *transport.Env, f *transport.Flow, opts core.Options, window int64) {
	s.Env = env
	s.Flow = f
	s.PC = core.NewPreCredit(env, f, opts, window)
	s.PC.SendSeg = s.SendSeg
	s.PC.SendProbe = s.SendProbe
}

// DisableProbe turns off the Aeolus probe/per-packet-ACK loss detection
// while keeping the burst: no probe is sent and the ClassUnacked sweep is
// disabled, so losses surface only through ForceLost (receiver resend
// requests) — the original-transport and RTO-only configurations.
func (s *Sender) DisableProbe() {
	s.PC.SendProbe = func() {}
	s.PC.DisableUnackedSweep()
}

// Host returns the sending host.
func (s *Sender) Host() *netem.Host { return s.Env.Net.Host(s.Flow.Src) }

// Start begins the pre-credit phase.
func (s *Sender) Start() { s.PC.Start() }

// SendSeg transmits one segment, marked scheduled or unscheduled. It is the
// single place a data packet is built in the substrate.
func (s *Sender) SendSeg(seg int, scheduled bool) {
	payload := s.PC.Seg.SegLen(seg)
	s.Env.CountSent(payload)
	p := s.Env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = netem.Data, s.Flow.ID, s.Flow.Src, s.Flow.Dst
	p.Seq, p.PayloadLen = s.PC.Seg.Offset(seg), payload
	p.WireSize, p.Scheduled = netem.WireSizeFor(payload), scheduled
	p.PathID = s.Flow.PathID
	if s.Customize != nil {
		s.Customize(p, seg, scheduled)
	}
	s.Host().Send(p)
}

// SendProbe transmits the end-of-burst probe.
func (s *Sender) SendProbe() {
	p := s.PC.MakeProbe()
	if s.CustomizeProbe != nil {
		s.CustomizeProbe(p)
	}
	s.Host().Send(p)
}

// OnAck routes an Ack packet into the PreCredit machine: probe ACKs trigger
// the §3.3 loss inference, data ACKs mark their segment. It reports whether
// the packet was the probe ACK, so transports can hook phase transitions
// (Homa drains its grant quota once the probe verdict lands).
func (s *Sender) OnAck(p *netem.Packet) (probeAck bool) {
	if p.Meta == ProbeAckMark {
		s.PC.OnProbeAck()
		return true
	}
	s.PC.OnAck(p.Seq)
	return false
}

// ForceLost queues every segment of a receiver resend request for
// highest-priority retransmission.
func (s *Sender) ForceLost(segs []int32) {
	for _, seg := range segs {
		s.PC.ForceLost(int(seg))
	}
}

// Spend spends one scheduled transmission opportunity (credit, pull) on the
// next segment in the §3.3 priority order, transmitting it as scheduled. It
// returns the segment and its class; ClassNone means the opportunity found
// nothing to send (and nothing was transmitted).
func (s *Sender) Spend() (seg int, class core.RetxClass) {
	seg, class = s.PC.Next()
	if class == core.ClassNone {
		return seg, class
	}
	s.SendSeg(seg, true)
	return seg, class
}

// DrainLost retransmits every pending loss-queue segment immediately as
// scheduled packets — the path for transports that answer resend requests
// or timeouts without waiting for fresh transmission opportunities. It
// returns the number of segments retransmitted.
func (s *Sender) DrainLost() int {
	n := 0
	for {
		seg, ok := s.PC.NextLost()
		if !ok {
			return n
		}
		s.SendSeg(seg, true)
		n++
	}
}

// Ctrl builds and sends a minimum-size control packet for a flow. Control
// packets are scheduled (protected) and routed on the flow's ECMP path
// unless the caller overrides path.
func Ctrl(env *transport.Env, f *transport.Flow, typ netem.PacketType,
	src, dst netem.NodeID, seq, meta int64, path uint32) {
	p := env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = typ, f.ID, src, dst
	p.Seq, p.WireSize, p.Scheduled = seq, netem.HeaderSize, true
	p.PathID, p.Meta = path, meta
	env.Net.Host(src).Send(p)
}

// AuditPreCredits checks every per-flow PreCredit machine for internal
// consistency, in flow-ID order, prefixing violations with the transport
// name. It is the shared body of the transports' AuditInvariants.
func AuditPreCredits[S any](name string, senders map[uint64]*S, pc func(*S) *core.PreCredit) []error {
	ids := make([]uint64, 0, len(senders))
	for id := range senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := pc(senders[id]).Audit(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return errs
}

// Tables are the per-host protocol state tables keyed by flow ID: the flow
// descriptors and the per-flow sender machines. One Tables instance serves
// a whole Protocol (all hosts), as is conventional in packet-level
// simulators — logically distributed state in one object.
type Tables[S any] struct {
	flows   map[uint64]*transport.Flow
	senders map[uint64]*S
}

// NewTables returns empty state tables.
func NewTables[S any]() Tables[S] {
	return Tables[S]{
		flows:   make(map[uint64]*transport.Flow),
		senders: make(map[uint64]*S),
	}
}

// AddFlow registers a flow descriptor.
func (t *Tables[S]) AddFlow(f *transport.Flow) { t.flows[f.ID] = f }

// Flow returns the descriptor of a flow, or nil.
func (t *Tables[S]) Flow(id uint64) *transport.Flow { return t.flows[id] }

// AddSender registers the sender machine of a flow.
func (t *Tables[S]) AddSender(id uint64, s *S) { t.senders[id] = s }

// Sender returns the sender machine of a flow, or nil.
func (t *Tables[S]) Sender(id uint64) *S { return t.senders[id] }

// Senders exposes the sender table for audits.
func (t *Tables[S]) Senders() map[uint64]*S { return t.senders }

// Len returns the resident flow-descriptor and sender-machine counts — the
// per-flow state the scale sweep tracks, since neither table is pruned on
// flow completion.
func (t *Tables[S]) Len() (flows, senders int) { return len(t.flows), len(t.senders) }

// HostMap lazily materializes per-receiving-host state (Homa's message
// scheduler, NDP's pull pacer).
type HostMap[R any] struct {
	m  map[netem.NodeID]*R
	mk func(host netem.NodeID) *R
}

// NewHostMap returns a host map materializing entries with mk.
func NewHostMap[R any](mk func(host netem.NodeID) *R) HostMap[R] {
	return HostMap[R]{m: make(map[netem.NodeID]*R), mk: mk}
}

// Get returns the state of a host, materializing it on first use.
func (h *HostMap[R]) Get(host netem.NodeID) *R {
	r := h.m[host]
	if r == nil {
		r = h.mk(host)
		h.m[host] = r
	}
	return r
}

// Len returns the number of materialized host entries.
func (h *HostMap[R]) Len() int { return len(h.m) }

// Each visits every materialized host state; the order is unspecified, so
// callers must only aggregate order-independent facts (counts, sums).
func (h *HostMap[R]) Each(f func(host netem.NodeID, r *R)) {
	for id, r := range h.m {
		f(id, r)
	}
}
