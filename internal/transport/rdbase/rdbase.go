// Package rdbase is the shared receiver-driven substrate under ExpressPass,
// Homa and NDP: the per-host flow/sender/receiver state tables, the
// sender-side send queue and segment iterator bound to the Aeolus PreCredit
// machine (internal/core), the receiver-side control-packet plumbing, and
// the retransmission-timeout lifecycle on the pooled sim.Timer.
//
// The split with the transport packages is policy versus mechanism: rdbase
// owns how a segment becomes a wire packet, how the PreCredit burst, probe,
// selective-ACK and lost-queue interplay is driven, and how an RTO arms,
// detects idleness and rearms; the transports own *when* those mechanisms
// fire — credit shaping (ExpressPass), grant scheduling (Homa), trimming
// and pull pacing (NDP).
package rdbase

import (
	"fmt"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/flatmap"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// ProbeAckMark distinguishes a probe ACK from a per-packet data ACK in the
// Meta field of Ack packets. Every transport of the substrate shares it.
const ProbeAckMark int64 = 1

// Sender is the per-flow sender substrate: the Aeolus PreCredit state
// machine plus the send queue turning segment indices into wire packets.
// Transports embed it and customize the packets through the hooks.
type Sender struct {
	Env  *transport.Env
	Flow *transport.Flow
	PC   *core.PreCredit

	// Customize, when non-nil, decorates an outgoing data packet (priority,
	// spraying path, piggybacked flow size) after the common fields are set.
	Customize func(p *netem.Packet, seg int, scheduled bool)

	// CustomizeProbe, when non-nil, decorates the end-of-burst probe.
	CustomizeProbe func(p *netem.Packet)
}

// Init wires the sender substrate for one flow: the PreCredit machine is
// built over window bytes of unscheduled burst and bound to the sender's
// send queue and probe path.
func (s *Sender) Init(env *transport.Env, f *transport.Flow, opts core.Options, window int64) {
	s.Env = env
	s.Flow = f
	s.PC = core.NewPreCredit(env, f, opts, window)
	s.PC.SendSeg = s.SendSeg
	s.PC.SendProbe = s.SendProbe
}

// DisableProbe turns off the Aeolus probe/per-packet-ACK loss detection
// while keeping the burst: no probe is sent and the ClassUnacked sweep is
// disabled, so losses surface only through ForceLost (receiver resend
// requests) — the original-transport and RTO-only configurations.
func (s *Sender) DisableProbe() {
	s.PC.SendProbe = func() {}
	s.PC.DisableUnackedSweep()
}

// Host returns the sending host.
func (s *Sender) Host() *netem.Host { return s.Env.Net.Host(s.Flow.Src) }

// Start begins the pre-credit phase.
func (s *Sender) Start() { s.PC.Start() }

// SendSeg transmits one segment, marked scheduled or unscheduled. It is the
// single place a data packet is built in the substrate.
func (s *Sender) SendSeg(seg int, scheduled bool) {
	payload := s.PC.Seg.SegLen(seg)
	s.Env.CountSent(payload)
	p := s.Env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = netem.Data, s.Flow.ID, s.Flow.Src, s.Flow.Dst
	p.Seq, p.PayloadLen = s.PC.Seg.Offset(seg), payload
	p.WireSize, p.Scheduled = netem.WireSizeFor(payload), scheduled
	p.PathID = s.Flow.PathID
	if s.Customize != nil {
		s.Customize(p, seg, scheduled)
	}
	s.Host().Send(p)
}

// SendProbe transmits the end-of-burst probe.
func (s *Sender) SendProbe() {
	p := s.PC.MakeProbe()
	if s.CustomizeProbe != nil {
		s.CustomizeProbe(p)
	}
	s.Host().Send(p)
}

// OnAck routes an Ack packet into the PreCredit machine: probe ACKs trigger
// the §3.3 loss inference, data ACKs mark their segment. It reports whether
// the packet was the probe ACK, so transports can hook phase transitions
// (Homa drains its grant quota once the probe verdict lands).
func (s *Sender) OnAck(p *netem.Packet) (probeAck bool) {
	if p.Meta == ProbeAckMark {
		s.PC.OnProbeAck()
		return true
	}
	s.PC.OnAck(p.Seq)
	return false
}

// ForceLost queues every segment of a receiver resend request for
// highest-priority retransmission.
func (s *Sender) ForceLost(segs []int32) {
	for _, seg := range segs {
		s.PC.ForceLost(int(seg))
	}
}

// Spend spends one scheduled transmission opportunity (credit, pull) on the
// next segment in the §3.3 priority order, transmitting it as scheduled. It
// returns the segment and its class; ClassNone means the opportunity found
// nothing to send (and nothing was transmitted).
func (s *Sender) Spend() (seg int, class core.RetxClass) {
	seg, class = s.PC.Next()
	if class == core.ClassNone {
		return seg, class
	}
	s.SendSeg(seg, true)
	return seg, class
}

// DrainLost retransmits every pending loss-queue segment immediately as
// scheduled packets — the path for transports that answer resend requests
// or timeouts without waiting for fresh transmission opportunities. It
// returns the number of segments retransmitted.
func (s *Sender) DrainLost() int {
	n := 0
	for {
		seg, ok := s.PC.NextLost()
		if !ok {
			return n
		}
		s.SendSeg(seg, true)
		n++
	}
}

// Ctrl builds and sends a minimum-size control packet for a flow. Control
// packets are scheduled (protected) and routed on the flow's ECMP path
// unless the caller overrides path.
func Ctrl(env *transport.Env, f *transport.Flow, typ netem.PacketType,
	src, dst netem.NodeID, seq, meta int64, path uint32) {
	p := env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = typ, f.ID, src, dst
	p.Seq, p.WireSize, p.Scheduled = seq, netem.HeaderSize, true
	p.PathID, p.Meta = path, meta
	env.Net.Host(src).Send(p)
}

// flowChunkBits sizes FlowTable's value slab chunks: 256 values per chunk
// keeps growth allocation-cheap while packing per-flow machines that are
// touched together (sequential flow IDs) into contiguous memory.
const (
	flowChunkBits = 8
	flowChunkSize = 1 << flowChunkBits
	flowChunkMask = flowChunkSize - 1
)

// FlowTable is an open-addressed table of packed per-flow state structs
// keyed by flow ID. Values live in non-moving chunked slabs in insertion
// order — the table hands out stable *T pointers, but the structs themselves
// sit shoulder to shoulder instead of one heap object per flow, and lookups
// go through a flat open-addressed index instead of a Go map. Flows are
// never deleted mid-run (completed state is kept for audits and footprint
// accounting), so the table does not support deletion.
type FlowTable[T any] struct {
	idx    flatmap.Index
	chunks []*[flowChunkSize]T
}

// at returns the value at a dense slot.
func (t *FlowTable[T]) at(slot uint32) *T {
	return &t.chunks[slot>>flowChunkBits][slot&flowChunkMask]
}

// Get returns the state of a flow, or nil when the flow is unknown.
func (t *FlowTable[T]) Get(id uint64) *T {
	slot, ok := t.idx.Get(id)
	if !ok {
		return nil
	}
	return t.at(slot)
}

// Put returns the state of a flow, materializing a zeroed slot on first
// use; added reports whether this call created it (so the caller knows to
// initialize). The returned pointer is stable for the table's lifetime.
func (t *FlowTable[T]) Put(id uint64) (v *T, added bool) {
	slot, added := t.idx.Put(id)
	if added && int(slot>>flowChunkBits) == len(t.chunks) {
		t.chunks = append(t.chunks, new([flowChunkSize]T))
	}
	return t.at(slot), added
}

// Len returns the number of resident flows.
func (t *FlowTable[T]) Len() int { return t.idx.Len() }

// At returns the i-th entry in insertion order, 0 ≤ i < Len(). Paired with
// Len it gives hot loops closure-free iteration (Homa's grant scheduler
// walks every message on every arrival).
func (t *FlowTable[T]) At(i int) *T { return t.at(uint32(i)) }

// Keys returns the flow IDs in insertion order (read-only view).
func (t *FlowTable[T]) Keys() []uint64 { return t.idx.Keys() }

// Each visits every entry in insertion order — deterministic, since flows
// are inserted in simulated-event order.
func (t *FlowTable[T]) Each(f func(id uint64, v *T)) {
	for slot, id := range t.idx.Keys() {
		f(id, t.at(uint32(slot)))
	}
}

// AuditPreCredits checks every per-flow PreCredit machine for internal
// consistency, in flow-ID order, prefixing violations with the transport
// name. It is the shared body of the transports' AuditInvariants.
func AuditPreCredits[S any](name string, senders *FlowTable[S], pc func(*S) *core.PreCredit) []error {
	ids := append([]uint64(nil), senders.Keys()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := pc(senders.Get(id)).Audit(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return errs
}

// Tables are the per-host protocol state tables keyed by flow ID: the flow
// descriptors and the per-flow sender machines. One Tables instance serves
// a whole Protocol (all hosts), as is conventional in packet-level
// simulators — logically distributed state in one object. Sender machines
// are stored packed in the table's slab, not as one allocation per flow.
type Tables[S any] struct {
	flows   FlowTable[*transport.Flow]
	senders FlowTable[S]
}

// NewTables returns empty state tables.
func NewTables[S any]() Tables[S] { return Tables[S]{} }

// AddFlow registers a flow descriptor.
func (t *Tables[S]) AddFlow(f *transport.Flow) {
	p, _ := t.flows.Put(f.ID)
	*p = f
}

// Flow returns the descriptor of a flow, or nil.
func (t *Tables[S]) Flow(id uint64) *transport.Flow {
	if p := t.flows.Get(id); p != nil {
		return *p
	}
	return nil
}

// AddSender materializes the sender machine of a flow in the packed sender
// slab and returns it, zeroed, for in-place initialization. The pointer is
// stable for the protocol's lifetime.
func (t *Tables[S]) AddSender(id uint64) *S {
	s, _ := t.senders.Put(id)
	return s
}

// Sender returns the sender machine of a flow, or nil.
func (t *Tables[S]) Sender(id uint64) *S { return t.senders.Get(id) }

// Senders exposes the sender table for audits.
func (t *Tables[S]) Senders() *FlowTable[S] { return &t.senders }

// Len returns the resident flow-descriptor and sender-machine counts — the
// per-flow state the scale sweep tracks, since neither table is pruned on
// flow completion.
func (t *Tables[S]) Len() (flows, senders int) { return t.flows.Len(), t.senders.Len() }

// HostMap lazily materializes per-receiving-host state (Homa's message
// scheduler, NDP's pull pacer). Host IDs are dense and start at zero
// (netem.NodeID's contract), so the map is a flat slice indexed by host ID.
type HostMap[R any] struct {
	hosts []*R
	n     int
	mk    func(host netem.NodeID) *R
}

// NewHostMap returns a host map materializing entries with mk.
func NewHostMap[R any](mk func(host netem.NodeID) *R) HostMap[R] {
	return HostMap[R]{mk: mk}
}

// Get returns the state of a host, materializing it on first use.
func (h *HostMap[R]) Get(host netem.NodeID) *R {
	if int(host) >= len(h.hosts) {
		grown := make([]*R, int(host)+1)
		copy(grown, h.hosts)
		h.hosts = grown
	}
	r := h.hosts[host]
	if r == nil {
		r = h.mk(host)
		h.hosts[host] = r
		h.n++
	}
	return r
}

// Len returns the number of materialized host entries.
func (h *HostMap[R]) Len() int { return h.n }

// Each visits every materialized host state in host-ID order.
func (h *HostMap[R]) Each(f func(host netem.NodeID, r *R)) {
	for id, r := range h.hosts {
		if r != nil {
			f(netem.NodeID(id), r)
		}
	}
}
