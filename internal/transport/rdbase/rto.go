package rdbase

import "github.com/aeolus-transport/aeolus/internal/sim"

// RTO is the receiver-driven retransmission-timeout lifecycle shared by the
// transports: a rearmable idle detector on the pooled sim.Timer. Arm starts
// (or restarts) the countdown; Touch records activity; when the timer fires
// with no activity for a full period, Expire runs and the timer rearms.
//
// Stop and Disarm end the lifecycle in two ways matching the two shutdown
// idioms of the transports: Stop cancels the pending timer event outright
// (receiver completion), while Disarm only marks the lifecycle dead and lets
// an already-scheduled firing lapse as a no-op without rearming (NDP's
// sender learns of completion from the receiver path, outside its own timer
// callback).
type RTO struct {
	tm      sim.Timer
	eng     *sim.Engine
	period  sim.Duration
	last    sim.Time
	stopped bool

	// Expire is the policy hook run when a full period passed with no
	// Touch. The RTO rearms after Expire returns.
	Expire func()
}

// Init binds the RTO to the engine with its period and expiry policy. A
// zero or negative period disables the lifecycle: Arm becomes a no-op.
func (r *RTO) Init(eng *sim.Engine, period sim.Duration, expire func()) {
	r.eng = eng
	r.period = period
	r.Expire = expire
	r.tm.Init(eng, r.fire)
}

// Arm starts (or restarts) the countdown.
func (r *RTO) Arm() {
	if r.period > 0 {
		r.tm.Reset(r.period)
	}
}

// Touch records activity, deferring expiry by a full period from now.
func (r *RTO) Touch() { r.last = r.eng.Now() }

// Stop ends the lifecycle and cancels the pending timer event.
func (r *RTO) Stop() {
	r.stopped = true
	r.tm.Stop()
}

// Disarm ends the lifecycle without touching the pending timer event: an
// already-scheduled firing runs as a no-op and does not rearm.
func (r *RTO) Disarm() { r.stopped = true }

// Pending reports whether a timer event is scheduled.
func (r *RTO) Pending() bool { return r.tm.Pending() }

func (r *RTO) fire() {
	if r.stopped {
		return
	}
	if r.eng.Now().Sub(r.last) >= r.period {
		r.Expire()
	}
	r.Arm()
}
