package ndp

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scheme"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Catalogue registration: the NDP family and its Aeolus variant.

func init() {
	family := scheme.Family[Options]{
		Base: "ndp",
		MSS:  MSS,
		Defaults: func(spec scheme.Spec) Options {
			opts := DefaultOptions()
			opts.Seed = spec.Seed
			if spec.RTO > 0 {
				opts.RTO = spec.RTO
			}
			return opts
		},
		Apply: applyOpt,
		Protocol: func(env *transport.Env, o Options) transport.Protocol {
			return New(env, o)
		},
		Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
			return QdiscFactory(o, buffer)
		},
	}
	family.Register(
		scheme.Variant[Options]{
			Summary: "NDP with switch trimming and per-packet spraying",
			Name:    func(Options) string { return "NDP" },
		},
		scheme.Variant[Options]{
			Suffix:  "+aeolus",
			Summary: "NDP with selective dropping instead of trimming",
			Name:    func(Options) string { return "NDP+Aeolus" },
			Mutate: func(o *Options, spec scheme.Spec) {
				o.Aeolus = core.DefaultOptions()
				// Jumbo frames need a proportionally larger threshold: the
				// paper's 4-packet intuition at NDP's 9 KB MTU.
				o.Aeolus.ThresholdBytes = spec.ThresholdOr(4 * netem.JumboMTU)
			},
		},
	)
}

// applyOpt maps generic -opt keys onto the typed options.
func applyOpt(o *Options, key, val string) error {
	var err error
	switch key {
	case "trimpkts":
		o.TrimThresholdPkts, err = scheme.OptInt(key, val)
	case "spray":
		o.Spray, err = scheme.OptBool(key, val)
	case "probetimeout":
		o.Aeolus.ProbeTimeout, err = scheme.OptDuration(key, val)
	default:
		return fmt.Errorf("unknown option %q (NDP takes trimpkts, spray, probetimeout)", key)
	}
	return err
}
