package ndp

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func build(t *testing.T, opts Options) (*transport.Env, *Protocol) {
	t.Helper()
	eng := sim.NewEngine()
	net := netem.BuildLeafSpine(eng, 2, 4, 4, netem.TopoConfig{
		HostRate:  100 * sim.Gbps,
		LinkDelay: 500 * sim.Nanosecond,
		MakeQdisc: QdiscFactory(opts, netem.DefaultBuffer),
	})
	env := transport.NewEnv(net, MSS)
	return env, New(env, opts)
}

func oneFlow(src, dst int, size int64) []workload.FlowSpec {
	return []workload.FlowSpec{{ID: 1, Src: src, Dst: dst, Size: size, Start: sim.Time(sim.Microsecond)}}
}

func TestSingleFlowCompletes(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = 4 * netem.JumboMTU // jumbo-frame threshold
		env, p := build(t, opts)
		done := transport.Runner(env, p, oneFlow(0, 9, 40_000), sim.Time(sim.Second))
		if done != 1 {
			t.Fatalf("aeolus=%v: flow did not complete", aeolus)
		}
		// The flow fits the first window: no pull round-trip, so FCT is the
		// ideal one-way streaming time plus jumbo store-and-forward per hop.
		rec := env.FCT.Records()[0]
		if rec.Slowdown() > 2 {
			t.Fatalf("aeolus=%v: first-window flow slowdown %.2f (FCT %v)", aeolus, rec.Slowdown(), rec.FCT())
		}
	}
}

func TestLargeFlowPullPaced(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = 4 * netem.JumboMTU
		env, p := build(t, opts)
		const size = 3_000_000
		done := transport.Runner(env, p, oneFlow(0, 9, size), sim.Time(sim.Second))
		if done != 1 {
			t.Fatalf("aeolus=%v: flow did not complete", aeolus)
		}
		if env.Meter.DeliveredPayload != size {
			t.Fatalf("aeolus=%v: delivered %d", aeolus, env.Meter.DeliveredPayload)
		}
		rec := env.FCT.Records()[0]
		if rec.Slowdown() > 3 {
			t.Fatalf("aeolus=%v: slowdown %.2f uncontended", aeolus, rec.Slowdown())
		}
	}
}

func TestIncastTrimsButDelivers(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, opts)
	trace := (&workload.IncastConfig{
		Fanin: 15, Receiver: 0, Hosts: 16, MsgSize: 150_000, Seed: 11,
		StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(sim.Second))
	if done != 15 {
		t.Fatalf("completed %d of 15", done)
	}
	var trimmed uint64
	for _, pt := range env.Net.SwitchPorts() {
		if q, ok := pt.Q.(*netem.NDPQueue); ok {
			trimmed += q.Trimmed()
		}
	}
	if trimmed == 0 {
		t.Fatal("15:1 jumbo incast trimmed nothing")
	}
	// Trimming (not drops) means efficiency stays decent despite incast.
	if eff := env.Meter.Efficiency(); eff < 0.5 {
		t.Fatalf("efficiency %.3f", eff)
	}
}

func TestAeolusIncastDropsInsteadOfTrims(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	opts.Aeolus.ThresholdBytes = 4 * netem.JumboMTU
	env, p := build(t, opts)
	schedDrops := 0
	for _, pt := range env.Net.SwitchPorts() {
		pt.Q.SetDropHook(func(pkt *netem.Packet, _ netem.DropReason) {
			if pkt.Type == netem.Data && pkt.Scheduled {
				schedDrops++
			}
		})
	}
	trace := (&workload.IncastConfig{
		Fanin: 15, Receiver: 0, Hosts: 16, MsgSize: 150_000, Seed: 12,
		StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(sim.Second))
	if done != 15 {
		t.Fatalf("completed %d of 15", done)
	}
	var trimmed uint64
	for _, pt := range env.Net.SwitchPorts() {
		if q, ok := pt.Q.(*netem.NDPQueue); ok {
			trimmed += q.Trimmed()
		}
	}
	if trimmed != 0 {
		t.Fatalf("NDP+Aeolus trimmed %d packets; trimming must be off", trimmed)
	}
	if schedDrops != 0 {
		t.Fatalf("NDP+Aeolus dropped %d scheduled packets", schedDrops)
	}
}

func TestSprayUsesMultiplePaths(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, opts)
	transport.Runner(env, p, oneFlow(0, 15, 2_000_000), sim.Time(sim.Second))
	// Both spines must have carried data of this single flow.
	spinesUsed := 0
	for _, sw := range env.Net.Switches {
		if sw.Label[0] != 's' { // spines are labeled spineN
			continue
		}
		var tx uint64
		for _, pt := range sw.Ports {
			tx += pt.TxPackets
		}
		if tx > 0 {
			spinesUsed++
		}
	}
	if spinesUsed < 2 {
		t.Fatalf("per-packet spraying used %d spines, want ≥2", spinesUsed)
	}
}

func TestNoSprayUsesOnePath(t *testing.T) {
	opts := DefaultOptions()
	opts.Spray = false
	env, p := build(t, opts)
	transport.Runner(env, p, oneFlow(0, 15, 2_000_000), sim.Time(sim.Second))
	spinesUsed := 0
	for _, sw := range env.Net.Switches {
		if sw.Label[0] != 's' {
			continue
		}
		var tx uint64
		for _, pt := range sw.Ports {
			tx += pt.TxPackets
		}
		if tx > 0 {
			spinesUsed++
		}
	}
	if spinesUsed != 1 {
		t.Fatalf("per-flow ECMP used %d spines, want 1", spinesUsed)
	}
}

func TestPoissonMixCompletes(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = 4 * netem.JumboMTU
		env, p := build(t, opts)
		trace := (&workload.PoissonConfig{
			CDF: workload.WebSearch, Hosts: 16, HostRate: 100 * sim.Gbps,
			Load: 0.4, Flows: 200, Seed: 13, StartAt: sim.Time(sim.Microsecond),
		}).Generate()
		done := transport.Runner(env, p, trace, sim.Time(2*sim.Second))
		if done != 200 {
			t.Fatalf("aeolus=%v: completed %d of 200", aeolus, done)
		}
	}
}

func TestProtocolName(t *testing.T) {
	opts := DefaultOptions()
	_, p := build(t, opts)
	if p.Name() != "NDP" {
		t.Fatal(p.Name())
	}
	opts.Aeolus.Enabled = true
	_, p2 := build(t, opts)
	if p2.Name() != "NDP+Aeolus" {
		t.Fatal(p2.Name())
	}
}
