// Package ndp implements the NDP proactive transport [Handley et al.,
// SIGCOMM'17] on the netem fabric, with an optional Aeolus layer (§5.4 of
// the Aeolus paper).
//
// NDP senders blast the first bandwidth-delay product of a flow at line
// rate; switches keep very short data queues (8 packets) and *trim* the
// payload of overflowing packets, so the 64-byte headers still reach the
// receiver at high priority. The receiver NACKs trimmed packets and paces
// all further transmission with PULL packets clocked at the link rate; every
// data packet is sprayed independently across the fabric's equal-cost paths.
//
// With Aeolus enabled, trimming — which commodity switching ASICs do not
// support — is replaced by selective dropping: first-window packets are
// unscheduled and dropped beyond the threshold, pulled/retransmitted packets
// are scheduled and protected, and the probe/per-packet-ACK machinery
// locates first-window losses that now produce no NACK (§5.4: Aeolus works
// as an alternative to cutting payload, deployable on commodity switches).
//
// The package is a policy layer over the shared receiver-driven substrate
// (internal/transport/rdbase): rdbase owns the PreCredit binding, packet
// construction and the RTO lifecycle; this file owns trimming reactions and
// the pull pacer.
package ndp

import (
	"math/rand/v2"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/transport/rdbase"
)

// Options configures NDP.
type Options struct {
	// Aeolus enables and configures the pre-credit building block (and
	// disables switch trimming).
	Aeolus core.Options

	// TrimThresholdPkts is the data-queue bound in packets before trimming
	// (paper default 8 packets = 72 KB of jumbo frames).
	TrimThresholdPkts int

	// Spray enables per-packet multipath spraying (NDP default true).
	Spray bool

	// RTO is a sender-side safety timeout: an incomplete, idle flow re-sends
	// its oldest unacknowledged segment. Zero disables it.
	RTO sim.Duration

	// Seed randomizes spraying.
	Seed uint64
}

// DefaultOptions returns the paper's NDP defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		TrimThresholdPkts: 8,
		Spray:             true,
		RTO:               sim.Millisecond,
	}
}

// MSS is NDP's jumbo-frame payload (the paper sets NDP's MTU to 9 KB).
const MSS = netem.JumboPayload

// QdiscFactory returns the fabric discipline: trimming two-queue ports for
// original NDP, selective-dropping two-queue ports for NDP+Aeolus. Host
// NICs get an unbounded scheduled-first queue (retransmissions and control
// ahead of the blind first window).
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	trim := opts.TrimThresholdPkts
	if trim <= 0 {
		trim = 8
	}
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		if kind == netem.HostNIC {
			return core.NewOraclePrio()
		}
		if opts.Aeolus.Enabled {
			return netem.NewNDPQueue(netem.NDPQueueConfig{
				SelectiveThresholdBytes: opts.Aeolus.ThresholdBytes,
				DataLimitBytes:          bufferBytes,
				CtrlLimitBytes:          bufferBytes,
			})
		}
		return netem.NewNDPQueue(netem.NDPQueueConfig{
			Trim:           true,
			DataLimitBytes: int64(trim) * netem.JumboMTU,
			CtrlLimitBytes: bufferBytes,
		})
	}
}

// Protocol is the NDP implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	tbl     rdbase.Tables[sender]
	rxHosts rdbase.HostMap[rxHost]
}

// New builds the protocol and attaches it to every host of the environment.
// The environment's MSS should be ndp.MSS (jumbo frames).
func New(env *transport.Env, opts Options) *Protocol {
	p := &Protocol{
		env: env, opts: opts,
		rng: sim.NewRand(opts.Seed, 0xfd9),
		tbl: rdbase.NewTables[sender](),
	}
	p.rxHosts = rdbase.NewHostMap(func(host netem.NodeID) *rxHost {
		r := &rxHost{p: p, host: host}
		r.pullTm.Init(p.env.Eng, r.pacePull)
		return r
	})
	for _, h := range env.Net.EndpointHosts() {
		h.EP = &endpoint{p: p, host: h.ID}
	}
	return p
}

// Register records a flow without starting a sender — the receiver-shard
// half of a cross-shard flow (see expresspass.Protocol.Register).
func (p *Protocol) Register(f *transport.Flow) { p.tbl.AddFlow(f) }

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "NDP+Aeolus"
	}
	return "NDP"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.tbl.AddFlow(f)
	s := p.tbl.AddSender(f.ID)
	s.init(p, f)
	s.start()
}

// pathID draws a spraying path for one packet (or the flow hash when
// spraying is off).
func (p *Protocol) pathID(f *transport.Flow) uint32 {
	if p.opts.Spray {
		return p.rng.Uint32()
	}
	return f.PathID
}

type endpoint struct {
	p    *Protocol
	host netem.NodeID
}

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Data, netem.Probe:
		ep.p.rxHosts.Get(ep.host).receive(pkt)
	case netem.Ack, netem.Nack, netem.Pull:
		if s := ep.p.tbl.Sender(pkt.Flow); s != nil {
			s.receive(pkt)
		}
	}
}

// sender is the per-flow sender state: the rdbase substrate plus NDP's
// NACK/pull reactions and the sender-side safety timeout.
type sender struct {
	rdbase.Sender
	p *Protocol

	rto rdbase.RTO
}

// init wires a zeroed sender slot (from the packed sender table) for a flow.
func (s *sender) init(p *Protocol, f *transport.Flow) {
	s.p = p
	s.rto.Init(p.env.Eng, p.opts.RTO, s.rtoExpire)
	opts := p.opts.Aeolus
	opts.Enabled = true // the line-rate first window is NDP's own behaviour
	s.Init(p.env, f, opts, p.env.Net.BDPBytes())
	s.Customize = func(pkt *netem.Packet, seg int, scheduled bool) {
		pkt.PathID, pkt.Meta = s.p.pathID(s.Flow), s.Flow.Size
	}
	if p.opts.Aeolus.Enabled {
		s.CustomizeProbe = func(pr *netem.Packet) {
			pr.PathID = s.p.pathID(s.Flow)
		}
	} else {
		// Original NDP: trimming turns every loss into a NACK, so no probe
		// is needed and blind class-3 retransmissions are never useful.
		s.DisableProbe()
	}
}

func (s *sender) start() {
	s.Start()
	s.rto.Arm()
}

func (s *sender) receive(pkt *netem.Packet) {
	s.rto.Touch()
	switch pkt.Type {
	case netem.Ack:
		s.OnAck(pkt)
	case netem.Nack:
		s.PC.StopBurst()
		s.PC.ForceLost(s.PC.Seg.SegOf(pkt.Seq))
	case netem.Pull:
		s.PC.StopBurst()
		s.Spend()
	}
}

// rtoExpire is NDP's safety-net recovery policy: trimming (or Aeolus's
// probe) normally makes timeouts unnecessary, but a lost probe ACK or
// trimmed-header drop under extreme congestion could otherwise strand the
// flow. Re-queue everything transmitted but never ACKed — covering losses
// the trimming/probe machinery left no trace of — and retransmit
// immediately. Idle detection and rearming live in rdbase.RTO; completion
// disarms the timer from the receiver path.
func (s *sender) rtoExpire() {
	if s.PC.AllAcked() {
		// Every byte is acknowledged; nothing is left to recover.
		// Sequentially the receiver's completion path disarms this timer
		// before it can fire, but on a sharded run the receiver may live on
		// another shard where it cannot reach this sender — without the
		// self-disarm the timer would rearm forever and the drain phase
		// would never terminate.
		s.rto.Disarm()
		return
	}
	if s.PC.RequeueUnacked() > 0 {
		s.Flow.Timeouts++
		s.DrainLost()
	} else if _, class := s.Spend(); class != core.ClassNone {
		s.Flow.Timeouts++
	}
}

// rxFlow is the receiver-side state of one flow.
type rxFlow struct {
	rx rdbase.Rx

	// pullDebt counts the transmissions the sender still needs a pull
	// token for: the payload beyond its first window, plus one per trimmed
	// packet (retransmission) and per hole the probe reveals. Pacing pulls
	// by debt instead of by arrival keeps the pull pacer from burning slots
	// on senders with nothing left to send.
	pullDebt int
}

// rxHost is the per-receiving-host state: flow reassembly plus the pull
// pacer that clocks all senders transmitting to this host.
type rxHost struct {
	p     *Protocol
	host  netem.NodeID
	flows rdbase.FlowTable[rxFlow]

	pullQ   []uint64 // flow IDs awaiting a pull slot
	pacing  bool
	pullTm  sim.Timer
	pullSeq int64
}

func (r *rxHost) receive(pkt *netem.Packet) {
	fl := r.flows.Get(pkt.Flow)
	if fl == nil {
		f := r.p.tbl.Flow(pkt.Flow)
		if f == nil {
			return
		}
		fl, _ = r.flows.Put(pkt.Flow)
		fl.rx.Env = r.p.env
		fl.rx.Flow = f
		fl.rx.Tracker = transport.NewRxTracker(f.Size, r.p.env.MSS)
		// NDP sprays control packets like data.
		fl.rx.CtrlPath = func() uint32 { return r.p.pathID(f) }
		// Initial debt: everything beyond the sender's line-rate window.
		windowSegs := int(r.p.env.Net.BDPBytes()) / r.p.env.MSS
		if windowSegs < 1 {
			windowSegs = 1
		}
		if n := fl.rx.Tracker.Seg.NumSegs() - windowSegs; n > 0 {
			fl.pullDebt = n
		}
	}
	if fl.rx.Done {
		return
	}
	switch {
	case pkt.Type == netem.Probe:
		fl.rx.SendAck(pkt.Seq, rdbase.ProbeAckMark)
		// Dropped first-window packets produced no trimmed header and
		// therefore no pull; each observed hole below the burst end adds a
		// retransmission to the pull debt (NDP+Aeolus, §5.4).
		if pkt.Seq > 0 {
			last := fl.rx.Tracker.Seg.SegOf(pkt.Seq - 1)
			fl.pullDebt += len(fl.rx.Missing(last + 1))
		}
		r.servePulls(fl)
	case pkt.Trimmed:
		// Header of a trimmed packet: NACK triggers retransmission, which
		// needs one more pull.
		fl.rx.SendCtrl(netem.Nack, pkt.Seq, 0)
		fl.pullDebt++
		r.servePulls(fl)
	default:
		fl.rx.SendAck(pkt.Seq, 0)
		fl.rx.Accept(pkt.Seq)
		if fl.rx.Complete() {
			// Keep the tombstoned entry so late duplicates cannot recreate
			// the flow and restart the pull machinery.
			fl.rx.Done = true
			r.p.env.FlowDone(fl.rx.Flow)
			if s := r.p.tbl.Sender(pkt.Flow); s != nil {
				s.rto.Disarm()
			}
			return
		}
		r.servePulls(fl)
	}
}

// servePulls converts outstanding pull debt into pull-queue slots.
func (r *rxHost) servePulls(fl *rxFlow) {
	for fl.pullDebt > 0 {
		fl.pullDebt--
		r.enqueuePull(fl.rx.Flow.ID)
	}
}

// enqueuePull adds a pull slot for the flow and starts the pacer.
func (r *rxHost) enqueuePull(flow uint64) {
	r.pullQ = append(r.pullQ, flow)
	if !r.pacing {
		r.pacing = true
		r.pacePull()
	}
}

// pacePull emits one PULL per full-MTU serialization time, so the data the
// pulls trigger arrives at exactly the receiver's link rate.
func (r *rxHost) pacePull() {
	if len(r.pullQ) == 0 {
		r.pacing = false
		return
	}
	flow := r.pullQ[0]
	r.pullQ = r.pullQ[1:]
	if fl := r.flows.Get(flow); fl != nil && !fl.rx.Done {
		r.pullSeq++
		fl.rx.SendCtrl(netem.Pull, r.pullSeq, 0)
	}
	gap := sim.TxTime(netem.JumboMTU, r.p.env.Net.HostRate)
	r.pullTm.Reset(gap)
}

// AuditInvariants checks every flow's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	return rdbase.AuditPreCredits("ndp", p.tbl.Senders(),
		func(s *sender) *core.PreCredit { return s.PC })
}

// Footprint implements transport.FootprintReporter: resident flow
// descriptors, sender machines and per-flow reassembly state across every
// materialized host.
func (p *Protocol) Footprint() transport.Footprint {
	flows, senders := p.tbl.Len()
	fp := transport.Footprint{Flows: flows, Senders: senders}
	p.rxHosts.Each(func(_ netem.NodeID, r *rxHost) { fp.Receivers += r.flows.Len() })
	return fp
}
