// Package ndp implements the NDP proactive transport [Handley et al.,
// SIGCOMM'17] on the netem fabric, with an optional Aeolus layer (§5.4 of
// the Aeolus paper).
//
// NDP senders blast the first bandwidth-delay product of a flow at line
// rate; switches keep very short data queues (8 packets) and *trim* the
// payload of overflowing packets, so the 64-byte headers still reach the
// receiver at high priority. The receiver NACKs trimmed packets and paces
// all further transmission with PULL packets clocked at the link rate; every
// data packet is sprayed independently across the fabric's equal-cost paths.
//
// With Aeolus enabled, trimming — which commodity switching ASICs do not
// support — is replaced by selective dropping: first-window packets are
// unscheduled and dropped beyond the threshold, pulled/retransmitted packets
// are scheduled and protected, and the probe/per-packet-ACK machinery
// locates first-window losses that now produce no NACK (§5.4: Aeolus works
// as an alternative to cutting payload, deployable on commodity switches).
package ndp

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Options configures NDP.
type Options struct {
	// Aeolus enables and configures the pre-credit building block (and
	// disables switch trimming).
	Aeolus core.Options

	// TrimThresholdPkts is the data-queue bound in packets before trimming
	// (paper default 8 packets = 72 KB of jumbo frames).
	TrimThresholdPkts int

	// Spray enables per-packet multipath spraying (NDP default true).
	Spray bool

	// RTO is a sender-side safety timeout: an incomplete, idle flow re-sends
	// its oldest unacknowledged segment. Zero disables it.
	RTO sim.Duration

	// Seed randomizes spraying.
	Seed uint64
}

// DefaultOptions returns the paper's NDP defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		TrimThresholdPkts: 8,
		Spray:             true,
		RTO:               sim.Millisecond,
	}
}

// MSS is NDP's jumbo-frame payload (the paper sets NDP's MTU to 9 KB).
const MSS = netem.JumboPayload

// QdiscFactory returns the fabric discipline: trimming two-queue ports for
// original NDP, selective-dropping two-queue ports for NDP+Aeolus. Host
// NICs get an unbounded scheduled-first queue (retransmissions and control
// ahead of the blind first window).
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	trim := opts.TrimThresholdPkts
	if trim <= 0 {
		trim = 8
	}
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		if kind == netem.HostNIC {
			return core.NewOraclePrio()
		}
		if opts.Aeolus.Enabled {
			return netem.NewNDPQueue(netem.NDPQueueConfig{
				SelectiveThresholdBytes: opts.Aeolus.ThresholdBytes,
				DataLimitBytes:          bufferBytes,
				CtrlLimitBytes:          bufferBytes,
			})
		}
		return netem.NewNDPQueue(netem.NDPQueueConfig{
			Trim:           true,
			DataLimitBytes: int64(trim) * netem.JumboMTU,
			CtrlLimitBytes: bufferBytes,
		})
	}
}

// Protocol is the NDP implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	flows   map[uint64]*transport.Flow
	senders map[uint64]*sender
	rxHosts map[netem.NodeID]*rxHost
}

// New builds the protocol and attaches it to every host of the environment.
// The environment's MSS should be ndp.MSS (jumbo frames).
func New(env *transport.Env, opts Options) *Protocol {
	p := &Protocol{
		env: env, opts: opts,
		rng:     sim.NewRand(opts.Seed, 0xfd9),
		flows:   make(map[uint64]*transport.Flow),
		senders: make(map[uint64]*sender),
		rxHosts: make(map[netem.NodeID]*rxHost),
	}
	for _, h := range env.Net.Hosts {
		h.EP = &endpoint{p: p, host: h.ID}
	}
	return p
}

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "NDP+Aeolus"
	}
	return "NDP"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.flows[f.ID] = f
	s := newSender(p, f)
	p.senders[f.ID] = s
	s.start()
}

// pathID draws a spraying path for one packet (or the flow hash when
// spraying is off).
func (p *Protocol) pathID(f *transport.Flow) uint32 {
	if p.opts.Spray {
		return p.rng.Uint32()
	}
	return f.PathID
}

type endpoint struct {
	p    *Protocol
	host netem.NodeID
}

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Data, netem.Probe:
		ep.p.rx(ep.host).receive(pkt)
	case netem.Ack, netem.Nack, netem.Pull:
		if s := ep.p.senders[pkt.Flow]; s != nil {
			s.receive(pkt)
		}
	}
}

func (p *Protocol) rx(host netem.NodeID) *rxHost {
	r := p.rxHosts[host]
	if r == nil {
		r = &rxHost{p: p, host: host, flows: make(map[uint64]*rxFlow)}
		r.pullTm.Init(p.env.Eng, r.pacePull)
		p.rxHosts[host] = r
	}
	return r
}

// sender is the per-flow sender state.
type sender struct {
	p  *Protocol
	f  *transport.Flow
	pc *core.PreCredit

	lastActivity sim.Time
	rto          sim.Timer
	done         bool
}

func newSender(p *Protocol, f *transport.Flow) *sender {
	s := &sender{p: p, f: f}
	s.rto.Init(p.env.Eng, s.rtoFire)
	opts := p.opts.Aeolus
	opts.Enabled = true // the line-rate first window is NDP's own behaviour
	s.pc = core.NewPreCredit(p.env, f, opts, p.env.Net.BDPBytes())
	s.pc.SendSeg = s.sendSeg
	if p.opts.Aeolus.Enabled {
		s.pc.SendProbe = s.sendProbe
	} else {
		// Original NDP: trimming turns every loss into a NACK, so no probe
		// is needed and blind class-3 retransmissions are never useful.
		s.pc.SendProbe = func() {}
		s.pc.DisableUnackedSweep()
	}
	return s
}

func (s *sender) host() *netem.Host { return s.p.env.Net.Host(s.f.Src) }

func (s *sender) start() {
	s.pc.Start()
	s.armRTO()
}

func (s *sender) sendSeg(seg int, scheduled bool) {
	payload := s.pc.Seg.SegLen(seg)
	s.p.env.CountSent(payload)
	p := s.p.env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = netem.Data, s.f.ID, s.f.Src, s.f.Dst
	p.Seq, p.PayloadLen = s.pc.Seg.Offset(seg), payload
	p.WireSize, p.Scheduled = netem.WireSizeFor(payload), scheduled
	p.PathID, p.Meta = s.p.pathID(s.f), s.f.Size
	s.host().Send(p)
}

func (s *sender) sendProbe() {
	pr := s.pc.MakeProbe()
	pr.PathID = s.p.pathID(s.f)
	s.host().Send(pr)
}

func (s *sender) receive(pkt *netem.Packet) {
	s.lastActivity = s.p.env.Eng.Now()
	switch pkt.Type {
	case netem.Ack:
		if pkt.Meta == probeAckMark {
			s.pc.OnProbeAck()
		} else {
			s.pc.OnAck(pkt.Seq)
		}
	case netem.Nack:
		s.pc.StopBurst()
		s.pc.ForceLost(s.pc.Seg.SegOf(pkt.Seq))
	case netem.Pull:
		s.pc.StopBurst()
		if seg, class := s.pc.Next(); class != core.ClassNone {
			s.sendSeg(seg, true)
		}
	}
}

// armRTO is a safety net: NDP's trimming (or Aeolus's probe) normally makes
// timeouts unnecessary, but a lost probe ACK or trimmed-header drop under
// extreme congestion could otherwise strand the flow.
func (s *sender) armRTO() {
	if s.p.opts.RTO <= 0 {
		return
	}
	s.rto.Reset(s.p.opts.RTO)
}

func (s *sender) rtoFire() {
	if s.done {
		return
	}
	if s.p.env.Eng.Now().Sub(s.lastActivity) >= s.p.opts.RTO {
		// Re-queue everything transmitted but never ACKed — covering
		// losses the trimming/probe machinery left no trace of — and
		// retransmit immediately.
		if n := s.pc.RequeueUnacked(); n > 0 {
			s.f.Timeouts++
			for {
				seg, ok := s.pc.NextLost()
				if !ok {
					break
				}
				s.sendSeg(seg, true)
			}
		} else if seg, class := s.pc.Next(); class != core.ClassNone {
			s.f.Timeouts++
			s.sendSeg(seg, true)
		}
	}
	s.armRTO()
}

// probeAckMark distinguishes a probe ACK from a per-packet data ACK.
const probeAckMark = 1

// rxFlow is the receiver-side state of one flow.
type rxFlow struct {
	f       *transport.Flow
	tracker *transport.RxTracker
	done    bool

	// pullDebt counts the transmissions the sender still needs a pull
	// token for: the payload beyond its first window, plus one per trimmed
	// packet (retransmission) and per hole the probe reveals. Pacing pulls
	// by debt instead of by arrival keeps the pull pacer from burning slots
	// on senders with nothing left to send.
	pullDebt int
}

// rxHost is the per-receiving-host state: flow reassembly plus the pull
// pacer that clocks all senders transmitting to this host.
type rxHost struct {
	p     *Protocol
	host  netem.NodeID
	flows map[uint64]*rxFlow

	pullQ   []uint64 // flow IDs awaiting a pull slot
	pacing  bool
	pullTm  sim.Timer
	pullSeq int64
}

func (r *rxHost) hostNode() *netem.Host { return r.p.env.Net.Host(r.host) }

func (r *rxHost) receive(pkt *netem.Packet) {
	fl := r.flows[pkt.Flow]
	if fl == nil {
		f := r.p.flows[pkt.Flow]
		if f == nil {
			return
		}
		fl = &rxFlow{f: f, tracker: transport.NewRxTracker(f.Size, r.p.env.MSS)}
		// Initial debt: everything beyond the sender's line-rate window.
		windowSegs := int(r.p.env.Net.BDPBytes()) / r.p.env.MSS
		if windowSegs < 1 {
			windowSegs = 1
		}
		if n := fl.tracker.Seg.NumSegs() - windowSegs; n > 0 {
			fl.pullDebt = n
		}
		r.flows[pkt.Flow] = fl
	}
	if fl.done {
		return
	}
	switch {
	case pkt.Type == netem.Probe:
		r.sendCtrl(fl, netem.Ack, pkt.Seq, probeAckMark)
		// Dropped first-window packets produced no trimmed header and
		// therefore no pull; each observed hole below the burst end adds a
		// retransmission to the pull debt (NDP+Aeolus, §5.4).
		if pkt.Seq > 0 {
			last := fl.tracker.Seg.SegOf(pkt.Seq - 1)
			fl.pullDebt += len(fl.tracker.Missing(last + 1))
		}
		r.servePulls(fl)
	case pkt.Trimmed:
		// Header of a trimmed packet: NACK triggers retransmission, which
		// needs one more pull.
		r.sendCtrl(fl, netem.Nack, pkt.Seq, 0)
		fl.pullDebt++
		r.servePulls(fl)
	default:
		r.sendCtrl(fl, netem.Ack, pkt.Seq, 0)
		if n := fl.tracker.Accept(pkt.Seq); n > 0 {
			r.p.env.CountDelivered(n)
		}
		if fl.tracker.Complete() {
			// Keep the tombstoned entry so late duplicates cannot recreate
			// the flow and restart the pull machinery.
			fl.done = true
			r.p.env.FlowDone(fl.f)
			if s := r.p.senders[pkt.Flow]; s != nil {
				s.done = true
			}
			return
		}
		r.servePulls(fl)
	}
}

// servePulls converts outstanding pull debt into pull-queue slots.
func (r *rxHost) servePulls(fl *rxFlow) {
	for fl.pullDebt > 0 {
		fl.pullDebt--
		r.enqueuePull(fl.f.ID)
	}
}

func (r *rxHost) sendCtrl(fl *rxFlow, typ netem.PacketType, seq, mark int64) {
	p := r.p.env.Pkt()
	p.Type, p.Flow, p.Src, p.Dst = typ, fl.f.ID, r.host, fl.f.Src
	p.Seq, p.WireSize, p.Scheduled = seq, netem.HeaderSize, true
	p.PathID, p.Meta = r.p.pathID(fl.f), mark
	r.hostNode().Send(p)
}

// enqueuePull adds a pull slot for the flow and starts the pacer.
func (r *rxHost) enqueuePull(flow uint64) {
	r.pullQ = append(r.pullQ, flow)
	if !r.pacing {
		r.pacing = true
		r.pacePull()
	}
}

// pacePull emits one PULL per full-MTU serialization time, so the data the
// pulls trigger arrives at exactly the receiver's link rate.
func (r *rxHost) pacePull() {
	if len(r.pullQ) == 0 {
		r.pacing = false
		return
	}
	flow := r.pullQ[0]
	r.pullQ = r.pullQ[1:]
	if fl := r.flows[flow]; fl != nil && !fl.done {
		r.pullSeq++
		p := r.p.env.Pkt()
		p.Type, p.Flow, p.Src, p.Dst = netem.Pull, flow, r.host, fl.f.Src
		p.Seq, p.WireSize, p.Scheduled = r.pullSeq, netem.HeaderSize, true
		p.PathID = r.p.pathID(fl.f)
		r.hostNode().Send(p)
	}
	gap := sim.TxTime(netem.JumboMTU, r.p.env.Net.HostRate)
	r.pullTm.Reset(gap)
}

// AuditInvariants checks every flow's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	ids := make([]uint64, 0, len(p.senders))
	for id := range p.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := p.senders[id].pc.Audit(); err != nil {
			errs = append(errs, fmt.Errorf("ndp: %w", err))
		}
	}
	return errs
}
