package homa

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scheme"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Catalogue registration: the Homa family and its paper variants.

func init() {
	family := scheme.Family[Options]{
		Base: "homa",
		MSS:  netem.MaxPayload,
		Defaults: func(spec scheme.Spec) Options {
			opts := DefaultOptions()
			opts.Workload = spec.Workload
			if spec.RTO > 0 {
				opts.RTO = spec.RTO
			}
			return opts
		},
		Apply: applyOpt,
		Protocol: func(env *transport.Env, o Options) transport.Protocol {
			return New(env, o)
		},
		Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
			return QdiscFactory(o, buffer)
		},
	}
	family.Register(
		scheme.Variant[Options]{
			Summary: "Homa over 8 priority queues (RTO 10ms default)",
			Name:    func(Options) string { return "Homa" },
		},
		scheme.Variant[Options]{
			Suffix:  "+aeolus",
			Summary: "Homa with Aeolus (single selective-dropping queue)",
			Name:    func(Options) string { return "Homa+Aeolus" },
			Mutate: func(o *Options, spec scheme.Spec) {
				o.Aeolus = core.DefaultOptions()
				o.Aeolus.ThresholdBytes = spec.ThresholdOr(core.DefaultThreshold)
			},
		},
		scheme.Variant[Options]{
			Suffix:  "+oracle",
			Summary: "hypothetical Homa (no unscheduled interference, §2.3)",
			Name:    func(Options) string { return "Homa+IdealFirstRTT" },
			Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
				// The hypothetical Homa of §2.3: scheduled packets are never
				// queued or dropped for lack of buffer. Homa's own priority
				// structure with unbounded buffers realizes it — exactly the
				// infinite-buffer assumption the paper notes in Homa's own
				// simulator (§5.5).
				return QdiscFactory(o, 0)
			},
		},
		scheme.Variant[Options]{
			Suffix:  "-eager",
			Summary: "Homa with an aggressive 20µs RTO (Table 1)",
			Name:    func(Options) string { return "EagerHoma" },
			Mutate: func(o *Options, spec scheme.Spec) {
				o.RTO = 20 * sim.Microsecond
				if spec.RTO > 0 {
					o.RTO = spec.RTO
				}
			},
		},
	)
}

// applyOpt maps generic -opt keys onto the typed options.
func applyOpt(o *Options, key, val string) error {
	var err error
	switch key {
	case "overcommit":
		o.Overcommit, err = scheme.OptInt(key, val)
	case "numprios":
		o.NumPrios, err = scheme.OptInt(key, val)
	case "unschedprios":
		o.UnschedPrios, err = scheme.OptInt(key, val)
	case "rttbytes":
		o.RTTBytes, err = scheme.OptInt64(key, val)
	case "spray":
		o.Spray, err = scheme.OptBool(key, val)
	case "probetimeout":
		o.Aeolus.ProbeTimeout, err = scheme.OptDuration(key, val)
	default:
		return fmt.Errorf("unknown option %q (Homa takes overcommit, numprios, unschedprios, rttbytes, spray, probetimeout)", key)
	}
	return err
}
