// Package homa implements the Homa proactive transport [Montazeri, Li,
// Alizadeh, Ousterhout, SIGCOMM'18] on the netem fabric, with an optional
// Aeolus layer (§5.3 of the Aeolus paper).
//
// Homa is message-based and receiver-driven: a sender blindly transmits the
// first RTTbytes of a message as unscheduled packets, at a priority chosen
// from workload-derived cutoffs; the receiver then paces the remainder with
// grants, keeping at most Overcommit messages granted concurrently and one
// RTTbytes of grants outstanding per message, at dynamically assigned
// scheduled priorities. Original Homa runs over 8 strict priority queues
// and prioritizes unscheduled packets *over* scheduled ones; loss recovery
// is a receiver-side retransmission timeout.
//
// With Aeolus enabled, the priority queues remain but every port applies
// selective dropping at port granularity (the paper's "per-port ECN/RED"
// testbed configuration): unscheduled packets burst at line rate but are
// dropped once the port's backlog passes the threshold, scheduled packets
// are protected, per-packet ACKs plus the end-of-burst probe locate
// first-RTT losses, and grants retransmit them as scheduled packets in the
// §3.3 priority order.
//
// The package is a policy layer over the shared receiver-driven substrate
// (internal/transport/rdbase): rdbase owns the PreCredit binding, packet
// construction and the RTO lifecycle; this file owns priority selection and
// the SRPT grant scheduler.
package homa

import (
	"math/rand/v2"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/transport/rdbase"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Options configures Homa.
type Options struct {
	// Aeolus enables and configures the pre-credit building block.
	Aeolus core.Options

	// Overcommit is the receiver's degree of overcommitment: how many
	// messages may hold outstanding grants at once (paper default 6).
	Overcommit int

	// NumPrios is the number of fabric priority levels (paper default 8).
	NumPrios int

	// UnschedPrios is how many of the highest levels serve unscheduled
	// packets (Homa's default split: 4 unscheduled over 4 scheduled).
	UnschedPrios int

	// RTTBytes is the unscheduled first-window per message; 0 derives it
	// from the network BDP.
	RTTBytes int64

	// RTO is the receiver-side retransmission timeout (10 ms for original
	// Homa in the paper's experiments; 20 µs for "eager" Homa; 40 µs in the
	// Fig. 17 incast study). Zero disables timeout recovery.
	RTO sim.Duration

	// Spray enables per-packet multipath spraying for data packets. Homa's
	// evaluations assume a congestion-free, load-balanced core (§6 of the
	// Aeolus paper); per-flow ECMP would instead create core hot spots that
	// drop scheduled packets. Default true via DefaultOptions.
	Spray bool

	// Seed randomizes spraying.
	Seed uint64

	// Workload sets the size distribution used to derive unscheduled
	// priority cutoffs. Nil falls back to even log-spaced cutoffs.
	Workload *workload.CDF
}

// DefaultOptions returns the paper's §5.1 Homa defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		Overcommit:   6,
		NumPrios:     8,
		UnschedPrios: 4,
		RTO:          10 * sim.Millisecond,
		Spray:        true,
	}
}

// QdiscFactory returns the fabric discipline: 8 strict priorities with a
// shared buffer for original Homa, a single selective-dropping FIFO for
// Homa+Aeolus. Host NICs get an unbounded variant of the same policy so
// local ordering matches the fabric's.
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		if kind == netem.HostNIC {
			return netem.NewPrioQdisc(opts.NumPrios, 0) // unbounded host queue
		}
		if opts.Aeolus.Enabled {
			// The paper's Homa+Aeolus switch configuration: keep Homa's
			// priority queues, apply selective dropping per port ("for
			// Homa, we configure per-port ECN/RED", §5.1).
			return netem.NewPrioSelective(opts.NumPrios, opts.Aeolus.ThresholdBytes, bufferBytes)
		}
		return netem.NewPrioQdisc(opts.NumPrios, bufferBytes)
	}
}

// Protocol is the Homa implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	rttBytes int64
	cutoffs  []int64

	tbl     rdbase.Tables[sender]
	rxHosts rdbase.HostMap[rxHost]
}

// New builds the protocol and attaches it to every host of the environment.
func New(env *transport.Env, opts Options) *Protocol {
	if opts.Overcommit <= 0 {
		opts.Overcommit = 6
	}
	if opts.NumPrios <= 0 {
		opts.NumPrios = 8
	}
	if opts.UnschedPrios <= 0 || opts.UnschedPrios >= opts.NumPrios {
		opts.UnschedPrios = opts.NumPrios / 2
	}
	p := &Protocol{
		env: env, opts: opts,
		rng:      sim.NewRand(opts.Seed, 0x40a1),
		rttBytes: opts.RTTBytes,
		tbl:      rdbase.NewTables[sender](),
	}
	p.rxHosts = rdbase.NewHostMap(func(host netem.NodeID) *rxHost {
		return &rxHost{p: p, host: host}
	})
	if p.rttBytes <= 0 {
		p.rttBytes = env.Net.BDPBytes()
	}
	if opts.Workload != nil {
		p.cutoffs = UnschedCutoffs(opts.Workload, p.rttBytes, opts.UnschedPrios)
	} else {
		// Log-spaced fallback cutoffs.
		p.cutoffs = make([]int64, opts.UnschedPrios)
		c := p.rttBytes / 8
		for i := range p.cutoffs {
			p.cutoffs[i] = c
			c *= 8
		}
		p.cutoffs[opts.UnschedPrios-1] = 1 << 62
	}
	for _, h := range env.Net.EndpointHosts() {
		h.EP = &endpoint{p: p, host: h.ID}
	}
	return p
}

// Register records a flow without starting a sender — the receiver-shard
// half of a cross-shard flow (see expresspass.Protocol.Register).
func (p *Protocol) Register(f *transport.Flow) { p.tbl.AddFlow(f) }

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "Homa+Aeolus"
	}
	return "Homa"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.tbl.AddFlow(f)
	s := p.tbl.AddSender(f.ID)
	s.init(p, f)
	s.start()
}

type endpoint struct {
	p    *Protocol
	host netem.NodeID
}

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Data, netem.Probe:
		ep.p.rxHosts.Get(ep.host).receive(pkt)
	case netem.Grant, netem.Ack, netem.Resend:
		if s := ep.p.tbl.Sender(pkt.Flow); s != nil {
			s.receive(pkt)
		}
	}
}

// pathID draws a spraying path for one packet (or the flow hash when
// spraying is off).
func (p *Protocol) pathID(f *transport.Flow) uint32 {
	if p.opts.Spray {
		return p.rng.Uint32()
	}
	return f.PathID
}

// sender is the per-message sender state: the rdbase substrate plus Homa's
// priority selection and grant-quota accounting.
type sender struct {
	rdbase.Sender
	p *Protocol

	unschedPrio uint8
	quota       int64 // granted bytes not yet spent
	grantPrio   uint8
	maxGrant    int64 // highest grant offset accounted so far
	grantBased  bool  // maxGrant baselined to the end of the burst
}

// init wires a zeroed sender slot (from the packed sender table) for a flow.
func (s *sender) init(p *Protocol, f *transport.Flow) {
	s.p, s.unschedPrio = p, PrioFor(p.cutoffs, f.Size)
	// The pre-credit burst is Homa's own unscheduled first window, so it is
	// active in both modes; the probe/ACK machinery only with Aeolus.
	opts := p.opts.Aeolus
	opts.Enabled = true
	s.Init(p.env, f, opts, p.rttBytes)
	s.Customize = func(pkt *netem.Packet, seg int, scheduled bool) {
		prio := s.unschedPrio
		if scheduled {
			prio = s.grantPrio
		}
		pkt.Prio = prio
		pkt.PathID = s.p.pathID(s.Flow)
		pkt.Meta = s.Flow.Size
	}
	if p.opts.Aeolus.Enabled {
		s.CustomizeProbe = func(pr *netem.Packet) {
			pr.Prio = 0
			pr.PathID = s.p.pathID(s.Flow)
		}
	} else {
		// Original Homa has no probe and no per-packet ACKs: the burst is
		// presumed delivered and losses surface only via the receiver RTO.
		s.DisableProbe()
	}
}

func (s *sender) start() { s.Start() }

func (s *sender) receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Grant:
		s.onGrant(pkt.Seq, uint8(pkt.Meta))
	case netem.Ack:
		if s.OnAck(pkt) {
			s.drainQuota()
		}
	case netem.Resend:
		s.ForceLost(pkt.SegList)
		// Homa retransmits resend-requested packets immediately at the
		// granted priority, without waiting for fresh grants.
		s.DrainLost()
	}
}

func (s *sender) onGrant(offset int64, prio uint8) {
	s.PC.StopBurst()
	s.grantPrio = prio
	if !s.grantBased {
		// Grants are absolute offsets; the unscheduled burst already
		// covered everything below its end, so quota starts there.
		s.grantBased = true
		s.maxGrant = s.PC.ProbeSeq()
	}
	if offset > s.maxGrant {
		s.quota += offset - s.maxGrant
		s.maxGrant = offset
	}
	s.drainQuota()
}

// drainQuota spends granted bytes on the next transmissions in the §3.3
// priority order (Aeolus) or on unsent payload (original Homa, where the
// ClassUnacked sweep is disabled so only ClassUnsent and forced losses
// fire). Retransmissions consume grant quota like any scheduled packet —
// that is what keeps them paced and loss-free; the receiver extends its
// grant cap beyond the message size to cover the holes it observes below
// the burst end once the probe arrives.
func (s *sender) drainQuota() {
	for s.quota > 0 {
		seg, class := s.Spend()
		if class == core.ClassNone {
			return
		}
		s.quota -= int64(s.PC.Seg.SegLen(seg))
	}
}

// rxMsg is the receiver-side state of one incoming message.
type rxMsg struct {
	rx         rdbase.Rx
	granted    int64 // highest grant offset sent
	burstEnd   int64 // estimated end of the sender's unscheduled burst
	probeSeen  bool  // burstEnd finalized by the probe
	lostBytes  int64 // burst bytes lost, latched once when the probe arrives
	schedBytes int64 // unique bytes delivered by scheduled packets
	host       *rxHost
}

func (m *rxMsg) remaining() int64 { return m.rx.Flow.Size - m.rx.Tracker.Bytes() }

// wantGrant computes the receiver's grant offset for this message. Grants
// are self-clocked by *scheduled* progress: the sender may have one RTTbytes
// of scheduled data outstanding beyond its burst end, and the total
// scheduled demand is the payload past the burst plus the retransmission of
// every hole the receiver observes below it (known exactly once the probe
// arrives). This keeps retransmissions paced — and therefore protected —
// without ever stalling on losses.
func (m *rxMsg) wantGrant(rttBytes int64) int64 {
	need := m.rx.Flow.Size - m.burstEnd
	if need < 0 {
		need = 0
	}
	// The retransmission demand is latched once at probe arrival: holes are
	// filled by scheduled packets, which also advance schedBytes, so
	// recomputing the holes here would let every retransmission cancel its
	// own grant and strand the tail of the message.
	need += m.lostBytes
	window := m.schedBytes + rttBytes
	if window > need {
		window = need
	}
	return m.burstEnd + window
}

// rxHost is the per-receiving-host message scheduler: it tracks all incoming
// messages and runs the SRPT grant policy with overcommitment. Messages live
// packed in a FlowTable slab; the scheduler walks them by dense slot.
type rxHost struct {
	p    *Protocol
	host netem.NodeID
	msgs rdbase.FlowTable[rxMsg]

	sched []*rxMsg // scratch for the grant scheduler's active set
}

func (r *rxHost) receive(pkt *netem.Packet) {
	m := r.msgs.Get(pkt.Flow)
	if m == nil {
		f := r.p.tbl.Flow(pkt.Flow)
		if f == nil {
			return
		}
		m, _ = r.msgs.Put(pkt.Flow)
		m.host = r
		m.rx.Env = r.p.env
		m.rx.Flow = f
		m.rx.Tracker = transport.NewRxTracker(f.Size, r.p.env.MSS)
		m.rx.RTO.Init(r.p.env.Eng, r.p.opts.RTO, m.rtoExpire)
		m.rx.RTO.Arm()
	}
	if m.rx.Done {
		return
	}
	m.rx.RTO.Touch()
	switch pkt.Type {
	case netem.Probe:
		m.burstEnd = pkt.Seq
		if !m.probeSeen {
			m.probeSeen = true
			// The fabric is in-order per flow, so every unscheduled packet
			// that survived has arrived before its trailing probe: the holes
			// below the burst end are exactly the selective-dropping losses.
			if m.burstEnd > 0 {
				seg := m.rx.Tracker.Seg
				last := seg.SegOf(m.burstEnd - 1)
				for _, i := range m.rx.Missing(last + 1) {
					m.lostBytes += int64(seg.SegLen(i))
				}
			}
		}
		m.rx.SendAck(pkt.Seq, rdbase.ProbeAckMark)
	case netem.Data:
		if !pkt.Scheduled && r.p.opts.Aeolus.Enabled {
			m.rx.SendAck(pkt.Seq, 0)
		}
		if !pkt.Scheduled && !m.probeSeen {
			// Track the burst extent until the probe pins it exactly.
			if end := pkt.Seq + int64(pkt.PayloadLen); end > m.burstEnd {
				m.burstEnd = end
			}
		}
		if n := m.rx.Accept(pkt.Seq); n > 0 && pkt.Scheduled {
			m.schedBytes += int64(n)
		}
		if m.rx.Complete() {
			// Mark done but keep the entry: a late duplicate (a spurious
			// retransmission still in flight) must find the tombstone, not
			// recreate the message and arm a ghost RTO.
			m.rx.Done = true
			m.rx.RTO.Stop()
			r.p.env.FlowDone(m.rx.Flow)
		}
	}
	r.schedule()
}

// schedule runs Homa's grant policy: the Overcommit messages with the least
// remaining bytes hold grants; each is granted up to received + RTTbytes;
// the k-th ranked granted message transmits at the k-th scheduled priority.
func (r *rxHost) schedule() {
	active := r.sched[:0]
	for i, n := 0, r.msgs.Len(); i < n; i++ {
		m := r.msgs.At(i)
		// Messages longer than the unscheduled window need grants; shorter
		// ones join the granted set only once a probe reveals holes that
		// must be retransmitted through scheduled packets.
		if !m.rx.Done && (m.rx.Flow.Size > r.p.rttBytes || m.burstEnd > 0) {
			active = append(active, m)
		}
	}
	r.sched = active
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].remaining() != active[j].remaining() {
			return active[i].remaining() < active[j].remaining()
		}
		return active[i].rx.Flow.ID < active[j].rx.Flow.ID
	})
	k := r.p.opts.Overcommit
	if k > len(active) {
		k = len(active)
	}
	for rank := 0; rank < k; rank++ {
		m := active[rank]
		// The rank-th granted message transmits at the rank-th scheduled
		// priority level (shorter remaining → higher priority).
		prio := r.p.opts.UnschedPrios + rank
		if prio >= r.p.opts.NumPrios {
			prio = r.p.opts.NumPrios - 1
		}
		want := m.wantGrant(r.p.rttBytes)
		if want > m.granted {
			m.granted = want
			m.rx.SendCtrl(netem.Grant, want, int64(prio))
		}
	}
}

// rtoExpire is Homa's timeout recovery policy: request every missing
// segment below the highest expectation — the unscheduled window plus
// whatever was granted. Idle detection, the done guard and rearming live in
// rdbase.RTO.
func (m *rxMsg) rtoExpire() {
	r := m.host
	m.rx.Flow.Timeouts++
	expect := r.p.rttBytes
	if m.granted > expect {
		expect = m.granted
	}
	if expect > m.rx.Flow.Size {
		expect = m.rx.Flow.Size
	}
	n := m.rx.Tracker.Seg.SegOf(expect - 1)
	if missing := m.rx.Missing(n + 1); len(missing) > 0 {
		m.rx.SendResend(missing)
	}
}

// AuditInvariants checks every message's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	return rdbase.AuditPreCredits("homa", p.tbl.Senders(),
		func(s *sender) *core.PreCredit { return s.PC })
}

// Footprint implements transport.FootprintReporter: resident flow
// descriptors, sender machines and per-message receiver state across every
// materialized host scheduler.
func (p *Protocol) Footprint() transport.Footprint {
	flows, senders := p.tbl.Len()
	fp := transport.Footprint{Flows: flows, Senders: senders}
	p.rxHosts.Each(func(_ netem.NodeID, r *rxHost) { fp.Receivers += r.msgs.Len() })
	return fp
}
