// Package homa implements the Homa proactive transport [Montazeri, Li,
// Alizadeh, Ousterhout, SIGCOMM'18] on the netem fabric, with an optional
// Aeolus layer (§5.3 of the Aeolus paper).
//
// Homa is message-based and receiver-driven: a sender blindly transmits the
// first RTTbytes of a message as unscheduled packets, at a priority chosen
// from workload-derived cutoffs; the receiver then paces the remainder with
// grants, keeping at most Overcommit messages granted concurrently and one
// RTTbytes of grants outstanding per message, at dynamically assigned
// scheduled priorities. Original Homa runs over 8 strict priority queues
// and prioritizes unscheduled packets *over* scheduled ones; loss recovery
// is a receiver-side retransmission timeout.
//
// With Aeolus enabled, the priority queues remain but every port applies
// selective dropping at port granularity (the paper's "per-port ECN/RED"
// testbed configuration): unscheduled packets burst at line rate but are
// dropped once the port's backlog passes the threshold, scheduled packets
// are protected, per-packet ACKs plus the end-of-burst probe locate
// first-RTT losses, and grants retransmit them as scheduled packets in the
// §3.3 priority order.
package homa

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Options configures Homa.
type Options struct {
	// Aeolus enables and configures the pre-credit building block.
	Aeolus core.Options

	// Overcommit is the receiver's degree of overcommitment: how many
	// messages may hold outstanding grants at once (paper default 6).
	Overcommit int

	// NumPrios is the number of fabric priority levels (paper default 8).
	NumPrios int

	// UnschedPrios is how many of the highest levels serve unscheduled
	// packets (Homa's default split: 4 unscheduled over 4 scheduled).
	UnschedPrios int

	// RTTBytes is the unscheduled first-window per message; 0 derives it
	// from the network BDP.
	RTTBytes int64

	// RTO is the receiver-side retransmission timeout (10 ms for original
	// Homa in the paper's experiments; 20 µs for "eager" Homa; 40 µs in the
	// Fig. 17 incast study). Zero disables timeout recovery.
	RTO sim.Duration

	// Spray enables per-packet multipath spraying for data packets. Homa's
	// evaluations assume a congestion-free, load-balanced core (§6 of the
	// Aeolus paper); per-flow ECMP would instead create core hot spots that
	// drop scheduled packets. Default true via DefaultOptions.
	Spray bool

	// Seed randomizes spraying.
	Seed uint64

	// Workload sets the size distribution used to derive unscheduled
	// priority cutoffs. Nil falls back to even log-spaced cutoffs.
	Workload *workload.CDF
}

// DefaultOptions returns the paper's §5.1 Homa defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		Overcommit:   6,
		NumPrios:     8,
		UnschedPrios: 4,
		RTO:          10 * sim.Millisecond,
		Spray:        true,
	}
}

// QdiscFactory returns the fabric discipline: 8 strict priorities with a
// shared buffer for original Homa, a single selective-dropping FIFO for
// Homa+Aeolus. Host NICs get an unbounded variant of the same policy so
// local ordering matches the fabric's.
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		if kind == netem.HostNIC {
			return netem.NewPrioQdisc(opts.NumPrios, 0) // unbounded host queue
		}
		if opts.Aeolus.Enabled {
			// The paper's Homa+Aeolus switch configuration: keep Homa's
			// priority queues, apply selective dropping per port ("for
			// Homa, we configure per-port ECN/RED", §5.1).
			return netem.NewPrioSelective(opts.NumPrios, opts.Aeolus.ThresholdBytes, bufferBytes)
		}
		return netem.NewPrioQdisc(opts.NumPrios, bufferBytes)
	}
}

// Protocol is the Homa implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	rttBytes int64
	cutoffs  []int64

	flows   map[uint64]*transport.Flow
	senders map[uint64]*sender
	rxHosts map[netem.NodeID]*rxHost
}

// New builds the protocol and attaches it to every host of the environment.
func New(env *transport.Env, opts Options) *Protocol {
	if opts.Overcommit <= 0 {
		opts.Overcommit = 6
	}
	if opts.NumPrios <= 0 {
		opts.NumPrios = 8
	}
	if opts.UnschedPrios <= 0 || opts.UnschedPrios >= opts.NumPrios {
		opts.UnschedPrios = opts.NumPrios / 2
	}
	p := &Protocol{
		env: env, opts: opts,
		rng:      sim.NewRand(opts.Seed, 0x40a1),
		rttBytes: opts.RTTBytes,
		flows:    make(map[uint64]*transport.Flow),
		senders:  make(map[uint64]*sender),
		rxHosts:  make(map[netem.NodeID]*rxHost),
	}
	if p.rttBytes <= 0 {
		p.rttBytes = env.Net.BDPBytes()
	}
	if opts.Workload != nil {
		p.cutoffs = UnschedCutoffs(opts.Workload, p.rttBytes, opts.UnschedPrios)
	} else {
		// Log-spaced fallback cutoffs.
		p.cutoffs = make([]int64, opts.UnschedPrios)
		c := p.rttBytes / 8
		for i := range p.cutoffs {
			p.cutoffs[i] = c
			c *= 8
		}
		p.cutoffs[opts.UnschedPrios-1] = 1 << 62
	}
	for _, h := range env.Net.Hosts {
		h.EP = &endpoint{p: p, host: h.ID}
	}
	return p
}

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "Homa+Aeolus"
	}
	return "Homa"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.flows[f.ID] = f
	s := newSender(p, f)
	p.senders[f.ID] = s
	s.start()
}

type endpoint struct {
	p    *Protocol
	host netem.NodeID
}

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Data, netem.Probe:
		ep.p.rx(ep.host).receive(pkt)
	case netem.Grant, netem.Ack, netem.Resend:
		if s := ep.p.senders[pkt.Flow]; s != nil {
			s.receive(pkt)
		}
	}
}

// pathID draws a spraying path for one packet (or the flow hash when
// spraying is off).
func (p *Protocol) pathID(f *transport.Flow) uint32 {
	if p.opts.Spray {
		return p.rng.Uint32()
	}
	return f.PathID
}

func (p *Protocol) rx(host netem.NodeID) *rxHost {
	r := p.rxHosts[host]
	if r == nil {
		r = &rxHost{p: p, host: host, msgs: make(map[uint64]*rxMsg)}
		p.rxHosts[host] = r
	}
	return r
}

// sender is the per-message sender state.
type sender struct {
	p  *Protocol
	f  *transport.Flow
	pc *core.PreCredit

	unschedPrio uint8
	quota       int64 // granted bytes not yet spent
	grantPrio   uint8
	maxGrant    int64 // highest grant offset accounted so far
	grantBased  bool  // maxGrant baselined to the end of the burst
}

func newSender(p *Protocol, f *transport.Flow) *sender {
	s := &sender{p: p, f: f, unschedPrio: PrioFor(p.cutoffs, f.Size)}
	// The pre-credit burst is Homa's own unscheduled first window, so it is
	// active in both modes; the probe/ACK machinery only with Aeolus.
	opts := p.opts.Aeolus
	opts.Enabled = true
	s.pc = core.NewPreCredit(p.env, f, opts, p.rttBytes)
	s.pc.SendSeg = s.sendSeg
	if p.opts.Aeolus.Enabled {
		s.pc.SendProbe = s.sendProbe
	} else {
		// Original Homa has no probe and no per-packet ACKs: the burst is
		// presumed delivered and losses surface only via the receiver RTO.
		s.pc.SendProbe = func() {}
		s.pc.DisableUnackedSweep()
	}
	return s
}

func (s *sender) host() *netem.Host { return s.p.env.Net.Host(s.f.Src) }

func (s *sender) start() { s.pc.Start() }

func (s *sender) sendSeg(seg int, scheduled bool) {
	payload := s.pc.Seg.SegLen(seg)
	s.p.env.CountSent(payload)
	prio := s.unschedPrio
	if scheduled {
		prio = s.grantPrio
	}
	pkt := s.p.env.Pkt()
	pkt.Type = netem.Data
	pkt.Flow = s.f.ID
	pkt.Src = s.f.Src
	pkt.Dst = s.f.Dst
	pkt.Seq = s.pc.Seg.Offset(seg)
	pkt.PayloadLen = payload
	pkt.WireSize = netem.WireSizeFor(payload)
	pkt.Scheduled = scheduled
	pkt.Prio = prio
	pkt.PathID = s.p.pathID(s.f)
	pkt.Meta = s.f.Size
	s.host().Send(pkt)
}

func (s *sender) sendProbe() {
	pr := s.pc.MakeProbe()
	pr.Prio = 0
	pr.PathID = s.p.pathID(s.f)
	s.host().Send(pr)
}

func (s *sender) receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Grant:
		s.onGrant(pkt.Seq, uint8(pkt.Meta))
	case netem.Ack:
		if pkt.Meta == probeAckMark {
			s.pc.OnProbeAck()
			s.drainQuota()
		} else {
			s.pc.OnAck(pkt.Seq)
		}
	case netem.Resend:
		for _, seg := range pkt.SegList {
			s.pc.ForceLost(int(seg))
		}
		// Homa retransmits resend-requested packets immediately at the
		// granted priority, without waiting for fresh grants.
		for {
			seg, ok := s.pc.NextLost()
			if !ok {
				break
			}
			s.sendSeg(seg, true)
		}
	}
}

func (s *sender) onGrant(offset int64, prio uint8) {
	s.pc.StopBurst()
	s.grantPrio = prio
	if !s.grantBased {
		// Grants are absolute offsets; the unscheduled burst already
		// covered everything below its end, so quota starts there.
		s.grantBased = true
		s.maxGrant = s.pc.ProbeSeq()
	}
	if offset > s.maxGrant {
		s.quota += offset - s.maxGrant
		s.maxGrant = offset
	}
	s.drainQuota()
}

// drainQuota spends granted bytes on the next transmissions in the §3.3
// priority order (Aeolus) or on unsent payload (original Homa, where the
// ClassUnacked sweep is disabled so only ClassUnsent and forced losses
// fire). Retransmissions consume grant quota like any scheduled packet —
// that is what keeps them paced and loss-free; the receiver extends its
// grant cap beyond the message size to cover the holes it observes below
// the burst end once the probe arrives.
func (s *sender) drainQuota() {
	for s.quota > 0 {
		seg, class := s.pc.Next()
		if class == core.ClassNone {
			return
		}
		s.quota -= int64(s.pc.Seg.SegLen(seg))
		s.sendSeg(seg, true)
	}
}

// probeAckMark distinguishes a probe ACK from a per-packet data ACK.
const probeAckMark = 1

// rxMsg is the receiver-side state of one incoming message.
type rxMsg struct {
	f          *transport.Flow
	tracker    *transport.RxTracker
	granted    int64 // highest grant offset sent
	burstEnd   int64 // estimated end of the sender's unscheduled burst
	probeSeen  bool  // burstEnd finalized by the probe
	lostBytes  int64 // burst bytes lost, latched once when the probe arrives
	schedBytes int64 // unique bytes delivered by scheduled packets
	last       sim.Time
	done       bool
	rx         *rxHost   // owning per-host scheduler, for the RTO path
	rto        sim.Timer // receiver-side timeout recovery
}

func (m *rxMsg) remaining() int64 { return m.f.Size - m.tracker.Bytes() }

// wantGrant computes the receiver's grant offset for this message. Grants
// are self-clocked by *scheduled* progress: the sender may have one RTTbytes
// of scheduled data outstanding beyond its burst end, and the total
// scheduled demand is the payload past the burst plus the retransmission of
// every hole the receiver observes below it (known exactly once the probe
// arrives). This keeps retransmissions paced — and therefore protected —
// without ever stalling on losses.
func (m *rxMsg) wantGrant(rttBytes int64) int64 {
	need := m.f.Size - m.burstEnd
	if need < 0 {
		need = 0
	}
	// The retransmission demand is latched once at probe arrival: holes are
	// filled by scheduled packets, which also advance schedBytes, so
	// recomputing the holes here would let every retransmission cancel its
	// own grant and strand the tail of the message.
	need += m.lostBytes
	window := m.schedBytes + rttBytes
	if window > need {
		window = need
	}
	return m.burstEnd + window
}

// rxHost is the per-receiving-host message scheduler: it tracks all incoming
// messages and runs the SRPT grant policy with overcommitment.
type rxHost struct {
	p    *Protocol
	host netem.NodeID
	msgs map[uint64]*rxMsg
}

func (r *rxHost) hostNode() *netem.Host { return r.p.env.Net.Host(r.host) }

func (r *rxHost) receive(pkt *netem.Packet) {
	m := r.msgs[pkt.Flow]
	if m == nil {
		f := r.p.flows[pkt.Flow]
		if f == nil {
			return
		}
		m = &rxMsg{f: f, tracker: transport.NewRxTracker(f.Size, r.p.env.MSS), rx: r}
		m.rto.Init(r.p.env.Eng, m.rtoFire)
		r.msgs[pkt.Flow] = m
		r.armRTO(m)
	}
	if m.done {
		return
	}
	m.last = r.p.env.Eng.Now()
	switch pkt.Type {
	case netem.Probe:
		m.burstEnd = pkt.Seq
		if !m.probeSeen {
			m.probeSeen = true
			// The fabric is in-order per flow, so every unscheduled packet
			// that survived has arrived before its trailing probe: the holes
			// below the burst end are exactly the selective-dropping losses.
			if m.burstEnd > 0 {
				seg := m.tracker.Seg
				last := seg.SegOf(m.burstEnd - 1)
				for _, i := range m.tracker.Missing(last + 1) {
					m.lostBytes += int64(seg.SegLen(i))
				}
			}
		}
		r.sendAck(m, pkt.Seq, probeAckMark)
	case netem.Data:
		if !pkt.Scheduled && r.p.opts.Aeolus.Enabled {
			r.sendAck(m, pkt.Seq, 0)
		}
		if !pkt.Scheduled && !m.probeSeen {
			// Track the burst extent until the probe pins it exactly.
			if end := pkt.Seq + int64(pkt.PayloadLen); end > m.burstEnd {
				m.burstEnd = end
			}
		}
		if n := m.tracker.Accept(pkt.Seq); n > 0 {
			r.p.env.CountDelivered(n)
			if pkt.Scheduled {
				m.schedBytes += int64(n)
			}
		}
		if m.tracker.Complete() {
			// Mark done but keep the entry: a late duplicate (a spurious
			// retransmission still in flight) must find the tombstone, not
			// recreate the message and arm a ghost RTO.
			m.done = true
			m.rto.Stop()
			r.p.env.FlowDone(m.f)
		}
	}
	r.schedule()
}

func (r *rxHost) sendAck(m *rxMsg, seq int64, mark int64) {
	pkt := r.p.env.Pkt()
	pkt.Type = netem.Ack
	pkt.Flow = m.f.ID
	pkt.Src = r.host
	pkt.Dst = m.f.Src
	pkt.Seq = seq
	pkt.WireSize = netem.HeaderSize
	pkt.Scheduled = true
	pkt.PathID = m.f.PathID
	pkt.Meta = mark
	r.hostNode().Send(pkt)
}

// schedule runs Homa's grant policy: the Overcommit messages with the least
// remaining bytes hold grants; each is granted up to received + RTTbytes;
// the k-th ranked granted message transmits at the k-th scheduled priority.
func (r *rxHost) schedule() {
	var active []*rxMsg
	for _, m := range r.msgs {
		// Messages longer than the unscheduled window need grants; shorter
		// ones join the granted set only once a probe reveals holes that
		// must be retransmitted through scheduled packets.
		if !m.done && (m.f.Size > r.p.rttBytes || m.burstEnd > 0) {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].remaining() != active[j].remaining() {
			return active[i].remaining() < active[j].remaining()
		}
		return active[i].f.ID < active[j].f.ID
	})
	k := r.p.opts.Overcommit
	if k > len(active) {
		k = len(active)
	}
	for rank := 0; rank < k; rank++ {
		m := active[rank]
		// The rank-th granted message transmits at the rank-th scheduled
		// priority level (shorter remaining → higher priority).
		prio := r.p.opts.UnschedPrios + rank
		if prio >= r.p.opts.NumPrios {
			prio = r.p.opts.NumPrios - 1
		}
		want := m.wantGrant(r.p.rttBytes)
		if want > m.granted {
			m.granted = want
			g := r.p.env.Pkt()
			g.Type = netem.Grant
			g.Flow = m.f.ID
			g.Src = r.host
			g.Dst = m.f.Src
			g.Seq = want
			g.WireSize = netem.HeaderSize
			g.Scheduled = true
			g.PathID = m.f.PathID
			g.Meta = int64(prio)
			r.hostNode().Send(g)
		}
	}
}

// armRTO starts the receiver-side timeout loop for a message: if no packet
// arrived for a full RTO and the message is incomplete, request the missing
// segments (counting a timeout against the flow).
func (r *rxHost) armRTO(m *rxMsg) {
	if r.p.opts.RTO > 0 {
		m.rto.Reset(r.p.opts.RTO)
	}
}

func (m *rxMsg) rtoFire() {
	r := m.rx
	rto := r.p.opts.RTO
	if m.done {
		return
	}
	if r.p.env.Eng.Now().Sub(m.last) >= rto {
		m.f.Timeouts++
		// Request every missing segment below the highest expectation:
		// the unscheduled window plus whatever was granted.
		expect := r.p.rttBytes
		if m.granted > expect {
			expect = m.granted
		}
		if expect > m.f.Size {
			expect = m.f.Size
		}
		n := m.tracker.Seg.SegOf(expect - 1)
		missing := m.tracker.Missing(n + 1)
		if len(missing) > 0 {
			pkt := r.p.env.Pkt()
			pkt.Type = netem.Resend
			pkt.Flow = m.f.ID
			pkt.Src = r.host
			pkt.Dst = m.f.Src
			pkt.WireSize = netem.HeaderSize
			pkt.Scheduled = true
			pkt.PathID = m.f.PathID
			for _, s := range missing {
				pkt.SegList = append(pkt.SegList, int32(s))
			}
			r.hostNode().Send(pkt)
		}
	}
	r.armRTO(m)
}

// AuditInvariants checks every message's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	ids := make([]uint64, 0, len(p.senders))
	for id := range p.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := p.senders[id].pc.Audit(); err != nil {
			errs = append(errs, fmt.Errorf("homa: %w", err))
		}
	}
	return errs
}
