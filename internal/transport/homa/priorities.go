package homa

import "github.com/aeolus-transport/aeolus/internal/workload"

// UnschedCutoffs computes the message-size cutoffs that split unscheduled
// traffic across nPrios priority levels so each level carries roughly the
// same number of unscheduled bytes, as Homa's receivers do from their
// observed workload. A message of size s sends its unscheduled (first
// RTTbytes) packets at the priority of the first cutoff ≥ s; smaller
// messages get higher priority.
func UnschedCutoffs(cdf *workload.CDF, rttBytes int64, nPrios int) []int64 {
	if nPrios < 1 {
		return nil
	}
	// Numerically integrate unscheduled bytes u(s) = min(s, rttBytes) over
	// the size distribution, then find the quantile sizes that split the
	// integral into nPrios equal shares.
	const steps = 4096
	type pt struct {
		size float64
		cum  float64 // cumulative unscheduled bytes up to this size
	}
	pts := make([]pt, 0, steps)
	var cum float64
	prevP := 0.0
	prevS := cdf.Quantile(0)
	for i := 1; i <= steps; i++ {
		p := float64(i) / steps
		s := cdf.Quantile(p)
		u := (minF(prevS, float64(rttBytes)) + minF(s, float64(rttBytes))) / 2
		cum += u * (p - prevP)
		pts = append(pts, pt{size: s, cum: cum})
		prevP, prevS = p, s
	}
	total := cum
	cutoffs := make([]int64, nPrios)
	j := 0
	for k := 1; k <= nPrios; k++ {
		target := total * float64(k) / float64(nPrios)
		for j < len(pts)-1 && pts[j].cum < target {
			j++
		}
		cutoffs[k-1] = int64(pts[j].size)
	}
	// The last cutoff must cover every message.
	cutoffs[nPrios-1] = int64(cdf.Quantile(1)) + 1
	return cutoffs
}

// PrioFor returns the unscheduled priority band (0 = highest) for a message
// of the given size under the cutoffs.
func PrioFor(cutoffs []int64, size int64) uint8 {
	for i, c := range cutoffs {
		if size <= c {
			return uint8(i)
		}
	}
	return uint8(len(cutoffs) - 1)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
