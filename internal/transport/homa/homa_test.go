package homa

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// build creates a two-tier 100G leaf-spine (the Homa paper topology, scaled
// down) with the Homa fabric discipline.
func build(t *testing.T, opts Options, buffer int64) (*transport.Env, *Protocol) {
	t.Helper()
	eng := sim.NewEngine()
	net := netem.BuildLeafSpine(eng, 2, 4, 4, netem.TopoConfig{
		HostRate:  100 * sim.Gbps,
		LinkDelay: 500 * sim.Nanosecond,
		MakeQdisc: QdiscFactory(opts, buffer),
	})
	env := transport.NewEnv(net, netem.MaxPayload)
	return env, New(env, opts)
}

func oneFlow(src, dst int, size int64) []workload.FlowSpec {
	return []workload.FlowSpec{{ID: 1, Src: src, Dst: dst, Size: size, Start: sim.Time(sim.Microsecond)}}
}

func TestUnschedCutoffs(t *testing.T) {
	cut := UnschedCutoffs(workload.WebSearch, 60000, 4)
	if len(cut) != 4 {
		t.Fatalf("got %d cutoffs", len(cut))
	}
	for i := 1; i < 4; i++ {
		if cut[i] < cut[i-1] {
			t.Fatalf("cutoffs not monotone: %v", cut)
		}
	}
	// Everything must map somewhere; the largest flow to the last band.
	if PrioFor(cut, 1) != 0 {
		t.Fatalf("tiny message priority = %d, want 0", PrioFor(cut, 1))
	}
	if PrioFor(cut, 25e6) != 3 {
		t.Fatalf("huge message priority = %d, want 3", PrioFor(cut, 25e6))
	}
}

func TestUnschedCutoffsFallback(t *testing.T) {
	if got := UnschedCutoffs(workload.WebServer, 60000, 0); got != nil {
		t.Fatal("nPrios=0 should yield nil")
	}
}

func TestSingleSmallMessage(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, opts, netem.DefaultBuffer)
		done := transport.Runner(env, p, oneFlow(0, 5, 20_000), sim.Time(sim.Second))
		if done != 1 {
			t.Fatalf("aeolus=%v: message did not complete", aeolus)
		}
		fct := env.FCT.Records()[0].FCT()
		// A 20 KB message fits in the first window: ≈ one-way latency + tx.
		if fct > env.Net.BaseRTT {
			t.Fatalf("aeolus=%v: small message FCT %v > base RTT %v", aeolus, fct, env.Net.BaseRTT)
		}
	}
}

func TestSingleLargeMessageUsesGrants(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, opts, netem.DefaultBuffer)
		const size = 1_000_000
		done := transport.Runner(env, p, oneFlow(0, 5, size), sim.Time(sim.Second))
		if done != 1 {
			t.Fatalf("aeolus=%v: large message did not complete", aeolus)
		}
		if env.Meter.DeliveredPayload != size {
			t.Fatalf("aeolus=%v: delivered %d of %d", aeolus, env.Meter.DeliveredPayload, size)
		}
		// Uncontended: the message should flow continuously at ≈line rate;
		// FCT within 3x of ideal.
		rec := env.FCT.Records()[0]
		if rec.Slowdown() > 3 {
			t.Fatalf("aeolus=%v: slowdown %.2f for uncontended 1MB message", aeolus, rec.Slowdown())
		}
		if env.Meter.Efficiency() < 0.99 {
			t.Fatalf("aeolus=%v: efficiency %.3f uncontended", aeolus, env.Meter.Efficiency())
		}
	}
}

func TestIncastVanillaDropsScheduledAeolusDoesNot(t *testing.T) {
	// Heavy incast into one receiver with a small shared buffer: vanilla
	// Homa (unscheduled at high priority) must lose scheduled packets;
	// Homa+Aeolus must not.
	run := func(aeolus bool) (schedDrops, unschedDrops int, timeouts int, done int) {
		opts := DefaultOptions()
		opts.RTO = 10 * sim.Millisecond
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, opts, 500<<10)
		for _, pt := range env.Net.SwitchPorts() {
			pt.Q.SetDropHook(func(pkt *netem.Packet, _ netem.DropReason) {
				if pkt.Type != netem.Data {
					return
				}
				if pkt.Scheduled {
					schedDrops++
				} else {
					unschedDrops++
				}
			})
		}
		trace := (&workload.IncastConfig{
			Fanin: 15, Receiver: 0, Hosts: 16, MsgSize: 200_000, Seed: 5,
			StartAt: sim.Time(sim.Microsecond),
		}).Generate()
		done = transport.Runner(env, p, trace, sim.Time(sim.Second))
		timeouts = env.FCT.TimeoutFlows()
		return
	}
	vs, vu, _, vdone := run(false)
	as, au, atim, adone := run(true)
	if vdone != 15 || adone != 15 {
		t.Fatalf("completions: vanilla %d, aeolus %d, want 15", vdone, adone)
	}
	if vs+vu == 0 {
		t.Fatal("vanilla incast produced no drops; test not stressful enough")
	}
	if as != 0 {
		t.Fatalf("Homa+Aeolus dropped %d scheduled packets", as)
	}
	if au == 0 {
		t.Fatal("Homa+Aeolus dropped no unscheduled packets under 15:1 incast")
	}
	if atim != 0 {
		t.Fatalf("Homa+Aeolus had %d timeout flows, want 0", atim)
	}
}

func TestAeolusTailBeatsVanillaUnderIncast(t *testing.T) {
	run := func(aeolus bool) sim.Duration {
		opts := DefaultOptions()
		opts.RTO = 10 * sim.Millisecond
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, opts, 500<<10)
		trace := (&workload.IncastConfig{
			Fanin: 15, Receiver: 0, Hosts: 16, MsgSize: 200_000, Seed: 6,
			StartAt: sim.Time(sim.Microsecond),
		}).Generate()
		if done := transport.Runner(env, p, trace, sim.Time(2*sim.Second)); done != 15 {
			t.Fatalf("aeolus=%v: %d done", aeolus, done)
		}
		return env.FCT.Records()[0].FCT() // any; use max below
	}
	maxFCT := func(aeolus bool) sim.Duration {
		opts := DefaultOptions()
		opts.RTO = 10 * sim.Millisecond
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, opts, 500<<10)
		trace := (&workload.IncastConfig{
			Fanin: 15, Receiver: 0, Hosts: 16, MsgSize: 200_000, Seed: 6,
			StartAt: sim.Time(sim.Microsecond),
		}).Generate()
		transport.Runner(env, p, trace, sim.Time(2*sim.Second))
		var mx sim.Duration
		for _, r := range env.FCT.Records() {
			if r.FCT() > mx {
				mx = r.FCT()
			}
		}
		return mx
	}
	_ = run
	v, a := maxFCT(false), maxFCT(true)
	if a >= v {
		t.Fatalf("Homa+Aeolus tail %v not better than vanilla %v", a, v)
	}
	// Vanilla tail is RTO-bound (≥10ms); Aeolus tail should be RTT-scale.
	if v < 10*sim.Millisecond {
		t.Fatalf("vanilla tail %v < RTO; no timeout was suffered", v)
	}
	if a > 2*sim.Millisecond {
		t.Fatalf("Aeolus tail %v should be far below the RTO", a)
	}
}

func TestManyMessagesComplete(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	opts.Workload = workload.WebServer
	env, p := build(t, opts, netem.DefaultBuffer)
	trace := (&workload.PoissonConfig{
		CDF: workload.WebServer, Hosts: 16, HostRate: 100 * sim.Gbps,
		Load: 0.4, Flows: 300, Seed: 7, StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(sim.Second))
	if done != 300 {
		t.Fatalf("completed %d of 300", done)
	}
	// Table 3's reference point: even hypothetical Homa only reaches 0.90
	// transfer efficiency; Aeolus should be in that neighborhood.
	if eff := env.Meter.Efficiency(); eff < 0.75 {
		t.Fatalf("efficiency %.3f", eff)
	}
}

func TestVanillaHomaResendAfterTimeout(t *testing.T) {
	// Force unscheduled loss in vanilla Homa by a deep incast with tiny
	// buffer, then verify RTO-driven recovery completes all messages.
	opts := DefaultOptions()
	opts.RTO = 100 * sim.Microsecond
	env, p := build(t, opts, 30<<10)
	trace := (&workload.IncastConfig{
		Fanin: 10, Receiver: 0, Hosts: 16, MsgSize: 60_000, Seed: 8,
		StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(2*sim.Second))
	if done != 10 {
		t.Fatalf("completed %d of 10 after timeouts", done)
	}
	if env.FCT.TimeoutFlows() == 0 {
		t.Fatal("expected at least one timeout flow in this stress")
	}
}

func TestGrantPriorityMapping(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, opts, netem.DefaultBuffer)
	// Observe grants on the wire: priorities must lie in the scheduled
	// bands [UnschedPrios, NumPrios).
	grantPrios := map[int64]bool{}
	for _, h := range env.Net.Hosts {
		inner := h.EP
		h.EP = epSpy{inner: inner, onPkt: func(pkt *netem.Packet) {
			if pkt.Type == netem.Grant {
				grantPrios[pkt.Meta] = true
			}
		}}
	}
	var trace []workload.FlowSpec
	for i := 0; i < 8; i++ {
		trace = append(trace, workload.FlowSpec{
			ID: uint64(i + 1), Src: i + 1, Dst: 0, Size: 500_000,
			Start: sim.Time(sim.Microsecond),
		})
	}
	transport.Runner(env, p, trace, sim.Time(sim.Second))
	if len(grantPrios) == 0 {
		t.Fatal("no grants observed")
	}
	for prio := range grantPrios {
		if prio < int64(opts.UnschedPrios) || prio >= int64(opts.NumPrios) {
			t.Fatalf("grant priority %d outside scheduled bands", prio)
		}
	}
	_ = p
}

type epSpy struct {
	inner netem.Endpoint
	onPkt func(*netem.Packet)
}

func (s epSpy) Receive(p *netem.Packet) {
	s.onPkt(p)
	s.inner.Receive(p)
}

func TestProtocolName(t *testing.T) {
	opts := DefaultOptions()
	_, p := build(t, opts, netem.DefaultBuffer)
	if p.Name() != "Homa" {
		t.Fatal(p.Name())
	}
	opts.Aeolus.Enabled = true
	_, p2 := build(t, opts, netem.DefaultBuffer)
	if p2.Name() != "Homa+Aeolus" {
		t.Fatal(p2.Name())
	}
}

// TestLateDuplicateDoesNotResurrectMessage is the regression test for the
// ghost-state bug: a duplicate data packet arriving after a message
// completed must hit the tombstoned entry, not recreate the message, arm a
// new RTO and trigger an endless resend storm.
func TestLateDuplicateDoesNotResurrectMessage(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, opts, netem.DefaultBuffer)
	done := transport.Runner(env, p, oneFlow(0, 5, 20_000), sim.Time(sim.Second))
	if done != 1 {
		t.Fatal("flow did not complete")
	}
	// Drain the events that were still pending when the runner stopped.
	env.Eng.RunUntil(env.Eng.Now().Add(10 * sim.Millisecond))
	// Replay a duplicate of the first segment directly into the receiver.
	rx := p.rxHosts.Get(5)
	before := rx.msgs.Len()
	rx.receive(&netem.Packet{
		Type: netem.Data, Flow: 1, Src: 0, Dst: 5,
		Seq: 0, PayloadLen: 1460, WireSize: netem.WireSizeFor(1460),
	})
	if rx.msgs.Len() != before {
		t.Fatalf("duplicate resurrected message state: %d -> %d entries", before, rx.msgs.Len())
	}
	m := rx.msgs.Get(1)
	if m == nil || !m.rx.Done {
		t.Fatal("tombstone missing or not done")
	}
	if m.rx.RTO.Pending() {
		t.Fatal("ghost RTO armed by duplicate")
	}
	// And the engine must quiesce without generating fresh traffic.
	fired := env.Eng.Fired()
	env.Eng.RunUntil(env.Eng.Now().Add(50 * sim.Millisecond))
	if env.Eng.Fired() > fired+4 {
		t.Fatalf("duplicate spawned %d new events", env.Eng.Fired()-fired)
	}
}
