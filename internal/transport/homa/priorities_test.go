package homa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/workload"
)

// TestUnschedCutoffsEqualByteMass verifies the defining property of Homa's
// unscheduled priority cutoffs: each priority level carries approximately
// the same number of unscheduled bytes under the workload.
func TestUnschedCutoffsEqualByteMass(t *testing.T) {
	const rttBytes = 56_000
	const nPrios = 4
	for _, wl := range workload.All {
		cut := UnschedCutoffs(wl, rttBytes, nPrios)
		// Monte-Carlo the unscheduled byte mass per band.
		r := rand.New(rand.NewPCG(5, 6))
		mass := make([]float64, nPrios)
		var total float64
		const n = 200000
		for i := 0; i < n; i++ {
			size := wl.Sample(r)
			u := float64(size)
			if u > rttBytes {
				u = rttBytes
			}
			mass[PrioFor(cut, size)] += u
			total += u
		}
		for band, m := range mass {
			share := m / total
			// Within a factor of ~2 of the fair share: the CDFs are coarse
			// piecewise distributions, so exact splits are impossible.
			if share < 0.5/nPrios || share > 2.0/nPrios {
				t.Errorf("%s band %d carries %.3f of unscheduled bytes, want ≈%.3f",
					wl.Name(), band, share, 1.0/nPrios)
			}
		}
	}
}

// Property: PrioFor is monotone — larger messages never get a strictly
// higher (numerically lower) priority band than smaller ones.
func TestPrioForMonotoneProperty(t *testing.T) {
	cut := UnschedCutoffs(workload.WebSearch, 56_000, 4)
	prop := func(a, b uint32) bool {
		sa, sb := int64(a), int64(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		return PrioFor(cut, sa) <= PrioFor(cut, sb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCutoffsCoverEverything: the top cutoff must exceed the distribution's
// maximum so no message is unmappable.
func TestCutoffsCoverEverything(t *testing.T) {
	for _, wl := range workload.All {
		cut := UnschedCutoffs(wl, 56_000, 8)
		if got := PrioFor(cut, int64(wl.Quantile(1))); got != 7 {
			t.Errorf("%s: largest message maps to band %d, want 7", wl.Name(), got)
		}
	}
}
