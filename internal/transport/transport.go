// Package transport provides the plumbing shared by every protocol in this
// repository: flow descriptors, payload segmentation, receiver-side
// reassembly tracking, and the simulation environment (network, metrics,
// completion reporting) a protocol runs in.
//
// The three proactive transports (ExpressPass, Homa, NDP) live in
// subpackages and implement the Protocol interface; the Aeolus building
// block (internal/core) plugs into each of them.
package transport

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Flow is one transfer in flight: a message of Size bytes from Src to Dst.
type Flow struct {
	ID    uint64
	Src   netem.NodeID
	Dst   netem.NodeID
	Size  int64
	Start sim.Time

	// PathID is the flow's ECMP hash for per-flow load balancing. Protocols
	// that spray per packet (NDP) ignore it.
	PathID uint32

	// Timeouts counts retransmission timeouts suffered by the flow.
	Timeouts int
}

// Protocol is a transport implementation driving all hosts of a network.
// A single Protocol instance holds per-host, per-flow state keyed by host
// ID — logically distributed state in one object, as is conventional in
// packet-level simulators.
type Protocol interface {
	// Name identifies the protocol in reports, e.g. "ExpressPass+Aeolus".
	Name() string

	// Start injects a new flow at the sender. Callers must invoke it at
	// flow.Start simulated time.
	Start(f *Flow)
}

// Env is the environment a protocol operates in: the built network plus the
// metric sinks. Exactly one Env exists per simulation run.
type Env struct {
	Net *netem.Network
	Eng *sim.Engine

	FCT   stats.FCTCollector
	Meter stats.ByteMeter

	// MSS is the maximum payload per data packet.
	MSS int

	// Done, when non-nil, is called once per completed flow.
	Done func(f *Flow, rec stats.FlowRecord)

	completed int
}

// NewEnv wires an environment around a built network.
func NewEnv(net *netem.Network, mss int) *Env {
	return &Env{Net: net, Eng: net.Eng, MSS: mss}
}

// Completed returns the number of flows that finished.
func (e *Env) Completed() int { return e.completed }

// Pkt returns a zeroed packet from the network's pool (or a fresh allocation
// when the network has none). Protocols build every wire packet through it;
// the fabric releases the packet when it terminates (delivery or drop).
func (e *Env) Pkt() *netem.Packet { return e.Net.Pool.Get() }

// IdealFCT returns the completion time of a flow of the given size alone on
// its path: half the base RTT (the one-way latency) plus the serialization
// of all its frames at the edge rate. This is the normalizer of the paper's
// "FCT slowdown" metric (Fig. 17).
func (e *Env) IdealFCT(size int64) sim.Duration {
	nseg := (size + int64(e.MSS) - 1) / int64(e.MSS)
	wire := size + nseg*netem.FrameOverhead
	// TxTime would overflow int64 picoseconds for multi-hundred-MB flows;
	// compute large serializations in floating point.
	var tx sim.Duration
	if wire < 1<<20 {
		tx = sim.TxTime(int(wire), e.Net.HostRate)
	} else {
		tx = sim.Duration(float64(wire) * 8 / float64(e.Net.HostRate) * float64(sim.Second))
	}
	return e.Net.BaseRTT/2 + tx
}

// FlowDone records a completed flow. Protocols call it exactly once per
// flow, at the instant the last payload byte reaches the receiver.
func (e *Env) FlowDone(f *Flow) {
	rec := stats.FlowRecord{
		ID:       f.ID,
		Size:     f.Size,
		Start:    f.Start,
		Finish:   e.Eng.Now(),
		IdealFCT: e.IdealFCT(f.Size),
		Timeouts: f.Timeouts,
	}
	e.FCT.Add(rec)
	e.completed++
	if e.Done != nil {
		e.Done(f, rec)
	}
}

// CountSent tallies a data transmission for the transfer-efficiency meter.
func (e *Env) CountSent(payload int) { e.Meter.SentPayload += int64(payload) }

// CountDelivered tallies unique delivered payload bytes.
func (e *Env) CountDelivered(payload int) { e.Meter.DeliveredPayload += int64(payload) }

// Segmenter slices a flow's payload into MSS-sized segments. Segment i
// covers bytes [i*MSS, i*MSS+SegLen(i)).
type Segmenter struct {
	Size int64
	MSS  int
}

// NumSegs returns the number of segments.
func (s Segmenter) NumSegs() int {
	return int((s.Size + int64(s.MSS) - 1) / int64(s.MSS))
}

// SegLen returns the payload length of segment i.
func (s Segmenter) SegLen(i int) int {
	if off := int64(i) * int64(s.MSS); off+int64(s.MSS) > s.Size {
		return int(s.Size - off)
	}
	return s.MSS
}

// Offset returns the byte offset of segment i.
func (s Segmenter) Offset(i int) int64 { return int64(i) * int64(s.MSS) }

// SegOf returns the segment index covering byte offset off.
func (s Segmenter) SegOf(off int64) int { return int(off / int64(s.MSS)) }

// RxTracker reassembles a flow at the receiver: it deduplicates segments and
// reports completion. Receipt flags are one bit per segment, so the tracker
// costs ~n/8 bytes for an n-segment flow.
type RxTracker struct {
	Seg       Segmenter
	got       Bitset
	remaining int
	bytes     int64
}

// NewRxTracker builds a tracker for a flow of the given size.
func NewRxTracker(size int64, mss int) *RxTracker {
	seg := Segmenter{Size: size, MSS: mss}
	n := seg.NumSegs()
	return &RxTracker{Seg: seg, got: NewBitset(n), remaining: n}
}

// Accept marks the segment at the given byte offset received. It returns the
// number of new unique payload bytes (0 for duplicates).
func (t *RxTracker) Accept(off int64) int {
	i := t.Seg.SegOf(off)
	if i < 0 || i >= t.got.Len() {
		panic(fmt.Sprintf("transport: offset %d outside flow of %d bytes", off, t.Seg.Size))
	}
	if t.got.Get(i) {
		return 0
	}
	t.got.Set(i)
	t.remaining--
	n := t.Seg.SegLen(i)
	t.bytes += int64(n)
	return n
}

// Has reports whether segment i was received.
func (t *RxTracker) Has(i int) bool { return t.got.Get(i) }

// Complete reports whether every segment arrived.
func (t *RxTracker) Complete() bool { return t.remaining == 0 }

// Bytes returns the unique payload bytes received so far.
func (t *RxTracker) Bytes() int64 { return t.bytes }

// Missing appends the indices of segments not yet received among the first
// n segments (n ≤ NumSegs) to out and returns it. Callers on the receive
// hot path pass a reusable scratch buffer (sliced to length zero) so loss
// scans allocate nothing in steady state.
func (t *RxTracker) Missing(n int, out []int) []int {
	if n > t.got.Len() {
		n = t.got.Len()
	}
	for i := t.got.NextZero(0); i < n; i = t.got.NextZero(i + 1) {
		out = append(out, i)
	}
	return out
}

// FlowHash derives a stable per-flow ECMP PathID.
func FlowHash(id uint64) uint32 {
	// SplitMix64 finalizer.
	x := id + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return uint32(x ^ (x >> 31))
}

// Runner injects a flow trace into a protocol and runs the engine until all
// flows complete or the deadline passes. It returns the number of completed
// flows.
func Runner(env *Env, p Protocol, trace []workload.FlowSpec, deadline sim.Time) int {
	flows := make([]*Flow, len(trace))
	for i, spec := range trace {
		f := &Flow{
			ID:     spec.ID,
			Src:    netem.NodeID(spec.Src),
			Dst:    netem.NodeID(spec.Dst),
			Size:   spec.Size,
			Start:  spec.Start,
			PathID: FlowHash(spec.ID),
		}
		flows[i] = f
		env.Eng.At(spec.Start, func() { p.Start(f) })
	}
	total := len(trace)
	userDone := env.Done
	env.Done = func(f *Flow, rec stats.FlowRecord) {
		if userDone != nil {
			userDone(f, rec)
		}
		if env.completed == total {
			env.Eng.Stop()
		}
	}
	env.Eng.RunUntil(deadline)
	return env.completed
}

// Footprint counts a protocol's resident per-flow and per-host state
// objects: flow descriptors, sender machines and receiver-side state (per
// flow or per message, as the transport keeps it). The scale sweep reads it
// after a run to track how protocol state grows with the offered flow count.
type Footprint struct {
	Flows     int
	Senders   int
	Receivers int
}

// FootprintReporter is implemented by protocols that can report their state
// footprint; the scale sweep asserts for it and records what it finds.
type FootprintReporter interface {
	Footprint() Footprint
}
