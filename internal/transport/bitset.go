package transport

import "math/bits"

// Bitset is a fixed-size bit array used for per-segment flags (received,
// acknowledged, assigned). At one bit per segment instead of one bool byte
// it is the dominant term in per-flow state for large flows, so the scale
// sweep's state_bytes_per_flow rides directly on this representation.
type Bitset struct {
	w []uint64
	n int
}

// NewBitset returns a zeroed bitset of n bits.
func NewBitset(n int) Bitset {
	return Bitset{w: make([]uint64, (n+63)/64), n: n}
}

// NewBitsetPair returns two independent zeroed bitsets of n bits carved from
// one allocation. Per-flow senders keep two parallel bitmaps (acked and
// assigned) for the flow's whole life; allocating them together halves the
// allocator traffic and rounding waste at flow setup, which the scale
// sweep's state_bytes_per_flow measures directly.
func NewBitsetPair(n int) (Bitset, Bitset) {
	words := (n + 63) / 64
	w := make([]uint64, 2*words)
	return Bitset{w: w[:words:words], n: n}, Bitset{w: w[words:], n: n}
}

// Len returns the number of bits.
func (b Bitset) Len() int { return b.n }

// Get reports bit i. Out-of-range indices panic, like a slice would.
func (b Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("transport: bitset index out of range")
	}
	return b.w[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("transport: bitset index out of range")
	}
	b.w[i>>6] |= 1 << (uint(i) & 63)
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextZero returns the index of the first clear bit at or after i, or Len()
// when every remaining bit is set. Scan loops (loss sweeps, completeness
// checks) use it to skip fully-acknowledged 64-segment spans in one
// compare.
func (b Bitset) NextZero(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		w := ^b.w[i>>6] >> (uint(i) & 63)
		if w != 0 {
			i += bits.TrailingZeros64(w)
			if i > b.n {
				return b.n
			}
			return i
		}
		i = (i &^ 63) + 64
	}
	return b.n
}
