package expresspass

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scheme"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Catalogue registration: the ExpressPass family and its paper variants.
// Importing this package (the experiments harness does) makes the schemes
// available to scheme.Build; nothing outside this file knows the IDs.

func init() {
	family := scheme.Family[Options]{
		Base: "xpass",
		MSS:  netem.MaxPayload,
		Defaults: func(spec scheme.Spec) Options {
			opts := DefaultOptions()
			opts.Seed = spec.Seed
			if spec.RTO > 0 {
				opts.RTO = spec.RTO
			}
			return opts
		},
		Apply: applyOpt,
		Protocol: func(env *transport.Env, o Options) transport.Protocol {
			return New(env, o)
		},
		Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
			return QdiscFactory(o, buffer)
		},
	}
	family.Register(
		scheme.Variant[Options]{
			Summary: "ExpressPass (waits for credits in the first RTT)",
			Name:    func(Options) string { return "ExpressPass" },
		},
		scheme.Variant[Options]{
			Suffix:  "+aeolus",
			Summary: "ExpressPass with the Aeolus building block",
			Name:    func(Options) string { return "ExpressPass+Aeolus" },
			Mutate: func(o *Options, spec scheme.Spec) {
				o.Aeolus = core.DefaultOptions()
				o.Aeolus.ThresholdBytes = spec.ThresholdOr(core.DefaultThreshold)
			},
		},
		scheme.Variant[Options]{
			Suffix:  "+oracle",
			Summary: "hypothetical ExpressPass (idealized pre-credit, §2.3)",
			Name:    func(Options) string { return "ExpressPass+IdealPreCredit" },
			Mutate: func(o *Options, spec scheme.Spec) {
				o.Aeolus = core.DefaultOptions()
			},
			Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
				// Idealized pre-credit: scheduled-first data queues that
				// never drop scheduled packets.
				return wrapData(func(sim.Rate) netem.Qdisc { return core.NewOraclePrio() })
			},
		},
		scheme.Variant[Options]{
			Suffix:  "+prio",
			Summary: "ExpressPass + two shared-buffer priority queues with RTO-only recovery (§5.5; set RTO to 10ms or 20µs)",
			Name: func(o Options) string {
				return fmt.Sprintf("ExpressPass+PrioQueue(RTO=%v)", o.RTO)
			},
			Mutate: func(o *Options, spec scheme.Spec) {
				o.Aeolus = core.DefaultOptions()
				o.RTOOnly = true
			},
			Qdisc: func(o Options, buffer int64) netem.QdiscFactory {
				return wrapData(func(sim.Rate) netem.Qdisc { return core.NewBoundedPrio(buffer) })
			},
		},
	)
}

// applyOpt maps generic -opt keys onto the typed options.
func applyOpt(o *Options, key, val string) error {
	var err error
	switch key {
	case "initrate":
		o.InitRate, err = scheme.OptFloat(key, val)
	case "aggressiveness":
		o.Aggressiveness, err = scheme.OptFloat(key, val)
	case "targetloss":
		o.TargetLoss, err = scheme.OptFloat(key, val)
	case "probetimeout":
		o.Aeolus.ProbeTimeout, err = scheme.OptDuration(key, val)
	case "maxproberesends":
		o.Aeolus.MaxProbeResends, err = scheme.OptInt(key, val)
	default:
		return fmt.Errorf("unknown option %q (ExpressPass takes initrate, aggressiveness, targetloss, probetimeout, maxproberesends)", key)
	}
	return err
}

// wrapData builds an ExpressPass fabric whose per-port data queue is
// produced by mk (credit shaping is always retained; host NICs get the
// scheduled-first unbounded queue).
func wrapData(mk func(sim.Rate) netem.Qdisc) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		var data netem.Qdisc
		if kind == netem.HostNIC {
			data = core.NewOraclePrio()
		} else {
			data = mk(rate)
		}
		return netem.NewXPassQdisc(netem.XPassQdiscConfig{
			CreditRate: netem.CreditRateFor(rate),
			Data:       data,
		})
	}
}
