package expresspass

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// build creates a single-switch 10G testbed network with the ExpressPass
// fabric discipline.
func build(t *testing.T, hosts int, opts Options) (*transport.Env, *Protocol) {
	t.Helper()
	eng := sim.NewEngine()
	net := netem.BuildSingleSwitch(eng, hosts, netem.TopoConfig{
		HostRate:  10 * sim.Gbps,
		LinkDelay: 3 * sim.Microsecond,
		MakeQdisc: QdiscFactory(opts, netem.DefaultBuffer),
	})
	env := transport.NewEnv(net, netem.MaxPayload)
	return env, New(env, opts)
}

func runTrace(env *transport.Env, p *Protocol, trace []workload.FlowSpec) int {
	return transport.Runner(env, p, trace, sim.Time(2*sim.Second))
}

func oneFlow(src, dst int, size int64) []workload.FlowSpec {
	return []workload.FlowSpec{{ID: 1, Src: src, Dst: dst, Size: size, Start: sim.Time(sim.Microsecond)}}
}

func TestSingleFlowCompletes(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, 2, opts)
		done := runTrace(env, p, oneFlow(0, 1, 100_000))
		if done != 1 {
			t.Fatalf("aeolus=%v: completed %d flows, want 1", aeolus, done)
		}
		rec := env.FCT.Records()[0]
		if rec.FCT() <= 0 || rec.FCT() > sim.Duration(10*sim.Millisecond) {
			t.Fatalf("aeolus=%v: FCT = %v", aeolus, rec.FCT())
		}
		if env.Meter.DeliveredPayload != 100_000 {
			t.Fatalf("aeolus=%v: delivered %d bytes", aeolus, env.Meter.DeliveredPayload)
		}
	}
}

func TestVanillaWaitsFullRTT(t *testing.T) {
	// A small flow under vanilla ExpressPass cannot beat ~1.5 RTT: request
	// travels one way, credits come back, then data flows.
	opts := DefaultOptions()
	env, p := build(t, 2, opts)
	runTrace(env, p, oneFlow(0, 1, 3000))
	fct := env.FCT.Records()[0].FCT()
	if fct < env.Net.BaseRTT {
		t.Fatalf("vanilla small-flow FCT %v < base RTT %v — it cannot be", fct, env.Net.BaseRTT)
	}
}

func TestAeolusFinishesSmallFlowInFirstRTT(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 2, opts)
	runTrace(env, p, oneFlow(0, 1, 3000))
	fct := env.FCT.Records()[0].FCT()
	if fct > env.Net.BaseRTT {
		t.Fatalf("Aeolus small-flow FCT %v > base RTT %v", fct, env.Net.BaseRTT)
	}
}

func TestAeolusBeatsVanillaOnSmallFlows(t *testing.T) {
	measure := func(aeolus bool) sim.Duration {
		opts := DefaultOptions()
		if aeolus {
			opts.Aeolus = core.DefaultOptions()
		}
		env, p := build(t, 2, opts)
		runTrace(env, p, oneFlow(0, 1, 50_000))
		return env.FCT.Records()[0].FCT()
	}
	v, a := measure(false), measure(true)
	if a >= v {
		t.Fatalf("Aeolus FCT %v not better than vanilla %v", a, v)
	}
}

func TestLargeFlowMultipleRTTs(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 2, opts)
	const size = 2_000_000
	done := runTrace(env, p, oneFlow(0, 1, size))
	if done != 1 {
		t.Fatal("large flow did not complete")
	}
	if env.Meter.DeliveredPayload != size {
		t.Fatalf("delivered %d, want %d", env.Meter.DeliveredPayload, size)
	}
	// Efficiency should be near 1: selective drops only affect the BDP
	// burst and the path is uncontended.
	if eff := env.Meter.Efficiency(); eff < 0.95 {
		t.Fatalf("efficiency = %.3f", eff)
	}
}

func TestIncastAllComplete(t *testing.T) {
	for _, aeolus := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Aeolus.Enabled = aeolus
		opts.Aeolus.ThresholdBytes = core.DefaultThreshold
		env, p := build(t, 8, opts)
		trace := (&workload.IncastConfig{
			Fanin: 7, Receiver: 0, Hosts: 8, MsgSize: 30_000, Seed: 1,
			StartAt: sim.Time(sim.Microsecond),
		}).Generate()
		done := runTrace(env, p, trace)
		if done != 7 {
			t.Fatalf("aeolus=%v: %d of 7 incast flows completed", aeolus, done)
		}
		if env.Meter.DeliveredPayload != 7*30_000 {
			t.Fatalf("aeolus=%v: delivered %d", aeolus, env.Meter.DeliveredPayload)
		}
	}
}

func TestScheduledNeverDroppedUnderAeolus(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 8, opts)
	trace := (&workload.IncastConfig{
		Fanin: 7, Receiver: 0, Hosts: 8, MsgSize: 100_000, Seed: 2,
		StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	dropped := 0
	for _, pt := range env.Net.SwitchPorts() {
		pt.Q.SetDropHook(func(pkt *netem.Packet, reason netem.DropReason) {
			if pkt.Scheduled || pkt.Type.IsControl() {
				dropped++
			}
		})
	}
	runTrace(env, p, trace)
	if dropped != 0 {
		t.Fatalf("%d scheduled/control packets dropped — SPF violated", dropped)
	}
}

func TestCreditFeedbackRampsUp(t *testing.T) {
	// A long uncontended flow should push the credit rate well above the
	// 1/16 initial rate, completing much faster than at the initial rate.
	opts := DefaultOptions()
	env, p := build(t, 2, opts)
	const size = 4_000_000
	runTrace(env, p, oneFlow(0, 1, size))
	fct := env.FCT.Records()[0].FCT()
	// At a fixed 1/16 rate the flow would take size*8/(10G/16) ≈ 51 ms.
	atInit := sim.Duration(float64(size*8) / (float64(10*sim.Gbps) / 16) * float64(sim.Second))
	if fct > atInit/4 {
		t.Fatalf("FCT %v suggests the feedback loop never ramped (1/16-rate bound %v)", fct, atInit)
	}
}

func TestPoissonMixCompletes(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 8, opts)
	trace := (&workload.PoissonConfig{
		CDF: workload.WebServer, Hosts: 8, HostRate: 10 * sim.Gbps,
		Load: 0.3, Flows: 200, Seed: 3, StartAt: sim.Time(sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(5*sim.Second))
	if done != 200 {
		t.Fatalf("completed %d of 200 flows", done)
	}
	if eff := env.Meter.Efficiency(); eff < 0.8 {
		t.Fatalf("efficiency = %.3f", eff)
	}
}

func TestWastedCreditsBounded(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, 2, opts)
	runTrace(env, p, oneFlow(0, 1, 100_000))
	// Credit-stop should bound waste to roughly one RTT of credits.
	if p.WastedCredits > 100 {
		t.Fatalf("wasted credits = %d, credit stop not working", p.WastedCredits)
	}
}

func TestProtocolName(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, 2, opts)
	if p.Name() != "ExpressPass" {
		t.Fatal(p.Name())
	}
	opts.Aeolus.Enabled = true
	_, p2 := build(t, 2, opts)
	_ = env
	if p2.Name() != "ExpressPass+Aeolus" {
		t.Fatal(p2.Name())
	}
}

// TestCreditFeedbackBacksOffUnderContention pins the other half of the
// feedback loop: when many flows share one bottleneck, per-flow credit
// rates must converge well below line rate (credit drops at the shaped
// credit queues signal the over-allocation).
func TestCreditFeedbackBacksOffUnderContention(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, 8, opts)
	// 6 long flows into one receiver.
	var trace []workload.FlowSpec
	for i := 0; i < 6; i++ {
		trace = append(trace, workload.FlowSpec{
			ID: uint64(i + 1), Src: i + 1, Dst: 0, Size: 1_000_000,
			Start: sim.Time(sim.Microsecond),
		})
	}
	done := transport.Runner(env, p, trace, sim.Time(5*sim.Second))
	if done != 6 {
		t.Fatalf("completed %d of 6", done)
	}
	// The shared bottleneck must never overflow: scheduled data stays
	// credit-paced, so the aggregate converges to the link share without
	// tail drops (the feedback loop backs each flow off well below line
	// rate long before the buffer bound).
	drops := netem.DropTotals(env.Net.SwitchPorts())
	if drops[netem.DropTailFull] != 0 {
		t.Fatalf("%d data tail-drops; credit pacing failed", drops[netem.DropTailFull])
	}
	// Aggregate completion time ≈ serializing 6 MB through one 10G link;
	// if per-flow rates failed to back off the queue (and FCTs) explode, if
	// they collapsed the transfer would take many times longer.
	var maxFCT sim.Duration
	for _, r := range env.FCT.Records() {
		if r.FCT() > maxFCT {
			maxFCT = r.FCT()
		}
	}
	ideal := sim.Duration(float64(6*1_000_000*8) / float64(10*sim.Gbps) * float64(sim.Second))
	if maxFCT > 3*ideal {
		t.Fatalf("makespan %v vs ideal %v — rates did not converge to a fair share", maxFCT, ideal)
	}
}

// TestCreditJitterBounds pins the ±10% pacing jitter: inter-credit gaps at
// an uncontended receiver stay within 0.9x..1.1x of the nominal gap.
func TestCreditJitterBounds(t *testing.T) {
	opts := DefaultOptions()
	env, p := build(t, 2, opts)
	var creditTimes []sim.Time
	inner := env.Net.Hosts[0].EP
	env.Net.Hosts[0].EP = epSpy{inner: inner, onPkt: func(pkt *netem.Packet) {
		if pkt.Type == netem.Credit {
			creditTimes = append(creditTimes, env.Eng.Now())
		}
	}}
	runTrace(env, p, oneFlow(0, 1, 400_000))
	if len(creditTimes) < 20 {
		t.Fatalf("observed only %d credits", len(creditTimes))
	}
	// Steady state: skip the multiplicative ramp (the rate roughly doubles
	// per RTT early on), then check consecutive gaps stay within jitter
	// plus one rate-update step of each other.
	start := len(creditTimes) / 2
	for i := start; i < len(creditTimes)-1; i++ {
		gap := creditTimes[i] - creditTimes[i-1]
		next := creditTimes[i+1] - creditTimes[i]
		if gap <= 0 {
			t.Fatalf("non-positive credit gap at %d", i)
		}
		ratio := float64(next) / float64(gap)
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("credit gap ratio %.2f at %d — pacing erratic", ratio, i)
		}
	}
}

type epSpy struct {
	inner netem.Endpoint
	onPkt func(*netem.Packet)
}

func (s epSpy) Receive(p *netem.Packet) {
	s.onPkt(p)
	if s.inner != nil {
		s.inner.Receive(p)
	}
}
