package expresspass

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// injectLoss installs a loss impairment with targeted random loss on every
// switch port.
func injectLoss(net *netem.Network, rate float64, seed uint64, match func(*netem.Packet) bool) []*netem.LinkImpairment {
	var out []*netem.LinkImpairment
	for _, pt := range net.SwitchPorts() {
		li := netem.InstallImpairment(pt, seed)
		li.SetLoss(rate, 0, match)
		out = append(out, li)
		seed++
	}
	return out
}

// TestProbeLossRecoveredBySafetyTimer injects certain loss of the first
// probe; the §6 safety timer must re-probe and the flow must still finish.
func TestProbeLossRecoveredBySafetyTimer(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	opts.Aeolus.ProbeTimeout = 100 * sim.Microsecond
	opts.Aeolus.MaxProbeResends = 5
	env, p := build(t, 2, opts)

	dropped := 0
	injectLoss(env.Net, 1.0, 3, func(pkt *netem.Packet) bool {
		// Only the very first probe.
		if pkt.Type == netem.Probe && dropped == 0 {
			dropped++
			return true
		}
		return false
	})
	done := runTrace(env, p, oneFlow(0, 1, 50_000))
	if done != 1 {
		t.Fatal("flow did not recover from probe loss")
	}
	if dropped != 1 {
		t.Fatalf("injected %d probe losses, want 1", dropped)
	}
}

// TestAckLossTriggersSpuriousButBoundedRetx injects loss of some per-packet
// ACKs: the sender must retransmit those segments (it cannot tell loss from
// ACK loss), the receiver must deduplicate, and the flow completes with the
// duplicate volume bounded by the ACK loss.
func TestAckLossTriggersSpuriousButBoundedRetx(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 2, opts)
	injectLoss(env.Net, 0.5, 9, func(pkt *netem.Packet) bool {
		return pkt.Type == netem.Ack && pkt.Meta == 0 // data ACKs only, not probe ACKs
	})
	const size = 60_000
	done := runTrace(env, p, oneFlow(0, 1, size))
	if done != 1 {
		t.Fatal("flow did not complete under ACK loss")
	}
	if env.Meter.DeliveredPayload != size {
		t.Fatalf("delivered %d", env.Meter.DeliveredPayload)
	}
	// Duplicates are bounded by the burst size.
	if env.Meter.SentPayload > 2*size {
		t.Fatalf("sent %d bytes for a %d byte flow; unbounded duplication", env.Meter.SentPayload, size)
	}
}

// TestScheduledLossRecoveredByRTO injects rare loss of scheduled packets
// (which selective dropping alone would never discard) and relies on the
// receiver-driven RTO resend path.
func TestScheduledLossRecoveredByRTO(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	opts.RTO = 500 * sim.Microsecond
	env, p := build(t, 2, opts)
	injectLoss(env.Net, 0.05, 17, func(pkt *netem.Packet) bool {
		return pkt.Type == netem.Data && pkt.Scheduled
	})
	const size = 500_000
	done := runTrace(env, p, oneFlow(0, 1, size))
	if done != 1 {
		t.Fatal("flow did not complete under scheduled loss")
	}
	if env.FCT.Records()[0].Timeouts == 0 {
		t.Fatal("expected at least one RTO with 5% scheduled loss")
	}
	if env.Meter.DeliveredPayload != size {
		t.Fatalf("delivered %d of %d", env.Meter.DeliveredPayload, size)
	}
}

// TestHeavyIncastProbesSurvive reproduces the §6 resilience argument: with
// minimum-size probes and a small dropping threshold, even a very wide
// incast delivers every probe (they are scheduled/protected) and every
// message completes without deadlock.
func TestHeavyIncastProbesSurvive(t *testing.T) {
	opts := DefaultOptions()
	opts.Aeolus = core.DefaultOptions()
	env, p := build(t, 8, opts)
	probeDrops := 0
	for _, pt := range env.Net.SwitchPorts() {
		pt.Q.SetDropHook(func(pkt *netem.Packet, _ netem.DropReason) {
			if pkt.Type == netem.Probe {
				probeDrops++
			}
		})
	}
	// 70 concurrent messages into one receiver (senders cycle over hosts).
	trace := (&workload.IncastConfig{
		Fanin: 70, Receiver: 0, Hosts: 8, MsgSize: 20_000, Seed: 21,
		StartAt: sim.Time(10 * sim.Microsecond),
	}).Generate()
	done := transport.Runner(env, p, trace, sim.Time(2*sim.Second))
	if done != 70 {
		t.Fatalf("completed %d of 70", done)
	}
	if probeDrops != 0 {
		t.Fatalf("%d probes dropped; they must be protected", probeDrops)
	}
}
