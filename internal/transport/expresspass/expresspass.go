// Package expresspass implements the ExpressPass proactive transport
// [Cho, Jang, Han, SIGCOMM'17] on the netem fabric, with an optional Aeolus
// layer (§5.2 of the Aeolus paper).
//
// ExpressPass is receiver-driven: a sender asks for credits; the receiver
// paces 84-byte credit packets toward the sender; each arriving credit
// authorizes one maximum-size (1538 B) scheduled data frame. Credits are
// rate-limited at every port by the fabric (netem.XPassQdisc), so the data
// they trigger can never oversubscribe a link; credits dropped by the
// shaper feed the receiver's credit feedback control, which adjusts the
// per-flow credit rate between 1/16 and 1.0 of the link.
//
// Vanilla ExpressPass sends no payload in the first RTT ("waiting credits",
// Fig. 1a). With Aeolus enabled, the sender bursts one BDP of unscheduled
// packets at line rate alongside the credit request, a probe trails the
// burst, the receiver ACKs each unscheduled arrival, and first-RTT losses
// are retransmitted through subsequent credits in the §3.3 priority order.
//
// The package is a policy layer over the shared receiver-driven substrate
// (internal/transport/rdbase): rdbase owns the PreCredit binding, packet
// construction and the RTO lifecycle; this file owns credit pacing and the
// feedback control.
package expresspass

import (
	"math/rand/v2"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/transport/rdbase"
)

// Options configures ExpressPass.
type Options struct {
	// Aeolus enables and configures the pre-credit building block.
	Aeolus core.Options

	// InitRate is the initial per-flow credit rate as a fraction of the
	// edge link (paper default 1/16).
	InitRate float64

	// Aggressiveness is the feedback-control aggressiveness factor ω
	// (paper default 1/16).
	Aggressiveness float64

	// TargetLoss is the credit-loss target of the feedback loop.
	TargetLoss float64

	// RTO is the receiver-driven retransmission timeout recovering lost
	// scheduled packets (rare in ExpressPass; essential for the Table 4/5
	// priority-queueing comparisons). Zero disables it.
	RTO sim.Duration

	// RTOOnly disables the Aeolus probe/per-packet-ACK loss detection while
	// keeping the pre-credit burst: first-RTT losses are then recovered
	// solely by the RTO. This models the priority-queueing alternative of
	// §5.5/Table 4, whose trapped-vs-lost ambiguity forces exactly this
	// timeout-based recovery.
	RTOOnly bool

	// Seed randomizes credit pacing jitter.
	Seed uint64
}

// DefaultOptions returns the paper's §5.1 defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		InitRate:       1.0 / 16,
		Aggressiveness: 1.0 / 16,
		TargetLoss:     0.125,
		RTO:            10 * sim.Millisecond,
	}
}

// QdiscFactory returns the fabric discipline for an ExpressPass network:
// per-port shaped credit queues, plus either plain FIFOs (vanilla) or
// selective-dropping data queues (Aeolus). Host NICs always get a shaped
// credit queue over a scheduled-first data queue so pre-credit bursts never
// block a sender's own scheduled packets or outgoing credits.
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		var data netem.Qdisc
		switch {
		case kind == netem.HostNIC:
			data = core.NewOraclePrio()
		case opts.Aeolus.Enabled:
			data = netem.NewSelectiveDrop(opts.Aeolus.ThresholdBytes, bufferBytes)
		default:
			data = netem.NewFIFO(bufferBytes)
		}
		return netem.NewXPassQdisc(netem.XPassQdiscConfig{
			CreditRate: netem.CreditRateFor(rate),
			Data:       data,
		})
	}
}

// Protocol is the ExpressPass implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	tbl       rdbase.Tables[sender]
	receivers rdbase.FlowTable[receiver]

	// WastedCredits counts credits that arrived at a sender with nothing
	// left to send.
	WastedCredits uint64
}

// New builds the protocol and attaches it to every host of the environment.
func New(env *transport.Env, opts Options) *Protocol {
	p := &Protocol{
		env: env, opts: opts,
		rng: sim.NewRand(opts.Seed, 0xE9),
		tbl: rdbase.NewTables[sender](),
	}
	for _, h := range env.Net.EndpointHosts() {
		h.EP = &endpoint{p: p}
	}
	return p
}

// Register records a flow without starting a sender. The sharded harness
// calls it on the receiver shard's protocol instance (when the receiver
// lives on a different shard than the sender) so arriving packets can
// resolve the flow; on sequential runs Start's own AddFlow covers it.
func (p *Protocol) Register(f *transport.Flow) { p.tbl.AddFlow(f) }

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "ExpressPass+Aeolus"
	}
	return "ExpressPass"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.tbl.AddFlow(f)
	s := p.tbl.AddSender(f.ID)
	s.init(p, f)
	s.start()
}

// endpoint demultiplexes packets at a host to the per-flow state machines.
type endpoint struct{ p *Protocol }

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	p := ep.p
	switch pkt.Type {
	case netem.CreditReq, netem.Data, netem.Probe, netem.CtrlOther:
		r, added := p.receivers.Put(pkt.Flow)
		if added {
			r.init(p, pkt.Flow)
		}
		r.receive(pkt)
	case netem.Credit, netem.Ack, netem.Resend:
		if s := p.tbl.Sender(pkt.Flow); s != nil {
			s.receive(pkt)
		}
	}
}

// sender is the per-flow sender state: the rdbase substrate plus the
// credit-stop handshake and the credit-request retry timer.
type sender struct {
	rdbase.Sender
	p *Protocol

	stopSent bool
	heard    bool // any receiver packet arrived: the request survived
	reqTm    sim.Timer
}

// init wires a zeroed sender slot (from the packed sender table) for a flow.
func (s *sender) init(p *Protocol, f *transport.Flow) {
	s.p = p
	s.Init(p.env, f, p.opts.Aeolus, p.env.Net.BDPBytes())
	s.reqTm.Init(p.env.Eng, s.reqExpire)
	if p.opts.RTOOnly {
		// No probe, no selective ACKs: the burst is presumed delivered and
		// losses surface only through receiver RTO resend requests.
		s.DisableProbe()
	}
}

func (s *sender) start() {
	s.sendReq()
	s.Start()
	// The credit request is the flow's only handle on the receiver-driven
	// recovery machinery: until it arrives, no credits flow and no receiver
	// RTO is armed, so a lost request would stall the flow forever. Retry it
	// on the RTO timescale until any receiver packet proves it (or the
	// backup probe) got through.
	if s.p.opts.RTO > 0 {
		s.reqTm.Reset(s.p.opts.RTO)
	}
}

// sendReq sends the credit request (in-order fabric: it precedes the burst).
func (s *sender) sendReq() {
	rdbase.Ctrl(s.Env, s.Flow, netem.CreditReq,
		s.Flow.Src, s.Flow.Dst, 0, s.Flow.Size, s.Flow.PathID)
}

func (s *sender) reqExpire() {
	if s.heard {
		return
	}
	s.sendReq()
	s.reqTm.Reset(s.p.opts.RTO)
}

func (s *sender) receive(pkt *netem.Packet) {
	if !s.heard {
		// Credit, Ack and Resend each imply the receiver established the
		// flow, which arms its RTO — the request needs no more retries.
		s.heard = true
		s.reqTm.Stop()
	}
	switch pkt.Type {
	case netem.Credit:
		s.onCredit()
	case netem.Ack:
		s.OnAck(pkt)
	case netem.Resend:
		s.ForceLost(pkt.SegList)
		s.stopSent = false
	}
}

func (s *sender) onCredit() {
	s.PC.StopBurst()
	if _, class := s.Spend(); class == core.ClassNone {
		s.p.WastedCredits++
		if !s.stopSent && s.PC.Done() {
			s.stopSent = true
			rdbase.Ctrl(s.Env, s.Flow, netem.CtrlOther,
				s.Flow.Src, s.Flow.Dst, 0, 0, s.Flow.PathID)
		}
	}
}

// receiver is the per-flow receiver state: reassembly, credit pacing with
// feedback control, per-packet ACKs for unscheduled data, and RTO-based
// resend requests.
type receiver struct {
	p      *Protocol
	flowID uint64
	rx     rdbase.Rx

	pending []int64 // data that arrived before the flow size was known

	crediting bool
	creditSeq int64
	rate      float64 // credit rate as a fraction of the edge link
	w         float64 // feedback aggressiveness
	creditsIn int     // credits sent in the current feedback window
	prevSent  int     // credits sent in the previous window (lag compensation)
	dataIn    int     // scheduled data received in the current window
	creditTm  sim.Timer
	feedback  sim.Timer
}

// init wires a zeroed receiver slot (from the packed receiver table) for a
// flow.
func (r *receiver) init(p *Protocol, flowID uint64) {
	r.p, r.flowID = p, flowID
	r.rate, r.w = p.opts.InitRate, p.opts.Aggressiveness
	r.rx.Env = p.env
	r.creditTm.Init(p.env.Eng, r.creditTick)
	r.feedback.Init(p.env.Eng, r.feedbackTick)
	r.rx.RTO.Init(p.env.Eng, p.opts.RTO, r.rtoExpire)
}

func (r *receiver) host() *netem.Host { return r.p.env.Net.Host(r.rx.Flow.Dst) }

func (r *receiver) receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.CreditReq:
		r.establish(pkt.Meta)
		r.startCrediting()
	case netem.Probe:
		r.establish(pkt.Meta)
		r.rx.SendAck(pkt.Seq, rdbase.ProbeAckMark)
		// The probe carries the flow size, so it doubles as a backup credit
		// request when the request itself was lost: without this, first-RTT
		// losses would sit in the sender's lost queue with no credits ever
		// coming to spend on them. On the in-order fabric the request (a
		// scheduled control packet) precedes the unscheduled burst and
		// probe, so this is a no-op on an unimpaired path.
		r.startCrediting()
	case netem.Data:
		r.onData(pkt)
	case netem.CtrlOther:
		// Credit stop: the sender has nothing left to send. Crediting
		// pauses; the RTO stays armed in case a loss surfaces later.
		r.stopCrediting()
	}
}

// establish learns the flow size (idempotent) and replays early data.
func (r *receiver) establish(size int64) {
	if r.rx.Tracker != nil {
		return
	}
	r.rx.Flow = r.p.tbl.Flow(r.flowID)
	r.rx.Tracker = transport.NewRxTracker(size, r.p.env.MSS)
	for _, off := range r.pending {
		r.rx.Accept(off)
	}
	r.pending = nil
	r.maybeFinish()
}

func (r *receiver) onData(pkt *netem.Packet) {
	r.rx.RTO.Touch()
	if !pkt.Scheduled && r.p.opts.Aeolus.Enabled && !r.p.opts.RTOOnly {
		r.sendAckDeferred(pkt.Seq, 0)
	}
	if pkt.Scheduled {
		r.dataIn++
	}
	if r.rx.Tracker == nil {
		r.pending = append(r.pending, pkt.Seq)
		return
	}
	r.rx.Accept(pkt.Seq)
	r.maybeFinish()
}

// sendAckDeferred queues the ACK when flow state is not yet established
// (data raced ahead of the request — impossible on the in-order fabric, but
// kept for robustness).
func (r *receiver) sendAckDeferred(seq int64, mark int64) {
	if r.rx.Flow == nil {
		if f := r.p.tbl.Flow(r.flowID); f != nil {
			r.rx.Flow = f
		} else {
			return
		}
	}
	r.rx.SendAck(seq, mark)
}

func (r *receiver) maybeFinish() {
	if r.rx.Done || r.rx.Tracker == nil || !r.rx.Complete() {
		return
	}
	r.rx.Done = true
	r.stopCrediting()
	r.rx.RTO.Stop()
	r.p.env.FlowDone(r.rx.Flow)
}

func (r *receiver) startCrediting() {
	if r.crediting || r.rx.Done {
		return
	}
	r.crediting = true
	r.scheduleCredit()
	r.scheduleFeedback()
	r.rx.RTO.Arm()
}

func (r *receiver) stopCrediting() {
	r.crediting = false
	r.creditTm.Stop()
	r.feedback.Stop()
}

// creditGap returns the pacing interval at the current rate with ±10%
// jitter (ExpressPass jitters credits to break synchronization).
func (r *receiver) creditGap() sim.Duration {
	rate := sim.Rate(r.rate * float64(r.p.env.Net.HostRate))
	if rate < 1 {
		rate = 1
	}
	gap := sim.TxTime(netem.WireSizeFor(r.p.env.MSS), rate)
	jitter := 0.9 + 0.2*r.p.rng.Float64()
	return sim.Duration(float64(gap) * jitter)
}

func (r *receiver) scheduleCredit() { r.creditTm.Reset(r.creditGap()) }

func (r *receiver) creditTick() {
	if !r.crediting || r.rx.Done {
		return
	}
	r.creditSeq++
	r.creditsIn++
	pkt := r.p.env.Pkt()
	pkt.Type = netem.Credit
	pkt.Flow = r.flowID
	pkt.Src = r.rx.Flow.Dst
	pkt.Dst = r.rx.Flow.Src
	pkt.Seq = r.creditSeq
	pkt.WireSize = netem.CreditSize
	pkt.Scheduled = true
	pkt.PathID = r.rx.Flow.PathID
	r.host().Send(pkt)
	r.scheduleCredit()
}

// scheduleFeedback runs the ExpressPass credit feedback control once per
// base RTT: raise the credit rate toward line rate while credit loss stays
// under target, multiplicatively back off otherwise.
func (r *receiver) scheduleFeedback() { r.feedback.Reset(r.p.env.Net.BaseRTT) }

func (r *receiver) feedbackTick() {
	if !r.crediting || r.rx.Done {
		return
	}
	// Scheduled data lags the credits that triggered it by one RTT, so
	// this window's arrivals are compared against the previous window's
	// credits.
	if r.prevSent > 0 {
		loss := 1 - float64(r.dataIn)/float64(r.prevSent)
		if loss < 0 {
			loss = 0
		}
		if loss <= r.p.opts.TargetLoss {
			r.rate = (1-r.w)*r.rate + r.w*1.0
			if loss == 0 {
				r.w = (r.w + 0.5) / 2
			}
		} else {
			r.rate = r.rate * (1 - loss) * (1 + r.p.opts.TargetLoss)
			r.w = maxF(r.w/2, 0.01)
			if r.rate < r.p.opts.InitRate/4 {
				r.rate = r.p.opts.InitRate / 4
			}
		}
	}
	r.prevSent, r.creditsIn, r.dataIn = r.creditsIn, 0, 0
	r.scheduleFeedback()
}

// rtoExpire is the receiver-driven loss recovery policy: when the flow sat
// idle for a full RTO and is established, request every missing segment and
// resume crediting. Idle detection, the done guard and rearming live in
// rdbase.RTO.
func (r *receiver) rtoExpire() {
	if r.rx.Tracker == nil {
		return
	}
	r.rx.Flow.Timeouts++
	r.rx.SendResend(r.rx.Missing(r.rx.Tracker.Seg.NumSegs()))
	r.startCrediting()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AuditInvariants checks every flow's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	return rdbase.AuditPreCredits("expresspass", p.tbl.Senders(),
		func(s *sender) *core.PreCredit { return s.PC })
}

// Footprint implements transport.FootprintReporter: resident flow
// descriptors, sender machines and per-flow credit-shaping receivers.
func (p *Protocol) Footprint() transport.Footprint {
	flows, senders := p.tbl.Len()
	return transport.Footprint{Flows: flows, Senders: senders, Receivers: p.receivers.Len()}
}
