// Package expresspass implements the ExpressPass proactive transport
// [Cho, Jang, Han, SIGCOMM'17] on the netem fabric, with an optional Aeolus
// layer (§5.2 of the Aeolus paper).
//
// ExpressPass is receiver-driven: a sender asks for credits; the receiver
// paces 84-byte credit packets toward the sender; each arriving credit
// authorizes one maximum-size (1538 B) scheduled data frame. Credits are
// rate-limited at every port by the fabric (netem.XPassQdisc), so the data
// they trigger can never oversubscribe a link; credits dropped by the
// shaper feed the receiver's credit feedback control, which adjusts the
// per-flow credit rate between 1/16 and 1.0 of the link.
//
// Vanilla ExpressPass sends no payload in the first RTT ("waiting credits",
// Fig. 1a). With Aeolus enabled, the sender bursts one BDP of unscheduled
// packets at line rate alongside the credit request, a probe trails the
// burst, the receiver ACKs each unscheduled arrival, and first-RTT losses
// are retransmitted through subsequent credits in the §3.3 priority order.
package expresspass

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/core"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Options configures ExpressPass.
type Options struct {
	// Aeolus enables and configures the pre-credit building block.
	Aeolus core.Options

	// InitRate is the initial per-flow credit rate as a fraction of the
	// edge link (paper default 1/16).
	InitRate float64

	// Aggressiveness is the feedback-control aggressiveness factor ω
	// (paper default 1/16).
	Aggressiveness float64

	// TargetLoss is the credit-loss target of the feedback loop.
	TargetLoss float64

	// RTO is the receiver-driven retransmission timeout recovering lost
	// scheduled packets (rare in ExpressPass; essential for the Table 4/5
	// priority-queueing comparisons). Zero disables it.
	RTO sim.Duration

	// RTOOnly disables the Aeolus probe/per-packet-ACK loss detection while
	// keeping the pre-credit burst: first-RTT losses are then recovered
	// solely by the RTO. This models the priority-queueing alternative of
	// §5.5/Table 4, whose trapped-vs-lost ambiguity forces exactly this
	// timeout-based recovery.
	RTOOnly bool

	// Seed randomizes credit pacing jitter.
	Seed uint64
}

// DefaultOptions returns the paper's §5.1 defaults (Aeolus disabled).
func DefaultOptions() Options {
	return Options{
		InitRate:       1.0 / 16,
		Aggressiveness: 1.0 / 16,
		TargetLoss:     0.125,
		RTO:            10 * sim.Millisecond,
	}
}

// QdiscFactory returns the fabric discipline for an ExpressPass network:
// per-port shaped credit queues, plus either plain FIFOs (vanilla) or
// selective-dropping data queues (Aeolus). Host NICs always get a shaped
// credit queue over a scheduled-first data queue so pre-credit bursts never
// block a sender's own scheduled packets or outgoing credits.
func QdiscFactory(opts Options, bufferBytes int64) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		var data netem.Qdisc
		switch {
		case kind == netem.HostNIC:
			data = core.NewOraclePrio()
		case opts.Aeolus.Enabled:
			data = netem.NewSelectiveDrop(opts.Aeolus.ThresholdBytes, bufferBytes)
		default:
			data = netem.NewFIFO(bufferBytes)
		}
		return netem.NewXPassQdisc(netem.XPassQdiscConfig{
			CreditRate: netem.CreditRateFor(rate),
			Data:       data,
		})
	}
}

// Protocol is the ExpressPass implementation. One instance drives all hosts.
type Protocol struct {
	env  *transport.Env
	opts Options
	rng  *rand.Rand

	flows     map[uint64]*transport.Flow
	senders   map[uint64]*sender
	receivers map[uint64]*receiver

	// WastedCredits counts credits that arrived at a sender with nothing
	// left to send.
	WastedCredits uint64
}

// New builds the protocol and attaches it to every host of the environment.
func New(env *transport.Env, opts Options) *Protocol {
	p := &Protocol{
		env: env, opts: opts,
		rng:       sim.NewRand(opts.Seed, 0xE9),
		flows:     make(map[uint64]*transport.Flow),
		senders:   make(map[uint64]*sender),
		receivers: make(map[uint64]*receiver),
	}
	for _, h := range env.Net.Hosts {
		h.EP = &endpoint{p: p}
	}
	return p
}

// Name implements transport.Protocol.
func (p *Protocol) Name() string {
	if p.opts.Aeolus.Enabled {
		return "ExpressPass+Aeolus"
	}
	return "ExpressPass"
}

// Start implements transport.Protocol.
func (p *Protocol) Start(f *transport.Flow) {
	p.flows[f.ID] = f
	s := newSender(p, f)
	p.senders[f.ID] = s
	s.start()
}

// endpoint demultiplexes packets at a host to the per-flow state machines.
type endpoint struct{ p *Protocol }

// Receive implements netem.Endpoint.
func (ep *endpoint) Receive(pkt *netem.Packet) {
	p := ep.p
	switch pkt.Type {
	case netem.CreditReq, netem.Data, netem.Probe, netem.CtrlOther:
		r := p.receivers[pkt.Flow]
		if r == nil {
			r = newReceiver(p, pkt.Flow)
			p.receivers[pkt.Flow] = r
		}
		r.receive(pkt)
	case netem.Credit, netem.Ack, netem.Resend:
		if s := p.senders[pkt.Flow]; s != nil {
			s.receive(pkt)
		}
	}
}

// sender is the per-flow sender state.
type sender struct {
	p  *Protocol
	f  *transport.Flow
	pc *core.PreCredit

	stopSent bool
}

func newSender(p *Protocol, f *transport.Flow) *sender {
	s := &sender{p: p, f: f}
	s.pc = core.NewPreCredit(p.env, f, p.opts.Aeolus, p.env.Net.BDPBytes())
	s.pc.SendSeg = s.sendSeg
	if p.opts.RTOOnly {
		// No probe, no selective ACKs: the burst is presumed delivered and
		// losses surface only through receiver RTO resend requests.
		s.pc.SendProbe = func() {}
		s.pc.DisableUnackedSweep()
	} else {
		s.pc.SendProbe = s.sendProbe
	}
	return s
}

func (s *sender) host() *netem.Host { return s.p.env.Net.Host(s.f.Src) }

func (s *sender) start() {
	// Credit request first (in-order fabric: it precedes the burst).
	pkt := s.p.env.Pkt()
	pkt.Type = netem.CreditReq
	pkt.Flow = s.f.ID
	pkt.Src = s.f.Src
	pkt.Dst = s.f.Dst
	pkt.WireSize = netem.HeaderSize
	pkt.Scheduled = true
	pkt.PathID = s.f.PathID
	pkt.Meta = s.f.Size
	s.host().Send(pkt)
	s.pc.Start()
}

func (s *sender) sendSeg(seg int, scheduled bool) {
	payload := s.pc.Seg.SegLen(seg)
	s.p.env.CountSent(payload)
	pkt := s.p.env.Pkt()
	pkt.Type = netem.Data
	pkt.Flow = s.f.ID
	pkt.Src = s.f.Src
	pkt.Dst = s.f.Dst
	pkt.Seq = s.pc.Seg.Offset(seg)
	pkt.PayloadLen = payload
	pkt.WireSize = netem.WireSizeFor(payload)
	pkt.Scheduled = scheduled
	pkt.PathID = s.f.PathID
	s.host().Send(pkt)
}

func (s *sender) sendProbe() { s.host().Send(s.pc.MakeProbe()) }

func (s *sender) receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.Credit:
		s.onCredit()
	case netem.Ack:
		if pkt.Meta == probeAckMark {
			s.pc.OnProbeAck()
		} else {
			s.pc.OnAck(pkt.Seq)
		}
	case netem.Resend:
		for _, seg := range pkt.SegList {
			s.pc.ForceLost(int(seg))
		}
		s.stopSent = false
	}
}

func (s *sender) onCredit() {
	s.pc.StopBurst()
	seg, class := s.pc.Next()
	if class == core.ClassNone {
		s.p.WastedCredits++
		if !s.stopSent && s.pc.Done() {
			s.stopSent = true
			pkt := s.p.env.Pkt()
			pkt.Type = netem.CtrlOther
			pkt.Flow = s.f.ID
			pkt.Src = s.f.Src
			pkt.Dst = s.f.Dst
			pkt.WireSize = netem.HeaderSize
			pkt.Scheduled = true
			pkt.PathID = s.f.PathID
			s.host().Send(pkt)
		}
		return
	}
	s.sendSeg(seg, true)
}

// probeAckMark distinguishes a probe ACK from a per-packet data ACK.
const probeAckMark = 1

// receiver is the per-flow receiver state: reassembly, credit pacing with
// feedback control, per-packet ACKs for unscheduled data, and RTO-based
// resend requests.
type receiver struct {
	p      *Protocol
	flowID uint64
	f      *transport.Flow

	tracker *transport.RxTracker
	pending []int64 // data that arrived before the flow size was known

	crediting bool
	creditSeq int64
	rate      float64 // credit rate as a fraction of the edge link
	w         float64 // feedback aggressiveness
	creditsIn int     // credits sent in the current feedback window
	prevSent  int     // credits sent in the previous window (lag compensation)
	dataIn    int     // scheduled data received in the current window
	creditTm  sim.Timer
	feedback  sim.Timer
	rto       sim.Timer
	lastData  sim.Time
	done      bool
}

func newReceiver(p *Protocol, flowID uint64) *receiver {
	r := &receiver{
		p: p, flowID: flowID,
		rate: p.opts.InitRate, w: p.opts.Aggressiveness,
	}
	r.creditTm.Init(p.env.Eng, r.creditTick)
	r.feedback.Init(p.env.Eng, r.feedbackTick)
	r.rto.Init(p.env.Eng, r.rtoFire)
	return r
}

func (r *receiver) hostID() netem.NodeID { return r.f.Dst }

func (r *receiver) host() *netem.Host { return r.p.env.Net.Host(r.f.Dst) }

func (r *receiver) receive(pkt *netem.Packet) {
	switch pkt.Type {
	case netem.CreditReq:
		r.establish(pkt.Meta)
		r.startCrediting()
	case netem.Probe:
		r.establish(pkt.Meta)
		r.sendAck(pkt.Seq, probeAckMark)
	case netem.Data:
		r.onData(pkt)
	case netem.CtrlOther:
		// Credit stop: the sender has nothing left to send. Crediting
		// pauses; the RTO stays armed in case a loss surfaces later.
		r.stopCrediting()
	}
}

// establish learns the flow size (idempotent) and replays early data.
func (r *receiver) establish(size int64) {
	if r.tracker != nil {
		return
	}
	r.f = r.p.flows[r.flowID]
	r.tracker = transport.NewRxTracker(size, r.p.env.MSS)
	for _, off := range r.pending {
		r.accept(off)
	}
	r.pending = nil
	r.maybeFinish()
}

func (r *receiver) onData(pkt *netem.Packet) {
	r.lastData = r.p.env.Eng.Now()
	if !pkt.Scheduled && r.p.opts.Aeolus.Enabled && !r.p.opts.RTOOnly {
		r.sendAckDeferred(pkt.Seq, 0)
	}
	if pkt.Scheduled {
		r.dataIn++
	}
	if r.tracker == nil {
		r.pending = append(r.pending, pkt.Seq)
		return
	}
	r.accept(pkt.Seq)
	r.maybeFinish()
}

func (r *receiver) accept(off int64) {
	if n := r.tracker.Accept(off); n > 0 {
		r.p.env.CountDelivered(n)
	}
}

func (r *receiver) sendAck(seq int64, mark int64) {
	pkt := r.p.env.Pkt()
	pkt.Type = netem.Ack
	pkt.Flow = r.flowID
	pkt.Src = r.f.Dst
	pkt.Dst = r.f.Src
	pkt.Seq = seq
	pkt.WireSize = netem.HeaderSize
	pkt.Scheduled = true
	pkt.PathID = r.f.PathID
	pkt.Meta = mark
	r.host().Send(pkt)
}

// sendAckDeferred queues the ACK when flow state is not yet established
// (data raced ahead of the request — impossible on the in-order fabric, but
// kept for robustness).
func (r *receiver) sendAckDeferred(seq int64, mark int64) {
	if r.f == nil {
		if f := r.p.flows[r.flowID]; f != nil {
			r.f = f
		} else {
			return
		}
	}
	r.sendAck(seq, mark)
}

func (r *receiver) maybeFinish() {
	if r.done || r.tracker == nil || !r.tracker.Complete() {
		return
	}
	r.done = true
	r.stopCrediting()
	r.rto.Stop()
	r.p.env.FlowDone(r.f)
}

func (r *receiver) startCrediting() {
	if r.crediting || r.done {
		return
	}
	r.crediting = true
	r.scheduleCredit()
	r.scheduleFeedback()
	r.armRTO()
}

func (r *receiver) stopCrediting() {
	r.crediting = false
	r.creditTm.Stop()
	r.feedback.Stop()
}

// creditGap returns the pacing interval at the current rate with ±10%
// jitter (ExpressPass jitters credits to break synchronization).
func (r *receiver) creditGap() sim.Duration {
	rate := sim.Rate(r.rate * float64(r.p.env.Net.HostRate))
	if rate < 1 {
		rate = 1
	}
	gap := sim.TxTime(netem.WireSizeFor(r.p.env.MSS), rate)
	jitter := 0.9 + 0.2*r.p.rng.Float64()
	return sim.Duration(float64(gap) * jitter)
}

func (r *receiver) scheduleCredit() { r.creditTm.Reset(r.creditGap()) }

func (r *receiver) creditTick() {
	if !r.crediting || r.done {
		return
	}
	r.creditSeq++
	r.creditsIn++
	pkt := r.p.env.Pkt()
	pkt.Type = netem.Credit
	pkt.Flow = r.flowID
	pkt.Src = r.f.Dst
	pkt.Dst = r.f.Src
	pkt.Seq = r.creditSeq
	pkt.WireSize = netem.CreditSize
	pkt.Scheduled = true
	pkt.PathID = r.f.PathID
	r.host().Send(pkt)
	r.scheduleCredit()
}

// scheduleFeedback runs the ExpressPass credit feedback control once per
// base RTT: raise the credit rate toward line rate while credit loss stays
// under target, multiplicatively back off otherwise.
func (r *receiver) scheduleFeedback() { r.feedback.Reset(r.p.env.Net.BaseRTT) }

func (r *receiver) feedbackTick() {
	if !r.crediting || r.done {
		return
	}
	// Scheduled data lags the credits that triggered it by one RTT, so
	// this window's arrivals are compared against the previous window's
	// credits.
	if r.prevSent > 0 {
		loss := 1 - float64(r.dataIn)/float64(r.prevSent)
		if loss < 0 {
			loss = 0
		}
		if loss <= r.p.opts.TargetLoss {
			r.rate = (1-r.w)*r.rate + r.w*1.0
			if loss == 0 {
				r.w = (r.w + 0.5) / 2
			}
		} else {
			r.rate = r.rate * (1 - loss) * (1 + r.p.opts.TargetLoss)
			r.w = maxF(r.w/2, 0.01)
			if r.rate < r.p.opts.InitRate/4 {
				r.rate = r.p.opts.InitRate / 4
			}
		}
	}
	r.prevSent, r.creditsIn, r.dataIn = r.creditsIn, 0, 0
	r.scheduleFeedback()
}

// armRTO arms the receiver-driven loss recovery: if the flow is incomplete
// and no data arrived for a full RTO, request the missing segments and
// resume crediting.
func (r *receiver) armRTO() {
	if r.p.opts.RTO > 0 {
		r.rto.Reset(r.p.opts.RTO)
	}
}

func (r *receiver) rtoFire() {
	rto := r.p.opts.RTO
	if r.done {
		return
	}
	if r.p.env.Eng.Now().Sub(r.lastData) >= rto && r.tracker != nil {
		r.f.Timeouts++
		pkt := r.p.env.Pkt()
		pkt.Type = netem.Resend
		pkt.Flow = r.flowID
		pkt.Src = r.f.Dst
		pkt.Dst = r.f.Src
		pkt.WireSize = netem.HeaderSize
		pkt.Scheduled = true
		pkt.PathID = r.f.PathID
		for _, m := range r.tracker.Missing(r.tracker.Seg.NumSegs()) {
			pkt.SegList = append(pkt.SegList, int32(m))
		}
		r.host().Send(pkt)
		r.startCrediting()
	}
	r.armRTO()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AuditInvariants checks every flow's Aeolus state machine for internal
// consistency, returning one error per violation in flow-ID order.
func (p *Protocol) AuditInvariants() []error {
	ids := make([]uint64, 0, len(p.senders))
	for id := range p.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := p.senders[id].pc.Audit(); err != nil {
			errs = append(errs, fmt.Errorf("expresspass: %w", err))
		}
	}
	return errs
}
