package workload

import (
	"math/rand/v2"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// FlowSpec describes one flow to inject: who, how much, when.
type FlowSpec struct {
	ID    uint64
	Src   int
	Dst   int
	Size  int64    // application bytes
	Start sim.Time // injection instant
}

// PoissonConfig drives an open-loop Poisson flow generator over randomly
// chosen sender/receiver pairs, the paper's traffic model (§5.1).
type PoissonConfig struct {
	CDF      *CDF
	Hosts    int      // number of hosts; src/dst drawn uniformly, src ≠ dst
	HostRate sim.Rate // edge link rate
	Load     float64  // target average edge load, fraction of HostRate
	Flows    int      // number of flows to generate
	Seed     uint64
	StartAt  sim.Time // first arrival is offset from this instant
}

// ArrivalRate returns the flow arrival rate (flows per second) that loads
// each host's edge link to cfg.Load on average: every flow consumes
// mean-size bytes of one sender's egress and one receiver's ingress, so
// λ = load · N · rate / (8 · meanSize).
func (cfg *PoissonConfig) ArrivalRate() float64 {
	mean := cfg.CDF.Mean()
	return cfg.Load * float64(cfg.Hosts) * float64(cfg.HostRate) / (8 * mean)
}

// Generate samples the flow trace. It is deterministic in the seed.
func (cfg *PoissonConfig) Generate() []FlowSpec {
	r := rand.New(rand.NewPCG(cfg.Seed, 0xae0105))
	lambda := cfg.ArrivalRate()
	meanGap := sim.Duration(float64(sim.Second) / lambda)
	flows := make([]FlowSpec, 0, cfg.Flows)
	t := cfg.StartAt
	for i := 0; i < cfg.Flows; i++ {
		t = t.Add(sim.Exp(r, meanGap))
		src := r.IntN(cfg.Hosts)
		dst := r.IntN(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, FlowSpec{
			ID:    uint64(i + 1),
			Src:   src,
			Dst:   dst,
			Size:  cfg.CDF.Sample(r),
			Start: t,
		})
	}
	return flows
}

// IncastConfig builds an N-to-1 synchronized incast: N senders each send one
// message of MsgSize bytes to the same receiver, the microbenchmark of
// Figs. 8, 11 and 17 and Table 5.
type IncastConfig struct {
	Fanin    int   // number of senders
	Receiver int   // receiver host ID
	Hosts    int   // total hosts to draw senders from
	MsgSize  int64 // bytes per sender
	Seed     uint64
	StartAt  sim.Time
	// Jitter, when positive, staggers sender start times uniformly in
	// [0, Jitter) to model request fan-out skew.
	Jitter sim.Duration
	// BaseID offsets flow IDs so repeated rounds stay unique.
	BaseID uint64
}

// Generate samples the incast trace: Fanin distinct senders ≠ Receiver.
func (cfg *IncastConfig) Generate() []FlowSpec {
	r := rand.New(rand.NewPCG(cfg.Seed, 0x1ca57))
	// Choose Fanin distinct senders among hosts, excluding the receiver.
	pool := make([]int, 0, cfg.Hosts-1)
	for h := 0; h < cfg.Hosts; h++ {
		if h != cfg.Receiver {
			pool = append(pool, h)
		}
	}
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	// When the fan-in exceeds the host count, senders cycle: a host carries
	// several concurrent messages, as in the paper's 256-to-1 study on a
	// 144-server fabric (Fig. 17).
	flows := make([]FlowSpec, 0, cfg.Fanin)
	for i := 0; i < cfg.Fanin; i++ {
		start := cfg.StartAt
		if cfg.Jitter > 0 {
			start = start.Add(sim.Duration(r.Int64N(int64(cfg.Jitter))))
		}
		flows = append(flows, FlowSpec{
			ID:    cfg.BaseID + uint64(i+1),
			Src:   pool[i%len(pool)],
			Dst:   cfg.Receiver,
			Size:  cfg.MsgSize,
			Start: start,
		})
	}
	return flows
}

// Merge combines traces and re-sorts by start time, keeping IDs unique by
// construction of the inputs.
func Merge(traces ...[]FlowSpec) []FlowSpec {
	var all []FlowSpec
	for _, t := range traces {
		all = append(all, t...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}
