package workload

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseCDFRoundTripsBuiltins(t *testing.T) {
	for _, wl := range All {
		got, err := ParseCDF(wl.Name(), strings.NewReader(wl.Text()))
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", wl.Name(), err)
		}
		if len(got.points) != len(wl.points) {
			t.Fatalf("%s: %d points after round trip, want %d", wl.Name(), len(got.points), len(wl.points))
		}
		for i := range got.points {
			if got.points[i] != wl.points[i] {
				t.Fatalf("%s: point %d = %+v, want %+v", wl.Name(), i, got.points[i], wl.points[i])
			}
		}
	}
}

func TestParseCDFRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{"empty", "", "at least 2"},
		{"comment only", "# nothing\n", "at least 2"},
		{"one field", "100\n1000 1\n", "fields"},
		{"three fields", "100 0 7\n1000 1\n", "fields"},
		{"unparsable size", "abc 0\n1000 1\n", "bad size"},
		{"unparsable prob", "100 x\n1000 1\n", "bad probability"},
		{"zero size", "0 0\n1000 1\n", "positive"},
		{"negative size", "-5 0\n1000 1\n", "positive"},
		{"nan size", "NaN 0\n1000 1\n", "positive finite"},
		{"inf size", "+Inf 0\n1000 1\n", "positive finite"},
		{"prob above one", "100 0\n1000 1.5\n", "[0,1]"},
		{"negative prob", "100 -0.1\n1000 1\n", "[0,1]"},
		{"nan prob", "100 NaN\n1000 1\n", "[0,1]"},
		{"non-monotone size", "100 0\n50 0.5\n1000 1\n", "strictly increasing"},
		{"repeated size", "100 0\n100 0.5\n1000 1\n", "strictly increasing"},
		{"non-monotone prob", "100 0\n500 0.8\n700 0.4\n1000 1\n", "non-decreasing"},
		{"no zero start", "100 0.2\n1000 1\n", "probability 0"},
		{"no one end", "100 0\n1000 0.9\n", "probability 1"},
	}
	for _, tt := range tests {
		_, err := ParseCDF(tt.name, strings.NewReader(tt.text))
		if err == nil {
			t.Errorf("%s: ParseCDF accepted malformed input", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
}

func TestParseCDFCommentsAndBlanks(t *testing.T) {
	text := "# header\n\n  100 0  # inline comment\n\t1000 0.5\n2000 1\n"
	c, err := ParseCDF("commented", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.points) != 3 || c.points[1].Prob != 0.5 {
		t.Fatalf("parsed %+v", c.points)
	}
}

func TestLoadCDFAndResolve(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.cdf")
	if err := os.WriteFile(path, []byte(WebSearch.Text()), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "custom" {
		t.Fatalf("loaded name %q, want custom (base name sans extension)", c.Name())
	}
	if got, want := c.Mean(), WebSearch.Mean(); got != want {
		t.Fatalf("loaded mean %v, want %v", got, want)
	}

	if r, err := Resolve("WebSearch"); err != nil || r != WebSearch {
		t.Fatalf("Resolve(WebSearch) = %v, %v", r, err)
	}
	if r, err := Resolve(path); err != nil || r.Name() != "custom" {
		t.Fatalf("Resolve(path) = %v, %v", r, err)
	}
	if _, err := Resolve("no-such-workload"); err == nil {
		t.Fatal("Resolve of unknown name should fail")
	}
}

// FuzzCDFParse feeds arbitrary bytes through the text parser. The contract:
// malformed input returns an error — never a panic — and accepted input
// yields a CDF whose sampling invariants hold and whose Text() form parses
// back to the same distribution.
func FuzzCDFParse(f *testing.F) {
	for _, wl := range All {
		f.Add([]byte(wl.Text()))
	}
	f.Add([]byte("100 0\n1e6 1\n"))
	f.Add([]byte("100 0\n500 0.5\n500 0.7\n1e6 1\n"))
	f.Add([]byte("0 0\n-3 1\n"))
	f.Add([]byte("NaN NaN\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("9e307 0\n1e308 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCDF("fuzz", strings.NewReader(string(data)))
		if err != nil {
			return
		}
		// Accepted input: the distribution must be usable.
		r := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < 16; i++ {
			if s := c.Sample(r); s < 1 {
				t.Fatalf("Sample returned %d < 1", s)
			}
		}
		prev := c.Quantile(0)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			q := c.Quantile(p)
			if q < prev {
				t.Fatalf("Quantile not monotone: Quantile(%v)=%v < %v", p, q, prev)
			}
			prev = q
		}
		// Round trip: Text must reproduce the exact distribution.
		c2, err := ParseCDF("fuzz", strings.NewReader(c.Text()))
		if err != nil {
			t.Fatalf("Text() of accepted CDF failed to reparse: %v", err)
		}
		if len(c2.points) != len(c.points) {
			t.Fatalf("round trip changed point count %d -> %d", len(c.points), len(c2.points))
		}
		for i := range c.points {
			if c.points[i] != c2.points[i] {
				t.Fatalf("round trip changed point %d: %+v -> %+v", i, c.points[i], c2.points[i])
			}
		}
	})
}
