// Package workload reconstructs the paper's traffic: empirical flow-size
// distributions for the four production workloads of Table 2 (Web Server,
// Cache Follower, Web Search, Data Mining), open-loop Poisson flow
// generation at a target load, and synchronized incast generation.
//
// Web Search and Data Mining use the published DCTCP and VL2 distributions.
// The two Facebook workloads (Web Server, Cache Follower) have no published
// CDF files, so piecewise log-linear CDFs are reconstructed and calibrated
// against Table 2 of the Aeolus paper: the three size-bucket fractions
// (0–100 KB, 100 KB–1 MB, >1 MB) and the average flow size. The calibration
// is enforced by tests in this package.
package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Point is one point of an empirical CDF: P(size ≤ Bytes) = Prob.
type Point struct {
	Bytes float64
	Prob  float64
}

// CDF is an empirical flow-size distribution with linear interpolation
// between points. It samples by inverse transform, so quantiles are exact.
type CDF struct {
	name   string
	points []Point
}

// NewCDF validates and builds a distribution. Points must be strictly
// increasing in both size and probability, start at probability 0 and end at
// probability 1.
func NewCDF(name string, points []Point) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs at least 2 points", name)
	}
	if points[0].Prob != 0 {
		return nil, fmt.Errorf("workload: CDF %q must start at probability 0", name)
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at probability 1", name)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes <= points[i-1].Bytes || points[i].Prob < points[i-1].Prob {
			return nil, fmt.Errorf("workload: CDF %q not monotone at point %d", name, i)
		}
	}
	return &CDF{name: name, points: points}, nil
}

// MustCDF is NewCDF for package-level distributions; it panics on error.
func MustCDF(name string, points []Point) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the workload name.
func (c *CDF) Name() string { return c.name }

// Points returns a copy of the distribution's points — the serializable form
// scenario files embed when a workload is not one of the built-ins.
func (c *CDF) Points() []Point {
	out := make([]Point, len(c.points))
	copy(out, c.points)
	return out
}

// Mean returns the analytic mean flow size in bytes (piecewise-linear
// integration of the inverse CDF).
func (c *CDF) Mean() float64 {
	var m float64
	for i := 1; i < len(c.points); i++ {
		a, b := c.points[i-1], c.points[i]
		m += (a.Bytes + b.Bytes) / 2 * (b.Prob - a.Prob)
	}
	return m
}

// Quantile returns the flow size at cumulative probability p ∈ [0,1].
func (c *CDF) Quantile(p float64) float64 {
	if p <= 0 {
		return c.points[0].Bytes
	}
	if p >= 1 {
		return c.points[len(c.points)-1].Bytes
	}
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= p })
	a, b := c.points[i-1], c.points[i]
	if b.Prob == a.Prob {
		return b.Bytes
	}
	frac := (p - a.Prob) / (b.Prob - a.Prob)
	return a.Bytes + frac*(b.Bytes-a.Bytes)
}

// Fraction returns P(size ≤ bytes).
func (c *CDF) Fraction(bytes float64) float64 {
	if bytes <= c.points[0].Bytes {
		return c.points[0].Prob
	}
	last := c.points[len(c.points)-1]
	if bytes >= last.Bytes {
		return 1
	}
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Bytes >= bytes })
	a, b := c.points[i-1], c.points[i]
	frac := (bytes - a.Bytes) / (b.Bytes - a.Bytes)
	return a.Prob + frac*(b.Prob-a.Prob)
}

// Sample draws one flow size in bytes (at least 1).
func (c *CDF) Sample(r *rand.Rand) int64 {
	s := int64(c.Quantile(r.Float64()))
	if s < 1 {
		s = 1
	}
	return s
}

// The four production workloads of Table 2.
var (
	// WebServer reconstructs the Facebook Web Server distribution [Roy et
	// al., SIGCOMM'15]: 81% of flows ≤100 KB, none >1 MB, mean ≈64 KB.
	WebServer = MustCDF("WebServer", []Point{
		{100, 0}, {1e3, 0.20}, {3e3, 0.35}, {8e3, 0.47}, {20e3, 0.58},
		{50e3, 0.72}, {100e3, 0.81}, {250e3, 0.94}, {600e3, 0.985}, {1e6, 1},
	})

	// CacheFollower reconstructs the Facebook Cache Follower distribution
	// [Roy et al.]: 53% ≤100 KB, 29% >1 MB, mean ≈701 KB.
	CacheFollower = MustCDF("CacheFollower", []Point{
		{100, 0}, {1e3, 0.10}, {5e3, 0.25}, {15e3, 0.38}, {40e3, 0.47},
		{100e3, 0.53}, {300e3, 0.62}, {700e3, 0.69}, {1e6, 0.71},
		{2e6, 0.88}, {3.5e6, 0.97}, {6e6, 1},
	})

	// WebSearch is the DCTCP web-search distribution [Alizadeh et al.,
	// SIGCOMM'10]: 52% ≤100 KB, mean ≈1.6 MB.
	WebSearch = MustCDF("WebSearch", []Point{
		{1e3, 0}, {5e3, 0.10}, {10e3, 0.19}, {20e3, 0.33}, {50e3, 0.45},
		{100e3, 0.52}, {250e3, 0.60}, {500e3, 0.66}, {1e6, 0.70},
		{2e6, 0.78}, {4e6, 0.90}, {10e6, 0.96}, {20e6, 1},
	})

	// DataMining is the VL2 data-mining distribution [Greenberg et al.,
	// SIGCOMM'09]: 83% ≤100 KB but >90% of bytes in >1 MB flows, mean
	// ≈7.41 MB.
	DataMining = MustCDF("DataMining", []Point{
		{100, 0}, {180, 0.10}, {250, 0.20}, {560, 0.30}, {900, 0.40},
		{1100, 0.50}, {1870, 0.60}, {3160, 0.70}, {10e3, 0.80},
		{400e3, 0.90}, {3.16e6, 0.95}, {50e6, 0.98}, {600e6, 1},
	})

	// All lists the four workloads in the paper's presentation order.
	All = []*CDF{WebServer, CacheFollower, WebSearch, DataMining}
)

// ByName returns the workload with the given name, or nil.
func ByName(name string) *CDF {
	for _, c := range All {
		if c.name == name {
			return c
		}
	}
	return nil
}
