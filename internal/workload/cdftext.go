package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file implements the plain-text CDF exchange format used by the
// public Homa/HPCC/NDP simulator distributions, so custom workloads can be
// dropped in as files next to the four built-in ones:
//
//	# optional comments
//	<size_bytes> <cumulative_probability>
//	...
//
// Sizes must be strictly increasing positive numbers; probabilities must be
// non-decreasing, starting at 0 and ending at 1. The parser rejects
// malformed input with an error — it never panics — which the package fuzz
// test enforces.

// ParseCDF reads the text format from r and builds a validated CDF named
// name. It returns an error (with a line number) for malformed lines,
// non-finite or non-positive sizes, out-of-range probabilities, and any
// non-monotone sequence.
func ParseCDF(name string, r io.Reader) (*CDF, error) {
	var points []Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: %s:%d: want \"<bytes> <prob>\", got %d fields", name, lineNo, len(fields))
		}
		bytes, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad size %q: %v", name, lineNo, fields[0], err)
		}
		prob, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad probability %q: %v", name, lineNo, fields[1], err)
		}
		if !isFinite(bytes) || bytes <= 0 {
			return nil, fmt.Errorf("workload: %s:%d: size must be a positive finite number, got %v", name, lineNo, bytes)
		}
		if !isFinite(prob) || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("workload: %s:%d: probability must be in [0,1], got %v", name, lineNo, prob)
		}
		if n := len(points); n > 0 {
			if bytes <= points[n-1].Bytes {
				return nil, fmt.Errorf("workload: %s:%d: sizes must be strictly increasing (%v after %v)", name, lineNo, bytes, points[n-1].Bytes)
			}
			if prob < points[n-1].Prob {
				return nil, fmt.Errorf("workload: %s:%d: percentiles must be non-decreasing (%v after %v)", name, lineNo, prob, points[n-1].Prob)
			}
		}
		points = append(points, Point{Bytes: bytes, Prob: prob})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %s: %v", name, err)
	}
	return NewCDF(name, points)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// LoadCDF reads a CDF file; the workload takes its name from the file's
// base name without extension.
func LoadCDF(path string) (*CDF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ParseCDF(name, f)
}

// Text marshals the CDF into the text format ParseCDF reads; the round trip
// is lossless (sizes and probabilities keep full float64 precision).
func (c *CDF) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: %d points, mean %.0f bytes\n", c.name, len(c.points), c.Mean())
	for _, p := range c.points {
		sb.WriteString(strconv.FormatFloat(p.Bytes, 'g', -1, 64))
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(p.Prob, 'g', -1, 64))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Resolve returns the named built-in workload, or — when name is not a
// built-in — loads it as a CDF file path. This is what the CLIs pass
// -workload values through.
func Resolve(name string) (*CDF, error) {
	if c := ByName(name); c != nil {
		return c, nil
	}
	if _, err := os.Stat(name); err == nil {
		return LoadCDF(name)
	}
	names := make([]string, len(All))
	for i, c := range All {
		names[i] = c.name
	}
	return nil, fmt.Errorf("workload: %q is neither a built-in (%s) nor a CDF file", name, strings.Join(names, ", "))
}
