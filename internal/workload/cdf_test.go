package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func TestNewCDFValidation(t *testing.T) {
	tests := []struct {
		name   string
		points []Point
		ok     bool
	}{
		{"valid", []Point{{1, 0}, {10, 1}}, true},
		{"too short", []Point{{1, 0}}, false},
		{"no zero start", []Point{{1, 0.1}, {10, 1}}, false},
		{"no one end", []Point{{1, 0}, {10, 0.9}}, false},
		{"non-monotone size", []Point{{10, 0}, {5, 0.5}, {20, 1}}, false},
		{"decreasing prob", []Point{{1, 0}, {5, 0.8}, {10, 0.5}, {20, 1}}, false},
	}
	for _, tt := range tests {
		_, err := NewCDF(tt.name, tt.points)
		if (err == nil) != tt.ok {
			t.Errorf("%s: err = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

// TestTable2Calibration pins the reconstructed distributions to Table 2 of
// the paper: bucket fractions within 2 points, mean within 10%.
func TestTable2Calibration(t *testing.T) {
	tests := []struct {
		cdf        *CDF
		small      float64 // P(≤100KB)
		mid        float64 // P(100KB..1MB)
		large      float64 // P(>1MB)
		mean       float64
		largeSlack float64
	}{
		{WebServer, 0.81, 0.19, 0.00, 64e3, 0.02},
		{CacheFollower, 0.53, 0.18, 0.29, 701e3, 0.02},
		// Paper's Web Search row sums to 90% (52/18/20); we normalize the
		// remainder into the >1MB bucket and allow extra slack there.
		{WebSearch, 0.52, 0.18, 0.30, 1.6e6, 0.11},
		{DataMining, 0.83, 0.08, 0.09, 7.41e6, 0.02},
	}
	for _, tt := range tests {
		name := tt.cdf.Name()
		small := tt.cdf.Fraction(100e3)
		mid := tt.cdf.Fraction(1e6) - small
		large := 1 - tt.cdf.Fraction(1e6)
		if math.Abs(small-tt.small) > 0.02 {
			t.Errorf("%s: P(≤100KB) = %.3f, want %.2f±0.02", name, small, tt.small)
		}
		if math.Abs(mid-tt.mid) > 0.02 {
			t.Errorf("%s: P(100KB..1MB) = %.3f, want %.2f±0.02", name, mid, tt.mid)
		}
		if math.Abs(large-tt.large) > tt.largeSlack {
			t.Errorf("%s: P(>1MB) = %.3f, want %.2f±%.2f", name, large, tt.large, tt.largeSlack)
		}
		if m := tt.cdf.Mean(); math.Abs(m-tt.mean) > 0.10*tt.mean {
			t.Errorf("%s: mean = %.0f, want %.0f±10%%", name, m, tt.mean)
		}
	}
}

func TestQuantileFractionInverse(t *testing.T) {
	for _, c := range All {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			size := c.Quantile(p)
			back := c.Fraction(size)
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("%s: Fraction(Quantile(%v)) = %v", c.Name(), p, back)
			}
		}
		if c.Quantile(0) != c.points[0].Bytes || c.Quantile(1) != c.points[len(c.points)-1].Bytes {
			t.Errorf("%s: quantile endpoints wrong", c.Name())
		}
	}
}

// Property: Quantile is monotone non-decreasing for every workload.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		for _, c := range All {
			if c.Quantile(pa) > c.Quantile(pb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMeanMatchesAnalytic(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 7))
	for _, c := range All {
		var sum float64
		const n = 300000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		got := sum / n
		want := c.Mean()
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("%s: empirical mean %.0f, analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("WebSearch") != WebSearch {
		t.Fatal("ByName(WebSearch) failed")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestPoissonGenerator(t *testing.T) {
	cfg := PoissonConfig{
		CDF: WebServer, Hosts: 16, HostRate: 10 * sim.Gbps,
		Load: 0.4, Flows: 20000, Seed: 1,
	}
	flows := cfg.Generate()
	if len(flows) != cfg.Flows {
		t.Fatalf("generated %d flows, want %d", len(flows), cfg.Flows)
	}
	var bytes float64
	var last sim.Time
	for i, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("flow %d: src == dst == %d", i, f.Src)
		}
		if f.Src < 0 || f.Src >= 16 || f.Dst < 0 || f.Dst >= 16 {
			t.Fatalf("flow %d: endpoint out of range", i)
		}
		if f.Start < last {
			t.Fatalf("flow %d: arrivals not ordered", i)
		}
		if f.Size < 1 {
			t.Fatalf("flow %d: size %d", i, f.Size)
		}
		last = f.Start
		bytes += float64(f.Size)
	}
	// Offered load over the generation span should be close to target.
	span := flows[len(flows)-1].Start.Seconds()
	offered := bytes * 8 / span / float64(16*10*sim.Gbps)
	if math.Abs(offered-0.4) > 0.05 {
		t.Fatalf("offered edge load = %.3f, want 0.40±0.05", offered)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	cfg := PoissonConfig{CDF: WebSearch, Hosts: 8, HostRate: 100 * sim.Gbps, Load: 0.5, Flows: 100, Seed: 9}
	a, b := cfg.Generate(), cfg.Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed traces diverge at flow %d", i)
		}
	}
	cfg.Seed = 10
	c := cfg.Generate()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestIncastGenerator(t *testing.T) {
	cfg := IncastConfig{Fanin: 7, Receiver: 3, Hosts: 8, MsgSize: 30e3, Seed: 2, StartAt: sim.Time(sim.Millisecond)}
	flows := cfg.Generate()
	if len(flows) != 7 {
		t.Fatalf("generated %d senders, want 7", len(flows))
	}
	seen := map[int]bool{}
	for _, f := range flows {
		if f.Dst != 3 {
			t.Fatalf("flow to %d, want receiver 3", f.Dst)
		}
		if f.Src == 3 {
			t.Fatal("receiver chosen as sender")
		}
		if seen[f.Src] {
			t.Fatalf("sender %d repeated", f.Src)
		}
		seen[f.Src] = true
		if f.Size != 30e3 || f.Start != cfg.StartAt {
			t.Fatalf("bad spec %+v", f)
		}
	}
}

func TestIncastFaninBeyondHostsCycles(t *testing.T) {
	cfg := IncastConfig{Fanin: 50, Receiver: 0, Hosts: 8, MsgSize: 1000, Seed: 3}
	flows := cfg.Generate()
	if len(flows) != 50 {
		t.Fatalf("fanin beyond hosts gave %d flows, want 50", len(flows))
	}
	perHost := map[int]int{}
	for _, f := range flows {
		if f.Src == 0 {
			t.Fatal("receiver chosen as sender")
		}
		perHost[f.Src]++
	}
	if len(perHost) != 7 {
		t.Fatalf("used %d distinct senders, want all 7", len(perHost))
	}
	for h, n := range perHost {
		if n < 7 || n > 8 {
			t.Fatalf("host %d carries %d flows, want 7-8 (even cycling)", h, n)
		}
	}
}

func TestIncastJitter(t *testing.T) {
	cfg := IncastConfig{Fanin: 20, Receiver: 0, Hosts: 64, MsgSize: 1000, Seed: 4,
		StartAt: sim.Time(sim.Millisecond), Jitter: 10 * sim.Microsecond}
	distinct := map[sim.Time]bool{}
	for _, f := range cfg.Generate() {
		if f.Start < cfg.StartAt || f.Start >= cfg.StartAt.Add(cfg.Jitter) {
			t.Fatalf("start %v outside jitter window", f.Start)
		}
		distinct[f.Start] = true
	}
	if len(distinct) < 2 {
		t.Fatal("jitter produced identical starts")
	}
}

func TestMerge(t *testing.T) {
	a := []FlowSpec{{ID: 1, Start: 100}, {ID: 2, Start: 300}}
	b := []FlowSpec{{ID: 10, Start: 200}}
	m := Merge(a, b)
	if len(m) != 3 || m[0].ID != 1 || m[1].ID != 10 || m[2].ID != 2 {
		t.Fatalf("merge order wrong: %+v", m)
	}
}
