package scheme

import (
	"fmt"
	"strconv"
	"time"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// Typed parsers for -opt key=value pass-through values. Each error names the
// offending key so Build failures read like flag errors.

// OptInt parses an integer option value.
func OptInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("option %s: %q is not an integer", key, val)
	}
	return n, nil
}

// OptInt64 parses a 64-bit integer option value (byte counts, thresholds).
func OptInt64(key, val string) (int64, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("option %s: %q is not an integer", key, val)
	}
	return n, nil
}

// OptFloat parses a float option value.
func OptFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("option %s: %q is not a number", key, val)
	}
	return f, nil
}

// OptBool parses a boolean option value.
func OptBool(key, val string) (bool, error) {
	b, err := strconv.ParseBool(val)
	if err != nil {
		return false, fmt.Errorf("option %s: %q is not a boolean", key, val)
	}
	return b, nil
}

// OptDuration parses a Go-syntax duration ("20us", "10ms") into simulated
// time.
func OptDuration(key, val string) (sim.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("option %s: %q is not a duration (try 20us, 10ms)", key, val)
	}
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond, nil
}
