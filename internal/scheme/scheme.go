// Package scheme is the self-registering catalogue of transport schemes.
//
// A scheme is one transport configuration under test — "xpass+aeolus",
// "homa-eager" — pairing a fabric discipline with a protocol constructor.
// Transport packages register their schemes from init: a Family describes
// the base transport (default options, fabric, constructor) and each Variant
// decorates it with an options mutator and/or a qdisc wrapper. Nothing in
// this package knows any transport by name; adding a transport or a variant
// is a registration, not a switch arm.
//
// Consumers resolve schemes with Build, enumerate them with Entries/IDs, and
// print the catalogue with Catalog. The experiments harness and both CLIs
// sit on top of exactly that surface.
package scheme

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Spec selects and parameterizes a scheme by ID.
type Spec struct {
	ID        string        // see Entries() for the catalogue
	Workload  *workload.CDF // Homa unscheduled priority cutoffs
	RTO       sim.Duration  // 0 keeps the scheme's paper default
	Threshold int64         // selective dropping threshold; 0 = paper default
	Seed      uint64

	// Opts carries generic -opt key=value pass-through options, applied to
	// the scheme's typed option struct after the variant mutator runs (so an
	// explicit option overrides a variant default). Keys are applied in
	// sorted order; unknown keys are a Build error listing the valid set.
	Opts map[string]string
}

// ThresholdOr returns the spec's selective-dropping threshold, or def when
// the spec leaves it at the paper default.
func (s Spec) ThresholdOr(def int64) int64 {
	if s.Threshold > 0 {
		return s.Threshold
	}
	return def
}

// Scheme is a buildable transport configuration: a display name, the fabric
// discipline it programs, the MSS it uses, and its protocol constructor.
type Scheme struct {
	Name    string
	MSS     int
	Factory func(buffer int64) netem.QdiscFactory
	New     func(env *transport.Env) transport.Protocol
}

// Entry is one catalogue row: a scheme ID, its one-line summary, and the
// builder resolving a Spec into a Scheme.
type Entry struct {
	ID      string
	Summary string
	Build   func(Spec) (Scheme, error)
}

var (
	registry = map[string]Entry{}
	order    []string // registration order, for catalogue printing
)

// Register adds an entry to the catalogue. It panics on empty or duplicate
// IDs and nil builders: registration runs from transport-package init, so a
// malformed catalogue is a programming error, not a runtime condition.
func Register(e Entry) {
	switch {
	case e.ID == "":
		panic("scheme: Register with empty ID")
	case e.Build == nil:
		panic("scheme: Register " + e.ID + " with nil builder")
	}
	if _, dup := registry[e.ID]; dup {
		panic("scheme: duplicate registration of " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Build resolves a spec against the registry and builds the scheme. An
// unknown ID returns an error carrying the full catalogue, so callers can
// surface it to users verbatim.
func Build(spec Spec) (Scheme, error) {
	e, ok := registry[spec.ID]
	if !ok {
		return Scheme{}, fmt.Errorf("unknown scheme %q; available schemes:\n%s", spec.ID, Catalog())
	}
	return e.Build(spec)
}

// Lookup returns the catalogue entry for an ID.
func Lookup(id string) (Entry, bool) {
	e, ok := registry[id]
	return e, ok
}

// Entries returns the catalogue in registration order (transport packages
// initialize in import-path order, so the listing is stable).
func Entries() []Entry {
	out := make([]Entry, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns every catalogued scheme ID, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Catalog renders the catalogue as an aligned two-column listing.
func Catalog() string {
	var sb strings.Builder
	for _, e := range Entries() {
		fmt.Fprintf(&sb, "  %-14s %s\n", e.ID, e.Summary)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Family describes a base transport for registration: its default options,
// fabric discipline and protocol constructor, parameterized by the typed
// options struct O of the transport package.
type Family[O any] struct {
	// Base is the base scheme ID, e.g. "xpass".
	Base string

	// MSS is the payload size every scheme of the family uses.
	MSS int

	// Defaults derives the base options from a spec (seed, RTO override,
	// workload — everything shared by all variants).
	Defaults func(spec Spec) O

	// Apply sets one -opt key on the options; it returns an error naming
	// the valid keys for unknown ones. Nil disables option pass-through.
	Apply func(o *O, key, value string) error

	// Protocol constructs the transport over the final options.
	Protocol func(env *transport.Env, o O) transport.Protocol

	// Qdisc is the family's base fabric discipline.
	Qdisc func(o O, buffer int64) netem.QdiscFactory
}

// Variant decorates a Family: the registered scheme ID is Base+Suffix, the
// options are Defaults → Mutate → Opts, and the fabric is either the
// family's base Qdisc or the variant's override. This is the composition
// that replaces per-variant switch arms.
type Variant[O any] struct {
	Suffix  string // "" registers the base scheme itself
	Summary string

	// Name renders the display name from the final options (names may
	// embed parameters, e.g. the RTO of the priority-queueing baseline).
	Name func(o O) string

	// Mutate is the variant's options decorator; nil keeps the defaults.
	Mutate func(o *O, spec Spec)

	// Qdisc overrides the family fabric; nil keeps Family.Qdisc.
	Qdisc func(o O, buffer int64) netem.QdiscFactory
}

// Register registers every variant of the family, each as one catalogue
// entry composing the family defaults with the variant's decorators.
func (f Family[O]) Register(variants ...Variant[O]) {
	for _, v := range variants {
		v := v
		Register(Entry{
			ID:      f.Base + v.Suffix,
			Summary: v.Summary,
			Build: func(spec Spec) (Scheme, error) {
				o := f.Defaults(spec)
				if v.Mutate != nil {
					v.Mutate(&o, spec)
				}
				if err := applyOpts(&o, spec, f.Apply); err != nil {
					return Scheme{}, fmt.Errorf("scheme %s: %w", f.Base+v.Suffix, err)
				}
				qd := f.Qdisc
				if v.Qdisc != nil {
					qd = v.Qdisc
				}
				return Scheme{
					Name: v.Name(o),
					MSS:  f.MSS,
					Factory: func(buffer int64) netem.QdiscFactory {
						return qd(o, buffer)
					},
					New: func(env *transport.Env) transport.Protocol {
						return f.Protocol(env, o)
					},
				}, nil
			},
		})
	}
}

// applyOpts applies the generic key=value options in sorted key order.
func applyOpts[O any](o *O, spec Spec, apply func(*O, string, string) error) error {
	if len(spec.Opts) == 0 {
		return nil
	}
	if apply == nil {
		return fmt.Errorf("scheme takes no -opt options")
	}
	keys := make([]string, 0, len(spec.Opts))
	for k := range spec.Opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := apply(o, k, spec.Opts[k]); err != nil {
			return err
		}
	}
	return nil
}
