package scheme_test

import (
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scheme"
	"github.com/aeolus-transport/aeolus/internal/sim"

	// Populate the registry under test exactly the way consumers do.
	_ "github.com/aeolus-transport/aeolus/internal/transport/expresspass"
	_ "github.com/aeolus-transport/aeolus/internal/transport/homa"
	_ "github.com/aeolus-transport/aeolus/internal/transport/ndp"
)

// paperSchemes are the ten configurations of the paper's evaluation; the
// registry must always cover them.
var paperSchemes = []string{
	"xpass", "xpass+aeolus", "xpass+oracle", "xpass+prio",
	"homa", "homa+aeolus", "homa+oracle", "homa-eager",
	"ndp", "ndp+aeolus",
}

// TestRegistryComplete asserts every catalogued ID builds into a usable
// scheme: non-empty display name, positive MSS, live qdisc factory and
// protocol constructor.
func TestRegistryComplete(t *testing.T) {
	entries := scheme.Entries()
	if len(entries) == 0 {
		t.Fatal("empty registry: transport packages did not register")
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.ID] = true
		if e.Summary == "" {
			t.Errorf("%s: empty summary", e.ID)
		}
		s, err := e.Build(scheme.Spec{ID: e.ID, Seed: 1})
		if err != nil {
			t.Errorf("%s: build: %v", e.ID, err)
			continue
		}
		if s.Name == "" {
			t.Errorf("%s: empty display name", e.ID)
		}
		if s.MSS <= 0 {
			t.Errorf("%s: MSS %d", e.ID, s.MSS)
		}
		if s.Factory == nil || s.New == nil {
			t.Errorf("%s: nil factory or constructor", e.ID)
			continue
		}
		if qf := s.Factory(netem.DefaultBuffer); qf == nil {
			t.Errorf("%s: Factory returned nil QdiscFactory", e.ID)
		} else if q := qf(netem.SwitchToHost, 100*sim.Gbps); q == nil {
			t.Errorf("%s: QdiscFactory built nil qdisc", e.ID)
		}
	}
	for _, id := range paperSchemes {
		if !seen[id] {
			t.Errorf("paper scheme %s missing from registry", id)
		}
	}
}

// TestBuildUnknownCarriesCatalogue asserts the error for an unknown ID
// embeds the printable catalogue.
func TestBuildUnknownCarriesCatalogue(t *testing.T) {
	_, err := scheme.Build(scheme.Spec{ID: "nope"})
	if err == nil {
		t.Fatal("unknown ID did not error")
	}
	for _, id := range paperSchemes {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error missing catalogue entry %s: %v", id, err)
		}
	}
}

// TestOptsPassThrough exercises the generic -opt plumbing: valid keys
// apply silently, bad values and unknown keys surface as Build errors
// naming the key.
func TestOptsPassThrough(t *testing.T) {
	if _, err := scheme.Build(scheme.Spec{ID: "xpass",
		Opts: map[string]string{"initrate": "0.25", "targetloss": "0.1"}}); err != nil {
		t.Errorf("valid opts rejected: %v", err)
	}
	if _, err := scheme.Build(scheme.Spec{ID: "homa",
		Opts: map[string]string{"overcommit": "4", "spray": "false"}}); err != nil {
		t.Errorf("valid opts rejected: %v", err)
	}
	if _, err := scheme.Build(scheme.Spec{ID: "ndp",
		Opts: map[string]string{"trimpkts": "twelve"}}); err == nil {
		t.Error("bad value accepted")
	} else if !strings.Contains(err.Error(), "trimpkts") {
		t.Errorf("error does not name the key: %v", err)
	}
	if _, err := scheme.Build(scheme.Spec{ID: "xpass",
		Opts: map[string]string{"warp": "9"}}); err == nil {
		t.Error("unknown key accepted")
	}
}

// TestLookupAndIDs covers the enumeration surface the CLIs sit on.
func TestLookupAndIDs(t *testing.T) {
	if _, ok := scheme.Lookup("xpass"); !ok {
		t.Error("Lookup(xpass) missed")
	}
	if _, ok := scheme.Lookup("nope"); ok {
		t.Error("Lookup(nope) hit")
	}
	ids := scheme.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
	if cat := scheme.Catalog(); !strings.Contains(cat, "xpass+aeolus") {
		t.Errorf("catalogue missing entries:\n%s", cat)
	}
}
