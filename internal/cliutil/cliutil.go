// Package cliutil holds the flag-loading and validation plumbing shared by
// the simulator CLIs (cmd/aeolussim, cmd/aeolusbench, cmd/aeolusscale): the
// scheduler/timeline/workload flag values all parse the same way everywhere,
// and a bad value always means "print the error and exit 2" — the
// flag-mistake status — not a panic mid-run.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Die reports a flag-level error and exits with the usage status.
func Die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// StartProfiles starts the -cpuprofile/-memprofile pair shared by the
// simulator CLIs and returns the stop function callers must defer (and also
// invoke explicitly before os.Exit, which skips defers): it stops the CPU
// profile and writes the allocation profile after a settling GC, so `go tool
// pprof` shows live retained state rather than a garbage snapshot. Empty
// paths are no-ops; the stop function is idempotent.
func StartProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			Die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Die(fmt.Errorf("cliutil: start CPU profile: %w", err))
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			Die(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			Die(fmt.Errorf("cliutil: write heap profile: %w", err))
		}
	}
}

// Scheduler parses a -sched value. The empty string stays empty — the
// harness (and a scenario) may still pick the scheduler — so an explicit
// -sched is distinguishable from the default.
func Scheduler(s string) sim.SchedulerKind {
	if s == "" {
		return ""
	}
	kind, err := sim.ParseScheduler(s)
	if err != nil {
		Die(err)
	}
	return kind
}

// Timeline loads the -impair/-impair-file pair (inline ';'-separated steps
// and/or a text or JSON file), nil when both are empty.
func Timeline(inline, file string) *netem.Timeline {
	tl, err := netem.LoadTimeline(inline, file)
	if err != nil {
		Die(err)
	}
	return tl
}

// Workload resolves a -workload value — a built-in name or a CDF file path —
// with "" meaning no Poisson workload.
func Workload(name string) *workload.CDF {
	if name == "" {
		return nil
	}
	wl, err := workload.Resolve(name)
	if err != nil {
		Die(err)
	}
	return wl
}

// Topo validates a -topo value against the catalogue and the clos: grammar.
func Topo(name string) {
	if _, err := experiments.ResolveTopo(name); err != nil {
		Die(err)
	}
}

// Catalogues handles the -list-schemes/-list-topos flags, reporting whether
// it printed (and the caller should exit).
func Catalogues(schemes, topos bool) bool {
	if schemes {
		fmt.Println(experiments.SchemeCatalog())
	}
	if topos {
		fmt.Println(experiments.TopoCatalog())
	}
	return schemes || topos
}

// LoadScenario reads a scenario file (JSON or canonical text) and runs the
// full semantic validation — topology, scheme and options, impairment
// targets — so every error a flag-driven run would hit up front is reported
// here too.
func LoadScenario(path string) *scenario.Scenario {
	sc, err := scenario.Load(path)
	if err != nil {
		Die(err)
	}
	if err := experiments.CheckScenario(sc); err != nil {
		Die(err)
	}
	return sc
}
