package cliutil

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

func TestSchedulerValues(t *testing.T) {
	if got := Scheduler(""); got != "" {
		t.Errorf("Scheduler(\"\") = %q, want empty (harness decides)", got)
	}
	if got := Scheduler("wheel"); got != sim.SchedWheel {
		t.Errorf("Scheduler(wheel) = %q", got)
	}
	if got := Scheduler("heap"); got != sim.SchedHeap {
		t.Errorf("Scheduler(heap) = %q", got)
	}
}

func TestTimelineLoading(t *testing.T) {
	if tl := Timeline("", ""); tl != nil {
		t.Fatalf("empty flags produced timeline %+v", tl)
	}
	tl := Timeline("0s * loss rate=0.5; 1ms * restore", "")
	if tl == nil || len(tl.Steps) != 2 {
		t.Fatalf("inline timeline parsed to %+v, want 2 steps", tl)
	}
	path := filepath.Join(t.TempDir(), "chaos.tl")
	if err := os.WriteFile(path, []byte("2ms * ge p=0.01 r=0.2 good=0 bad=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl = Timeline("", path)
	if tl == nil || len(tl.Steps) != 1 || tl.Steps[0].Action != "ge" {
		t.Fatalf("file timeline parsed to %+v, want one ge step", tl)
	}
}

func TestWorkloadResolution(t *testing.T) {
	if wl := Workload(""); wl != nil {
		t.Fatal("empty -workload resolved to a CDF")
	}
	if wl := Workload("WebServer"); wl == nil {
		t.Fatal("built-in WebServer did not resolve")
	}
}

func TestTopoAcceptsCatalogueAndClosGrammar(t *testing.T) {
	// Topo only Dies on bad input; surviving these calls is the assertion.
	Topo("leafspine")
	Topo("micro")
}

func TestCataloguesReportsPrinted(t *testing.T) {
	if Catalogues(false, false) {
		t.Error("Catalogues(false, false) claims it printed")
	}
	// Silence the listing itself; only the return value is under test.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	schemes := Catalogues(true, false)
	topos := Catalogues(false, true)
	os.Stdout = old
	null.Close()
	if !schemes || !topos {
		t.Error("Catalogues did not report printing a requested listing")
	}
}

func TestLoadScenarioRoundTrip(t *testing.T) {
	sc := experiments.GoldenScenario("xpass")
	path := filepath.Join(t.TempDir(), "golden.scn")
	if err := os.WriteFile(path, []byte(sc.Text()), 0o644); err != nil {
		t.Fatal(err)
	}
	got := LoadScenario(path)
	if got.Digest() != sc.Digest() {
		t.Fatalf("loaded scenario digest %s, want %s", got.Digest(), sc.Digest())
	}
}

// TestDieExitPaths re-executes the test binary so every Die-calling error
// path can be observed from outside: each must exit with the flag-mistake
// status 2 and print a diagnostic mentioning the offending value.
func TestDieExitPaths(t *testing.T) {
	if mode := os.Getenv("CLIUTIL_DIE_HELPER"); mode != "" {
		switch mode {
		case "die":
			Die(errors.New("boom"))
		case "sched":
			Scheduler("bogus-sched")
		case "timeline":
			Timeline("0s * explode", "")
		case "timeline-both":
			Timeline("0s * fail", "/also/a/file")
		case "workload":
			Workload("no-such-workload")
		case "topo":
			Topo("no-such-topo")
		case "scenario":
			LoadScenario(filepath.Join(t.TempDir(), "missing.scn"))
		}
		t.Fatalf("helper mode %q returned instead of exiting", mode)
	}
	for _, tc := range []struct {
		mode, wantMsg string
	}{
		{"die", "boom"},
		{"sched", "bogus-sched"},
		{"timeline", "explode"},
		{"timeline-both", "not both"},
		{"workload", "no-such-workload"},
		{"topo", "no-such-topo"},
		{"scenario", "missing.scn"},
	} {
		tc := tc
		t.Run(tc.mode, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], "-test.run=TestDieExitPaths")
			cmd.Env = append(os.Environ(), "CLIUTIL_DIE_HELPER="+tc.mode)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 2 {
				t.Fatalf("helper %q exited %v, want status 2 (output: %s)", tc.mode, err, out)
			}
			if !strings.Contains(string(out), tc.wantMsg) {
				t.Errorf("helper %q output %q does not mention %q", tc.mode, out, tc.wantMsg)
			}
		})
	}
}
