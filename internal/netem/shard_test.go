package netem

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func testQdisc(kind PortKind, rate sim.Rate) Qdisc { return NewFIFO(DefaultBuffer) }

func TestShardCountClamps(t *testing.T) {
	tests := []struct {
		spec      TopoSpec
		requested int
		want      int
	}{
		{microSpec, 4, 1},     // single edge switch never splits
		{microSpec, 0, 1},     // floor at one shard
		{leafSpineSpec, 0, 1}, // floor at one shard
		{leafSpineSpec, 3, 3},
		{leafSpineSpec, 99, 8}, // at most one shard per edge switch
		{fatTreeSpec, 8, 8},
	}
	for _, tt := range tests {
		if got := ShardCount(tt.spec, tt.requested); got != tt.want {
			t.Errorf("ShardCount(%d edges, %d) = %d, want %d",
				tt.spec.Tiers[0].Switches, tt.requested, got, tt.want)
		}
	}
}

// TestShardedClosPartition checks the structural contract of the partitioner
// on the leaf-spine fabric: hosts follow their edge switch in contiguous
// blocks, the shard host/port sets partition the network, every element is
// homed on its shard's engine and pool, and exactly the ports whose peer
// lives elsewhere carry a CrossLink.
func TestShardedClosPartition(t *testing.T) {
	const shards = 4
	sn := BuildShardedClos(leafSpineSpec, shards, sim.SchedWheel, testQdisc, 1538)
	if sn.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", sn.Shards(), shards)
	}

	edges := leafSpineSpec.Tiers[0].Switches
	perEdge := leafSpineSpec.HostsPerEdge
	for id := range sn.Net.Hosts {
		want := (id / perEdge) * shards / edges
		if got := sn.HostShard(NodeID(id)); got != want {
			t.Fatalf("host %d on shard %d, want %d", id, got, want)
		}
	}

	seenHosts := map[*Host]bool{}
	for i := 0; i < shards; i++ {
		for _, h := range sn.ShardHosts(i) {
			if seenHosts[h] {
				t.Fatalf("host %d appears in two shards", h.ID)
			}
			seenHosts[h] = true
			if h.Eng != sn.Engines[i] || h.Pool != sn.Pools[i] {
				t.Fatalf("host %d not homed on shard %d's engine/pool", h.ID, i)
			}
		}
	}
	if len(seenHosts) != len(sn.Net.Hosts) {
		t.Fatalf("shard host sets cover %d hosts, network has %d", len(seenHosts), len(sn.Net.Hosts))
	}

	seenPorts := map[*Port]int{}
	crossed := 0
	for i := 0; i < shards; i++ {
		for _, pt := range sn.ShardPorts(i) {
			if prev, dup := seenPorts[pt]; dup {
				t.Fatalf("port %s on shards %d and %d", pt.Label, prev, i)
			}
			seenPorts[pt] = i
			if pt.Eng != sn.Engines[i] || pt.Pool != sn.Pools[i] {
				t.Fatalf("port %s not homed on shard %d's engine/pool", pt.Label, i)
			}
			if pt.X != nil {
				crossed++
				if pt.X.src != i {
					t.Fatalf("port %s cross-link src %d, homed on shard %d", pt.Label, pt.X.src, i)
				}
				if pt.X.dst == i {
					t.Fatalf("port %s cross-link to its own shard", pt.Label)
				}
			}
		}
	}
	if all := sn.Net.AllPorts(); len(seenPorts) != len(all) {
		t.Fatalf("shard port sets cover %d ports, network has %d", len(seenPorts), len(all))
	}
	if crossed != sn.CrossPorts() || crossed == 0 {
		t.Fatalf("counted %d cross ports, CrossPorts() = %d (want equal, nonzero)", crossed, sn.CrossPorts())
	}

	// Host NICs and edge down-ports never cross: an edge switch and its hosts
	// are the indivisible unit.
	for _, h := range sn.Net.Hosts {
		if h.NIC.X != nil {
			t.Fatalf("host %d NIC carries a cross-link", h.ID)
		}
	}

	// The conservative lookahead of a uniform fabric is one fabric-link
	// propagation delay plus the serialization time of a minimum-size frame.
	want := leafSpineSpec.LinkDelay + sim.TxTime(HeaderSize, leafSpineSpec.coreRate())
	if sn.Lookahead != want {
		t.Fatalf("Lookahead = %v, want %v", sn.Lookahead, want)
	}
}

func TestShardedClosSingleShardHasNoCrossLinks(t *testing.T) {
	sn := BuildShardedClos(leafSpineSpec, 1, sim.SchedWheel, testQdisc, 1538)
	if sn.CrossPorts() != 0 {
		t.Fatalf("shards=1 network has %d cross ports", sn.CrossPorts())
	}
	for _, pt := range sn.Net.AllPorts() {
		if pt.X != nil {
			t.Fatalf("port %s carries a cross-link on a one-shard build", pt.Label)
		}
		if pt.Eng != sn.Engines[0] {
			t.Fatalf("port %s not on the single shard engine", pt.Label)
		}
	}
}

// TestShardedClosViews checks the per-shard facade: shared structure, private
// engine, pool and endpoint-host set.
func TestShardedClosViews(t *testing.T) {
	sn := BuildShardedClos(leafSpineSpec, 2, sim.SchedWheel, testQdisc, 1538)
	for i := 0; i < 2; i++ {
		v := sn.View(i)
		if v.Eng != sn.Engines[i] || v.Pool != sn.Pools[i] {
			t.Fatalf("view %d does not carry shard %d's engine/pool", i, i)
		}
		if got, want := len(v.EndpointHosts()), len(sn.ShardHosts(i)); got != want {
			t.Fatalf("view %d exposes %d endpoint hosts, want %d", i, got, want)
		}
		if len(v.Hosts) != len(sn.Net.Hosts) {
			t.Fatalf("view %d hides global hosts", i)
		}
	}
}

// TestFlushDeterministicOrder loads the handoff buffers in a scrambled order
// and checks the barrier delivers them sorted by (delivery time, generation
// time, source shard) and schedules each on its destination engine.
func TestFlushDeterministicOrder(t *testing.T) {
	sn := BuildShardedClos(leafSpineSpec, 2, sim.SchedWheel, testQdisc, 1538)
	p := func() *Packet { return &Packet{} }
	sn.bar.out[1] = append(sn.bar.out[1],
		Handoff{At: 100, Gen: 40, P: p(), Src: 1, Dst: 0},
		Handoff{At: 200, Gen: 10, P: p(), Src: 1, Dst: 0},
	)
	sn.bar.out[0] = append(sn.bar.out[0],
		Handoff{At: 100, Gen: 50, P: p(), Src: 0, Dst: 1},
		Handoff{At: 100, Gen: 40, P: p(), Src: 0, Dst: 1},
	)
	var got [][3]sim.Time
	n := sn.Flush(func(h Handoff) {
		got = append(got, [3]sim.Time{h.At, h.Gen, sim.Time(h.Src)})
	})
	if n != 4 {
		t.Fatalf("Flush moved %d handoffs, want 4", n)
	}
	want := [][3]sim.Time{{100, 40, 0}, {100, 40, 1}, {100, 50, 0}, {200, 10, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handoff %d delivered as %v, want %v (full order %v)", i, got[i], want[i], got)
		}
	}
	if sn.Engines[0].Pending() != 2 || sn.Engines[1].Pending() != 2 {
		t.Fatalf("destination engines hold %d/%d events, want 2/2",
			sn.Engines[0].Pending(), sn.Engines[1].Pending())
	}
	if len(sn.bar.out[0]) != 0 || len(sn.bar.out[1]) != 0 {
		t.Fatal("Flush left handoffs in the buffers")
	}
}
