package netem

import (
	"fmt"
	"io"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// TraceEvent is one observable packet event.
type TraceEvent uint8

// Trace event kinds.
const (
	TraceEnqueue TraceEvent = iota // accepted into a port queue
	TraceDrop                      // discarded by a port queue
	TraceTrim                      // payload cut by an NDP queue
	TraceDeliver                   // handed to a host endpoint
)

var traceEventNames = [...]string{"ENQ", "DROP", "TRIM", "DELIVER"}

// String names the event.
func (e TraceEvent) String() string {
	if int(e) < len(traceEventNames) {
		return traceEventNames[e]
	}
	return "?"
}

// Tracer receives packet events from instrumented ports and hosts. Keep
// implementations cheap: the hot path calls them per packet.
type Tracer interface {
	Trace(now sim.Time, ev TraceEvent, where string, p *Packet)
}

// WriterTracer formats events as one line each, suitable for debugging and
// for diffing deterministic runs. Filter, when non-nil, limits output to
// packets it returns true for.
type WriterTracer struct {
	W      io.Writer
	Filter func(p *Packet) bool
	Events uint64
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(now sim.Time, ev TraceEvent, where string, p *Packet) {
	if t.Filter != nil && !t.Filter(p) {
		return
	}
	t.Events++
	fmt.Fprintf(t.W, "%-14v %-7s %-18s %v\n", now, ev, where, p)
}

// CountingTracer tallies events by kind and packet type; a cheap way to
// assert aggregate behaviour in tests.
type CountingTracer struct {
	Counts map[TraceEvent]map[PacketType]uint64
}

// NewCountingTracer returns an empty counter.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{Counts: make(map[TraceEvent]map[PacketType]uint64)}
}

// Trace implements Tracer.
func (t *CountingTracer) Trace(_ sim.Time, ev TraceEvent, _ string, p *Packet) {
	m := t.Counts[ev]
	if m == nil {
		m = make(map[PacketType]uint64)
		t.Counts[ev] = m
	}
	m[p.Type]++
}

// Total returns the count for one event/type pair.
func (t *CountingTracer) Total(ev TraceEvent, typ PacketType) uint64 {
	return t.Counts[ev][typ]
}

// tracedQdisc wraps a discipline with enqueue/drop/trim tracing.
type tracedQdisc struct {
	Qdisc
	tracer Tracer
	eng    *sim.Engine
	where  string
}

// Enqueue implements Qdisc.
func (q *tracedQdisc) Enqueue(p *Packet, now sim.Time) bool {
	wasTrimmed := p.Trimmed
	ok := q.Qdisc.Enqueue(p, now)
	switch {
	case !ok:
		// The inner drop hook already fired; trace the drop too.
		q.tracer.Trace(now, TraceDrop, q.where, p)
	case !wasTrimmed && p.Trimmed:
		q.tracer.Trace(now, TraceTrim, q.where, p)
	default:
		q.tracer.Trace(now, TraceEnqueue, q.where, p)
	}
	return ok
}

// InstrumentPorts wraps every given port's qdisc so the tracer observes all
// enqueues, drops and trims. Call before traffic starts.
func InstrumentPorts(ports []*Port, tr Tracer) {
	for _, pt := range ports {
		pt.Q = &tracedQdisc{Qdisc: pt.Q, tracer: tr, eng: pt.Eng, where: pt.Label}
	}
}

// InstrumentHosts wraps every host endpoint so the tracer observes packet
// deliveries. Call after the protocol has attached its endpoints.
func InstrumentHosts(hosts []*Host, tr Tracer) {
	for _, h := range hosts {
		h.EP = &tracedEndpoint{inner: h.EP, tracer: tr, host: h}
	}
}

type tracedEndpoint struct {
	inner  Endpoint
	tracer Tracer
	host   *Host
}

// Receive implements Endpoint.
func (t *tracedEndpoint) Receive(p *Packet) {
	t.tracer.Trace(t.host.Eng.Now(), TraceDeliver, fmt.Sprintf("host%d", t.host.ID), p)
	if t.inner != nil {
		t.inner.Receive(p)
	}
}
