package netem

import "fmt"

// BacklogAuditor lets queueing disciplines defined outside this package
// expose an internal-consistency check to AuditQdisc: implementations verify
// their cached byte/packet counters against actual queue contents and return
// a descriptive error on the first mismatch.
type BacklogAuditor interface {
	AuditBacklog() error
}

// audit recomputes the FIFO's byte total from its contents and compares it
// against the cached counter.
func (f *fifo) audit(name string) error {
	var bytes int64
	for i := f.head; i < len(f.pkts); i++ {
		if f.pkts[i] == nil {
			return fmt.Errorf("%s: nil packet at live position %d", name, i)
		}
		bytes += int64(f.pkts[i].WireSize)
	}
	if bytes != f.bytes {
		return fmt.Errorf("%s: cached %d bytes, contents sum to %d", name, f.bytes, bytes)
	}
	if f.head < 0 || f.head > len(f.pkts) {
		return fmt.Errorf("%s: head %d outside [0, %d]", name, f.head, len(f.pkts))
	}
	return nil
}

// AuditQdisc verifies a discipline's cached byte counters against its actual
// queue contents: FIFO byte totals, the PrioQdisc shared-buffer total against
// the per-band sums, the two NDP queues, and the ExpressPass credit queue plus
// its inner data discipline. Instrumentation and fault-injection wrappers are
// unwrapped; disciplines from other packages are checked through
// BacklogAuditor when they implement it, and pass vacuously otherwise.
func AuditQdisc(q Qdisc) error {
	switch v := q.(type) {
	case *tracedQdisc:
		return AuditQdisc(v.Qdisc)
	case *ImpairedQdisc:
		return AuditQdisc(v.inner)
	case *FIFO:
		return v.q.audit("fifo")
	case *SelectiveDrop:
		return v.q.audit("selective-drop")
	case *PrioQdisc:
		var total int64
		for i := range v.bands {
			if err := v.bands[i].audit(fmt.Sprintf("prio band %d", i)); err != nil {
				return err
			}
			total += v.bands[i].size()
		}
		if total != v.total {
			return fmt.Errorf("prio: cached total %d, bands sum to %d", v.total, total)
		}
		return nil
	case *NDPQueue:
		if err := v.ctrl.audit("ndp ctrl"); err != nil {
			return err
		}
		return v.data.audit("ndp data")
	case *XPassQdisc:
		if err := v.credits.audit("xpass credits"); err != nil {
			return err
		}
		return AuditQdisc(v.cfg.Data)
	default:
		if a, ok := q.(BacklogAuditor); ok {
			return a.AuditBacklog()
		}
		return nil
	}
}
