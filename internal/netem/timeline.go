package netem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// This file is the scripted side of the impairment layer: a Timeline is a
// serializable list of (at, target, action, params) steps that Apply compiles
// onto a built network — wrapping every targeted port with a LinkImpairment
// and scheduling each step on the sim engine. The same timeline with the same
// seed reproduces the same chaos bit for bit, which is what makes degraded
// runs diffable across schedulers and schemes (scenario-as-data).
//
// Text format, one step per line ('#' starts a comment):
//
//	<at> <target> <action> [key=value ...]
//
//	0s    *            loss  rate=0.01 nth=0 match=all
//	0s    spine*->*    ge    p=0.001 r=0.1 good=0 bad=1 match=data
//	50ms  sw0->h1      fail
//	100ms sw0->h1      restore
//	60ms  leaf0->*     rate  cap=10Gbps
//	0s    h*->*        delay add=2us jitter=10us
//
// <at> is an offset from run start (sim.ParseDuration); <target> is a glob
// over port labels ('*' matches any run); actions are loss (params rate in
// [0,1], nth ≥ 0 — every-nth deterministic loss when nth > 0 — and match in
// all|data|ctrl|sched|unsched), ge (Gilbert-Elliott correlated loss; params
// p, r, good, bad — all probabilities in [0,1] — and match as for loss),
// fail, restore, blackhole, rate (param cap, 0 restores the original rate)
// and delay (params add, jitter).
//
// The JSON form is an array of step objects with the field names below.
// Both renderers are canonical: parse → render → parse is the identity
// (FuzzImpairmentTimeline holds the format to that contract).

// Timeline actions.
const (
	ActLoss      = "loss"
	ActGE        = "ge"
	ActFail      = "fail"
	ActRestore   = "restore"
	ActBlackhole = "blackhole"
	ActRate      = "rate"
	ActDelay     = "delay"
)

// TimelineStep is one scripted impairment event.
type TimelineStep struct {
	At     sim.Duration `json:"at_ps"`  // offset from run start
	Target string       `json:"target"` // glob over port labels
	Action string       `json:"action"`

	Rate   float64      `json:"rate,omitempty"`      // loss: drop probability [0,1]
	Nth    int64        `json:"nth,omitempty"`       // loss: drop every nth match
	Match  string       `json:"match,omitempty"`     // loss/ge: packet class ("" = all)
	P      float64      `json:"p,omitempty"`         // ge: good→bad transition probability
	R      float64      `json:"r,omitempty"`         // ge: bad→good recovery probability
	Good   float64      `json:"good,omitempty"`      // ge: loss probability in the good state
	Bad    float64      `json:"bad,omitempty"`       // ge: loss probability in the bad state
	Cap    sim.Rate     `json:"cap_bps,omitempty"`   // rate: degraded link rate
	Add    sim.Duration `json:"add_ps,omitempty"`    // delay: fixed addition
	Jitter sim.Duration `json:"jitter_ps,omitempty"` // delay: uniform jitter bound
}

// Timeline is a scripted impairment scenario.
type Timeline struct {
	Steps []TimelineStep
}

// MarshalJSON renders the timeline as the bare step array — the same form
// JSON() writes and ParseTimeline reads — so a Timeline embedded in a larger
// document (a scenario file) serializes without a wrapper object.
func (tl *Timeline) MarshalJSON() ([]byte, error) {
	steps := tl.Steps
	if steps == nil {
		steps = []TimelineStep{}
	}
	return json.Marshal(steps)
}

// UnmarshalJSON parses the bare step array, funneling every step through the
// same validation as ParseTimeline: an embedded timeline can never hold a
// step the standalone parsers would reject.
func (tl *Timeline) UnmarshalJSON(data []byte) error {
	parsed, err := parseTimelineJSON("timeline", data)
	if err != nil {
		return err
	}
	tl.Steps = parsed.Steps
	return nil
}

// targetChar reports whether r may appear in a target glob. The whitelist
// covers every label the topology builders emit and keeps targets
// tokenizable (no whitespace, no '#').
func targetChar(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	}
	return strings.ContainsRune("-><.*_:+/", r)
}

// validate checks one step and normalizes it to canonical form. Both parsers
// funnel through it, so a Timeline in memory is always renderable and a
// rendered form always re-parses to the same value.
func (st *TimelineStep) validate() error {
	if st.At < 0 {
		return fmt.Errorf("negative at %d", st.At)
	}
	if st.Target == "" {
		return fmt.Errorf("empty target")
	}
	for _, r := range st.Target {
		if !targetChar(r) {
			return fmt.Errorf("bad character %q in target %q", r, st.Target)
		}
	}
	// Reject params foreign to the action so every non-zero field is
	// rendered and every rendered field is meaningful.
	forbid := func(cond bool, what string) error {
		if cond {
			return fmt.Errorf("action %s takes no %s", st.Action, what)
		}
		return nil
	}
	geParams := st.P != 0 || st.R != 0 || st.Good != 0 || st.Bad != 0
	switch st.Action {
	case ActLoss:
		if math.IsNaN(st.Rate) || math.IsInf(st.Rate, 0) || st.Rate < 0 || st.Rate > 1 {
			return fmt.Errorf("loss rate %v outside [0,1]", st.Rate)
		}
		if st.Nth < 0 {
			return fmt.Errorf("negative nth %d", st.Nth)
		}
		if st.Match == "all" {
			st.Match = "" // canonical
		}
		if _, err := MatchClass(st.Match); err != nil {
			return err
		}
		if err := forbid(geParams, "ge params"); err != nil {
			return err
		}
		if err := forbid(st.Cap != 0, "cap"); err != nil {
			return err
		}
		return forbid(st.Add != 0 || st.Jitter != 0, "delay")
	case ActGE:
		for _, pr := range [...]struct {
			name string
			v    float64
		}{{"p", st.P}, {"r", st.R}, {"good", st.Good}, {"bad", st.Bad}} {
			if math.IsNaN(pr.v) || math.IsInf(pr.v, 0) || pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("ge %s %v outside [0,1]", pr.name, pr.v)
			}
		}
		if st.Match == "all" {
			st.Match = "" // canonical
		}
		if _, err := MatchClass(st.Match); err != nil {
			return err
		}
		if err := forbid(st.Rate != 0 || st.Nth != 0, "loss params"); err != nil {
			return err
		}
		if err := forbid(st.Cap != 0, "cap"); err != nil {
			return err
		}
		return forbid(st.Add != 0 || st.Jitter != 0, "delay")
	case ActFail, ActRestore, ActBlackhole:
		if err := forbid(st.Rate != 0 || st.Nth != 0 || st.Match != "", "loss params"); err != nil {
			return err
		}
		if err := forbid(geParams, "ge params"); err != nil {
			return err
		}
		if err := forbid(st.Cap != 0, "cap"); err != nil {
			return err
		}
		return forbid(st.Add != 0 || st.Jitter != 0, "delay")
	case ActRate:
		if st.Cap < 0 {
			return fmt.Errorf("negative cap %d", st.Cap)
		}
		if err := forbid(st.Rate != 0 || st.Nth != 0 || st.Match != "", "loss params"); err != nil {
			return err
		}
		if err := forbid(geParams, "ge params"); err != nil {
			return err
		}
		return forbid(st.Add != 0 || st.Jitter != 0, "delay")
	case ActDelay:
		if st.Add < 0 || st.Jitter < 0 {
			return fmt.Errorf("negative delay add=%d jitter=%d", st.Add, st.Jitter)
		}
		if err := forbid(st.Rate != 0 || st.Nth != 0 || st.Match != "", "loss params"); err != nil {
			return err
		}
		if err := forbid(geParams, "ge params"); err != nil {
			return err
		}
		return forbid(st.Cap != 0, "cap")
	default:
		return fmt.Errorf("unknown action %q (want loss, ge, fail, restore, blackhole, rate or delay)", st.Action)
	}
}

// ParseTimeline parses a timeline in either format: JSON when the input
// starts with '[', the line-oriented text format otherwise. name labels
// errors (a file name or "-impair"). Malformed input returns an error, never
// a panic.
func ParseTimeline(name string, data []byte) (*Timeline, error) {
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		return parseTimelineJSON(name, trimmed)
	}
	return parseTimelineText(name, data)
}

func parseTimelineJSON(name string, data []byte) (*Timeline, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var steps []TimelineStep
	if err := dec.Decode(&steps); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, fmt.Errorf("%s: trailing data after timeline array", name)
	}
	for i := range steps {
		if err := steps[i].validate(); err != nil {
			return nil, fmt.Errorf("%s: step %d: %v", name, i, err)
		}
	}
	if len(steps) == 0 {
		steps = nil // canonical: empty timeline has nil Steps
	}
	return &Timeline{Steps: steps}, nil
}

func ensureEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err == nil {
		return fmt.Errorf("trailing data")
	}
	return nil
}

func parseTimelineText(name string, data []byte) (*Timeline, error) {
	tl := &Timeline{}
	for lineno, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want \"<at> <target> <action> [key=value ...]\", got %q", name, lineno+1, line)
		}
		at, err := sim.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineno+1, err)
		}
		st := TimelineStep{At: at, Target: fields[1], Action: fields[2]}
		for _, kv := range fields[3:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("%s:%d: parameter %q is not key=value", name, lineno+1, kv)
			}
			switch key {
			case "rate":
				st.Rate, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad rate %q", name, lineno+1, val)
				}
			case "nth":
				st.Nth, err = strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad nth %q", name, lineno+1, val)
				}
			case "match":
				st.Match = val
			case "p":
				st.P, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad p %q", name, lineno+1, val)
				}
			case "r":
				st.R, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad r %q", name, lineno+1, val)
				}
			case "good":
				st.Good, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad good %q", name, lineno+1, val)
				}
			case "bad":
				st.Bad, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad bad %q", name, lineno+1, val)
				}
			case "cap":
				st.Cap, err = sim.ParseRate(val)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", name, lineno+1, err)
				}
			case "add":
				st.Add, err = sim.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", name, lineno+1, err)
				}
			case "jitter":
				st.Jitter, err = sim.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", name, lineno+1, err)
				}
			default:
				return nil, fmt.Errorf("%s:%d: unknown parameter %q", name, lineno+1, key)
			}
		}
		if err := st.validate(); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineno+1, err)
		}
		tl.Steps = append(tl.Steps, st)
	}
	return tl, nil
}

// Text renders the timeline in canonical text form: every meaningful
// parameter explicit, durations via ExactString, rates via Rate.String —
// all lossless, so ParseTimeline(tl.Text()) reproduces tl exactly.
func (tl *Timeline) Text() string {
	var b strings.Builder
	b.WriteString("# impairment timeline\n")
	for _, st := range tl.Steps {
		b.WriteString(st.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// Text renders one step in the canonical text grammar (no trailing newline):
// the line form Timeline.Text emits and parseTimelineText reads back.
func (st TimelineStep) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", st.At.ExactString(), st.Target, st.Action)
	switch st.Action {
	case ActLoss:
		match := st.Match
		if match == "" {
			match = "all"
		}
		fmt.Fprintf(&b, " rate=%s nth=%d match=%s",
			strconv.FormatFloat(st.Rate, 'g', -1, 64), st.Nth, match)
	case ActGE:
		match := st.Match
		if match == "" {
			match = "all"
		}
		g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		fmt.Fprintf(&b, " p=%s r=%s good=%s bad=%s match=%s",
			g(st.P), g(st.R), g(st.Good), g(st.Bad), match)
	case ActRate:
		fmt.Fprintf(&b, " cap=%s", st.Cap)
	case ActDelay:
		fmt.Fprintf(&b, " add=%s jitter=%s", st.Add.ExactString(), st.Jitter.ExactString())
	}
	return b.String()
}

// JSON renders the timeline as an indented JSON array (the alternate
// on-disk form; ParseTimeline reads it back identically).
func (tl *Timeline) JSON() ([]byte, error) {
	steps := tl.Steps
	if steps == nil {
		steps = []TimelineStep{}
	}
	return json.MarshalIndent(steps, "", "  ")
}

// matchGlob matches s against a pattern where '*' matches any (possibly
// empty) run of characters.
func matchGlob(pattern, s string) bool {
	px, sx := 0, 0
	star, mark := -1, 0
	for sx < len(s) {
		switch {
		case px < len(pattern) && (pattern[px] == s[sx]):
			px++
			sx++
		case px < len(pattern) && pattern[px] == '*':
			star, mark = px, sx
			px++
		case star >= 0:
			mark++
			px, sx = star+1, mark
		default:
			return false
		}
	}
	for px < len(pattern) && pattern[px] == '*' {
		px++
	}
	return px == len(pattern)
}

// ImpairmentSet is the result of applying a timeline: the per-port
// controllers, keyed by port label.
type ImpairmentSet struct {
	Controllers map[string]*LinkImpairment
}

// InjectedDrops sums impairment-injected drops across all controlled ports.
func (s *ImpairmentSet) InjectedDrops() uint64 {
	var n uint64
	for _, li := range s.Controllers {
		n += li.Injected()
	}
	return n
}

// Apply compiles the timeline onto a built network: every port matched by
// any step is wrapped with a LinkImpairment (seeded from seed and the port
// label, so per-port randomness is stable regardless of step order), and
// each step is scheduled on the engine at its offset. Call after the
// topology is built and before audit instrumentation, so injected drops are
// traced. A step whose target matches no port is an error — a silently
// inert chaos script would invalidate the experiment it was meant to stress.
func (tl *Timeline) Apply(net *Network, seed uint64) (*ImpairmentSet, error) {
	set := &ImpairmentSet{Controllers: make(map[string]*LinkImpairment)}
	ports := net.AllPorts()
	for i, st := range tl.Steps {
		var targets []*LinkImpairment
		for _, pt := range ports {
			if !matchGlob(st.Target, pt.Label) {
				continue
			}
			li, ok := set.Controllers[pt.Label]
			if !ok {
				li = InstallImpairment(pt, seed^labelHash(pt.Label))
				set.Controllers[pt.Label] = li
			}
			targets = append(targets, li)
		}
		if len(targets) == 0 {
			return nil, fmt.Errorf("timeline step %d: target %q matches no port", i, st.Target)
		}
		step := st // capture
		net.Eng.At(sim.Time(st.At), func() {
			for _, li := range targets {
				applyStep(li, step)
			}
		})
	}
	return set, nil
}

func applyStep(li *LinkImpairment, st TimelineStep) {
	switch st.Action {
	case ActLoss:
		m, err := MatchClass(st.Match)
		if err != nil {
			panic(err) // unreachable: validate checked the class
		}
		li.SetLoss(st.Rate, st.Nth, m)
	case ActGE:
		m, err := MatchClass(st.Match)
		if err != nil {
			panic(err) // unreachable: validate checked the class
		}
		li.SetGE(st.P, st.R, st.Good, st.Bad, m)
	case ActFail:
		li.Fail()
	case ActRestore:
		li.Restore()
	case ActBlackhole:
		li.SetBlackhole(true)
	case ActRate:
		li.SetRate(st.Cap)
	case ActDelay:
		li.SetDelay(st.Add, st.Jitter)
	}
}

// labelHash is FNV-1a over the port label: a stable per-port stream selector
// for impairment randomness.
func labelHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// LoadTimeline resolves the CLI impairment knobs shared by the commands: an
// inline timeline (-impair: text-grammar steps separated by ';' or newlines)
// and a timeline file (-impair-file: text or JSON). Giving both is an error;
// giving neither yields a nil timeline (no impairment).
func LoadTimeline(inline, path string) (*Timeline, error) {
	switch {
	case inline != "" && path != "":
		return nil, fmt.Errorf("impairment timeline: give -impair or -impair-file, not both")
	case inline != "":
		return ParseTimeline("-impair", []byte(strings.ReplaceAll(inline, ";", "\n")))
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return ParseTimeline(path, data)
	default:
		return nil, nil
	}
}
