package netem

import (
	"fmt"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// collector records every packet delivered to a host endpoint.
type collector struct {
	eng  *sim.Engine
	pkts []*Packet
	at   []sim.Time
}

func (c *collector) Receive(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.eng.Now())
}

func attachCollectors(net *Network) []*collector {
	cs := make([]*collector, len(net.Hosts))
	for i, h := range net.Hosts {
		cs[i] = &collector{eng: net.Eng}
		h.EP = cs[i]
	}
	return cs
}

func TestPortSerializationTiming(t *testing.T) {
	eng := sim.NewEngine()
	dst := &collector{eng: eng}
	host := &Host{ID: 1, Eng: eng, EP: dst}
	pt := NewPort(eng, NewFIFO(0), 10*sim.Gbps, 2*sim.Microsecond, host, "t")

	p1 := dataPkt(1, 1250, false) // 1 µs at 10G
	p2 := dataPkt(2, 1250, false)
	pt.Send(p1)
	pt.Send(p2)
	eng.Run()

	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(dst.pkts))
	}
	// p1 arrives at tx(1µs) + prop(2µs) = 3µs; p2 at 2tx + prop = 4µs.
	if dst.at[0] != sim.Time(3*sim.Microsecond) {
		t.Fatalf("p1 arrival = %v, want 3us", dst.at[0])
	}
	if dst.at[1] != sim.Time(4*sim.Microsecond) {
		t.Fatalf("p2 arrival = %v, want 4us", dst.at[1])
	}
	if pt.TxBytes != 2500 || pt.TxPackets != 2 {
		t.Fatalf("tx counters = %d bytes / %d pkts", pt.TxBytes, pt.TxPackets)
	}
}

func TestPortWakesForShapedCredits(t *testing.T) {
	eng := sim.NewEngine()
	dst := &collector{eng: eng}
	host := &Host{ID: 1, Eng: eng, EP: dst}
	link := sim.Rate(10 * sim.Gbps)
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(link)})
	pt := NewPort(eng, q, link, 0, host, "t")

	for i := 0; i < 3; i++ {
		pt.Send(&Packet{Type: Credit, Flow: uint64(i), WireSize: CreditSize})
	}
	eng.Run()
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d credits, want 3 (port failed to wake for shaper)", len(dst.pkts))
	}
	// Credits must be spaced by at least the shaper gap.
	gap := sim.TxTime(CreditSize, CreditRateFor(link))
	for i := 1; i < 3; i++ {
		if dst.at[i]-dst.at[i-1] < sim.Time(gap) {
			t.Fatalf("credits %d,%d spaced %v < shaper gap %v", i-1, i, dst.at[i]-dst.at[i-1], gap)
		}
	}
}

func TestSingleSwitchDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildSingleSwitch(eng, 4, TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
	cs := attachCollectors(net)

	p := dataPkt(1, 1538, false)
	p.Src, p.Dst = 0, 3
	net.Hosts[0].Send(p)
	eng.Run()

	if len(cs[3].pkts) != 1 {
		t.Fatalf("host 3 received %d packets, want 1", len(cs[3].pkts))
	}
	for i := 0; i < 3; i++ {
		if len(cs[i].pkts) != 0 {
			t.Fatalf("host %d received stray packet", i)
		}
	}
}

func TestLeafSpineAllPairsDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildLeafSpine(eng, 2, 3, 4, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond,
	})
	cs := attachCollectors(net)

	n := len(net.Hosts)
	if n != 12 {
		t.Fatalf("host count = %d, want 12", n)
	}
	sent := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := dataPkt(uint64(s*100+d), 1538, false)
			p.Src, p.Dst = NodeID(s), NodeID(d)
			p.PathID = uint32(s * d)
			net.Hosts[s].Send(p)
			sent++
		}
	}
	eng.Run()
	got := 0
	for d := 0; d < n; d++ {
		for _, p := range cs[d].pkts {
			if p.Dst != NodeID(d) {
				t.Fatalf("host %d received packet for %d", d, p.Dst)
			}
		}
		got += len(cs[d].pkts)
	}
	if got != sent {
		t.Fatalf("delivered %d of %d packets", got, sent)
	}
}

func TestLeafSpineECMPSymmetry(t *testing.T) {
	// A request and its reply with the same PathID must traverse the same
	// spine switch, which ExpressPass's credit shaping relies on.
	for pathID := uint32(0); pathID < 8; pathID++ {
		eng := sim.NewEngine()
		net := BuildLeafSpine(eng, 4, 2, 1, TopoConfig{
			HostRate: 100 * sim.Gbps, LinkDelay: 100 * sim.Nanosecond,
		})
		cs := attachCollectors(net)
		fwd := dataPkt(1, 1538, false)
		fwd.Src, fwd.Dst, fwd.PathID = 0, 1, pathID
		rev := dataPkt(1, 1538, false)
		rev.Src, rev.Dst, rev.PathID = 1, 0, pathID
		net.Hosts[0].Send(fwd)
		net.Hosts[1].Send(rev)
		eng.Run()
		if len(cs[0].pkts) != 1 || len(cs[1].pkts) != 1 {
			t.Fatal("packets lost")
		}
		// Find which spine carried traffic in each direction.
		var fwdSpine, revSpine []string
		for _, sw := range net.Switches {
			if sw.Label[0] != 's' {
				continue
			}
			for _, pt := range sw.Ports {
				if pt.TxPackets > 0 {
					if pt.Dst.(*Switch).Label == "leaf1" {
						fwdSpine = append(fwdSpine, sw.Label)
					} else {
						revSpine = append(revSpine, sw.Label)
					}
				}
			}
		}
		if len(fwdSpine) != 1 || len(revSpine) != 1 || fwdSpine[0] != revSpine[0] {
			t.Fatalf("pathID %d: fwd via %v, rev via %v — not symmetric", pathID, fwdSpine, revSpine)
		}
	}
}

func TestFatTree3Delivery(t *testing.T) {
	eng := sim.NewEngine()
	shape := FatTreeShape{Spines: 2, Leaves: 2, ToRs: 4, HostsPerToR: 3, ToRUplinks: 2}
	net := BuildFatTree3(eng, shape, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
	cs := attachCollectors(net)
	n := len(net.Hosts)
	if n != 12 {
		t.Fatalf("host count = %d, want 12", n)
	}
	sent := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			for path := uint32(0); path < 4; path++ {
				p := dataPkt(uint64(sent), 1538, false)
				p.Src, p.Dst, p.PathID = NodeID(s), NodeID(d), path
				net.Hosts[s].Send(p)
				sent++
			}
		}
	}
	eng.Run()
	got := 0
	for d := range cs {
		got += len(cs[d].pkts)
	}
	if got != sent {
		t.Fatalf("delivered %d of %d packets", got, sent)
	}
}

func TestExpressPassShapeBuilds(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildFatTree3(eng, ExpressPassShape, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: 4 * sim.Microsecond, HostDelay: sim.Microsecond,
	})
	if len(net.Hosts) != 192 {
		t.Fatalf("hosts = %d, want 192", len(net.Hosts))
	}
	if len(net.Switches) != 32+16+8 {
		t.Fatalf("switches = %d, want 56", len(net.Switches))
	}
	// Paper: "maximum base RTT of 52us" for this topology.
	if net.BaseRTT < 45*sim.Microsecond || net.BaseRTT > 60*sim.Microsecond {
		t.Fatalf("BaseRTT = %v, want ≈52us", net.BaseRTT)
	}
	// Cross-pod host pair must have routes at every switch.
	p := dataPkt(1, 1538, false)
	p.Src, p.Dst = 0, 191
	cs := attachCollectors(net)
	net.Hosts[0].Send(p)
	eng.Run()
	if len(cs[191].pkts) != 1 {
		t.Fatal("cross-pod packet lost")
	}
}

func TestHomaTopologyBaseRTT(t *testing.T) {
	// Homa/NDP topology: 100G two-tier, base RTT ≈ 4.5 µs with ~0.5 µs links.
	eng := sim.NewEngine()
	net := BuildLeafSpine(eng, 8, 8, 8, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond,
	})
	if net.BaseRTT < 4*sim.Microsecond || net.BaseRTT > 5*sim.Microsecond {
		t.Fatalf("BaseRTT = %v, want ≈4.5us", net.BaseRTT)
	}
	if bdp := net.BDPBytes(); bdp < 50000 || bdp > 65000 {
		t.Fatalf("BDP = %d bytes, want ≈56K", bdp)
	}
}

func TestHostDelayAppliedOnReceive(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildSingleSwitch(eng, 2, TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond, HostDelay: 5 * sim.Microsecond,
	})
	cs := attachCollectors(net)
	p := dataPkt(1, 1250, false)
	p.Src, p.Dst = 0, 1
	net.Hosts[0].Send(p)
	eng.Run()
	// tx 1µs + prop 1µs + tx 1µs + prop 1µs + host 5µs = 9µs.
	want := sim.Time(9 * sim.Microsecond)
	if cs[1].at[0] != want {
		t.Fatalf("arrival = %v, want %v", cs[1].at[0], want)
	}
}

func TestDropTotals(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildSingleSwitch(eng, 2, TopoConfig{
		HostRate:  10 * sim.Gbps,
		LinkDelay: sim.Microsecond,
		MakeQdisc: func(kind PortKind, rate sim.Rate) Qdisc {
			return NewSelectiveDrop(6000, DefaultBuffer)
		},
	})
	attachCollectors(net)
	// Burst 100 unscheduled packets from host 0 to host 1: the switch
	// downlink (same rate as the NIC) should drop none, so burst two senders
	// is needed... instead, throttle: send from both hosts to host 1.
	for i := 0; i < 50; i++ {
		p := dataPkt(uint64(i), 1538, false)
		p.Src, p.Dst = 0, 1
		net.Hosts[0].Send(p)
	}
	eng.Run()
	tot := DropTotals(net.SwitchPorts())
	if tot[DropSelective] != 0 {
		t.Fatalf("same-rate forwarding dropped %d packets", tot[DropSelective])
	}

	// Now two senders into one receiver: contention must drop unscheduled.
	eng2 := sim.NewEngine()
	net2 := BuildSingleSwitch(eng2, 3, TopoConfig{
		HostRate:  10 * sim.Gbps,
		LinkDelay: sim.Microsecond,
		MakeQdisc: func(kind PortKind, rate sim.Rate) Qdisc {
			return NewSelectiveDrop(6000, DefaultBuffer)
		},
	})
	attachCollectors(net2)
	for i := 0; i < 50; i++ {
		for s := 0; s < 2; s++ {
			p := dataPkt(uint64(s*100+i), 1538, false)
			p.Src, p.Dst = NodeID(s), 2
			net2.Hosts[s].Send(p)
		}
	}
	eng2.Run()
	tot2 := DropTotals(net2.SwitchPorts())
	if tot2[DropSelective] == 0 {
		t.Fatal("2:1 contention produced no selective drops")
	}
}

// TestCascadingDelay demonstrates the Fig. 5 pathology: without scheduled-
// packet-first, an unscheduled burst delays a scheduled flow, which in a
// chain of dependent links delays further scheduled flows downstream. With
// selective dropping the scheduled flow is unaffected.
func TestCascadingDelay(t *testing.T) {
	run := func(selective bool) sim.Time {
		eng := sim.NewEngine()
		qf := func(kind PortKind, rate sim.Rate) Qdisc {
			if selective {
				return NewSelectiveDrop(6000, DefaultBuffer)
			}
			return NewFIFO(DefaultBuffer)
		}
		net := BuildSingleSwitch(eng, 5, TopoConfig{
			HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond, MakeQdisc: qf,
		})
		cs := attachCollectors(net)
		// Hosts 0-2 each burst 32 unscheduled packets to host 4 (3:1
		// overload builds a queue); host 3 sends a scheduled packet.
		for i := 0; i < 32; i++ {
			for s := NodeID(0); s < 3; s++ {
				p := dataPkt(uint64(s)*100+uint64(i), 1538, false)
				p.Src, p.Dst = s, 4
				net.Hosts[s].Send(p)
			}
		}
		// Inject the scheduled packet once the overload has had time to
		// build a queue (20 µs ≈ 16 packets of backlog growth at 2:1 excess).
		sched := dataPkt(1000, 1538, true)
		sched.Src, sched.Dst = 3, 4
		eng.At(sim.Time(20*sim.Microsecond), func() { net.Hosts[3].Send(sched) })
		eng.Run()
		for i, p := range cs[4].pkts {
			if p.Flow == 1000 {
				return cs[4].at[i]
			}
		}
		t.Fatal("scheduled packet never arrived")
		return 0
	}
	fifoArrival := run(false)
	spfArrival := run(true)
	if spfArrival >= fifoArrival {
		t.Fatalf("selective dropping did not protect the scheduled packet: %v >= %v",
			spfArrival, fifoArrival)
	}
}

func TestSwitchPanicsOnMissingRoute(t *testing.T) {
	eng := sim.NewEngine()
	sw := &Switch{ID: 1, Eng: eng, Table: make([][]int32, 1), Label: "s"}
	defer func() {
		if recover() == nil {
			t.Fatal("forwarding without a route did not panic")
		}
	}()
	sw.Receive(&Packet{Dst: 0})
}

func TestWireSizeFor(t *testing.T) {
	if WireSizeFor(MaxPayload) != 1538 {
		t.Fatalf("WireSizeFor(MaxPayload) = %d, want 1538", WireSizeFor(MaxPayload))
	}
	if WireSizeFor(JumboPayload) != JumboMTU {
		t.Fatalf("WireSizeFor(JumboPayload) = %d, want %d", WireSizeFor(JumboPayload), JumboMTU)
	}
}

func TestNetworkPortEnumeration(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildLeafSpine(eng, 2, 2, 2, TopoConfig{HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond})
	// leaves: 2 down + 2 up each = 8; spines: 2 down each = 4; NICs = 4.
	if got := len(net.SwitchPorts()); got != 12 {
		t.Fatalf("switch ports = %d, want 12", got)
	}
	if got := len(net.AllPorts()); got != 16 {
		t.Fatalf("all ports = %d, want 16", got)
	}
	labels := map[string]bool{}
	for _, pt := range net.AllPorts() {
		if labels[pt.Label] {
			t.Fatalf("duplicate port label %q", pt.Label)
		}
		labels[pt.Label] = true
	}
	_ = fmt.Sprintf("%v", net.Host(0).ID)
}
