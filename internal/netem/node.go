package netem

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// Endpoint is the transport attachment point of a host: every packet whose
// destination is the host is handed to its endpoint.
type Endpoint interface {
	Receive(p *Packet)
}

// Host is an end system: a NIC output port toward its top-of-rack switch and
// a transport endpoint. The configured HostDelay models end-host stack
// latency and is applied on the receive path.
type Host struct {
	ID        NodeID
	Eng       *sim.Engine
	NIC       *Port
	EP        Endpoint
	Pool      *PacketPool // releases delivered packets; nil is valid
	HostDelay sim.Duration

	RxPackets uint64
	RxBytes   int64
}

// Receive implements Node: deliver to the endpoint after the host stack delay.
// The delayed hop reuses the packet as its own event (see Packet.Fire).
func (h *Host) Receive(p *Packet) {
	h.RxPackets++
	h.RxBytes += int64(p.WireSize)
	if h.HostDelay > 0 {
		p.next = (*hostStack)(h)
		h.Eng.AfterHandler(h.HostDelay, p)
		return
	}
	h.deliver(p)
}

// deliver hands the packet to the endpoint, then releases it: the endpoint
// boundary terminates a delivered packet's life. Endpoints must not retain
// the packet or alias its SegList past Receive.
func (h *Host) deliver(p *Packet) {
	if h.EP != nil {
		h.EP.Receive(p)
	}
	h.Pool.Put(p)
}

// hostStack is the zero-state Node view of a Host that the delayed receive
// path lands on after HostDelay.
type hostStack Host

func (h *hostStack) Receive(p *Packet) { (*Host)(h).deliver(p) }

// Send stamps the packet's send time (if unset) and offers it to the NIC.
func (h *Host) Send(p *Packet) {
	if p.SendTime == 0 {
		p.SendTime = h.Eng.Now()
	}
	h.NIC.Send(p)
}

// Switch is an output-queued switch: packets are routed to an output port by
// destination host ID, with ECMP among equal-cost ports selected by the
// packet's PathID. PipeDelay models the switching pipeline latency.
type Switch struct {
	ID        NodeID
	Eng       *sim.Engine
	Ports     []*Port
	Table     [][]int32 // dst host ID -> eligible output port indices
	PipeDelay sim.Duration
	Label     string
}

// Receive implements Node. The pipeline-delay hop reuses the packet as its
// own event (see Packet.Fire).
func (s *Switch) Receive(p *Packet) {
	if s.PipeDelay > 0 {
		p.next = (*switchPipe)(s)
		s.Eng.AfterHandler(s.PipeDelay, p)
		return
	}
	s.forward(p)
}

// switchPipe is the zero-state Node view of a Switch that packets land on
// after the switching-pipeline delay.
type switchPipe Switch

func (sp *switchPipe) Receive(p *Packet) { (*Switch)(sp).forward(p) }

func (s *Switch) forward(p *Packet) {
	if int(p.Dst) >= len(s.Table) || len(s.Table[p.Dst]) == 0 {
		panic(fmt.Sprintf("netem: switch %s has no route to host %d for %v", s.Label, p.Dst, p))
	}
	choices := s.Table[p.Dst]
	idx := choices[int(p.PathID)%len(choices)]
	s.Ports[idx].Send(p)
}

// Network is a built topology: the engine, all hosts and switches, and the
// derived timing constants transports need (base RTT, BDP).
type Network struct {
	Eng      *sim.Engine
	Hosts    []*Host
	Switches []*Switch

	// Pool recycles packets for this network; one pool per run (the
	// parallel experiment executor builds one Network, and thus one pool,
	// per simulation). Topology builders attach it to every host and port.
	Pool *PacketPool

	// HostRate is the edge link rate (hosts' NIC rate).
	HostRate sim.Rate

	// BaseRTT is the zero-load round-trip time between the farthest pair of
	// hosts, including serialization of one full-size frame on each hop and
	// a minimum-size reply. Transports size their first-RTT window from it.
	BaseRTT sim.Duration

	// localHosts, when non-nil, restricts EndpointHosts to the hosts one
	// shard owns. Unsharded networks leave it nil: every host is local.
	localHosts []*Host
}

// EndpointHosts returns the hosts a protocol instance should attach its
// endpoints to: all hosts on an unsharded network, the owned subset on a
// per-shard view. Transports must attach through this (not Hosts) so that
// per-shard protocol instances do not overwrite each other's endpoints.
func (n *Network) EndpointHosts() []*Host {
	if n.localHosts != nil {
		return n.localHosts
	}
	return n.Hosts
}

// BDPBytes returns the bandwidth-delay product of the edge rate and base RTT:
// the number of bytes a new flow may burst in its pre-credit phase.
func (n *Network) BDPBytes() int64 {
	return sim.BytesIn(n.BaseRTT, n.HostRate)
}

// Host returns the host with the given ID.
func (n *Network) Host(id NodeID) *Host { return n.Hosts[id] }

// SwitchPorts returns every switch output port (host NICs excluded).
func (n *Network) SwitchPorts() []*Port {
	var ps []*Port
	for _, s := range n.Switches {
		ps = append(ps, s.Ports...)
	}
	return ps
}

// AllPorts returns every port in the network, NICs included.
func (n *Network) AllPorts() []*Port {
	ps := n.SwitchPorts()
	for _, h := range n.Hosts {
		ps = append(ps, h.NIC)
	}
	return ps
}

// attachPool wires one PacketPool into every packet-terminating element of
// the network: hosts (endpoint delivery) and all ports (qdisc drops).
func (n *Network) attachPool(pp *PacketPool) {
	n.Pool = pp
	for _, h := range n.Hosts {
		h.Pool = pp
		h.NIC.Pool = pp
	}
	for _, s := range n.Switches {
		for _, pt := range s.Ports {
			pt.Pool = pp
		}
	}
}

// DropTotals aggregates qdisc drop counters across the given ports.
func DropTotals(ports []*Port) [NumDropReasons]uint64 {
	var tot [NumDropReasons]uint64
	for _, pt := range ports {
		if dc, ok := dropCounterOf(pt.Q); ok {
			for i, v := range dc.Drops {
				tot[i] += v
			}
		}
	}
	return tot
}

// dropCounterOf extracts the embedded DropCounter of a qdisc. Wrappers
// (tracing instrumentation, fault injection) are unwrapped first so counters
// stay visible on instrumented ports; everything else resolves through the
// Counter method any discipline embedding DropCounter provides, which also
// covers disciplines defined outside this package.
func dropCounterOf(q Qdisc) (*DropCounter, bool) {
	switch v := q.(type) {
	case *tracedQdisc:
		return dropCounterOf(v.Qdisc)
	case *ImpairedQdisc:
		// Includes injected-drop tallies plus the inner discipline's.
		sum := v.dc
		if inner, ok := dropCounterOf(v.inner); ok {
			for i, n := range inner.Drops {
				sum.Drops[i] += n
			}
		}
		return &sum, true
	case *XPassQdisc:
		// Includes the inner data qdisc's counter too.
		var sum DropCounter
		for i, n := range v.Drops {
			sum.Drops[i] += n
		}
		if inner, ok := dropCounterOf(v.cfg.Data); ok {
			for i, n := range inner.Drops {
				sum.Drops[i] += n
			}
		}
		return &sum, true
	default:
		if c, ok := q.(interface{ Counter() *DropCounter }); ok {
			return c.Counter(), true
		}
		return nil, false
	}
}
