package netem

import (
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// Property: the XPass credit shaper never releases credits faster than its
// configured rate over any prefix of a run — the invariant ExpressPass
// depends on for zero scheduled loss.
func TestXPassShaperRateProperty(t *testing.T) {
	prop := func(nCreditsRaw uint8) bool {
		n := int(nCreditsRaw%64) + 2
		link := sim.Rate(10 * sim.Gbps)
		q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(link), CreditLimit: 1000})
		eng := sim.NewEngine()
		dst := &collector{eng: eng}
		host := &Host{ID: 1, Eng: eng, EP: dst}
		pt := NewPort(eng, q, link, 0, host, "t")
		for i := 0; i < n; i++ {
			pt.Send(&Packet{Type: Credit, Flow: uint64(i), WireSize: CreditSize})
		}
		eng.Run()
		if len(dst.pkts) != n {
			return false
		}
		// Check the pacing constraint over every prefix: k credits need at
		// least (k-1) shaper gaps.
		gap := sim.TxTime(CreditSize, CreditRateFor(link))
		for k := 1; k < n; k++ {
			if dst.at[k]-dst.at[0] < sim.Time(k)*sim.Time(gap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a port delivers same-class packets in FIFO order — the in-order
// guarantee the Aeolus probe protocol relies on (§3.3 loss detection infers
// losses from the probe overtaking nothing).
func TestPortFIFOOrderProperty(t *testing.T) {
	prop := func(sizesRaw []uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 200 {
			return true
		}
		eng := sim.NewEngine()
		dst := &collector{eng: eng}
		host := &Host{ID: 1, Eng: eng, EP: dst}
		pt := NewPort(eng, NewFIFO(0), 10*sim.Gbps, sim.Microsecond, host, "t")
		for i, sz := range sizesRaw {
			p := dataPkt(uint64(i), int(sz)+64, false)
			pt.Send(p)
		}
		eng.Run()
		if len(dst.pkts) != len(sizesRaw) {
			return false
		}
		for i, p := range dst.pkts {
			if p.Flow != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NDPQueue conserves packets — every enqueued packet is either
// dequeued (possibly trimmed) or reported dropped; nothing vanishes.
func TestNDPQueueConservationProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		q := NewNDPQueue(NDPQueueConfig{Trim: true, DataLimitBytes: 3 * 9000, CtrlLimitBytes: 2 * 9000})
		in, out, dropped := 0, 0, 0
		for i, op := range ops {
			switch op % 4 {
			case 0, 1:
				p := dataPkt(uint64(i), 9000, false)
				if q.Enqueue(p, 0) {
					in++
				} else {
					dropped++
				}
			case 2:
				p := &Packet{Type: Pull, WireSize: HeaderSize}
				if q.Enqueue(p, 0) {
					in++
				} else {
					dropped++
				}
			case 3:
				if q.Dequeue(0) != nil {
					out++
				}
			}
			b := q.Backlog()
			if in != out+b.Packets {
				return false
			}
		}
		return int(q.TotalDrops()) == dropped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PrioQdisc serves strictly by band — a dequeued packet's band is
// never greater than any band still queued... i.e. at each dequeue, the
// returned packet has the minimum band among queued packets.
func TestPrioQdiscStrictnessProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		q := NewPrioQdisc(8, 0)
		queued := map[uint8]int{}
		for i, op := range ops {
			if op%3 != 0 {
				band := op % 8
				p := dataPkt(uint64(i), 100, false)
				p.Prio = band
				q.Enqueue(p, 0)
				queued[band]++
			} else {
				p := q.Dequeue(0)
				if p == nil {
					continue
				}
				for b := uint8(0); b < p.Prio; b++ {
					if queued[b] > 0 {
						return false // served a low-prio packet over a queued high-prio one
					}
				}
				queued[p.Prio]--
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
