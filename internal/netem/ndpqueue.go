package netem

import "github.com/aeolus-transport/aeolus/internal/sim"

// NDPQueueConfig selects the behaviour of an NDPQueue port.
type NDPQueueConfig struct {
	// Trim enables NDP's cutting-payload behaviour: a Data packet arriving
	// at a full data queue has its payload cut and the 64-byte header is
	// queued in the control queue instead of being dropped.
	Trim bool

	// SelectiveThresholdBytes, when positive, replaces trimming with Aeolus
	// selective dropping: unscheduled Data packets are dropped once the data
	// backlog would exceed the threshold, scheduled Data packets are only
	// bounded by DataLimitBytes. This is the NDP+Aeolus configuration of
	// §5.4, which needs no switch modification.
	SelectiveThresholdBytes int64

	// DataLimitBytes bounds the data queue. NDP's default is 8 full-size
	// packets (the paper's trimming threshold: "the threshold of packet
	// trimming is set to 8 packets (72KB)" with 9 KB jumbo frames).
	DataLimitBytes int64

	// CtrlLimitBytes bounds the control queue (headers, ACKs, NACKs, pulls).
	CtrlLimitBytes int64
}

// NDPQueue is the two-queue switch port used by NDP (§5.4): a strict
// high-priority control queue for headers and control packets, and a short
// data queue that either trims (original NDP) or selectively drops
// (NDP+Aeolus) on overflow.
type NDPQueue struct {
	DropCounter
	cfg      NDPQueueConfig
	ctrl     fifo
	data     fifo
	trimmed  uint64
	maxBytes int64
}

// NewNDPQueue returns a queue with the given configuration.
func NewNDPQueue(cfg NDPQueueConfig) *NDPQueue {
	if cfg.DataLimitBytes <= 0 {
		cfg.DataLimitBytes = 8 * JumboMTU
	}
	if cfg.CtrlLimitBytes <= 0 {
		cfg.CtrlLimitBytes = DefaultBuffer
	}
	return &NDPQueue{cfg: cfg}
}

// Trimmed reports how many packets this queue has cut to headers.
func (q *NDPQueue) Trimmed() uint64 { return q.trimmed }

// Enqueue implements Qdisc.
func (q *NDPQueue) Enqueue(p *Packet, _ sim.Time) bool {
	if p.Type.IsControl() || p.Trimmed {
		if q.ctrl.size()+int64(p.WireSize) > q.cfg.CtrlLimitBytes {
			q.drop(p, DropTrimFail)
			return false
		}
		q.ctrl.push(p)
		q.track()
		return true
	}
	// Data packet.
	if q.cfg.SelectiveThresholdBytes > 0 && !p.Scheduled &&
		q.data.size()+int64(p.WireSize) > q.cfg.SelectiveThresholdBytes {
		q.drop(p, DropSelective)
		return false
	}
	if q.data.size()+int64(p.WireSize) > q.cfg.DataLimitBytes {
		if q.cfg.Trim {
			p.Trim()
			if q.ctrl.size()+int64(p.WireSize) > q.cfg.CtrlLimitBytes {
				q.drop(p, DropTrimFail)
				return false
			}
			q.trimmed++
			q.ctrl.push(p)
			q.track()
			return true
		}
		q.drop(p, DropTailFull)
		return false
	}
	q.data.push(p)
	q.track()
	return true
}

func (q *NDPQueue) track() {
	if t := q.ctrl.size() + q.data.size(); t > q.maxBytes {
		q.maxBytes = t
	}
}

// Dequeue implements Qdisc: control strictly before data.
func (q *NDPQueue) Dequeue(_ sim.Time) *Packet {
	if !q.ctrl.empty() {
		return q.ctrl.pop()
	}
	return q.data.pop()
}

// NextWake implements Qdisc.
func (q *NDPQueue) NextWake(_ sim.Time) sim.Time { return sim.MaxTime }

// Backlog implements Qdisc.
func (q *NDPQueue) Backlog() Backlog {
	return Backlog{q.ctrl.len() + q.data.len(), q.ctrl.size() + q.data.size()}
}

// DataBacklog reports the data queue occupancy only.
func (q *NDPQueue) DataBacklog() Backlog { return Backlog{q.data.len(), q.data.size()} }

// MaxBacklogBytes reports the high-water mark of total occupancy.
func (q *NDPQueue) MaxBacklogBytes() int64 { return q.maxBytes }
