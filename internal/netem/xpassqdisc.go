package netem

import "github.com/aeolus-transport/aeolus/internal/sim"

// XPassQdiscConfig configures an ExpressPass switch port queue.
type XPassQdiscConfig struct {
	// CreditRate is the shaped drain rate of the credit queue. ExpressPass
	// rate-limits credits on every link so that the data triggered by the
	// credits of the *reverse* link never exceeds its capacity: for 84-byte
	// credits and 1538-byte maximum data frames the credit rate is
	// linkRate * 84/1538 ≈ 5.46% of the link.
	CreditRate sim.Rate

	// CreditLimit bounds the credit queue in packets; excess credits are
	// dropped, which is the congestion signal ExpressPass feeds back.
	CreditLimit int

	// Data is the discipline for non-credit packets. ExpressPass proper uses
	// a plain FIFO; ExpressPass+Aeolus uses a SelectiveDrop queue.
	Data Qdisc
}

// CreditRateFor returns the shaped credit rate for a given link rate,
// following ExpressPass: creditSize/(creditSize+maxDataSize-ish) — the
// canonical ratio 84/1538.
func CreditRateFor(link sim.Rate) sim.Rate {
	return sim.Rate(int64(link) * CreditSize / 1538)
}

// XPassQdisc implements the per-port queueing of an ExpressPass fabric: a
// shaped, bounded credit queue served ahead of an inner data discipline.
// Credits for reverse-direction flows traverse this port and are paced so
// that credit-induced data cannot oversubscribe any link.
type XPassQdisc struct {
	DropCounter
	cfg        XPassQdiscConfig
	credits    fifo
	nextCredit sim.Time // earliest instant the next credit may leave
	gap        sim.Duration
}

// NewXPassQdisc returns an ExpressPass port queue.
func NewXPassQdisc(cfg XPassQdiscConfig) *XPassQdisc {
	if cfg.CreditLimit <= 0 {
		cfg.CreditLimit = 15
	}
	if cfg.Data == nil {
		cfg.Data = NewFIFO(DefaultBuffer)
	}
	q := &XPassQdisc{cfg: cfg}
	q.gap = sim.TxTime(CreditSize, cfg.CreditRate)
	return q
}

// Data exposes the inner data discipline (for stats inspection).
func (q *XPassQdisc) Data() Qdisc { return q.cfg.Data }

// Enqueue implements Qdisc.
func (q *XPassQdisc) Enqueue(p *Packet, now sim.Time) bool {
	if p.Type == Credit {
		if q.credits.len() >= q.cfg.CreditLimit {
			q.drop(p, DropCreditOver)
			return false
		}
		q.credits.push(p)
		return true
	}
	return q.cfg.Data.Enqueue(p, now)
}

// Dequeue implements Qdisc: a credit leaves whenever the shaper allows;
// otherwise the data queue is served. Shaping uses a one-credit-deep token
// so an idle period does not accumulate a credit burst.
func (q *XPassQdisc) Dequeue(now sim.Time) *Packet {
	if !q.credits.empty() && now >= q.nextCredit {
		p := q.credits.pop()
		q.nextCredit = now.Add(q.gap)
		return p
	}
	return q.cfg.Data.Dequeue(now)
}

// NextWake implements Qdisc: if only shaped credits are pending, the port
// must retry when the shaper releases the next one.
func (q *XPassQdisc) NextWake(now sim.Time) sim.Time {
	if !q.credits.empty() {
		if now >= q.nextCredit {
			return now
		}
		return q.nextCredit
	}
	return q.cfg.Data.NextWake(now)
}

// Backlog implements Qdisc.
func (q *XPassQdisc) Backlog() Backlog {
	b := q.cfg.Data.Backlog()
	b.Packets += q.credits.len()
	b.Bytes += q.credits.size()
	return b
}

// SetDropHook installs the observer on both the credit path and the inner
// data discipline.
func (q *XPassQdisc) SetDropHook(h DropHook) {
	q.DropCounter.SetDropHook(h)
	q.cfg.Data.SetDropHook(h)
}

// CreditDrops reports credits discarded by the shaper bound; this is the
// congestion feedback signal of ExpressPass.
func (q *XPassQdisc) CreditDrops() uint64 { return q.Drops[DropCreditOver] }
