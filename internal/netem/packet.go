// Package netem implements the network elements of the simulator: packets,
// queueing disciplines (including Aeolus selective dropping, strict
// priorities, NDP packet trimming and ExpressPass credit shaping), serialized
// links, output-queued switches, ECMP routing and topology builders.
//
// The package is transport-agnostic: transports communicate intent through
// packet fields (Type, Scheduled, Prio, PathID) and the queueing disciplines
// act on those fields, mirroring how real transports program commodity
// switches through DSCP/ECN marking and priority configuration (§4.1 of the
// Aeolus paper).
package netem

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// NodeID identifies a host or switch in a Network. Host IDs are dense and
// start at zero; routing tables are keyed by destination host ID.
type NodeID int32

// PacketType enumerates the packet kinds used by the transports in this
// repository. A single shared enum keeps the switch models transport-agnostic
// while letting queueing disciplines distinguish control from data.
type PacketType uint8

// Packet types.
const (
	Data      PacketType = iota // application payload
	Ack                         // acknowledgment (per-packet SACK, NDP ack)
	Nack                        // NDP: notification of a trimmed packet
	Pull                        // NDP: receiver-paced transmission token
	Credit                      // ExpressPass: one credit authorizes one MTU
	CreditReq                   // ExpressPass/Aeolus: request to start crediting
	Grant                       // Homa: receiver grant
	Resend                      // Homa: receiver resend request
	Probe                       // Aeolus: end-of-burst probe (64 B)
	CtrlOther                   // miscellaneous control
)

var packetTypeNames = [...]string{
	"DATA", "ACK", "NACK", "PULL", "CREDIT", "CREDIT_REQ", "GRANT", "RESEND", "PROBE", "CTRL",
}

// String returns the wire-format name of the packet type.
func (t PacketType) String() string {
	if int(t) < len(packetTypeNames) {
		return packetTypeNames[t]
	}
	return fmt.Sprintf("PacketType(%d)", uint8(t))
}

// IsControl reports whether the type is a small control packet (everything
// except Data). Control packets are treated as scheduled by Aeolus queueing
// (§3.3: "to guarantee the delivery of the probe packet and all ACKs, we
// treat them as scheduled in the network").
func (t PacketType) IsControl() bool { return t != Data }

// Common wire sizes in bytes. A full-size data frame is payload plus
// FrameOverhead (IP+transport headers, Ethernet header/FCS, preamble and
// inter-packet gap), giving the canonical 1538-byte maximum frame that the
// ExpressPass 84/1538 credit ratio is defined against.
const (
	MTU           = 1500      // default MTU (paper default, §5.1)
	JumboMTU      = 9000      // NDP's default jumbo frame
	FrameOverhead = 78        // 40 B IP+transport headers + 38 B Ethernet framing
	MaxPayload    = 1460      // payload of a full 1538 B frame
	JumboPayload  = 8922      // payload of a full 9000 B jumbo frame
	HeaderSize    = 64        // trimmed-header / control packet size
	CreditSize    = 84        // ExpressPass credit packet size
	ProbeSize     = 64        // Aeolus probe: minimum Ethernet frame (§3.3)
	DefaultBuffer = 200 << 10 // 200 KB per-port buffer (paper default)
)

// WireSizeFor returns the on-wire frame size of a data packet carrying the
// given payload.
func WireSizeFor(payload int) int { return payload + FrameOverhead }

// Packet is the unit of transmission. Transports allocate one Packet per
// simulated wire packet; switches never copy packets, they only move the
// pointer between queues (and may trim it in place, as NDP hardware does).
//
// The field order is deliberate: 8-byte fields first, then the pointers,
// then the 4-byte IDs, then the packed byte-wide type/priority/flag tail —
// no interior padding, so a Packet is 112 bytes and a pool slab chunk packs
// them shoulder to shoulder.
type Packet struct {
	Flow uint64 // flow identifier, unique per run

	// Seq is the byte offset of the first payload byte for Data packets; for
	// control packets it echoes whatever sequence the protocol requires
	// (e.g. the last unscheduled byte for an Aeolus probe, the granted
	// offset for a Homa grant, the pulled sequence for an NDP pull).
	Seq int64

	PayloadLen int // application payload bytes carried (0 for control/trimmed)
	WireSize   int // total bytes occupying the wire, headers included

	SendTime sim.Time // first placed on the wire at the source

	// Meta carries one transport-specific scalar: Homa uses it for the
	// message length on unscheduled/probe packets; NDP pulls use it for the
	// pull counter; Aeolus probes carry the flow size for Homa integration.
	Meta int64

	// SegList carries segment indices on Resend requests — the simulator's
	// stand-in for the SACK blocks a real header would encode. Receivers must
	// copy it, never alias it: the backing array is reused when the packet is
	// recycled through a PacketPool.
	SegList []int32

	// next is the in-flight delivery target: the port (or switch pipeline,
	// or host stack) that put the packet "on the wire" records where it lands
	// so the packet itself can serve as the delivery event. A packet is in
	// flight toward at most one node at a time, so one slot suffices.
	next Node

	Src NodeID // source host
	Dst NodeID // destination host

	// PathID seeds ECMP decisions: each switch with k equal-cost next hops
	// forwards to choice PathID mod k. Per-flow ECMP sets it to a hash of
	// the flow ID (symmetric forward/reverse paths); per-packet spraying
	// draws a fresh random PathID for every packet.
	PathID uint32

	// slot is 1 + the packet's index in its pool's slab, 0 for packets
	// allocated outside a pool slab (nil pools, disabled pools, hand-built
	// fixtures). It survives recycling: the slot names the storage, not the
	// packet's current life.
	slot uint32

	Type PacketType

	Prio uint8 // strict-priority band; 0 is the highest priority

	// Scheduled marks the packet as credit-induced (ECT in the RED/ECN
	// realization of §4.1). Unscheduled packets (Scheduled=false, Non-ECT)
	// are the ones selective dropping may discard.
	Scheduled bool

	Trimmed bool // NDP: payload was cut by the switch

	// pooled marks a packet currently sitting in a PacketPool free-list;
	// Put on an already-pooled packet is the double-free bug the audit layer
	// reports as a structured violation.
	pooled bool
}

// PoolSlot returns the packet's dense index in its pool's slab arena, or -1
// for packets allocated outside a slab. Slots are unique per pool and stable
// across recycling, so observers (the audit layer) can keep per-packet state
// in a flat array instead of a pointer-keyed map.
func (p *Packet) PoolSlot() int32 { return int32(p.slot) - 1 }

// Fire implements sim.Handler: deliver the packet to the recorded in-flight
// target. Scheduling the packet itself as the event removes the per-hop
// closure allocation that used to dominate the port path.
func (p *Packet) Fire() {
	dst := p.next
	p.next = nil
	dst.Receive(p)
}

// String renders a compact human-readable summary, for traces and tests.
func (p *Packet) String() string {
	sched := "U"
	if p.Scheduled {
		sched = "S"
	}
	return fmt.Sprintf("%v{flow=%d %d->%d seq=%d len=%d wire=%d %s prio=%d}",
		p.Type, p.Flow, p.Src, p.Dst, p.Seq, p.PayloadLen, p.WireSize, sched, p.Prio)
}

// Trim cuts the payload from a Data packet, converting it into a 64-byte
// header-only packet, exactly as NDP's cutting-payload switches do.
func (p *Packet) Trim() {
	p.Trimmed = true
	p.PayloadLen = 0
	p.WireSize = HeaderSize
}
