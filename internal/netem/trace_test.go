package netem

import (
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func TestWriterTracerFormatsAndFilters(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb, Filter: func(p *Packet) bool { return p.Flow == 1 }}
	tr.Trace(sim.Time(sim.Microsecond), TraceEnqueue, "sw0->h1", dataPkt(1, 1538, true))
	tr.Trace(sim.Time(sim.Microsecond), TraceDrop, "sw0->h1", dataPkt(2, 1538, false))
	if tr.Events != 1 {
		t.Fatalf("events = %d, want 1 (filter)", tr.Events)
	}
	out := sb.String()
	if !strings.Contains(out, "ENQ") || !strings.Contains(out, "sw0->h1") {
		t.Fatalf("trace line: %q", out)
	}
}

func TestCountingTracer(t *testing.T) {
	tr := NewCountingTracer()
	tr.Trace(0, TraceDeliver, "host1", dataPkt(1, 1538, true))
	tr.Trace(0, TraceDeliver, "host1", dataPkt(2, 1538, true))
	tr.Trace(0, TraceDrop, "sw", &Packet{Type: Probe, WireSize: 64})
	if tr.Total(TraceDeliver, Data) != 2 {
		t.Fatalf("deliver/data = %d", tr.Total(TraceDeliver, Data))
	}
	if tr.Total(TraceDrop, Probe) != 1 {
		t.Fatalf("drop/probe = %d", tr.Total(TraceDrop, Probe))
	}
	if tr.Total(TraceTrim, Data) != 0 {
		t.Fatal("phantom trim count")
	}
}

func TestInstrumentedPortsAndHosts(t *testing.T) {
	eng := sim.NewEngine()
	net := BuildSingleSwitch(eng, 3, TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
		MakeQdisc: func(PortKind, sim.Rate) Qdisc { return NewSelectiveDrop(6000, DefaultBuffer) },
	})
	attachCollectors(net)
	tr := NewCountingTracer()
	InstrumentPorts(net.AllPorts(), tr)
	InstrumentHosts(net.Hosts, tr)

	// Two senders overload one downlink: enqueues, drops and deliveries
	// must all be observed.
	for i := 0; i < 30; i++ {
		for s := NodeID(0); s < 2; s++ {
			p := dataPkt(uint64(s)*100+uint64(i), 1538, false)
			p.Src, p.Dst = s, 2
			net.Hosts[s].Send(p)
		}
	}
	eng.Run()
	if tr.Total(TraceEnqueue, Data) == 0 {
		t.Fatal("no enqueues traced")
	}
	if tr.Total(TraceDrop, Data) == 0 {
		t.Fatal("no drops traced under 2:1 overload")
	}
	if tr.Total(TraceDeliver, Data) == 0 {
		t.Fatal("no deliveries traced")
	}
	// Conservation: delivered = enqueued at the last hop − nothing (no loss
	// after acceptance); total sent = delivered + dropped at the switch.
	sent := uint64(60)
	if tr.Total(TraceDeliver, Data)+tr.Total(TraceDrop, Data) != sent {
		t.Fatalf("deliver %d + drop %d != sent %d",
			tr.Total(TraceDeliver, Data), tr.Total(TraceDrop, Data), sent)
	}
}

func TestTraceTrimEvent(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewCountingTracer()
	q := NewNDPQueue(NDPQueueConfig{Trim: true, DataLimitBytes: 2 * 9000})
	traced := &tracedQdisc{Qdisc: q, tracer: tr, eng: eng, where: "t"}
	for i := 0; i < 2; i++ {
		if !traced.Enqueue(dataPkt(uint64(i), 9000, false), 0) {
			t.Fatal("fill dropped")
		}
	}
	over := dataPkt(9, 9000, false)
	if !traced.Enqueue(over, 0) {
		t.Fatal("overflow should trim, not drop")
	}
	if tr.Total(TraceTrim, Data) != 1 {
		t.Fatalf("trim events = %d, want 1", tr.Total(TraceTrim, Data))
	}
	if tr.Total(TraceEnqueue, Data) != 2 {
		t.Fatalf("enqueue events = %d, want 2", tr.Total(TraceEnqueue, Data))
	}
}

func TestTraceEventString(t *testing.T) {
	if TraceEnqueue.String() != "ENQ" || TraceEvent(99).String() != "?" {
		t.Fatal("TraceEvent.String mismatch")
	}
}
