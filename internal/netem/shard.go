package netem

import (
	"sort"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// This file is the netem half of the spatially-sharded engine: a topology
// partitioner that cuts a Clos fabric along pod boundaries, a per-port
// cross-shard hook (Port.X), and the barrier exchange that moves packet
// delivery events between shard engines in deterministic order.
//
// The partitioning rule reuses the TopoSpec tier structure. An edge switch
// and the hosts under it form the indivisible unit; contiguous runs of
// edge units map to shards. A higher-tier switch whose downward reach lies
// entirely inside one shard joins that shard (fat-tree pods stay whole);
// switches that reach across shards — spines, cores — are spread over the
// shards by index. Every link that ends up crossing the cut is a fabric
// link (LinkDelay propagation at the fabric rate), so the conservative
// lookahead — the minimum over cross links of propagation delay plus the
// serialization time of a minimum-size frame — equals the core-link
// latency, independent of how many shards the fabric is cut into.

// Handoff is one cross-shard packet delivery awaiting a window barrier:
// the packet (with its in-flight destination already recorded in p.next),
// the absolute delivery time, the instant the source shard put it on the
// wire (the event's tie-break stamp — see Engine.AtHandlerFrom), and the
// shard pair it crosses.
type Handoff struct {
	At  sim.Time
	Gen sim.Time
	P   *Packet
	Src int
	Dst int
}

// CrossLink is the per-port hook installed on every port whose destination
// node lives in another shard. depart runs on the source shard's goroutine
// inside a window and appends to that shard's single-writer buffer; the
// buffers are drained at the barrier, with every worker parked.
type CrossLink struct {
	bar      *crossBar
	src, dst int
}

func (x *CrossLink) depart(p *Packet, at, gen sim.Time) {
	x.bar.out[x.src] = append(x.bar.out[x.src], Handoff{At: at, Gen: gen, P: p, Src: x.src, Dst: x.dst})
}

// crossBar holds the per-source-shard handoff buffers. Each buffer has
// exactly one writer (its shard's goroutine, during a window) and is read
// only at the barrier; the ShardGroup's park/resume edges order the
// accesses, so no locking is needed anywhere on the packet path.
type crossBar struct {
	out     [][]Handoff
	scratch []Handoff
}

// ShardedNetwork is a Network partitioned into spatial shards: one engine
// and one packet pool per shard, a host/switch → shard assignment, the
// conservative lookahead of the cut, and the handoff exchange.
type ShardedNetwork struct {
	Net       *Network
	Engines   []*sim.Engine
	Pools     []*PacketPool
	Lookahead sim.Duration

	hostShard []int
	hostsOf   [][]*Host
	portsOf   [][]*Port
	bar       *crossBar
	crossed   int // cross-shard ports (diagnostics)
}

// ShardCount returns the effective shard count for a spec: the request
// clamped to [1, number of edge switches] — an edge switch and its hosts
// are never split. Single-pod topologies therefore collapse to one shard,
// where the harness keeps the plain sequential path.
func ShardCount(spec TopoSpec, requested int) int {
	n := spec.normalized()
	edges := 0
	if len(n.Tiers) > 0 {
		edges = n.Tiers[0].Switches
	}
	if requested > edges {
		requested = edges
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// BuildShardedClos builds the fabric a TopoSpec describes, partitioned into
// shards engines. The network is wired by the exact same BuildClos pass as
// the sequential path — node IDs, labels, port orders, routing tables and
// BaseRTT are byte-identical — and then re-homed: every host, switch and
// port is assigned to its shard's engine and packet pool, and every port
// whose destination is foreign gets a CrossLink. shards must already be an
// effective count from ShardCount (≥ 1); with shards == 1 the result is the
// sequential network plus empty shard metadata, and no port pays the
// cross-link path.
func BuildShardedClos(spec TopoSpec, shards int, sched sim.SchedulerKind, qf QdiscFactory, frameBytes int) *ShardedNetwork {
	sp := spec.normalized()
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngineWith(sched)
	}
	net := BuildClos(engines[0], sp, qf, frameBytes)

	sn := &ShardedNetwork{
		Net:     net,
		Engines: engines,
		Pools:   make([]*PacketPool, shards),
		bar:     &crossBar{out: make([][]Handoff, shards)},
		hostsOf: make([][]*Host, shards),
		portsOf: make([][]*Port, shards),
	}
	sn.Pools[0] = net.Pool
	for i := 1; i < shards; i++ {
		sn.Pools[i] = NewPacketPool()
	}

	// Assignment. Hosts follow their edge switch; edge switches map to
	// contiguous shard blocks; a higher-tier switch joins the shard that
	// owns its whole downward reach, or is spread by index when the reach
	// crosses shards.
	edges := sp.Tiers[0].Switches
	sn.hostShard = make([]int, len(net.Hosts))
	for id := range net.Hosts {
		s := (id / sp.HostsPerEdge) * shards / edges
		sn.hostShard[id] = s
		sn.hostsOf[s] = append(sn.hostsOf[s], net.Hosts[id])
	}
	spans, perReach := sp.reachGeometry()
	swShard := make(map[*Switch]int, len(net.Switches))
	idx := 0
	for t, tier := range sp.Tiers {
		for i := 0; i < tier.Switches; i++ {
			sw := net.Switches[idx]
			idx++
			if t == 0 {
				swShard[sw] = i * shards / edges
				continue
			}
			lo := i / perReach[t] * spans[t]
			hi := lo + spans[t]
			if s := sn.hostShard[lo]; s == sn.hostShard[hi-1] {
				swShard[sw] = s
			} else {
				swShard[sw] = i * shards / tier.Switches
			}
		}
	}

	shardOfNode := func(n Node) int {
		switch v := n.(type) {
		case *Host:
			return sn.hostShard[v.ID]
		case *Switch:
			return swShard[v]
		}
		return 0
	}

	// Re-home every element and install cross-links. BuildClos schedules no
	// events, so reassigning engines after the build cannot orphan state.
	rehomePort := func(pt *Port, s int) {
		pt.Eng = engines[s]
		pt.Pool = sn.Pools[s]
		sn.portsOf[s] = append(sn.portsOf[s], pt)
		if d := shardOfNode(pt.Dst); d != s {
			pt.X = &CrossLink{bar: sn.bar, src: s, dst: d}
			sn.crossed++
			la := pt.Delay + sim.TxTime(HeaderSize, pt.Rate)
			if sn.Lookahead == 0 || la < sn.Lookahead {
				sn.Lookahead = la
			}
		}
	}
	for _, h := range net.Hosts {
		s := sn.hostShard[h.ID]
		h.Eng = engines[s]
		h.Pool = sn.Pools[s]
		rehomePort(h.NIC, s)
	}
	for _, sw := range net.Switches {
		s := swShard[sw]
		sw.Eng = engines[s]
		for _, pt := range sw.Ports {
			rehomePort(pt, s)
		}
	}
	return sn
}

// Shards returns the number of shards.
func (sn *ShardedNetwork) Shards() int { return len(sn.Engines) }

// HostShard returns the shard owning a host.
func (sn *ShardedNetwork) HostShard(id NodeID) int { return sn.hostShard[id] }

// ShardHosts returns the hosts shard i owns.
func (sn *ShardedNetwork) ShardHosts(i int) []*Host { return sn.hostsOf[i] }

// ShardPorts returns every port homed on shard i, NICs included. The shard
// sets partition AllPorts: each port fires its events on exactly one shard's
// engine, which is what per-shard audit instrumentation relies on.
func (sn *ShardedNetwork) ShardPorts(i int) []*Port { return sn.portsOf[i] }

// CrossPorts returns how many ports carry a CrossLink.
func (sn *ShardedNetwork) CrossPorts() int { return sn.crossed }

// View returns the per-shard view of the network: the shared structure with
// the engine, packet pool and endpoint-host set of one shard. A protocol
// instance built over a view attaches endpoints only to the shard's own
// hosts and allocates packets only from the shard's pool.
func (sn *ShardedNetwork) View(i int) *Network {
	v := *sn.Net
	v.Eng = sn.Engines[i]
	v.Pool = sn.Pools[i]
	v.localHosts = sn.hostsOf[i]
	return &v
}

// Flush runs at a window barrier, with every shard worker parked: it merges
// the handoffs generated during the window into deterministic (time,
// srcShard, generation order) order, invokes visit for each (when non-nil —
// the audit layer's boundary accounting), and schedules each delivery on
// its destination shard's engine. Every handoff time is ≥ window start +
// Lookahead and every engine clock is at window end (start + Lookahead - 1),
// so the schedules can never land in a shard's past. Returns the number of
// handoffs exchanged.
func (sn *ShardedNetwork) Flush(visit func(h Handoff)) int {
	bar := sn.bar
	bar.scratch = bar.scratch[:0]
	for i := range bar.out {
		bar.scratch = append(bar.scratch, bar.out[i]...)
		bar.out[i] = bar.out[i][:0]
	}
	// Within one source shard the buffer is already in generation order; a
	// stable sort on (delivery time, generation time, source shard) keeps
	// it, making the merged order — and therefore the destination engines'
	// event sequence — independent of scheduling accidents, and consistent
	// with the (time, schedAt, seq) dispatch order the stamps induce.
	sort.SliceStable(bar.scratch, func(a, b int) bool {
		if bar.scratch[a].At != bar.scratch[b].At {
			return bar.scratch[a].At < bar.scratch[b].At
		}
		if bar.scratch[a].Gen != bar.scratch[b].Gen {
			return bar.scratch[a].Gen < bar.scratch[b].Gen
		}
		return bar.scratch[a].Src < bar.scratch[b].Src
	})
	// Backdating each delivery to its generation instant restores the
	// scheduling order of the sequential run: a delivery competing with a
	// locally scheduled event for the same timestamp wins exactly when its
	// packet departed before the local decision was made, which is the order
	// a single engine executing both shards would have produced.
	for _, h := range bar.scratch {
		if visit != nil {
			visit(h)
		}
		sn.Engines[h.Dst].AtHandlerFrom(h.At, h.Gen, h.P)
	}
	return len(bar.scratch)
}
