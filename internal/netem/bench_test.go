package netem

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// BenchmarkSelectiveDrop measures the Aeolus switch queue's hot path.
func BenchmarkSelectiveDrop(b *testing.B) {
	q := NewSelectiveDrop(6<<10, DefaultBuffer)
	p := dataPkt(1, 1538, false)
	s := dataPkt(2, 1538, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, 0)
		q.Enqueue(s, 0)
		q.Dequeue(0)
		q.Dequeue(0)
	}
}

// BenchmarkPrioQdisc measures the 8-band strict-priority queue.
func BenchmarkPrioQdisc(b *testing.B) {
	q := NewPrioQdisc(8, DefaultBuffer)
	pkts := make([]*Packet, 8)
	for i := range pkts {
		pkts[i] = dataPkt(uint64(i), 1538, false)
		pkts[i].Prio = uint8(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%8], 0)
		q.Dequeue(0)
	}
}

// BenchmarkXPassQdisc measures the shaped credit queue plus data path.
func BenchmarkXPassQdisc(b *testing.B) {
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(100 * sim.Gbps)})
	credit := &Packet{Type: Credit, WireSize: CreditSize}
	data := dataPkt(1, 1538, true)
	b.ReportAllocs()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		q.Enqueue(credit, now)
		q.Enqueue(data, now)
		q.Dequeue(now)
		q.Dequeue(now)
		now += sim.Time(200 * sim.Nanosecond)
	}
}

// BenchmarkFabricForwarding measures end-to-end packet cost across the
// two-tier fabric: host -> leaf -> spine -> leaf -> host.
func BenchmarkFabricForwarding(b *testing.B) {
	eng := sim.NewEngine()
	net := BuildLeafSpine(eng, 2, 2, 2, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond,
	})
	for _, h := range net.Hosts {
		h.EP = nopEndpoint{}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := dataPkt(uint64(i), 1538, true)
		p.Src, p.Dst, p.PathID = 0, 3, uint32(i)
		net.Hosts[0].Send(p)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

type nopEndpoint struct{}

func (nopEndpoint) Receive(*Packet) {}
