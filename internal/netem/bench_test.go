package netem

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/raceflag"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// BenchmarkSelectiveDrop measures the Aeolus switch queue's hot path.
func BenchmarkSelectiveDrop(b *testing.B) {
	q := NewSelectiveDrop(6<<10, DefaultBuffer)
	p := dataPkt(1, 1538, false)
	s := dataPkt(2, 1538, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, 0)
		q.Enqueue(s, 0)
		q.Dequeue(0)
		q.Dequeue(0)
	}
}

// BenchmarkPrioQdisc measures the 8-band strict-priority queue.
func BenchmarkPrioQdisc(b *testing.B) {
	q := NewPrioQdisc(8, DefaultBuffer)
	pkts := make([]*Packet, 8)
	for i := range pkts {
		pkts[i] = dataPkt(uint64(i), 1538, false)
		pkts[i].Prio = uint8(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%8], 0)
		q.Dequeue(0)
	}
}

// BenchmarkXPassQdisc measures the shaped credit queue plus data path.
func BenchmarkXPassQdisc(b *testing.B) {
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(100 * sim.Gbps)})
	credit := &Packet{Type: Credit, WireSize: CreditSize}
	data := dataPkt(1, 1538, true)
	b.ReportAllocs()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		q.Enqueue(credit, now)
		q.Enqueue(data, now)
		q.Dequeue(now)
		q.Dequeue(now)
		now += sim.Time(200 * sim.Nanosecond)
	}
}

// BenchmarkFabricForwarding measures end-to-end packet cost across the
// two-tier fabric: host -> leaf -> spine -> leaf -> host. Packets come from
// the network's pool, as they do in real runs, so the steady state recycles
// instead of allocating.
func BenchmarkFabricForwarding(b *testing.B) {
	eng := sim.NewEngine()
	net := BuildLeafSpine(eng, 2, 2, 2, TopoConfig{
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond,
	})
	for _, h := range net.Hosts {
		h.EP = nopEndpoint{}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := net.Pool.Get()
		p.Type, p.Flow, p.WireSize, p.Scheduled = Data, uint64(i), 1538, true
		p.Src, p.Dst, p.PathID = 0, 3, uint32(i)
		net.Hosts[0].Send(p)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkPortPath measures one port's enqueue -> serialize -> deliver
// cycle in isolation — the allocation-regression reference (see
// TestPortPathAllocs for the committed ceiling).
func BenchmarkPortPath(b *testing.B) {
	eng := sim.NewEngine()
	pool := NewPacketPool()
	host := &Host{ID: 0, Eng: eng, EP: nopEndpoint{}, Pool: pool}
	pt := NewPort(eng, NewFIFO(DefaultBuffer), 100*sim.Gbps, 500*sim.Nanosecond, host, "bench")
	pt.Pool = pool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.Type, p.Flow, p.WireSize, p.Scheduled = Data, uint64(i), 1538, true
		pt.Send(p)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// portPathAllocCeiling is the committed allocation budget for the port path,
// in average allocations per enqueue->deliver cycle. The steady state is
// zero; the headroom absorbs engine free-list growth on unusual schedules.
// Raising it is an allocation regression and needs a PR justifying why.
const portPathAllocCeiling = 2.0

// TestPortPathAllocs is the allocation regression gate: the steady-state
// port path must stay under portPathAllocCeiling allocations per packet
// (the pre-pooling baseline was 17).
func TestPortPathAllocs(t *testing.T) {
	eng := sim.NewEngine()
	pool := NewPacketPool()
	host := &Host{ID: 0, Eng: eng, EP: nopEndpoint{}, Pool: pool}
	pt := NewPort(eng, NewFIFO(DefaultBuffer), 100*sim.Gbps, 500*sim.Nanosecond, host, "gate")
	pt.Pool = pool
	var flow uint64
	cycle := func() {
		p := pool.Get()
		flow++
		p.Type, p.Flow, p.WireSize, p.Scheduled = Data, flow, 1538, true
		pt.Send(p)
		eng.Run()
	}
	// Warm the pool and the engine free-list before measuring.
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(1000, cycle); avg > portPathAllocCeiling {
		t.Errorf("port path allocates %.2f objects per packet, ceiling %v", avg, portPathAllocCeiling)
	}
}

// churnLivePackets is the standing live population of the slab-churn
// benchmark: 8 chunks (~450 KB of packets) so the working set spans several
// slab chunks and outsizes L1/L2 — the in-flight population of a loaded
// fabric rather than a single port's handful.
const churnLivePackets = 8 * PacketChunkSize

// BenchmarkPacketSlabChurn measures the pool's steady-state Get/Put cycle
// against the multi-chunk live set: each op retires the oldest live packet
// and replaces it, so the free-list, the reset write and the slab storage all
// churn across chunk boundaries instead of reusing one hot slot.
func BenchmarkPacketSlabChurn(b *testing.B) {
	pool := NewPacketPool()
	ring := make([]*Packet, churnLivePackets)
	for i := range ring {
		ring[i] = pool.Get()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % churnLivePackets
		pool.Put(ring[j])
		p := pool.Get()
		p.Type, p.Flow, p.WireSize = Data, uint64(i), 1538
		ring[j] = p
	}
}

// Committed slab-churn budgets for the CI smoke gate. Steady-state recycling
// allocates nothing (every Get is a free-list pop once the slab is carved);
// the ns ceiling is an order of magnitude above the recorded number so only a
// structural regression — per-Get allocation or a scattered layout — trips it.
const (
	slabChurnNsCeiling    = 500
	slabChurnAllocCeiling = 0.05
	slabGateIterations    = 20000
)

// TestPacketSlabChurnGate is the packet-slab regression gate run by
// `make bench-smoke`.
func TestPacketSlabChurnGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	pool := NewPacketPool()
	ring := make([]*Packet, churnLivePackets)
	for i := range ring {
		ring[i] = pool.Get()
	}
	var i int
	cycle := func() {
		j := i % churnLivePackets
		pool.Put(ring[j])
		p := pool.Get()
		p.Type, p.Flow, p.WireSize = Data, uint64(i), 1538
		ring[j] = p
		i++
	}
	if avg := testing.AllocsPerRun(1000, cycle); avg > slabChurnAllocCeiling {
		t.Errorf("slab churn allocates %.3f objects/op, ceiling %v", avg, slabChurnAllocCeiling)
	}
	if raceflag.Enabled {
		return // ns ceilings are meaningless under race instrumentation
	}
	res := testing.Benchmark(func(b *testing.B) {
		pool := NewPacketPool()
		ring := make([]*Packet, churnLivePackets)
		for i := range ring {
			ring[i] = pool.Get()
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			j := n % churnLivePackets
			pool.Put(ring[j])
			p := pool.Get()
			p.Type, p.Flow, p.WireSize = Data, uint64(n), 1538
			ring[j] = p
		}
	})
	if ns := res.NsPerOp(); res.N >= slabGateIterations && ns > slabChurnNsCeiling {
		t.Errorf("slab churn %d ns/op, ceiling %d", ns, slabChurnNsCeiling)
	}
}

type nopEndpoint struct{}

func (nopEndpoint) Receive(*Packet) {}
