package netem

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// PortKind tells a QdiscFactory where a port sits, so transports can install
// different disciplines at host NICs and at switch ports.
type PortKind int

// Port kinds.
const (
	HostNIC        PortKind = iota // host to first-hop switch
	SwitchToHost                   // last-hop switch down to a host
	SwitchToSwitch                 // fabric link
)

// QdiscFactory builds the queueing discipline for a port of the given kind
// and rate. Transports provide one when building a topology.
type QdiscFactory func(kind PortKind, rate sim.Rate) Qdisc

// TopoConfig carries the knobs shared by all topology builders.
type TopoConfig struct {
	HostRate   sim.Rate     // edge link rate
	CoreRate   sim.Rate     // fabric link rate; 0 means same as HostRate
	LinkDelay  sim.Duration // per-link propagation delay
	HostDelay  sim.Duration // end-host stack latency (applied at receive)
	SwitchPipe sim.Duration // switching pipeline latency
	MakeQdisc  QdiscFactory

	// FrameBytes is the full-frame serialization size baseRTT charges per
	// forward hop. Zero means WireSizeFor(MaxPayload) — the standard-MTU
	// 1538 B frame. Jumbo-MTU fabrics (NDP's 9 KB MSS) must set it to their
	// own full frame, or the derived BaseRTT/BDP undercounts serialization
	// and first-RTT metrics compare against an unrealistically small base.
	FrameBytes int
}

func (c *TopoConfig) core() sim.Rate {
	if c.CoreRate > 0 {
		return c.CoreRate
	}
	return c.HostRate
}

func (c *TopoConfig) qdisc(kind PortKind, rate sim.Rate) Qdisc {
	if c.MakeQdisc == nil {
		return NewFIFO(DefaultBuffer)
	}
	return c.MakeQdisc(kind, rate)
}

// baseRTT estimates the zero-load RTT across a path of the given link rates:
// propagation both ways, one full-frame serialization per hop forward, one
// minimum-frame serialization per hop back, switch pipelines both ways and
// the host stack delay both ways.
func baseRTT(cfg *TopoConfig, linkRates []sim.Rate, nSwitches int) sim.Duration {
	frame := cfg.FrameBytes
	if frame <= 0 {
		frame = WireSizeFor(MaxPayload)
	}
	var rtt sim.Duration
	for _, r := range linkRates {
		rtt += 2*cfg.LinkDelay + sim.TxTime(frame, r) + sim.TxTime(HeaderSize, r)
	}
	rtt += 2 * sim.Duration(nSwitches) * cfg.SwitchPipe
	rtt += 2 * cfg.HostDelay
	return rtt
}

func newHost(eng *sim.Engine, id NodeID, cfg *TopoConfig) *Host {
	return &Host{ID: id, Eng: eng, HostDelay: cfg.HostDelay}
}

// BuildSingleSwitch wires n hosts to one switch — the shape of the paper's
// hardware testbed (8 servers on a Mellanox SN2000 at 10 Gbps, §5.1).
func BuildSingleSwitch(eng *sim.Engine, n int, cfg TopoConfig) *Network {
	sw := &Switch{ID: NodeID(1000), Eng: eng, PipeDelay: cfg.SwitchPipe, Label: "sw0"}
	net := &Network{Eng: eng, Switches: []*Switch{sw}, HostRate: cfg.HostRate}
	sw.Table = make([][]int32, n)
	for i := 0; i < n; i++ {
		h := newHost(eng, NodeID(i), &cfg)
		h.NIC = NewPort(eng, cfg.qdisc(HostNIC, cfg.HostRate), cfg.HostRate, cfg.LinkDelay, sw,
			fmt.Sprintf("h%d->sw0", i))
		down := NewPort(eng, cfg.qdisc(SwitchToHost, cfg.HostRate), cfg.HostRate, cfg.LinkDelay, h,
			fmt.Sprintf("sw0->h%d", i))
		sw.Ports = append(sw.Ports, down)
		sw.Table[i] = []int32{int32(len(sw.Ports) - 1)}
		net.Hosts = append(net.Hosts, h)
	}
	net.BaseRTT = baseRTT(&cfg, []sim.Rate{cfg.HostRate, cfg.HostRate}, 1)
	net.attachPool(NewPacketPool())
	return net
}

// BuildLeafSpine wires a two-tier Clos: nLeaf leaf switches each with
// hostsPerLeaf hosts, fully meshed to nSpine spine switches. This is the
// Homa/NDP evaluation topology (8 spines, 8 leaves, 64 hosts at 100 Gbps,
// base RTT 4.5 µs) and, with CoreRate set, the Fig. 17 heavy-incast fabric
// (4 spines, 9 leaves, 144 hosts, 100G edge / 400G core).
func BuildLeafSpine(eng *sim.Engine, nSpine, nLeaf, hostsPerLeaf int, cfg TopoConfig) *Network {
	nHosts := nLeaf * hostsPerLeaf
	core := cfg.core()
	net := &Network{Eng: eng, HostRate: cfg.HostRate}

	leaves := make([]*Switch, nLeaf)
	spines := make([]*Switch, nSpine)
	for l := 0; l < nLeaf; l++ {
		leaves[l] = &Switch{ID: NodeID(1000 + l), Eng: eng, PipeDelay: cfg.SwitchPipe,
			Label: fmt.Sprintf("leaf%d", l), Table: make([][]int32, nHosts)}
	}
	for s := 0; s < nSpine; s++ {
		spines[s] = &Switch{ID: NodeID(2000 + s), Eng: eng, PipeDelay: cfg.SwitchPipe,
			Label: fmt.Sprintf("spine%d", s), Table: make([][]int32, nHosts)}
	}

	// Hosts and leaf down-ports.
	for l := 0; l < nLeaf; l++ {
		for k := 0; k < hostsPerLeaf; k++ {
			id := NodeID(l*hostsPerLeaf + k)
			h := newHost(eng, id, &cfg)
			h.NIC = NewPort(eng, cfg.qdisc(HostNIC, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				leaves[l], fmt.Sprintf("h%d->leaf%d", id, l))
			down := NewPort(eng, cfg.qdisc(SwitchToHost, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				h, fmt.Sprintf("leaf%d->h%d", l, id))
			leaves[l].Ports = append(leaves[l].Ports, down)
			leaves[l].Table[id] = []int32{int32(len(leaves[l].Ports) - 1)}
			net.Hosts = append(net.Hosts, h)
		}
	}

	// Leaf-spine mesh. Uplink port order is by spine index on every leaf and
	// down-port order is by leaf index on every spine, so forward and reverse
	// ECMP choices with the same PathID traverse the same spine.
	for l := 0; l < nLeaf; l++ {
		var uplinks []int32
		for s := 0; s < nSpine; s++ {
			up := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
				spines[s], fmt.Sprintf("leaf%d->spine%d", l, s))
			leaves[l].Ports = append(leaves[l].Ports, up)
			uplinks = append(uplinks, int32(len(leaves[l].Ports)-1))
		}
		for id := 0; id < nHosts; id++ {
			if id/hostsPerLeaf != l {
				leaves[l].Table[id] = uplinks
			}
		}
	}
	for s := 0; s < nSpine; s++ {
		for l := 0; l < nLeaf; l++ {
			down := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
				leaves[l], fmt.Sprintf("spine%d->leaf%d", s, l))
			spines[s].Ports = append(spines[s].Ports, down)
			for k := 0; k < hostsPerLeaf; k++ {
				spines[s].Table[l*hostsPerLeaf+k] = []int32{int32(len(spines[s].Ports) - 1)}
			}
		}
	}

	net.Switches = append(net.Switches, leaves...)
	net.Switches = append(net.Switches, spines...)
	net.BaseRTT = baseRTT(&cfg, []sim.Rate{cfg.HostRate, core, core, cfg.HostRate}, 3)
	net.attachPool(NewPacketPool())
	return net
}

// FatTreeShape sizes a three-tier oversubscribed fabric.
type FatTreeShape struct {
	Spines      int // spine switches
	Leaves      int // leaf (aggregation) switches
	ToRs        int // top-of-rack switches
	HostsPerToR int
	ToRUplinks  int // parallel links from each ToR to its parent leaf
}

// ExpressPassShape is the topology of the ExpressPass evaluation reused by
// the Aeolus paper (§5.1): 8 spines, 16 leaves, 32 ToRs, 192 servers, with a
// 3:1 oversubscription at the ToR (6 host links down, 2 uplinks).
var ExpressPassShape = FatTreeShape{Spines: 8, Leaves: 16, ToRs: 32, HostsPerToR: 6, ToRUplinks: 2}

// BuildFatTree3 wires a three-tier fabric: hosts–ToR–leaf–spine, with
// ToRs/Leaves ToRs under each leaf and every leaf meshed to all spines.
func BuildFatTree3(eng *sim.Engine, shape FatTreeShape, cfg TopoConfig) *Network {
	if shape.ToRs%shape.Leaves != 0 {
		panic("netem: ToR count must divide evenly among leaves")
	}
	torsPerLeaf := shape.ToRs / shape.Leaves
	nHosts := shape.ToRs * shape.HostsPerToR
	core := cfg.core()
	net := &Network{Eng: eng, HostRate: cfg.HostRate}

	tors := make([]*Switch, shape.ToRs)
	leaves := make([]*Switch, shape.Leaves)
	spines := make([]*Switch, shape.Spines)
	for t := range tors {
		tors[t] = &Switch{ID: NodeID(1000 + t), Eng: eng, PipeDelay: cfg.SwitchPipe,
			Label: fmt.Sprintf("tor%d", t), Table: make([][]int32, nHosts)}
	}
	for l := range leaves {
		leaves[l] = &Switch{ID: NodeID(2000 + l), Eng: eng, PipeDelay: cfg.SwitchPipe,
			Label: fmt.Sprintf("leaf%d", l), Table: make([][]int32, nHosts)}
	}
	for s := range spines {
		spines[s] = &Switch{ID: NodeID(3000 + s), Eng: eng, PipeDelay: cfg.SwitchPipe,
			Label: fmt.Sprintf("spine%d", s), Table: make([][]int32, nHosts)}
	}

	// Hosts and ToR down-ports.
	for t := 0; t < shape.ToRs; t++ {
		for k := 0; k < shape.HostsPerToR; k++ {
			id := NodeID(t*shape.HostsPerToR + k)
			h := newHost(eng, id, &cfg)
			h.NIC = NewPort(eng, cfg.qdisc(HostNIC, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				tors[t], fmt.Sprintf("h%d->tor%d", id, t))
			down := NewPort(eng, cfg.qdisc(SwitchToHost, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				h, fmt.Sprintf("tor%d->h%d", t, id))
			tors[t].Ports = append(tors[t].Ports, down)
			tors[t].Table[id] = []int32{int32(len(tors[t].Ports) - 1)}
			net.Hosts = append(net.Hosts, h)
		}
	}

	// ToR uplinks: parallel links to the parent leaf.
	for t := 0; t < shape.ToRs; t++ {
		parent := leaves[t/torsPerLeaf]
		var uplinks []int32
		for u := 0; u < shape.ToRUplinks; u++ {
			up := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
				parent, fmt.Sprintf("tor%d->leaf%d.%d", t, t/torsPerLeaf, u))
			tors[t].Ports = append(tors[t].Ports, up)
			uplinks = append(uplinks, int32(len(tors[t].Ports)-1))
		}
		for id := 0; id < nHosts; id++ {
			if id/shape.HostsPerToR != t {
				tors[t].Table[id] = uplinks
			}
		}
	}

	// Leaf down-ports (parallel, mirroring ToR uplinks) and leaf-spine mesh.
	for l := 0; l < shape.Leaves; l++ {
		for ti := 0; ti < torsPerLeaf; ti++ {
			t := l*torsPerLeaf + ti
			var downs []int32
			for u := 0; u < shape.ToRUplinks; u++ {
				down := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
					tors[t], fmt.Sprintf("leaf%d->tor%d.%d", l, t, u))
				leaves[l].Ports = append(leaves[l].Ports, down)
				downs = append(downs, int32(len(leaves[l].Ports)-1))
			}
			for k := 0; k < shape.HostsPerToR; k++ {
				leaves[l].Table[t*shape.HostsPerToR+k] = downs
			}
		}
		var uplinks []int32
		for s := 0; s < shape.Spines; s++ {
			up := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
				spines[s], fmt.Sprintf("leaf%d->spine%d", l, s))
			leaves[l].Ports = append(leaves[l].Ports, up)
			uplinks = append(uplinks, int32(len(leaves[l].Ports)-1))
		}
		for id := 0; id < nHosts; id++ {
			if id/(shape.HostsPerToR*torsPerLeaf) != l {
				leaves[l].Table[id] = uplinks
			}
		}
	}

	// Spine down-ports.
	for s := 0; s < shape.Spines; s++ {
		for l := 0; l < shape.Leaves; l++ {
			down := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
				leaves[l], fmt.Sprintf("spine%d->leaf%d", s, l))
			spines[s].Ports = append(spines[s].Ports, down)
			for id := 0; id < nHosts; id++ {
				if id/(shape.HostsPerToR*torsPerLeaf) == l {
					spines[s].Table[id] = append(spines[s].Table[id], int32(len(spines[s].Ports)-1))
				}
			}
		}
	}

	net.Switches = append(net.Switches, tors...)
	net.Switches = append(net.Switches, leaves...)
	net.Switches = append(net.Switches, spines...)
	net.BaseRTT = baseRTT(&cfg,
		[]sim.Rate{cfg.HostRate, core, core, core, core, cfg.HostRate}, 5)
	net.attachPool(NewPacketPool())
	return net
}
