package netem

import (
	"reflect"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// timelineSeeds is the fuzz seed corpus, also run as a plain test so every
// `go test` exercises it (mirrors the scheduler-equivalence corpus).
var timelineSeeds = []string{
	"",
	"# only a comment\n",
	"0s * loss rate=0.01 nth=0 match=all\n",
	"0s * loss rate=0 nth=7 match=data\n50ms sw0->h1 fail\n100ms sw0->h1 restore\n",
	"1ms leaf*->spine* blackhole\n2ms leaf*->spine* restore\n",
	"60ms leaf0->* rate cap=10Gbps\n70ms leaf0->* rate cap=0bps\n",
	"0s h*->* delay add=2us jitter=10us\n",
	"123ps x loss rate=0.5\n",
	"1.5us sw* loss rate=1e-3 match=unsched\n",
	"0s spine*->* ge p=0.001 r=0.1 good=0 bad=1 match=data\n",
	"2ms * ge p=0.05 r=0.5 good=0.001 bad=0.9\n",
	`[{"at_ps":0,"target":"*","action":"ge","p":0.01,"r":0.2,"bad":1}]`,
	`[{"at_ps":50000000000,"target":"sw0->h1","action":"fail"},{"at_ps":100000000000,"target":"sw0->h1","action":"restore"}]`,
	`[{"at_ps":0,"target":"*","action":"loss","rate":0.01}]`,
	`[]`,
	// Malformed inputs: must error, not panic.
	"0s\n",
	"0s * explode\n",
	"-5ms * fail\n",
	"0s * loss rate=1.5\n",
	"0s * loss rate=NaN\n",
	"0s * fail rate=0.5\n",
	"0s * rate cap=-3bps\n",
	"0s * delay add=oops\n",
	"0s * ge p=1.5\n",
	"0s * ge p=0.1 r=0.1 match=explode\n",
	"0s * loss rate=0.1 p=0.5\n",
	"0s * fail good=0.5\n",
	"9e999s * fail\n",
	`[{"at_ps":-1,"target":"*","action":"fail"}]`,
	`[{"target":"*","action":"fail","bogus":1}]`,
	`[{"target":"a b","action":"fail"}]`,
}

// checkRoundTrip asserts the parse → render → parse identity for one
// accepted timeline, through both renderers.
func checkRoundTrip(t *testing.T, tl *Timeline) {
	t.Helper()
	text := tl.Text()
	tl2, err := ParseTimeline("text-round-trip", []byte(text))
	if err != nil {
		t.Fatalf("Text() of accepted timeline failed to reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(tl, tl2) {
		t.Fatalf("text round trip changed the timeline:\n%+v\n->\n%+v\nvia\n%s", tl, tl2, text)
	}
	js, err := tl.JSON()
	if err != nil {
		t.Fatalf("JSON() of accepted timeline failed: %v", err)
	}
	tl3, err := ParseTimeline("json-round-trip", js)
	if err != nil {
		t.Fatalf("JSON() of accepted timeline failed to reparse: %v\n%s", err, js)
	}
	if !reflect.DeepEqual(tl, tl3) {
		t.Fatalf("json round trip changed the timeline:\n%+v\n->\n%+v\nvia\n%s", tl, tl3, js)
	}
}

// TestImpairmentTimelineSeeds runs the checked-in fuzz corpus as a plain
// test: every seed either parses and round-trips exactly or errors cleanly.
func TestImpairmentTimelineSeeds(t *testing.T) {
	for i, seed := range timelineSeeds {
		tl, err := ParseTimeline("seed", []byte(seed))
		if err != nil {
			continue
		}
		if tl == nil {
			t.Fatalf("seed %d: nil timeline without error", i)
		}
		checkRoundTrip(t, tl)
	}
}

func TestParseTimelineText(t *testing.T) {
	tl, err := ParseTimeline("t", []byte(
		"# flap with background loss\n"+
			"0s * loss rate=0.01   # throughout\n"+
			"50ms sw0->h1 fail\n"+
			"100ms sw0->h1 restore\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := &Timeline{Steps: []TimelineStep{
		{At: 0, Target: "*", Action: ActLoss, Rate: 0.01},
		{At: 50 * sim.Millisecond, Target: "sw0->h1", Action: ActFail},
		{At: 100 * sim.Millisecond, Target: "sw0->h1", Action: ActRestore},
	}}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("parsed %+v, want %+v", tl, want)
	}
	checkRoundTrip(t, tl)
}

func TestParseTimelineRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{"too few fields", "0s *\n", "want"},
		{"bad at", "xyz * fail\n", "bad duration"},
		{"negative at", "-1ms * fail\n", "negative"},
		{"unknown action", "0s * explode\n", "unknown action"},
		{"rate above one", "0s * loss rate=1.5\n", "[0,1]"},
		{"nan rate", "0s * loss rate=NaN\n", "[0,1]"},
		{"negative nth", "0s * loss nth=-2\n", "negative nth"},
		{"bad match", "0s * loss match=bogus\n", "match class"},
		{"foreign param", "0s * fail rate=0.5\n", "takes no"},
		{"delay on rate", "0s * rate cap=1Gbps add=1us\n", "takes no"},
		{"negative cap", "0s * rate cap=-3bps\n", "negative"},
		{"bad kv", "0s * loss rate\n", "not key=value"},
		{"unknown key", "0s * loss frobnicate=1\n", "unknown parameter"},
		{"empty target via json", `[{"at_ps":0,"target":"","action":"fail"}]`, "empty target"},
		{"target with space via json", `[{"at_ps":0,"target":"a b","action":"fail"}]`, "bad character"},
		{"unknown json field", `[{"at_ps":0,"target":"*","action":"fail","bogus":1}]`, "bogus"},
	}
	for _, c := range cases {
		_, err := ParseTimeline(c.name, []byte(c.text))
		if err == nil {
			t.Errorf("%s: accepted malformed input", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "leaf0->spine1", true},
		{"leaf0->*", "leaf0->spine1", true},
		{"leaf0->*", "leaf1->spine1", false},
		{"*->spine1", "leaf0->spine1", true},
		{"leaf*->spine*", "leaf3->spine7", true},
		{"sw0->h1", "sw0->h1", true},
		{"sw0->h1", "sw0->h10", false},
		{"*h1", "sw0->h1", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pattern, c.s); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// TestTimelineApply compiles a flap-plus-loss script onto a real topology and
// checks scheduling, per-port wrapping and drop attribution end to end.
func TestTimelineApply(t *testing.T) {
	net := BuildSingleSwitch(sim.NewEngine(), 2,
		TopoConfig{HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond})
	tl, err := ParseTimeline("t", []byte(
		"0s sw0->h1 loss rate=1\n"+
			"10us sw0->h1 loss rate=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	set, err := tl.Apply(net, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Controllers) != 1 {
		t.Fatalf("%d controllers, want 1 (only sw0->h1 targeted)", len(set.Controllers))
	}
	send := func() {
		p := net.Pool.Get()
		p.Type, p.Dst, p.WireSize = Data, 1, 1000
		net.Switches[0].Receive(p)
	}
	net.Eng.At(sim.Time(5*sim.Microsecond), send)  // during rate-1 loss
	net.Eng.At(sim.Time(20*sim.Microsecond), send) // after loss cleared
	net.Eng.Run()
	if got := set.InjectedDrops(); got != 1 {
		t.Fatalf("injected drops = %d, want 1", got)
	}
	if h := net.Hosts[1]; h.RxPackets != 1 {
		t.Fatalf("host received %d packets, want 1", h.RxPackets)
	}
	if live := net.Pool.Live(); live != 0 {
		t.Fatalf("%d packets leaked", live)
	}
}

func TestTimelineApplyRejectsUnmatchedTarget(t *testing.T) {
	net := BuildSingleSwitch(sim.NewEngine(), 2,
		TopoConfig{HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond})
	tl, err := ParseTimeline("t", []byte("0s nosuch->port fail\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Apply(net, 1); err == nil {
		t.Fatal("timeline targeting no port must be rejected")
	}
}

// FuzzImpairmentTimeline feeds arbitrary bytes through both timeline parsers.
// The contract mirrors FuzzCDFParse: malformed input returns an error — never
// a panic — and accepted input survives parse → render → parse in both the
// text and JSON forms with an identical in-memory timeline.
func FuzzImpairmentTimeline(f *testing.F) {
	for _, seed := range timelineSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tl, err := ParseTimeline("fuzz", data)
		if err != nil {
			return
		}
		checkRoundTrip(t, tl)
	})
}
