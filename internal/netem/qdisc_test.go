package netem

import (
	"testing"
	"testing/quick"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func dataPkt(flow uint64, size int, scheduled bool) *Packet {
	return &Packet{Type: Data, Flow: flow, PayloadLen: size - FrameOverhead, WireSize: size, Scheduled: scheduled}
}

func TestFIFOOrderAndLimit(t *testing.T) {
	q := NewFIFO(3000)
	a, b, c := dataPkt(1, 1500, false), dataPkt(2, 1500, false), dataPkt(3, 1500, false)
	if !q.Enqueue(a, 0) || !q.Enqueue(b, 0) {
		t.Fatal("enqueue within limit failed")
	}
	if q.Enqueue(c, 0) {
		t.Fatal("enqueue over limit succeeded")
	}
	if q.Drops[DropTailFull] != 1 {
		t.Fatalf("tail drops = %d, want 1", q.Drops[DropTailFull])
	}
	if got := q.Dequeue(0); got != a {
		t.Fatalf("first dequeue = %v, want a", got)
	}
	if got := q.Dequeue(0); got != b {
		t.Fatalf("second dequeue = %v, want b", got)
	}
	if got := q.Dequeue(0); got != nil {
		t.Fatalf("dequeue from empty = %v, want nil", got)
	}
}

func TestFIFOUnlimited(t *testing.T) {
	q := NewFIFO(0)
	for i := 0; i < 10000; i++ {
		if !q.Enqueue(dataPkt(uint64(i), 1538, false), 0) {
			t.Fatal("unlimited FIFO dropped")
		}
	}
	if q.Backlog().Packets != 10000 {
		t.Fatalf("backlog = %d, want 10000", q.Backlog().Packets)
	}
}

func TestFIFOCompaction(t *testing.T) {
	q := NewFIFO(0)
	// Interleave enqueue/dequeue so head grows past the compaction trigger.
	var inFlight int
	for i := 0; i < 50000; i++ {
		q.Enqueue(dataPkt(uint64(i), 100, false), 0)
		inFlight++
		if inFlight > 3 {
			if q.Dequeue(0) == nil {
				t.Fatal("dequeue returned nil with backlog")
			}
			inFlight--
		}
	}
	if got := q.Backlog().Packets; got != inFlight {
		t.Fatalf("backlog = %d, want %d", got, inFlight)
	}
}

func TestSelectiveDropThreshold(t *testing.T) {
	// 6 KB threshold with 1538 B frames: exactly 4 unscheduled fit, 5th dropped.
	q := NewSelectiveDrop(6000, DefaultBuffer)
	for i := 0; i < 4; i++ {
		if !q.Enqueue(dataPkt(uint64(i), 1500, false), 0) {
			t.Fatalf("unscheduled packet %d below threshold dropped", i)
		}
	}
	if q.Enqueue(dataPkt(9, 1500, false), 0) {
		t.Fatal("unscheduled packet above threshold accepted")
	}
	if q.Drops[DropSelective] != 1 {
		t.Fatalf("selective drops = %d, want 1", q.Drops[DropSelective])
	}
	// Scheduled packets pass the threshold up to the buffer bound.
	for i := 0; i < 100; i++ {
		if !q.Enqueue(dataPkt(uint64(100+i), 1500, true), 0) {
			t.Fatalf("scheduled packet %d dropped below buffer bound (backlog %v)", i, q.Backlog())
		}
	}
	// Control packets are protected too (§3.3: probes/ACKs are scheduled).
	probe := &Packet{Type: Probe, WireSize: ProbeSize}
	if !q.Enqueue(probe, 0) {
		t.Fatal("control packet dropped by selective dropping")
	}
}

func TestSelectiveDropBufferBound(t *testing.T) {
	q := NewSelectiveDrop(6000, 10000)
	for i := 0; i < 6; i++ {
		q.Enqueue(dataPkt(uint64(i), 1500, true), 0)
	}
	// 9000 queued; a 1500 B scheduled packet would exceed the 10 KB buffer.
	if q.Enqueue(dataPkt(99, 1500, true), 0) {
		t.Fatal("scheduled packet above buffer bound accepted")
	}
	if q.Drops[DropTailFull] != 1 {
		t.Fatalf("tail drops = %d, want 1", q.Drops[DropTailFull])
	}
}

// Property: in any interleaving of scheduled/unscheduled enqueues, selective
// dropping never discards a scheduled packet while the buffer has room, and
// accounting is conserved: enqueued = dequeued + dropped + backlog.
func TestSelectiveDropConservationProperty(t *testing.T) {
	prop := func(ops []byte) bool {
		q := NewSelectiveDrop(6000, 50000)
		accepted, dropped, dequeued := 0, 0, 0
		for i, op := range ops {
			switch op % 3 {
			case 0:
				p := dataPkt(uint64(i), 1500, false)
				if q.Enqueue(p, 0) {
					accepted++
				} else {
					dropped++
				}
			case 1:
				p := dataPkt(uint64(i), 1500, true)
				if q.Enqueue(p, 0) {
					accepted++
				} else {
					return false // scheduled must never drop below 50 KB here
				}
				if q.Backlog().Bytes > 50000 {
					return false
				}
			case 2:
				if q.Dequeue(0) != nil {
					dequeued++
				}
			}
			// Scheduled enqueues can push backlog past 50 KB? No: bounded.
			if q.Backlog().Bytes > 50000 {
				return false
			}
		}
		return accepted == dequeued+q.Backlog().Packets &&
			int(q.TotalDrops()) == dropped
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPrioQdiscStrictOrder(t *testing.T) {
	q := NewPrioQdisc(8, DefaultBuffer)
	lo := dataPkt(1, 1500, false)
	lo.Prio = 7
	hi := dataPkt(2, 1500, true)
	hi.Prio = 0
	mid := dataPkt(3, 1500, true)
	mid.Prio = 3
	q.Enqueue(lo, 0)
	q.Enqueue(mid, 0)
	q.Enqueue(hi, 0)
	want := []*Packet{hi, mid, lo}
	for i, w := range want {
		if got := q.Dequeue(0); got != w {
			t.Fatalf("dequeue %d = %v, want %v", i, got, w)
		}
	}
}

func TestPrioQdiscSharedBufferStarvation(t *testing.T) {
	// Reproduce the Table 5 pathology: low-priority packets fill the shared
	// buffer and a high-priority arrival is tail-dropped.
	q := NewPrioQdisc(2, 15380)
	for i := 0; i < 10; i++ {
		p := dataPkt(uint64(i), 1538, false)
		p.Prio = 1
		if !q.Enqueue(p, 0) {
			t.Fatalf("low-prio fill %d dropped early", i)
		}
	}
	hi := dataPkt(99, 1538, true)
	hi.Prio = 0
	if q.Enqueue(hi, 0) {
		t.Fatal("high-priority packet accepted into a full shared buffer")
	}
	if q.Drops[DropTailFull] != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops[DropTailFull])
	}
}

func TestPrioQdiscClampsOutOfRangeBand(t *testing.T) {
	q := NewPrioQdisc(2, DefaultBuffer)
	p := dataPkt(1, 100, false)
	p.Prio = 200
	if !q.Enqueue(p, 0) {
		t.Fatal("out-of-range priority dropped")
	}
	if got := q.Dequeue(0); got != p {
		t.Fatal("clamped packet not dequeued")
	}
}

func TestNDPQueueTrims(t *testing.T) {
	q := NewNDPQueue(NDPQueueConfig{Trim: true, DataLimitBytes: 4 * 9000})
	for i := 0; i < 4; i++ {
		if !q.Enqueue(dataPkt(uint64(i), 9000, false), 0) {
			t.Fatalf("data packet %d dropped below limit", i)
		}
	}
	p := dataPkt(9, 9000, false)
	if !q.Enqueue(p, 0) {
		t.Fatal("overflow packet dropped instead of trimmed")
	}
	if !p.Trimmed || p.WireSize != HeaderSize || p.PayloadLen != 0 {
		t.Fatalf("packet not trimmed: %v", p)
	}
	if q.Trimmed() != 1 {
		t.Fatalf("Trimmed() = %d, want 1", q.Trimmed())
	}
	// The trimmed header must come out before the queued data.
	if got := q.Dequeue(0); got != p {
		t.Fatalf("first dequeue = %v, want trimmed header", got)
	}
}

func TestNDPQueueControlPriority(t *testing.T) {
	q := NewNDPQueue(NDPQueueConfig{Trim: true})
	d := dataPkt(1, 9000, false)
	q.Enqueue(d, 0)
	pull := &Packet{Type: Pull, WireSize: HeaderSize}
	q.Enqueue(pull, 0)
	if got := q.Dequeue(0); got != pull {
		t.Fatalf("control packet did not preempt data: got %v", got)
	}
	if got := q.Dequeue(0); got != d {
		t.Fatalf("data lost: got %v", got)
	}
}

func TestNDPQueueSelectiveMode(t *testing.T) {
	// NDP+Aeolus: selective dropping instead of trimming.
	q := NewNDPQueue(NDPQueueConfig{SelectiveThresholdBytes: 6000, DataLimitBytes: DefaultBuffer})
	for i := 0; i < 4; i++ {
		if !q.Enqueue(dataPkt(uint64(i), 1500, false), 0) {
			t.Fatalf("unscheduled %d dropped below threshold", i)
		}
	}
	over := dataPkt(9, 1500, false)
	if q.Enqueue(over, 0) {
		t.Fatal("unscheduled packet above threshold accepted")
	}
	if over.Trimmed {
		t.Fatal("selective mode trimmed instead of dropping")
	}
	if !q.Enqueue(dataPkt(10, 1500, true), 0) {
		t.Fatal("scheduled packet dropped below data limit")
	}
}

func TestXPassQdiscShaping(t *testing.T) {
	eng := sim.NewEngine()
	link := sim.Rate(10 * sim.Gbps)
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(link)})
	gap := sim.TxTime(CreditSize, CreditRateFor(link))

	mkCredit := func(i uint64) *Packet {
		return &Packet{Type: Credit, Flow: i, WireSize: CreditSize}
	}
	q.Enqueue(mkCredit(1), eng.Now())
	q.Enqueue(mkCredit(2), eng.Now())

	if p := q.Dequeue(0); p == nil || p.Type != Credit {
		t.Fatal("first credit not released immediately")
	}
	if p := q.Dequeue(0); p != nil {
		t.Fatal("second credit released before shaper gap")
	}
	if w := q.NextWake(0); w != sim.Time(gap) {
		t.Fatalf("NextWake = %v, want %v", w, sim.Time(gap))
	}
	if p := q.Dequeue(sim.Time(gap)); p == nil {
		t.Fatal("second credit not released after shaper gap")
	}
}

func TestXPassQdiscCreditOverflow(t *testing.T) {
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(10 * sim.Gbps), CreditLimit: 3})
	for i := 0; i < 3; i++ {
		if !q.Enqueue(&Packet{Type: Credit, WireSize: CreditSize}, 0) {
			t.Fatalf("credit %d dropped below limit", i)
		}
	}
	if q.Enqueue(&Packet{Type: Credit, WireSize: CreditSize}, 0) {
		t.Fatal("credit accepted above limit")
	}
	if q.CreditDrops() != 1 {
		t.Fatalf("credit drops = %d, want 1", q.CreditDrops())
	}
}

func TestXPassQdiscDataBypassesShaper(t *testing.T) {
	q := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(10 * sim.Gbps)})
	d := dataPkt(1, 1538, true)
	q.Enqueue(d, 0)
	q.Enqueue(&Packet{Type: Credit, WireSize: CreditSize}, 0)
	// Credit is ready at t=0, so it is served first; data follows without
	// waiting for the shaper.
	if p := q.Dequeue(0); p.Type != Credit {
		t.Fatalf("first dequeue = %v, want credit", p)
	}
	if p := q.Dequeue(0); p != d {
		t.Fatalf("second dequeue = %v, want data", p)
	}
}

func TestCreditRateFor(t *testing.T) {
	r := CreditRateFor(100 * sim.Gbps)
	// 100G * 84/1538 ≈ 5.46 Gbps.
	if r < 5*sim.Gbps || r > 6*sim.Gbps {
		t.Fatalf("CreditRateFor(100G) = %v, want ≈5.46Gbps", r)
	}
}

func TestDropReasonString(t *testing.T) {
	if DropSelective.String() != "selective" || DropReason(99).String() != "unknown" {
		t.Fatal("DropReason.String mismatch")
	}
}

func TestPacketString(t *testing.T) {
	p := dataPkt(7, 1538, true)
	p.Src, p.Dst = 1, 2
	s := p.String()
	if s == "" || p.Type.String() != "DATA" {
		t.Fatalf("unexpected String: %q", s)
	}
	if PacketType(200).String() == "" {
		t.Fatal("unknown packet type String empty")
	}
}

func TestTrim(t *testing.T) {
	p := dataPkt(1, 9000, false)
	p.Trim()
	if !p.Trimmed || p.WireSize != HeaderSize || p.PayloadLen != 0 {
		t.Fatalf("Trim left %v", p)
	}
}
