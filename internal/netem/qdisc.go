package netem

import (
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// DropReason classifies why a queueing discipline discarded a packet.
type DropReason uint8

// Drop reasons.
const (
	DropTailFull   DropReason = iota // buffer exhausted
	DropSelective                    // Aeolus selective dropping (unscheduled over threshold)
	DropCreditOver                   // ExpressPass credit queue overflow
	DropTrimFail                     // NDP control queue full, trimmed header lost
	DropImpairment                   // injected by the link-impairment layer (loss, blackhole, failed link)

	numDropReasons // sentinel: must stay last
)

// NumDropReasons is the number of distinct DropReason values; every
// by-reason counter array is sized from it.
const NumDropReasons = int(numDropReasons)

var dropReasonNames = [...]string{"tail", "selective", "credit", "trim-fail", "impair"}

// Compile-time guard: dropReasonNames must name every DropReason. Each line
// overflows uint (a compile error) if one side lags the other.
const (
	_ = uint(NumDropReasons - len(dropReasonNames))
	_ = uint(len(dropReasonNames) - NumDropReasons)
)

// String names the drop reason.
func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return "unknown"
}

// DropHook observes every packet a qdisc discards.
type DropHook func(p *Packet, reason DropReason)

// Backlog is an instantaneous queue occupancy measurement.
type Backlog struct {
	Packets int
	Bytes   int64
}

// Qdisc is a queueing discipline attached to an output port. Enqueue may
// accept, discard, or mutate (trim) the packet; Dequeue returns the next
// packet eligible for transmission, or nil if none is eligible right now.
// Shaped disciplines (the ExpressPass credit queue) may hold eligible packets
// until a future instant, which they advertise through NextWake.
type Qdisc interface {
	// Enqueue offers p to the queue at the current instant. It returns true
	// if the packet was queued (possibly mutated), false if it was dropped.
	Enqueue(p *Packet, now sim.Time) bool

	// Dequeue removes and returns the next transmittable packet, or nil.
	Dequeue(now sim.Time) *Packet

	// NextWake returns the earliest future instant at which Dequeue may
	// return a packet even without further Enqueue calls, or sim.MaxTime if
	// no such instant exists. Unshaped disciplines always return MaxTime.
	NextWake(now sim.Time) sim.Time

	// Backlog reports current occupancy (all internal queues combined).
	Backlog() Backlog

	// SetDropHook installs a drop observer (at most one; nil clears it).
	SetDropHook(h DropHook)
}

// DropCounter tallies drops by reason; embed it in qdisc implementations.
type DropCounter struct {
	hook  DropHook
	Drops [NumDropReasons]uint64 // indexed by DropReason
}

// SetDropHook installs the observer.
func (d *DropCounter) SetDropHook(h DropHook) { d.hook = h }

// Counter exposes the counter itself, so aggregation helpers (DropTotals)
// reach the tallies of any discipline embedding DropCounter — including ones
// defined outside this package — without a per-type case.
func (d *DropCounter) Counter() *DropCounter { return d }

func (d *DropCounter) drop(p *Packet, r DropReason) {
	d.Drops[r]++
	if d.hook != nil {
		d.hook(p, r)
	}
}

// Drop records a discarded packet. It is exported so qdisc implementations
// outside this package can reuse the counter/hook plumbing.
func (d *DropCounter) Drop(p *Packet, r DropReason) { d.drop(p, r) }

// TotalDrops sums drops across all reasons.
func (d *DropCounter) TotalDrops() uint64 {
	var s uint64
	for _, v := range d.Drops {
		s += v
	}
	return s
}

// fifo is the byte-accounted packet FIFO underlying most disciplines. The
// zero value is ready to use.
type fifo struct {
	pkts  []*Packet
	head  int
	bytes int64
}

func (f *fifo) push(p *Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += int64(p.WireSize)
}

func (f *fifo) pop() *Packet {
	if f.head == len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= int64(p.WireSize)
	if f.head == len(f.pkts) {
		f.pkts = f.pkts[:0]
		f.head = 0
	} else if f.head > 1024 && f.head*2 > len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		for i := n; i < len(f.pkts); i++ {
			f.pkts[i] = nil
		}
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int    { return len(f.pkts) - f.head }
func (f *fifo) size() int64 { return f.bytes }
func (f *fifo) empty() bool { return f.head == len(f.pkts) }

// FIFO is a drop-tail queue with a byte limit. LimitBytes <= 0 means
// unlimited (useful for host NICs, which model an unbounded send buffer).
type FIFO struct {
	DropCounter
	LimitBytes int64
	q          fifo
	maxBytes   int64
}

// NewFIFO returns a drop-tail FIFO bounded to limitBytes.
func NewFIFO(limitBytes int64) *FIFO { return &FIFO{LimitBytes: limitBytes} }

// Enqueue implements Qdisc.
func (q *FIFO) Enqueue(p *Packet, _ sim.Time) bool {
	if q.LimitBytes > 0 && q.q.size()+int64(p.WireSize) > q.LimitBytes {
		q.drop(p, DropTailFull)
		return false
	}
	q.q.push(p)
	if q.q.size() > q.maxBytes {
		q.maxBytes = q.q.size()
	}
	return true
}

// Dequeue implements Qdisc.
func (q *FIFO) Dequeue(_ sim.Time) *Packet { return q.q.pop() }

// NextWake implements Qdisc.
func (q *FIFO) NextWake(_ sim.Time) sim.Time { return sim.MaxTime }

// Backlog implements Qdisc.
func (q *FIFO) Backlog() Backlog { return Backlog{q.q.len(), q.q.size()} }

// MaxBacklogBytes reports the high-water mark of queue occupancy.
func (q *FIFO) MaxBacklogBytes() int64 { return q.maxBytes }

// SelectiveDrop is the Aeolus switch queue (§3.2, §4.1): a single FIFO in
// which an arriving *unscheduled* packet is discarded whenever the backlog
// would exceed ThresholdBytes, while scheduled (and all control) packets are
// only bounded by the full buffer LimitBytes. This reproduces the RED/ECN
// re-interpretation on commodity switches: unscheduled packets are Non-ECT
// and get dropped at the RED threshold; scheduled packets are ECT(0) and
// would merely be marked, which endpoints ignore.
type SelectiveDrop struct {
	DropCounter
	ThresholdBytes int64 // selective dropping threshold (paper default 6 KB)
	LimitBytes     int64 // physical buffer bound for scheduled packets
	q              fifo
	maxBytes       int64
}

// NewSelectiveDrop returns a selective-dropping queue.
func NewSelectiveDrop(thresholdBytes, limitBytes int64) *SelectiveDrop {
	return &SelectiveDrop{ThresholdBytes: thresholdBytes, LimitBytes: limitBytes}
}

// Enqueue implements Qdisc.
func (q *SelectiveDrop) Enqueue(p *Packet, _ sim.Time) bool {
	protected := p.Scheduled || p.Type.IsControl()
	if !protected && q.q.size()+int64(p.WireSize) > q.ThresholdBytes {
		q.drop(p, DropSelective)
		return false
	}
	if q.LimitBytes > 0 && q.q.size()+int64(p.WireSize) > q.LimitBytes {
		q.drop(p, DropTailFull)
		return false
	}
	q.q.push(p)
	if q.q.size() > q.maxBytes {
		q.maxBytes = q.q.size()
	}
	return true
}

// Dequeue implements Qdisc.
func (q *SelectiveDrop) Dequeue(_ sim.Time) *Packet { return q.q.pop() }

// NextWake implements Qdisc.
func (q *SelectiveDrop) NextWake(_ sim.Time) sim.Time { return sim.MaxTime }

// Backlog implements Qdisc.
func (q *SelectiveDrop) Backlog() Backlog { return Backlog{q.q.len(), q.q.size()} }

// MaxBacklogBytes reports the high-water mark of queue occupancy.
func (q *SelectiveDrop) MaxBacklogBytes() int64 { return q.maxBytes }

// PrioQdisc is a strict-priority discipline with NumBands bands selected by
// Packet.Prio (band 0 served first) and a *shared* byte buffer across bands,
// matching the shared-buffer commodity switch of §5.5/Table 5: when the
// buffer is full, arrivals are tail-dropped regardless of priority, so a
// full low-priority queue can starve high-priority arrivals of buffer.
type PrioQdisc struct {
	DropCounter
	LimitBytes int64

	// SelectiveThresholdBytes, when positive, applies Aeolus selective
	// dropping at *port* granularity across all bands: an arriving
	// unscheduled packet is discarded once the port's total backlog would
	// exceed the threshold, while scheduled and control packets pass up to
	// LimitBytes. This is the paper's Homa+Aeolus switch configuration
	// (§5.1: "for Homa, we configure per-port ECN/RED"), which preserves
	// Homa's priority structure while capping unscheduled interference.
	SelectiveThresholdBytes int64

	bands    []fifo
	total    int64
	maxBytes int64
}

// NewPrioQdisc returns a strict-priority qdisc with the given band count and
// shared byte limit.
func NewPrioQdisc(numBands int, limitBytes int64) *PrioQdisc {
	return &PrioQdisc{LimitBytes: limitBytes, bands: make([]fifo, numBands)}
}

// NewPrioSelective returns a strict-priority qdisc with per-port Aeolus
// selective dropping of unscheduled packets.
func NewPrioSelective(numBands int, thresholdBytes, limitBytes int64) *PrioQdisc {
	return &PrioQdisc{LimitBytes: limitBytes, SelectiveThresholdBytes: thresholdBytes,
		bands: make([]fifo, numBands)}
}

// Enqueue implements Qdisc.
func (q *PrioQdisc) Enqueue(p *Packet, _ sim.Time) bool {
	if q.SelectiveThresholdBytes > 0 && !p.Scheduled && !p.Type.IsControl() &&
		q.total+int64(p.WireSize) > q.SelectiveThresholdBytes {
		q.drop(p, DropSelective)
		return false
	}
	if q.LimitBytes > 0 && q.total+int64(p.WireSize) > q.LimitBytes {
		q.drop(p, DropTailFull)
		return false
	}
	b := int(p.Prio)
	if b >= len(q.bands) {
		b = len(q.bands) - 1
	}
	q.bands[b].push(p)
	q.total += int64(p.WireSize)
	if q.total > q.maxBytes {
		q.maxBytes = q.total
	}
	return true
}

// Dequeue implements Qdisc.
func (q *PrioQdisc) Dequeue(_ sim.Time) *Packet {
	for i := range q.bands {
		if !q.bands[i].empty() {
			p := q.bands[i].pop()
			q.total -= int64(p.WireSize)
			return p
		}
	}
	return nil
}

// NextWake implements Qdisc.
func (q *PrioQdisc) NextWake(_ sim.Time) sim.Time { return sim.MaxTime }

// Backlog implements Qdisc.
func (q *PrioQdisc) Backlog() Backlog {
	var n int
	for i := range q.bands {
		n += q.bands[i].len()
	}
	return Backlog{n, q.total}
}

// MaxBacklogBytes reports the high-water mark of total occupancy.
func (q *PrioQdisc) MaxBacklogBytes() int64 { return q.maxBytes }

// BandBacklog reports the occupancy of one priority band.
func (q *PrioQdisc) BandBacklog(band int) Backlog {
	return Backlog{q.bands[band].len(), q.bands[band].size()}
}
