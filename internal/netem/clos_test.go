package netem

import (
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// The five experiment-catalogue shapes, expressed as TopoSpecs. These must
// generate byte-identical fabrics to the hand-written builders with the
// configs the experiment harness uses — TestBuildClosReproducesLegacy proves
// it structurally and pins the digests.
var (
	singleSpec = TopoSpec{HostsPerEdge: 8, Tiers: []TierSpec{{Switches: 1}},
		HostRate: 10 * sim.Gbps, LinkDelay: 3 * sim.Microsecond}
	microSpec = TopoSpec{HostsPerEdge: 24, Tiers: []TierSpec{{Switches: 1}},
		HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond}
	leafSpineSpec = TopoSpec{HostsPerEdge: 8, Tiers: []TierSpec{{Switches: 8}, {Switches: 8}},
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond}
	fatTreeSpec = TopoSpec{HostsPerEdge: 6,
		Tiers:    []TierSpec{{Switches: 32, Uplinks: 2, Groups: 16}, {Switches: 16}, {Switches: 8}},
		HostRate: 100 * sim.Gbps, LinkDelay: 4 * sim.Microsecond, HostDelay: sim.Microsecond}
	incastFabricSpec = TopoSpec{HostsPerEdge: 16, Tiers: []TierSpec{{Switches: 9}, {Switches: 4}},
		HostRate: 100 * sim.Gbps, CoreRate: 400 * sim.Gbps,
		LinkDelay: 200 * sim.Nanosecond, SwitchPipe: 250 * sim.Nanosecond}
)

// legacyBuilders constructs each catalogue shape with its hand-written
// builder under the same config BuildClos derives from the spec.
var legacyBuilders = map[string]func(eng *sim.Engine) *Network{
	"single": func(eng *sim.Engine) *Network {
		return BuildSingleSwitch(eng, 8, TopoConfig{HostRate: 10 * sim.Gbps, LinkDelay: 3 * sim.Microsecond})
	},
	"micro": func(eng *sim.Engine) *Network {
		return BuildSingleSwitch(eng, 24, TopoConfig{HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond})
	},
	"leafspine": func(eng *sim.Engine) *Network {
		return BuildLeafSpine(eng, 8, 8, 8, TopoConfig{HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond})
	},
	"fattree": func(eng *sim.Engine) *Network {
		return BuildFatTree3(eng, ExpressPassShape, TopoConfig{HostRate: 100 * sim.Gbps,
			LinkDelay: 4 * sim.Microsecond, HostDelay: sim.Microsecond})
	},
	"incastfabric": func(eng *sim.Engine) *Network {
		return BuildLeafSpine(eng, 4, 9, 16, TopoConfig{HostRate: 100 * sim.Gbps, CoreRate: 400 * sim.Gbps,
			LinkDelay: 200 * sim.Nanosecond, SwitchPipe: 250 * sim.Nanosecond})
	},
}

var closSpecs = map[string]TopoSpec{
	"single":       singleSpec,
	"micro":        microSpec,
	"leafspine":    leafSpineSpec,
	"fattree":      fatTreeSpec,
	"incastfabric": incastFabricSpec,
}

// closDigests pins the structural digest of every catalogue shape. Both the
// legacy builder and BuildClos must produce exactly these fabrics; a change
// here means every experiment result on that topology may shift.
var closDigests = map[string]string{
	"single":       "2f96ca96ee2f8e7b68a46c5629a16baf46c16beb4bf711b1265023503923c3da",
	"micro":        "c2bb422e3b37b1d5bba22b65c130a49c3b805f737bd4b20689f8a0b59c2d1eb5",
	"leafspine":    "1a45d2dae1317ecc8255b82a36413ce2d5fb8a7bac11dd7975fa85f125777f33",
	"fattree":      "1629024767e6a3e821a2913897180f85c6fcf216c04aef442d7142da2fd008ca",
	"incastfabric": "e9fb1b11d9af34a1f152fe22f721e22f968cf2f03912a19acc2bdd80eb738fbf",
}

// TestBuildClosReproducesLegacy proves the generator subsumes the hand-written
// builders: for every catalogue shape the generated network's structure dump
// is byte-identical to the legacy one, and both match the pinned digest.
func TestBuildClosReproducesLegacy(t *testing.T) {
	for name, spec := range closSpecs {
		legacy := legacyBuilders[name](sim.NewEngine())
		gen := BuildClos(sim.NewEngine(), spec, nil, 0)
		ld, gd := legacy.StructureDump(), gen.StructureDump()
		if ld != gd {
			t.Errorf("%s: generated structure differs from legacy builder\n%s", name, dumpDiff(ld, gd))
			continue
		}
		if got, want := gen.StructureDigest(), closDigests[name]; got != want {
			t.Errorf("%s: structure digest = %s, pinned %s", name, got, want)
		}
	}
}

// dumpDiff returns the first few differing lines of two structure dumps.
func dumpDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	var sb strings.Builder
	shown := 0
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			sb.WriteString("line " + la + "\n  vs " + lb + "\n")
			if shown++; shown >= 5 {
				break
			}
		}
	}
	return sb.String()
}

// TestClosLoadModel checks the load-conversion geometry against the values
// the experiment harness has always used (edgeLoadFor's hand-derived
// constants).
func TestClosLoadModel(t *testing.T) {
	approx := func(got, want, tol float64) bool { return got-want <= tol && want-got <= tol }
	if got := fatTreeSpec.Oversubscription(); got != 3.0 {
		t.Errorf("fattree oversubscription = %v, want 3", got)
	}
	if got := leafSpineSpec.Oversubscription(); got != 1.0 {
		t.Errorf("leafspine oversubscription = %v, want 1", got)
	}
	if got := incastFabricSpec.Oversubscription(); got != 1.0 {
		t.Errorf("incastfabric oversubscription = %v, want 1 (16x100G edge vs 4x400G core)", got)
	}
	if got := fatTreeSpec.CoreLoadFactor(); !approx(got, 3.0*186.0/191.0, 1e-12) {
		t.Errorf("fattree core-load factor = %v, want %v", got, 3.0*186.0/191.0)
	}
	if got := incastFabricSpec.CoreLoadFactor(); !approx(got, 128.0/143.0, 1e-12) {
		t.Errorf("incastfabric core-load factor = %v, want %v", got, 128.0/143.0)
	}
	// The harness's historical leafspine constant 7/8 is a rounding of the
	// exact cross-edge fraction 56/63; the catalogue pins the historical
	// value, the spec reports the exact one.
	if got := leafSpineSpec.CoreLoadFactor(); !approx(got, 56.0/63.0, 1e-12) {
		t.Errorf("leafspine core-load factor = %v, want %v", got, 56.0/63.0)
	}
	if got := singleSpec.CoreLoadFactor(); got != 1.0 {
		t.Errorf("single core-load factor = %v, want 1", got)
	}
}

// TestClosPortCounts checks the per-tier link budget the oversubscription
// ratios are derived from: every switch carries exactly its down-ports plus
// its up-ports.
func TestClosPortCounts(t *testing.T) {
	cases := []struct {
		name  string
		spec  TopoSpec
		wants map[string]int // label prefix -> expected port count
	}{
		{"leafspine", leafSpineSpec, map[string]int{"leaf": 8 + 8, "spine": 8}},
		{"fattree", fatTreeSpec, map[string]int{"tor": 6 + 2, "leaf": 2*2 + 8, "spine": 16}},
		{"incastfabric", incastFabricSpec, map[string]int{"leaf": 16 + 4, "spine": 9}},
	}
	for _, tc := range cases {
		net := BuildClos(sim.NewEngine(), tc.spec, nil, 0)
		for _, sw := range net.Switches {
			prefix := strings.TrimRight(sw.Label, "0123456789")
			want, ok := tc.wants[prefix]
			if !ok {
				t.Fatalf("%s: unexpected switch label %q", tc.name, sw.Label)
			}
			if len(sw.Ports) != want {
				t.Errorf("%s: switch %s has %d ports, want %d", tc.name, sw.Label, len(sw.Ports), want)
			}
		}
	}
}

// routeWalk follows the forwarding tables from src to dst with a fixed ECMP
// path ID, returning the hop count or -1 if the walk does not terminate at
// dst within the hop budget.
func routeWalk(net *Network, src, dst NodeID, pathID int) int {
	node := net.Hosts[src].NIC.Dst
	for hops := 1; hops <= 16; hops++ {
		sw, ok := node.(*Switch)
		if !ok {
			if h, ok := node.(*Host); ok && h.ID == dst {
				return hops
			}
			return -1
		}
		if int(dst) >= len(sw.Table) || len(sw.Table[dst]) == 0 {
			return -1
		}
		choices := sw.Table[dst]
		node = sw.Ports[choices[pathID%len(choices)]].Dst
	}
	return -1
}

// TestClosConnectivity walks the forwarding tables of every generated
// catalogue fabric (plus a grouped-pod shape with no legacy counterpart) for
// every host pair over several ECMP path IDs: every walk must terminate at
// the destination, and the hop count must be the tier-symmetric 2T for
// cross-fabric pairs (up to the common ancestor and back down).
func TestClosConnectivity(t *testing.T) {
	podSpec := TopoSpec{HostsPerEdge: 4,
		Tiers:    []TierSpec{{Switches: 8, Groups: 4}, {Switches: 8, Groups: 1}, {Switches: 4}},
		HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond}
	specs := map[string]TopoSpec{"leafspine": leafSpineSpec, "fattree": fatTreeSpec, "pods": podSpec}
	for name, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		net := BuildClos(sim.NewEngine(), spec, nil, 0)
		n := NodeID(len(net.Hosts))
		maxHops := 2 * len(spec.Tiers)
		for src := NodeID(0); src < n; src++ {
			for dst := NodeID(0); dst < n; dst++ {
				if src == dst {
					continue
				}
				for pathID := 0; pathID < 5; pathID++ {
					hops := routeWalk(net, src, dst, pathID)
					if hops < 0 {
						t.Fatalf("%s: no route %d->%d (path %d)", name, src, dst, pathID)
					}
					if hops > maxHops {
						t.Fatalf("%s: route %d->%d takes %d hops, max %d", name, src, dst, hops, maxHops)
					}
				}
			}
		}
	}
}

// TestClosBaseRTT recomputes the zero-load RTT by hand — propagation both
// ways, full-frame serialization per forward hop, header-frame per reverse
// hop, pipeline and stack latency both ways — for a 1-, 2- and 3-tier fabric
// and checks the built network agrees.
func TestClosBaseRTT(t *testing.T) {
	handRTT := func(spec TopoSpec) sim.Duration {
		frame := WireSizeFor(MaxPayload)
		core := spec.coreRate()
		tiers := len(spec.Tiers)
		// The farthest pair traverses 2*tiers links: host->edge, 2(tiers-1)
		// core hops, edge->host; and 2*tiers-1 switch pipelines.
		rates := []sim.Rate{spec.HostRate, spec.HostRate}
		for i := 0; i < 2*(tiers-1); i++ {
			rates = append(rates, core)
		}
		var rtt sim.Duration
		for _, r := range rates {
			rtt += 2*spec.LinkDelay + sim.TxTime(frame, r) + sim.TxTime(HeaderSize, r)
		}
		rtt += 2 * sim.Duration(2*tiers-1) * spec.SwitchPipe
		rtt += 2 * spec.HostDelay
		return rtt
	}
	for name, spec := range map[string]TopoSpec{
		"single": singleSpec, "leafspine": leafSpineSpec,
		"fattree": fatTreeSpec, "incastfabric": incastFabricSpec,
	} {
		net := BuildClos(sim.NewEngine(), spec, nil, 0)
		if want := handRTT(spec); net.BaseRTT != want {
			t.Errorf("%s: BaseRTT = %s, hand-computed %s", name, net.BaseRTT, want)
		}
	}
}

// TestClosIDCollision is the >1000-host capacity-bug regression: the legacy
// fixed ID stride of 1000 would collide switch IDs with host IDs on a
// 1024-host fabric. The generator scales the stride, and every node ID in
// the network must be unique.
func TestClosIDCollision(t *testing.T) {
	spec := TopoSpec{HostsPerEdge: 32, Tiers: []TierSpec{{Switches: 32}, {Switches: 32}},
		HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond}
	net := BuildClos(sim.NewEngine(), spec, nil, 0)
	if got := len(net.Hosts); got != 1024 {
		t.Fatalf("hosts = %d, want 1024", got)
	}
	seen := map[NodeID]string{}
	for _, h := range net.Hosts {
		if prev, dup := seen[h.ID]; dup {
			t.Fatalf("node ID %d used by both %s and h%d", h.ID, prev, h.ID)
		}
		seen[h.ID] = "h"
	}
	for _, sw := range net.Switches {
		if prev, dup := seen[sw.ID]; dup {
			t.Fatalf("node ID %d used by both %q and switch %s", sw.ID, prev, sw.Label)
		}
		seen[sw.ID] = sw.Label
	}
}

// TestParseTopoSpec checks the CLI grammar: round-trips through String,
// equivalence to the literal specs, and rejection of malformed input.
func TestParseTopoSpec(t *testing.T) {
	cases := map[string]TopoSpec{
		"clos:32x2g16/16/8,hosts=6,rate=100Gbps,delay=4us,hostdelay=1us":     fatTreeSpec,
		"clos:8/8,hosts=8,rate=100Gbps,delay=500ns":                          leafSpineSpec,
		"clos:9/4,hosts=16,rate=100Gbps,core=400Gbps,delay=200ns,pipe=250ns": incastFabricSpec,
		"clos:1,hosts=8,rate=10Gbps,delay=3us":                               singleSpec,
		"8/8,hosts=8,rate=100Gbps,delay=500ns":                               leafSpineSpec, // prefix optional
	}
	for in, want := range cases {
		got, err := ParseTopoSpec(in)
		if err != nil {
			t.Fatalf("ParseTopoSpec(%q): %v", in, err)
		}
		if gd, wd := BuildClos(sim.NewEngine(), got, nil, 0).StructureDigest(),
			BuildClos(sim.NewEngine(), want, nil, 0).StructureDigest(); gd != wd {
			t.Errorf("ParseTopoSpec(%q) builds a different fabric than its literal spec", in)
		}
		back, err := ParseTopoSpec(got.String())
		if err != nil {
			t.Fatalf("round-trip ParseTopoSpec(%q): %v", got.String(), err)
		}
		if back.String() != got.String() {
			t.Errorf("String round-trip: %q -> %q", got.String(), back.String())
		}
	}

	bad := []string{
		"clos:",                      // no tiers
		"clos:8/8",                   // valid grammar, but default hosts... (see below)
		"clos:8x/8,hosts=8",          // missing uplink count
		"clos:8/8,hosts=0",           // no hosts
		"clos:8/8,hosts=8,rate=fast", // bad rate
		"clos:8/8,hosts=8,frame=9000",
		"clos:4g2/2,hosts=2", // partitioned: top boundary split into 2 groups
		"clos:3g2/2,hosts=2", // groups don't divide switches
	}
	for _, in := range bad {
		if in == "clos:8/8" {
			// Defaults make this valid; it belongs in the good list.
			if _, err := ParseTopoSpec(in); err != nil {
				t.Errorf("ParseTopoSpec(%q): unexpected error %v", in, err)
			}
			continue
		}
		if _, err := ParseTopoSpec(in); err == nil {
			t.Errorf("ParseTopoSpec(%q): expected error", in)
		}
	}
}

// TestClosValidate exercises the spec-level rejections directly.
func TestClosValidate(t *testing.T) {
	good := TopoSpec{HostsPerEdge: 4, Tiers: []TierSpec{{Switches: 4}, {Switches: 2}},
		HostRate: 100 * sim.Gbps}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []TopoSpec{
		{}, // no tiers
		{HostsPerEdge: 4, Tiers: []TierSpec{{Switches: 4}}},                                               // no rate
		{HostsPerEdge: 0, Tiers: []TierSpec{{Switches: 4}}, HostRate: sim.Gbps},                           // no hosts
		{HostsPerEdge: 4, Tiers: []TierSpec{{Switches: 4, Groups: 3}, {Switches: 2}}, HostRate: sim.Gbps}, // 3 ∤ 4
		{HostsPerEdge: 4, Tiers: []TierSpec{{Switches: 4, Groups: 2}, {Switches: 2}}, HostRate: sim.Gbps}, // partitioned
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
