package netem

import (
	"math/rand/v2"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// LossyQdisc wraps a discipline with random packet loss, for failure
// injection: it exercises the recovery paths that a healthy fabric never
// triggers (lost probes, lost ACKs, lost scheduled packets). Matching is
// configurable so tests can target exactly one packet class.
type LossyQdisc struct {
	Qdisc

	// Rate is the drop probability in [0,1] for matching packets.
	Rate float64

	// Match selects which packets may be dropped; nil matches everything.
	Match func(p *Packet) bool

	// Rng drives the loss process; must be non-nil.
	Rng *rand.Rand

	// Injected counts packets discarded by the wrapper.
	Injected uint64
}

// NewLossyQdisc wraps inner with seeded random loss.
func NewLossyQdisc(inner Qdisc, rate float64, seed uint64, match func(p *Packet) bool) *LossyQdisc {
	return &LossyQdisc{
		Qdisc: inner, Rate: rate, Match: match,
		Rng: sim.NewRand(seed, 0x105e),
	}
}

// Enqueue implements Qdisc.
func (q *LossyQdisc) Enqueue(p *Packet, now sim.Time) bool {
	if (q.Match == nil || q.Match(p)) && q.Rng.Float64() < q.Rate {
		q.Injected++
		return false
	}
	return q.Qdisc.Enqueue(p, now)
}
