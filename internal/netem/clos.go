package netem

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// This file is the parameterized Clos generator: one data-driven builder that
// subsumes BuildSingleSwitch, BuildLeafSpine and BuildFatTree3. The legacy
// builders remain as hand-written references — clos_test.go proves BuildClos
// reproduces each of them byte-identically (same labels, node IDs, port
// orders, routing tables and BaseRTT) — but new shapes, in particular the
// scale-sweep fabrics, are expressed as TopoSpec values instead of new code.

// TierSpec sizes one switch tier of a Clos fabric and describes its wiring to
// the tier above. Uplinks and Groups apply to the boundary between this tier
// and the next; on the top tier both are ignored.
//
// The Groups field partitions the boundary: the tier's switches are split
// into Groups equal contiguous groups, the parent tier likewise, and group i
// below is fully meshed (with Uplinks parallel links per pair) to group i
// above. Groups=1 is the familiar full leaf–spine mesh; Groups=Switches with
// a one-switch parent group is the fat-tree ToR→leaf star; intermediate
// values give k-ary fat-tree pods.
type TierSpec struct {
	Switches int // switches in this tier
	Uplinks  int // parallel links to each parent switch (0 = 1)
	Groups   int // boundary groups toward the tier above (0 = 1)
}

// TopoSpec is a complete parameterized Clos topology: the tier stack plus the
// link-timing knobs shared with TopoConfig. Tiers[0] is the edge (host-facing)
// tier; Tiers[len-1] is the top. It is pure data — the CLIs parse one from a
// "clos:" spec string, the experiment catalogue declares them as literals, and
// BuildClos turns one into a Network.
type TopoSpec struct {
	HostsPerEdge int // hosts under each edge switch
	Tiers        []TierSpec

	HostRate   sim.Rate     // edge link rate
	CoreRate   sim.Rate     // fabric link rate; 0 means same as HostRate
	LinkDelay  sim.Duration // per-link propagation delay
	HostDelay  sim.Duration // end-host stack latency
	SwitchPipe sim.Duration // switching pipeline latency
}

// normalized returns a copy with the boundary defaults applied (Uplinks and
// Groups floor at 1) so the geometry helpers never divide by zero.
func (s TopoSpec) normalized() TopoSpec {
	tiers := make([]TierSpec, len(s.Tiers))
	copy(tiers, s.Tiers)
	for i := range tiers {
		if tiers[i].Uplinks < 1 {
			tiers[i].Uplinks = 1
		}
		if tiers[i].Groups < 1 {
			tiers[i].Groups = 1
		}
	}
	s.Tiers = tiers
	return s
}

// Hosts returns the total host count.
func (s TopoSpec) Hosts() int {
	if len(s.Tiers) == 0 {
		return 0
	}
	return s.HostsPerEdge * s.Tiers[0].Switches
}

// NumSwitches returns the total switch count across all tiers.
func (s TopoSpec) NumSwitches() int {
	n := 0
	for _, t := range s.Tiers {
		n += t.Switches
	}
	return n
}

func (s TopoSpec) coreRate() sim.Rate {
	if s.CoreRate > 0 {
		return s.CoreRate
	}
	return s.HostRate
}

// reachGeometry computes, per tier, the span of consecutive host IDs one
// switch reaches going down and how many switches of the tier share one such
// reach. Edge switches each own a distinct HostsPerEdge-host span; a boundary
// with G groups gives each parent the union of its group's child reaches.
// Requires a normalized, validated spec.
func (s TopoSpec) reachGeometry() (spans, perReach []int) {
	T := len(s.Tiers)
	spans = make([]int, T)
	perReach = make([]int, T)
	spans[0], perReach[0] = s.HostsPerEdge, 1
	for t := 0; t < T-1; t++ {
		g := s.Tiers[t].Groups
		cpg := s.Tiers[t].Switches / g
		spans[t+1] = cpg / perReach[t] * spans[t]
		perReach[t+1] = s.Tiers[t+1].Switches / g
	}
	return spans, perReach
}

// Validate checks the spec describes a well-formed, fully connected fabric:
// positive sizes, boundary group counts that divide both tiers evenly and do
// not split a set of reach-sharing switches, and a top tier whose switches
// each reach every host (anything less partitions the fabric).
func (s TopoSpec) Validate() error {
	n := s.normalized()
	if len(n.Tiers) == 0 {
		return fmt.Errorf("clos spec: no tiers")
	}
	if n.HostsPerEdge < 1 {
		return fmt.Errorf("clos spec: hosts per edge switch must be >= 1, got %d", n.HostsPerEdge)
	}
	if n.HostRate <= 0 {
		return fmt.Errorf("clos spec: host rate must be positive")
	}
	for t, tier := range n.Tiers {
		if tier.Switches < 1 {
			return fmt.Errorf("clos spec: tier %d has %d switches", t, tier.Switches)
		}
	}
	spans := make([]int, len(n.Tiers))
	perReach := make([]int, len(n.Tiers))
	spans[0], perReach[0] = n.HostsPerEdge, 1
	for t := 0; t < len(n.Tiers)-1; t++ {
		g := n.Tiers[t].Groups
		if n.Tiers[t].Switches%g != 0 {
			return fmt.Errorf("clos spec: tier %d's %d switches do not split into %d groups",
				t, n.Tiers[t].Switches, g)
		}
		if n.Tiers[t+1].Switches%g != 0 {
			return fmt.Errorf("clos spec: tier %d's %d switches do not split into tier %d's %d groups",
				t+1, n.Tiers[t+1].Switches, t, g)
		}
		cpg := n.Tiers[t].Switches / g
		if cpg%perReach[t] != 0 {
			return fmt.Errorf("clos spec: tier %d groups of %d split a set of %d reach-sharing switches",
				t, cpg, perReach[t])
		}
		spans[t+1] = cpg / perReach[t] * spans[t]
		perReach[t+1] = n.Tiers[t+1].Switches / g
	}
	if top := spans[len(spans)-1]; top != n.Hosts() {
		return fmt.Errorf("clos spec: top-tier switches reach only %d of %d hosts — the fabric is partitioned (top-boundary groups must be 1-connected)",
			top, n.Hosts())
	}
	return nil
}

// Oversubscription returns the worst-case downlink:uplink capacity ratio over
// all tier boundaries, floored at 1 (an undersubscribed boundary is not a
// bottleneck). A single-tier fabric has no boundary and reports 1.
func (s TopoSpec) Oversubscription() float64 {
	n := s.normalized()
	T := len(n.Tiers)
	if T == 1 {
		return 1
	}
	core := float64(n.coreRate())
	worst := 1.0
	for t := 0; t < T-1; t++ {
		g := n.Tiers[t].Groups
		ppg := n.Tiers[t+1].Switches / g
		up := float64(ppg*n.Tiers[t].Uplinks) * core
		var down float64
		if t == 0 {
			down = float64(n.HostsPerEdge) * float64(n.HostRate)
		} else {
			gBelow := n.Tiers[t-1].Groups
			cpgBelow := n.Tiers[t-1].Switches / gBelow
			down = float64(cpgBelow*n.Tiers[t-1].Uplinks) * core
		}
		if r := down / up; r > worst {
			worst = r
		}
	}
	return worst
}

// CrossEdgeFraction returns the fraction of uniformly random host pairs whose
// traffic leaves the source's edge switch — the share of offered load that
// exercises the fabric above the edge tier.
func (s TopoSpec) CrossEdgeFraction() float64 {
	h := s.Hosts()
	if h <= 1 {
		return 0
	}
	return float64(h-s.HostsPerEdge) / float64(h-1)
}

// CoreLoadFactor converts a target core load into the edge load a uniform
// traffic generator must offer: edgeLoad = coreLoad / CoreLoadFactor. It is
// the oversubscription times the cross-edge traffic fraction; fabrics where
// no traffic crosses the core (single tier, single edge switch) report 1 so
// the conversion is the identity.
func (s TopoSpec) CoreLoadFactor() float64 {
	f := s.Oversubscription() * s.CrossEdgeFraction()
	if f <= 0 {
		return 1
	}
	return f
}

// tierNames returns the per-tier label prefixes. The one-, two- and
// three-tier names match the hand-written builders ("sw"; "leaf"/"spine";
// "tor"/"leaf"/"spine"); deeper stacks fall back to "t<tier>".
func (s TopoSpec) tierNames() []string {
	switch len(s.Tiers) {
	case 1:
		return []string{"sw"}
	case 2:
		return []string{"leaf", "spine"}
	case 3:
		return []string{"tor", "leaf", "spine"}
	}
	names := make([]string, len(s.Tiers))
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	return names
}

// idSpacing returns the NodeID stride between tiers: tier t switch i gets ID
// spacing*(t+1)+i. The legacy builders hard-coded 1000, which collides switch
// IDs with host IDs once a fabric exceeds 1000 hosts (or 1000 switches in a
// tier); the stride grows in 1000-steps so the sub-1000-host legacy shapes
// keep their exact historical IDs while larger fabrics stay collision-free.
func (s TopoSpec) idSpacing() int {
	need := s.Hosts()
	for _, t := range s.Tiers {
		if t.Switches > need {
			need = t.Switches
		}
	}
	spacing := 1000
	for spacing < need {
		spacing += 1000
	}
	return spacing
}

// BuildClos wires the fabric a TopoSpec describes. The wiring order — switch
// creation tier by tier, hosts with their edge down-ports, edge uplinks,
// middle tiers' down-then-up ports per switch, top-tier down-ports — mirrors
// the hand-written builders exactly, so for their shapes the result is
// byte-identical (clos_test.go pins this with structure digests). A spec that
// fails Validate panics: topology construction errors are program bugs, never
// run results.
func BuildClos(eng *sim.Engine, spec TopoSpec, qf QdiscFactory, frameBytes int) *Network {
	sp := spec.normalized()
	if err := sp.Validate(); err != nil {
		panic("netem: " + err.Error())
	}
	cfg := TopoConfig{
		HostRate: sp.HostRate, CoreRate: sp.CoreRate,
		LinkDelay: sp.LinkDelay, HostDelay: sp.HostDelay, SwitchPipe: sp.SwitchPipe,
		MakeQdisc: qf, FrameBytes: frameBytes,
	}
	core := cfg.core()
	T := len(sp.Tiers)
	nHosts := sp.Hosts()
	spans, perReach := sp.reachGeometry()
	names := sp.tierNames()
	spacing := sp.idSpacing()

	net := &Network{Eng: eng, HostRate: cfg.HostRate}
	sw := make([][]*Switch, T)
	for t := 0; t < T; t++ {
		sw[t] = make([]*Switch, sp.Tiers[t].Switches)
		for i := range sw[t] {
			sw[t][i] = &Switch{ID: NodeID(spacing*(t+1) + i), Eng: eng, PipeDelay: cfg.SwitchPipe,
				Label: fmt.Sprintf("%s%d", names[t], i), Table: make([][]int32, nHosts)}
		}
	}

	// reach returns the contiguous host-ID window switch i of tier t serves.
	reach := func(t, i int) (lo, hi int) {
		lo = i / perReach[t] * spans[t]
		return lo, lo + spans[t]
	}

	// linkLabel names the port from switch a toward switch b on a boundary
	// with u parallel links; the ".n" suffix appears only on parallel links,
	// matching the legacy single-link labels.
	linkLabel := func(a, b *Switch, u, uplinks int) string {
		if uplinks > 1 {
			return fmt.Sprintf("%s->%s.%d", a.Label, b.Label, u)
		}
		return fmt.Sprintf("%s->%s", a.Label, b.Label)
	}

	// Hosts and edge down-ports.
	for e, edge := range sw[0] {
		for k := 0; k < sp.HostsPerEdge; k++ {
			id := NodeID(e*sp.HostsPerEdge + k)
			h := newHost(eng, id, &cfg)
			h.NIC = NewPort(eng, cfg.qdisc(HostNIC, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				edge, fmt.Sprintf("h%d->%s", id, edge.Label))
			down := NewPort(eng, cfg.qdisc(SwitchToHost, cfg.HostRate), cfg.HostRate, cfg.LinkDelay,
				h, fmt.Sprintf("%s->h%d", edge.Label, id))
			edge.Ports = append(edge.Ports, down)
			edge.Table[id] = []int32{int32(len(edge.Ports) - 1)}
			net.Hosts = append(net.Hosts, h)
		}
	}

	// addUplinks wires switch c of tier t to every parent in its boundary
	// group and points all out-of-reach hosts at the (shared) uplink set.
	addUplinks := func(t, c int) {
		me := sw[t][c]
		uplinks := sp.Tiers[t].Uplinks
		g := c / (sp.Tiers[t].Switches / sp.Tiers[t].Groups)
		ppg := sp.Tiers[t+1].Switches / sp.Tiers[t].Groups
		var ups []int32
		for pi := g * ppg; pi < (g+1)*ppg; pi++ {
			for u := 0; u < uplinks; u++ {
				up := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
					sw[t+1][pi], linkLabel(me, sw[t+1][pi], u, uplinks))
				me.Ports = append(me.Ports, up)
				ups = append(ups, int32(len(me.Ports)-1))
			}
		}
		lo, hi := reach(t, c)
		for id := 0; id < nHosts; id++ {
			if id < lo || id >= hi {
				me.Table[id] = ups
			}
		}
	}

	// addDownlinks wires switch p of tier t to every child in its boundary
	// group, routing each child's reach through the child's parallel ports.
	addDownlinks := func(t, p int) {
		me := sw[t][p]
		uplinks := sp.Tiers[t-1].Uplinks
		g := p / (sp.Tiers[t].Switches / sp.Tiers[t-1].Groups)
		cpg := sp.Tiers[t-1].Switches / sp.Tiers[t-1].Groups
		for c := g * cpg; c < (g+1)*cpg; c++ {
			child := sw[t-1][c]
			var downs []int32
			for u := 0; u < uplinks; u++ {
				down := NewPort(eng, cfg.qdisc(SwitchToSwitch, core), core, cfg.LinkDelay,
					child, linkLabel(me, child, u, uplinks))
				me.Ports = append(me.Ports, down)
				downs = append(downs, int32(len(me.Ports)-1))
			}
			lo, hi := reach(t-1, c)
			for id := lo; id < hi; id++ {
				me.Table[id] = append(me.Table[id], downs...)
			}
		}
	}

	if T > 1 {
		for e := range sw[0] {
			addUplinks(0, e)
		}
		for t := 1; t < T-1; t++ {
			for p := range sw[t] {
				addDownlinks(t, p)
				addUplinks(t, p)
			}
		}
		for p := range sw[T-1] {
			addDownlinks(T-1, p)
		}
	}

	for t := 0; t < T; t++ {
		net.Switches = append(net.Switches, sw[t]...)
	}
	rates := make([]sim.Rate, 0, 2*T)
	rates = append(rates, cfg.HostRate)
	for i := 0; i < 2*(T-1); i++ {
		rates = append(rates, core)
	}
	rates = append(rates, cfg.HostRate)
	net.BaseRTT = baseRTT(&cfg, rates, 2*T-1)
	net.attachPool(NewPacketPool())
	return net
}

// ParseTopoSpec parses the CLI "clos:" spec grammar:
//
//	clos:<tier>/<tier>/...[,key=value]...
//	tier: <switches>[x<uplinks>][g<groups>]      (edge tier first)
//	keys: hosts=<n>        hosts per edge switch          (default 8)
//	      rate=<rate>      edge link rate                 (default 100Gbps)
//	      core=<rate>      fabric link rate               (default same as rate)
//	      delay=<dur>      per-link propagation delay     (default 1us)
//	      hostdelay=<dur>  end-host stack latency         (default 0)
//	      pipe=<dur>       switching pipeline latency     (default 0)
//
// For example "clos:32x2g16/16/8,hosts=6,rate=100Gbps,delay=4us,hostdelay=1us"
// is the ExpressPass 192-host fat-tree, and "clos:32/32,hosts=32,delay=500ns"
// is a 1024-host leaf-spine. Rates and durations use the sim package's units
// ("100Gbps", "500ns"). The leading "clos:" is optional.
func ParseTopoSpec(s string) (TopoSpec, error) {
	raw := strings.TrimPrefix(s, "clos:")
	spec := TopoSpec{HostsPerEdge: 8, HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond}
	fields := strings.Split(raw, ",")
	if fields[0] == "" {
		return TopoSpec{}, fmt.Errorf("clos spec %q: missing tier list", s)
	}
	for _, ts := range strings.Split(fields[0], "/") {
		tier, err := parseTier(ts)
		if err != nil {
			return TopoSpec{}, fmt.Errorf("clos spec %q: %v", s, err)
		}
		spec.Tiers = append(spec.Tiers, tier)
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return TopoSpec{}, fmt.Errorf("clos spec %q: field %q is not key=value", s, kv)
		}
		var err error
		switch key {
		case "hosts":
			spec.HostsPerEdge, err = strconv.Atoi(val)
		case "rate":
			spec.HostRate, err = sim.ParseRate(val)
		case "core":
			spec.CoreRate, err = sim.ParseRate(val)
		case "delay":
			spec.LinkDelay, err = sim.ParseDuration(val)
		case "hostdelay":
			spec.HostDelay, err = sim.ParseDuration(val)
		case "pipe":
			spec.SwitchPipe, err = sim.ParseDuration(val)
		default:
			err = fmt.Errorf("unknown key %q (want hosts, rate, core, delay, hostdelay or pipe)", key)
		}
		if err != nil {
			return TopoSpec{}, fmt.Errorf("clos spec %q: %v", s, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return TopoSpec{}, fmt.Errorf("%v (in %q)", err, s)
	}
	return spec, nil
}

// parseTier parses one "<switches>[x<uplinks>][g<groups>]" tier term.
func parseTier(s string) (TierSpec, error) {
	var t TierSpec
	rest := s
	if i := strings.IndexByte(rest, 'g'); i >= 0 {
		g, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			return t, fmt.Errorf("bad tier %q: groups: %v", s, err)
		}
		t.Groups = g
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, 'x'); i >= 0 {
		u, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			return t, fmt.Errorf("bad tier %q: uplinks: %v", s, err)
		}
		t.Uplinks = u
		rest = rest[:i]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return t, fmt.Errorf("bad tier %q: switches: %v", s, err)
	}
	t.Switches = n
	return t, nil
}

// String renders the spec in the ParseTopoSpec grammar. The output is
// canonical (defaults for uplinks/groups omitted, optional keys only when
// set) and round-trips: ParseTopoSpec(s.String()) builds the same fabric.
func (s TopoSpec) String() string {
	n := s.normalized()
	var b strings.Builder
	b.WriteString("clos:")
	for i, t := range n.Tiers {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", t.Switches)
		if i < len(n.Tiers)-1 {
			if t.Uplinks != 1 {
				fmt.Fprintf(&b, "x%d", t.Uplinks)
			}
			if t.Groups != 1 {
				fmt.Fprintf(&b, "g%d", t.Groups)
			}
		}
	}
	fmt.Fprintf(&b, ",hosts=%d,rate=%v", n.HostsPerEdge, n.HostRate)
	if n.CoreRate != 0 {
		fmt.Fprintf(&b, ",core=%v", n.CoreRate)
	}
	fmt.Fprintf(&b, ",delay=%s", n.LinkDelay.ExactString())
	if n.HostDelay != 0 {
		fmt.Fprintf(&b, ",hostdelay=%s", n.HostDelay.ExactString())
	}
	if n.SwitchPipe != 0 {
		fmt.Fprintf(&b, ",pipe=%s", n.SwitchPipe.ExactString())
	}
	return b.String()
}

// nodeLabel renders a port destination for the structure dump.
func nodeLabel(n Node) string {
	switch v := n.(type) {
	case *Host:
		return fmt.Sprintf("h%d", v.ID)
	case *Switch:
		return v.Label
	default:
		return fmt.Sprintf("%T", n)
	}
}

// StructureDump renders every structural fact of the built network — hosts,
// switches, IDs, labels, port orders, rates, delays, routing tables, BaseRTT —
// in a canonical text form. Two networks behave identically under this
// simulator iff their dumps match (qdisc choice aside), so the dump is the
// basis for the generator-vs-legacy equivalence digests.
func (n *Network) StructureDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hosts=%d switches=%d hostrate=%v basertt=%s\n",
		len(n.Hosts), len(n.Switches), n.HostRate, n.BaseRTT.ExactString())
	for _, h := range n.Hosts {
		fmt.Fprintf(&b, "host h%d delay=%s nic[rate=%v delay=%s dst=%s label=%q]\n",
			h.ID, h.HostDelay.ExactString(),
			h.NIC.Rate, h.NIC.Delay.ExactString(), nodeLabel(h.NIC.Dst), h.NIC.Label)
	}
	for _, sw := range n.Switches {
		fmt.Fprintf(&b, "switch %s id=%d pipe=%s\n", sw.Label, sw.ID, sw.PipeDelay.ExactString())
		for i, pt := range sw.Ports {
			fmt.Fprintf(&b, "  port %d rate=%v delay=%s dst=%s label=%q\n",
				i, pt.Rate, pt.Delay.ExactString(), nodeLabel(pt.Dst), pt.Label)
		}
		for id, row := range sw.Table {
			fmt.Fprintf(&b, "  route %d %v\n", id, row)
		}
	}
	return b.String()
}

// StructureDigest is the SHA-256 of StructureDump in hex — a compact pin for
// golden topology tests.
func (n *Network) StructureDigest() string {
	sum := sha256.Sum256([]byte(n.StructureDump()))
	return hex.EncodeToString(sum[:])
}
