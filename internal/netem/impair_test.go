package netem

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// sink is a delivery counter terminating packets like a host endpoint would.
type sink struct {
	pool  *PacketPool
	n     int
	times []sim.Time
	eng   *sim.Engine
}

func (s *sink) Receive(p *Packet) {
	s.n++
	if s.eng != nil {
		s.times = append(s.times, s.eng.Now())
	}
	s.pool.Put(p)
}

// impairedPort builds an engine, a pooled port with an unlimited FIFO, and
// its impairment controller.
func impairedPort(rate sim.Rate, delay sim.Duration, seed uint64) (*sim.Engine, *Port, *LinkImpairment, *sink) {
	eng := sim.NewEngine()
	pool := NewPacketPool()
	dst := &sink{pool: pool, eng: eng}
	pt := NewPort(eng, NewFIFO(0), rate, delay, dst, "sw0->h0")
	pt.Pool = pool
	li := InstallImpairment(pt, seed)
	return eng, pt, li, dst
}

func TestImpairmentTargetedLoss(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 7)
	li.SetLoss(1.0, 0, func(p *Packet) bool { return p.Type == Probe })

	var hooked []DropReason
	pt.Q.SetDropHook(func(p *Packet, r DropReason) { hooked = append(hooked, r) })

	if pt.Q.Enqueue(&Packet{Type: Probe, WireSize: 64}, 0) {
		t.Fatal("probe survived rate-1 loss")
	}
	if !pt.Q.Enqueue(dataPkt(1, 1538, true), 0) {
		t.Fatal("non-matching packet dropped")
	}
	if li.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", li.Injected())
	}
	if len(hooked) != 1 || hooked[0] != DropImpairment {
		t.Fatalf("drop hook saw %v, want one DropImpairment", hooked)
	}
	if tot := DropTotals([]*Port{pt}); tot[DropImpairment] != 1 {
		t.Fatalf("DropTotals[impair] = %d, want 1", tot[DropImpairment])
	}
}

func TestImpairmentStatisticalRate(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 11)
	li.SetLoss(0.3, 0, nil)
	dropped := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !pt.Q.Enqueue(dataPkt(uint64(i), 100, false), 0) {
			dropped++
		}
	}
	got := float64(dropped) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("empirical loss %0.3f, want ≈0.30", got)
	}
}

func TestImpairmentDeterministicNth(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 3)
	li.SetLoss(0, 5, func(p *Packet) bool { return p.Type == Data })
	var pattern []bool
	for i := 0; i < 20; i++ {
		pattern = append(pattern, !pt.Q.Enqueue(dataPkt(uint64(i), 100, false), 0))
		// Control packets never advance the nth counter.
		if !pt.Q.Enqueue(&Packet{Type: Ack, WireSize: 64}, 0) {
			t.Fatal("control packet dropped by data-matched nth loss")
		}
	}
	for i, droppedHere := range pattern {
		want := (i+1)%5 == 0
		if droppedHere != want {
			t.Fatalf("packet %d dropped=%v, want %v (every 5th)", i, droppedHere, want)
		}
	}
	if li.Injected() != 4 {
		t.Fatalf("injected = %d, want 4", li.Injected())
	}
}

// TestImpairmentFailFreezeRestore drives a link through a fail/restore flap:
// the in-flight packet completes, the backlog freezes while the link is down,
// arrivals during the outage are dropped and accounted, and Restore drains
// the preserved backlog.
func TestImpairmentFailFreezeRestore(t *testing.T) {
	// 1000-byte packets at 8 Gbps serialize in exactly 1 µs.
	eng, pt, li, dst := impairedPort(8*sim.Gbps, 0, 1)
	mk := func(i int) *Packet {
		p := pt.Pool.Get()
		p.Type, p.Flow, p.WireSize = Data, uint64(i), 1000
		return p
	}
	eng.At(0, func() { pt.Send(mk(1)); pt.Send(mk(2)); pt.Send(mk(3)) })
	eng.At(sim.Time(500*sim.Nanosecond), func() { li.Fail() })
	eng.At(sim.Time(2*sim.Microsecond), func() {
		if dst.n != 1 {
			t.Fatalf("delivered %d during outage, want 1 (the in-flight packet)", dst.n)
		}
		if got := pt.Backlog().Packets; got != 2 {
			t.Fatalf("backlog %d during outage, want 2 (frozen)", got)
		}
		pt.Send(mk(4)) // arrival on a dead link
		if li.Injected() != 1 {
			t.Fatalf("injected = %d, want 1 (outage arrival)", li.Injected())
		}
	})
	eng.At(sim.Time(10*sim.Microsecond), func() { li.Restore() })
	eng.Run()
	if dst.n != 3 {
		t.Fatalf("delivered %d, want 3 (backlog preserved across flap)", dst.n)
	}
	// Frozen backlog resumed at restore: deliveries at 1, 11 and 12 µs.
	want := []sim.Time{
		sim.Time(1 * sim.Microsecond),
		sim.Time(11 * sim.Microsecond),
		sim.Time(12 * sim.Microsecond),
	}
	for i, at := range dst.times {
		if at != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, at, want[i])
		}
	}
	if live := pt.Pool.Live(); live != 0 {
		t.Fatalf("%d packets leaked", live)
	}
	if err := pt.Pool.CheckCoherence(); err != nil {
		t.Fatalf("pool incoherent after impairment drops: %v", err)
	}
}

func TestImpairmentBlackholeKeepsDraining(t *testing.T) {
	eng, pt, li, dst := impairedPort(8*sim.Gbps, 0, 1)
	mk := func(i int) *Packet {
		p := pt.Pool.Get()
		p.Type, p.Flow, p.WireSize = Data, uint64(i), 1000
		return p
	}
	eng.At(0, func() { pt.Send(mk(1)); pt.Send(mk(2)) })
	eng.At(sim.Time(100*sim.Nanosecond), func() {
		li.SetBlackhole(true)
		pt.Send(mk(3)) // swallowed
	})
	eng.Run()
	if dst.n != 2 {
		t.Fatalf("delivered %d, want 2 (backlog drains through a blackhole)", dst.n)
	}
	if li.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", li.Injected())
	}
}

func TestImpairmentRateCap(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 1)
	li.SetRate(1 * sim.Gbps)
	if pt.Rate != 1*sim.Gbps {
		t.Fatalf("rate = %v after cap, want 1Gbps", pt.Rate)
	}
	li.SetRate(0)
	if pt.Rate != 10*sim.Gbps {
		t.Fatalf("rate = %v after clear, want the original 10Gbps", pt.Rate)
	}
}

func TestImpairmentDelayAndJitter(t *testing.T) {
	run := func(seed uint64, add, jitter sim.Duration) []sim.Time {
		eng, pt, li, dst := impairedPort(8*sim.Gbps, sim.Microsecond, seed)
		li.SetDelay(add, jitter)
		eng.At(0, func() {
			for i := 0; i < 8; i++ {
				p := pt.Pool.Get()
				p.Type, p.WireSize = Data, 1000
				pt.Send(p)
			}
		})
		eng.Run()
		return dst.times
	}

	// Fixed addition shifts every delivery by exactly add.
	base := run(5, 0, 0)
	shifted := run(5, 3*sim.Microsecond, 0)
	for i := range base {
		if shifted[i] != base[i]+sim.Time(3*sim.Microsecond) {
			t.Fatalf("delivery %d at %v, want %v+3us", i, shifted[i], base[i])
		}
	}

	// Jitter stays within its bound and is deterministic per seed.
	j1 := run(5, 0, 2*sim.Microsecond)
	j2 := run(5, 0, 2*sim.Microsecond)
	varied := false
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("jitter not deterministic: delivery %d %v vs %v", i, j1[i], j2[i])
		}
		d := j1[i] - base[i]
		if d < 0 || d > sim.Time(2*sim.Microsecond) {
			t.Fatalf("delivery %d jittered by %v, outside [0, 2us]", i, d)
		}
		if d != 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter had no effect on any delivery")
	}
}

// TestImpairmentDropsReleaseToPool is the regression for the folded-in
// LossyQdisc, whose silent refusals were invisible to the drop hook: every
// impairment drop must fire the hook under DropImpairment exactly once and
// the refused packet must return to the pool.
func TestImpairmentDropsReleaseToPool(t *testing.T) {
	eng, pt, li, dst := impairedPort(8*sim.Gbps, 0, 9)
	li.SetLoss(0.5, 0, nil)
	var hookDrops uint64
	pt.Q.SetDropHook(func(p *Packet, r DropReason) {
		if r != DropImpairment {
			t.Fatalf("drop reason %v, want impair", r)
		}
		hookDrops++
	})
	const n = 200
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			p := pt.Pool.Get()
			p.Type, p.WireSize = Data, 1000
			pt.Send(p)
		}
	})
	eng.Run()
	if hookDrops == 0 {
		t.Fatal("no drops hooked at 50% loss")
	}
	if hookDrops != li.Injected() {
		t.Fatalf("hook saw %d drops, controller injected %d", hookDrops, li.Injected())
	}
	if uint64(dst.n)+hookDrops != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", dst.n, hookDrops, n)
	}
	if live := pt.Pool.Live(); live != 0 {
		t.Fatalf("%d packets leaked after impairment drops", live)
	}
	if err := pt.Pool.CheckCoherence(); err != nil {
		t.Fatalf("pool incoherent: %v", err)
	}
}

func TestMatchClasses(t *testing.T) {
	sched := dataPkt(1, 1538, true)
	unsched := dataPkt(2, 1538, false)
	ack := &Packet{Type: Ack, WireSize: 64}
	cases := []struct {
		class   string
		p       *Packet
		matches bool
	}{
		{"data", sched, true}, {"data", ack, false},
		{"ctrl", ack, true}, {"ctrl", unsched, false},
		{"sched", sched, true}, {"sched", unsched, false},
		{"unsched", unsched, true}, {"unsched", sched, false}, {"unsched", ack, false},
	}
	for _, c := range cases {
		m, err := MatchClass(c.class)
		if err != nil {
			t.Fatalf("MatchClass(%q): %v", c.class, err)
		}
		if got := m(c.p); got != c.matches {
			t.Errorf("class %q on %v = %v, want %v", c.class, c.p, got, c.matches)
		}
	}
	for _, all := range []string{"", "all"} {
		if m, err := MatchClass(all); err != nil || m != nil {
			t.Errorf("MatchClass(%q) did not return a nil matcher (err %v)", all, err)
		}
	}
	if _, err := MatchClass("bogus"); err == nil {
		t.Error("MatchClass accepted an unknown class")
	}
}

// TestImpairmentGilbertElliottStationary drives many packets through a
// ge-impaired port and checks the empirical loss against the chain's
// stationary rate p/(p+r) (with good=0, bad=1), and that the losses are
// genuinely bursty: the mean run of consecutive drops approaches 1/r, which
// independent loss at the same rate cannot produce.
func TestImpairmentGilbertElliottStationary(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 17)
	const p, r = 0.02, 0.25
	li.SetGE(p, r, 0, 1, nil)
	const n = 60000
	dropped, bursts, run := 0, 0, 0
	maxRun := 0
	for i := 0; i < n; i++ {
		if !pt.Q.Enqueue(dataPkt(uint64(i), 100, false), 0) {
			dropped++
			run++
			continue
		}
		if run > 0 {
			bursts++
			if run > maxRun {
				maxRun = run
			}
			run = 0
		}
	}
	want := p / (p + r) // ≈ 0.074
	got := float64(dropped) / n
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("empirical loss %0.4f, want ≈%0.4f", got, want)
	}
	meanBurst := float64(dropped) / float64(bursts)
	if meanBurst < 0.8/r || meanBurst > 1.2/r {
		t.Fatalf("mean burst length %0.2f, want ≈%0.2f", meanBurst, 1/r)
	}
	if maxRun < 2 {
		t.Fatal("no multi-packet loss burst in 60k packets — loss is not correlated")
	}
	if li.Injected() != uint64(dropped) {
		t.Fatalf("Injected() = %d, dropped %d", li.Injected(), dropped)
	}
}

// TestImpairmentGilbertElliottMatchAndExclusivity: the chain only sees
// matching packets, SetLoss clears the GE process, and SetGE clears uniform
// loss — the processes are mutually exclusive by construction.
func TestImpairmentGilbertElliottMatchAndExclusivity(t *testing.T) {
	_, pt, li, _ := impairedPort(10*sim.Gbps, 0, 23)
	li.SetGE(1, 0, 0, 1, func(p *Packet) bool { return p.Type == Data })
	// First matching arrival is lossless (good state, good=0) and flips the
	// chain to bad with p=1; control packets neither drop nor advance it.
	if !pt.Q.Enqueue(dataPkt(0, 100, false), 0) {
		t.Fatal("first data packet dropped from the good state with good=0")
	}
	for i := 0; i < 5; i++ {
		if !pt.Q.Enqueue(&Packet{Type: Ack, WireSize: 64}, 0) {
			t.Fatal("control packet dropped by data-matched ge loss")
		}
	}
	// r=0: the chain is absorbed in the bad state with bad=1 — every
	// further data packet drops.
	for i := 1; i <= 5; i++ {
		if pt.Q.Enqueue(dataPkt(uint64(i), 100, false), 0) {
			t.Fatalf("data packet %d survived the absorbed bad state", i)
		}
	}
	// SetLoss replaces the chain entirely.
	li.SetLoss(0, 0, nil)
	if !pt.Q.Enqueue(dataPkt(99, 100, false), 0) {
		t.Fatal("ge state leaked through SetLoss")
	}
	// And SetGE replaces uniform loss: rate-1 loss then a fresh all-pass
	// chain (good=0, p=0) lets everything through again.
	li.SetLoss(1, 0, nil)
	if pt.Q.Enqueue(dataPkt(100, 100, false), 0) {
		t.Fatal("rate-1 loss let a packet through")
	}
	li.SetGE(0, 0, 0, 1, nil)
	if !pt.Q.Enqueue(dataPkt(101, 100, false), 0) {
		t.Fatal("uniform loss leaked through SetGE")
	}
}
