package netem

import "fmt"

// PoolObserver sees every packet a PacketPool hands out or takes back. The
// audit layer implements it to keep pointer-keyed packet state coherent
// across recycling and to report double-Put as a structured violation.
type PoolObserver interface {
	// PoolGet runs after the packet has been reset, before the caller sees
	// it. fresh is true when the object was newly allocated rather than
	// recycled.
	PoolGet(p *Packet, fresh bool)

	// PoolPut runs before the packet enters the free-list. firstPut is false
	// when the packet was already pooled — a double-Put bug.
	PoolPut(p *Packet, firstPut bool)
}

// PacketPool recycles Packet objects so the steady-state hot path allocates
// nothing per packet. One pool serves one simulation run (pools, like the
// engine, are single-goroutine; the parallel experiment executor gives every
// run its own).
//
// Ownership rule: whoever terminates a packet releases it. Concretely:
//   - a Port that fails to Enqueue (qdisc drop, including trim-fail and
//     credit overflow) Puts the packet;
//   - a Host Puts the packet after its Endpoint's Receive returns — the
//     endpoint boundary is the end of the packet's life, and endpoints must
//     not retain the packet or alias its SegList past Receive;
//   - NDP trimming mutates the packet in place (the discarded payload is not
//     a separate object), so trimming itself releases nothing.
//
// On recycle the SegList backing array is kept but truncated; because
// receivers copy SegList rather than alias it, reuse cannot leak stale
// segment data across packets.
//
// Storage is a chunked slab arena: fresh packets are carved sequentially
// from non-moving chunks, so packets traversing a port chain are contiguous
// in allocation order and the steady-state working set packs into a few
// cache-resident chunks. The free-list still holds pointers — packets move
// through the fabric by pointer — but every pointer aims into the slab, and
// each slab packet knows its slot (Packet.PoolSlot) so observers can key
// per-packet state by dense index. A disabled pool allocates individually
// instead, preserving the old release-to-GC behavior for -nopool runs.
type PacketPool struct {
	free     []*Packet
	chunks   []*[PacketChunkSize]Packet
	carved   uint32 // slots issued from the slab
	disabled bool
	obs      PoolObserver

	allocs     uint64 // Packet objects created by Get
	gets       uint64 // packets handed out
	puts       uint64 // packets returned (first Put only)
	doublePuts uint64 // Put calls on packets already in the pool
}

// Packet slab geometry: 512 packets per chunk — 56 KiB of 112-byte packets,
// sized so one chunk covers the in-flight population of a loaded port chain.
const (
	packetChunkBits = 9

	// PacketChunkSize is the number of packets per pool slab chunk. Exported
	// so the scale ledger can stamp the slab geometry a measurement ran under.
	PacketChunkSize = 1 << packetChunkBits

	packetChunkMask = PacketChunkSize - 1
)

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Allocated  uint64 // Packet objects ever created by Get
	Gets       uint64 // packets handed out
	Puts       uint64 // packets returned
	InPool     uint64 // packets sitting in the free-list now
	Live       uint64 // packets handed out and not yet returned
	DoublePuts uint64 // rejected duplicate Puts (each one is a bug)
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Disable makes Get always allocate individually and Put always discard
// (while still counting), so a run can be replayed without recycling to
// prove pooling does not change results. The free-list is dropped; slab
// chunks stay resident only if packets were already carved from them (a
// live packet must keep its storage).
func (pp *PacketPool) Disable() {
	pp.disabled = true
	pp.free = nil
}

// Disabled reports whether recycling is off.
func (pp *PacketPool) Disabled() bool { return pp != nil && pp.disabled }

// SetObserver installs the observer (at most one; nil clears it).
func (pp *PacketPool) SetObserver(o PoolObserver) { pp.obs = o }

// Get returns a zeroed packet, recycled if possible. A nil pool is valid and
// always allocates, so hand-built test fixtures work without a pool.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	pp.gets++
	var p *Packet
	fresh := true
	if n := len(pp.free); n > 0 {
		p = pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		fresh = false
		// Reset every field but keep the SegList backing array (the
		// copy-never-alias rule means no one else can still see it) and the
		// slot, which names the storage rather than the packet's current life.
		segs := p.SegList[:0]
		*p = Packet{SegList: segs, slot: p.slot}
	} else if pp.disabled {
		// No recycling: individual allocations keep -nopool runs GC-bounded
		// instead of retaining every packet ever issued in the slab.
		p = &Packet{}
		pp.allocs++
	} else {
		idx := pp.carved
		if int(idx>>packetChunkBits) == len(pp.chunks) {
			pp.chunks = append(pp.chunks, new([PacketChunkSize]Packet))
		}
		pp.carved++
		p = &pp.chunks[idx>>packetChunkBits][idx&packetChunkMask]
		p.slot = idx + 1
		pp.allocs++
	}
	if pp.obs != nil {
		pp.obs.PoolGet(p, fresh)
	}
	return p
}

// Put returns a terminated packet to the pool. Nil pools, nil packets and
// duplicate Puts are safe: the duplicate is rejected (and counted) rather
// than corrupting the free-list.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	if p.pooled {
		pp.doublePuts++
		if pp.obs != nil {
			pp.obs.PoolPut(p, false)
		}
		return
	}
	if pp.obs != nil {
		pp.obs.PoolPut(p, true)
	}
	pp.puts++
	if pp.disabled {
		return
	}
	p.pooled = true
	p.next = nil
	pp.free = append(pp.free, p)
}

// Live returns the number of packets handed out and not yet returned. At
// drain time (simulation complete, queues empty) it must be zero.
func (pp *PacketPool) Live() uint64 {
	if pp == nil {
		return 0
	}
	return pp.gets - pp.puts
}

// Stats snapshots the counters.
func (pp *PacketPool) Stats() PoolStats {
	if pp == nil {
		return PoolStats{}
	}
	return PoolStats{
		Allocated:  pp.allocs,
		Gets:       pp.gets,
		Puts:       pp.puts,
		InPool:     uint64(len(pp.free)),
		Live:       pp.gets - pp.puts,
		DoublePuts: pp.doublePuts,
	}
}

// CheckCoherence verifies the pool's conservation identity — every object
// the pool ever created is either live or in the free-list (live + pooled =
// allocated, adjusted for foreign packets Put into the pool) — and that no
// double-Put occurred. The audit layer calls it at drain time.
func (pp *PacketPool) CheckCoherence() error {
	if pp == nil {
		return nil
	}
	if err := pp.CheckCoherenceShared(); err != nil {
		return err
	}
	if pp.gets < pp.puts {
		return fmt.Errorf("netem: pool returned %d packets but only handed out %d", pp.puts, pp.gets)
	}
	return nil
}

// CheckCoherenceShared verifies the invariants that survive cross-pool
// packet migration. A sharded run Puts each packet into the pool of the
// shard that terminates it, so a single pool may legitimately return more
// packets than it handed out (or fewer); what must still hold per pool is
// that no packet was Put twice and that the free-list contains exactly the
// packets Put and not yet re-issued. The hand-out/return balance is only
// meaningful summed across the exchanging pools, which the sharded audit
// checks globally.
func (pp *PacketPool) CheckCoherenceShared() error {
	if pp == nil {
		return nil
	}
	if pp.doublePuts > 0 {
		return fmt.Errorf("netem: pool saw %d double-Puts", pp.doublePuts)
	}
	if !pp.disabled {
		// reuses = gets - allocs; the free-list must hold exactly the
		// packets Put and not yet re-issued.
		reuses := pp.gets - pp.allocs
		if want := pp.puts - reuses; uint64(len(pp.free)) != want {
			return fmt.Errorf("netem: pool free-list holds %d packets, want %d (allocs=%d gets=%d puts=%d)",
				len(pp.free), want, pp.allocs, pp.gets, pp.puts)
		}
	}
	return nil
}
