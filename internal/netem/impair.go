package netem

import (
	"fmt"
	"math/rand/v2"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// This file is the link-impairment layer: a per-port controller that injects
// the failure modes a healthy fabric never exhibits — random,
// deterministic-nth and Gilbert-Elliott (bursty, correlated) packet loss,
// blackholes, full link failure (queue frozen), rate degradation, and added
// delay with jitter. Impairments compose on one port, can be reconfigured
// mid-run (scripted via Timeline in timeline.go), and stay visible to the
// conservation auditor: every injected discard goes through the qdisc drop
// machinery under DropImpairment, so byte accounting and drop-counter
// coherence hold under injected chaos.
//
// Composition order on the arrival path is fixed: link failure, then
// blackhole, then the loss process (every-nth, Gilbert-Elliott, or uniform —
// mutually exclusive), then the inner discipline. Rate caps and delay/jitter act on the serializer side (the Port
// consults the controller when it transmits) and never discard packets.

// LinkImpairment is the impairment controller of one port. Install it with
// InstallImpairment, then configure it directly (tests) or let a Timeline
// drive it (experiments). All mutators are safe to call mid-run from
// simulation events.
type LinkImpairment struct {
	port *Port
	q    *ImpairedQdisc
	rng  *rand.Rand

	origRate sim.Rate

	// Loss process: matching packets are dropped every Nth arrival when
	// nth > 0, else with probability lossRate. ge switches to the
	// Gilbert-Elliott two-state chain instead; the three processes are
	// mutually exclusive (SetLoss and SetGE clear each other).
	lossRate float64
	nth      int64
	nthSeen  int64
	match    func(*Packet) bool

	// Gilbert-Elliott correlated loss: a two-state (good/bad) Markov chain
	// advanced once per matching arrival. geP is the good→bad transition
	// probability, geR the bad→good recovery probability; geGood and geBad
	// are the per-packet loss probabilities inside each state. The stationary
	// loss rate is (r·good + p·bad)/(p+r), with mean bad-burst length 1/r —
	// the knob independent random loss does not have.
	ge        bool
	geBad     bool // current chain state (false = good)
	geP, geR  float64
	geGood    float64
	geBadLoss float64

	down      bool // link failed: arrivals dropped, queue frozen
	blackhole bool // arrivals dropped, queue keeps draining

	addDelay sim.Duration
	jitter   sim.Duration
}

// ImpairedQdisc interposes a LinkImpairment between a port and its queueing
// discipline. It owns a DropCounter so injected discards are tallied and
// hooked exactly once, under DropImpairment, at the Enqueue boundary — where
// Port.Send releases refused packets back to the pool.
type ImpairedQdisc struct {
	inner Qdisc
	li    *LinkImpairment
	dc    DropCounter
}

// InstallImpairment wraps the port's current qdisc with an impairment stage
// and returns the controller. The zero configuration impairs nothing; seed
// drives the (per-port) loss and jitter processes deterministically. Install
// before audit instrumentation (audit.Attach) so injected drops are traced.
func InstallImpairment(pt *Port, seed uint64) *LinkImpairment {
	li := &LinkImpairment{
		port:     pt,
		rng:      sim.NewRand(seed, 0x105e),
		origRate: pt.Rate,
	}
	li.q = &ImpairedQdisc{inner: pt.Q, li: li}
	pt.Q = li.q
	pt.Imp = li
	return li
}

// SetLoss configures the loss process for matching packets (nil match means
// every packet): drop every nth arrival when nth > 0, else drop with
// probability rate. The nth counter restarts, so reconfiguring mid-run is
// reproducible.
func (li *LinkImpairment) SetLoss(rate float64, nth int64, match func(*Packet) bool) {
	li.lossRate, li.nth, li.nthSeen, li.match = rate, nth, 0, match
	li.ge = false
}

// SetGE configures Gilbert-Elliott correlated loss for matching packets (nil
// match means every packet): a two-state chain that moves good→bad with
// probability p and bad→good with probability r at each matching arrival,
// dropping with probability good in the good state and bad in the bad state.
// The chain restarts in the good state, so reconfiguring mid-run is
// reproducible; any uniform or every-nth loss process is cleared.
func (li *LinkImpairment) SetGE(p, r, good, bad float64, match func(*Packet) bool) {
	li.ge, li.geBad = true, false
	li.geP, li.geR, li.geGood, li.geBadLoss = p, r, good, bad
	li.lossRate, li.nth, li.nthSeen, li.match = 0, 0, 0, match
}

// Fail takes the link down: arrivals are dropped and the queue freezes (the
// backlog is preserved and drains after Restore), modeling a dead link whose
// buffer survives.
func (li *LinkImpairment) Fail() { li.down = true }

// SetBlackhole switches silent discard of all arrivals on or off; unlike
// Fail, the queue keeps draining.
func (li *LinkImpairment) SetBlackhole(on bool) { li.blackhole = on }

// Restore brings the link back up, clearing failure and blackhole states, and
// kicks the port so a frozen backlog resumes draining.
func (li *LinkImpairment) Restore() {
	li.down, li.blackhole = false, false
	li.port.kick()
}

// SetRate degrades the link to the given rate; 0 restores the rate the port
// had when the impairment was installed. Takes effect from the next
// serialization.
func (li *LinkImpairment) SetRate(cap sim.Rate) {
	if cap <= 0 {
		li.port.Rate = li.origRate
		return
	}
	li.port.Rate = cap
}

// SetDelay adds a fixed extra propagation delay plus a uniformly distributed
// jitter in [0, jitter] to every transmitted packet. Jitter can reorder
// deliveries — that is the point.
func (li *LinkImpairment) SetDelay(add, jitter sim.Duration) {
	li.addDelay, li.jitter = add, jitter
}

// Injected returns the number of packets this impairment discarded.
func (li *LinkImpairment) Injected() uint64 { return li.q.dc.Drops[DropImpairment] }

// Port returns the impaired port.
func (li *LinkImpairment) Port() *Port { return li.port }

// dropOnArrival decides the fate of an arriving packet.
func (li *LinkImpairment) dropOnArrival(p *Packet) bool {
	if li.down || li.blackhole {
		return true
	}
	if li.match != nil && !li.match(p) {
		return false
	}
	if li.nth > 0 {
		li.nthSeen++
		if li.nthSeen%li.nth == 0 {
			return true
		}
		return false
	}
	if li.ge {
		// Sample the loss under the current state, then advance the chain —
		// the textbook per-packet discretization, one transition per arrival.
		prob := li.geGood
		if li.geBad {
			prob = li.geBadLoss
		}
		drop := prob > 0 && li.rng.Float64() < prob
		if li.geBad {
			if li.geR > 0 && li.rng.Float64() < li.geR {
				li.geBad = false
			}
		} else if li.geP > 0 && li.rng.Float64() < li.geP {
			li.geBad = true
		}
		return drop
	}
	return li.lossRate > 0 && li.rng.Float64() < li.lossRate
}

// wireDelay returns the extra delivery delay for one transmission.
func (li *LinkImpairment) wireDelay() sim.Duration {
	d := li.addDelay
	if li.jitter > 0 {
		d += sim.Duration(li.rng.Int64N(int64(li.jitter) + 1))
	}
	return d
}

// Enqueue implements Qdisc: impairment drops are counted and hooked under
// DropImpairment, then refused so the port terminates the packet (releasing
// it to the pool).
func (q *ImpairedQdisc) Enqueue(p *Packet, now sim.Time) bool {
	if q.li.dropOnArrival(p) {
		q.dc.Drop(p, DropImpairment)
		return false
	}
	return q.inner.Enqueue(p, now)
}

// Dequeue implements Qdisc; a failed link yields nothing.
func (q *ImpairedQdisc) Dequeue(now sim.Time) *Packet {
	if q.li.down {
		return nil
	}
	return q.inner.Dequeue(now)
}

// NextWake implements Qdisc. While the link is down there is no wake-up:
// Restore kicks the port explicitly.
func (q *ImpairedQdisc) NextWake(now sim.Time) sim.Time {
	if q.li.down {
		return sim.MaxTime
	}
	return q.inner.NextWake(now)
}

// Backlog implements Qdisc.
func (q *ImpairedQdisc) Backlog() Backlog { return q.inner.Backlog() }

// SetDropHook implements Qdisc: the hook observes both injected drops and the
// inner discipline's own drops, each exactly once.
func (q *ImpairedQdisc) SetDropHook(h DropHook) {
	q.dc.SetDropHook(h)
	q.inner.SetDropHook(h)
}

// Inner returns the wrapped discipline (diagnostics and audits).
func (q *ImpairedQdisc) Inner() Qdisc { return q.inner }

// Packet match classes for impairment targeting. MatchClass resolves the
// class names accepted by the timeline format.
func MatchClass(name string) (func(*Packet) bool, error) {
	switch name {
	case "", "all":
		return nil, nil
	case "data":
		return func(p *Packet) bool { return p.Type == Data }, nil
	case "ctrl":
		return func(p *Packet) bool { return p.Type.IsControl() }, nil
	case "sched":
		return func(p *Packet) bool { return p.Scheduled }, nil
	case "unsched":
		return func(p *Packet) bool { return p.Type == Data && !p.Scheduled }, nil
	default:
		return nil, fmt.Errorf("netem: unknown match class %q (want all, data, ctrl, sched or unsched)", name)
	}
}
