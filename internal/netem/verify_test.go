package netem

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

func TestAuditQdiscCleanQueues(t *testing.T) {
	qs := []Qdisc{
		NewFIFO(0),
		NewSelectiveDrop(6<<10, DefaultBuffer),
		NewPrioQdisc(8, DefaultBuffer),
		NewNDPQueue(NDPQueueConfig{Trim: true}),
		NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(10 * sim.Gbps)}),
	}
	for _, q := range qs {
		for i := 0; i < 5; i++ {
			q.Enqueue(dataPkt(uint64(i), 1538, true), 0)
		}
		q.Dequeue(0)
		if err := AuditQdisc(q); err != nil {
			t.Errorf("%T: clean queue failed audit: %v", q, err)
		}
	}
}

func TestAuditQdiscDetectsCounterDrift(t *testing.T) {
	f := NewFIFO(0)
	f.Enqueue(dataPkt(1, 1538, false), 0)
	f.q.bytes += 7
	if err := AuditQdisc(f); err == nil {
		t.Error("FIFO byte drift not detected")
	}

	pq := NewPrioQdisc(4, DefaultBuffer)
	pq.Enqueue(dataPkt(1, 1538, false), 0)
	pq.total -= 100
	if err := AuditQdisc(pq); err == nil {
		t.Error("PrioQdisc total drift not detected")
	}

	nq := NewNDPQueue(NDPQueueConfig{Trim: true})
	nq.Enqueue(dataPkt(1, 1538, false), 0)
	nq.data.bytes++
	if err := AuditQdisc(nq); err == nil {
		t.Error("NDPQueue data drift not detected")
	}

	xq := NewXPassQdisc(XPassQdiscConfig{CreditRate: CreditRateFor(10 * sim.Gbps)})
	xq.Enqueue(&Packet{Type: Credit, WireSize: CreditSize}, 0)
	xq.credits.bytes--
	if err := AuditQdisc(xq); err == nil {
		t.Error("XPassQdisc credit drift not detected")
	}
}

func TestAuditQdiscUnwrapsInstrumentation(t *testing.T) {
	f := NewFIFO(0)
	q := Qdisc(&tracedQdisc{Qdisc: &ImpairedQdisc{inner: f, li: &LinkImpairment{}}, tracer: NewCountingTracer(), where: "t"})
	f.Enqueue(dataPkt(1, 1538, false), 0)
	if err := AuditQdisc(q); err != nil {
		t.Fatalf("wrapped clean queue failed audit: %v", err)
	}
	f.q.bytes = 42
	if err := AuditQdisc(q); err == nil {
		t.Fatal("drift behind wrappers not detected")
	}
}

// TestDropTotalsThroughInstrumentation is the regression for drop counters
// vanishing from aggregation once a port was instrumented: dropCounterOf
// used to return false for the tracing wrapper, so every audited or traced
// run reported zero switch drops.
func TestDropTotalsThroughInstrumentation(t *testing.T) {
	eng := sim.NewEngine()
	sd := NewSelectiveDrop(1000, 2000)
	pt := NewPort(eng, sd, 10*sim.Gbps, sim.Microsecond, nil, "sw0->h0")
	ports := []*Port{pt}
	InstrumentPorts(ports, NewCountingTracer())

	// Two unscheduled packets: the second exceeds the selective threshold.
	pt.Q.Enqueue(dataPkt(1, 800, false), eng.Now())
	pt.Q.Enqueue(dataPkt(1, 800, false), eng.Now())
	tot := DropTotals(ports)
	if tot[DropSelective] != 1 {
		t.Fatalf("DropTotals through instrumented port = %v, want 1 selective drop", tot)
	}
}

// TestDropTotalsCounterInterface checks the generic Counter()-based
// resolution that reaches disciplines defined outside this package.
func TestDropTotalsCounterInterface(t *testing.T) {
	var dc DropCounter
	if dc.Counter() != &dc {
		t.Fatal("Counter() must expose the embedded counter itself")
	}
}

// TestBaseRTTFollowsFrameBytes is the regression for the hardcoded 1500-byte
// serialization assumption: a jumbo-frame fabric must derive a larger base
// RTT (and therefore BDP) than a standard-MTU one on identical links.
func TestBaseRTTFollowsFrameBytes(t *testing.T) {
	build := func(frame int) *Network {
		return BuildSingleSwitch(sim.NewEngine(), 2, TopoConfig{
			HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond, FrameBytes: frame,
		})
	}
	std := build(0)
	explicit := build(WireSizeFor(MaxPayload))
	jumbo := build(JumboMTU)

	if std.BaseRTT != explicit.BaseRTT {
		t.Fatalf("default FrameBytes RTT %v != explicit 1538B RTT %v", std.BaseRTT, explicit.BaseRTT)
	}
	if jumbo.BaseRTT <= std.BaseRTT {
		t.Fatalf("jumbo RTT %v not above standard RTT %v", jumbo.BaseRTT, std.BaseRTT)
	}
	// The difference is exactly the extra serialization of the larger frame
	// on the two forward hops.
	want := 2 * (sim.TxTime(JumboMTU, 10*sim.Gbps) - sim.TxTime(WireSizeFor(MaxPayload), 10*sim.Gbps))
	if got := jumbo.BaseRTT - std.BaseRTT; got != want {
		t.Fatalf("RTT delta %v, want %v", got, want)
	}
	if jumbo.BDPBytes() <= std.BDPBytes() {
		t.Fatalf("jumbo BDP %d not above standard BDP %d", jumbo.BDPBytes(), std.BDPBytes())
	}
}
