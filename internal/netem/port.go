package netem

import "github.com/aeolus-transport/aeolus/internal/sim"

// Node is anything a port can deliver packets to: a host or a switch.
type Node interface {
	Receive(p *Packet)
}

// Port is a unidirectional output port: a queueing discipline feeding a
// serializer at the link rate, followed by a fixed propagation delay to the
// destination node. Ports never reorder what their qdisc hands them.
//
// The serialization hot path schedules no closures: the tx-done and wake-up
// events dispatch through pointer-cast views of the port itself, and the
// delivery event is the packet (see Packet.Fire).
type Port struct {
	Eng   *sim.Engine
	Q     Qdisc
	Rate  sim.Rate
	Delay sim.Duration
	Dst   Node
	Pool  *PacketPool // releases dropped packets; nil is valid (no recycling)
	Label string      // e.g. "leaf3->spine1", for diagnostics

	// Imp, when non-nil, is the link-impairment controller installed by
	// InstallImpairment: it may mutate Rate and add per-packet delivery
	// delay. Unimpaired ports pay nothing for it.
	Imp *LinkImpairment

	// X, when non-nil, marks this port as a cross-shard link: the delivery
	// event is handed to the shard exchange instead of the local engine, and
	// the destination shard schedules it at the next window barrier. Ports
	// inside a shard (and every port of an unsharded run) pay one nil check.
	X *CrossLink

	busy   bool
	wake   sim.Handle
	wakeAt sim.Time

	// Counters.
	TxPackets uint64
	TxBytes   int64
}

// portTxDone and portWake are zero-state Handler views of a Port: casting
// the port pointer selects which Fire runs, so scheduling either event
// allocates nothing.
type portTxDone Port

func (d *portTxDone) Fire() {
	pt := (*Port)(d)
	pt.busy = false
	pt.kick()
}

type portWake Port

func (w *portWake) Fire() {
	pt := (*Port)(w)
	pt.wake = sim.Handle{}
	pt.kick()
}

// NewPort constructs a port. The qdisc, rate and destination must be set.
func NewPort(eng *sim.Engine, q Qdisc, rate sim.Rate, delay sim.Duration, dst Node, label string) *Port {
	return &Port{Eng: eng, Q: q, Rate: rate, Delay: delay, Dst: dst, Label: label}
}

// Send offers a packet to the port. If the qdisc drops it, the port
// terminates the packet's life and releases it to the pool — drop hooks and
// tracing run inside Enqueue, before the release.
func (pt *Port) Send(p *Packet) {
	if pt.Q.Enqueue(p, pt.Eng.Now()) {
		pt.kick()
	} else {
		pt.ReleasePacket(p)
	}
}

// ReleasePacket terminates the life of a packet refused by the port's qdisc
// stack and returns it to the pool. Any drop hook or trace must already have
// fired (inside Enqueue); this is the single terminal release point for
// drops, mirroring Host.deliver for deliveries.
func (pt *Port) ReleasePacket(p *Packet) { pt.Pool.Put(p) }

// kick starts the serializer if it is idle and a packet is eligible. If the
// qdisc is holding shaped packets, a wake-up is scheduled instead.
func (pt *Port) kick() {
	if pt.busy {
		return
	}
	now := pt.Eng.Now()
	p := pt.Q.Dequeue(now)
	if p == nil {
		w := pt.Q.NextWake(now)
		if w == sim.MaxTime {
			return
		}
		if pt.wake.Pending() && pt.wakeAt <= w && pt.wakeAt > now {
			return // an earlier or equal wake-up is already pending
		}
		pt.wake.Cancel()
		if w <= now {
			w = now + 1 // defensive: never busy-loop at the same instant
		}
		pt.wakeAt = w
		pt.wake = pt.Eng.AtHandler(w, (*portWake)(pt))
		return
	}
	pt.busy = true
	pt.TxPackets++
	pt.TxBytes += int64(p.WireSize)
	tx := sim.TxTime(p.WireSize, pt.Rate)
	pt.Eng.AfterHandler(tx, (*portTxDone)(pt))
	p.next = pt.Dst
	delay := pt.Delay
	if pt.Imp != nil {
		delay += pt.Imp.wireDelay()
	}
	if pt.X != nil {
		pt.X.depart(p, now.Add(tx+delay), now)
		return
	}
	pt.Eng.AfterHandler(tx+delay, p)
}

// Backlog reports the qdisc occupancy.
func (pt *Port) Backlog() Backlog { return pt.Q.Backlog() }
