package netem

import "github.com/aeolus-transport/aeolus/internal/sim"

// Node is anything a port can deliver packets to: a host or a switch.
type Node interface {
	Receive(p *Packet)
}

// Port is a unidirectional output port: a queueing discipline feeding a
// serializer at the link rate, followed by a fixed propagation delay to the
// destination node. Ports never reorder what their qdisc hands them.
type Port struct {
	Eng   *sim.Engine
	Q     Qdisc
	Rate  sim.Rate
	Delay sim.Duration
	Dst   Node
	Label string // e.g. "leaf3->spine1", for diagnostics

	busy bool
	wake *sim.Event

	// Counters.
	TxPackets uint64
	TxBytes   int64
}

// NewPort constructs a port. The qdisc, rate and destination must be set.
func NewPort(eng *sim.Engine, q Qdisc, rate sim.Rate, delay sim.Duration, dst Node, label string) *Port {
	return &Port{Eng: eng, Q: q, Rate: rate, Delay: delay, Dst: dst, Label: label}
}

// Send offers a packet to the port. The qdisc may drop it.
func (pt *Port) Send(p *Packet) {
	if pt.Q.Enqueue(p, pt.Eng.Now()) {
		pt.kick()
	}
}

// kick starts the serializer if it is idle and a packet is eligible. If the
// qdisc is holding shaped packets, a wake-up is scheduled instead.
func (pt *Port) kick() {
	if pt.busy {
		return
	}
	now := pt.Eng.Now()
	p := pt.Q.Dequeue(now)
	if p == nil {
		w := pt.Q.NextWake(now)
		if w == sim.MaxTime {
			return
		}
		if pt.wake != nil && !pt.wake.Canceled() && pt.wake.Time() <= w && pt.wake.Time() > now {
			return // an earlier or equal wake-up is already pending
		}
		if pt.wake != nil {
			pt.wake.Cancel()
		}
		if w <= now {
			w = now + 1 // defensive: never busy-loop at the same instant
		}
		pt.wake = pt.Eng.At(w, func() {
			pt.wake = nil
			pt.kick()
		})
		return
	}
	pt.busy = true
	pt.TxPackets++
	pt.TxBytes += int64(p.WireSize)
	tx := sim.TxTime(p.WireSize, pt.Rate)
	pt.Eng.After(tx, func() {
		pt.busy = false
		pt.kick()
	})
	pt.Eng.After(tx+pt.Delay, func() {
		pt.Dst.Receive(p)
	})
}

// Backlog reports the qdisc occupancy.
func (pt *Port) Backlog() Backlog { return pt.Q.Backlog() }
