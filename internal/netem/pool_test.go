package netem

import "testing"

func TestPoolRecyclesAndResets(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	p.Type, p.Flow, p.Seq, p.WireSize = Data, 7, 42, 1538
	p.SegList = append(p.SegList, 1, 2, 3)
	pp.Put(p)
	q := pp.Get()
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if q.Type != 0 || q.Flow != 0 || q.Seq != 0 || q.WireSize != 0 || q.pooled {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if len(q.SegList) != 0 || cap(q.SegList) < 3 {
		t.Fatalf("SegList should be truncated but keep capacity: len=%d cap=%d",
			len(q.SegList), cap(q.SegList))
	}
	st := pp.Stats()
	if st.Allocated != 1 || st.Gets != 2 || st.Puts != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDoublePutRejected(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	pp.Put(p)
	pp.Put(p) // must not corrupt the free-list
	if st := pp.Stats(); st.DoublePuts != 1 || st.InPool != 1 {
		t.Fatalf("stats = %+v, want 1 double-Put and 1 pooled packet", st)
	}
	if err := pp.CheckCoherence(); err == nil {
		t.Fatal("CheckCoherence should report the double-Put")
	}
	if q := pp.Get(); q != p {
		t.Fatal("free-list corrupted by the duplicate Put")
	}
	if q := pp.Get(); q == p {
		t.Fatal("the same packet was handed out twice")
	}
}

func TestPoolNilSafety(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool must still produce packets")
	}
	pp.Put(p) // no-op
	if pp.Live() != 0 || pp.Disabled() {
		t.Fatal("nil pool accessors should be inert")
	}
	if err := pp.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDisable(t *testing.T) {
	pp := NewPacketPool()
	pp.Put(pp.Get())
	pp.Disable()
	p := pp.Get()
	pp.Put(p)
	if q := pp.Get(); q == p {
		t.Fatal("disabled pool recycled a packet")
	}
	if err := pp.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	st := pp.Stats()
	if st.InPool != 0 || st.Allocated != 3 {
		t.Fatalf("stats = %+v, want empty free-list and 3 allocations", st)
	}
}

func TestPoolCoherence(t *testing.T) {
	pp := NewPacketPool()
	var live []*Packet
	for i := 0; i < 10; i++ {
		live = append(live, pp.Get())
	}
	for _, p := range live[:6] {
		pp.Put(p)
	}
	pp.Get() // recycle one
	if err := pp.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the free-list behind the pool's back: the identity must break.
	pp.free = pp.free[:len(pp.free)-1]
	if err := pp.CheckCoherence(); err == nil {
		t.Fatal("free-list corruption not detected")
	}
}

type recordingObserver struct {
	gets, fresh, puts, dups int
}

func (o *recordingObserver) PoolGet(_ *Packet, fresh bool) {
	o.gets++
	if fresh {
		o.fresh++
	}
}

func (o *recordingObserver) PoolPut(_ *Packet, firstPut bool) {
	if firstPut {
		o.puts++
	} else {
		o.dups++
	}
}

func TestPoolObserverSeesEveryTransfer(t *testing.T) {
	pp := NewPacketPool()
	obs := &recordingObserver{}
	pp.SetObserver(obs)
	p := pp.Get()
	pp.Put(p)
	pp.Put(p) // duplicate: p is still in the free-list
	q := pp.Get()
	pp.Put(q)
	if obs.gets != 2 || obs.fresh != 1 || obs.puts != 2 || obs.dups != 1 {
		t.Fatalf("observer saw %+v", obs)
	}
}

// TestPoolSlotSlabSemantics pins the dense-index contract of the packet slab:
// slab-carved packets report a stable PoolSlot across their whole recycling
// life (the slot names the storage, not the packet's current use), slots are
// carved densely from zero, and packets outside the slab — nil-pool fixtures
// and disabled-pool individual allocations — report -1 so slot-keyed state
// arrays know to fall back.
func TestPoolSlotSlabSemantics(t *testing.T) {
	pp := NewPacketPool()
	n := 2*PacketChunkSize + 3 // force growth past a chunk boundary
	pkts := make([]*Packet, n)
	for i := range pkts {
		pkts[i] = pp.Get()
		if got := pkts[i].PoolSlot(); got != int32(i) {
			t.Fatalf("packet %d carved with slot %d, want dense slots from zero", i, got)
		}
	}
	// Recycling keeps the slot: the free list is LIFO, so the last Put comes
	// back first, still naming its original storage.
	last := pkts[n-1]
	pp.Put(last)
	if got := pp.Get(); got != last || got.PoolSlot() != int32(n-1) {
		t.Fatalf("recycled packet %p slot %d, want %p slot %d", got, got.PoolSlot(), last, n-1)
	}

	if got := (*PacketPool)(nil).Get().PoolSlot(); got != -1 {
		t.Errorf("nil-pool packet reports slot %d, want -1", got)
	}
	off := NewPacketPool()
	off.Disable()
	if got := off.Get().PoolSlot(); got != -1 {
		t.Errorf("disabled-pool packet reports slot %d, want -1", got)
	}
}
