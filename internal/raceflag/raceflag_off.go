//go:build !race

// Package raceflag reports whether the race detector is compiled into the
// binary. Timing-sensitive CI gates consult it to keep their allocation
// assertions — race mode does not change allocation counts — while skipping
// wall-clock ns/op ceilings, which race instrumentation inflates roughly an
// order of magnitude and would otherwise make `make race` flake on gates
// that are green in every non-instrumented build.
package raceflag

// Enabled is false in ordinary builds.
const Enabled = false
