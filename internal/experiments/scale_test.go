package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// ledgerPath is the committed scale ledger at the repo root, relative to this
// package's test working directory.
const ledgerPath = "../../BENCH_scale.json"

// TestScaleSmoke is the CI tier of the scale sweep: the smallest fabric of
// the grid, both load points, gated against the committed BENCH_scale.json
// baseline. The gates are deliberately loose — events/sec may legitimately
// wobble 2x across machines and CI noise — but a real capacity regression
// (events/sec collapse, heap or scheduler-pressure blow-up) trips them.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke runs full simulations; skipped in -short")
	}
	led, err := LoadScaleLedger(ledgerPath)
	if err != nil {
		t.Fatalf("scale ledger missing or unreadable (regenerate with `make scale`): %v", err)
	}
	cfg := DefaultConfig()
	for _, load := range scaleLoads {
		pt := MeasureScale(cfg, 8, load)
		t.Logf("%s: %d events in %.2fs (%.3g ev/s), peak pending %d, heap peak %.1f MB, %.0f B/flow",
			pt.Key(), pt.Events, pt.WallSeconds, pt.EventsPerSec,
			pt.PeakPending, float64(pt.HeapPeakBytes)/(1<<20), pt.StateBytesPerFlow)
		if pt.Completed != pt.Flows {
			t.Errorf("%s: %d/%d flows completed", pt.Key(), pt.Completed, pt.Flows)
		}
		if !pt.AuditClean {
			t.Errorf("%s: audit violations", pt.Key())
		}
		if pt.StateFlows != pt.Flows || pt.StateSenders != pt.Flows {
			t.Errorf("%s: footprint reports %d flows / %d senders, want %d",
				pt.Key(), pt.StateFlows, pt.StateSenders, pt.Flows)
		}
		base, ok := led.Baseline[pt.Key()]
		if !ok {
			t.Errorf("%s: no baseline in %s", pt.Key(), ledgerPath)
			continue
		}
		// Simulation-deterministic metrics gate unconditionally; wall-clock
		// and heap gates are skipped under the race detector, whose 10-20x
		// slowdown and shadow memory would trip them on a healthy build.
		// Behavior changes legitimately move the event count (golden digests
		// own exact behavior); a blow-up in events per flow is a scale bug.
		if float64(pt.Events) > 1.5*float64(base.Events) {
			t.Errorf("%s: %d events exceeds 1.5x baseline %d — event efficiency regressed",
				pt.Key(), pt.Events, base.Events)
		}
		if float64(pt.PeakPending) > 2*float64(base.PeakPending) {
			t.Errorf("%s: peak pending %d exceeds 2x baseline %d",
				pt.Key(), pt.PeakPending, base.PeakPending)
		}
		if raceEnabled {
			t.Logf("%s: race detector on; skipping events/sec and heap gates", pt.Key())
			continue
		}
		if pt.EventsPerSec < base.EventsPerSec/2.5 {
			t.Errorf("%s: events/sec collapsed: %.3g, baseline %.3g (gate: ≥ baseline/2.5)",
				pt.Key(), pt.EventsPerSec, base.EventsPerSec)
		}
		if float64(pt.HeapPeakBytes) > 2*float64(base.HeapPeakBytes) {
			t.Errorf("%s: heap peak %.1f MB exceeds 2x baseline %.1f MB",
				pt.Key(), float64(pt.HeapPeakBytes)/(1<<20), float64(base.HeapPeakBytes)/(1<<20))
		}
		if pt.StateBytesPerFlow > 2*base.StateBytesPerFlow {
			t.Errorf("%s: per-flow state %.0f B exceeds 2x baseline %.0f B",
				pt.Key(), pt.StateBytesPerFlow, base.StateBytesPerFlow)
		}
	}
}

// TestScaleLedgerRoundTrip pins the ledger file mechanics: the first write
// seeds the baseline, later writes replace current while preserving the
// frozen baseline and note.
func TestScaleLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	first := []ScalePoint{{Topo: "clos:8/8,hosts=8", Hosts: 64, Load: 0.4, EventsPerSec: 1e6}}
	if err := WriteScaleLedger(path, "test note", first); err != nil {
		t.Fatal(err)
	}
	second := []ScalePoint{{Topo: "clos:8/8,hosts=8", Hosts: 64, Load: 0.4, EventsPerSec: 2e6}}
	if err := WriteScaleLedger(path, "other note", second); err != nil {
		t.Fatal(err)
	}
	led, err := LoadScaleLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	key := first[0].Key()
	if key != "h64/l0.4" {
		t.Fatalf("key = %q, want h64/l0.4", key)
	}
	if led.Note != "test note" {
		t.Errorf("note overwritten: %q", led.Note)
	}
	if got := led.Baseline[key].EventsPerSec; got != 1e6 {
		t.Errorf("baseline not preserved: %g, want 1e6", got)
	}
	if got := led.Current[key].EventsPerSec; got != 2e6 {
		t.Errorf("current not updated: %g, want 2e6", got)
	}
	if _, err := LoadScaleLedger(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing ledger: err = %v, want IsNotExist", err)
	}
}
