package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// ledgerPath is the committed scale ledger at the repo root, relative to this
// package's test working directory.
const ledgerPath = "../../BENCH_scale.json"

// TestScaleSmoke is the CI tier of the scale sweep: the smallest fabric of
// the grid, both load points, gated against the committed BENCH_scale.json
// baseline. The gates are deliberately loose — events/sec may legitimately
// wobble 2x across machines and CI noise — but a real capacity regression
// (events/sec collapse, heap or scheduler-pressure blow-up) trips them.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke runs full simulations; skipped in -short")
	}
	led, err := LoadScaleLedger(ledgerPath)
	if err != nil {
		t.Fatalf("scale ledger missing or unreadable (regenerate with `make scale`): %v", err)
	}
	cfg := DefaultConfig()
	for _, load := range scaleLoads {
		pt := MeasureScale(cfg, 8, load)
		t.Logf("%s: %d events in %.2fs (%.3g ev/s), peak pending %d, heap peak %.1f MB, %.0f B/flow",
			pt.Key(), pt.Events, pt.WallSeconds, pt.EventsPerSec,
			pt.PeakPending, float64(pt.HeapPeakBytes)/(1<<20), pt.StateBytesPerFlow)
		if pt.Completed != pt.Flows {
			t.Errorf("%s: %d/%d flows completed", pt.Key(), pt.Completed, pt.Flows)
		}
		if !pt.AuditClean {
			t.Errorf("%s: audit violations", pt.Key())
		}
		if pt.StateFlows != pt.Flows || pt.StateSenders != pt.Flows {
			t.Errorf("%s: footprint reports %d flows / %d senders, want %d",
				pt.Key(), pt.StateFlows, pt.StateSenders, pt.Flows)
		}
		base, ok := led.Baseline[pt.Key()]
		if !ok {
			t.Errorf("%s: no baseline in %s", pt.Key(), ledgerPath)
			continue
		}
		// Simulation-deterministic metrics gate unconditionally; wall-clock
		// and heap gates are skipped under the race detector, whose 10-20x
		// slowdown and shadow memory would trip them on a healthy build.
		// Behavior changes legitimately move the event count (golden digests
		// own exact behavior); a blow-up in events per flow is a scale bug.
		if float64(pt.Events) > 1.5*float64(base.Events) {
			t.Errorf("%s: %d events exceeds 1.5x baseline %d — event efficiency regressed",
				pt.Key(), pt.Events, base.Events)
		}
		if float64(pt.PeakPending) > 2*float64(base.PeakPending) {
			t.Errorf("%s: peak pending %d exceeds 2x baseline %d",
				pt.Key(), pt.PeakPending, base.PeakPending)
		}
		if raceEnabled {
			t.Logf("%s: race detector on; skipping events/sec and heap gates", pt.Key())
			continue
		}
		if pt.EventsPerSec < base.EventsPerSec/2.5 {
			t.Errorf("%s: events/sec collapsed: %.3g, baseline %.3g (gate: ≥ baseline/2.5)",
				pt.Key(), pt.EventsPerSec, base.EventsPerSec)
		}
		if float64(pt.HeapPeakBytes) > 2*float64(base.HeapPeakBytes) {
			t.Errorf("%s: heap peak %.1f MB exceeds 2x baseline %.1f MB",
				pt.Key(), float64(pt.HeapPeakBytes)/(1<<20), float64(base.HeapPeakBytes)/(1<<20))
		}
		if pt.StateBytesPerFlow > 2*base.StateBytesPerFlow {
			t.Errorf("%s: per-flow state %.0f B exceeds 2x baseline %.0f B",
				pt.Key(), pt.StateBytesPerFlow, base.StateBytesPerFlow)
		}
	}
}

// TestScaleSmokeSharded is the sharded cell of the CI scale smoke: the
// smallest fabric of the grid run at Shards=2, checking that the sharded path
// survives a real sweep cell end to end — full completion, clean global audit,
// the execution-shape fields stamped, and no event-count blow-up against the
// sequential baseline of the same (hosts, load) cell.
func TestScaleSmokeSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke runs full simulations; skipped in -short")
	}
	led, err := LoadScaleLedger(ledgerPath)
	if err != nil {
		t.Fatalf("scale ledger missing or unreadable (regenerate with `make scale`): %v", err)
	}
	cfg := DefaultConfig()
	cfg.Shards = 2
	pt := MeasureScale(cfg, 8, 0.4)
	t.Logf("%s: %d events in %.2fs (%.3g ev/s), shards %d, GOMAXPROCS %d",
		pt.Key(), pt.Events, pt.WallSeconds, pt.EventsPerSec, pt.Shards, pt.GOMAXPROCS)
	if pt.Shards != 2 {
		t.Errorf("shards = %d, want 2 (the 8-wide leafspine partitions in half)", pt.Shards)
	}
	if pt.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d not stamped", pt.GOMAXPROCS)
	}
	if pt.Key() != "h64/l0.4/s2" {
		t.Errorf("ledger key = %q, want the sharded /s2 suffix", pt.Key())
	}
	if pt.Completed != pt.Flows {
		t.Errorf("%d/%d flows completed", pt.Completed, pt.Flows)
	}
	if !pt.AuditClean {
		t.Error("audit violations on the sharded cell")
	}
	// Sender state lives on exactly one shard, so the summed sender count
	// matches the flow count; flow-table entries are pre-registered on both
	// endpoint shards of a cross-shard flow, so their sum lands between one
	// and two entries per flow.
	if pt.StateSenders != pt.Flows {
		t.Errorf("footprint over shards reports %d senders, want %d", pt.StateSenders, pt.Flows)
	}
	if pt.StateFlows < pt.Flows || pt.StateFlows > 2*pt.Flows {
		t.Errorf("footprint over shards reports %d flow entries, want within [%d, %d]",
			pt.StateFlows, pt.Flows, 2*pt.Flows)
	}
	// The sharded run fires the same simulation plus cross-shard handoff and
	// barrier events; compare against the sequential baseline of the same
	// cell, not a sharded one, so the bound also caps the sharding overhead.
	if base, ok := led.Baseline["h64/l0.4"]; ok {
		if float64(pt.Events) > 1.5*float64(base.Events) {
			t.Errorf("%d events exceeds 1.5x the sequential baseline %d", pt.Events, base.Events)
		}
	} else {
		t.Errorf("no sequential h64/l0.4 baseline in %s", ledgerPath)
	}
}

// stateBytesPerFlowCeiling is the committed per-flow state budget for the
// largest fabric of the grid: 2.5 KB. The packed-table layout (flow tables
// over slab chunks, bitmap segment flags) landed h1024 well under it from the
// ~4.1 KB of the map-of-pointers layout; creeping back over is a memory
// regression and needs a PR justifying why.
const stateBytesPerFlowCeiling = 2560

// TestScaleLedgerStateCeiling gates the committed ledger itself: the h1024
// cells CI cannot afford to re-run must have been measured under the per-flow
// state ceiling, and every current cell must carry the slab-geometry stamp of
// the compiled constants — a ledger regenerated under different chunk sizes
// without being recommitted alongside them is not comparable.
//
// Sharded (/sN) cells are exempt from the per-flow ceiling: each shard owns a
// full engine slab, packet pool and port array, so their retained heap
// measures the sharding overhead the /sN keys exist to track, not the
// per-flow layout this ceiling budgets.
func TestScaleLedgerStateCeiling(t *testing.T) {
	led, err := LoadScaleLedger(ledgerPath)
	if err != nil {
		t.Fatalf("scale ledger missing or unreadable (regenerate with `make scale`): %v", err)
	}
	found := 0
	for key, pt := range led.Current {
		if pt.Hosts != 1024 || pt.Shards > 1 {
			continue
		}
		found++
		if pt.StateBytesPerFlow <= 0 {
			t.Errorf("%s: no state_bytes_per_flow recorded", key)
		}
		if pt.StateBytesPerFlow > stateBytesPerFlowCeiling {
			t.Errorf("%s: %.0f B/flow exceeds the %d B ceiling",
				key, pt.StateBytesPerFlow, stateBytesPerFlowCeiling)
		}
	}
	if found == 0 {
		t.Errorf("no h1024 cells in %s current section; run `make scale` on the full grid", ledgerPath)
	}
	for key, pt := range led.Current {
		if pt.EventChunk != sim.EventChunkSize || pt.PacketChunk != netem.PacketChunkSize {
			t.Errorf("%s: measured under slab geometry event=%d packet=%d, compiled constants are %d/%d — re-run `make scale`",
				key, pt.EventChunk, pt.PacketChunk, sim.EventChunkSize, netem.PacketChunkSize)
		}
	}
}

// TestScaleLedgerRoundTrip pins the ledger file mechanics: the first write
// seeds the baseline, later writes merge into current by cell key while
// preserving the frozen baseline and note.
func TestScaleLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	first := []ScalePoint{{Topo: "clos:8/8,hosts=8", Hosts: 64, Load: 0.4, EventsPerSec: 1e6}}
	if err := WriteScaleLedger(path, "test note", first); err != nil {
		t.Fatal(err)
	}
	second := []ScalePoint{{Topo: "clos:8/8,hosts=8", Hosts: 64, Load: 0.4, EventsPerSec: 2e6}}
	if err := WriteScaleLedger(path, "other note", second); err != nil {
		t.Fatal(err)
	}
	led, err := LoadScaleLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	key := first[0].Key()
	if key != "h64/l0.4" {
		t.Fatalf("key = %q, want h64/l0.4", key)
	}
	if led.Note != "test note" {
		t.Errorf("note overwritten: %q", led.Note)
	}
	if got := led.Baseline[key].EventsPerSec; got != 1e6 {
		t.Errorf("baseline not preserved: %g, want 1e6", got)
	}
	if got := led.Current[key].EventsPerSec; got != 2e6 {
		t.Errorf("current not updated: %g, want 2e6", got)
	}

	// A sharded measurement of the same cell merges alongside the sequential
	// one instead of erasing it.
	sharded := []ScalePoint{{Topo: "clos:8/8,hosts=8", Hosts: 64, Load: 0.4, Shards: 2, EventsPerSec: 3e6}}
	if err := WriteScaleLedger(path, "", sharded); err != nil {
		t.Fatal(err)
	}
	led, err = LoadScaleLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := led.Current[key].EventsPerSec; got != 2e6 {
		t.Errorf("sequential cell erased by sharded write: %g, want 2e6", got)
	}
	if got := led.Current["h64/l0.4/s2"].EventsPerSec; got != 3e6 {
		t.Errorf("sharded cell not merged: %g, want 3e6", got)
	}
	if _, err := LoadScaleLedger(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing ledger: err = %v, want IsNotExist", err)
	}
}
