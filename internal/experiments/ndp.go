package experiments

import (
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Fig14 reproduces Figure 14: FCT of 0-100KB flows under NDP with cutting
// payload and NDP+Aeolus (selective dropping, no switch modification)
// across the four workloads, on the two-tier 100G fabric at 40% core load.
// The paper's claim: the two CDFs nearly coincide.
func Fig14(cfg Config) []Table {
	t := Table{ID: "fig14", Title: "NDP ± Aeolus, 0-100KB flows (leaf-spine, 40% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, workload.All, []string{"ndp", "ndp+aeolus"}, TopoLeafSpine, 0.4)
	return []Table{t}
}

// Fig14Scenarios declares Fig. 14's sweep.
func Fig14Scenarios(cfg Config) []scenario.Scenario {
	return fctSweepScenarios(cfg, workload.All, []string{"ndp", "ndp+aeolus"}, TopoLeafSpine, 0.4)
}
