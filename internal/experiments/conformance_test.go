package experiments

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// TestSchemeConformance runs every registered scheme through the shared
// invariant table on the golden trace, under both event schedulers, so a
// newly registered transport or variant gets baseline coverage for free:
//
//   - every flow completes before the deadline
//   - the packet-conservation audit is clean
//   - no flow beats its ideal completion time
//   - transfer efficiency never exceeds 1
func TestSchemeConformance(t *testing.T) {
	for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
		for _, e := range Schemes() {
			sched, e := sched, e
			t.Run(string(sched)+"/"+e.ID, func(t *testing.T) {
				t.Parallel()
				cfg := GoldenConfig()
				cfg.Audit = true
				cfg.Scheduler = sched
				r := Run(cfg, GoldenSpec(e.ID))
				if r.Completed != r.Total {
					t.Errorf("completed %d of %d flows", r.Completed, r.Total)
				}
				if r.Audit == nil {
					t.Error("no audit report attached")
				} else if err := r.Audit.Err(); err != nil {
					t.Errorf("audit: %v", err)
				}
				for _, rec := range r.Records() {
					if fct := rec.Finish.Sub(rec.Start); fct < rec.IdealFCT {
						t.Errorf("flow %d: FCT %v beats ideal %v", rec.ID, fct, rec.IdealFCT)
					}
				}
				if r.Efficiency > 1 {
					t.Errorf("transfer efficiency %.4f > 1", r.Efficiency)
				}
				if r.Scheme == "" {
					t.Error("empty display name")
				}
			})
		}
	}
}
