package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// testConfig is small enough for CI but large enough for directional shapes.
func testConfig() Config {
	return Config{Budget: 24 << 20, MinFlows: 100, MaxFlows: 2000, Seed: 1, Quick: true}
}

func cell(t *Table, row int, col string) string {
	for i, c := range t.Columns {
		if c == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellF(tt *testing.T, t *Table, row int, col string) float64 {
	v, err := strconv.ParseFloat(cell(t, row, col), 64)
	if err != nil {
		tt.Fatalf("table %s row %d col %s: %v", t.ID, row, col, err)
	}
	return v
}

func TestRegistryResolves(t *testing.T) {
	if len(Registry) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(Registry))
	}
	for _, e := range Registry {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%s) failed: %v", e.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID(nope) should fail")
	}
}

func TestFig2Shape(t *testing.T) {
	tables := Fig2(testConfig())
	if len(tables) != 2 {
		t.Fatalf("fig2 returned %d tables", len(tables))
	}
	flows := tables[0]
	// The fraction of first-RTT-finishable flows must grow with link speed
	// for every workload (the paper's headline: 60-90% at 100G).
	for _, col := range []string{"WebServer", "CacheFollower", "WebSearch", "DataMining"} {
		first := cellF(t, &flows, 0, col)
		last := cellF(t, &flows, len(flows.Rows)-1, col)
		if last <= first {
			t.Errorf("fig2a %s: fraction did not grow with link speed (%v -> %v)", col, first, last)
		}
		if last < 0.55 {
			t.Errorf("fig2a %s: 100G fraction %v, paper reports 60-90%%", col, last)
		}
	}
}

func TestFig3IdealBeatsVanilla(t *testing.T) {
	cfg := testConfig()
	tables := Fig3(cfg)
	tab := tables[0]
	// Rows alternate vanilla/ideal per workload; ideal must roughly halve
	// the median (paper: 1.5 RTT -> 0.5 RTT) and finish most flows in 1 RTT.
	for i := 0; i < len(tab.Rows); i += 2 {
		vMed := cellF(t, &tab, i, "p50/us")
		oMed := cellF(t, &tab, i+1, "p50/us")
		if oMed >= vMed {
			t.Errorf("row %d: ideal median %v not better than vanilla %v", i, oMed, vMed)
		}
		if frac := cellF(t, &tab, i+1, "in1RTT"); frac < 0.5 {
			t.Errorf("row %d: ideal in-1-RTT fraction %v too low", i, frac)
		}
		if frac := cellF(t, &tab, i, "in1RTT"); frac > 0.2 {
			t.Errorf("row %d: vanilla ExpressPass finished %v of small flows in 1 RTT; it should be ~0", i, frac)
		}
	}
}

func TestFig9AeolusImprovesExpressPass(t *testing.T) {
	cfg := testConfig()
	tables := Fig9(cfg)
	tab := tables[0]
	for i := 0; i < len(tab.Rows); i += 2 {
		vanilla := cellF(t, &tab, i, "mean/us")
		aeolus := cellF(t, &tab, i+1, "mean/us")
		if aeolus >= vanilla {
			t.Errorf("%s: Aeolus mean %v not better than vanilla %v",
				cell(&tab, i, "workload"), aeolus, vanilla)
		}
	}
}

func TestTable5PriorityQueueingMuchWorse(t *testing.T) {
	tables := Table5(testConfig())
	tab := tables[0]
	aeolusMax := cellF(t, &tab, 0, "maxFCT/us")
	prioMax := cellF(t, &tab, 1, "maxFCT/us")
	// Paper: priority queueing ~10x worse because scheduled packets are
	// starved of shared buffer and recovered only after a 10 ms RTO.
	if prioMax < 3*aeolusMax {
		t.Errorf("priority queueing max FCT %v not clearly worse than Aeolus %v", prioMax, aeolusMax)
	}
	if prioMax < 10_000 {
		t.Errorf("priority queueing max FCT %v below RTO scale; no scheduled drop happened", prioMax)
	}
}

func TestFig15QueueTracksThreshold(t *testing.T) {
	tables := Fig15(testConfig())
	tab := tables[0]
	prev := -1.0
	for i := range tab.Rows {
		maxQ := cellF(t, &tab, i, "maxQueue/KB")
		th := cellF(t, &tab, i, "threshold/KB")
		if maxQ <= prev {
			t.Errorf("max queue not increasing with threshold at row %d", i)
		}
		// The queue is bounded by the threshold plus in-flight slack.
		if maxQ > th+16 {
			t.Errorf("threshold %v KB: max queue %v KB far above threshold", th, maxQ)
		}
		prev = maxQ
	}
}

func TestFig16HighThresholdSaturates(t *testing.T) {
	tables := Fig16(testConfig())
	tab := tables[0]
	for i := range tab.Rows {
		if u := cellF(t, &tab, i, "th=12KB"); u < 0.9 {
			t.Errorf("fanin %s: 12KB threshold utilization %v < 0.9",
				cell(&tab, i, "fanin"), u)
		}
	}
}

func TestFig17AeolusNeverWorseMuch(t *testing.T) {
	tables := Fig17(testConfig())
	avg := tables[0]
	// Find paired rows: scheme and scheme+Aeolus.
	rows := map[string]int{}
	for i := range avg.Rows {
		rows[avg.Rows[i][0]] = i
	}
	pairs := [][2]string{
		{"ExpressPass", "ExpressPass+Aeolus"},
		{"Homa", "Homa+Aeolus"},
		{"NDP", "NDP+Aeolus"},
	}
	for _, pr := range pairs {
		b, ok1 := rows[pr[0]]
		a, ok2 := rows[pr[1]]
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %v", pr)
		}
		for c := 1; c < len(avg.Columns); c++ {
			base, _ := strconv.ParseFloat(avg.Rows[b][c], 64)
			plus, _ := strconv.ParseFloat(avg.Rows[a][c], 64)
			if plus > base*1.5 {
				t.Errorf("%s %s: Aeolus slowdown %v vs base %v — should not degrade heavily",
					pr[1], avg.Columns[c], plus, base)
			}
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := testConfig()
	spec := RunSpec{
		Scheme: SchemeSpec{ID: "xpass+aeolus", Seed: 7},
		Topo:   TopoSingleSwitch,
		Incast: &workload.IncastConfig{Fanin: 7, Receiver: 0, MsgSize: 40_000, Seed: 7,
			StartAt: sim.Time(10 * sim.Microsecond)},
	}
	a := Run(cfg, spec)
	b := Run(cfg, spec)
	if a.All.Mean != b.All.Mean || a.All.Max != b.All.Max || a.Completed != b.Completed {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a.All, b.All)
	}
}

func TestMakeSchemeUnknownErrors(t *testing.T) {
	if _, err := MakeScheme(SchemeSpec{ID: "bogus"}); err == nil {
		t.Fatal("unknown scheme did not error")
	} else if !strings.Contains(err.Error(), "xpass+aeolus") {
		t.Fatalf("error does not carry the catalogue: %v", err)
	}
}

func TestAllSchemesRunIncast(t *testing.T) {
	// Every scheme in the catalogue must complete a small incast.
	for _, e := range Schemes() {
		id := e.ID
		spec := SchemeSpec{ID: id, Workload: workload.WebServer, Seed: 3}
		if id == "xpass+prio" {
			spec.RTO = 10 * sim.Millisecond
		}
		r := Run(testConfig(), RunSpec{
			Scheme: spec, Topo: TopoSingleSwitch,
			Incast: &workload.IncastConfig{Fanin: 5, Receiver: 0, MsgSize: 50_000,
				Seed: 3, StartAt: sim.Time(10 * sim.Microsecond)},
			Deadline: sim.Duration(sim.Second),
		})
		if r.Completed != r.Total {
			t.Errorf("%s: completed %d of %d", id, r.Completed, r.Total)
		}
		if !strings.Contains(r.Scheme, "") {
			t.Errorf("%s: empty display name", id)
		}
	}
}

func TestTablePanicsOnBadRow(t *testing.T) {
	tab := Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tab.Add("only-one")
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Columns: []string{"a", "b"}}
	tab.Add("1", "2")
	var sb, sc strings.Builder
	tab.Fprint(&sb)
	if !strings.Contains(sb.String(), "## x — T") || !strings.Contains(sb.String(), "1") {
		t.Fatalf("Fprint output: %q", sb.String())
	}
	tab.CSV(&sc)
	if sc.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV output: %q", sc.String())
	}
}
