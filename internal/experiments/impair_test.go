package experiments

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
)

// lossSweep runs the golden trace for the given schemes under uniform random
// loss, audited, and requires the recovery invariants: every flow completes,
// the conservation books balance to zero violations, and injected drops are
// attributed under DropImpairment.
func lossSweep(t *testing.T, schemes []string, rates []float64) {
	t.Helper()
	cfg := testConfig()
	cfg.Audit = true
	cfg.Parallel = 4
	type key struct {
		id   string
		rate float64
	}
	var keys []key
	var specs []RunSpec
	for _, id := range schemes {
		for _, rate := range rates {
			spec := GoldenSpec(id)
			spec.Impair = LossTimeline(rate)
			keys = append(keys, key{id, rate})
			specs = append(specs, spec)
		}
	}
	pool := NewPool(cfg)
	for _, spec := range specs {
		pool.Submit(spec)
	}
	for j, r := range pool.Collect() {
		k := keys[j]
		if r.Completed != r.Total {
			t.Errorf("%s at %g loss: completed %d of %d — recovery failed",
				k.id, k.rate, r.Completed, r.Total)
			continue
		}
		if r.Audit == nil {
			t.Errorf("%s at %g loss: no audit report", k.id, k.rate)
			continue
		}
		if err := r.Audit.Err(); err != nil {
			t.Errorf("%s at %g loss: %v", k.id, k.rate, err)
		}
		if r.Audit.DropsByReason[netem.DropImpairment] == 0 {
			t.Errorf("%s at %g loss: no drops attributed to DropImpairment", k.id, k.rate)
		}
	}
}

// TestLossSweepRecovery is the loss-sweep version of the registry-derived
// audit sweep: under 1–10% uniform random loss, every registered scheme must
// still terminate with all flows complete and zero audit violations — the
// retransmission/safety-timer paths must close every hole the impairment
// layer punches.
func TestLossSweepRecovery(t *testing.T) {
	var ids []string
	for _, e := range Schemes() {
		ids = append(ids, e.ID)
	}
	lossSweep(t, ids, []float64{0.01, 0.1})
}

// TestLossSweepSmoke is the short `make ci` smoke: one representative scheme
// per transport family at 5% loss.
func TestLossSweepSmoke(t *testing.T) {
	lossSweep(t, []string{"xpass+aeolus", "homa+aeolus", "ndp+aeolus"}, []float64{0.05})
}

// TestImpairmentDropsExactlyOnce pins the audit attribution contract of the
// impairment layer: hook-observed drops and qdisc counters agree (the
// auditor's drop-coherence check), the pool stays coherent, and the counters
// the result reports match what the controllers injected.
func TestImpairmentDropsExactlyOnce(t *testing.T) {
	cfg := testConfig()
	cfg.Audit = true
	spec := GoldenSpec("xpass+aeolus")
	spec.Impair = LossTimeline(0.05)
	r := Run(cfg, spec)
	if r.Completed != r.Total {
		t.Fatalf("completed %d of %d", r.Completed, r.Total)
	}
	if r.Audit == nil {
		t.Fatal("no audit report")
	}
	if err := r.Audit.Err(); err != nil {
		t.Fatalf("audit violations under impairment: %v", err)
	}
	if got, want := r.Audit.DropsByReason[netem.DropImpairment], r.Drops[netem.DropImpairment]; got != want {
		t.Fatalf("auditor saw %d impairment drops, counters say %d", got, want)
	}
	if r.Drops[netem.DropImpairment] == 0 {
		t.Fatal("no impairment drops at 5% loss")
	}
}
