package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Fig4 reproduces Figure 4: FCT of 0-100KB flows under original Homa and
// the hypothetical Homa with the idealized first RTT (no interference
// between scheduled and unscheduled packets), on Cache Follower and Web
// Server over the two-tier 100G fabric.
func Fig4(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig4", Title: "Homa vs hypothetical Homa, 0-100KB flows (leaf-spine, 40% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, []*workload.CDF{workload.CacheFollower, workload.WebServer},
		[]string{"homa", "homa+oracle"}, TopoLeafSpine, 0.4)
	return []Table{t}
}

// Table1 reproduces Table 1: tail FCT (0-100KB), transfer efficiency and
// average FCT (all flows) under hypothetical Homa, eager Homa (20 µs RTO)
// and original Homa (10 ms RTO), on Cache Follower at 54% core load.
func Table1(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400) // tails need samples and collisions
	wl := workload.CacheFollower
	t := Table{ID: "table1", Title: "Hypothetical vs eager vs original Homa (Cache Follower)",
		Columns: []string{"scheme", "tailFCT(0-100KB)/us", "efficiency", "avgFCT(all)/us"}}
	var specs []RunSpec
	for _, id := range []string{"homa+oracle", "homa-eager", "homa"} {
		specs = append(specs, RunSpec{
			Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
			Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.54,
		})
	}
	for _, r := range runAll(cfg, specs) {
		t.Add(r.Scheme, stats.FormatDur(r.Small.P999), f2(r.Efficiency),
			stats.FormatDur(r.All.Mean))
	}
	return []Table{t}
}

// Fig11 reproduces Figure 11: message completion times of a 7-to-1 incast
// on the 10G testbed topology, Homa with and without Aeolus.
func Fig11(cfg Config) []Table {
	return incastMCT(cfg, "fig11", "homa", "homa+aeolus")
}

// Fig12 reproduces Figure 12: FCT of 0-100KB flows under Homa with and
// without Aeolus across the four workloads, on the two-tier 100G fabric at
// 54% core load (the maximum sustainable Homa load per §5.3).
func Fig12(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig12", Title: "Homa ± Aeolus, 0-100KB flows (leaf-spine, 54% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, workload.All, []string{"homa", "homa+aeolus"}, TopoLeafSpine, 0.54)
	return []Table{t}
}

// Fig13 reproduces Figure 13: the number of flows suffering at least one
// retransmission timeout as the load varies, Homa with and without Aeolus,
// across the four workloads.
func Fig13(cfg Config) []Table {
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Quick {
		loads = []float64{0.2, 0.5, 0.8}
	}
	sweep := cfg
	sweep.Budget = cfg.Budget / 4
	t := Table{ID: "fig13", Title: "Flows suffering timeouts vs load (Homa ± Aeolus)",
		Columns: []string{"workload", "load", "flows", "Homa", "Homa+Aeolus"}}
	var specs []RunSpec
	for _, wl := range workload.All {
		for _, load := range loads {
			for _, id := range []string{"homa", "homa+aeolus"} {
				specs = append(specs, RunSpec{
					Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
					Topo:   TopoLeafSpine, Workload: wl, CoreLoad: load,
				})
			}
		}
	}
	res := runAll(sweep, specs)
	i := 0
	for _, wl := range workload.All {
		for _, load := range loads {
			t.Add(wl.Name(), f2(load), fmt.Sprint(res[i].Total),
				fmt.Sprint(res[i].TimeoutFlows), fmt.Sprint(res[i+1].TimeoutFlows))
			i += 2
		}
	}
	return []Table{t}
}

// Table3 reproduces Table 3: average FCT of all flows under eager Homa
// (20 µs RTO) and Homa+Aeolus across the four workloads at 54% core load.
func Table3(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "table3", Title: "Avg FCT of all flows: eager Homa vs Homa+Aeolus (54% core)",
		Columns: []string{"workload", "EagerHoma/us", "Homa+Aeolus/us", "reduction", "effEager", "effAeolus"}}
	var specs []RunSpec
	for _, wl := range workload.All {
		for _, id := range []string{"homa-eager", "homa+aeolus"} {
			specs = append(specs, RunSpec{
				Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
				Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.54,
			})
		}
	}
	res := runAll(cfg, specs)
	for i, wl := range workload.All {
		eager, aeolus := res[2*i], res[2*i+1]
		mean := [2]float64{eager.All.Mean.Microseconds(), aeolus.All.Mean.Microseconds()}
		red := 0.0
		if mean[0] > 0 {
			red = 1 - mean[1]/mean[0]
		}
		t.Add(wl.Name(), f2(mean[0]), f2(mean[1]), f3(red),
			f2(eager.Efficiency), f2(aeolus.Efficiency))
	}
	return []Table{t}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
