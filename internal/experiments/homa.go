package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Fig4 reproduces Figure 4: FCT of 0-100KB flows under original Homa and
// the hypothetical Homa with the idealized first RTT (no interference
// between scheduled and unscheduled packets), on Cache Follower and Web
// Server over the two-tier 100G fabric.
func Fig4(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig4", Title: "Homa vs hypothetical Homa, 0-100KB flows (leaf-spine, 40% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, []*workload.CDF{workload.CacheFollower, workload.WebServer},
		[]string{"homa", "homa+oracle"}, TopoLeafSpine, 0.4)
	return []Table{t}
}

// Fig4Scenarios declares Fig. 4's sweep; tails need samples, so the flow
// floor rises to 400 as in Fig4.
func Fig4Scenarios(cfg Config) []scenario.Scenario {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	return fctSweepScenarios(cfg, []*workload.CDF{workload.CacheFollower, workload.WebServer},
		[]string{"homa", "homa+oracle"}, TopoLeafSpine, 0.4)
}

// Table1 reproduces Table 1: tail FCT (0-100KB), transfer efficiency and
// average FCT (all flows) under hypothetical Homa, eager Homa (20 µs RTO)
// and original Homa (10 ms RTO), on Cache Follower at 54% core load.
func Table1(cfg Config) []Table {
	t := Table{ID: "table1", Title: "Hypothetical vs eager vs original Homa (Cache Follower)",
		Columns: []string{"scheme", "tailFCT(0-100KB)/us", "efficiency", "avgFCT(all)/us"}}
	for _, r := range runScenarios(cfg, Table1Scenarios(cfg)) {
		t.Add(r.Scheme, stats.FormatDur(r.Small.P999), f2(r.Efficiency),
			stats.FormatDur(r.All.Mean))
	}
	return []Table{t}
}

// Table1Scenarios declares the three Homa variants on Cache Follower at 54%
// core load; tails need samples and collisions, so the flow floor is 400.
func Table1Scenarios(cfg Config) []scenario.Scenario {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	wl := workload.CacheFollower.Name()
	var scns []scenario.Scenario
	for _, id := range []string{"homa+oracle", "homa-eager", "homa"} {
		scns = append(scns, poissonScenario(cfg, id, wl, TopoLeafSpine, 0.54))
	}
	return scns
}

// Fig11 reproduces Figure 11: message completion times of a 7-to-1 incast
// on the 10G testbed topology, Homa with and without Aeolus.
func Fig11(cfg Config) []Table {
	return incastMCT(cfg, "fig11", "homa", "homa+aeolus")
}

// Fig11Scenarios declares Fig. 11's incast grid.
func Fig11Scenarios(cfg Config) []scenario.Scenario {
	return incastMCTScenarios(cfg, "homa", "homa+aeolus")
}

// Fig12 reproduces Figure 12: FCT of 0-100KB flows under Homa with and
// without Aeolus across the four workloads, on the two-tier 100G fabric at
// 54% core load (the maximum sustainable Homa load per §5.3).
func Fig12(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig12", Title: "Homa ± Aeolus, 0-100KB flows (leaf-spine, 54% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, workload.All, []string{"homa", "homa+aeolus"}, TopoLeafSpine, 0.54)
	return []Table{t}
}

// Fig12Scenarios declares Fig. 12's sweep with the 400-flow floor.
func Fig12Scenarios(cfg Config) []scenario.Scenario {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	return fctSweepScenarios(cfg, workload.All, []string{"homa", "homa+aeolus"}, TopoLeafSpine, 0.54)
}

// Fig13 reproduces Figure 13: the number of flows suffering at least one
// retransmission timeout as the load varies, Homa with and without Aeolus,
// across the four workloads.
func Fig13(cfg Config) []Table {
	loads := loadSweep(cfg.Quick)
	t := Table{ID: "fig13", Title: "Flows suffering timeouts vs load (Homa ± Aeolus)",
		Columns: []string{"workload", "load", "flows", "Homa", "Homa+Aeolus"}}
	res := runScenarios(cfg, Fig13Scenarios(cfg))
	i := 0
	for _, wl := range workload.All {
		for _, load := range loads {
			t.Add(wl.Name(), f2(load), fmt.Sprint(res[i].Total),
				fmt.Sprint(res[i].TimeoutFlows), fmt.Sprint(res[i+1].TimeoutFlows))
			i += 2
		}
	}
	return []Table{t}
}

// Fig13Scenarios declares the (workload × load × scheme) grid of Fig. 13 at
// a quarter of the configured budget.
func Fig13Scenarios(cfg Config) []scenario.Scenario {
	sweep := cfg
	sweep.Budget = cfg.Budget / 4
	var scns []scenario.Scenario
	for _, wl := range workload.All {
		for _, load := range loadSweep(cfg.Quick) {
			for _, id := range []string{"homa", "homa+aeolus"} {
				scns = append(scns, poissonScenario(sweep, id, wl.Name(), TopoLeafSpine, load))
			}
		}
	}
	return scns
}

// Table3 reproduces Table 3: average FCT of all flows under eager Homa
// (20 µs RTO) and Homa+Aeolus across the four workloads at 54% core load.
func Table3(cfg Config) []Table {
	t := Table{ID: "table3", Title: "Avg FCT of all flows: eager Homa vs Homa+Aeolus (54% core)",
		Columns: []string{"workload", "EagerHoma/us", "Homa+Aeolus/us", "reduction", "effEager", "effAeolus"}}
	res := runScenarios(cfg, Table3Scenarios(cfg))
	for i, wl := range workload.All {
		eager, aeolus := res[2*i], res[2*i+1]
		mean := [2]float64{eager.All.Mean.Microseconds(), aeolus.All.Mean.Microseconds()}
		red := 0.0
		if mean[0] > 0 {
			red = 1 - mean[1]/mean[0]
		}
		t.Add(wl.Name(), f2(mean[0]), f2(mean[1]), f3(red),
			f2(eager.Efficiency), f2(aeolus.Efficiency))
	}
	return []Table{t}
}

// Table3Scenarios declares eager Homa against Homa+Aeolus across the four
// workloads at 54% core load, with the 400-flow floor.
func Table3Scenarios(cfg Config) []scenario.Scenario {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	return fctSweepScenarios(cfg, workload.All, []string{"homa-eager", "homa+aeolus"}, TopoLeafSpine, 0.54)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
