package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Fig4 reproduces Figure 4: FCT of 0-100KB flows under original Homa and
// the hypothetical Homa with the idealized first RTT (no interference
// between scheduled and unscheduled packets), on Cache Follower and Web
// Server over the two-tier 100G fabric.
func Fig4(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig4", Title: "Homa vs hypothetical Homa, 0-100KB flows (leaf-spine, 40% core)",
		Columns: fctCols}
	for _, wl := range []*workload.CDF{workload.CacheFollower, workload.WebServer} {
		for _, id := range []string{"homa", "homa+oracle"} {
			r := Run(cfg, RunSpec{
				Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
				Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.4,
			})
			addFCTRow(&t, wl.Name(), r)
		}
	}
	return []Table{t}
}

// Table1 reproduces Table 1: tail FCT (0-100KB), transfer efficiency and
// average FCT (all flows) under hypothetical Homa, eager Homa (20 µs RTO)
// and original Homa (10 ms RTO), on Cache Follower at 54% core load.
func Table1(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400) // tails need samples and collisions
	wl := workload.CacheFollower
	t := Table{ID: "table1", Title: "Hypothetical vs eager vs original Homa (Cache Follower)",
		Columns: []string{"scheme", "tailFCT(0-100KB)/us", "efficiency", "avgFCT(all)/us"}}
	for _, id := range []string{"homa+oracle", "homa-eager", "homa"} {
		r := Run(cfg, RunSpec{
			Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
			Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.54,
		})
		t.Add(r.Scheme, stats.FormatDur(r.Small.P999), f2(r.Efficiency),
			stats.FormatDur(r.All.Mean))
	}
	return []Table{t}
}

// Fig11 reproduces Figure 11: message completion times of a 7-to-1 incast
// on the 10G testbed topology, Homa with and without Aeolus.
func Fig11(cfg Config) []Table {
	return incastMCT(cfg, "fig11", "homa", "homa+aeolus")
}

// Fig12 reproduces Figure 12: FCT of 0-100KB flows under Homa with and
// without Aeolus across the four workloads, on the two-tier 100G fabric at
// 54% core load (the maximum sustainable Homa load per §5.3).
func Fig12(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "fig12", Title: "Homa ± Aeolus, 0-100KB flows (leaf-spine, 54% core)",
		Columns: fctCols}
	for _, wl := range workload.All {
		for _, id := range []string{"homa", "homa+aeolus"} {
			r := Run(cfg, RunSpec{
				Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
				Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.54,
			})
			addFCTRow(&t, wl.Name(), r)
		}
	}
	return []Table{t}
}

// Fig13 reproduces Figure 13: the number of flows suffering at least one
// retransmission timeout as the load varies, Homa with and without Aeolus,
// across the four workloads.
func Fig13(cfg Config) []Table {
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Quick {
		loads = []float64{0.2, 0.5, 0.8}
	}
	sweep := cfg
	sweep.Budget = cfg.Budget / 4
	t := Table{ID: "fig13", Title: "Flows suffering timeouts vs load (Homa ± Aeolus)",
		Columns: []string{"workload", "load", "flows", "Homa", "Homa+Aeolus"}}
	for _, wl := range workload.All {
		for _, load := range loads {
			var timeouts [2]int
			var flows int
			for i, id := range []string{"homa", "homa+aeolus"} {
				r := Run(sweep, RunSpec{
					Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
					Topo:   TopoLeafSpine, Workload: wl, CoreLoad: load,
				})
				timeouts[i] = r.TimeoutFlows
				flows = r.Total
			}
			t.Add(wl.Name(), f2(load), fmt.Sprint(flows),
				fmt.Sprint(timeouts[0]), fmt.Sprint(timeouts[1]))
		}
	}
	return []Table{t}
}

// Table3 reproduces Table 3: average FCT of all flows under eager Homa
// (20 µs RTO) and Homa+Aeolus across the four workloads at 54% core load.
func Table3(cfg Config) []Table {
	cfg.MinFlows = maxI(cfg.MinFlows, 400)
	t := Table{ID: "table3", Title: "Avg FCT of all flows: eager Homa vs Homa+Aeolus (54% core)",
		Columns: []string{"workload", "EagerHoma/us", "Homa+Aeolus/us", "reduction", "effEager", "effAeolus"}}
	for _, wl := range workload.All {
		var mean [2]float64
		var eff [2]float64
		for i, id := range []string{"homa-eager", "homa+aeolus"} {
			r := Run(cfg, RunSpec{
				Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
				Topo:   TopoLeafSpine, Workload: wl, CoreLoad: 0.54,
			})
			mean[i] = r.All.Mean.Microseconds()
			eff[i] = r.Efficiency
		}
		red := 0.0
		if mean[0] > 0 {
			red = 1 - mean[1]/mean[0]
		}
		t.Add(wl.Name(), f2(mean[0]), f2(mean[1]), f3(red), f2(eff[0]), f2(eff[1]))
	}
	return []Table{t}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
