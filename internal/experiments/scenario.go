package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// This file is the bridge between the serializable scenario form
// (internal/scenario) and the harness types that execute a run. The
// direction of truth is scenario → (Config, RunSpec): every registry
// experiment declares its runs as scenario values, FromScenario lowers them
// to the harness, and ToScenario lifts a legacy (Config, RunSpec) pair back
// — the CLIs' -dump-scenario path. The split of Config fields is the
// load-bearing idea:
//
//   - semantic fields (Budget, MinFlows, MaxFlows, Seed, Scheduler) are part
//     of run identity and live in the scenario;
//   - runtime knobs (Parallel, Progress, Audit, OnAudit, DisablePool,
//     process-wide Impair, Observe, Trace) change how a run is executed or
//     observed, never what it computes, and stay outside.
//
// ForScenario layers the two: a scenario's semantic config over the
// caller's runtime knobs.

// FromScenario lowers a scenario to the harness types: the semantic Config
// it runs under and the RunSpec describing the run. The scenario is
// validated (and normalized) first; workload references resolve here, so a
// missing CDF file or unknown built-in surfaces as an error, not a panic.
func FromScenario(sc *scenario.Scenario) (Config, RunSpec, error) {
	if err := sc.Validate(); err != nil {
		return Config{}, RunSpec{}, err
	}
	wl, err := sc.Workload.Resolve()
	if err != nil {
		return Config{}, RunSpec{}, err
	}
	schemeWl := wl
	if sc.SchemeWorkload != nil {
		if schemeWl, err = sc.SchemeWorkload.Resolve(); err != nil {
			return Config{}, RunSpec{}, err
		}
	}
	cfg := Config{
		Budget:    sc.Budget,
		MinFlows:  sc.MinFlows,
		MaxFlows:  sc.MaxFlows,
		Seed:      sc.Seed,
		Scheduler: sc.Scheduler,
	}
	spec := RunSpec{
		Scheme: SchemeSpec{
			ID:        sc.Scheme,
			Workload:  schemeWl,
			RTO:       sc.RTO,
			Threshold: sc.Threshold,
			Seed:      sc.SchemeSeed,
			Opts:      sc.Opts,
		},
		Topo:     sc.Topo,
		Buffer:   sc.Buffer,
		Workload: wl,
		CoreLoad: sc.CoreLoad,
		Flows:    sc.Flows,
		Deadline: sc.Deadline,
		Impair:   sc.Impair,
	}
	if ic := sc.Incast; ic != nil {
		spec.Incast = &workload.IncastConfig{
			Fanin: ic.Fanin, Receiver: ic.Receiver, MsgSize: ic.MsgSize,
			Seed: ic.Seed, StartAt: sim.Time(ic.StartAt), Jitter: ic.Jitter,
		}
	}
	return cfg, spec, nil
}

// mustFromScenario lowers an in-tree scenario; a failure is a generator bug.
func mustFromScenario(sc scenario.Scenario) (Config, RunSpec) {
	cfg, spec, err := FromScenario(&sc)
	if err != nil {
		panic("experiments: bad in-tree scenario: " + err.Error())
	}
	return cfg, spec
}

// ToScenario lifts a legacy (Config, RunSpec) pair into its scenario value —
// the inverse of FromScenario up to normalization. Only the semantic Config
// fields are captured. Budget and the flow clamps are recorded only when the
// run actually derives its flow count from them (a Poisson workload with
// Flows unset); a fixed Flows or a pure incast leaves them out, keeping the
// digest free of dead knobs.
func ToScenario(cfg Config, spec RunSpec) (*scenario.Scenario, error) {
	if spec.Incast != nil && (spec.Incast.Hosts != 0 || spec.Incast.BaseID != 0) {
		return nil, fmt.Errorf("experiments: incast Hosts/BaseID are derived by Run and not representable in a scenario")
	}
	sc := &scenario.Scenario{
		Topo:       spec.Topo,
		Scheme:     spec.Scheme.ID,
		Opts:       spec.Scheme.Opts,
		RTO:        spec.Scheme.RTO,
		Threshold:  spec.Scheme.Threshold,
		Seed:       cfg.Seed,
		SchemeSeed: spec.Scheme.Seed,
		Workload:   scenario.From(spec.Workload),
		Flows:      spec.Flows,
		Buffer:     spec.Buffer,
		Deadline:   spec.Deadline,
		Scheduler:  cfg.Scheduler,
		Impair:     spec.Impair,
	}
	if spec.Scheme.Workload != spec.Workload {
		sc.SchemeWorkload = scenario.From(spec.Scheme.Workload)
	}
	if spec.Workload != nil {
		// The core load only drives the Poisson arrival process; without a
		// workload it is a dead knob that would pollute the digest.
		sc.CoreLoad = spec.CoreLoad
	}
	if spec.Workload != nil && spec.Flows == 0 {
		sc.Budget, sc.MinFlows, sc.MaxFlows = cfg.Budget, cfg.MinFlows, cfg.MaxFlows
	}
	if ic := spec.Incast; ic != nil {
		sc.Incast = &scenario.IncastSpec{
			Fanin: ic.Fanin, Receiver: ic.Receiver, MsgSize: ic.MsgSize,
			Seed: ic.Seed, StartAt: sim.Duration(ic.StartAt), Jitter: ic.Jitter,
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// CheckScenario is the full validation of a scenario file: the structural
// checks of scenario.Validate plus the semantic resolution the harness would
// do — the topology catalogue, the scheme catalogue with its options, and a
// dry application of the impairment timeline against the built topology. A
// scenario error reads exactly like the CLI flag error it replaces.
func CheckScenario(sc *scenario.Scenario) error {
	cfg, spec, err := FromScenario(sc)
	if err != nil {
		return err
	}
	if _, err := ResolveTopo(spec.Topo); err != nil {
		return err
	}
	if _, err := MakeScheme(spec.Scheme); err != nil {
		return err
	}
	return CheckImpair(cfg, spec)
}

// ForScenario layers a scenario's semantic config (sem, the first return of
// FromScenario) over the receiver's runtime knobs, yielding the Config the
// run executes under. The scenario's scheduler wins only when it pins one.
func (c Config) ForScenario(sem Config) Config {
	out := c
	out.Budget = sem.Budget
	out.MinFlows = sem.MinFlows
	out.MaxFlows = sem.MaxFlows
	out.Seed = sem.Seed
	if sem.Scheduler != "" {
		out.Scheduler = sem.Scheduler
	}
	return out
}

// RunScenario executes one scenario under the caller's runtime knobs.
func RunScenario(rt Config, sc *scenario.Scenario) (RunResult, error) {
	sem, spec, err := FromScenario(sc)
	if err != nil {
		return RunResult{}, err
	}
	return Run(rt.ForScenario(sem), spec), nil
}

// runScenarios is the scenario-declared counterpart of runAll: every
// scenario runs under its own semantic config layered over rt's runtime
// knobs, fanned across a Pool, results in declaration order.
func runScenarios(rt Config, scns []scenario.Scenario) []RunResult {
	p := NewPool(rt)
	for i := range scns {
		sem, spec := mustFromScenario(scns[i])
		p.SubmitCfg(rt.ForScenario(sem), spec)
	}
	return p.Collect()
}

// poissonScenario is the shared shape of the figure sweeps: one scheme on a
// catalogue topology driving a built-in workload at a core load, flow count
// derived from the config's budget, seeded so every random stream reduces
// to the run seed (Seed == SchemeSeed, as the paper figures always ran).
func poissonScenario(cfg Config, id, wl, topo string, load float64) scenario.Scenario {
	return scenario.Scenario{
		Topo:       topo,
		Scheme:     id,
		Seed:       cfg.Seed,
		SchemeSeed: cfg.Seed,
		Workload:   &scenario.WorkloadSpec{Name: wl},
		CoreLoad:   load,
		Budget:     cfg.Budget,
		MinFlows:   cfg.MinFlows,
		MaxFlows:   cfg.MaxFlows,
	}
}
