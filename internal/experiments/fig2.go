package experiments

import (
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Fig2 reproduces Figure 2: the fraction of flows (a) and bytes (b) that
// could have been finished within the first RTT (pre-credit phase) under
// different link speeds, for the four production workloads.
//
// The methodology follows §2.2 exactly: a flow "finishes in the first RTT"
// if its size is at most one bandwidth-delay product; the byte fraction is
// B/A with A the workload's mean flow size and B the bytes one RTT carries
// (capped at 1). The RTT is held at the paper's 100G-fabric base RTT so the
// BDP scales linearly with link speed.
func Fig2(cfg Config) []Table {
	speeds := []sim.Rate{1 * sim.Gbps, 10 * sim.Gbps, 25 * sim.Gbps, 40 * sim.Gbps, 100 * sim.Gbps}
	const rtt = 20 * sim.Microsecond // representative intra-DC base RTT

	flows := Table{
		ID: "fig2a", Title: "Fraction of flows that could finish within the first RTT",
		Columns: []string{"link", "WebServer", "CacheFollower", "WebSearch", "DataMining"},
	}
	bytes := Table{
		ID: "fig2b", Title: "Fraction of bytes that could finish within the first RTT",
		Columns: []string{"link", "WebServer", "CacheFollower", "WebSearch", "DataMining"},
	}
	order := []*workload.CDF{workload.WebServer, workload.CacheFollower, workload.WebSearch, workload.DataMining}
	for _, speed := range speeds {
		bdp := float64(sim.BytesIn(rtt, speed))
		frow := []string{speed.String()}
		brow := []string{speed.String()}
		for _, wl := range order {
			frow = append(frow, f3(wl.Fraction(bdp)))
			bf := bdp / wl.Mean()
			if bf > 1 {
				bf = 1
			}
			brow = append(brow, f3(bf))
		}
		flows.Add(frow...)
		bytes.Add(brow...)
	}
	return []Table{flows, bytes}
}
