package experiments

import (
	"fmt"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// fctCols are the small-flow FCT summary columns shared by the CDF-style
// figures: the percentiles the paper's distribution plots encode.
var fctCols = []string{"scheme", "workload", "N", "p25/us", "p50/us", "p90/us", "p99/us", "p99.9/us", "mean/us", "in1RTT"}

func addFCTRow(t *Table, wl string, r RunResult) {
	recs := r.records
	small := make([]stats.FlowRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.Size < 100_000 {
			small = append(small, rec)
		}
	}
	s := r.Small
	p25 := percentileOf(small, 0.25)
	t.Add(r.Scheme, wl, fmt.Sprint(s.N),
		stats.FormatDur(p25), stats.FormatDur(s.P50), stats.FormatDur(s.P90),
		stats.FormatDur(s.P99), stats.FormatDur(s.P999), stats.FormatDur(s.Mean),
		f3(r.FirstRTTFrac))
}

func percentileOf(recs []stats.FlowRecord, p float64) sim.Duration {
	if len(recs) == 0 {
		return 0
	}
	fcts := make([]sim.Duration, len(recs))
	for i, r := range recs {
		fcts[i] = r.FCT()
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	idx := int(p*float64(len(fcts))) - 1
	if idx < 0 {
		idx = 0
	}
	return fcts[idx]
}

// Fig1 reproduces Figure 1: the gap between the existing proactive
// baselines and the idealized pre-credit handling, on Cache Follower at 40%
// core load. (a) ExpressPass wastes the first RTT — mean small-flow FCT vs
// the hypothetical ideal; (b) Homa's blind burst — tail small-flow FCT vs
// the hypothetical ideal.
func Fig1(cfg Config) []Table {
	wl := workload.CacheFollower
	a := Table{ID: "fig1a", Title: "Waiting credits in the pre-credit phase (ExpressPass vs ideal)",
		Columns: fctCols}
	b := Table{ID: "fig1b", Title: "Blind burst in the pre-credit phase (Homa vs ideal)",
		Columns: fctCols}
	res := runScenarios(cfg, Fig1Scenarios(cfg))
	addFCTRow(&a, wl.Name(), res[0])
	addFCTRow(&a, wl.Name(), res[1])
	addFCTRow(&b, wl.Name(), res[2])
	addFCTRow(&b, wl.Name(), res[3])
	return []Table{a, b}
}

// Fig1Scenarios declares Fig. 1's four runs: each proactive baseline and
// its idealized oracle, on the fabric its own paper used.
func Fig1Scenarios(cfg Config) []scenario.Scenario {
	wl := workload.CacheFollower.Name()
	return []scenario.Scenario{
		poissonScenario(cfg, "xpass", wl, TopoFatTree, 0.4),
		poissonScenario(cfg, "xpass+oracle", wl, TopoFatTree, 0.4),
		poissonScenario(cfg, "homa", wl, TopoLeafSpine, 0.4),
		poissonScenario(cfg, "homa+oracle", wl, TopoLeafSpine, 0.4),
	}
}

// Fig3 reproduces Figure 3: FCT of 0-100KB flows under original ExpressPass
// and the hypothetical ExpressPass with the idealized pre-credit solution,
// on Cache Follower and Web Server over the 100G fat-tree.
func Fig3(cfg Config) []Table {
	t := Table{ID: "fig3", Title: "ExpressPass vs hypothetical ExpressPass, 0-100KB flows (fat-tree, 40% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, []*workload.CDF{workload.CacheFollower, workload.WebServer},
		[]string{"xpass", "xpass+oracle"}, TopoFatTree, 0.4)
	return []Table{t}
}

// Fig3Scenarios declares Fig. 3's sweep.
func Fig3Scenarios(cfg Config) []scenario.Scenario {
	return fctSweepScenarios(cfg, []*workload.CDF{workload.CacheFollower, workload.WebServer},
		[]string{"xpass", "xpass+oracle"}, TopoFatTree, 0.4)
}

// fctSweepScenarios declares one run per (workload, scheme) pair, nested in
// the order a serial double loop would produce.
func fctSweepScenarios(cfg Config, wls []*workload.CDF, ids []string, topo string, load float64) []scenario.Scenario {
	var scns []scenario.Scenario
	for _, wl := range wls {
		for _, id := range ids {
			scns = append(scns, poissonScenario(cfg, id, wl.Name(), topo, load))
		}
	}
	return scns
}

// fctSweep runs one simulation per (workload, scheme) pair — all cells in
// parallel through a Pool — and tabulates the small-flow FCT rows.
func fctSweep(cfg Config, t *Table, wls []*workload.CDF, ids []string, topo string, load float64) {
	var names []string
	for _, wl := range wls {
		for range ids {
			names = append(names, wl.Name())
		}
	}
	for i, r := range runScenarios(cfg, fctSweepScenarios(cfg, wls, ids, topo, load)) {
		addFCTRow(t, names[i], r)
	}
}

// Fig8 reproduces Figure 8: message completion times of a 7-to-1 incast on
// the 10G single-switch testbed, ExpressPass with and without Aeolus, for
// message sizes 30-50 KB.
func Fig8(cfg Config) []Table {
	return incastMCT(cfg, "fig8", "xpass", "xpass+aeolus")
}

// Fig8Scenarios declares Fig. 8's incast grid.
func Fig8Scenarios(cfg Config) []scenario.Scenario {
	return incastMCTScenarios(cfg, "xpass", "xpass+aeolus")
}

// incastMCTShape returns the message sizes and repetition rounds of the
// testbed incast studies, trimmed under -quick.
func incastMCTShape(cfg Config) ([]int64, int) {
	if cfg.Quick {
		return []int64{30_000, 50_000}, 5
	}
	return []int64{30_000, 35_000, 40_000, 45_000, 50_000}, 20
}

// incastMCTScenarios declares the testbed 7-to-1 incast grid for two
// schemes: every message size, several rounds each, the round index folded
// into both seeds so rounds are independent draws.
func incastMCTScenarios(cfg Config, base, aeolus string) []scenario.Scenario {
	sizes, rounds := incastMCTShape(cfg)
	var scns []scenario.Scenario
	for _, schemeID := range []string{base, aeolus} {
		for _, size := range sizes {
			for round := 0; round < rounds; round++ {
				scns = append(scns, scenario.Scenario{
					Topo:       TopoSingleSwitch,
					Scheme:     schemeID,
					Seed:       cfg.Seed,
					SchemeSeed: cfg.Seed + uint64(round),
					// The testbed switch shares its buffer dynamically
					// across ports; the congested port's effective share is
					// well under the chip total. 100 KB makes the 7-way
					// burst (7 x BDP = 126 KB) overflow as the hardware did.
					Buffer: 100 << 10,
					Incast: &scenario.IncastSpec{
						Fanin: 7, MsgSize: size,
						Seed:    cfg.Seed + uint64(round),
						StartAt: 10 * sim.Microsecond,
					},
				})
			}
		}
	}
	return scns
}

// incastMCT runs the testbed 7-to-1 incast for two schemes across the
// paper's message sizes, several rounds each, and tabulates MCT stats.
func incastMCT(cfg Config, id, base, aeolus string) []Table {
	t := Table{ID: id, Title: "7-to-1 incast MCT on the 10G testbed topology",
		Columns: []string{"scheme", "msgKB", "rounds", "p50/us", "mean/us", "p99/us", "max/us"}}
	sizes, rounds := incastMCTShape(cfg)
	res := runScenarios(cfg, incastMCTScenarios(cfg, base, aeolus))
	i := 0
	for range []string{base, aeolus} {
		for _, size := range sizes {
			var recs []stats.FlowRecord
			var scheme string
			for round := 0; round < rounds; round++ {
				scheme = res[i].Scheme
				recs = append(recs, res[i].records...)
				i++
			}
			s := stats.Summarize(recs)
			t.Add(scheme, fmt.Sprint(size/1000), fmt.Sprint(rounds),
				stats.FormatDur(s.P50), stats.FormatDur(s.Mean),
				stats.FormatDur(s.P99), stats.FormatDur(s.Max))
		}
	}
	return []Table{t}
}

// Fig9 reproduces Figure 9: FCT of 0-100KB flows under ExpressPass with and
// without Aeolus across the four workloads, on the oversubscribed fat-tree
// at 40% core load.
func Fig9(cfg Config) []Table {
	t := Table{ID: "fig9", Title: "ExpressPass ± Aeolus, 0-100KB flows (fat-tree, 40% core)",
		Columns: fctCols}
	fctSweep(cfg, &t, workload.All, []string{"xpass", "xpass+aeolus"}, TopoFatTree, 0.4)
	return []Table{t}
}

// Fig9Scenarios declares Fig. 9's sweep.
func Fig9Scenarios(cfg Config) []scenario.Scenario {
	return fctSweepScenarios(cfg, workload.All, []string{"xpass", "xpass+aeolus"}, TopoFatTree, 0.4)
}

// Fig10 reproduces Figure 10: average FCT of 0-100KB flows as the load
// varies from 20% to 90%, ExpressPass with and without Aeolus, across the
// four workloads.
func Fig10(cfg Config) []Table {
	loads := loadSweep(cfg.Quick)
	t := Table{ID: "fig10", Title: "Avg FCT of 0-100KB flows vs load (ExpressPass ± Aeolus)",
		Columns: []string{"workload", "load", "ExpressPass/us", "ExpressPass+Aeolus/us", "improvement"}}
	res := runScenarios(cfg, Fig10Scenarios(cfg))
	i := 0
	for _, wl := range workload.All {
		for _, load := range loads {
			mean := [2]float64{res[i].Small.Mean.Microseconds(), res[i+1].Small.Mean.Microseconds()}
			i += 2
			impr := 0.0
			if mean[0] > 0 {
				impr = 1 - mean[1]/mean[0]
			}
			t.Add(wl.Name(), f2(load), f2(mean[0]), f2(mean[1]), f3(impr))
		}
	}
	return []Table{t}
}

// loadSweep is the load grid of the vs-load figures (Figs. 10 and 13),
// trimmed under -quick.
func loadSweep(quick bool) []float64 {
	if quick {
		return []float64{0.2, 0.5, 0.8}
	}
	return []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Fig10Scenarios declares the (workload × load × scheme) grid of Fig. 10
// at a quarter of the configured budget — many runs; keep each lighter.
func Fig10Scenarios(cfg Config) []scenario.Scenario {
	sweep := cfg
	sweep.Budget = cfg.Budget / 4
	var scns []scenario.Scenario
	for _, wl := range workload.All {
		for _, load := range loadSweep(cfg.Quick) {
			for _, id := range []string{"xpass", "xpass+aeolus"} {
				scns = append(scns, poissonScenario(sweep, id, wl.Name(), TopoFatTree, load))
			}
		}
	}
	return scns
}

// Table4 reproduces Table 4: the trapped-vs-lost ambiguity of the
// priority-queueing alternative. ExpressPass+Aeolus against ExpressPass
// with two shared-buffer priority queues recovering only by RTO (10 ms and
// 20 µs), on Cache Follower over the 100G fat-tree; maximum FCT and
// transfer efficiency.
func Table4(cfg Config) []Table {
	t := Table{ID: "table4", Title: "Aeolus vs priority queueing: ambiguity (Cache Follower, fat-tree)",
		Columns: []string{"scheme", "maxFCT/us", "efficiency"}}
	for _, r := range runScenarios(cfg, Table4Scenarios(cfg)) {
		t.Add(r.Scheme, stats.FormatDur(r.All.Max), f2(r.Efficiency))
	}
	return []Table{t}
}

// Table4Scenarios declares Aeolus against the two RTO-only priority-queue
// alternatives on Cache Follower over the fat-tree.
func Table4Scenarios(cfg Config) []scenario.Scenario {
	wl := workload.CacheFollower.Name()
	aeolus := poissonScenario(cfg, "xpass+aeolus", wl, TopoFatTree, 0.4)
	prioSlow := poissonScenario(cfg, "xpass+prio", wl, TopoFatTree, 0.4)
	prioSlow.RTO = 10 * sim.Millisecond
	prioFast := poissonScenario(cfg, "xpass+prio", wl, TopoFatTree, 0.4)
	prioFast.RTO = 20 * sim.Microsecond
	return []scenario.Scenario{aeolus, prioSlow, prioFast}
}

// Table5 reproduces Table 5: the shared-buffer starvation of priority
// queueing. A 20-to-1 incast of 400 KB messages into one 100G port with a
// shared 200KB buffer; Aeolus selective dropping against two priority
// queues; average and maximum FCT.
func Table5(cfg Config) []Table {
	t := Table{ID: "table5", Title: "Aeolus vs priority queueing: 20-to-1 incast, 400KB each",
		Columns: []string{"scheme", "avgFCT/us", "maxFCT/us"}}
	for _, r := range runScenarios(cfg, Table5Scenarios(cfg)) {
		t.Add(r.Scheme, stats.FormatDur(r.All.Mean), stats.FormatDur(r.All.Max))
	}
	return []Table{t}
}

// Table5Scenarios declares the shared-buffer 20-to-1 incast, Aeolus against
// the 10 ms RTO-only priority-queue alternative.
func Table5Scenarios(cfg Config) []scenario.Scenario {
	aeolus := scenario.Scenario{
		Topo:       TopoMicro,
		Scheme:     "xpass+aeolus",
		Seed:       cfg.Seed,
		SchemeSeed: cfg.Seed,
		Incast: &scenario.IncastSpec{
			Fanin: 20, MsgSize: 400_000, Seed: cfg.Seed,
			StartAt: 10 * sim.Microsecond,
		},
	}
	prio := aeolus
	prio.Scheme = "xpass+prio"
	prio.RTO = 10 * sim.Millisecond
	return []scenario.Scenario{aeolus, prio}
}
