//go:build race

package experiments

// raceEnabled reports that this binary runs under the race detector, whose
// 10-20x slowdown and shadow-memory overhead make wall-clock and heap gates
// meaningless.
const raceEnabled = true
