package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// microIncastRun builds the many-to-one microbenchmark of §5.5 (N senders,
// one receiver, one 100G switch, 200 KB per sender) under ExpressPass+Aeolus
// with the given selective-dropping threshold, runs it, and returns the
// receiver downlink port plus the environment for instrumentation.
func microIncastRun(cfg Config, n int, threshold int64, msg int64,
	instrument func(env *transport.Env, bottleneck *netem.Port)) (*transport.Env, *netem.Port) {

	scheme := mustScheme(SchemeSpec{ID: "xpass+aeolus", Threshold: threshold, Seed: cfg.Seed})
	net := buildTopo(TopoMicro, scheme.Factory(netem.DefaultBuffer), netem.WireSizeFor(scheme.MSS), cfg.scheduler())
	env := transport.NewEnv(net, scheme.MSS)
	proto := scheme.New(env)
	// The bottleneck is the switch downlink to the receiver (host 0).
	bottleneck := net.Switches[0].Ports[0]
	trace := (&workload.IncastConfig{
		Fanin: n, Receiver: 0, Hosts: len(net.Hosts), MsgSize: msg,
		Seed: cfg.Seed, StartAt: sim.Time(10 * sim.Microsecond),
	}).Generate()
	if instrument != nil {
		instrument(env, bottleneck)
	}
	transport.Runner(env, proto, trace, sim.Time(200*sim.Millisecond))
	return env, bottleneck
}

// microSustainedRun is the §5.5 microbenchmark as described: "in each RTT,
// all the senders transfer 200KB data to the receiver" — a fresh burst per
// sender every base RTT for the given number of rounds.
func microSustainedRun(cfg Config, n int, threshold int64, msg int64, rounds int,
	instrument func(env *transport.Env, bottleneck *netem.Port)) {

	scheme := mustScheme(SchemeSpec{ID: "xpass+aeolus", Threshold: threshold, Seed: cfg.Seed})
	net := buildTopo(TopoMicro, scheme.Factory(netem.DefaultBuffer), netem.WireSizeFor(scheme.MSS), cfg.scheduler())
	env := transport.NewEnv(net, scheme.MSS)
	proto := scheme.New(env)
	bottleneck := net.Switches[0].Ports[0]
	var traces [][]workload.FlowSpec
	for round := 0; round < rounds; round++ {
		start := sim.Time(10 * sim.Microsecond).Add(sim.Duration(round) * net.BaseRTT)
		traces = append(traces, (&workload.IncastConfig{
			Fanin: n, Receiver: 0, Hosts: len(net.Hosts), MsgSize: msg,
			Seed: cfg.Seed + uint64(round), StartAt: start,
			BaseID: uint64(round) * 10000,
		}).Generate())
	}
	if instrument != nil {
		instrument(env, bottleneck)
	}
	transport.Runner(env, proto, workload.Merge(traces...), sim.Time(200*sim.Millisecond))
}

// Fig15 reproduces Figure 15: average and maximum queue length on the
// congested link under different selective dropping thresholds (16-to-1,
// 200 KB per sender). The paper's observation: queue length is nearly
// linear in the threshold.
func Fig15(cfg Config) []Table {
	t := Table{ID: "fig15", Title: "Queue length vs selective dropping threshold (16-to-1, 200KB each)",
		Columns: []string{"threshold/KB", "avgQueue/KB", "maxQueue/KB"}}
	thresholds := []int64{1538, 3 << 10, 6 << 10, 12 << 10, 24 << 10, 48 << 10, 96 << 10}
	if cfg.Quick {
		thresholds = []int64{1538, 6 << 10, 48 << 10}
	}
	rounds := 20
	if cfg.Quick {
		rounds = 6
	}
	samplers := make([]stats.QueueSampler, len(thresholds))
	forEachPar(cfg, len(thresholds), func(i int) {
		sampler := &samplers[i]
		microSustainedRun(cfg, 16, thresholds[i], 200_000, rounds,
			func(env *transport.Env, bn *netem.Port) {
				// Sample while the per-RTT bursts keep arriving.
				stop := sim.Time(10 * sim.Microsecond).Add(sim.Duration(rounds) * env.Net.BaseRTT)
				var tick func()
				tick = func() {
					sampler.Observe(bn.Backlog().Bytes)
					if q, ok := bn.Q.(*netem.XPassQdisc); ok {
						if sd, ok := q.Data().(*netem.SelectiveDrop); ok {
							sampler.ObserveMax(sd.MaxBacklogBytes())
						}
					}
					if env.Eng.Now() < stop {
						env.Eng.After(200*sim.Nanosecond, tick)
					}
				}
				env.Eng.At(sim.Time(10*sim.Microsecond), tick)
			})
	})
	for i, th := range thresholds {
		t.Add(f1(float64(th)/1024), f2(samplers[i].Mean()/1024), f2(float64(samplers[i].Max())/1024))
	}
	return []Table{t}
}

// Fig16 reproduces Figure 16: average utilization of the bottleneck link in
// the first RTT under different traffic demands (fan-in N) and selective
// dropping thresholds. The paper's observation: a threshold of 4 packets
// (6 KB) already achieves full first-RTT throughput at every demand.
func Fig16(cfg Config) []Table {
	t := Table{ID: "fig16", Title: "First-RTT bottleneck utilization vs fan-in and threshold",
		Columns: []string{"fanin", "th=1.5KB", "th=3KB", "th=6KB", "th=12KB"}}
	fanins := []int{2, 4, 8, 16, 24, 32, 40}
	if cfg.Quick {
		fanins = []int{2, 8, 24}
	}
	thresholds := []int64{1538, 3 << 10, 6 << 10, 12 << 10}
	utils := make([]float64, len(fanins)*len(thresholds))
	forEachPar(cfg, len(utils), func(i int) {
		n, th := fanins[i/len(thresholds)], thresholds[i%len(thresholds)]
		var meter stats.UtilizationMeter
		_, _ = microIncastRun(cfg, n, th, 200_000,
			func(env *transport.Env, bn *netem.Port) {
				// Window: one base RTT starting when the burst's front
				// reaches the bottleneck.
				start := sim.Time(10*sim.Microsecond) + sim.Time(2*sim.Microsecond)
				env.Eng.At(start, func() { meter.Start(bn.TxBytes, start) })
				end := start.Add(env.Net.BaseRTT)
				env.Eng.At(end, func() {
					utils[i] = meter.Stop(bn.TxBytes, end, bn.Rate)
				})
			})
	})
	for fi, n := range fanins {
		row := []string{fmt.Sprint(n)}
		for ti := range thresholds {
			row = append(row, f3(utils[fi*len(thresholds)+ti]))
		}
		t.Add(row...)
	}
	return []Table{t}
}

// fig17Schemes are the six schemes of the heavy-incast and goodput studies.
var fig17Schemes = []string{"xpass", "xpass+aeolus", "homa", "homa+aeolus", "ndp", "ndp+aeolus"}

// fig17Fanins is the fan-in axis of the heavy-incast study.
func fig17Fanins(quick bool) []int {
	if quick {
		return []int{32, 128}
	}
	return []int{32, 64, 128, 256}
}

// Fig17Scenarios declares the (scheme × fan-in) incast grid of Fig. 17: the
// 144-host 100G/400G fabric with 500 KB buffers, 64 KB messages, and a 40 µs
// RTO for the Homa variants.
func Fig17Scenarios(cfg Config) []scenario.Scenario {
	var scns []scenario.Scenario
	for _, id := range fig17Schemes {
		for _, n := range fig17Fanins(cfg.Quick) {
			sc := scenario.Scenario{
				Topo: TopoIncastFabric, Scheme: id, Buffer: 500 << 10,
				Seed: cfg.Seed, SchemeSeed: cfg.Seed,
				Incast: &scenario.IncastSpec{
					Fanin: n, Receiver: 0, MsgSize: 64_000, Seed: cfg.Seed,
					StartAt: 10 * sim.Microsecond,
				},
				Deadline: sim.Duration(1 * sim.Second),
			}
			if id == "homa" || id == "homa+aeolus" {
				sc.RTO = 40 * sim.Microsecond
			}
			scns = append(scns, sc)
		}
	}
	return scns
}

// Fig17 reproduces Figure 17: FCT slowdown (average and 99th percentile)
// under N-to-1 incast for N in 32..256, on the 144-host 100G/400G fabric
// with 500 KB buffers and 64 KB flows; Homa uses a 40 µs RTO.
func Fig17(cfg Config) []Table {
	avg := Table{ID: "fig17a", Title: "Incast FCT slowdown (average)",
		Columns: []string{"scheme", "N=32", "N=64", "N=128", "N=256"}}
	p99 := Table{ID: "fig17b", Title: "Incast FCT slowdown (99th percentile)",
		Columns: []string{"scheme", "N=32", "N=64", "N=128", "N=256"}}
	fanins := fig17Fanins(cfg.Quick)
	if cfg.Quick {
		avg.Columns = []string{"scheme", "N=32", "N=128"}
		p99.Columns = avg.Columns
	}
	res := runScenarios(cfg, Fig17Scenarios(cfg))
	i := 0
	for range fig17Schemes {
		arow := []string{""}
		prow := []string{""}
		for range fanins {
			r := res[i]
			i++
			arow[0], prow[0] = r.Scheme, r.Scheme
			arow = append(arow, f1(r.All.MeanSlowdown))
			prow = append(prow, f1(r.All.P99Slowdown))
		}
		avg.Add(arow...)
		p99.Add(prow...)
	}
	return []Table{avg, p99}
}

// fig18Loads is the offered-load axis of the goodput study.
func fig18Loads(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.9}
	}
	return []float64{0.3, 0.5, 0.7, 0.9}
}

// Fig18Scenarios declares the (scheme × load) goodput grid of Fig. 18: Web
// Search traffic plus a 64-to-1 incast on the 144-host fabric, half the
// configured budget with a 500-flow floor so the steady state has a real span.
func Fig18Scenarios(cfg Config) []scenario.Scenario {
	sweep := cfg
	sweep.Budget = cfg.Budget / 2
	sweep.MinFlows = maxI(cfg.MinFlows, 500)
	wl := workload.WebSearch.Name()
	var scns []scenario.Scenario
	for _, id := range fig17Schemes {
		for _, load := range fig18Loads(cfg.Quick) {
			sc := poissonScenario(sweep, id, wl, TopoIncastFabric, load)
			sc.Buffer = 500 << 10
			sc.Incast = &scenario.IncastSpec{
				Fanin: 64, Receiver: 0, MsgSize: 64_000, Seed: cfg.Seed,
				StartAt: 100 * sim.Microsecond,
			}
			if id == "homa" || id == "homa+aeolus" {
				sc.RTO = 40 * sim.Microsecond
			}
			scns = append(scns, sc)
		}
	}
	return scns
}

// Fig18 reproduces Figure 18: goodput (normalized by capacity) across
// varying network loads, for all six schemes, under a mix of Web Search
// traffic and 64-to-1 incast bursts.
func Fig18(cfg Config) []Table {
	loads := fig18Loads(cfg.Quick)
	cols := []string{"scheme"}
	for _, l := range loads {
		cols = append(cols, fmt.Sprintf("load=%.1f", l))
	}
	t := Table{ID: "fig18", Title: "Goodput vs offered load (Web Search + 64-to-1 incast mix)",
		Columns: cols}
	res := runScenarios(cfg, Fig18Scenarios(cfg))
	i := 0
	for range fig17Schemes {
		row := []string{""}
		for range loads {
			row[0] = res[i].Scheme
			row = append(row, f3(res[i].WindowGoodput))
			i++
		}
		t.Add(row...)
	}
	return []Table{t}
}
