package experiments

import (
	"fmt"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// TopoDef is one entry of the topology catalogue: a name, a human-readable
// description, and the parameterized spec netem.BuildClos turns into a
// fabric. The catalogue replaces the old per-name build/host-count/load
// switches — every topology-dependent fact the harness needs is derived from
// the spec, so a name the catalogue does not know is a hard error instead of
// a silently wrong default.
type TopoDef struct {
	Name  string
	About string
	Spec  netem.TopoSpec

	// LoadFactor, when nonzero, overrides Spec.CoreLoadFactor() as the
	// core-to-edge load conversion. The catalogue pins the hand-derived
	// historical constants here (leafspine's 7/8 is a deliberate rounding of
	// the exact 56/63) so experiment outputs stay bit-identical to the
	// string-switch era; "clos:" specs use the computed factor.
	LoadFactor float64
}

// loadFactor resolves the effective core-to-edge conversion factor.
func (d TopoDef) loadFactor() float64 {
	if d.LoadFactor != 0 {
		return d.LoadFactor
	}
	return d.Spec.CoreLoadFactor()
}

// EdgeLoad converts the paper's quoted core load into the edge load the
// Poisson generator targets, accounting for oversubscription and the
// fraction of traffic that crosses the core.
func (d TopoDef) EdgeLoad(coreLoad float64) float64 { return coreLoad / d.loadFactor() }

// Hosts returns the topology's host count.
func (d TopoDef) Hosts() int { return d.Spec.Hosts() }

// Build constructs the fabric with the scheme's qdisc factory and full-frame
// size on an engine backed by the named scheduler.
func (d TopoDef) Build(qf netem.QdiscFactory, frameBytes int, sched sim.SchedulerKind) *netem.Network {
	return netem.BuildClos(sim.NewEngineWith(sched), d.Spec, qf, frameBytes)
}

// TopoCatalogue lists the named topologies, in presentation order.
var TopoCatalogue = []TopoDef{
	{
		Name:  TopoFatTree,
		About: "8 spine/16 leaf/32 ToR, 192 hosts, 100G, 3:1 ToR oversubscription (ExpressPass paper)",
		Spec: netem.TopoSpec{HostsPerEdge: 6,
			Tiers:    []netem.TierSpec{{Switches: 32, Uplinks: 2, Groups: 16}, {Switches: 16}, {Switches: 8}},
			HostRate: 100 * sim.Gbps, LinkDelay: 4 * sim.Microsecond, HostDelay: sim.Microsecond},
		// 3:1 oversubscribed ToRs; ~97% of random pairs cross the ToR.
		LoadFactor: 3.0 * 186.0 / 191.0,
	},
	{
		Name:  TopoLeafSpine,
		About: "8 spine/8 leaf, 64 hosts, 100G non-blocking (Homa/NDP papers)",
		Spec: netem.TopoSpec{HostsPerEdge: 8,
			Tiers:    []netem.TierSpec{{Switches: 8}, {Switches: 8}},
			HostRate: 100 * sim.Gbps, LinkDelay: 500 * sim.Nanosecond},
		// Non-blocking; 7/8 of random pairs cross the core (historical
		// rounding of the exact 56/63, pinned for output stability).
		LoadFactor: 7.0 / 8.0,
	},
	{
		Name:  TopoSingleSwitch,
		About: "8 hosts on one 10G switch (hardware testbed)",
		Spec: netem.TopoSpec{HostsPerEdge: 8, Tiers: []netem.TierSpec{{Switches: 1}},
			HostRate: 10 * sim.Gbps, LinkDelay: 3 * sim.Microsecond},
		LoadFactor: 1,
	},
	{
		Name:  TopoIncastFabric,
		About: "4 spine/9 leaf, 144 hosts, 100G edge/400G core (Fig. 17/18)",
		Spec: netem.TopoSpec{HostsPerEdge: 16,
			Tiers:    []netem.TierSpec{{Switches: 9}, {Switches: 4}},
			HostRate: 100 * sim.Gbps, CoreRate: 400 * sim.Gbps,
			LinkDelay: 200 * sim.Nanosecond, SwitchPipe: 250 * sim.Nanosecond},
		// 16x100G hosts per leaf against 4x400G uplinks: non-blocking; only
		// the cross-leaf fraction of traffic exercises the core.
		LoadFactor: 128.0 / 143.0,
	},
	{
		Name:  TopoMicro,
		About: "24 hosts on one 100G switch (Fig. 15/16, Table 5)",
		Spec: netem.TopoSpec{HostsPerEdge: 24, Tiers: []netem.TierSpec{{Switches: 1}},
			HostRate: 100 * sim.Gbps, LinkDelay: sim.Microsecond},
		LoadFactor: 1,
	},
}

// ResolveTopo maps a -topo value to its definition: a catalogue name, or a
// "clos:" spec (see netem.ParseTopoSpec) for ad-hoc parameterized fabrics.
// Anything else is an error that lists every known topology — an unknown
// name is a configuration bug, never a silently empty simulation.
func ResolveTopo(name string) (TopoDef, error) {
	for _, d := range TopoCatalogue {
		if d.Name == name {
			return d, nil
		}
	}
	if strings.HasPrefix(name, "clos:") {
		spec, err := netem.ParseTopoSpec(name)
		if err != nil {
			return TopoDef{}, fmt.Errorf("experiments: %v", err)
		}
		return TopoDef{Name: spec.String(), About: "parameterized Clos fabric", Spec: spec}, nil
	}
	return TopoDef{}, fmt.Errorf("experiments: unknown topology %q; known topologies:\n%s", name, TopoCatalog())
}

// TopoCatalog renders the topology catalogue as an aligned listing, closed by
// the "clos:" escape hatch — the -list-topos output and the unknown-name
// error body.
func TopoCatalog() string {
	var sb strings.Builder
	for _, d := range TopoCatalogue {
		fmt.Fprintf(&sb, "  %-12s %s\n", d.Name, d.About)
	}
	sb.WriteString("or a clos:<tier>/<tier>...[,key=value]... spec, e.g. \"clos:32/32,hosts=32,delay=500ns\"")
	return sb.String()
}

// mustTopo resolves a topology name, panicking on failure — for harness
// paths whose CLIs have already validated the name up front.
func mustTopo(name string) TopoDef {
	d, err := ResolveTopo(name)
	if err != nil {
		panic(err.Error())
	}
	return d
}
