package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// The experiments layer is "embarrassingly parallel": every (scheme,
// workload, load) cell is one self-contained simulation run owning a private
// sim.Engine, netem.Network and PCG random streams, with seeds derived only
// from (Config.Seed, RunSpec). Pool exploits that: it fans runs across
// worker goroutines and hands the results back in submission order, so
// parallel output is byte-identical to a serial loop over Run.

// ProgressFunc observes run completions: done runs out of total submitted so
// far, and the wall-clock elapsed since the pool started. Implementations
// must be safe for concurrent calls from worker goroutines.
type ProgressFunc func(done, total int, elapsed time.Duration)

// ProgressPrinter returns a mutex-guarded ProgressFunc that rewrites a
// single status line on w (carriage return, no newline), suitable for an
// interactive stderr.
func ProgressPrinter(w io.Writer) ProgressFunc {
	var mu sync.Mutex
	return func(done, total int, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "\r[%d/%d runs, %v]        ", done, total,
			elapsed.Round(100*time.Millisecond))
	}
}

// Workers resolves the pool width: Parallel when positive, else GOMAXPROCS.
func (c Config) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Pool executes simulation runs on a fixed set of worker goroutines.
// Submission order is preserved: Collect returns result i for the i-th
// Submit call regardless of completion order. Runs share no state, so a
// Pool produces exactly the results of a serial loop over Run.
//
// A Pool is built for one experiment, fed from a single submitting
// goroutine, and torn down by Collect; it is not reusable afterwards.
type Pool struct {
	cfg  Config
	jobs chan poolJob
	wg   sync.WaitGroup

	// runFn is the run entry point; tests swap it to inject slow or
	// synthetic runs. Everything else goes through it unchanged.
	runFn func(Config, RunSpec) RunResult

	mu      sync.Mutex
	results []RunResult
	done    int

	start     time.Time
	collected bool
}

type poolJob struct {
	idx  int
	cfg  Config
	spec RunSpec
}

// NewPool starts cfg.Workers() workers and returns the pool.
func NewPool(cfg Config) *Pool {
	p := &Pool{
		cfg:   cfg,
		jobs:  make(chan poolJob),
		runFn: Run,
		start: time.Now(),
	}
	n := cfg.Workers()
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		res := p.runFn(j.cfg, j.spec)
		p.mu.Lock()
		p.results[j.idx] = res
		p.done++
		done, total := p.done, len(p.results)
		p.mu.Unlock()
		if p.cfg.Progress != nil {
			p.cfg.Progress(done, total, time.Since(p.start))
		}
	}
}

// Submit enqueues one run under the pool's Config and returns the index its
// result will occupy in the slice Collect returns. It blocks while all
// workers are busy; that backpressure bounds in-flight simulations at the
// worker count.
func (p *Pool) Submit(spec RunSpec) int {
	return p.SubmitCfg(p.cfg, spec)
}

// SubmitCfg is Submit with a per-run Config — the scenario path uses it,
// since every scenario carries its own semantic configuration (budget,
// seeds, clamps) layered over the pool's runtime knobs.
func (p *Pool) SubmitCfg(cfg Config, spec RunSpec) int {
	if p.collected {
		panic("experiments: Submit after Collect")
	}
	p.mu.Lock()
	idx := len(p.results)
	p.results = append(p.results, RunResult{})
	p.mu.Unlock()
	p.jobs <- poolJob{idx: idx, cfg: cfg, spec: spec}
	return idx
}

// Collect waits for every submitted run and returns the results in
// submission order. The pool cannot be used again afterwards.
func (p *Pool) Collect() []RunResult {
	if p.collected {
		panic("experiments: Collect called twice")
	}
	p.collected = true
	close(p.jobs)
	p.wg.Wait()
	return p.results
}

// runAll is the submit-then-collect convenience used by experiments whose
// runs are a flat list of specs.
func runAll(cfg Config, specs []RunSpec) []RunResult {
	p := NewPool(cfg)
	for _, s := range specs {
		p.Submit(s)
	}
	return p.Collect()
}

// forEachPar runs fn(0..n-1) across cfg.Workers() goroutines and waits for
// all of them. It serves runs that need per-run instrumentation (the §5.5
// microbenchmarks attach samplers inside the run) rather than plain Run;
// each fn call must be self-contained and write only to caller-owned slots
// distinct per index.
func forEachPar(cfg Config, n int, fn func(i int)) {
	workers := cfg.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// lockedWriter serializes writes from concurrently-traced runs onto one
// underlying stream (os.Stderr by default for RunSpec.TraceFlow).
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(b)
}

// LockedWriter wraps w so concurrent runs can share it safely.
func LockedWriter(w io.Writer) io.Writer { return &lockedWriter{w: w} }

// stderrLocked is the default sink for packet traces: one lock for the whole
// process so lines from concurrently-traced runs never interleave mid-line.
var stderrLocked = LockedWriter(os.Stderr)
