// Package experiments reproduces every table and figure of the Aeolus
// paper's evaluation (§2 microbenchmarks and §5): one function per
// experiment, each building the paper's topology, workload and schemes,
// running the simulator, and returning printable result tables whose rows
// mirror the series the paper plots.
//
// Flow counts scale with Config.Budget (bytes of offered traffic per run) so
// the same experiments serve fast regression tests, benchmarks and full
// reproductions.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one result table: the rows a figure plots or a table prints.
type Table struct {
	ID      string     `json:"id"` // experiment ID, e.g. "fig9"
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Add appends a row; it panics on column-count mismatch so experiments fail
// loudly rather than emit misaligned tables.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %s row has %d cells, want %d",
			t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV renders the table as comma-separated values (header included).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// f2 formats a float with 2 decimals; f3 with 3; f1 with 1.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
