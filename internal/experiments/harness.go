package experiments

import (
	"io"

	"github.com/aeolus-transport/aeolus/internal/audit"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Config scales the experiments. The defaults run each experiment in
// seconds; raise Budget for a fuller reproduction.
type Config struct {
	// Budget is the approximate number of payload bytes offered per
	// simulation run; flow counts are derived from it and the workload's
	// mean flow size.
	Budget int64

	// MinFlows / MaxFlows clamp the derived flow count.
	MinFlows, MaxFlows int

	// Seed drives all randomness.
	Seed uint64

	// Quick trims parameter sweeps (fewer load points, fewer fan-ins) for
	// fast regression runs.
	Quick bool

	// Parallel is the number of simulation runs executed concurrently by
	// the experiment pool; 0 means runtime.GOMAXPROCS(0). Results are
	// independent of this value: every run derives its randomness from
	// (Seed, RunSpec) alone, never from scheduling order.
	Parallel int

	// Progress, when non-nil, is invoked after every completed run. It must
	// tolerate concurrent calls; see ProgressPrinter.
	Progress ProgressFunc

	// Audit attaches the packet-conservation checker (internal/audit) to
	// every run. Fully completed runs also drain the engine so leftover
	// control traffic settles before the books are balanced; the report
	// lands in RunResult.Audit.
	Audit bool

	// OnAudit, when non-nil and Audit is set, receives every run's report.
	// It must tolerate concurrent calls when runs execute under a Pool.
	OnAudit func(spec RunSpec, rep *audit.Report)

	// DisablePool turns off packet recycling for the run: every Get
	// allocates and every Put discards. Results are identical either way
	// (pooling changes object identity, never event order); the knob exists
	// to prove exactly that, and to bisect should the two ever diverge.
	DisablePool bool

	// Impair, when non-nil, applies a scripted link-impairment timeline
	// (netem.Timeline) to every run — the CLIs' -impair/-impair-file knob.
	// Per-run RunSpec.Impair takes precedence. The timeline is applied after
	// the topology is built and before audit instrumentation, so injected
	// drops stay visible to the conservation checks.
	Impair *netem.Timeline

	// Shards, when > 1, partitions every run's fabric spatially and runs one
	// timing-wheel engine per shard on its own goroutine, synchronized
	// conservatively on the minimum cross-shard link latency (see
	// netem.BuildShardedClos and sim.ShardGroup). Like Parallel, DisablePool
	// and Scheduler it is a runtime knob, not part of a run's identity:
	// results are independent of the shard count by construction, the shard
	// golden tests keep proving it, and scenarios do not serialize it. The
	// request is clamped to the topology's pod structure (an edge switch and
	// its hosts are never split); single-pod topologies collapse to the
	// sequential engine. Shards > 1 is incompatible with impairment
	// timelines (their RNG and engine hooks are single-engine) and ignored
	// when packet tracing is on.
	Shards int

	// Scheduler selects the event-queue implementation backing every run's
	// engine (sim.SchedWheel or sim.SchedHeap); empty means
	// sim.DefaultScheduler. Results are identical either way — both
	// schedulers fire events in the same (time, seq) order, and the golden
	// digest test proves it — so, like DisablePool, the knob exists to keep
	// proving that and to bisect should the two ever diverge.
	Scheduler sim.SchedulerKind

	// Observe, when non-nil, is invoked after the topology, transport and
	// instrumentation are built but before any flow starts, giving callers a
	// window onto the run's internals (the scale sweep hangs its footprint
	// probes here). It must not schedule engine events.
	Observe func(net *netem.Network, env *transport.Env, proto transport.Protocol)

	// Trace holds the packet-level debugging options. They live on Config,
	// not RunSpec, because they are observational: a run's identity — what
	// a scenario serializes and what feeds the golden digest — is purely
	// semantic, and an io.Writer has no place in it.
	Trace RunOptions
}

// RunOptions are the non-serialized debugging knobs of a run. TraceFlow,
// when nonzero, prints every port/host event of that flow — the
// packet-level view. Output goes to TraceTo, or to a mutex-guarded
// os.Stderr so traced runs stay legible under a Pool.
type RunOptions struct {
	TraceFlow uint64
	TraceTo   io.Writer
}

// scheduler resolves the configured SchedulerKind, defaulting when unset.
func (c Config) scheduler() sim.SchedulerKind {
	if c.Scheduler == "" {
		return sim.DefaultScheduler
	}
	return c.Scheduler
}

// DefaultConfig returns a configuration sized for single-core bench runs.
func DefaultConfig() Config {
	return Config{Budget: 150 << 20, MinFlows: 100, MaxFlows: 20000, Seed: 1}
}

// flowsFor derives the flow count for a workload under the byte budget.
func (c Config) flowsFor(wl *workload.CDF) int {
	n := int(float64(c.Budget) / wl.Mean())
	if n < c.MinFlows {
		n = c.MinFlows
	}
	if n > c.MaxFlows {
		n = c.MaxFlows
	}
	return n
}

// Topology identifiers.
const (
	TopoFatTree      = "fattree"      // 8 spine/16 leaf/32 ToR/192 hosts, 100G, RTT≈52µs (ExpressPass paper)
	TopoLeafSpine    = "leafspine"    // 8 spine/8 leaf/64 hosts, 100G, RTT≈4.5µs (Homa/NDP papers)
	TopoSingleSwitch = "single"       // 8 hosts, 10G, RTT≈14µs (hardware testbed)
	TopoIncastFabric = "incastfabric" // 4 spine/9 leaf/144 hosts, 100G/400G (Fig. 17/18)
	TopoMicro        = "micro"        // 24 hosts on one 100G switch (Fig. 15/16, Table 5)
)

// buildTopo constructs the named topology with the scheme's qdisc factory.
// frameBytes is the full on-wire frame size the scheme serializes per hop
// (netem.WireSizeFor of its MSS); it parameterizes the base-RTT derivation
// so jumbo-frame schemes (NDP) size their first-RTT window correctly. sched
// picks the engine's event-queue implementation. The name resolves through
// the topology catalogue (see topo.go); an unknown name panics with the
// catalogue listing — the CLIs validate up front via ResolveTopo.
func buildTopo(topo string, qf netem.QdiscFactory, frameBytes int, sched sim.SchedulerKind) *netem.Network {
	return mustTopo(topo).Build(qf, frameBytes, sched)
}

// RunSpec describes one simulation run.
type RunSpec struct {
	Scheme   SchemeSpec
	Topo     string
	Buffer   int64 // per-port buffer; 0 = 200 KB paper default
	Workload *workload.CDF
	CoreLoad float64
	Flows    int // 0 = derive from Config.Budget
	Incast   *workload.IncastConfig
	Deadline sim.Duration // extra simulated time after the last arrival

	// Impair, when non-nil, scripts link impairments for this run and
	// overrides Config.Impair (the degradation experiments set it per run).
	Impair *netem.Timeline
}

// RunResult aggregates the metrics every experiment consumes.
type RunResult struct {
	Scheme    string
	Total     int
	Completed int

	Small stats.Summary // flows < 100 KB
	All   stats.Summary

	// FirstRTTFrac is the fraction of small flows finishing within the base
	// RTT (the paper's "complete within the first RTT").
	FirstRTTFrac float64

	Efficiency float64

	// Goodput is the delivered rate over the whole run (arrival through
	// drain) normalized by aggregate host capacity; WindowGoodput measures
	// only the steady-state middle half of the arrival span, the Fig. 18
	// metric.
	Goodput       float64
	WindowGoodput float64
	TimeoutFlows  int
	Drops         [netem.NumDropReasons]uint64 // switch drops by netem.DropReason
	SmallCDF      [][2]float64

	// TxPackets is the total packet transmissions across every port, NICs
	// included — the per-scheme work metric the macro benchmark divides by
	// wall time to report packets/sec.
	TxPackets uint64

	// Audit is the packet-conservation report, set when Config.Audit is on.
	Audit *audit.Report

	// Events is the number of engine events fired over the run (drain
	// included), summed across shard engines on the sharded path; Sched
	// aggregates scheduler pressure the same way (peaks sum across shards —
	// the bound on total pending-event memory). Shards records the effective
	// shard count the run executed with (1 = the sequential engine). None of
	// these feed the golden digest: they describe the execution, not the
	// simulated outcome.
	Events uint64
	Sched  sim.SchedStats
	Shards int

	records []stats.FlowRecord
	baseRTT sim.Duration
}

// Records exposes the raw flow records of the run.
func (r *RunResult) Records() []stats.FlowRecord { return r.records }

// CheckImpair dry-builds the run's topology and applies its impairment
// timeline to it, returning the error Run would panic with — the CLIs'
// up-front validation hook, mirroring the MakeScheme check (a target
// matching no port of the chosen topology is a spec bug, not a run result).
func CheckImpair(cfg Config, spec RunSpec) error {
	impair := spec.Impair
	if impair == nil {
		impair = cfg.Impair
	}
	if impair == nil {
		return nil
	}
	scheme, err := MakeScheme(spec.Scheme)
	if err != nil {
		return err
	}
	topo, err := ResolveTopo(spec.Topo)
	if err != nil {
		return err
	}
	buffer := spec.Buffer
	if buffer <= 0 {
		buffer = netem.DefaultBuffer
	}
	net := topo.Build(scheme.Factory(buffer), netem.WireSizeFor(scheme.MSS), cfg.scheduler())
	_, err = impair.Apply(net, cfg.Seed^spec.Scheme.Seed)
	return err
}

// Run executes one simulation and collects the metrics.
func Run(cfg Config, spec RunSpec) RunResult {
	if n := effectiveShards(cfg, spec); n > 1 {
		return runSharded(cfg, spec, n)
	}
	scheme := mustScheme(spec.Scheme)
	topo := mustTopo(spec.Topo)
	buffer := spec.Buffer
	if buffer <= 0 {
		buffer = netem.DefaultBuffer
	}
	net := topo.Build(scheme.Factory(buffer), netem.WireSizeFor(scheme.MSS), cfg.scheduler())
	if cfg.DisablePool {
		net.Pool.Disable()
	}
	env := transport.NewEnv(net, scheme.MSS)
	proto := scheme.New(env)
	impair := spec.Impair
	if impair == nil {
		impair = cfg.Impair
	}
	if impair != nil {
		// Install before trace/audit instrumentation wraps the qdiscs, so
		// injected drops are traced and attributed like any other drop.
		if _, err := impair.Apply(net, cfg.Seed^spec.Scheme.Seed); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	if cfg.Trace.TraceFlow != 0 {
		w := cfg.Trace.TraceTo
		if w == nil {
			w = stderrLocked
		}
		flow := cfg.Trace.TraceFlow
		tr := &netem.WriterTracer{W: w,
			Filter: func(p *netem.Packet) bool { return p.Flow == flow }}
		netem.InstrumentPorts(net.AllPorts(), tr)
		netem.InstrumentHosts(net.Hosts, tr)
	}
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.Attach(net)
	}
	if cfg.Observe != nil {
		cfg.Observe(net, env, proto)
	}

	var trace []workload.FlowSpec
	if spec.Workload != nil {
		flows := spec.Flows
		if flows <= 0 {
			flows = cfg.flowsFor(spec.Workload)
		}
		pc := workload.PoissonConfig{
			CDF: spec.Workload, Hosts: topo.Hosts(),
			HostRate: net.HostRate,
			Load:     topo.EdgeLoad(spec.CoreLoad),
			Flows:    flows, Seed: cfg.Seed ^ spec.Scheme.Seed,
			StartAt: sim.Time(10 * sim.Microsecond),
		}
		trace = pc.Generate()
	}
	if spec.Incast != nil {
		ic := *spec.Incast
		ic.Hosts = topo.Hosts()
		ic.BaseID = uint64(len(trace)) + 1000000
		trace = workload.Merge(trace, ic.Generate())
	}
	deadline := spec.Deadline
	if deadline <= 0 {
		deadline = 500 * sim.Millisecond
	}
	var first, last sim.Time
	if len(trace) > 0 {
		first = trace[0].Start
		for _, f := range trace {
			if f.Start > last {
				last = f.Start
			}
		}
	}
	// Steady-state goodput window: the middle half of the arrival span.
	var d1, d2 int64
	t1 := first.Add(sim.Duration(last-first) / 4)
	t2 := first.Add(3 * sim.Duration(last-first) / 4)
	if t2 > t1 {
		env.Eng.At(t1, func() { d1 = env.Meter.DeliveredPayload })
		env.Eng.At(t2, func() { d2 = env.Meter.DeliveredPayload })
	}
	if aud != nil {
		for _, f := range trace {
			aud.RegisterFlow(f.ID, f.Size)
		}
	}
	// Pre-size the FCT collector for the whole trace so completion recording
	// never grows the heap mid-run.
	env.FCT.Reserve(len(trace))
	start := env.Eng.Now()
	transport.Runner(env, proto, trace, last.Add(deadline))
	endTime := env.Eng.Now()
	elapsed := endTime.Sub(start)
	if aud != nil && env.Completed() == len(trace) {
		// Let in-flight control traffic and pending timers settle so the
		// drain-time invariants (empty queues, zero residual) can be checked
		// in the strict, fully-drained form. Completed flows disarm all
		// retransmission loops, so the drain terminates.
		env.Eng.Run()
	}

	res := RunResult{
		Scheme:    scheme.Name,
		Total:     len(trace),
		Completed: env.Completed(),
		baseRTT:   net.BaseRTT,
		records:   env.FCT.Records(),
	}
	// Metric extraction runs on the collector's scratch buffers: the CDF
	// consumes the filtered view before the next Filter call invalidates it.
	small := env.FCT.Filter(0, 100_000)
	res.Small = env.FCT.Summarize(small)
	res.All = env.FCT.Summarize(env.FCT.Records())
	if len(small) > 0 {
		n := 0
		for _, r := range small {
			if r.FCT() <= net.BaseRTT {
				n++
			}
		}
		res.FirstRTTFrac = float64(n) / float64(len(small))
	}
	res.Efficiency = env.Meter.Efficiency()
	capacity := sim.Rate(int64(net.HostRate) * int64(len(net.Hosts)))
	res.Goodput = env.Meter.Goodput(elapsed, capacity)
	if t2 > t1 && d2 > d1 {
		// Steady-state goodput over the middle half of the arrival span.
		res.WindowGoodput = float64(d2-d1) * 8 / sim.Duration(t2-t1).Seconds() / float64(capacity)
	} else if span := endTime.Sub(first); len(trace) > 0 && span > 0 {
		// Simultaneous arrivals (pure incast) collapse the middle-half
		// window to nothing; fall back to the whole arrival→drain span.
		res.WindowGoodput = float64(env.Meter.DeliveredPayload) * 8 / span.Seconds() / float64(capacity)
	}
	res.TimeoutFlows = env.FCT.TimeoutFlows()
	res.Drops = netem.DropTotals(net.SwitchPorts())
	for _, pt := range net.AllPorts() {
		res.TxPackets += pt.TxPackets
	}
	res.SmallCDF = stats.FCTCDF(small)
	res.Events = env.Eng.Fired()
	res.Sched = env.Eng.SchedStats()
	res.Shards = 1
	if aud != nil {
		aud.AuditProtocol(proto)
		aud.CheckMeter(env.Meter.SentPayload, env.Meter.DeliveredPayload)
		res.Audit = aud.Finish()
		if cfg.OnAudit != nil {
			cfg.OnAudit(spec, res.Audit)
		}
	}
	return res
}
