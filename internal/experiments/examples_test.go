package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/scenario"
)

// examplesDir is the checked-in scenario corpus of the repository root.
const examplesDir = "../../examples/scenarios"

// exampleDigests pins the content digest of every example scenario file —
// the `make scenario` gate. Editing an example is fine; this table just has
// to move in the same commit, like goldenDigests does for behavior.
var exampleDigests = map[string]string{
	"golden-xpass.json":        "3c694016a76fd70cdff614623ffc0050a772023d4cd95474b4a21e105819ce82",
	"fig2-first-rtt-cell.json": "99a6c688c61f75d76c42db28c2d05af36510c26045eb162ae1b9bd853b3a3423",
	"degrade-flap.json":        "df77fda0a2d9ee916d05476ba22a17cb962049cbfc34544e05b3ad2cba6e6972",
	"scale-clos256.json":       "3caba9b05e51e45ec67ad237855556660a3c33ec232cf1c9d465d46ce81b0758",
}

// TestExampleScenarios parses and semantically validates every checked-in
// example, checks its pinned digest and both-form round trip, and verifies
// no example exists without a pin (or vice versa).
func TestExampleScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, path := range files {
		base := filepath.Base(path)
		seen[base] = true
		sc, err := scenario.Load(path)
		if err != nil {
			t.Errorf("%s: %v", base, err)
			continue
		}
		if err := CheckScenario(sc); err != nil {
			t.Errorf("%s: %v", base, err)
			continue
		}
		want, ok := exampleDigests[base]
		if !ok {
			t.Errorf("%s exists but is not pinned in exampleDigests (digest %s)", base, sc.Digest())
			continue
		}
		if got := sc.Digest(); got != want {
			t.Errorf("%s: digest drifted:\n got  %s\n want %s", base, got, want)
		}
		reparsed, err := scenario.Parse(base, []byte(sc.Text()))
		if err != nil {
			t.Errorf("%s: canonical text does not reparse: %v", base, err)
		} else if !reflect.DeepEqual(reparsed, sc) {
			t.Errorf("%s: text round trip diverged", base)
		}
	}
	for base := range exampleDigests {
		if !seen[base] {
			t.Errorf("exampleDigests pins %s but the file is gone", base)
		}
	}
}

// TestExampleScenarioRuns executes the smallest example — the golden trace —
// end to end through the scenario path and requires the pinned golden
// behavior digest: the file on disk, not the Go value, reproduces the run.
func TestExampleScenarioRuns(t *testing.T) {
	sc, err := scenario.Load(filepath.Join(examplesDir, "golden-xpass.json"))
	if err != nil {
		t.Fatal(err)
	}
	sem, spec, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(Config{}.ForScenario(sem), spec)
	if got, want := r.Digest(), goldenDigests["xpass"]; got != want {
		t.Errorf("example golden-xpass.json does not reproduce the golden digest:\n got  %s\n want %s", got, want)
	}
}
