package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// The golden trace is the behavior-preservation anchor of the scheme
// catalogue: one small, fixed incast on the 24-host microbenchmark switch,
// run identically for every scheme. RunResult.Digest over that run pins the
// complete observable behavior of a scheme — every flow's timing, every
// drop counter, every meter — so refactors of the transport or scheme
// plumbing can prove byte-identical behavior mechanically instead of
// eyeballing summary statistics.

// GoldenScenario returns the golden trace for one scheme as a scenario
// value — the single source of truth GoldenConfig and GoldenSpec lower
// from: a 5-to-1 incast of 50 KB messages on the micro topology, seeded
// identically for every scheme. SchemeWorkload feeds Homa's priority
// cutoffs without generating Poisson traffic; xpass+prio gets the paper's
// 10 ms RTO it needs to terminate. The scenario's Digest() is the canonical
// identity recorded next to each behavior digest in aeolusbench -digest.
func GoldenScenario(id string) scenario.Scenario {
	sc := scenario.Scenario{
		Name:           "golden-" + id,
		Topo:           TopoMicro,
		Scheme:         id,
		Seed:           1,
		SchemeSeed:     3,
		SchemeWorkload: &scenario.WorkloadSpec{Name: "WebServer"},
		Incast: &scenario.IncastSpec{Fanin: 5, Receiver: 0, MsgSize: 50_000,
			Seed: 3, StartAt: 10 * sim.Microsecond},
		Deadline: sim.Duration(sim.Second),
	}
	if id == "xpass+prio" {
		sc.RTO = 10 * sim.Millisecond
	}
	return sc
}

// GoldenConfig returns the fixed configuration of the golden trace.
func GoldenConfig() Config {
	cfg, _ := mustFromScenario(GoldenScenario("xpass"))
	return cfg
}

// GoldenSpec returns the golden-trace run for one scheme, lowered from
// GoldenScenario.
func GoldenSpec(id string) RunSpec {
	_, spec := mustFromScenario(GoldenScenario(id))
	return spec
}

// GoldenDigest runs the golden trace for a scheme and returns the RunResult
// digest, with the packet pool on or off, under the default scheduler.
func GoldenDigest(id string, pool bool) (string, error) {
	return GoldenDigestIn(id, pool, sim.DefaultScheduler)
}

// GoldenDigestIn is GoldenDigest with an explicit event scheduler. The digest
// must be byte-identical for every scheduler — the wheel and the reference
// heap fire events in the same (time, seq) order, so a divergence here means
// a scheduler bug, not a behavior change.
func GoldenDigestIn(id string, pool bool, sched sim.SchedulerKind) (string, error) {
	return GoldenDigestSharded(id, pool, sched, 1)
}

// GoldenDigestSharded is GoldenDigestIn with a shard-count request on top of
// the scheduler and pool axes — the full runtime-knob matrix. The golden
// topology is a single switch, so every shard request collapses to the
// sequential engine via netem.ShardCount; the digest staying pinned for any
// -shards value is exactly the single-pod half of the sharding contract
// (the multi-pod half is the differential test on a sharded fabric).
func GoldenDigestSharded(id string, pool bool, sched sim.SchedulerKind, shards int) (string, error) {
	spec := GoldenSpec(id)
	if _, err := MakeScheme(spec.Scheme); err != nil {
		return "", err
	}
	cfg := GoldenConfig()
	cfg.DisablePool = !pool
	cfg.Scheduler = sched
	cfg.Shards = shards
	r := Run(cfg, spec)
	return r.Digest(), nil
}

// Digest returns a hex SHA-256 over every deterministic field of the result:
// the scheme name, per-flow records in completion order, the aggregate
// metrics, drop counters and transmission totals. Two runs digest equal iff
// they are behaviorally indistinguishable at the RunResult level.
func (r *RunResult) Digest() string {
	h := sha256.New()
	w := func(v any) { _ = binary.Write(h, binary.LittleEndian, v) }
	h.Write([]byte(r.Scheme))
	w(int64(r.Total))
	w(int64(r.Completed))
	w(int64(len(r.records)))
	for _, rec := range r.records {
		w(rec.ID)
		w(rec.Size)
		w(int64(rec.Start))
		w(int64(rec.Finish))
		w(int64(rec.IdealFCT))
		w(int64(rec.Timeouts))
	}
	w(r.FirstRTTFrac)
	w(r.Efficiency)
	w(r.Goodput)
	w(r.WindowGoodput)
	w(int64(r.TimeoutFlows))
	w(r.Drops)
	w(r.TxPackets)
	w(int64(r.baseRTT))
	w(int64(len(r.SmallCDF)))
	for _, pt := range r.SmallCDF {
		w(pt[0])
		w(pt[1])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
