package experiments

import (
	"flag"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// -sched restricts the golden-digest matrix to one scheduler, so CI can gate
// each implementation in a separate, clearly-labeled invocation:
//
//	go test ./internal/experiments -run TestGoldenDigests -sched=heap
//	go test ./internal/experiments -run TestGoldenDigests -sched=wheel
//
// Empty (the default) runs the full scheduler matrix.
var schedFlag = flag.String("sched", "", "restrict golden-digest runs to one scheduler (heap|wheel); empty = all")

// goldenSchedulers resolves the -sched flag to the scheduler set under test.
func goldenSchedulers(t *testing.T) []sim.SchedulerKind {
	if *schedFlag == "" {
		return []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap}
	}
	kind, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		t.Fatalf("-sched: %v", err)
	}
	return []sim.SchedulerKind{kind}
}

// goldenDigests pins the complete observable behavior of every scheme on the
// golden trace (see golden.go). The values were captured before the rdbase /
// scheme-catalogue refactor and prove, mechanically, that the refactor —
// and any future one — preserves behavior bit for bit.
//
// If a change is *supposed* to alter behavior (a bug fix, a model change),
// regenerate with `aeolusbench -digest` and update the table in the same
// commit, explaining the change.
//
// Regenerated with the impairment layer: the digest's drop vector grew a
// fifth reason (DropImpairment, always zero on the pristine golden trace),
// which shifts every hash even though no packet-level behavior changed.
var goldenDigests = map[string]string{
	"xpass":        "8fbf3366030d23a91ef80fc665ae6abe2a2c9b4fc4b25842540b965d3f651fa3",
	"xpass+aeolus": "be7545217c2a82faaff9666e2054b47262073a82b13d2c740fe4caf05ca4e578",
	"xpass+oracle": "33108e6655512da8d0c3c06eed369e447494f7939b64ecaa6612a31bc59e9eaf",
	"xpass+prio":   "ff18fe24db191f938317b4c669648960230283b8c646772f38e9a019a3ec7cd9",
	"homa":         "a0b3612b891918631882c3ff4177772775610816a5d52b33f641ea7861905c14",
	"homa+aeolus":  "47c3898a300b26c25876faaa20f76e21a2364b2650477d0d9015a5d8b5c95947",
	"homa+oracle":  "56d865f3550c862feec62bfed8b207ba33de7e17cddce5ac6cff13af290cf197",
	"homa-eager":   "3568f68bc0b8f5d2ffeb6309d44b5ec3bf69ff03836aa93ed1ee3b1e7e4c4382",
	"ndp":          "f0b9beccf99a87a6fd2f3f2384d032f9c1b182e0ed137d979317d60729669738",
	"ndp+aeolus":   "0740894edfe49822c0b7e80770a6af5adc314bed5fff540c166b997cae81a2c3",
}

// TestGoldenDigests runs the golden trace for every pinned scheme — with the
// packet pool on and off, under every scheduler the -sched flag selects — and
// compares against the pre-refactor digests. The digests were pinned under
// the heap scheduler; the wheel must reproduce them byte for byte.
func TestGoldenDigests(t *testing.T) {
	scheds := goldenSchedulers(t)
	for id, want := range goldenDigests {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			for _, sched := range scheds {
				for _, pool := range []bool{true, false} {
					got, err := GoldenDigestIn(id, pool, sched)
					if err != nil {
						t.Fatalf("GoldenDigestIn(%s, pool=%v, %s): %v", id, pool, sched, err)
					}
					if got != want {
						t.Errorf("golden digest drifted (sched=%s pool=%v):\n got  %s\n want %s", sched, pool, got, want)
					}
				}
			}
		})
	}
}

// chaosTimeline is the canonical impairment scenario scaled to the golden
// trace: 1% random loss on every switch port throughout, plus a failure of
// the receiver downlink at t=50µs restored at t=150µs. Parsed from text so
// the digest test exercises the same path as -impair-file.
func chaosTimeline(t *testing.T) *netem.Timeline {
	t.Helper()
	tl, err := netem.ParseTimeline("chaos", []byte(
		"0s sw0->* loss rate=0.01\n"+
			"50us sw0->h0 fail\n"+
			"150us sw0->h0 restore\n"))
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestImpairedGoldenDeterminism pins the determinism contract under injected
// chaos: the same (scenario, seed, timeline) must digest byte-identical
// across heap vs wheel schedulers and pool on/off, and the impaired digest
// must differ from the pristine baseline (the chaos actually happened).
func TestImpairedGoldenDeterminism(t *testing.T) {
	tl := chaosTimeline(t)
	for _, id := range []string{"xpass+aeolus", "homa+aeolus", "ndp+aeolus"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec := GoldenSpec(id)
			spec.Impair = tl
			digest := func(pool bool, sched sim.SchedulerKind) string {
				cfg := GoldenConfig()
				cfg.DisablePool = !pool
				cfg.Scheduler = sched
				r := Run(cfg, spec)
				if r.Completed != r.Total {
					t.Fatalf("impaired run incomplete: %d of %d (sched=%s pool=%v)",
						r.Completed, r.Total, sched, pool)
				}
				if r.Drops[netem.DropImpairment] == 0 {
					t.Fatalf("no impairment drops recorded; the timeline was inert")
				}
				return r.Digest()
			}
			ref := digest(true, sim.SchedWheel)
			for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
				for _, pool := range []bool{true, false} {
					if got := digest(pool, sched); got != ref {
						t.Errorf("impaired digest diverged (sched=%s pool=%v):\n got  %s\n want %s",
							sched, pool, got, ref)
					}
				}
			}
			if pristine, err := GoldenDigest(id, true); err != nil {
				t.Fatal(err)
			} else if pristine == ref {
				t.Errorf("impaired digest equals pristine digest; impairments had no observable effect")
			}
		})
	}
}

// TestGoldenCoversCatalogue keeps the pinned table in lockstep with the
// registry: every registered scheme must have a golden digest, so new
// schemes are pinned the day they are added.
func TestGoldenCoversCatalogue(t *testing.T) {
	for _, e := range Schemes() {
		if _, ok := goldenDigests[e.ID]; !ok {
			t.Errorf("scheme %s registered but not pinned in goldenDigests; run aeolusbench -digest -scheme %s", e.ID, e.ID)
		}
	}
	if n := len(Schemes()); n != len(goldenDigests) {
		t.Errorf("catalogue has %d schemes, goldenDigests pins %d", n, len(goldenDigests))
	}
}
