package experiments

import (
	"flag"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// -sched restricts the golden-digest matrix to one scheduler, so CI can gate
// each implementation in a separate, clearly-labeled invocation:
//
//	go test ./internal/experiments -run TestGoldenDigests -sched=heap
//	go test ./internal/experiments -run TestGoldenDigests -sched=wheel
//
// Empty (the default) runs the full scheduler matrix.
var schedFlag = flag.String("sched", "", "restrict golden-digest runs to one scheduler (heap|wheel); empty = all")

// goldenSchedulers resolves the -sched flag to the scheduler set under test.
func goldenSchedulers(t *testing.T) []sim.SchedulerKind {
	if *schedFlag == "" {
		return []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap}
	}
	kind, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		t.Fatalf("-sched: %v", err)
	}
	return []sim.SchedulerKind{kind}
}

// goldenDigests pins the complete observable behavior of every scheme on the
// golden trace (see golden.go). The values were captured before the rdbase /
// scheme-catalogue refactor and prove, mechanically, that the refactor —
// and any future one — preserves behavior bit for bit.
//
// If a change is *supposed* to alter behavior (a bug fix, a model change),
// regenerate with `aeolusbench -digest` and update the table in the same
// commit, explaining the change.
var goldenDigests = map[string]string{
	"xpass":        "5f651fc5b1168836b21579347e8d927f137bcae9dbfa378da133af9cdd5e2813",
	"xpass+aeolus": "f7f71c0827ad5350cf5f63e45928029e9026b99eedd09c860bcaa5bc9bf5ccd4",
	"xpass+oracle": "9648f7b028b679944841a49ed0f6ce348cf479635446dd4af97599ebf38c78fd",
	"xpass+prio":   "a71fb50fd91f62c293f88ecf853444a30bd3f979afb7c8f6a210b9982ba2314a",
	"homa":         "266e434546bc612b8418b5a1ee1e7782a2a5c988f8691970869d54c7b865fb58",
	"homa+aeolus":  "eec23276e6baa1adb090795db3cce019e91d2beb26771a64dd622fd1d84984c4",
	"homa+oracle":  "228ed0eeceb32d65ded973abb5a1b2d414b7986035fc8cb76cc5589fdaf5f310",
	"homa-eager":   "896da01b7dd77ed74a22b4149a67edf1cf2fd9059abdb9c86b05259ef629f413",
	"ndp":          "11a96cbba2585c2adc6285e179cce279fb37e6db3e6e47e013e743a4ef20f65d",
	"ndp+aeolus":   "e9777d4b919b8dfe34ef57a9b07aacf5a421f68b3f6a69a65545e0babfda5e3f",
}

// TestGoldenDigests runs the golden trace for every pinned scheme — with the
// packet pool on and off, under every scheduler the -sched flag selects — and
// compares against the pre-refactor digests. The digests were pinned under
// the heap scheduler; the wheel must reproduce them byte for byte.
func TestGoldenDigests(t *testing.T) {
	scheds := goldenSchedulers(t)
	for id, want := range goldenDigests {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			for _, sched := range scheds {
				for _, pool := range []bool{true, false} {
					got, err := GoldenDigestIn(id, pool, sched)
					if err != nil {
						t.Fatalf("GoldenDigestIn(%s, pool=%v, %s): %v", id, pool, sched, err)
					}
					if got != want {
						t.Errorf("golden digest drifted (sched=%s pool=%v):\n got  %s\n want %s", sched, pool, got, want)
					}
				}
			}
		})
	}
}

// TestGoldenCoversCatalogue keeps the pinned table in lockstep with the
// registry: every registered scheme must have a golden digest, so new
// schemes are pinned the day they are added.
func TestGoldenCoversCatalogue(t *testing.T) {
	for _, e := range Schemes() {
		if _, ok := goldenDigests[e.ID]; !ok {
			t.Errorf("scheme %s registered but not pinned in goldenDigests; run aeolusbench -digest -scheme %s", e.ID, e.ID)
		}
	}
	if n := len(Schemes()); n != len(goldenDigests) {
		t.Errorf("catalogue has %d schemes, goldenDigests pins %d", n, len(goldenDigests))
	}
}
