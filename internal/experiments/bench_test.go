package experiments

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
)

// BenchmarkSchemePackets is the macro benchmark: one small audited-sized
// incast simulation per scheme in the catalogue, reporting the end-to-end
// simulation throughput in packets per wall-clock second (every port
// transmission counts, control packets included).
func BenchmarkSchemePackets(b *testing.B) {
	for _, spec := range auditSweepSpecs() {
		b.Run(spec.Scheme.ID, func(b *testing.B) {
			cfg := testConfig()
			var tx uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Run(cfg, spec)
				if res.Completed != res.Total {
					b.Fatalf("%s: completed %d of %d", spec.Scheme.ID, res.Completed, res.Total)
				}
				tx += res.TxPackets
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(tx)/s, "packets/sec")
			}
		})
	}
}

// BenchmarkSchedulerComparison runs the per-scheme macro benchmark under each
// event scheduler, so BENCH_micro.json carries a heap-vs-wheel packets/sec
// block. The wheel must not make any scheme slower; a scheme regressing here
// under the wheel is a scheduler performance bug even if every test passes.
func BenchmarkSchedulerComparison(b *testing.B) {
	for _, sched := range []sim.SchedulerKind{sim.SchedHeap, sim.SchedWheel} {
		b.Run(string(sched), func(b *testing.B) {
			for _, spec := range auditSweepSpecs() {
				b.Run(spec.Scheme.ID, func(b *testing.B) {
					cfg := testConfig()
					cfg.Scheduler = sched
					var tx uint64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						res := Run(cfg, spec)
						if res.Completed != res.Total {
							b.Fatalf("%s/%s: completed %d of %d", sched, spec.Scheme.ID, res.Completed, res.Total)
						}
						tx += res.TxPackets
					}
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(tx)/s, "packets/sec")
					}
				})
			}
		})
	}
}
