package experiments

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// shardDiffSpec is the cross-pod differential scenario: Homa with spraying
// off is the one catalogued configuration that draws no random number
// anywhere — ExpressPass jitters credit gaps at receivers, NDP and default
// Homa spray paths at senders, and each of those streams would be consumed
// in per-shard order rather than global order. With no RNG, a sharded run
// must reproduce the sequential run exactly: identical flow records,
// identical meters, identical drop counters — the full digest.
func shardDiffSpec() RunSpec {
	return RunSpec{
		Scheme: SchemeSpec{ID: "homa+aeolus", Seed: 3,
			Workload: workload.WebServer,
			Opts:     map[string]string{"spray": "false"}},
		Topo:     TopoLeafSpine,
		Workload: workload.WebServer,
		CoreLoad: 0.5,
		Flows:    300,
	}
}

func shardDiffConfig() Config {
	cfg := DefaultConfig()
	cfg.Audit = true
	return cfg
}

// TestShardedDifferential pins the tentpole contract on a fabric that
// actually splits: the same run on the 8-pod leaf-spine must digest
// byte-identical under 1, 2 and 4 shards.
func TestShardedDifferential(t *testing.T) {
	spec := shardDiffSpec()
	cfg := shardDiffConfig()
	base := Run(cfg, spec)
	if base.Completed != base.Total {
		t.Fatalf("sequential baseline completed %d of %d", base.Completed, base.Total)
	}
	if base.Audit == nil || !base.Audit.Ok() {
		t.Fatalf("sequential baseline audit: %v", base.Audit.Err())
	}
	want := base.Digest()
	for _, n := range []int{2, 4} {
		cfg.Shards = n
		res := Run(cfg, spec)
		if res.Shards != n {
			t.Fatalf("Shards=%d ran with %d shards", n, res.Shards)
		}
		if res.Audit == nil || !res.Audit.Ok() {
			t.Fatalf("shards=%d audit: %v", n, res.Audit.Err())
		}
		if got := res.Digest(); got != want {
			t.Errorf("shards=%d digest diverged from sequential:\n got  %s\n want %s\n(records: seq %d/%d, sharded %d/%d)",
				n, got, want, base.Completed, base.Total, res.Completed, res.Total)
		}
	}
}

// TestShardedDeterminism covers the schemes the differential test cannot:
// with RNG in play a sharded run may legitimately differ from the sequential
// one (per-shard streams), but it must still be a pure function of the spec —
// two identical invocations must digest identically, or the handoff merge
// leaks goroutine scheduling into results.
func TestShardedDeterminism(t *testing.T) {
	for _, id := range []string{"xpass+aeolus", "ndp+aeolus"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec := shardDiffSpec()
			spec.Scheme = SchemeSpec{ID: id, Seed: 3, Workload: workload.WebServer}
			cfg := shardDiffConfig()
			cfg.Shards = 4
			a := Run(cfg, spec)
			b := Run(cfg, spec)
			if a.Digest() != b.Digest() {
				t.Errorf("two identical shards=4 runs digest differently:\n  %s\n  %s", a.Digest(), b.Digest())
			}
			if a.Audit == nil || !a.Audit.Ok() {
				t.Errorf("audit: %v", a.Audit.Err())
			}
		})
	}
}

// TestShardedAuditSweep balances the books for one representative of each
// transport family on a sharded fabric, incast included — NDP exercises
// cross-shard trimming and the sender-side RTO self-disarm, ExpressPass the
// credit loop, Homa the grant loop.
func TestShardedAuditSweep(t *testing.T) {
	for _, id := range []string{"xpass+aeolus", "homa+aeolus", "ndp+aeolus"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{
				Scheme:   SchemeSpec{ID: id, Seed: 5, Workload: workload.WebServer},
				Topo:     TopoLeafSpine,
				Workload: workload.WebServer,
				CoreLoad: 0.6,
				Flows:    200,
				Incast:   &workload.IncastConfig{Fanin: 12, Receiver: 0, MsgSize: 100_000, Seed: 9},
			}
			cfg := shardDiffConfig()
			cfg.Shards = 4
			res := Run(cfg, spec)
			if res.Shards != 4 {
				t.Fatalf("ran with %d shards, want 4", res.Shards)
			}
			if res.Completed != res.Total {
				t.Fatalf("completed %d of %d", res.Completed, res.Total)
			}
			if res.Audit == nil || !res.Audit.Ok() {
				t.Fatalf("audit: %v", res.Audit.Err())
			}
			if res.Audit.ForwardedPayload == 0 {
				t.Error("no payload crossed a shard boundary — partition is not exercising handoffs")
			}
			if res.Audit.ForwardedPayload != res.Audit.ArrivedPayload {
				t.Errorf("boundary ledger imbalanced: forwarded %d, arrived %d",
					res.Audit.ForwardedPayload, res.Audit.ArrivedPayload)
			}
		})
	}
}

// TestShardGoldenMatrix runs every golden scheme across the full runtime-knob
// matrix — shards {1,2,4} × both schedulers × pool on/off — and requires the
// digest of every cell to equal the shards=1 digest of the same scheme. On
// the single-switch golden topology every shard request collapses to the
// sequential engine, which is the single-pod half of the sharding contract;
// TestShardedDifferential covers the multi-pod half.
func TestShardGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden matrix is not -short")
	}
	for id := range goldenDigests {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			want, err := GoldenDigestSharded(id, true, sim.SchedWheel, 1)
			if err != nil {
				t.Fatal(err)
			}
			if pinned, ok := goldenDigests[id]; ok && want != pinned {
				t.Fatalf("shards=1 digest drifted from pinned golden:\n got  %s\n want %s", want, pinned)
			}
			for _, shards := range []int{2, 4} {
				for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
					for _, pool := range []bool{true, false} {
						got, err := GoldenDigestSharded(id, pool, sched, shards)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Errorf("digest diverged (shards=%d sched=%s pool=%v):\n got  %s\n want %s",
								shards, sched, pool, got, want)
						}
					}
				}
			}
		})
	}
}

// TestShardedEventsAccounting checks the execution metadata new on RunResult:
// both paths must report fired events, and the sharded count covers all
// engines.
func TestShardedEventsAccounting(t *testing.T) {
	spec := shardDiffSpec()
	cfg := shardDiffConfig()
	seq := Run(cfg, spec)
	if seq.Events == 0 || seq.Shards != 1 {
		t.Fatalf("sequential run reported Events=%d Shards=%d", seq.Events, seq.Shards)
	}
	cfg.Shards = 4
	shr := Run(cfg, spec)
	if shr.Events == 0 {
		t.Fatal("sharded run reported zero events")
	}
}
