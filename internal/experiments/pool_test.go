package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// fig9Cfg is a budget small enough that the serial baseline stays cheap.
func fig9Cfg(seed uint64, parallel int) Config {
	return Config{Budget: 1 << 20, MinFlows: 12, MaxFlows: 40, Seed: seed,
		Quick: true, Parallel: parallel}
}

// TestPoolSerialEquivalence is the core determinism guarantee of the
// parallel executor: running fig9's specs through a 4-worker Pool must give
// results identical to a serial loop over Run, and the full Fig9 tables must
// be identical cell-for-cell between Parallel=1 and Parallel=4. A second
// seed guards against accidental coupling between run seeds and scheduling.
func TestPoolSerialEquivalence(t *testing.T) {
	// Seed 1: raw results. The fig9 grid — (workload × scheme) cells — run
	// once serially via Run and once through a 4-worker pool; every field of
	// every RunResult (records included) must match.
	cfg := fig9Cfg(1, 4)
	var specs []RunSpec
	for _, wl := range workload.All {
		for _, id := range []string{"xpass", "xpass+aeolus"} {
			specs = append(specs, RunSpec{
				Scheme: SchemeSpec{ID: id, Workload: wl, Seed: cfg.Seed},
				Topo:   TopoFatTree, Workload: wl, CoreLoad: 0.4,
			})
		}
	}
	serial := make([]RunResult, len(specs))
	for i, s := range specs {
		serial[i] = Run(cfg, s)
	}
	parallel := runAll(cfg, specs)
	if len(parallel) != len(serial) {
		t.Fatalf("%d parallel results, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("run %d diverged between serial and pooled execution:\nserial:   %+v\nparallel: %+v",
				i, serial[i].All, parallel[i].All)
		}
	}

	// Both seeds, end to end: the emitted []Table must be identical between
	// Parallel=1 and Parallel=4. The second seed guards against any
	// accidental coupling between run seeding and scheduling.
	for _, seed := range []uint64{1, 42} {
		t1 := Fig9(fig9Cfg(seed, 1))
		t4 := Fig9(fig9Cfg(seed, 4))
		if !reflect.DeepEqual(t1, t4) {
			t.Errorf("seed %d: Fig9 tables differ between Parallel=1 and Parallel=4:\n%+v\nvs\n%+v", seed, t1, t4)
		}
	}
}

// TestPoolStress hammers a wide pool with many tiny runs; its real assertion
// is the race detector (the Makefile runs this package under -race).
func TestPoolStress(t *testing.T) {
	cfg := Config{Budget: 1 << 20, MinFlows: 10, MaxFlows: 50, Seed: 3,
		Quick: true, Parallel: 8}
	p := NewPool(cfg)
	const runs = 48
	for i := 0; i < runs; i++ {
		p.Submit(RunSpec{
			Scheme: SchemeSpec{ID: "xpass+aeolus", Seed: uint64(i)},
			Topo:   TopoSingleSwitch,
			Incast: &workload.IncastConfig{Fanin: 3, Receiver: 0, MsgSize: 4_000,
				Seed: uint64(i), StartAt: sim.Time(10 * sim.Microsecond)},
		})
	}
	res := p.Collect()
	if len(res) != runs {
		t.Fatalf("collected %d results, want %d", len(res), runs)
	}
	for i, r := range res {
		if r.Completed != r.Total || r.Total == 0 {
			t.Errorf("run %d: completed %d of %d", i, r.Completed, r.Total)
		}
	}
}

// TestPoolPreservesSubmissionOrder injects a deliberately slow first run and
// checks that Collect still returns results by submission index, not by
// completion time.
func TestPoolPreservesSubmissionOrder(t *testing.T) {
	p := NewPool(Config{Parallel: 4})
	p.runFn = func(_ Config, spec RunSpec) RunResult {
		if spec.Flows == 0 {
			// The first-submitted run finishes last.
			time.Sleep(50 * time.Millisecond)
		}
		return RunResult{Total: spec.Flows, Scheme: "fake"}
	}
	const n = 16
	for i := 0; i < n; i++ {
		if idx := p.Submit(RunSpec{Flows: i}); idx != i {
			t.Fatalf("Submit returned index %d, want %d", idx, i)
		}
	}
	res := p.Collect()
	if len(res) != n {
		t.Fatalf("collected %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if r.Total != i {
			t.Errorf("result %d carries marker %d; submission order not preserved", i, r.Total)
		}
	}
}

// TestPoolProgress checks the reporter sees every completion exactly once,
// with a monotone done count, under concurrent workers.
func TestPoolProgress(t *testing.T) {
	var mu sync.Mutex
	var calls int
	maxDone := 0
	cfg := Config{Parallel: 8, Progress: func(done, total int, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > maxDone {
			maxDone = done
		}
		if done < 1 || done > total {
			t.Errorf("progress done=%d total=%d out of range", done, total)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
	}}
	p := NewPool(cfg)
	p.runFn = func(Config, RunSpec) RunResult { return RunResult{} }
	const n = 40
	for i := 0; i < n; i++ {
		p.Submit(RunSpec{Flows: i})
	}
	p.Collect()
	if calls != n {
		t.Fatalf("progress called %d times, want %d", calls, n)
	}
	if maxDone != n {
		t.Fatalf("max done %d, want %d", maxDone, n)
	}
}

// TestForEachParCoversAllIndices checks the instrumented-run executor visits
// each index exactly once and writes race-free to per-index slots.
func TestForEachParCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 37
		got := make([]int, n)
		forEachPar(Config{Parallel: workers}, n, func(i int) { got[i] = i + 1 })
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not visited (got %d)", workers, i, v)
			}
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := (Config{}).Workers(); w < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", w)
	}
	if w := (Config{Parallel: 5}).Workers(); w != 5 {
		t.Fatalf("Workers() = %d, want 5", w)
	}
}

func TestLockedWriter(t *testing.T) {
	var sb strings.Builder
	w := LockedWriter(&sb)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w.Write([]byte("0123456789\n"))
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if line != "0123456789" {
			t.Fatalf("interleaved write: %q", line)
		}
	}
}
