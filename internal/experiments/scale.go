package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// The scale sweep (ROADMAP "paper-scale and beyond") answers the question the
// paper's fixed 64..192-host fabrics cannot: how does the simulator itself
// hold up as the fabric grows — events per wall-clock second, scheduler
// pressure (peak pending events, timing-wheel overflow spill), heap and RSS
// high-water marks, and the per-flow state the transports retain. Each cell
// is one open-loop run: an n-leaf/n-spine non-blocking Clos (n² hosts) under
// a Poisson WebServer workload at a fixed per-host flow count, so offered
// work scales linearly with the host count and cells are comparable across
// fabric sizes.
//
// Unlike every other experiment, the sweep runs its cells serially and owns
// the whole process while doing so: wall-clock throughput, sampled heap peaks
// and the kernel's VmHWM are process-wide measurements that concurrent runs
// would corrupt. Cells run smallest fabric first so the monotone RSS
// high-water mark still says something about the small cells.

// ScaleFlowsPerHost is the open-loop offered work per host: every cell runs
// hosts × ScaleFlowsPerHost Poisson flows, keeping per-host load identical
// across fabric sizes.
const ScaleFlowsPerHost = 100

// scaleLoads is the core-load grid of the sweep.
var scaleLoads = []float64{0.4, 0.8}

// scaleWidths returns the leaf/spine widths of the sweep grid (n² hosts):
// 64, 256 and 1024 hosts, trimmed to 64 and 256 under -quick.
func scaleWidths(quick bool) []int {
	if quick {
		return []int{8, 16}
	}
	return []int{8, 16, 32}
}

// ScaleFabric returns the sweep's fabric at width n: an n-leaf/n-spine
// non-blocking Clos with n hosts per leaf (n² hosts total), the leafspine
// catalogue geometry scaled out. 100G links, 500ns per-hop delay.
func ScaleFabric(n int) netem.TopoSpec {
	return netem.TopoSpec{
		HostsPerEdge: n,
		Tiers:        []netem.TierSpec{{Switches: n}, {Switches: n}},
		HostRate:     100 * sim.Gbps,
		LinkDelay:    500 * sim.Nanosecond,
	}
}

// ScalePoint is one measured cell of the sweep — the record BENCH_scale.json
// stores and the smoke gates compare against.
type ScalePoint struct {
	Topo  string  `json:"topo"`
	Hosts int     `json:"hosts"`
	Load  float64 `json:"load"`
	Flows int     `json:"flows"`

	// Execution shape: how many spatial shards the run actually used (1 =
	// the sequential engine) and the GOMAXPROCS it ran under — without both,
	// events/sec numbers from sharded and sequential runs are not comparable.
	Shards     int `json:"shards,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	Completed    int     `json:"completed"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Slab geometry the cell was measured under. Chunk sizes change cache
	// behavior, so cells measured under different geometry are not directly
	// comparable; stamping them keeps old baseline cells honest. Zero in
	// cells recorded before the slab allocators existed.
	EventChunk  int `json:"event_chunk,omitempty"`
	PacketChunk int `json:"packet_chunk,omitempty"`

	// Scheduler pressure: the engine's peak simultaneous pending events and,
	// for the timing wheel, the peak population of the far-future overflow
	// list (see sim.SchedStats).
	PeakPending  int `json:"peak_pending"`
	PeakOverflow int `json:"peak_overflow"`

	// HeapPeakBytes is the maximum live-heap size sampled during the run;
	// RSSPeakBytes is the kernel's VmHWM — process-wide and monotone, so only
	// the first (smallest) cells bound their own fabric (0 where /proc is
	// unavailable).
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
	RSSPeakBytes  uint64 `json:"rss_peak_bytes"`

	// StateBytesPerFlow is the retained heap growth across the run divided by
	// the flow count — the per-flow footprint of transport tables, FCT
	// records and trace, measured after a settling GC. The transport's own
	// resident-object counts come from transport.FootprintReporter.
	StateBytesPerFlow float64 `json:"state_bytes_per_flow"`
	StateFlows        int     `json:"state_flows"`
	StateSenders      int     `json:"state_senders"`
	StateReceivers    int     `json:"state_receivers"`

	AuditClean bool `json:"audit_clean"`
}

// recompute derives events_per_sec from the summed event count over the wall
// time. Events is already the total across every shard engine (shardrun sums
// Fired() before it reaches the point), so this single division is the only
// one in the pipeline: no per-shard or per-cell float quotient is ever carried
// into an aggregate, and a ledger merge can restamp the field from its inputs.
func (p *ScalePoint) recompute() {
	if p.WallSeconds > 0 {
		p.EventsPerSec = float64(p.Events) / p.WallSeconds
	}
}

// Key is the ledger key of the cell, e.g. "h1024/l0.8" — with a "/s4" suffix
// when the cell ran sharded, so sharded and sequential measurements of the
// same (hosts, load) coexist in one ledger and ratio cleanly.
func (p ScalePoint) Key() string {
	k := fmt.Sprintf("h%d/l%g", p.Hosts, p.Load)
	if p.Shards > 1 {
		k += fmt.Sprintf("/s%d", p.Shards)
	}
	return k
}

// ScaleScenario declares one sweep cell: the scaled Clos at the given width,
// a Poisson WebServer workload at the given core load, and an explicit flow
// count (hosts × ScaleFlowsPerHost) so the offered work is open-loop rather
// than budget-derived.
func ScaleScenario(cfg Config, width int, load float64) scenario.Scenario {
	spec := ScaleFabric(width)
	return scenario.Scenario{
		Topo:       spec.String(),
		Scheme:     "xpass+aeolus",
		Seed:       cfg.Seed,
		SchemeSeed: cfg.Seed,
		Workload:   &scenario.WorkloadSpec{Name: workload.WebServer.Name()},
		CoreLoad:   load,
		Flows:      spec.Hosts() * ScaleFlowsPerHost,
	}
}

// ScaleScenarios declares the full (width × load) grid, smallest first.
func ScaleScenarios(cfg Config) []scenario.Scenario {
	var scns []scenario.Scenario
	for _, n := range scaleWidths(cfg.Quick) {
		for _, load := range scaleLoads {
			scns = append(scns, ScaleScenario(cfg, n, load))
		}
	}
	return scns
}

// MeasureScale runs one sweep cell and returns its measurements. The scheme
// is ExpressPass+Aeolus — the paper's primary integration and the cheapest of
// the three transports per packet, so the sweep stresses the simulator rather
// than one transport's scheduling policy.
func MeasureScale(cfg Config, width int, load float64) ScalePoint {
	sem, rspec := mustFromScenario(ScaleScenario(cfg, width, load))
	pt := ScalePoint{Topo: rspec.Topo, Hosts: ScaleFabric(width).Hosts(), Load: load}
	pt.Flows = rspec.Flows

	// Observe fires once per engine — once on the sequential path, once per
	// shard on the sharded one — so the heap baseline is taken on the first
	// call only and the transport footprints are summed across all protocol
	// instances.
	var protos []transport.Protocol
	var heapStart uint64
	seenBaseline := false
	run := cfg.ForScenario(sem)
	run.Audit = true
	run.Observe = func(_ *netem.Network, _ *transport.Env, p transport.Protocol) {
		protos = append(protos, p)
		if !seenBaseline {
			seenBaseline = true
			heapStart = heapSettled()
		}
	}

	sampler := startHeapSampler(5 * time.Millisecond)
	start := time.Now()
	res := Run(run, rspec)
	pt.WallSeconds = time.Since(start).Seconds()
	sampled := sampler.stop()
	heapEnd := heapSettled()

	pt.Completed = res.Completed
	pt.Events = res.Events
	pt.Shards = res.Shards
	pt.GOMAXPROCS = runtime.GOMAXPROCS(0)
	pt.EventChunk = sim.EventChunkSize
	pt.PacketChunk = netem.PacketChunkSize
	pt.recompute()
	pt.PeakPending, pt.PeakOverflow = res.Sched.PeakPending, res.Sched.PeakOverflow
	pt.HeapPeakBytes = max(sampled, heapEnd)
	pt.RSSPeakBytes = vmHWMBytes()
	if heapEnd > heapStart && pt.Flows > 0 {
		pt.StateBytesPerFlow = float64(heapEnd-heapStart) / float64(pt.Flows)
	}
	for _, p := range protos {
		if fr, ok := p.(transport.FootprintReporter); ok {
			fp := fr.Footprint()
			pt.StateFlows += fp.Flows
			pt.StateSenders += fp.Senders
			pt.StateReceivers += fp.Receivers
		}
	}
	pt.AuditClean = res.Audit != nil && res.Audit.Ok()
	return pt
}

// ScaleSweep is the "scale" registry entry: the full grid, serially,
// smallest fabric first, one table row per cell.
func ScaleSweep(cfg Config) []Table {
	points := RunScaleGrid(cfg)
	t := Table{ID: "scale",
		Title: "Open-loop scale sweep: simulator throughput and memory vs fabric size (WebServer, xpass+aeolus)",
		Columns: []string{"hosts", "load", "shards", "flows", "completed", "events", "wall/s",
			"events/s", "peakPending", "peakOverflow", "heapPeak/MB", "state/flow", "audit"}}
	for _, p := range points {
		t.Add(fmt.Sprint(p.Hosts), fmt.Sprintf("%g", p.Load), fmt.Sprint(max(p.Shards, 1)), fmt.Sprint(p.Flows),
			fmt.Sprintf("%d/%d", p.Completed, p.Flows), fmt.Sprint(p.Events),
			f2(p.WallSeconds), fmt.Sprintf("%.3g", p.EventsPerSec),
			fmt.Sprint(p.PeakPending), fmt.Sprint(p.PeakOverflow),
			f1(float64(p.HeapPeakBytes)/(1<<20)), f1(p.StateBytesPerFlow),
			auditMark(p.AuditClean))
	}
	return []Table{t}
}

// RunScaleGrid measures every cell of the (width, load) grid in order —
// smallest first — reporting per-cell completion through cfg.Progress.
func RunScaleGrid(cfg Config) []ScalePoint {
	widths := scaleWidths(cfg.Quick)
	total := len(widths) * len(scaleLoads)
	start := time.Now()
	points := make([]ScalePoint, 0, total)
	for _, n := range widths {
		for _, load := range scaleLoads {
			points = append(points, MeasureScale(cfg, n, load))
			if cfg.Progress != nil {
				cfg.Progress(len(points), total, time.Since(start))
			}
		}
	}
	return points
}

func auditMark(clean bool) string {
	if clean {
		return "clean"
	}
	return "VIOLATED"
}

// heapSettled returns the live heap after a full GC — the retained-state
// measurement points on either side of a run.
func heapSettled() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// heapSampler polls the live heap from a background goroutine while a run
// executes on the calling goroutine, tracking the high-water mark. It samples
// wall-clock time rather than scheduling engine events: an engine-driven
// sampler would keep the event queue nonempty and stall the post-run audit
// drain, and would perturb the very peak-pending statistic being measured.
type heapSampler struct {
	quit chan struct{}
	peak chan uint64
}

func startHeapSampler(every time.Duration) *heapSampler {
	s := &heapSampler{quit: make(chan struct{}), peak: make(chan uint64)}
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		var m runtime.MemStats
		var peak uint64
		for {
			select {
			case <-tick.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			case <-s.quit:
				s.peak <- peak
				return
			}
		}
	}()
	return s
}

// stop ends the sampling and returns the observed heap high-water mark.
func (s *heapSampler) stop() uint64 {
	close(s.quit)
	return <-s.peak
}

// vmHWMBytes reads the process's peak resident set (VmHWM) from
// /proc/self/status, returning 0 where the file or field is unavailable.
func vmHWMBytes() uint64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// ScaleLedger is the BENCH_scale.json layout, mirroring cmd/benchjson: a
// frozen baseline section committed with the repo plus the latest run, so
// scale regressions stay visible against the reference numbers.
type ScaleLedger struct {
	Note     string                `json:"note,omitempty"`
	Baseline map[string]ScalePoint `json:"baseline,omitempty"`
	Current  map[string]ScalePoint `json:"current"`
}

// LoadScaleLedger reads a ledger file.
func LoadScaleLedger(path string) (ScaleLedger, error) {
	var led ScaleLedger
	buf, err := os.ReadFile(path)
	if err != nil {
		return led, err
	}
	if err := json.Unmarshal(buf, &led); err != nil {
		return led, fmt.Errorf("experiments: unparsable ledger %s: %w", path, err)
	}
	return led, nil
}

// WriteScaleLedger merges the points into the ledger's current section by
// cell key, preserving an existing file's note, baseline and any current cells
// not re-measured this run — so a sharded sweep can land next to the
// sequential cells instead of erasing them. The first write seeds the
// baseline, and committing it freezes the reference.
func WriteScaleLedger(path, note string, points []ScalePoint) error {
	led, err := LoadScaleLedger(path)
	if err != nil {
		led = ScaleLedger{}
	}
	if led.Note == "" {
		led.Note = note
	}
	if led.Current == nil {
		led.Current = make(map[string]ScalePoint, len(points))
	}
	for _, p := range points {
		// Restamp throughput from the summed events over wall time so the
		// stored figure is always the quotient of its stored inputs, whatever
		// float the caller carried.
		p.recompute()
		led.Current[p.Key()] = p
	}
	if led.Baseline == nil {
		led.Baseline = led.Current
	}
	buf, err := json.MarshalIndent(&led, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
