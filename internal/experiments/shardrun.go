package experiments

import (
	"fmt"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/audit"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/transport"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// This file is the harness half of the spatially-sharded engine: the
// partition-aware twin of Run. The fabric is built once by the same
// BuildClos pass as the sequential path, cut along pod boundaries
// (netem.BuildShardedClos), and each shard gets its own engine, packet pool,
// transport environment and protocol instance. The shard engines advance in
// conservative lookahead windows (sim.ShardGroup); packet deliveries that
// cross the cut are exchanged at window barriers in deterministic (time,
// source shard, generation order) order, so results are independent of goroutine
// scheduling — and, for the single-pod topologies every golden scenario uses,
// the partition collapses to one shard and Run keeps the sequential engine.
//
// Cross-shard flows exist in two copies: the sender's shard starts the flow
// (its protocol instance owns the sender state machine), and the receiver's
// shard gets the descriptor pre-registered (flowRegistrar) so its protocol
// instance can establish receiver state when the first packet arrives. The
// receiver side reports completion, so FCT records land in the destination
// shard's collector and are merged by finish time afterwards. One known
// divergence: sender-side timeout counts stay on the sender copy, so a
// cross-shard flow's record reports Timeouts the sender copy suffered as 0.

// flowRegistrar is the cross-shard pre-registration hook the transports
// implement: it adds a flow descriptor to the instance's table without
// starting a sender, so the receive path can look the flow up.
type flowRegistrar interface {
	Register(f *transport.Flow)
}

// effectiveShards resolves Config.Shards against a run: the request clamped
// to the topology's pod structure. Packet tracing forces the sequential
// engine (its writer interleaves illegibly across goroutines), and
// impairment timelines reject sharding outright — their RNG streams and
// timeline events are bound to a single engine.
func effectiveShards(cfg Config, spec RunSpec) int {
	if cfg.Shards <= 1 || cfg.Trace.TraceFlow != 0 {
		return 1
	}
	topo, err := ResolveTopo(spec.Topo)
	if err != nil {
		return 1 // let the sequential path surface the error
	}
	n := netem.ShardCount(topo.Spec, cfg.Shards)
	if n > 1 && (spec.Impair != nil || cfg.Impair != nil) {
		panic("experiments: impairment timelines require Shards <= 1 (impairments are engine-local)")
	}
	return n
}

// runSharded executes one simulation across shards engines. It mirrors Run
// step for step; the differences are exactly the ones sharding forces:
// per-shard environments, pre-registered cross-shard flows, window-barrier
// execution, and metric extraction over summed meters and merged records.
func runSharded(cfg Config, spec RunSpec, shards int) RunResult {
	scheme := mustScheme(spec.Scheme)
	topo := mustTopo(spec.Topo)
	buffer := spec.Buffer
	if buffer <= 0 {
		buffer = netem.DefaultBuffer
	}
	sn := netem.BuildShardedClos(topo.Spec, shards, cfg.scheduler(),
		scheme.Factory(buffer), netem.WireSizeFor(scheme.MSS))

	views := make([]*netem.Network, shards)
	envs := make([]*transport.Env, shards)
	protos := make([]transport.Protocol, shards)
	for i := range views {
		views[i] = sn.View(i)
		if cfg.DisablePool {
			views[i].Pool.Disable()
		}
		envs[i] = transport.NewEnv(views[i], scheme.MSS)
		protos[i] = scheme.New(envs[i])
	}
	var auds []*audit.Auditor
	if cfg.Audit {
		auds = make([]*audit.Auditor, shards)
		for i := range auds {
			auds[i] = audit.AttachScope(sn.Engines[i], sn.Pools[i],
				sn.ShardPorts(i), sn.ShardHosts(i), true)
		}
	}
	if cfg.Observe != nil {
		for i := range views {
			cfg.Observe(views[i], envs[i], protos[i])
		}
	}

	var trace []workload.FlowSpec
	if spec.Workload != nil {
		flows := spec.Flows
		if flows <= 0 {
			flows = cfg.flowsFor(spec.Workload)
		}
		pc := workload.PoissonConfig{
			CDF: spec.Workload, Hosts: topo.Hosts(),
			HostRate: sn.Net.HostRate,
			Load:     topo.EdgeLoad(spec.CoreLoad),
			Flows:    flows, Seed: cfg.Seed ^ spec.Scheme.Seed,
			StartAt: sim.Time(10 * sim.Microsecond),
		}
		trace = pc.Generate()
	}
	if spec.Incast != nil {
		ic := *spec.Incast
		ic.Hosts = topo.Hosts()
		ic.BaseID = uint64(len(trace)) + 1000000
		trace = workload.Merge(trace, ic.Generate())
	}
	deadline := spec.Deadline
	if deadline <= 0 {
		deadline = 500 * sim.Millisecond
	}
	var first, last sim.Time
	if len(trace) > 0 {
		first = trace[0].Start
		for _, f := range trace {
			if f.Start > last {
				last = f.Start
			}
		}
	}
	// Steady-state goodput window: each shard samples its own meter at the
	// same simulated instants; the pre-scheduled samplers order before any
	// runtime event at the same timestamp on every shard, exactly as the
	// sequential sampler does, so the sums match the sequential samples.
	d1s := make([]int64, shards)
	d2s := make([]int64, shards)
	t1 := first.Add(sim.Duration(last-first) / 4)
	t2 := first.Add(3 * sim.Duration(last-first) / 4)
	if t2 > t1 {
		for i := range envs {
			i := i
			sn.Engines[i].At(t1, func() { d1s[i] = envs[i].Meter.DeliveredPayload })
			sn.Engines[i].At(t2, func() { d2s[i] = envs[i].Meter.DeliveredPayload })
		}
	}
	if auds != nil {
		// Every shard may carry any flow's packets (spine shards forward
		// traffic they neither source nor sink), so sizes register everywhere.
		for _, f := range trace {
			for _, a := range auds {
				a.RegisterFlow(f.ID, f.Size)
			}
		}
	}

	// Inject the trace: the sender's shard starts each flow at its arrival
	// time; a cross-shard receiver gets its own pre-registered copy of the
	// descriptor. Per-shard FCT collectors are pre-sized with the flows they
	// will record — completions are receiver-side in all three transports.
	perDst := make([]int, shards)
	for _, fs := range trace {
		perDst[sn.HostShard(netem.NodeID(fs.Dst))]++
	}
	for i := range envs {
		envs[i].FCT.Reserve(perDst[i])
	}
	for _, fs := range trace {
		f := &transport.Flow{
			ID:     fs.ID,
			Src:    netem.NodeID(fs.Src),
			Dst:    netem.NodeID(fs.Dst),
			Size:   fs.Size,
			Start:  fs.Start,
			PathID: transport.FlowHash(fs.ID),
		}
		s := sn.HostShard(f.Src)
		if d := sn.HostShard(f.Dst); d != s {
			reg, ok := protos[d].(flowRegistrar)
			if !ok {
				panic(fmt.Sprintf("experiments: scheme %s cannot register cross-shard flows", scheme.Name))
			}
			rf := *f
			reg.Register(&rf)
		}
		p, eng := protos[s], sn.Engines[s]
		eng.At(f.Start, func() { p.Start(f) })
	}

	total := len(trace)
	completed := func() int {
		n := 0
		for _, e := range envs {
			n += e.Completed()
		}
		return n
	}
	var visit func(h netem.Handoff)
	if auds != nil {
		visit = func(h netem.Handoff) {
			auds[h.Src].Depart(h.P)
			auds[h.Dst].Arrive(h.P)
		}
	}
	group := &sim.ShardGroup{
		Engines:   sn.Engines,
		Lookahead: sn.Lookahead,
		Barrier:   func() { sn.Flush(visit) },
		StopWhen:  func() bool { return completed() == total },
	}
	endAt := last.Add(deadline)
	group.Run(endAt)
	// The sequential Runner stops the engine at the last completion event, so
	// its end time is that completion's timestamp; reconstruct the same end
	// time from the records (the sharded stop lands at the next barrier).
	endTime := endAt
	if completed() == total {
		var maxFin sim.Time
		for _, e := range envs {
			for _, r := range e.FCT.Records() {
				if r.Finish > maxFin {
					maxFin = r.Finish
				}
			}
		}
		endTime = maxFin
	}
	elapsed := endTime.Sub(0)
	if auds != nil && completed() == total {
		// Drain: let control traffic and disarmed timers settle everywhere so
		// the per-shard books can be balanced in their strict form.
		group.StopWhen = nil
		group.Run(sim.MaxTime)
	}

	// Merge the per-shard records by finish time. Within a shard the
	// collector order is completion order; the stable merge keeps it, so ties
	// across shards break deterministically by shard index.
	var merged stats.FCTCollector
	merged.Reserve(total)
	for _, e := range envs {
		for _, r := range e.FCT.Records() {
			merged.Add(r)
		}
	}
	recs := merged.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Finish < recs[j].Finish })

	var meter stats.ByteMeter
	for _, e := range envs {
		meter.SentPayload += e.Meter.SentPayload
		meter.DeliveredPayload += e.Meter.DeliveredPayload
	}

	res := RunResult{
		Scheme:    scheme.Name,
		Total:     total,
		Completed: completed(),
		baseRTT:   sn.Net.BaseRTT,
		records:   recs,
		Shards:    shards,
	}
	small := merged.Filter(0, 100_000)
	res.Small = merged.Summarize(small)
	res.All = merged.Summarize(recs)
	if len(small) > 0 {
		n := 0
		for _, r := range small {
			if r.FCT() <= sn.Net.BaseRTT {
				n++
			}
		}
		res.FirstRTTFrac = float64(n) / float64(len(small))
	}
	res.Efficiency = meter.Efficiency()
	capacity := sim.Rate(int64(sn.Net.HostRate) * int64(len(sn.Net.Hosts)))
	res.Goodput = meter.Goodput(elapsed, capacity)
	var d1, d2 int64
	for i := range d1s {
		d1 += d1s[i]
		d2 += d2s[i]
	}
	if t2 > t1 && d2 > d1 {
		res.WindowGoodput = float64(d2-d1) * 8 / sim.Duration(t2-t1).Seconds() / float64(capacity)
	} else if span := endTime.Sub(first); total > 0 && span > 0 {
		res.WindowGoodput = float64(meter.DeliveredPayload) * 8 / span.Seconds() / float64(capacity)
	}
	res.TimeoutFlows = merged.TimeoutFlows()
	res.Drops = netem.DropTotals(sn.Net.SwitchPorts())
	for _, pt := range sn.Net.AllPorts() {
		res.TxPackets += pt.TxPackets
	}
	res.SmallCDF = stats.FCTCDF(small)
	for _, e := range sn.Engines {
		res.Events += e.Fired()
		ss := e.SchedStats()
		res.Sched.PeakPending += ss.PeakPending
		res.Sched.PeakOverflow += ss.PeakOverflow
	}
	if auds != nil {
		for i, p := range protos {
			auds[i].AuditProtocol(p)
			auds[i].CheckMeter(envs[i].Meter.SentPayload, envs[i].Meter.DeliveredPayload)
		}
		reps := make([]*audit.Report, shards)
		for i, a := range auds {
			reps[i] = a.Finish()
		}
		rep := audit.MergeReports(reps)
		// The cross-pool balance only the merged view can check: once every
		// engine drains, every packet handed out by some pool was returned to
		// some pool.
		drained := true
		for _, e := range sn.Engines {
			if e.Pending() != 0 {
				drained = false
			}
		}
		if drained && rep.Pool.Gets != rep.Pool.Puts {
			rep.AddViolation(audit.Violation{Check: "pool-leak",
				Detail: fmt.Sprintf("engines idle but pools handed out %d packets and got back %d",
					rep.Pool.Gets, rep.Pool.Puts)})
		}
		res.Audit = rep
		if cfg.OnAudit != nil {
			cfg.OnAudit(spec, rep)
		}
	}
	return res
}
