package experiments

import (
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// TestScaleHeapProfile reproduces MeasureScale's retained-state measurement
// point for one cell and dumps an inuse_space heap profile there, for
// attributing state_bytes_per_flow. Opt-in via SCALE_HEAP_PROFILE=<out>.
func TestScaleHeapProfile(t *testing.T) {
	out := os.Getenv("SCALE_HEAP_PROFILE")
	if out == "" {
		t.Skip("set SCALE_HEAP_PROFILE=<path> to dump the profile")
	}
	cfg := DefaultConfig()
	sem, rspec := mustFromScenario(ScaleScenario(cfg, 8, 0.4))
	var protos []transport.Protocol
	run := cfg.ForScenario(sem)
	run.Audit = true
	run.Observe = func(_ *netem.Network, _ *transport.Env, p transport.Protocol) {
		protos = append(protos, p)
	}
	res := Run(run, rspec)
	runtime.GC()
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	t.Logf("completed %d/%d; profile written to %s", res.Completed, res.Total, out)
	runtime.KeepAlive(protos)
	runtime.KeepAlive(res)
}
