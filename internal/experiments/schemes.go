package experiments

import (
	"github.com/aeolus-transport/aeolus/internal/scheme"

	// The transport packages self-register their scheme catalogues from
	// init; these imports are what populate the registry for every
	// experiments user (both CLIs import this package).
	_ "github.com/aeolus-transport/aeolus/internal/transport/expresspass"
	_ "github.com/aeolus-transport/aeolus/internal/transport/homa"
	_ "github.com/aeolus-transport/aeolus/internal/transport/ndp"
)

// Scheme and SchemeSpec alias the catalogue types; see internal/scheme for
// the registry and the Family/Variant registration model.
type (
	Scheme     = scheme.Scheme
	SchemeSpec = scheme.Spec
)

// MakeScheme builds a Scheme from a spec, resolved against the registry.
// An unknown ID (or a bad -opt value) returns an error carrying the full
// catalogue, suitable for printing to users verbatim.
func MakeScheme(spec SchemeSpec) (Scheme, error) { return scheme.Build(spec) }

// mustScheme builds a scheme whose ID is known-good — the in-tree
// experiment definitions. The registry-completeness and conformance tests
// keep every catalogued ID buildable, so a panic here is a programming
// error, not bad user input.
func mustScheme(spec SchemeSpec) Scheme {
	s, err := scheme.Build(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Schemes returns the catalogue in registration order.
func Schemes() []scheme.Entry { return scheme.Entries() }

// SchemeCatalog renders the catalogue as an aligned listing for CLI help
// and error output.
func SchemeCatalog() string { return scheme.Catalog() }
