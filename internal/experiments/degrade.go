package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Degradation is the figure family the paper never produced (ROADMAP item 4):
// how the six schemes of the Fig. 17/18 studies degrade when the network
// misbehaves. Two scenarios, both on the 24-host microbenchmark switch with a
// 16-to-1 64 KB incast:
//
//   - degrade-loss: uniform random loss on every switch port, swept across
//     loss rates — does first-RTT recovery hold up, and at what FCT/goodput
//     cost?
//   - degrade-flap: the receiver's downlink fails mid-incast and is restored
//     250 µs later, with 1% background loss throughout (the canonical
//     impairment timeline of DESIGN.md §10) — do all flows still complete,
//     and what does the outage cost end to end?
//
// Impairment drops are attributed under netem.DropImpairment, so the tables
// can report injected loss separately from the schemes' own congestive drops.
func Degradation(cfg Config) []Table {
	return []Table{degradeLoss(cfg), degradeFlap(cfg)}
}

// degradeScenario builds the shared incast run for one scheme. The traffic is
// pure incast, but the scheme still needs a size distribution to shape its
// unscheduled window — hence the scheme-workload without a traffic workload.
func degradeScenario(cfg Config, id string, tl *netem.Timeline) scenario.Scenario {
	sc := scenario.Scenario{
		Topo: TopoMicro, Scheme: id,
		Seed: cfg.Seed, SchemeSeed: cfg.Seed,
		SchemeWorkload: &scenario.WorkloadSpec{Name: workload.WebServer.Name()},
		Incast: &scenario.IncastSpec{Fanin: 16, Receiver: 0, MsgSize: 64_000,
			Seed: cfg.Seed, StartAt: 10 * sim.Microsecond},
		Deadline: sim.Duration(sim.Second),
		Impair:   tl,
	}
	if id == "homa" || id == "homa+aeolus" {
		sc.RTO = 40 * sim.Microsecond
	}
	return sc
}

// degradeLossRates is the injected-loss axis of the degradation study.
func degradeLossRates(quick bool) []float64 {
	if quick {
		return []float64{0, 0.01}
	}
	return []float64{0, 0.001, 0.01, 0.05}
}

// DegradeLossScenarios declares the (scheme × loss rate) grid.
func DegradeLossScenarios(cfg Config) []scenario.Scenario {
	var scns []scenario.Scenario
	for _, id := range fig17Schemes {
		for _, rate := range degradeLossRates(cfg.Quick) {
			scns = append(scns, degradeScenario(cfg, id, LossTimeline(rate)))
		}
	}
	return scns
}

// DegradeFlapScenarios declares, per scheme, the flapped run followed by its
// pristine baseline.
func DegradeFlapScenarios(cfg Config) []scenario.Scenario {
	flap := FlapTimeline(0.01, 50*sim.Microsecond, 250*sim.Microsecond)
	var scns []scenario.Scenario
	for _, id := range fig17Schemes {
		scns = append(scns, degradeScenario(cfg, id, flap)) // flapped
		scns = append(scns, degradeScenario(cfg, id, nil))  // pristine baseline
	}
	return scns
}

// DegradationScenarios declares the full degradation family.
func DegradationScenarios(cfg Config) []scenario.Scenario {
	return append(DegradeLossScenarios(cfg), DegradeFlapScenarios(cfg)...)
}

// LossTimeline scripts uniform random loss on every switch port from t=0.
// A zero rate means no impairment (nil timeline).
func LossTimeline(rate float64) *netem.Timeline {
	if rate == 0 {
		return nil
	}
	return &netem.Timeline{Steps: []netem.TimelineStep{
		{At: 0, Target: "sw0->*", Action: netem.ActLoss, Rate: rate},
	}}
}

// FlapTimeline scripts the canonical chaos scenario: background random loss
// on every switch port for the whole run, plus a failure of the receiver's
// downlink at failAt, restored at restoreAt.
func FlapTimeline(lossRate float64, failAt, restoreAt sim.Duration) *netem.Timeline {
	return &netem.Timeline{Steps: []netem.TimelineStep{
		{At: 0, Target: "sw0->*", Action: netem.ActLoss, Rate: lossRate},
		{At: failAt, Target: "sw0->h0", Action: netem.ActFail},
		{At: restoreAt, Target: "sw0->h0", Action: netem.ActRestore},
	}}
}

func degradeLoss(cfg Config) Table {
	t := Table{ID: "degrade-loss",
		Title:   "FCT slowdown and goodput vs injected loss (16-to-1, 64KB each)",
		Columns: []string{"scheme", "loss", "completed", "meanSlowdown", "p99Slowdown", "goodput", "timeouts", "injectedDrops"}}
	rates := degradeLossRates(cfg.Quick)
	res := runScenarios(cfg, DegradeLossScenarios(cfg))
	i := 0
	for range fig17Schemes {
		for _, rate := range rates {
			r := res[i]
			i++
			t.Add(r.Scheme, fmt.Sprintf("%g", rate),
				fmt.Sprintf("%d/%d", r.Completed, r.Total),
				f1(r.All.MeanSlowdown), f1(r.All.P99Slowdown),
				f3(r.WindowGoodput), fmt.Sprint(r.TimeoutFlows),
				fmt.Sprint(r.Drops[netem.DropImpairment]))
		}
	}
	return t
}

func degradeFlap(cfg Config) Table {
	t := Table{ID: "degrade-flap",
		Title:   "Link-flap recovery: receiver downlink fails 50..250µs, 1% loss throughout",
		Columns: []string{"scheme", "completed", "meanFCT/us", "pristineFCT/us", "p99FCT/us", "timeouts", "injectedDrops"}}
	res := runScenarios(cfg, DegradeFlapScenarios(cfg))
	for i := 0; i < len(res); i += 2 {
		flapped, pristine := res[i], res[i+1]
		t.Add(flapped.Scheme,
			fmt.Sprintf("%d/%d", flapped.Completed, flapped.Total),
			f1(flapped.All.Mean.Seconds()*1e6), f1(pristine.All.Mean.Seconds()*1e6),
			f1(flapped.All.P99.Seconds()*1e6), fmt.Sprint(flapped.TimeoutFlows),
			fmt.Sprint(flapped.Drops[netem.DropImpairment]))
	}
	return t
}
