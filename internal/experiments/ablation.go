package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// Ablation isolates the contribution of each Aeolus design choice on one
// baseline (ExpressPass, Cache Follower, two-tier fabric, 40% core load):
//
//   - the selective dropping threshold, swept from 1 packet to effectively
//     "no selective protection" (threshold = whole buffer);
//   - probe/selective-ACK loss detection versus RTO-only recovery (what the
//     §5.5 priority-queueing alternative is forced into), at both a
//     conservative and an aggressive RTO;
//   - no pre-credit burst at all (vanilla ExpressPass).
//
// The table shows why the paper's combination — small threshold plus
// probe-based recovery — is the sweet spot: thresholds barely move the
// small-flow mean until they stop protecting scheduled packets, while
// RTO-only recovery either inflates the tail (10 ms) or burns goodput on
// duplicates (20 µs).
func Ablation(cfg Config) []Table {
	wl := workload.CacheFollower
	t := Table{ID: "ablation", Title: "Aeolus design-choice ablation (ExpressPass base, Cache Follower, 40% core)",
		Columns: []string{"variant", "p50/us", "p99/us", "mean/us", "in1RTT", "maxFCT/us", "efficiency"}}

	var names []string
	var specs []RunSpec
	add := func(name string, spec SchemeSpec) {
		names = append(names, name)
		specs = append(specs, RunSpec{
			Scheme: spec, Topo: TopoLeafSpine, Workload: wl, CoreLoad: 0.4,
		})
	}

	add("no pre-credit burst (vanilla)", SchemeSpec{ID: "xpass", Workload: wl, Seed: cfg.Seed})

	thresholds := []int64{1538, 3 << 10, 6 << 10, 12 << 10, 24 << 10, 96 << 10, 200 << 10}
	if cfg.Quick {
		thresholds = []int64{1538, 6 << 10, 200 << 10}
	}
	for _, th := range thresholds {
		name := fmt.Sprintf("aeolus, threshold %dKB", th>>10)
		if th >= 200<<10 {
			name = "aeolus, threshold = buffer (no SPF)"
		}
		add(name, SchemeSpec{ID: "xpass+aeolus", Workload: wl, Threshold: th, Seed: cfg.Seed})
	}

	add("burst + RTO-only recovery (10ms)", SchemeSpec{
		ID: "xpass+prio", Workload: wl, RTO: 10 * sim.Millisecond, Seed: cfg.Seed})
	add("burst + RTO-only recovery (20us)", SchemeSpec{
		ID: "xpass+prio", Workload: wl, RTO: 20 * sim.Microsecond, Seed: cfg.Seed})

	for i, r := range runAll(cfg, specs) {
		t.Add(names[i],
			stats.FormatDur(r.Small.P50), stats.FormatDur(r.Small.P99),
			stats.FormatDur(r.Small.Mean), f3(r.FirstRTTFrac),
			stats.FormatDur(r.All.Max), f3(r.Efficiency))
	}

	return []Table{t}
}
