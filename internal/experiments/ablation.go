package experiments

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// ablationCases declares the ablation grid as (display name, scenario) pairs.
// The names are shaping information — which knob each row isolates — so they
// travel with the scenarios rather than being reconstructed by the renderer.
func ablationCases(cfg Config) ([]string, []scenario.Scenario) {
	wl := workload.CacheFollower.Name()

	var names []string
	var scns []scenario.Scenario
	add := func(name string, sc scenario.Scenario) {
		names = append(names, name)
		scns = append(scns, sc)
	}

	add("no pre-credit burst (vanilla)", poissonScenario(cfg, "xpass", wl, TopoLeafSpine, 0.4))

	thresholds := []int64{1538, 3 << 10, 6 << 10, 12 << 10, 24 << 10, 96 << 10, 200 << 10}
	if cfg.Quick {
		thresholds = []int64{1538, 6 << 10, 200 << 10}
	}
	for _, th := range thresholds {
		name := fmt.Sprintf("aeolus, threshold %dKB", th>>10)
		if th >= 200<<10 {
			name = "aeolus, threshold = buffer (no SPF)"
		}
		sc := poissonScenario(cfg, "xpass+aeolus", wl, TopoLeafSpine, 0.4)
		sc.Threshold = th
		add(name, sc)
	}

	slow := poissonScenario(cfg, "xpass+prio", wl, TopoLeafSpine, 0.4)
	slow.RTO = 10 * sim.Millisecond
	add("burst + RTO-only recovery (10ms)", slow)

	fast := poissonScenario(cfg, "xpass+prio", wl, TopoLeafSpine, 0.4)
	fast.RTO = 20 * sim.Microsecond
	add("burst + RTO-only recovery (20us)", fast)

	return names, scns
}

// AblationScenarios declares the ablation runs.
func AblationScenarios(cfg Config) []scenario.Scenario {
	_, scns := ablationCases(cfg)
	return scns
}

// Ablation isolates the contribution of each Aeolus design choice on one
// baseline (ExpressPass, Cache Follower, two-tier fabric, 40% core load):
//
//   - the selective dropping threshold, swept from 1 packet to effectively
//     "no selective protection" (threshold = whole buffer);
//   - probe/selective-ACK loss detection versus RTO-only recovery (what the
//     §5.5 priority-queueing alternative is forced into), at both a
//     conservative and an aggressive RTO;
//   - no pre-credit burst at all (vanilla ExpressPass).
//
// The table shows why the paper's combination — small threshold plus
// probe-based recovery — is the sweet spot: thresholds barely move the
// small-flow mean until they stop protecting scheduled packets, while
// RTO-only recovery either inflates the tail (10 ms) or burns goodput on
// duplicates (20 µs).
func Ablation(cfg Config) []Table {
	t := Table{ID: "ablation", Title: "Aeolus design-choice ablation (ExpressPass base, Cache Follower, 40% core)",
		Columns: []string{"variant", "p50/us", "p99/us", "mean/us", "in1RTT", "maxFCT/us", "efficiency"}}

	names, scns := ablationCases(cfg)
	for i, r := range runScenarios(cfg, scns) {
		t.Add(names[i],
			stats.FormatDur(r.Small.P50), stats.FormatDur(r.Small.P99),
			stats.FormatDur(r.Small.Mean), f3(r.FirstRTTFrac),
			stats.FormatDur(r.All.Max), f3(r.Efficiency))
	}

	return []Table{t}
}
