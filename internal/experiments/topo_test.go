package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// catalogueDigests pins the structural digest of every catalogue fabric (the
// same table internal/netem/clos_test.go pins against the retired
// hand-written builders). A mismatch means someone edited a catalogue spec —
// which silently changes every experiment run on that topology.
var catalogueDigests = map[string]string{
	TopoSingleSwitch: "2f96ca96ee2f8e7b68a46c5629a16baf46c16beb4bf711b1265023503923c3da",
	TopoMicro:        "c2bb422e3b37b1d5bba22b65c130a49c3b805f737bd4b20689f8a0b59c2d1eb5",
	TopoLeafSpine:    "1a45d2dae1317ecc8255b82a36413ce2d5fb8a7bac11dd7975fa85f125777f33",
	TopoFatTree:      "1629024767e6a3e821a2913897180f85c6fcf216c04aef442d7142da2fd008ca",
	TopoIncastFabric: "e9fb1b11d9af34a1f152fe22f721e22f968cf2f03912a19acc2bdd80eb738fbf",
}

func TestCataloguePinsLegacyFabrics(t *testing.T) {
	if len(catalogueDigests) != len(TopoCatalogue) {
		t.Fatalf("digest table has %d entries, catalogue %d", len(catalogueDigests), len(TopoCatalogue))
	}
	for _, d := range TopoCatalogue {
		want, ok := catalogueDigests[d.Name]
		if !ok {
			t.Errorf("%s: no pinned digest", d.Name)
			continue
		}
		got := netem.BuildClos(sim.NewEngine(), d.Spec, nil, 0).StructureDigest()
		if got != want {
			t.Errorf("%s: structure digest %s, pinned %s — catalogue spec changed", d.Name, got, want)
		}
	}
}

// TestResolveTopoUnknownListsCatalogue is the regression test for the old
// silent-default bug: an unknown name used to fall through hostsIn's zero
// default and simulate nothing. It must now be a hard error whose text names
// every catalogue entry and the clos: escape hatch.
func TestResolveTopoUnknownListsCatalogue(t *testing.T) {
	_, err := ResolveTopo("leafspien")
	if err == nil {
		t.Fatal("unknown topology resolved without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"leafspien"`) {
		t.Errorf("error does not echo the bad name: %s", msg)
	}
	for _, d := range TopoCatalogue {
		if !strings.Contains(msg, d.Name) {
			t.Errorf("error does not list catalogue entry %s: %s", d.Name, msg)
		}
	}
	if !strings.Contains(msg, "clos:") {
		t.Errorf("error does not mention the clos: grammar: %s", msg)
	}
	if !strings.Contains(TopoCatalog(), TopoFatTree) {
		t.Error("TopoCatalog omits the fat-tree entry")
	}
}

func TestResolveTopoClosSpec(t *testing.T) {
	d, err := ResolveTopo("clos:8/8,hosts=8,rate=100Gbps,delay=500ns")
	if err != nil {
		t.Fatal(err)
	}
	if d.Hosts() != 64 {
		t.Errorf("hosts = %d, want 64", d.Hosts())
	}
	// Ad-hoc specs use the computed load factor, not a pinned catalogue one.
	want := d.Spec.CoreLoadFactor()
	if got := 1 / d.EdgeLoad(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("load factor = %g, want computed %g", got, want)
	}
	if _, err := ResolveTopo("clos:9g2/8,hosts=8"); err == nil {
		t.Error("invalid clos spec (2 groups over 9 switches) resolved without error")
	}
}

// TestCatalogueEdgeLoads pins the historical core-to-edge conversions the
// string-switch harness used, so experiment workloads stay bit-identical.
func TestCatalogueEdgeLoads(t *testing.T) {
	cases := []struct {
		name   string
		factor float64
	}{
		{TopoFatTree, 3.0 * 186.0 / 191.0},
		{TopoLeafSpine, 7.0 / 8.0},
		{TopoSingleSwitch, 1},
		{TopoIncastFabric, 128.0 / 143.0},
		{TopoMicro, 1},
	}
	for _, tc := range cases {
		d := mustTopo(tc.name)
		if got := 0.8 / d.EdgeLoad(0.8); got != tc.factor {
			t.Errorf("%s: load factor %v, want %v", tc.name, got, tc.factor)
		}
	}
}
