package experiments

import (
	"fmt"
	"sort"

	"github.com/aeolus-transport/aeolus/internal/scenario"
)

// Experiment binds an ID to the function regenerating that table/figure and,
// where the figure is a set of simulator runs, to the scenario values that
// declare those runs. Scenarios is the serializable ground truth — Fn renders
// tables from exactly the runs Scenarios declares — so anything that can run a
// scenario (the CLIs, a golden test, a foreign harness) can reproduce a
// registry figure cell by cell. It is nil only for the analytic fig2 (no
// simulation at all) and the instrumented fig15/fig16 microbenchmarks, whose
// in-run probes are observational hooks a serialized run cannot carry.
type Experiment struct {
	ID        string
	Paper     string // what the paper shows
	Fn        func(Config) []Table
	Scenarios func(Config) []scenario.Scenario
}

// Registry lists every reproduced table and figure in paper order.
var Registry = []Experiment{
	{ID: "fig1", Paper: "Gap between proactive baselines and ideal pre-credit handling",
		Fn: Fig1, Scenarios: Fig1Scenarios},
	{ID: "fig2", Paper: "Fraction of flows/bytes finishable in the first RTT vs link speed",
		Fn: Fig2}, // analytic: no simulation runs
	{ID: "fig3", Paper: "ExpressPass vs hypothetical ExpressPass, small-flow FCT",
		Fn: Fig3, Scenarios: Fig3Scenarios},
	{ID: "fig4", Paper: "Homa vs hypothetical Homa, small-flow FCT",
		Fn: Fig4, Scenarios: Fig4Scenarios},
	{ID: "table1", Paper: "Hypothetical vs eager vs original Homa",
		Fn: Table1, Scenarios: Table1Scenarios},
	{ID: "fig8", Paper: "Testbed 7-to-1 incast MCT, ExpressPass ± Aeolus",
		Fn: Fig8, Scenarios: Fig8Scenarios},
	{ID: "fig9", Paper: "ExpressPass ± Aeolus small-flow FCT, four workloads",
		Fn: Fig9, Scenarios: Fig9Scenarios},
	{ID: "fig10", Paper: "ExpressPass ± Aeolus avg small-flow FCT vs load",
		Fn: Fig10, Scenarios: Fig10Scenarios},
	{ID: "fig11", Paper: "Testbed 7-to-1 incast MCT, Homa ± Aeolus",
		Fn: Fig11, Scenarios: Fig11Scenarios},
	{ID: "fig12", Paper: "Homa ± Aeolus small-flow FCT, four workloads",
		Fn: Fig12, Scenarios: Fig12Scenarios},
	{ID: "fig13", Paper: "Flows suffering timeouts vs load, Homa ± Aeolus",
		Fn: Fig13, Scenarios: Fig13Scenarios},
	{ID: "table3", Paper: "Avg FCT of all flows, eager Homa vs Homa+Aeolus",
		Fn: Table3, Scenarios: Table3Scenarios},
	{ID: "fig14", Paper: "NDP ± Aeolus small-flow FCT, four workloads",
		Fn: Fig14, Scenarios: Fig14Scenarios},
	{ID: "fig15", Paper: "Queue length vs selective dropping threshold",
		Fn: Fig15}, // instrumented microbenchmark: in-run queue probes
	{ID: "fig16", Paper: "First-RTT utilization vs fan-in and threshold",
		Fn: Fig16}, // instrumented microbenchmark: in-run utilization probes
	{ID: "table4", Paper: "Aeolus vs priority queueing: ambiguity",
		Fn: Table4, Scenarios: Table4Scenarios},
	{ID: "table5", Paper: "Aeolus vs priority queueing: shared-buffer incast",
		Fn: Table5, Scenarios: Table5Scenarios},
	{ID: "fig17", Paper: "Heavy-incast FCT slowdown, six schemes",
		Fn: Fig17, Scenarios: Fig17Scenarios},
	{ID: "fig18", Paper: "Goodput vs offered load, six schemes",
		Fn: Fig18, Scenarios: Fig18Scenarios},
	{ID: "ablation", Paper: "Design-choice ablation: threshold sweep, probe vs RTO-only recovery",
		Fn: Ablation, Scenarios: AblationScenarios},
	{ID: "degrade", Paper: "Degradation sweep under injected loss and link flap (not in the paper)",
		Fn: Degradation, Scenarios: DegradationScenarios},
	{ID: "scale", Paper: "Open-loop scale sweep: simulator throughput and memory vs fabric size (not in the paper)",
		Fn: ScaleSweep, Scenarios: ScaleScenarios},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Registry))
	for _, e := range Registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("unknown experiment %q (have: %v)", id, ids)
}
