package experiments

import (
	"fmt"
	"sort"
)

// Experiment binds an ID to the function regenerating that table/figure.
type Experiment struct {
	ID    string
	Paper string // what the paper shows
	Fn    func(Config) []Table
}

// Registry lists every reproduced table and figure in paper order.
var Registry = []Experiment{
	{"fig1", "Gap between proactive baselines and ideal pre-credit handling", Fig1},
	{"fig2", "Fraction of flows/bytes finishable in the first RTT vs link speed", Fig2},
	{"fig3", "ExpressPass vs hypothetical ExpressPass, small-flow FCT", Fig3},
	{"fig4", "Homa vs hypothetical Homa, small-flow FCT", Fig4},
	{"table1", "Hypothetical vs eager vs original Homa", Table1},
	{"fig8", "Testbed 7-to-1 incast MCT, ExpressPass ± Aeolus", Fig8},
	{"fig9", "ExpressPass ± Aeolus small-flow FCT, four workloads", Fig9},
	{"fig10", "ExpressPass ± Aeolus avg small-flow FCT vs load", Fig10},
	{"fig11", "Testbed 7-to-1 incast MCT, Homa ± Aeolus", Fig11},
	{"fig12", "Homa ± Aeolus small-flow FCT, four workloads", Fig12},
	{"fig13", "Flows suffering timeouts vs load, Homa ± Aeolus", Fig13},
	{"table3", "Avg FCT of all flows, eager Homa vs Homa+Aeolus", Table3},
	{"fig14", "NDP ± Aeolus small-flow FCT, four workloads", Fig14},
	{"fig15", "Queue length vs selective dropping threshold", Fig15},
	{"fig16", "First-RTT utilization vs fan-in and threshold", Fig16},
	{"table4", "Aeolus vs priority queueing: ambiguity", Table4},
	{"table5", "Aeolus vs priority queueing: shared-buffer incast", Table5},
	{"fig17", "Heavy-incast FCT slowdown, six schemes", Fig17},
	{"fig18", "Goodput vs offered load, six schemes", Fig18},
	{"ablation", "Design-choice ablation: threshold sweep, probe vs RTO-only recovery", Ablation},
	{"degrade", "Degradation sweep under injected loss and link flap (not in the paper)", Degradation},
	{"scale", "Open-loop scale sweep: simulator throughput and memory vs fabric size (not in the paper)", ScaleSweep},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Registry))
	for _, e := range Registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("unknown experiment %q (have: %v)", id, ids)
}
