package experiments

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// goldenScenarioDigests pins the scenario (content) digest of every golden
// run, alongside the behavior digests of golden_test.go: the scenario digest
// says *what* is run, the behavior digest says what it *did*, and the pair is
// the cache key the future result store hinges on. Regenerate with
// `aeolusbench -digest` (it prints both) after an intentional change to the
// golden trace's definition.
var goldenScenarioDigests = map[string]string{
	"xpass":        "3c694016a76fd70cdff614623ffc0050a772023d4cd95474b4a21e105819ce82",
	"xpass+aeolus": "454b415865c28f75d0d582fa3578655d27df098a07256814f40c7662f342dd55",
	"xpass+oracle": "e767597631ec022ef9aa2e4d5985c421085b898a5f46dc02337ff7bf25c7fbd4",
	"xpass+prio":   "e3eb16a97f0869f029364851d43895b4e76730623f33985a0b88be96bee2a688",
	"homa":         "90a48a9a58ffeead495f70c1e673c051c97c195a9a7362ecb2d3f59f479d1b38",
	"homa+aeolus":  "d24e626b99fd0a07ecb9df72639af9ecbb8b196f51846f2ee57acd0a1ecf7983",
	"homa+oracle":  "fe8200bbfa66de8425f785206543f1e9c81941c53d9e766bc2fb82cc8d37e9f1",
	"homa-eager":   "1d57cca63fb5fdc13386c7601dc32eed88ae9a52cd1d5413cbb927f2cc4fb4c4",
	"ndp":          "c8d5ebea28abf15938d98b84d09322b93040e96b46abc2ed9187d87472e2ec80",
	"ndp+aeolus":   "16407683cb8e88199e7e2ee5bb2450b5cc64ee89ac71be69f64d84f822866a79",
}

// registryScenarioDigests pins, per registry experiment, the hash of the
// scenario digests its runs resolve to under DefaultConfig (full sweeps, not
// -quick) — the aggregate identity of "which runs this figure means". A drift
// here is a semantic change to an experiment's definition and must be as
// deliberate as a goldenDigests update. Regenerate by hashing the Digest()
// lines of `aeolusbench -scenarios <id>` or with the loop in
// TestRegistryScenarioDigests below.
var registryScenarioDigests = map[string]string{
	"fig1":     "b6f971cd5912d1c38d8ad564be4a380eb8d3ff1ef75a6928e6e8f4b530bc60a1",
	"fig3":     "91ed9a9c34755771cbed81d86a1345469139614eb27867c6e6b2516d931829d0",
	"fig4":     "9f13ae26002c74b05a563393ea5cd97af40f1ac155f53d41ba6c04368acb08a6",
	"table1":   "ba8ec2f9cf602883a3042ad8dc4dde2f4583f8321be762bf99c5501037d7d6d8",
	"fig8":     "c4171e7ed55d2de7a9ef1971af1d189f4d3fd30424567e6bfa3510b46411e6d2",
	"fig9":     "46c05bdae6708e7c3182492018208a93ca6e9b1953d8bbf15c64ab73640eb776",
	"fig10":    "70ba6876132ce4cc2f6882d4dbebd1077400594aa99ea849904050e6ea1c734a",
	"fig11":    "5d8cb6a3613d180af9079fe3f3c03462b2430177403b3a78838b5181ab6d20d3",
	"fig12":    "0f887856a09bf9d7ec9913e12e7efe417336ee43336bcabfab9df4e08bffa585",
	"fig13":    "8d0dc435f39aa93a7051b2729000194bf2e5cee8e621065073342841f074d849",
	"table3":   "f9b7fa8842e5aca444e9b8a4a7ba03a27a98c8cb356f85d80b5b0bf1d4ae62b8",
	"fig14":    "26a4aa46f27ede73f027743c814cd62d87bd3aca10a3a2b2007901577a9f4a15",
	"table4":   "6e998249626aca082d19bb02ed9ebb3ca9c865392918e897ab035adc0f27a8ac",
	"table5":   "4e9d314bebcf7c0c7a5d93cd027b4a99772981ea2f98a5006914867d165bb9c6",
	"fig17":    "fff34b16c50081296d4e06cbf0c689fcfd2ac408e73d1be3f094b34ad561724c",
	"fig18":    "57dfee54ede896a5edc5b12e03cb26900baaf30e38bcee76810bfe494ab1b6cc",
	"ablation": "19db343561e1190c06754a6873948895e11164ca1c418931643b443bd82255cb",
	"degrade":  "bfad07f6a0ea03d357a99ba128ea9f77ae99aa448864da08920be4da5e794df8",
	"scale":    "c354978c63e0ea63054c211a9c0d3a47d9185cddec1f06fad14ac9903ba6a88e",
}

// TestGoldenScenarioDigests pins the content identity of the golden runs.
func TestGoldenScenarioDigests(t *testing.T) {
	for id, want := range goldenScenarioDigests {
		sc := GoldenScenario(id)
		if got := sc.Digest(); got != want {
			t.Errorf("%s: golden scenario digest drifted:\n got  %s\n want %s", id, got, want)
		}
	}
	if len(goldenScenarioDigests) != len(Schemes()) {
		t.Errorf("catalogue has %d schemes, goldenScenarioDigests pins %d",
			len(Schemes()), len(goldenScenarioDigests))
	}
}

// TestRegistryScenarioDigests pins the aggregate scenario identity of every
// registry experiment that declares runs, and checks each declared scenario
// passes full semantic validation and survives both serialization forms.
func TestRegistryScenarioDigests(t *testing.T) {
	covered := 0
	for _, e := range Registry {
		if e.Scenarios == nil {
			continue
		}
		covered++
		h := sha256.New()
		for i, sc := range e.Scenarios(DefaultConfig()) {
			if err := CheckScenario(&sc); err != nil {
				t.Fatalf("%s[%d]: %v", e.ID, i, err)
			}
			// Both interchange forms must reproduce the value exactly; the
			// digest is defined over the canonical text.
			reparsed, err := scenario.Parse(fmt.Sprintf("%s[%d]", e.ID, i), []byte(sc.Text()))
			if err != nil {
				t.Fatalf("%s[%d]: reparse text: %v", e.ID, i, err)
			}
			if !reflect.DeepEqual(reparsed, &sc) {
				t.Fatalf("%s[%d]: text round trip diverged:\n%s", e.ID, i, sc.Text())
			}
			buf, err := sc.JSON()
			if err != nil {
				t.Fatalf("%s[%d]: %v", e.ID, i, err)
			}
			fromJSON, err := scenario.Parse(fmt.Sprintf("%s[%d].json", e.ID, i), buf)
			if err != nil {
				t.Fatalf("%s[%d]: reparse json: %v", e.ID, i, err)
			}
			if !reflect.DeepEqual(fromJSON, &sc) {
				t.Fatalf("%s[%d]: json round trip diverged", e.ID, i)
			}
			fmt.Fprintln(h, sc.Digest())
		}
		got := fmt.Sprintf("%x", h.Sum(nil))
		want, ok := registryScenarioDigests[e.ID]
		if !ok {
			t.Errorf("%s declares scenarios but has no pinned digest; add %q: %q,", e.ID, e.ID, got)
			continue
		}
		if got != want {
			t.Errorf("%s: registry scenario digest drifted:\n got  %s\n want %s", e.ID, got, want)
		}
	}
	if covered != len(registryScenarioDigests) {
		t.Errorf("registry declares scenarios for %d experiments, table pins %d", covered, len(registryScenarioDigests))
	}
}

// TestScenarioDrivenGolden is the acceptance criterion of the scenario
// refactor made executable: serializing a golden scenario to its canonical
// text, parsing it back, and running it through the scenario path
// (FromScenario + ForScenario) reproduces the pinned behavior digest, across
// the same scheduler × pool matrix as TestGoldenDigests. The run identity of
// a scheme is its scenario file — nothing the Go code adds on the side.
func TestScenarioDrivenGolden(t *testing.T) {
	for _, id := range []string{"xpass", "homa+aeolus", "ndp"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			src := GoldenScenario(id)
			sc, err := scenario.Parse(id, []byte(src.Text()))
			if err != nil {
				t.Fatal(err)
			}
			sem, spec, err := FromScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, sched := range goldenSchedulers(t) {
				for _, pool := range []bool{true, false} {
					rt := Config{DisablePool: !pool, Scheduler: sched}
					r := Run(rt.ForScenario(sem), spec)
					if got, want := r.Digest(), goldenDigests[id]; got != want {
						t.Errorf("scenario-driven golden diverged (sched=%s pool=%v):\n got  %s\n want %s",
							sched, pool, got, want)
					}
				}
			}
		})
	}
}

// TestToScenarioRoundTrip checks the lifting direction: lowering a scenario
// and lifting the (Config, RunSpec) pair back reproduces the original value —
// the -dump-scenario contract.
func TestToScenarioRoundTrip(t *testing.T) {
	cases := map[string]scenario.Scenario{
		"golden":  GoldenScenario("xpass+prio"),
		"poisson": poissonScenario(DefaultConfig(), "homa", "WebSearch", TopoLeafSpine, 0.54),
		"degrade": degradeScenario(DefaultConfig(), "ndp+aeolus", FlapTimeline(0.01, 50*sim.Microsecond, 250*sim.Microsecond)),
		"scale":   ScaleScenario(DefaultConfig(), 8, 0.4),
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			want := src
			if err := want.Validate(); err != nil {
				t.Fatal(err)
			}
			cfg, spec, err := FromScenario(&src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ToScenario(cfg, spec)
			if err != nil {
				t.Fatal(err)
			}
			// The name is presentation, not identity, and is not lifted.
			want.Name = ""
			if !reflect.DeepEqual(got, &want) {
				t.Errorf("round trip diverged:\n got  %#v\n want %#v", got, &want)
			}
		})
	}
}

// TestForScenarioKeepsRuntimeKnobs checks the Config layering: semantic
// fields come from the scenario, runtime knobs survive from the caller.
func TestForScenarioKeepsRuntimeKnobs(t *testing.T) {
	rt := DefaultConfig()
	rt.Parallel = 7
	rt.DisablePool = true
	rt.Scheduler = sim.SchedHeap
	sem := Config{Budget: 1 << 20, MinFlows: 3, MaxFlows: 9, Seed: 42}
	out := rt.ForScenario(sem)
	if out.Budget != 1<<20 || out.MinFlows != 3 || out.MaxFlows != 9 || out.Seed != 42 {
		t.Errorf("semantic fields not layered: %+v", out)
	}
	if out.Parallel != 7 || !out.DisablePool || out.Scheduler != sim.SchedHeap {
		t.Errorf("runtime knobs lost: %+v", out)
	}
	sem.Scheduler = sim.SchedWheel
	if out := rt.ForScenario(sem); out.Scheduler != sim.SchedWheel {
		t.Errorf("scenario-pinned scheduler ignored: %+v", out)
	}
}
