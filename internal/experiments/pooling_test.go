package experiments

import (
	"reflect"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// TestPoolOnOffIdenticalResults is the pooling correctness proof: every
// scheme in the catalogue, run once with packet recycling and once with
// Config.DisablePool, must produce byte-identical RunResults — every
// summary, drop counter, CDF point and raw flow record. Pooling changes
// which object carries a packet, never what happens to it. The sweep runs
// under both event schedulers so the pooling proof holds on each.
func TestPoolOnOffIdenticalResults(t *testing.T) {
	for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
		t.Run(string(sched), func(t *testing.T) { poolOnOffSweep(t, sched) })
	}
}

func poolOnOffSweep(t *testing.T, sched sim.SchedulerKind) {
	cfg := testConfig()
	cfg.Audit = true
	cfg.Scheduler = sched
	off := cfg
	off.DisablePool = true
	for _, spec := range auditSweepSpecs() {
		id := spec.Scheme.ID
		rOn := Run(cfg, spec)
		rOff := Run(off, spec)
		if rOn.Audit == nil || rOff.Audit == nil {
			t.Fatalf("%s: missing audit report", id)
		}
		if err := rOn.Audit.Err(); err != nil {
			t.Errorf("%s (pool on): %v", id, err)
		}
		if err := rOff.Audit.Err(); err != nil {
			t.Errorf("%s (pool off): %v", id, err)
		}
		if rOff.Audit.Pool.Allocated != rOff.Audit.Pool.Gets {
			t.Errorf("%s: disabled pool recycled packets: %+v", id, rOff.Audit.Pool)
		}
		if rOn.TxPackets > 0 && rOn.Audit.Pool.Allocated >= rOff.Audit.Pool.Allocated {
			t.Errorf("%s: pooling saved no allocations: %d with pool, %d without",
				id, rOn.Audit.Pool.Allocated, rOff.Audit.Pool.Allocated)
		}
		// The behavior digest is the strongest equality: slab-carved packets
		// (pool on) versus individually allocated ones (pool off) must be
		// observationally indistinguishable down to the last flow record.
		if dOn, dOff := rOn.Digest(), rOff.Digest(); dOn != dOff {
			t.Errorf("%s: digest diverges between slab and individual allocation:\non:  %s\noff: %s",
				id, dOn, dOff)
		}
		// Everything but the pool counters themselves must match exactly.
		rOn.Audit.Pool = netem.PoolStats{}
		rOff.Audit.Pool = netem.PoolStats{}
		if !reflect.DeepEqual(rOn, rOff) {
			t.Errorf("%s: results diverge between pool on and off:\non:  %+v\noff: %+v",
				id, rOn.All, rOff.All)
		}
	}
}
