package experiments

import (
	"sync"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/audit"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// auditSweepSpecs builds one audited incast run per registered scheme, on
// the 24-host microbenchmark switch — the golden trace, so a newly
// registered scheme is swept automatically.
func auditSweepSpecs() []RunSpec {
	entries := Schemes()
	specs := make([]RunSpec, 0, len(entries))
	for _, e := range entries {
		specs = append(specs, GoldenSpec(e.ID))
	}
	return specs
}

// TestAuditSweepAllSchemes runs every scheme in the catalogue under the
// packet-conservation auditor and requires a clean report: all flows
// complete, every injected byte accounted, queues and protocol state
// coherent at drain. Both event schedulers are swept — the auditor's
// drain-time invariants lean on Engine.CheckInvariants, which validates
// whichever queue structure backs the run.
func TestAuditSweepAllSchemes(t *testing.T) {
	for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
		t.Run(string(sched), func(t *testing.T) { auditSweep(t, sched) })
	}
}

func auditSweep(t *testing.T, sched sim.SchedulerKind) {
	cfg := testConfig()
	cfg.Audit = true
	cfg.Scheduler = sched
	var mu sync.Mutex
	audited := 0
	cfg.OnAudit = func(_ RunSpec, rep *audit.Report) {
		mu.Lock()
		defer mu.Unlock()
		audited++
	}
	// Through the Pool, so concurrent audited runs are exercised too (the
	// race-enabled CI pass covers this package).
	cfg.Parallel = 4
	pool := NewPool(cfg)
	specs := auditSweepSpecs()
	for _, spec := range specs {
		pool.Submit(spec)
	}
	for i, r := range pool.Collect() {
		id := specs[i].Scheme.ID
		if r.Completed != r.Total {
			t.Errorf("%s: completed %d of %d", id, r.Completed, r.Total)
		}
		if r.Audit == nil {
			t.Errorf("%s: no audit report", id)
			continue
		}
		if err := r.Audit.Err(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if r.Audit.InjectedPayload == 0 || r.Audit.UniquePayload == 0 {
			t.Errorf("%s: empty ledger %+v", id, r.Audit)
		}
	}
	if audited != len(specs) {
		t.Errorf("OnAudit fired %d times, want %d", audited, len(specs))
	}
}

// TestAuditCatchesInjectedLoss proves the auditor is live end-to-end: a
// fault-injection qdisc silently discarding packets (no drop hook, no
// counter) must surface as a conservation violation.
func TestAuditCatchesInjectedLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Audit = true
	scheme := mustScheme(SchemeSpec{ID: "xpass+aeolus", Seed: 3})
	net := buildTopo(TopoMicro, scheme.Factory(netem.DefaultBuffer), netem.WireSizeFor(scheme.MSS), cfg.scheduler())
	// Sabotage one switch port behind the auditor's back: every packet on
	// the receiver downlink vanishes without a trace event or counter.
	pt := net.Switches[0].Ports[0]
	pt.Q = dropAllQdisc{pt.Q}
	a := audit.Attach(net)
	a.RegisterFlow(1, 3000)
	p := &netem.Packet{Type: netem.Data, Flow: 1, Src: 1, Dst: 0,
		PayloadLen: 1460, WireSize: 1538}
	net.Hosts[1].Send(p)
	net.Eng.Run()
	rep := a.Finish()
	if rep.Ok() {
		t.Fatal("silent packet loss produced a clean audit")
	}
}

// dropAllQdisc silently swallows every enqueue — the kind of accounting bug
// the audit layer exists to catch.
type dropAllQdisc struct{ netem.Qdisc }

func (d dropAllQdisc) Enqueue(*netem.Packet, sim.Time) bool { return true }
func (d dropAllQdisc) Dequeue(sim.Time) *netem.Packet       { return nil }

// TestWindowGoodputIncastFallback is the regression for the steady-state
// goodput metric degenerating to zero on pure incast runs: simultaneous
// arrivals collapse the middle-half measurement window (last == first), so
// the metric must fall back to the arrival→drain span.
func TestWindowGoodputIncastFallback(t *testing.T) {
	r := Run(testConfig(), RunSpec{
		Scheme: SchemeSpec{ID: "xpass+aeolus", Seed: 3},
		Topo:   TopoMicro,
		Incast: &workload.IncastConfig{Fanin: 8, Receiver: 0, MsgSize: 100_000,
			Seed: 3, StartAt: sim.Time(10 * sim.Microsecond)},
		Deadline: sim.Duration(sim.Second),
	})
	if r.Completed != r.Total {
		t.Fatalf("incast incomplete: %d of %d", r.Completed, r.Total)
	}
	if r.WindowGoodput <= 0 {
		t.Fatalf("WindowGoodput = %v for pure incast, want positive fallback", r.WindowGoodput)
	}
	if r.WindowGoodput > 1 {
		t.Fatalf("WindowGoodput = %v exceeds capacity", r.WindowGoodput)
	}
}

// TestNDPSchemeGetsJumboBaseRTT checks the per-scheme serialization size
// flows into the derived base RTT: NDP's 9 KB frames must yield a larger
// base RTT than ExpressPass's 1538 B frames on the same topology.
func TestNDPSchemeGetsJumboBaseRTT(t *testing.T) {
	run := func(id string) RunResult {
		return Run(testConfig(), RunSpec{
			Scheme: SchemeSpec{ID: id, Seed: 3},
			Topo:   TopoMicro,
			Incast: &workload.IncastConfig{Fanin: 2, Receiver: 0, MsgSize: 20_000,
				Seed: 3, StartAt: sim.Time(10 * sim.Microsecond)},
			Deadline: sim.Duration(sim.Second),
		})
	}
	ndpRTT := run("ndp").baseRTT
	xpassRTT := run("xpass").baseRTT
	if ndpRTT <= xpassRTT {
		t.Fatalf("NDP base RTT %v not above ExpressPass %v on the same fabric", ndpRTT, xpassRTT)
	}
}
