// Package scenario defines the serializable run specification: one data
// value that fully determines a simulation run — topology, scheme and its
// options, workload, load, flow budget, incast, buffer, deadline, scheduler
// kind, seeds, and an optional embedded impairment timeline. A scenario is
// what the per-figure experiment generators declare, what the CLIs dump and
// replay, and what the golden-digest machinery keys run identity on: two
// runs with equal scenario digests and equal code are byte-identical.
//
// Two interchange forms exist, both canonical (parse → render → parse is the
// identity, held by FuzzScenarioRoundTrip):
//
// JSON — an object with the field names of Scenario's struct tags; unknown
// fields are hard errors. The impairment timeline embeds as the bare step
// array of internal/netem.
//
// Text — one directive per line, '#' starts a comment:
//
//	# aeolus scenario
//	name golden-xpass
//	topo micro
//	scheme xpass+aeolus
//	opt retrylimit=4
//	rto 10ms
//	threshold 6144
//	seed 1
//	scheme-seed 3
//	workload name=WebServer        (or file=path, or inline=<label> + point lines)
//	point 100 0                    (inline CDF points, "<bytes> <prob>")
//	scheme-workload name=WebServer (workload for scheme defaults, when distinct)
//	load 0.4
//	flows 2000
//	budget 25165824
//	min-flows 100
//	max-flows 2000
//	buffer 102400
//	deadline 1s
//	scheduler wheel
//	incast fanin=5 receiver=0 msg=50000 seed=3 start=10us jitter=0ps
//	impair 0s sw0->* loss rate=0.01 nth=0 match=all
//
// Directives render in exactly that order; repeatable ones are opt (sorted
// by key), point (attached to the preceding workload directive) and impair
// (the timeline grammar of internal/netem/timeline.go, one step per line).
//
// This package validates structure only — field shapes, workload CDF
// monotonicity, timeline step forms. Semantic validation (does the topology
// exist, does the scheme build, do impairment targets match ports) lives in
// internal/experiments.CheckScenario, which reuses ResolveTopo, MakeScheme
// and CheckImpair so a scenario error reads exactly like the CLI flag error
// it replaces.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// digestVersion prefixes the digest input, so a format change that re-renders
// old scenarios differently also re-keys every digest loudly.
const digestVersion = "aeolus-scenario-v1"

// Scenario is the complete serializable description of one simulation run.
// The zero value of every optional field means "paper/scheme default", same
// as the CLI flags it mirrors.
type Scenario struct {
	// Name is an optional label (no whitespace); it participates in the
	// digest, so two otherwise-equal scenarios with different names are
	// different cache keys.
	Name string `json:"name,omitempty"`

	// Topo is a topology catalogue name or a "clos:" spec
	// (netem.ParseTopoSpec grammar).
	Topo string `json:"topo"`

	// Scheme is the scheme catalogue ID, with optional -opt key=values.
	Scheme string            `json:"scheme"`
	Opts   map[string]string `json:"opts,omitempty"`

	// RTO overrides the scheme's retransmission timeout; 0 keeps the paper
	// default. Threshold is the selective-dropping threshold in bytes.
	RTO       sim.Duration `json:"rto_ps,omitempty"`
	Threshold int64        `json:"threshold_bytes,omitempty"`

	// Seed is the run seed (experiments.Config.Seed); SchemeSeed is the
	// per-spec seed (SchemeSpec.Seed). Workload and impairment randomness
	// derive from Seed ^ SchemeSeed, exactly as the flag-driven path.
	Seed       uint64 `json:"seed,omitempty"`
	SchemeSeed uint64 `json:"scheme_seed,omitempty"`

	// Workload drives the open-loop Poisson traffic; nil means incast-only.
	// SchemeWorkload, when set, parameterizes workload-derived scheme
	// defaults (Homa's unscheduled priority cutoffs) separately from the
	// traffic — the incast-only studies still want production cutoffs. Nil
	// means "same as Workload".
	Workload       *WorkloadSpec `json:"workload,omitempty"`
	SchemeWorkload *WorkloadSpec `json:"scheme_workload,omitempty"`

	// CoreLoad is the target core load of the Poisson workload; Flows pins
	// the flow count, or 0 derives it from Budget (bytes of offered
	// traffic) clamped to [MinFlows, MaxFlows].
	CoreLoad float64 `json:"core_load,omitempty"`
	Flows    int     `json:"flows,omitempty"`
	Budget   int64   `json:"budget_bytes,omitempty"`
	MinFlows int     `json:"min_flows,omitempty"`
	MaxFlows int     `json:"max_flows,omitempty"`

	// Incast adds a synchronized N-to-1 burst.
	Incast *IncastSpec `json:"incast,omitempty"`

	// Buffer is the per-port buffer in bytes; 0 keeps the 200 KB default.
	Buffer int64 `json:"buffer_bytes,omitempty"`

	// Deadline is the extra simulated time after the last arrival; 0 keeps
	// the 500 ms default.
	Deadline sim.Duration `json:"deadline_ps,omitempty"`

	// Scheduler pins the event-queue implementation ("wheel" or "heap");
	// empty defers to the runtime configuration. Results are identical
	// either way — the field exists so a recorded run replays under the
	// engine it ran on.
	Scheduler sim.SchedulerKind `json:"scheduler,omitempty"`

	// Impair embeds a scripted link-impairment timeline.
	Impair *netem.Timeline `json:"impair,omitempty"`
}

// WorkloadSpec names a flow-size distribution: a built-in by name, an
// external CDF file by path, or inline points (the self-contained form
// -dump-scenario emits). Name may accompany Points as the label of an inline
// distribution; File and Points are mutually exclusive.
type WorkloadSpec struct {
	Name   string       `json:"name,omitempty"`
	File   string       `json:"file,omitempty"`
	Points [][2]float64 `json:"points,omitempty"` // [bytes, cumulative probability]
}

// IncastSpec mirrors workload.IncastConfig minus the fields the harness
// derives at run time (host count, flow-ID base).
type IncastSpec struct {
	Fanin    int          `json:"fanin"`
	Receiver int          `json:"receiver,omitempty"`
	MsgSize  int64        `json:"msg_bytes"`
	Seed     uint64       `json:"seed,omitempty"`
	StartAt  sim.Duration `json:"start_ps,omitempty"` // offset from run start
	Jitter   sim.Duration `json:"jitter_ps,omitempty"`
}

// token reports whether s is safe to embed in both interchange forms:
// nonempty valid UTF-8 (JSON replaces invalid bytes with U+FFFD, which would
// break cross-form identity) with no whitespace of any kind (the text
// grammar splits on unicode.IsSpace) and no comment character. Both parsers
// funnel through Validate, so every field a renderer writes re-tokenizes.
func token(s string) bool {
	if s == "" || !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if unicode.IsSpace(r) || r == '#' {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks structure and normalizes the scenario to canonical form
// (empty maps and step lists become nil). It does not resolve names against
// the topology or scheme catalogues — see experiments.CheckScenario.
func (s *Scenario) Validate() error {
	if s.Name != "" && !token(s.Name) {
		return fmt.Errorf("scenario: name %q contains whitespace or '#'", s.Name)
	}
	if !token(s.Topo) {
		return fmt.Errorf("scenario: missing or malformed topo %q", s.Topo)
	}
	if !token(s.Scheme) {
		return fmt.Errorf("scenario: missing or malformed scheme %q", s.Scheme)
	}
	if len(s.Opts) == 0 {
		s.Opts = nil
	}
	for k, v := range s.Opts {
		if !token(k) || strings.Contains(k, "=") {
			return fmt.Errorf("scenario: malformed opt key %q", k)
		}
		if v != "" && !token(v) {
			return fmt.Errorf("scenario: opt %s has malformed value %q", k, v)
		}
	}
	if s.RTO < 0 {
		return fmt.Errorf("scenario: negative rto %d", s.RTO)
	}
	if s.Threshold < 0 {
		return fmt.Errorf("scenario: negative threshold %d", s.Threshold)
	}
	if err := s.Workload.validate("workload"); err != nil {
		return err
	}
	if err := s.SchemeWorkload.validate("scheme-workload"); err != nil {
		return err
	}
	if !finite(s.CoreLoad) || s.CoreLoad < 0 {
		return fmt.Errorf("scenario: core load %v must be a non-negative finite number", s.CoreLoad)
	}
	if s.Flows < 0 || s.Budget < 0 || s.MinFlows < 0 || s.MaxFlows < 0 {
		return fmt.Errorf("scenario: negative flow budget (flows=%d budget=%d min=%d max=%d)",
			s.Flows, s.Budget, s.MinFlows, s.MaxFlows)
	}
	if s.Workload == nil && s.Incast == nil {
		return fmt.Errorf("scenario: nothing to send — give a workload and/or an incast")
	}
	if s.Workload != nil && s.Flows == 0 && s.Budget == 0 {
		return fmt.Errorf("scenario: workload needs flows or budget to size the trace")
	}
	if ic := s.Incast; ic != nil {
		switch {
		case ic.Fanin <= 0:
			return fmt.Errorf("scenario: incast fanin %d must be positive", ic.Fanin)
		case ic.MsgSize <= 0:
			return fmt.Errorf("scenario: incast msg size %d must be positive", ic.MsgSize)
		case ic.Receiver < 0:
			return fmt.Errorf("scenario: negative incast receiver %d", ic.Receiver)
		case ic.StartAt < 0 || ic.Jitter < 0:
			return fmt.Errorf("scenario: negative incast start/jitter")
		}
	}
	if s.Buffer < 0 {
		return fmt.Errorf("scenario: negative buffer %d", s.Buffer)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("scenario: negative deadline %d", s.Deadline)
	}
	if s.Scheduler != "" {
		if _, err := sim.ParseScheduler(string(s.Scheduler)); err != nil {
			return fmt.Errorf("scenario: %v", err)
		}
	}
	if s.Impair != nil && len(s.Impair.Steps) == 0 {
		s.Impair = nil
	}
	return nil
}

// validate checks one workload reference; nil is valid (absent).
func (w *WorkloadSpec) validate(what string) error {
	if w == nil {
		return nil
	}
	switch {
	case w.File != "" && len(w.Points) > 0:
		return fmt.Errorf("scenario: %s gives both a file and inline points", what)
	case w.File != "" && w.Name != "":
		return fmt.Errorf("scenario: %s gives both a name and a file", what)
	case w.File != "":
		if !token(w.File) {
			return fmt.Errorf("scenario: %s file %q contains whitespace or '#'", what, w.File)
		}
		return nil
	case len(w.Points) > 0:
		if w.Name != "" && !token(w.Name) {
			return fmt.Errorf("scenario: %s name %q contains whitespace or '#'", what, w.Name)
		}
		for _, p := range w.Points {
			if !finite(p[0]) || !finite(p[1]) {
				return fmt.Errorf("scenario: %s has non-finite point (%v, %v)", what, p[0], p[1])
			}
		}
		_, err := w.cdf()
		if err != nil {
			return fmt.Errorf("scenario: %s: %v", what, err)
		}
		return nil
	case w.Name != "":
		if !token(w.Name) {
			return fmt.Errorf("scenario: %s name %q contains whitespace or '#'", what, w.Name)
		}
		return nil
	default:
		return fmt.Errorf("scenario: empty %s spec", what)
	}
}

// cdf builds the inline points into a validated CDF.
func (w *WorkloadSpec) cdf() (*workload.CDF, error) {
	pts := make([]workload.Point, len(w.Points))
	for i, p := range w.Points {
		pts[i] = workload.Point{Bytes: p[0], Prob: p[1]}
	}
	return workload.NewCDF(w.Name, pts)
}

// Resolve turns the reference into a usable distribution: built-ins resolve
// to the shared package-level CDFs (pointer-identical to the flag-driven
// path), files load from disk, inline points build in place.
func (w *WorkloadSpec) Resolve() (*workload.CDF, error) {
	switch {
	case w == nil:
		return nil, nil
	case len(w.Points) > 0:
		return w.cdf()
	case w.File != "":
		return workload.LoadCDF(w.File)
	default:
		c := workload.ByName(w.Name)
		if c == nil {
			return nil, fmt.Errorf("scenario: unknown built-in workload %q (use points or a file for custom distributions)", w.Name)
		}
		return c, nil
	}
}

// From captures an in-memory distribution as a serializable reference: a
// built-in by name (pointer-compared, so a file-loaded CDF that merely
// shares a built-in's name still inlines), anything else as inline points.
func From(c *workload.CDF) *WorkloadSpec {
	if c == nil {
		return nil
	}
	if workload.ByName(c.Name()) == c {
		return &WorkloadSpec{Name: c.Name()}
	}
	pts := c.Points()
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.Bytes, p.Prob}
	}
	return &WorkloadSpec{Name: c.Name(), Points: out}
}

// Inline replaces a file reference with its resolved points, making the
// scenario self-contained (what -dump-scenario emits). Named built-ins stay
// by name; inline and absent workloads are untouched.
func (s *Scenario) Inline() error {
	for _, w := range []**WorkloadSpec{&s.Workload, &s.SchemeWorkload} {
		if *w == nil || (*w).File == "" {
			continue
		}
		c, err := (*w).Resolve()
		if err != nil {
			return err
		}
		*w = From(c)
	}
	return nil
}

// JSON renders the canonical JSON form: two-space indentation, fields in
// struct order, zero-valued optionals omitted. Parse reads it back to an
// equal value.
func (s *Scenario) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// fmtFloat renders a float losslessly (shortest form that round-trips).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the canonical text form: fixed directive order, durations via
// ExactString, floats at full precision — lossless, so
// Parse(name, []byte(s.Text())) reproduces s exactly.
func (s *Scenario) Text() string {
	var b strings.Builder
	b.WriteString("# aeolus scenario\n")
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	if s.Name != "" {
		line("name %s", s.Name)
	}
	line("topo %s", s.Topo)
	line("scheme %s", s.Scheme)
	keys := make([]string, 0, len(s.Opts))
	for k := range s.Opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		line("opt %s=%s", k, s.Opts[k])
	}
	if s.RTO != 0 {
		line("rto %s", s.RTO.ExactString())
	}
	if s.Threshold != 0 {
		line("threshold %d", s.Threshold)
	}
	if s.Seed != 0 {
		line("seed %d", s.Seed)
	}
	if s.SchemeSeed != 0 {
		line("scheme-seed %d", s.SchemeSeed)
	}
	writeWorkload := func(directive string, w *WorkloadSpec) {
		if w == nil {
			return
		}
		switch {
		case w.File != "":
			line("%s file=%s", directive, w.File)
		case len(w.Points) > 0:
			line("%s inline=%s", directive, w.Name)
			for _, p := range w.Points {
				line("point %s %s", fmtFloat(p[0]), fmtFloat(p[1]))
			}
		default:
			line("%s name=%s", directive, w.Name)
		}
	}
	writeWorkload("workload", s.Workload)
	writeWorkload("scheme-workload", s.SchemeWorkload)
	if s.CoreLoad != 0 {
		line("load %s", fmtFloat(s.CoreLoad))
	}
	if s.Flows != 0 {
		line("flows %d", s.Flows)
	}
	if s.Budget != 0 {
		line("budget %d", s.Budget)
	}
	if s.MinFlows != 0 {
		line("min-flows %d", s.MinFlows)
	}
	if s.MaxFlows != 0 {
		line("max-flows %d", s.MaxFlows)
	}
	if ic := s.Incast; ic != nil {
		line("incast fanin=%d receiver=%d msg=%d seed=%d start=%s jitter=%s",
			ic.Fanin, ic.Receiver, ic.MsgSize, ic.Seed,
			ic.StartAt.ExactString(), ic.Jitter.ExactString())
	}
	if s.Buffer != 0 {
		line("buffer %d", s.Buffer)
	}
	if s.Deadline != 0 {
		line("deadline %s", s.Deadline.ExactString())
	}
	if s.Scheduler != "" {
		line("scheduler %s", s.Scheduler)
	}
	if s.Impair != nil {
		for _, st := range s.Impair.Steps {
			line("impair %s", st.Text())
		}
	}
	return b.String()
}

// Digest returns the scenario's content digest: hex SHA-256 over the
// version-prefixed canonical text. It is the canonical run-identity key —
// the golden ledger records it next to each behavior digest, and a result
// cache would key on (Digest, code version).
func (s *Scenario) Digest() string {
	h := sha256.New()
	h.Write([]byte(digestVersion))
	h.Write([]byte{'\n'})
	h.Write([]byte(s.Text()))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Parse reads either interchange form — JSON when the input starts with '{',
// the directive text otherwise — validates it, and returns the normalized
// scenario. name labels errors (a file name or "-scenario").
func Parse(name string, data []byte) (*Scenario, error) {
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		return parseJSON(name, trimmed)
	}
	return parseText(name, data)
}

// Load reads a scenario file in either form.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

func parseJSON(name string, data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if _, err := dec.Token(); err == nil {
		return nil, fmt.Errorf("%s: trailing data after scenario object", name)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return &s, nil
}

// parseWorkloadRef parses the single key=value argument of a workload
// directive: name=, file= or inline= (inline labels a following point list).
func parseWorkloadRef(arg string) (*WorkloadSpec, bool, error) {
	key, val, ok := strings.Cut(arg, "=")
	if !ok {
		return nil, false, fmt.Errorf("want name=, file= or inline=, got %q", arg)
	}
	switch key {
	case "name":
		return &WorkloadSpec{Name: val}, false, nil
	case "file":
		return &WorkloadSpec{File: val}, false, nil
	case "inline":
		return &WorkloadSpec{Name: val}, true, nil
	default:
		return nil, false, fmt.Errorf("want name=, file= or inline=, got %q", arg)
	}
}

func parseText(name string, data []byte) (*Scenario, error) {
	s := &Scenario{}
	seen := map[string]bool{}
	var pointsInto *WorkloadSpec // target of point lines (last inline workload)
	fail := func(lineno int, format string, args ...any) error {
		return fmt.Errorf("%s:%d: %s", name, lineno, fmt.Sprintf(format, args...))
	}
	for lineno, raw := range strings.Split(string(data), "\n") {
		lineno++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		directive, args := fields[0], fields[1:]
		// Repeatable directives (opt, point, impair) skip the once check.
		switch directive {
		case "opt", "point", "impair":
		default:
			if seen[directive] {
				return nil, fail(lineno, "duplicate %s directive", directive)
			}
			seen[directive] = true
		}
		one := func() (string, error) {
			if len(args) != 1 {
				return "", fail(lineno, "%s takes exactly one argument", directive)
			}
			return args[0], nil
		}
		oneInt := func() (int64, error) {
			a, err := one()
			if err != nil {
				return 0, err
			}
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return 0, fail(lineno, "%s: bad integer %q", directive, a)
			}
			return v, nil
		}
		oneUint := func() (uint64, error) {
			a, err := one()
			if err != nil {
				return 0, err
			}
			v, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				return 0, fail(lineno, "%s: bad unsigned integer %q", directive, a)
			}
			return v, nil
		}
		oneDur := func() (sim.Duration, error) {
			a, err := one()
			if err != nil {
				return 0, err
			}
			d, err := sim.ParseDuration(a)
			if err != nil {
				return 0, fail(lineno, "%s: %v", directive, err)
			}
			return d, nil
		}
		var err error
		switch directive {
		case "name":
			s.Name, err = one()
		case "topo":
			s.Topo, err = one()
		case "scheme":
			s.Scheme, err = one()
		case "opt":
			a, e := one()
			if e != nil {
				return nil, e
			}
			k, v, ok := strings.Cut(a, "=")
			if !ok || k == "" {
				return nil, fail(lineno, "opt wants key=value, got %q", a)
			}
			if s.Opts == nil {
				s.Opts = map[string]string{}
			}
			if _, dup := s.Opts[k]; dup {
				return nil, fail(lineno, "duplicate opt key %q", k)
			}
			s.Opts[k] = v
		case "rto":
			s.RTO, err = oneDur()
		case "threshold":
			s.Threshold, err = oneInt()
		case "seed":
			s.Seed, err = oneUint()
		case "scheme-seed":
			s.SchemeSeed, err = oneUint()
		case "workload", "scheme-workload":
			a, e := one()
			if e != nil {
				return nil, e
			}
			w, inline, e := parseWorkloadRef(a)
			if e != nil {
				return nil, fail(lineno, "%s: %v", directive, e)
			}
			if directive == "workload" {
				s.Workload = w
			} else {
				s.SchemeWorkload = w
			}
			pointsInto = nil
			if inline {
				pointsInto = w
			}
		case "point":
			if pointsInto == nil {
				return nil, fail(lineno, "point outside an inline workload block")
			}
			if len(args) != 2 {
				return nil, fail(lineno, "point wants \"<bytes> <prob>\"")
			}
			bv, e1 := strconv.ParseFloat(args[0], 64)
			pv, e2 := strconv.ParseFloat(args[1], 64)
			if e1 != nil || e2 != nil {
				return nil, fail(lineno, "point wants two numbers, got %q %q", args[0], args[1])
			}
			pointsInto.Points = append(pointsInto.Points, [2]float64{bv, pv})
		case "load":
			a, e := one()
			if e != nil {
				return nil, e
			}
			s.CoreLoad, err = strconv.ParseFloat(a, 64)
			if err != nil {
				return nil, fail(lineno, "load: bad number %q", a)
			}
		case "flows":
			var v int64
			v, err = oneInt()
			s.Flows = int(v)
		case "budget":
			s.Budget, err = oneInt()
		case "min-flows":
			var v int64
			v, err = oneInt()
			s.MinFlows = int(v)
		case "max-flows":
			var v int64
			v, err = oneInt()
			s.MaxFlows = int(v)
		case "incast":
			ic := &IncastSpec{}
			for _, kv := range args {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail(lineno, "incast parameter %q is not key=value", kv)
				}
				var e error
				switch k {
				case "fanin":
					ic.Fanin, e = strconv.Atoi(v)
				case "receiver":
					ic.Receiver, e = strconv.Atoi(v)
				case "msg":
					ic.MsgSize, e = strconv.ParseInt(v, 10, 64)
				case "seed":
					ic.Seed, e = strconv.ParseUint(v, 10, 64)
				case "start":
					ic.StartAt, e = sim.ParseDuration(v)
				case "jitter":
					ic.Jitter, e = sim.ParseDuration(v)
				default:
					return nil, fail(lineno, "unknown incast parameter %q", k)
				}
				if e != nil {
					return nil, fail(lineno, "incast %s: bad value %q", k, v)
				}
			}
			s.Incast = ic
		case "buffer":
			s.Buffer, err = oneInt()
		case "deadline":
			s.Deadline, err = oneDur()
		case "scheduler":
			a, e := one()
			if e != nil {
				return nil, e
			}
			s.Scheduler = sim.SchedulerKind(a)
		case "impair":
			tl, e := netem.ParseTimeline("impair", []byte(strings.Join(args, " ")))
			if e != nil {
				return nil, fail(lineno, "%v", e)
			}
			if len(tl.Steps) != 1 {
				return nil, fail(lineno, "impair wants exactly one timeline step per line")
			}
			if s.Impair == nil {
				s.Impair = &netem.Timeline{}
			}
			s.Impair.Steps = append(s.Impair.Steps, tl.Steps[0])
		default:
			return nil, fail(lineno, "unknown directive %q", directive)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return s, nil
}
