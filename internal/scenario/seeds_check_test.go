package scenario

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSeedCorpusParses pins that every hand-written fuzz seed (seed-*) is a
// valid scenario — those corpus entries document the grammar, so one that
// fails Parse is a stale example, not fuzz chaff. Fuzzer-minimized
// regression files (hex names) are exempt: they pin fixed bugs and are
// usually invalid inputs by construction.
func TestSeedCorpusParses(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzScenarioRoundTrip")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "seed-") {
			continue
		}
		checked++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(data), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", e.Name())
		}
		payload := strings.TrimSuffix(strings.TrimPrefix(lines[1], "string("), ")")
		in, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if _, err := Parse(e.Name(), []byte(in)); err != nil {
			t.Fatalf("seed %s does not parse: %v", e.Name(), err)
		}
	}
	if checked == 0 {
		t.Fatal("no seed-* corpus entries found")
	}
}
