package scenario

import (
	"reflect"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// full returns a scenario exercising every field.
func full(t *testing.T) *Scenario {
	t.Helper()
	tl, err := netem.ParseTimeline("test", []byte(
		"0s sw0->* loss rate=0.01\n50us sw0->h0 fail\n150us sw0->h0 restore"))
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{
		Name:   "kitchen-sink",
		Topo:   "clos:16x4,edge=40G,core=100G",
		Scheme: "xpass+aeolus",
		Opts:   map[string]string{"retrylimit": "4", "wmin": "0.03125"},
		RTO:    10 * sim.Millisecond,
		// Threshold in bytes.
		Threshold:  6144,
		Seed:       1,
		SchemeSeed: 3,
		Workload:   &WorkloadSpec{Name: "WebServer"},
		SchemeWorkload: &WorkloadSpec{Name: "custom", Points: [][2]float64{
			{100, 0}, {5e3, 0.5}, {1e6, 1},
		}},
		CoreLoad: 0.4,
		Budget:   24 << 20,
		MinFlows: 100,
		MaxFlows: 2000,
		Incast: &IncastSpec{
			Fanin: 5, Receiver: 0, MsgSize: 50_000, Seed: 3,
			StartAt: 10 * sim.Microsecond, Jitter: 2 * sim.Microsecond,
		},
		Buffer:    100 << 10,
		Deadline:  sim.Second,
		Scheduler: sim.SchedWheel,
		Impair:    tl,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTextRoundTrip(t *testing.T) {
	s := full(t)
	text := s.Text()
	got, err := Parse("rt", []byte(text))
	if err != nil {
		t.Fatalf("parse rendered text: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("text round trip diverged:\nwant %+v\ngot  %+v", s, got)
	}
	if got.Text() != text {
		t.Fatalf("re-render not identical:\n%q\nvs\n%q", text, got.Text())
	}
	if got.Digest() != s.Digest() {
		t.Fatal("digest changed across text round trip")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := full(t)
	buf, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse("rt.json", buf)
	if err != nil {
		t.Fatalf("parse rendered JSON: %v\n%s", err, buf)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("JSON round trip diverged:\nwant %+v\ngot  %+v", s, got)
	}
	buf2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf2) != string(buf) {
		t.Fatalf("re-render not identical:\n%s\nvs\n%s", buf, buf2)
	}
	if got.Digest() != s.Digest() {
		t.Fatal("digest changed across JSON round trip")
	}
}

func TestCrossFormDigest(t *testing.T) {
	s := full(t)
	buf, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse("x.json", buf)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := Parse("x.txt", []byte(s.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Digest() != fromText.Digest() {
		t.Fatal("JSON and text forms of the same scenario digest differently")
	}
}

func TestMinimalText(t *testing.T) {
	in := "topo micro\nscheme homa\nincast fanin=16 msg=64000\n"
	s, err := Parse("min", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo != "micro" || s.Scheme != "homa" {
		t.Fatalf("bad parse: %+v", s)
	}
	ic := s.Incast
	if ic == nil || ic.Fanin != 16 || ic.MsgSize != 64000 || ic.Receiver != 0 || ic.StartAt != 0 {
		t.Fatalf("bad incast: %+v", ic)
	}
	// Canonical render of the short form re-parses to the same value.
	again, err := Parse("min2", []byte(s.Text()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s.Text())
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("short-form round trip diverged: %+v vs %+v", s, again)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n  topo micro # trailing\n\tscheme ndp\nincast fanin=2 msg=1000\n"
	if _, err := Parse("c", []byte(in)); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown directive", "topo micro\nscheme homa\nflows 5\nbogus 1\nworkload name=WebServer\n", "unknown directive"},
		{"duplicate directive", "topo micro\ntopo micro\nscheme homa\nincast fanin=1 msg=1\n", "duplicate topo"},
		{"duplicate opt", "topo micro\nscheme homa\nopt a=1\nopt a=2\nincast fanin=1 msg=1\n", "duplicate opt"},
		{"orphan point", "topo micro\nscheme homa\npoint 1 0\nincast fanin=1 msg=1\n", "outside an inline workload"},
		{"no traffic", "topo micro\nscheme homa\n", "nothing to send"},
		{"workload without budget", "topo micro\nscheme homa\nworkload name=WebServer\n", "flows or budget"},
		{"bad incast key", "topo micro\nscheme homa\nincast fanin=1 msg=1 hosts=4\n", "unknown incast parameter"},
		{"negative rto", "topo micro\nscheme homa\nrto -5ms\nincast fanin=1 msg=1\n", "negative rto"},
		{"bad scheduler", "topo micro\nscheme homa\nscheduler quantum\nincast fanin=1 msg=1\n", "scheduler"},
		{"bad impair", "topo micro\nscheme homa\nimpair 0s sw0->* explode\nincast fanin=1 msg=1\n", "impair"},
		{"non-monotone points", "topo micro\nscheme homa\nflows 5\nworkload inline=w\npoint 100 0\npoint 50 1\n", "not monotone"},
		{"json unknown field", `{"topo":"micro","scheme":"homa","warp":9,"incast":{"fanin":1,"msg_bytes":1}}`, "unknown field"},
		{"json trailing", `{"topo":"micro","scheme":"homa","incast":{"fanin":1,"msg_bytes":1}} {}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name, []byte(tc.in))
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWorkloadResolveBuiltin(t *testing.T) {
	w := &WorkloadSpec{Name: "WebServer"}
	c, err := w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c != workload.WebServer {
		t.Fatal("built-in by name must resolve to the shared package-level CDF")
	}
	if _, err := (&WorkloadSpec{Name: "NoSuch"}).Resolve(); err == nil {
		t.Fatal("unknown built-in must error")
	}
}

func TestWorkloadFromRoundTrip(t *testing.T) {
	// Built-in: captured by name, resolves back to the same pointer.
	if w := From(workload.CacheFollower); w.Name != "CacheFollower" || len(w.Points) != 0 {
		t.Fatalf("built-in not captured by name: %+v", w)
	}
	// Custom: captured inline, resolves to an equal distribution.
	custom := workload.MustCDF("mine", []workload.Point{
		{Bytes: 100, Prob: 0}, {Bytes: 1e4, Prob: 0.9}, {Bytes: 1e6, Prob: 1}})
	w := From(custom)
	if len(w.Points) != 3 {
		t.Fatalf("custom not captured inline: %+v", w)
	}
	back, err := w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "mine" || back.Mean() != custom.Mean() {
		t.Fatal("inline round trip changed the distribution")
	}
	// A custom CDF that shadows a built-in name still inlines (pointer check).
	shadow := workload.MustCDF("WebServer", []workload.Point{{Bytes: 1, Prob: 0}, {Bytes: 2, Prob: 1}})
	if w := From(shadow); len(w.Points) != 2 {
		t.Fatalf("shadowing CDF must inline, got %+v", w)
	}
}

func TestDigestSensitivity(t *testing.T) {
	a := full(t)
	b := full(t)
	if a.Digest() != b.Digest() {
		t.Fatal("equal scenarios must digest equally")
	}
	b.Buffer++
	if a.Digest() == b.Digest() {
		t.Fatal("digest must change when a field changes")
	}
}

func TestValidateNormalizes(t *testing.T) {
	s := &Scenario{
		Topo: "micro", Scheme: "homa",
		Opts:   map[string]string{},
		Incast: &IncastSpec{Fanin: 1, MsgSize: 1},
		Impair: &netem.Timeline{},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Opts != nil || s.Impair != nil {
		t.Fatalf("empty opts/timeline must normalize to nil: %+v", s)
	}
}

// FuzzScenarioRoundTrip checks the canonical-form identity on both
// interchange forms: any input that parses must re-render to a string that
// parses to the same value, renders identically, and digests identically —
// across text and JSON.
func FuzzScenarioRoundTrip(f *testing.F) {
	s := &Scenario{
		Name: "seed", Topo: "micro", Scheme: "xpass+aeolus",
		Opts: map[string]string{"retrylimit": "4"},
		RTO:  10 * sim.Millisecond, Seed: 1, SchemeSeed: 3,
		Workload: &WorkloadSpec{Name: "WebServer"},
		CoreLoad: 0.4, Budget: 24 << 20, MinFlows: 100, MaxFlows: 2000,
		Incast:   &IncastSpec{Fanin: 5, MsgSize: 50_000, Seed: 3, StartAt: 10 * sim.Microsecond},
		Buffer:   100 << 10,
		Deadline: sim.Second,
	}
	if err := s.Validate(); err != nil {
		f.Fatal(err)
	}
	f.Add(s.Text())
	if buf, err := s.JSON(); err == nil {
		f.Add(string(buf))
	}
	f.Add("topo micro\nscheme homa\nincast fanin=16 msg=64000\n")
	f.Add("topo micro\nscheme ndp\nflows 7\nworkload inline=w\npoint 100 0\npoint 1e6 1\nimpair 0s sw0->* loss rate=0.01 nth=0 match=all\n")
	f.Add(`{"topo":"micro","scheme":"homa","incast":{"fanin":3,"msg_bytes":1000}}`)
	f.Fuzz(func(t *testing.T, in string) {
		s1, err := Parse("fuzz", []byte(in))
		if err != nil {
			return // invalid inputs are fine; only canonical identity matters
		}
		// Text form.
		text := s1.Text()
		s2, err := Parse("fuzz-text", []byte(text))
		if err != nil {
			t.Fatalf("canonical text does not re-parse: %v\n%s", err, text)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("text round trip diverged\nin: %q\nwant %+v\ngot  %+v", in, s1, s2)
		}
		if s2.Text() != text {
			t.Fatalf("text render unstable:\n%q\nvs\n%q", text, s2.Text())
		}
		// JSON form.
		buf, err := s1.JSON()
		if err != nil {
			t.Fatalf("canonical JSON render failed: %v", err)
		}
		s3, err := Parse("fuzz-json", buf)
		if err != nil {
			t.Fatalf("canonical JSON does not re-parse: %v\n%s", err, buf)
		}
		if !reflect.DeepEqual(s1, s3) {
			t.Fatalf("JSON round trip diverged\nwant %+v\ngot  %+v", s1, s3)
		}
		if s3.Digest() != s1.Digest() {
			t.Fatal("digest not stable across JSON round trip")
		}
	})
}
