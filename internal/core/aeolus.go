// Package core implements the Aeolus building block (§3 of the paper): the
// minimal pre-credit rate control (line-rate burst of one BDP of unscheduled
// packets, §3.1), the sender-side probe/selective-ACK loss detection and
// retransmission ordering (§3.3), and the oracle priority queue used to
// model the paper's "hypothetical" idealized baselines.
//
// The selective-dropping switch queue itself (§3.2/§4.1) lives in
// internal/netem as SelectiveDrop, since it is a property of the fabric;
// this package provides the factory that installs it everywhere.
//
// Aeolus is deliberately a layer, not a transport: ExpressPass, Homa and NDP
// each embed a PreCredit per flow and spend their own scheduled transmission
// opportunities (credits, grants, pulls) through PreCredit.NextRetx, which
// reproduces §3.3's "reuse the preserved proactive transport as a reliable
// means to recover dropped pre-credit packets".
package core

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

// Options configures the Aeolus layer of a transport.
type Options struct {
	// Enabled turns the pre-credit machinery on. When false, the host
	// transport behaves as its original paper describes.
	Enabled bool

	// ThresholdBytes is the selective dropping threshold installed at
	// switches. The paper's default is 6 KB (4 full frames), §5.1.
	ThresholdBytes int64

	// ProbeTimeout re-sends the probe if neither a probe ACK nor any
	// scheduled transmission opportunity arrived in time (§6, resilience
	// under heavy incast: "let the sender set a timer to retransmit ... the
	// probe packet if no credit is received in a given duration").
	// Zero disables the safety timer.
	ProbeTimeout sim.Duration

	// MaxProbeResends bounds safety-timer probe retransmissions.
	MaxProbeResends int
}

// DefaultThreshold is the paper's default selective dropping threshold:
// 6 KB ≈ 4 full-size packets.
const DefaultThreshold int64 = 6 << 10

// DefaultProbeTimeout is the default §6 probe safety timer: several base
// RTTs on every topology of this repo, so it never fires on a healthy path
// (the probe ACK cancels it within one RTT), yet it recovers a flow whose
// entire first RTT — burst, probe and all — was wiped out, the one situation
// no receiver-driven timer can see.
const DefaultProbeTimeout = 100 * sim.Microsecond

// DefaultOptions returns the paper's default Aeolus configuration.
func DefaultOptions() Options {
	return Options{
		Enabled:         true,
		ThresholdBytes:  DefaultThreshold,
		ProbeTimeout:    DefaultProbeTimeout,
		MaxProbeResends: 3,
	}
}

// RetxClass tells a transport why PreCredit chose a segment, mirroring the
// three §3.3 priority classes.
type RetxClass int

// Retransmission classes, in strictly decreasing priority.
const (
	ClassLost    RetxClass = iota // loss-detected unscheduled packets
	ClassUnsent                   // never-transmitted (scheduled) payload
	ClassUnacked                  // sent-but-unacknowledged unscheduled packets
	ClassNone                     // nothing left to transmit
)

// PreCredit is the sender-side Aeolus state machine for one flow. The host
// transport provides the raw packet senders; PreCredit decides what to send
// in the pre-credit phase and how each later scheduled opportunity is spent.
//
// One machine exists per live flow — at the h1024 sweep cells that is a
// hundred thousand of them resident at once — so the struct is packed for
// footprint: counters and scan pointers are int32 (segment counts cannot
// approach 2^31), the Options relevant to the sender are copied into three
// scalar fields instead of embedding the whole struct, and the flag bytes
// sit together at the tail so padding is paid once. The packing is purely
// representational; every method still computes in int.
type PreCredit struct {
	Env  *transport.Env
	Flow *transport.Flow
	Seg  transport.Segmenter

	// SendSeg transmits segment seg, marked scheduled or unscheduled.
	SendSeg func(seg int, scheduled bool)
	// SendProbe transmits the 64-byte probe carrying the sequence of the
	// last unscheduled byte (and the flow size, for Homa-style receivers).
	SendProbe func()

	probeTimeout sim.Duration // Options.ProbeTimeout; zero disables the §6 timer

	acked    transport.Bitset
	assigned transport.Bitset // spent a scheduled opportunity on this segment already

	lost []int32 // FIFO of loss-detected segments awaiting retransmission

	pacer sim.Timer // self-pacing of the pre-credit burst
	timer sim.Timer // probe safety timer (§6)

	burstLimit int32 // segments eligible for the pre-credit burst (≤ one BDP)
	burstSent  int32 // segments actually burst before the phase ended
	ackCount   int32
	nextNew    int32 // next never-sent segment
	unackedP   int32 // scan pointer for the ClassUnacked sweep

	resends    int32
	maxResends int32 // Options.MaxProbeResends

	enabled    bool // Options.Enabled
	stopped    bool
	probeSent  bool
	probeAcked bool

	// oppSeen records that at least one scheduled transmission opportunity
	// (credit, grant, pull, resend request) reached the sender. §6 resends
	// the probe only "if no credit is received in a given duration": once an
	// opportunity arrives, the receiver evidently knows about the flow and a
	// duplicate probe would be pure overhead.
	oppSeen bool

	// noUnackedSweep disables the ClassUnacked class. Original transports
	// without per-packet ACKs (vanilla Homa) assume burst delivery and
	// surface losses only through ForceLost.
	noUnackedSweep bool
}

// NewPreCredit builds the state machine for a flow. bdpBytes bounds the
// burst ("a flow sender ... sends a bandwidth-delay product worth of
// unscheduled packets at line-rate", §3.1).
func NewPreCredit(env *transport.Env, f *transport.Flow, opts Options, bdpBytes int64) *PreCredit {
	seg := transport.Segmenter{Size: f.Size, MSS: env.MSS}
	n := seg.NumSegs()
	burst := int(bdpBytes / int64(env.MSS))
	if burst < 1 {
		burst = 1
	}
	if burst > n {
		burst = n
	}
	pc := &PreCredit{
		Env: env, Flow: f, Seg: seg,
		probeTimeout: opts.ProbeTimeout,
		maxResends:   int32(opts.MaxProbeResends),
		enabled:      opts.Enabled,
		burstLimit:   int32(burst),
	}
	pc.acked, pc.assigned = transport.NewBitsetPair(n)
	pc.pacer.Init(env.Eng, pc.sendNext)
	pc.timer.Init(env.Eng, pc.onProbeTimeout)
	return pc
}

// BurstLimit returns the number of segments the pre-credit phase may send.
func (pc *PreCredit) BurstLimit() int { return int(pc.burstLimit) }

// BurstSent returns how many unscheduled segments were actually sent.
func (pc *PreCredit) BurstSent() int { return int(pc.burstSent) }

// ProbeSeq returns the byte sequence the probe should echo: the offset just
// past the last unscheduled byte (clamped to the flow size when the final
// burst segment is partial).
func (pc *PreCredit) ProbeSeq() int64 {
	off := pc.Seg.Offset(int(pc.burstSent))
	if off > pc.Flow.Size {
		off = pc.Flow.Size
	}
	return off
}

// Start begins the pre-credit line-rate burst: segments are self-paced at
// the edge rate so the phase can stop instantly when the first credit
// arrives (§3.1: "once the credit returns, it will exit the pre-credit state
// immediately even it has not yet sent out all unscheduled packets").
func (pc *PreCredit) Start() {
	if !pc.enabled {
		// Original transports without a pre-credit phase skip the burst;
		// everything is "unsent" and flows entirely through credits.
		pc.stopped = true
		return
	}
	pc.sendNext()
}

func (pc *PreCredit) sendNext() {
	if pc.stopped {
		return
	}
	if pc.burstSent >= pc.burstLimit {
		pc.finishBurst()
		return
	}
	seg := int(pc.burstSent)
	pc.burstSent++
	pc.nextNew = pc.burstSent
	pc.SendSeg(seg, false)
	gap := sim.TxTime(netem.WireSizeFor(pc.Seg.SegLen(seg)), pc.Env.Net.HostRate)
	pc.pacer.Reset(gap)
}

func (pc *PreCredit) finishBurst() {
	pc.stopped = true
	if pc.probeSent {
		return
	}
	pc.probeSent = true
	pc.SendProbe()
	pc.armTimer()
}

func (pc *PreCredit) armTimer() {
	if pc.probeTimeout <= 0 {
		return
	}
	pc.timer.Reset(pc.probeTimeout)
}

func (pc *PreCredit) onProbeTimeout() {
	if pc.probeAcked || pc.oppSeen || pc.Done() || pc.resends >= pc.maxResends {
		return
	}
	pc.resends++
	pc.SendProbe()
	pc.armTimer()
}

// StopBurst ends the pre-credit phase (first credit/grant/pull arrived). The
// probe is still sent so outstanding unscheduled losses can be located.
func (pc *PreCredit) StopBurst() {
	pc.oppSeen = true
	if pc.stopped {
		return
	}
	pc.pacer.Stop()
	pc.finishBurst()
}

// OnAck processes a per-packet selective ACK for the segment at the given
// byte offset.
func (pc *PreCredit) OnAck(off int64) {
	i := pc.Seg.SegOf(off)
	if i < 0 || i >= pc.acked.Len() || pc.acked.Get(i) {
		return
	}
	pc.acked.Set(i)
	pc.ackCount++
}

// OnProbeAck processes the probe's ACK: every burst segment that is neither
// acknowledged nor already assigned a retransmission is now known lost
// (§3.3: "once the sender receives such a probe ACK, it can immediately
// infer all the losses of unscheduled packets, including the last one").
// It returns the number of newly detected losses.
func (pc *PreCredit) OnProbeAck() int {
	pc.probeAcked = true
	pc.timer.Stop()
	n := 0
	for i := 0; i < int(pc.burstSent); i++ {
		if !pc.acked.Get(i) && !pc.assigned.Get(i) {
			pc.lost = append(pc.lost, int32(i))
			pc.assigned.Set(i)
			n++
		}
	}
	return n
}

// ForceLost queues a segment for highest-priority retransmission regardless
// of its assignment state. Transports use it for receiver-driven resend
// requests (RTO recovery of scheduled drops), which override the one-shot
// assignment bookkeeping.
func (pc *PreCredit) ForceLost(seg int) {
	if seg < 0 || seg >= pc.acked.Len() || pc.acked.Get(seg) {
		return
	}
	pc.lost = append(pc.lost, int32(seg))
	pc.assigned.Set(seg)
}

// DisableUnackedSweep turns off the ClassUnacked sweep; see noUnackedSweep.
func (pc *PreCredit) DisableUnackedSweep() { pc.noUnackedSweep = true }

// NextLost pops only loss-detected segments, for transports that retransmit
// resend-requested packets immediately rather than through the next
// scheduled opportunity (Homa's RTO path). ok is false when none remain.
func (pc *PreCredit) NextLost() (seg int, ok bool) {
	pc.oppSeen = true
	for len(pc.lost) > 0 {
		s := int(pc.lost[0])
		pc.lost = pc.lost[1:]
		if pc.acked.Get(s) {
			continue
		}
		return s, true
	}
	return -1, false
}

// RequeueUnacked rebuilds the loss queue from every transmitted-but-
// unacknowledged segment across the whole flow, burst and scheduled region
// alike. It is the timeout-recovery path for transports with per-packet
// ACKs on all data (NDP): a scheduled packet lost to an extreme buffer
// overflow leaves no other trace. It returns the number of queued segments.
func (pc *PreCredit) RequeueUnacked() int {
	pc.lost = pc.lost[:0]
	n := 0
	for i := 0; i < pc.Seg.NumSegs(); i++ {
		sent := i < int(pc.burstSent) || pc.assigned.Get(i)
		if sent && !pc.acked.Get(i) {
			pc.lost = append(pc.lost, int32(i))
			pc.assigned.Set(i)
			n++
		}
	}
	return n
}

// Next chooses the segment the transport's next scheduled transmission
// opportunity should be spent on, in the §3.3 priority order:
// loss-detected unscheduled, then unsent payload, then sent-but-unacked
// unscheduled. It marks the segment assigned and returns its class.
func (pc *PreCredit) Next() (seg int, class RetxClass) {
	pc.oppSeen = true
	// Class 1: loss-detected unscheduled packets ("we want to fill the gap
	// as soon as possible to minimize the re-sequence buffer").
	for len(pc.lost) > 0 {
		s := int(pc.lost[0])
		pc.lost = pc.lost[1:]
		if pc.acked.Get(s) {
			continue // ACK raced ahead of the loss verdict
		}
		return s, ClassLost
	}
	// Class 2: unsent payload ("to avoid redundant retransmissions").
	for int(pc.nextNew) < pc.Seg.NumSegs() {
		s := int(pc.nextNew)
		pc.nextNew++
		if pc.assigned.Get(s) || pc.acked.Get(s) {
			continue
		}
		pc.assigned.Set(s)
		return s, ClassUnsent
	}
	// Class 3: sent-but-unacknowledged unscheduled packets. While a probe
	// verdict is pending, blind class-3 retransmissions would both
	// duplicate in-flight packets and burn opportunities the upcoming loss
	// report needs, so the sweep waits for the probe ACK.
	if pc.noUnackedSweep || (pc.probeSent && !pc.probeAcked) {
		return -1, ClassNone
	}
	for pc.unackedP < pc.burstSent {
		s := int(pc.unackedP)
		pc.unackedP++
		if pc.acked.Get(s) || pc.assigned.Get(s) {
			continue
		}
		pc.assigned.Set(s)
		return s, ClassUnacked
	}
	return -1, ClassNone
}

// Done reports whether every segment is either acknowledged or assigned and
// nothing remains to transmit — i.e. a scheduled opportunity would be wasted.
// Stale loss-queue entries (segments whose ACK raced ahead of the loss
// verdict) are skipped exactly as Next skips them: a flow with nothing left
// but stale entries is done, and reporting otherwise makes transports keep
// spending credits and grants on it.
func (pc *PreCredit) Done() bool {
	for _, s := range pc.lost {
		if !pc.acked.Get(int(s)) {
			return false
		}
	}
	for i := int(pc.nextNew); i < pc.Seg.NumSegs(); i++ {
		if !pc.acked.Get(i) && !pc.assigned.Get(i) {
			return false
		}
	}
	if pc.noUnackedSweep {
		return true
	}
	for i := int(pc.unackedP); i < int(pc.burstSent); i++ {
		if !pc.acked.Get(i) && !pc.assigned.Get(i) {
			return false
		}
	}
	return true
}

// AllAcked reports whether every segment of the flow has been acknowledged —
// strictly stronger than Done, which also holds while sent-but-unacked
// segments are still in flight (or lost). Transports with per-packet ACKs
// (NDP) use it as the self-disarm test for their retransmission timer: with
// every byte acknowledged nothing can remain to recover, so the timer is
// provably useless and may stop itself. The scan is linear but runs only on
// actual timer expiry, never on the data path.
func (pc *PreCredit) AllAcked() bool {
	return pc.acked.NextZero(0) == pc.acked.Len()
}

// Stopped reports whether the pre-credit phase has ended.
func (pc *PreCredit) Stopped() bool { return pc.stopped }

// Audit verifies the state machine's internal consistency and returns the
// first violation found, or nil. Entries in the loss queue whose segment has
// since been acknowledged are legal transients (the ACK raced the probe
// verdict, or a receiver resend request repeated a segment); everything else
// is bounded: an un-acked loss entry must be a real, assigned segment, the
// counters must agree with the bitmaps, and the burst/scan pointers must stay
// within the segment space.
func (pc *PreCredit) Audit() error {
	n := pc.Seg.NumSegs()
	if pc.acked.Len() != n || pc.assigned.Len() != n {
		return fmt.Errorf("precredit flow %d: bitmap sizes acked=%d assigned=%d, want %d",
			pc.Flow.ID, pc.acked.Len(), pc.assigned.Len(), n)
	}
	if acks := pc.acked.Count(); acks != int(pc.ackCount) {
		return fmt.Errorf("precredit flow %d: ackCount %d but %d segments acked",
			pc.Flow.ID, pc.ackCount, acks)
	}
	if pc.burstLimit < 1 || int(pc.burstLimit) > n {
		return fmt.Errorf("precredit flow %d: burstLimit %d outside [1, %d]",
			pc.Flow.ID, pc.burstLimit, n)
	}
	if pc.burstSent < 0 || pc.burstSent > pc.burstLimit {
		return fmt.Errorf("precredit flow %d: burstSent %d outside [0, burstLimit %d]",
			pc.Flow.ID, pc.burstSent, pc.burstLimit)
	}
	if pc.nextNew < pc.burstSent || int(pc.nextNew) > n {
		return fmt.Errorf("precredit flow %d: nextNew %d outside [burstSent %d, %d]",
			pc.Flow.ID, pc.nextNew, pc.burstSent, n)
	}
	if pc.unackedP < 0 || pc.unackedP > pc.burstSent {
		return fmt.Errorf("precredit flow %d: unackedP %d outside [0, burstSent %d]",
			pc.Flow.ID, pc.unackedP, pc.burstSent)
	}
	for _, s := range pc.lost {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("precredit flow %d: lost queue holds segment %d outside [0, %d)",
				pc.Flow.ID, s, n)
		}
		if !pc.acked.Get(int(s)) && !pc.assigned.Get(int(s)) {
			return fmt.Errorf("precredit flow %d: lost segment %d neither acked nor assigned",
				pc.Flow.ID, s)
		}
	}
	if pc.probeAcked && !pc.probeSent {
		return fmt.Errorf("precredit flow %d: probe acked before being sent", pc.Flow.ID)
	}
	if pc.probeTimeout > 0 && pc.resends > pc.maxResends {
		return fmt.Errorf("precredit flow %d: %d probe resends exceed limit %d",
			pc.Flow.ID, pc.resends, pc.maxResends)
	}
	return nil
}

// MakeProbe builds the Aeolus probe packet for this flow: minimum Ethernet
// size, scheduled (protected), carrying the end-of-burst sequence and the
// flow size (so a Homa-style receiver learns the demand even if every
// unscheduled packet was dropped, §4.2).
func (pc *PreCredit) MakeProbe() *netem.Packet {
	p := pc.Env.Pkt()
	p.Type = netem.Probe
	p.Flow = pc.Flow.ID
	p.Src = pc.Flow.Src
	p.Dst = pc.Flow.Dst
	p.Seq = pc.ProbeSeq()
	p.WireSize = netem.ProbeSize
	p.Scheduled = true
	p.PathID = pc.Flow.PathID
	p.Meta = pc.Flow.Size
	return p
}
