package core

import (
	"fmt"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// OraclePrio is the queueing discipline of the paper's *hypothetical*
// baselines (Figs. 1, 3, 4 and Table 1): scheduled packets proceed "as if no
// unscheduled packets are present" and unscheduled packets consume exactly
// the leftover bandwidth, with hindsight — no losses, no interference. It is
// a two-band strict priority queue keyed on the Scheduled flag with an
// unbounded buffer. It is an experimental apparatus, not a deployable
// design (that is what selective dropping is for).
type OraclePrio struct {
	netem.DropCounter

	// LimitBytes, when positive, bounds the two bands with a *shared*
	// buffer (tail-dropped regardless of band). This turns the oracle into
	// the realizable two-priority-queue alternative of §5.5 — the design
	// Aeolus argues against: unscheduled packets in the low band can fill
	// the shared buffer and starve scheduled arrivals (Table 5), and
	// trapped-vs-lost ambiguity forces an RTO choice (Table 4).
	LimitBytes int64

	sched, unsched fifoLite
}

// NewOraclePrio returns the unbounded oracle queue (hypothetical baselines).
func NewOraclePrio() *OraclePrio { return &OraclePrio{} }

// NewBoundedPrio returns the shared-buffer two-priority queue of §5.5.
func NewBoundedPrio(limitBytes int64) *OraclePrio {
	return &OraclePrio{LimitBytes: limitBytes}
}

// Enqueue implements netem.Qdisc.
func (q *OraclePrio) Enqueue(p *netem.Packet, _ sim.Time) bool {
	if q.LimitBytes > 0 &&
		q.sched.bytes+q.unsched.bytes+int64(p.WireSize) > q.LimitBytes {
		q.Drop(p, netem.DropTailFull)
		return false
	}
	if p.Scheduled || p.Type.IsControl() {
		q.sched.push(p)
	} else {
		q.unsched.push(p)
	}
	return true
}

// Dequeue implements netem.Qdisc: scheduled strictly first.
func (q *OraclePrio) Dequeue(_ sim.Time) *netem.Packet {
	if p := q.sched.pop(); p != nil {
		return p
	}
	return q.unsched.pop()
}

// NextWake implements netem.Qdisc.
func (q *OraclePrio) NextWake(_ sim.Time) sim.Time { return sim.MaxTime }

// Backlog implements netem.Qdisc.
func (q *OraclePrio) Backlog() netem.Backlog {
	return netem.Backlog{
		Packets: q.sched.n + q.unsched.n,
		Bytes:   q.sched.bytes + q.unsched.bytes,
	}
}

// AuditBacklog implements netem.BacklogAuditor: both bands' cached counters
// must match their contents.
func (q *OraclePrio) AuditBacklog() error {
	if err := q.sched.audit("oracle sched band"); err != nil {
		return err
	}
	return q.unsched.audit("oracle unsched band")
}

// fifoLite is a minimal packet FIFO (netem's fifo is unexported).
type fifoLite struct {
	pkts  []*netem.Packet
	head  int
	n     int
	bytes int64
}

func (f *fifoLite) push(p *netem.Packet) {
	f.pkts = append(f.pkts, p)
	f.n++
	f.bytes += int64(p.WireSize)
}

func (f *fifoLite) pop() *netem.Packet {
	if f.head == len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.n--
	f.bytes -= int64(p.WireSize)
	if f.head == len(f.pkts) {
		f.pkts, f.head = f.pkts[:0], 0
	}
	return p
}

// audit recomputes the band's packet and byte counts from its contents and
// compares them against the cached counters.
func (f *fifoLite) audit(name string) error {
	if f.head < 0 || f.head > len(f.pkts) {
		return fmt.Errorf("%s: head %d outside [0, %d]", name, f.head, len(f.pkts))
	}
	var bytes int64
	for i := f.head; i < len(f.pkts); i++ {
		if f.pkts[i] == nil {
			return fmt.Errorf("%s: nil packet at live position %d", name, i)
		}
		bytes += int64(f.pkts[i].WireSize)
	}
	if live := len(f.pkts) - f.head; live != f.n {
		return fmt.Errorf("%s: cached %d packets, contents hold %d", name, f.n, live)
	}
	if bytes != f.bytes {
		return fmt.Errorf("%s: cached %d bytes, contents sum to %d", name, f.bytes, bytes)
	}
	return nil
}

// SelectiveFactory returns a QdiscFactory installing Aeolus selective
// dropping at every switch port (threshold per §3.2) and an unbounded
// scheduled-first priority queue at host NICs, so a sender's own scheduled
// packets are never stuck behind its pre-credit bursts.
func SelectiveFactory(thresholdBytes, bufferBytes int64) netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		if kind == netem.HostNIC {
			return NewOraclePrio() // scheduled-first, unbounded host queue
		}
		return netem.NewSelectiveDrop(thresholdBytes, bufferBytes)
	}
}

// OracleFactory returns a QdiscFactory installing the hypothetical oracle
// queue everywhere.
func OracleFactory() netem.QdiscFactory {
	return func(kind netem.PortKind, rate sim.Rate) netem.Qdisc {
		return NewOraclePrio()
	}
}
