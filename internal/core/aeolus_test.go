package core

import (
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/transport"
)

func testEnv(t *testing.T) *transport.Env {
	t.Helper()
	eng := sim.NewEngine()
	net := netem.BuildSingleSwitch(eng, 2, netem.TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
	return transport.NewEnv(net, netem.MaxPayload)
}

type sentRec struct {
	seg       int
	scheduled bool
}

func harness(t *testing.T, size int64, opts Options) (*transport.Env, *PreCredit, *[]sentRec, *int) {
	env := testEnv(t)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	var sent []sentRec
	probes := 0
	pc := NewPreCredit(env, f, opts, env.Net.BDPBytes())
	pc.SendSeg = func(seg int, sched bool) { sent = append(sent, sentRec{seg, sched}) }
	pc.SendProbe = func() { probes++ }
	return env, pc, &sent, &probes
}

func TestPreCreditBurstsBDPAtLineRate(t *testing.T) {
	env, pc, sent, probes := harness(t, 1<<20, DefaultOptions())
	bdpSegs := int(env.Net.BDPBytes()) / env.MSS
	if pc.BurstLimit() != bdpSegs {
		t.Fatalf("BurstLimit = %d, want %d", pc.BurstLimit(), bdpSegs)
	}
	pc.Start()
	env.Eng.Run()
	if len(*sent) != bdpSegs {
		t.Fatalf("burst %d segments, want %d", len(*sent), bdpSegs)
	}
	for i, s := range *sent {
		if s.seg != i || s.scheduled {
			t.Fatalf("burst packet %d = %+v, want unscheduled seg %d", i, s, i)
		}
	}
	// One probe ends the burst; nothing ever answers in this harness, so the
	// default-on §6 safety timer then resends to its cap.
	if want := 1 + DefaultOptions().MaxProbeResends; *probes != want {
		t.Fatalf("probes = %d, want %d (end of burst + safety resends)", *probes, want)
	}
	// The burst is paced at line rate: the last send happens one tx-gap per
	// segment after the start.
	wantSpan := sim.Duration(bdpSegs-1) * sim.TxTime(1538, env.Net.HostRate)
	if got := sim.Duration(env.Eng.Now()); got < wantSpan {
		t.Fatalf("burst finished too fast: %v < %v", got, wantSpan)
	}
}

func TestPreCreditSmallFlowBurstsEverything(t *testing.T) {
	_, pc, sent, probes := harness(t, 3000, DefaultOptions())
	pc.Start()
	pc.Env.Eng.Run()
	if len(*sent) != 3 { // 1460+1460+80
		t.Fatalf("sent %d segments, want 3", len(*sent))
	}
	if want := 1 + DefaultOptions().MaxProbeResends; *probes != want {
		t.Fatalf("probes = %d, want %d (end of burst + safety resends)", *probes, want)
	}
	// ProbeSeq is clamped to the flow size (the last segment is partial).
	if pc.ProbeSeq() != 3000 {
		t.Fatalf("ProbeSeq = %d, want 3000", pc.ProbeSeq())
	}
}

func TestPreCreditStopBurst(t *testing.T) {
	env, pc, sent, probes := harness(t, 1<<20, DefaultOptions())
	pc.Start()
	// Stop after ~3 segment times.
	env.Eng.At(sim.Time(3*sim.TxTime(1538, env.Net.HostRate))+1, pc.StopBurst)
	env.Eng.Run()
	if len(*sent) >= pc.BurstLimit() {
		t.Fatalf("burst did not stop: sent %d of limit %d", len(*sent), pc.BurstLimit())
	}
	if !pc.Stopped() {
		t.Fatal("not stopped")
	}
	if *probes != 1 {
		t.Fatalf("probes = %d, want 1 (probe still sent after early stop)", *probes)
	}
	if pc.ProbeSeq() != pc.Seg.Offset(pc.BurstSent()) {
		t.Fatal("probe seq mismatch after early stop")
	}
}

func TestPreCreditDisabledSkipsBurst(t *testing.T) {
	_, pc, sent, probes := harness(t, 1<<20, Options{Enabled: false})
	pc.Start()
	pc.Env.Eng.Run()
	if len(*sent) != 0 || *probes != 0 {
		t.Fatalf("disabled pre-credit sent %d segs, %d probes", len(*sent), *probes)
	}
	// All payload must flow through ClassUnsent.
	seg, class := pc.Next()
	if seg != 0 || class != ClassUnsent {
		t.Fatalf("first Next = (%d, %v), want (0, ClassUnsent)", seg, class)
	}
}

func TestPreCreditLossDetectionAndOrdering(t *testing.T) {
	env, pc, _, _ := harness(t, 20*1460, DefaultOptions())
	// Force a small burst window: use bdp for 4 segments.
	pc = NewPreCredit(env, pc.Flow, DefaultOptions(), 4*1460)
	var sent []sentRec
	pc.SendSeg = func(seg int, sched bool) { sent = append(sent, sentRec{seg, sched}) }
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()
	if len(sent) != 4 {
		t.Fatalf("burst = %d, want 4", len(sent))
	}

	// Segments 0 and 2 ACKed, 1 and 3 lost.
	pc.OnAck(pc.Seg.Offset(0))
	pc.OnAck(pc.Seg.Offset(2))
	if n := pc.OnProbeAck(); n != 2 {
		t.Fatalf("detected %d losses, want 2", n)
	}

	// §3.3 order: lost (1, 3) first, then unsent (4, 5, ...).
	wantOrder := []struct {
		seg   int
		class RetxClass
	}{{1, ClassLost}, {3, ClassLost}, {4, ClassUnsent}, {5, ClassUnsent}}
	for _, w := range wantOrder {
		seg, class := pc.Next()
		if seg != w.seg || class != w.class {
			t.Fatalf("Next = (%d, %v), want (%d, %v)", seg, class, w.seg, w.class)
		}
	}
}

func TestPreCreditHoldsClass3WhileProbePending(t *testing.T) {
	env, _, _, _ := harness(t, 4*1460, DefaultOptions())
	f := &transport.Flow{ID: 2, Src: 0, Dst: 1, Size: 4 * 1460}
	pc := NewPreCredit(env, f, DefaultOptions(), 4*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()

	// Probe sent but not yet acknowledged; seg 1 ACKed. A scheduled
	// opportunity must NOT be spent on blind class-3 duplicates while the
	// probe verdict is pending.
	pc.OnAck(pc.Seg.Offset(1))
	if seg, class := pc.Next(); class != ClassNone {
		t.Fatalf("Next = (%d, %v) while probe pending, want ClassNone", seg, class)
	}
	if pc.Done() {
		t.Fatal("Done() = true with unacked burst segments outstanding")
	}
	// The probe ACK converts the unacked remainder into loss verdicts.
	if n := pc.OnProbeAck(); n != 3 {
		t.Fatalf("losses = %d, want 3", n)
	}
	want := []int{0, 2, 3}
	for _, w := range want {
		seg, class := pc.Next()
		if seg != w || class != ClassLost {
			t.Fatalf("Next = (%d, %v), want (%d, ClassLost)", seg, class, w)
		}
	}
	if seg, class := pc.Next(); class != ClassNone {
		t.Fatalf("Next = (%d, %v), want ClassNone", seg, class)
	}
	if !pc.Done() {
		t.Fatal("Done() = false with everything assigned")
	}
}

func TestPreCreditAckRacesLossVerdict(t *testing.T) {
	env, _, _, _ := harness(t, 2*1460, DefaultOptions())
	f := &transport.Flow{ID: 3, Src: 0, Dst: 1, Size: 2 * 1460}
	pc := NewPreCredit(env, f, DefaultOptions(), 4*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()
	pc.OnProbeAck() // both segments flagged lost
	pc.OnAck(pc.Seg.Offset(0))
	// Segment 0's ACK raced in: Next must skip it.
	seg, class := pc.Next()
	if seg != 1 || class != ClassLost {
		t.Fatalf("Next = (%d, %v), want (1, ClassLost)", seg, class)
	}
}

func TestPreCreditNoDoubleRetransmission(t *testing.T) {
	env, _, _, _ := harness(t, 3*1460, DefaultOptions())
	f := &transport.Flow{ID: 4, Src: 0, Dst: 1, Size: 3 * 1460}
	pc := NewPreCredit(env, f, DefaultOptions(), 3*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()

	// A receiver-driven resend force-queues seg 0 ahead of the probe ACK.
	pc.ForceLost(0)
	if seg, class := pc.Next(); seg != 0 || class != ClassLost {
		t.Fatalf("Next = (%d, %v), want (0, ClassLost)", seg, class)
	}
	// The probe ACK then reports nothing ACKed: 1, 2 newly lost, 0 already
	// assigned and must not be queued again.
	if n := pc.OnProbeAck(); n != 2 {
		t.Fatalf("new losses = %d, want 2 (seg 0 already assigned)", n)
	}
	got := map[int]bool{}
	for {
		seg, class := pc.Next()
		if class == ClassNone {
			break
		}
		if got[seg] {
			t.Fatalf("segment %d retransmitted twice", seg)
		}
		got[seg] = true
	}
}

func TestPreCreditProbeSafetyTimer(t *testing.T) {
	env, _, _, _ := harness(t, 1460, Options{})
	f := &transport.Flow{ID: 5, Src: 0, Dst: 1, Size: 1460}
	opts := Options{Enabled: true, ThresholdBytes: DefaultThreshold,
		ProbeTimeout: 10 * sim.Microsecond, MaxProbeResends: 2}
	pc := NewPreCredit(env, f, opts, 4*1460)
	probes := 0
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() { probes++ }
	pc.Start()
	env.Eng.Run()
	// Initial probe + 2 resends (no ACK ever arrives).
	if probes != 3 {
		t.Fatalf("probes = %d, want 3", probes)
	}
}

func TestPreCreditProbeTimerCanceledByAck(t *testing.T) {
	env, _, _, _ := harness(t, 1460, Options{})
	f := &transport.Flow{ID: 6, Src: 0, Dst: 1, Size: 1460}
	opts := Options{Enabled: true, ProbeTimeout: 10 * sim.Microsecond, MaxProbeResends: 5}
	pc := NewPreCredit(env, f, opts, 4*1460)
	probes := 0
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() { probes++ }
	pc.Start()
	env.Eng.After(2*sim.Microsecond, func() {
		pc.OnAck(0)
		pc.OnProbeAck()
	})
	env.Eng.Run()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (timer canceled by probe ACK)", probes)
	}
}

func TestMakeProbe(t *testing.T) {
	env, _, _, _ := harness(t, 5000, Options{})
	f := &transport.Flow{ID: 7, Src: 0, Dst: 1, Size: 5000, PathID: 99}
	pc := NewPreCredit(env, f, DefaultOptions(), 2*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()
	p := pc.MakeProbe()
	if p.Type != netem.Probe || !p.Scheduled || p.WireSize != netem.ProbeSize {
		t.Fatalf("bad probe %v", p)
	}
	if p.Meta != 5000 {
		t.Fatalf("probe Meta = %d, want flow size 5000", p.Meta)
	}
	if p.Seq != pc.ProbeSeq() || p.PathID != 99 {
		t.Fatalf("probe fields wrong: %v", p)
	}
}

func TestOraclePrioSchedFirstNeverDrops(t *testing.T) {
	q := NewOraclePrio()
	for i := 0; i < 1000; i++ {
		ok := q.Enqueue(&netem.Packet{Type: netem.Data, Flow: uint64(i), WireSize: 1538}, 0)
		if !ok {
			t.Fatal("oracle queue dropped")
		}
	}
	s := &netem.Packet{Type: netem.Data, Flow: 9999, WireSize: 1538, Scheduled: true}
	q.Enqueue(s, 0)
	if got := q.Dequeue(0); got != s {
		t.Fatalf("scheduled packet not served first: %v", got)
	}
	if q.Backlog().Packets != 1000 {
		t.Fatalf("backlog = %d", q.Backlog().Packets)
	}
	if q.NextWake(0) != sim.MaxTime {
		t.Fatal("NextWake should be MaxTime")
	}
}

func TestFactories(t *testing.T) {
	sf := SelectiveFactory(DefaultThreshold, netem.DefaultBuffer)
	if _, ok := sf(netem.HostNIC, 10*sim.Gbps).(*OraclePrio); !ok {
		t.Fatal("NIC qdisc should be scheduled-first priority")
	}
	if _, ok := sf(netem.SwitchToHost, 10*sim.Gbps).(*netem.SelectiveDrop); !ok {
		t.Fatal("switch qdisc should be SelectiveDrop")
	}
	of := OracleFactory()
	if _, ok := of(netem.SwitchToSwitch, 10*sim.Gbps).(*OraclePrio); !ok {
		t.Fatal("oracle factory mismatch")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if !o.Enabled || o.ThresholdBytes != 6<<10 {
		t.Fatalf("DefaultOptions = %+v", o)
	}
}

// TestPreCreditDoneSkipsStaleLostEntries is the regression for Done()
// reporting false forever when the loss queue held only entries whose
// segment had since been acknowledged: Next() skips those, so a transport
// polling Done() before spending an opportunity would burn credits on a
// finished flow indefinitely.
func TestPreCreditDoneSkipsStaleLostEntries(t *testing.T) {
	env, _, _, _ := harness(t, 2*1460, DefaultOptions())
	f := &transport.Flow{ID: 8, Src: 0, Dst: 1, Size: 2 * 1460}
	pc := NewPreCredit(env, f, DefaultOptions(), 4*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	pc.Start()
	env.Eng.Run()

	// The probe verdict flags both segments lost, then both ACKs race in:
	// the loss queue still holds two entries, but both are stale.
	pc.OnProbeAck()
	pc.OnAck(pc.Seg.Offset(0))
	pc.OnAck(pc.Seg.Offset(1))
	// Transports poll Done() before spending a credit on the flow — it must
	// see through the stale entries without needing a Next() call to drain
	// them first.
	if !pc.Done() {
		t.Fatal("Done() = false with only stale lost-queue entries remaining")
	}
	if seg, class := pc.Next(); class != ClassNone {
		t.Fatalf("Next = (%d, %v), want ClassNone", seg, class)
	}
}

// TestPreCreditProbeTimerStopsAfterOpportunity is the regression for the §6
// safety timer resending the probe even though scheduled opportunities were
// already arriving: the paper resends only "if no credit is received in a
// given duration".
func TestPreCreditProbeTimerStopsAfterOpportunity(t *testing.T) {
	env, _, _, _ := harness(t, 4*1460, Options{})
	f := &transport.Flow{ID: 9, Src: 0, Dst: 1, Size: 4 * 1460}
	opts := Options{Enabled: true, ProbeTimeout: 10 * sim.Microsecond, MaxProbeResends: 5}
	pc := NewPreCredit(env, f, opts, 2*1460)
	probes := 0
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() { probes++ }
	pc.Start()
	// A credit arrives before the timeout and is spent through Next; the
	// probe ACK itself is still in flight (not yet processed).
	env.Eng.After(5*sim.Microsecond, func() { pc.Next() })
	env.Eng.Run()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (credit arrival must stop the safety timer)", probes)
	}
}

// The same guard through the StopBurst path: the first credit ends the
// burst, so the timer armed by the trailing probe must never fire.
func TestPreCreditProbeTimerStopsAfterStopBurst(t *testing.T) {
	env, _, _, _ := harness(t, 64*1460, Options{})
	f := &transport.Flow{ID: 10, Src: 0, Dst: 1, Size: 64 * 1460}
	opts := Options{Enabled: true, ProbeTimeout: 10 * sim.Microsecond, MaxProbeResends: 5}
	pc := NewPreCredit(env, f, opts, 64*1460)
	probes := 0
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() { probes++ }
	pc.Start()
	env.Eng.After(2*sim.Microsecond, pc.StopBurst)
	env.Eng.Run()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (StopBurst is a credit arrival)", probes)
	}
}

func TestPreCreditAuditCleanLifecycle(t *testing.T) {
	env, _, _, _ := harness(t, 6*1460, DefaultOptions())
	f := &transport.Flow{ID: 11, Src: 0, Dst: 1, Size: 6 * 1460}
	pc := NewPreCredit(env, f, DefaultOptions(), 3*1460)
	pc.SendSeg = func(int, bool) {}
	pc.SendProbe = func() {}
	if err := pc.Audit(); err != nil {
		t.Fatalf("fresh: %v", err)
	}
	pc.Start()
	env.Eng.Run()
	pc.OnAck(pc.Seg.Offset(1))
	pc.OnProbeAck()
	if err := pc.Audit(); err != nil {
		t.Fatalf("after probe verdict: %v", err)
	}
	for {
		if _, class := pc.Next(); class == ClassNone {
			break
		}
	}
	for i := 0; i < pc.Seg.NumSegs(); i++ {
		pc.OnAck(pc.Seg.Offset(i))
	}
	if err := pc.Audit(); err != nil {
		t.Fatalf("completed: %v", err)
	}
	if !pc.Done() {
		t.Fatal("flow should be done")
	}
}

func TestPreCreditAuditDetectsCorruption(t *testing.T) {
	mk := func() *PreCredit {
		env := testEnv(t)
		f := &transport.Flow{ID: 12, Src: 0, Dst: 1, Size: 4 * 1460}
		pc := NewPreCredit(env, f, DefaultOptions(), 2*1460)
		pc.SendSeg = func(int, bool) {}
		pc.SendProbe = func() {}
		pc.Start()
		env.Eng.Run()
		return pc
	}
	cases := []struct {
		name    string
		corrupt func(pc *PreCredit)
	}{
		{"ack-count-drift", func(pc *PreCredit) { pc.ackCount = 3 }},
		{"burst-overrun", func(pc *PreCredit) { pc.burstSent = pc.burstLimit + 1 }},
		{"next-new-behind-burst", func(pc *PreCredit) { pc.nextNew = pc.burstSent - 1 }},
		{"scan-pointer-overrun", func(pc *PreCredit) { pc.unackedP = pc.burstSent + 1 }},
		{"lost-out-of-range", func(pc *PreCredit) { pc.lost = append(pc.lost, 99) }},
		{"lost-unassigned", func(pc *PreCredit) { pc.lost = append(pc.lost, 3) }},
		{"probe-acked-unsent", func(pc *PreCredit) { pc.probeSent = false; pc.probeAcked = true }},
	}
	for _, c := range cases {
		pc := mk()
		c.corrupt(pc)
		if err := pc.Audit(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestOraclePrioAuditBacklog(t *testing.T) {
	q := NewOraclePrio()
	q.Enqueue(&netem.Packet{Type: netem.Data, WireSize: 1538}, 0)
	q.Enqueue(&netem.Packet{Type: netem.Data, WireSize: 1538, Scheduled: true}, 0)
	q.Dequeue(0)
	if err := netem.AuditQdisc(q); err != nil {
		t.Fatalf("clean oracle queue failed audit: %v", err)
	}
	q.unsched.bytes += 9
	if err := netem.AuditQdisc(q); err == nil {
		t.Fatal("oracle byte drift not detected")
	}
	q.unsched.bytes -= 9
	q.sched.n++
	if err := netem.AuditQdisc(q); err == nil {
		t.Fatal("oracle packet-count drift not detected")
	}
}

// TestOraclePrioDropsReachDropTotals is the regression for OraclePrio's
// tail drops being invisible to netem.DropTotals: the aggregation had no
// case for disciplines outside the netem package, so the xpass+prio and
// oracle schemes always reported zero drops.
func TestOraclePrioDropsReachDropTotals(t *testing.T) {
	eng := sim.NewEngine()
	q := NewBoundedPrio(2000)
	pt := netem.NewPort(eng, q, 10*sim.Gbps, sim.Microsecond, nil, "sw0->h0")
	ports := []*netem.Port{pt}
	pt.Q.Enqueue(&netem.Packet{Type: netem.Data, WireSize: 1538}, eng.Now())
	pt.Q.Enqueue(&netem.Packet{Type: netem.Data, WireSize: 1538}, eng.Now())
	tot := netem.DropTotals(ports)
	if tot[netem.DropTailFull] != 1 {
		t.Fatalf("DropTotals = %v, want 1 tail drop from OraclePrio", tot)
	}
	// And still visible once the port is instrumented.
	netem.InstrumentPorts(ports, netem.NewCountingTracer())
	pt.Q.Enqueue(&netem.Packet{Type: netem.Data, WireSize: 1538}, eng.Now())
	if tot := netem.DropTotals(ports); tot[netem.DropTailFull] != 2 {
		t.Fatalf("DropTotals after instrumentation = %v, want 2", tot)
	}
}
