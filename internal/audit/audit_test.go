package audit

import (
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

func testNet() *netem.Network {
	return netem.BuildSingleSwitch(sim.NewEngine(), 2, netem.TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
}

// dataPkt builds a data packet from the given pool; a nil pool allocates,
// for synthetic Trace-only scenarios where the fabric never terminates (and
// so never releases) the packet.
func dataPkt(pp *netem.PacketPool, flow uint64, seq int64, payload int) *netem.Packet {
	p := pp.Get()
	p.Type, p.Flow, p.Src, p.Dst = netem.Data, flow, 0, 1
	p.Seq, p.PayloadLen, p.WireSize = seq, payload, netem.WireSizeFor(payload)
	return p
}

// TestAuditorCleanDelivery drives real packets through a real fabric (no
// protocol — endpoints just absorb) and expects a balanced, violation-free
// report.
func TestAuditorCleanDelivery(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 3000)
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 0, 1500))
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 1500, 1500))
	net.Eng.Run()
	rep := a.Finish()
	if err := rep.Err(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if rep.InjectedPayload != 3000 || rep.DeliveredPayload != 3000 || rep.UniquePayload != 3000 {
		t.Fatalf("ledger = %+v, want 3000 injected/delivered/unique", rep)
	}
	if rep.ResidualPayload != 0 || rep.DroppedPayload != 0 {
		t.Fatalf("unexpected residual/dropped: %+v", rep)
	}
}

// TestAuditorAccountsDrops overflows a tiny switch queue and expects the
// lost payload attributed to drops, with conservation still balancing.
func TestAuditorAccountsDrops(t *testing.T) {
	net := netem.BuildSingleSwitch(sim.NewEngine(), 3, netem.TopoConfig{
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
		MakeQdisc: func(kind netem.PortKind, _ sim.Rate) netem.Qdisc {
			if kind == netem.HostNIC {
				return netem.NewFIFO(0)
			}
			return netem.NewFIFO(2 * 1578) // room for two full frames
		},
	})
	a := Attach(net)
	a.RegisterFlow(1, 10*1500)
	a.RegisterFlow(2, 10*1500)
	// Two line-rate senders share one downlink: the 2-frame switch queue
	// must shed roughly half the offered load.
	for i := 0; i < 10; i++ {
		p1 := dataPkt(net.Pool, 1, int64(i)*1500, 1500)
		p2 := dataPkt(net.Pool, 2, int64(i)*1500, 1500)
		p2.Src, p2.Dst = 1, 2
		p1.Dst = 2
		net.Hosts[0].Send(p1)
		net.Hosts[1].Send(p2)
	}
	net.Eng.Run()
	rep := a.Finish()
	if err := rep.Err(); err != nil {
		t.Fatalf("drop run: %v", err)
	}
	if rep.DroppedPayload == 0 {
		t.Fatal("expected drops at the 2-frame switch queue")
	}
	if rep.InjectedPayload != rep.DeliveredPayload+rep.DroppedPayload {
		t.Fatalf("books don't balance: %+v", rep)
	}
	if rep.DropsByReason[netem.DropTailFull] == 0 {
		t.Fatalf("tail drops not classified: %+v", rep.DropsByReason)
	}
}

func TestAuditorDetectsDoubleDeliver(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 1500)
	p := dataPkt(nil, 1, 0, 1500)
	a.Trace(0, netem.TraceEnqueue, "h0->sw0", p)
	a.Trace(1, netem.TraceDeliver, "host1", p)
	a.Trace(2, netem.TraceDeliver, "host1", p)
	rep := a.Finish()
	if !hasCheck(rep, "double-deliver") {
		t.Fatalf("double delivery not flagged: %v", rep.Err())
	}
}

func TestAuditorDetectsDeliveryBeyondFlowSize(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 1000) // flow is smaller than one full segment
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 0, 1500))
	net.Eng.Run()
	rep := a.Finish()
	if !hasCheck(rep, "beyond-size") {
		t.Fatalf("out-of-range delivery not flagged: %v", rep.Err())
	}
}

func TestAuditorDetectsDuplicateUniqueBytes(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 1500)
	// Two distinct packets carrying the same bytes: legal retransmission,
	// unique payload must be counted once and stay within the flow size.
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 0, 1500))
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 0, 1500))
	net.Eng.Run()
	rep := a.Finish()
	if err := rep.Err(); err != nil {
		t.Fatalf("retransmission flagged: %v", err)
	}
	if rep.DeliveredPayload != 3000 || rep.UniquePayload != 1500 {
		t.Fatalf("delivered=%d unique=%d, want 3000/1500", rep.DeliveredPayload, rep.UniquePayload)
	}
}

func TestAuditorDetectsNonMonotonicTime(t *testing.T) {
	net := testNet()
	a := Attach(net)
	p := dataPkt(nil, 1, 0, 1500)
	a.Trace(sim.Time(100), netem.TraceEnqueue, "h0->sw0", p)
	a.Trace(sim.Time(50), netem.TraceDeliver, "host1", p)
	rep := a.Finish()
	if !hasCheck(rep, "monotonic-time") {
		t.Fatalf("time regression not flagged: %v", rep.Err())
	}
}

func TestAuditorDetectsResidualAfterDrain(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 1500)
	// A packet enters the fabric but never reaches a terminal event, and
	// the engine is idle: payload leaked.
	a.Trace(0, netem.TraceEnqueue, "h0->sw0", dataPkt(nil, 1, 0, 1500))
	rep := a.Finish()
	if !hasCheck(rep, "residual") {
		t.Fatalf("leaked payload not flagged: %v", rep.Err())
	}
}

func TestAuditorCheckMeter(t *testing.T) {
	net := testNet()
	a := Attach(net)
	a.RegisterFlow(1, 1500)
	net.Hosts[0].Send(dataPkt(net.Pool, 1, 0, 1500))
	net.Eng.Run()
	a.CheckMeter(1500, 1500)
	rep := a.Finish()
	if err := rep.Err(); err != nil {
		t.Fatalf("consistent meter flagged: %v", err)
	}

	b := Attach(testNet())
	b.CheckMeter(999, 0) // claims sends the fabric never saw
	if !hasCheck(&b.report, "meter-sent") {
		t.Fatal("meter-sent drift not flagged")
	}
	c := Attach(testNet())
	c.CheckMeter(0, 999) // claims deliveries the fabric never made
	if !hasCheck(&c.report, "meter-delivered") {
		t.Fatal("meter-delivered drift not flagged")
	}
}

type fakeAuditable struct{ errs []error }

func (f fakeAuditable) AuditInvariants() []error { return f.errs }

func TestAuditProtocol(t *testing.T) {
	a := Attach(testNet())
	a.AuditProtocol(struct{}{}) // not auditable: ignored
	a.AuditProtocol(fakeAuditable{})
	if !a.report.Ok() {
		t.Fatalf("clean protocol flagged: %v", a.report.Err())
	}
	a.AuditProtocol(fakeAuditable{errs: []error{errFake("pc broken")}})
	if !hasCheck(&a.report, "protocol-state") {
		t.Fatal("protocol error not flagged")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }

func TestReportErrFormatsViolations(t *testing.T) {
	var r Report
	if r.Err() != nil {
		t.Fatal("empty report should have nil Err")
	}
	for i := 0; i < maxViolations+10; i++ {
		r.add(Violation{Check: "conservation", Flow: uint64(i), Detail: "x"})
	}
	if len(r.Violations) != maxViolations || r.Truncated != 10 {
		t.Fatalf("cap broken: %d kept, %d truncated", len(r.Violations), r.Truncated)
	}
	msg := r.Err().Error()
	if !strings.Contains(msg, "conservation") || !strings.Contains(msg, "more suppressed") {
		t.Fatalf("Err() = %q", msg)
	}
}

func hasCheck(r *Report, check string) bool {
	for _, v := range r.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}
