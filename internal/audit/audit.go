// Package audit is an opt-in packet-conservation checker for simulation
// runs: it attaches to the existing observability seams (port/host tracing
// and drop hooks), follows every packet from injection to its terminal
// event, and verifies at drain time that the books balance.
//
// The invariants checked:
//
//  1. Conservation: every injected payload byte is accounted exactly once —
//     delivered, dropped (attributed to a netem.DropReason), trimmed, or
//     still sitting in a queue (residual). When the engine has no pending
//     events, residual must be zero and every port backlog empty.
//  2. Queue coherence: each qdisc's cached byte counters match its actual
//     contents (netem.AuditQdisc), and the event engine's bookkeeping is
//     internally consistent (sim.Engine.CheckInvariants).
//  3. Delivery bounds: a flow's unique delivered payload never exceeds its
//     size; duplicates are legal only as explicit retransmissions.
//  4. Protocol state: transports exposing Auditable have each flow's Aeolus
//     state machine verified (core.PreCredit.Audit).
//  5. Meter coherence: the transfer-efficiency meter's sent counter matches
//     the payload the fabric saw injected, and its delivered counter never
//     exceeds the unique payload the fabric delivered.
//  6. Pool coherence: every packet the pool ever created is live, in the
//     free-list, or was discarded while disabled (netem.PacketPool
//     .CheckCoherence); no packet is Put twice; and once the engine drains,
//     no packet remains live (a live packet at drain time was leaked by
//     whoever terminated it).
//
// The auditor deliberately depends only on netem and sim, so every
// transport package can be audited without import cycles.
package audit

import (
	"fmt"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/flatmap"
	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// Auditable is implemented by transports that can verify their own per-flow
// invariants (the three Protocol types in internal/transport).
type Auditable interface {
	AuditInvariants() []error
}

// Violation is one invariant breach, structured so tests and tools can
// filter by check and locate the offending port or flow.
type Violation struct {
	Check  string // invariant identifier, e.g. "conservation", "qdisc-backlog"
	Where  string // port label, host, or subsystem
	Flow   uint64 // offending flow, 0 when not flow-specific
	Detail string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	s := v.Check
	if v.Where != "" {
		s += " at " + v.Where
	}
	if v.Flow != 0 {
		s += fmt.Sprintf(" flow=%d", v.Flow)
	}
	return s + ": " + v.Detail
}

// maxViolations bounds the report so a systemic breach doesn't flood memory;
// the count of suppressed violations is kept.
const maxViolations = 100

// Report is the outcome of an audited run.
type Report struct {
	Events           uint64 // packet events observed
	InjectedPayload  int64  // payload bytes first seen entering the fabric
	DeliveredPayload int64  // payload bytes handed to endpoints (incl. duplicates)
	UniquePayload    int64  // deduplicated delivered payload
	DroppedPayload   int64  // payload bytes on dropped packets
	TrimmedPayload   int64  // payload bytes cut by NDP trimming
	ResidualPayload  int64  // payload bytes still queued at audit time
	ForwardedPayload int64  // payload bytes handed to another shard's auditor
	ArrivedPayload   int64  // payload bytes handed in from another shard's auditor
	DropsByReason    [netem.NumDropReasons]uint64
	Pool             netem.PoolStats // packet-pool counters at audit time

	Violations []Violation
	Truncated  int // violations suppressed beyond maxViolations
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// violations (all of them, up to the report cap).
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(r.Violations)+r.Truncated)
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "\n  ... %d more suppressed", r.Truncated)
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) add(v Violation) {
	if len(r.Violations) >= maxViolations {
		r.Truncated++
		return
	}
	r.Violations = append(r.Violations, v)
}

// AddViolation records an externally detected violation — the sharded
// harness uses it for the invariants only visible across shard reports
// (the cross-pool packet balance).
func (r *Report) AddViolation(v Violation) { r.add(v) }

// MergeReports combines per-shard reports into one run-wide view: the byte
// ledgers, event counts and pool counters sum, the violations concatenate
// (still capped), and the per-pool Live figure is recomputed from the summed
// hand-out/return counters — per-shard Live is meaningless under migration.
func MergeReports(reps []*Report) *Report {
	m := &Report{}
	for _, r := range reps {
		m.Events += r.Events
		m.InjectedPayload += r.InjectedPayload
		m.DeliveredPayload += r.DeliveredPayload
		m.UniquePayload += r.UniquePayload
		m.DroppedPayload += r.DroppedPayload
		m.TrimmedPayload += r.TrimmedPayload
		m.ResidualPayload += r.ResidualPayload
		m.ForwardedPayload += r.ForwardedPayload
		m.ArrivedPayload += r.ArrivedPayload
		for i, n := range r.DropsByReason {
			m.DropsByReason[i] += n
		}
		m.Pool.Allocated += r.Pool.Allocated
		m.Pool.Gets += r.Pool.Gets
		m.Pool.Puts += r.Pool.Puts
		m.Pool.InPool += r.Pool.InPool
		m.Pool.DoublePuts += r.Pool.DoublePuts
		for _, v := range r.Violations {
			m.add(v)
		}
		m.Truncated += r.Truncated
	}
	m.Pool.Live = m.Pool.Gets - m.Pool.Puts
	return m
}

// pktState follows one packet object through the fabric.
type pktState struct {
	payload   int // unaccounted payload bytes riding the packet
	flow      uint64
	seen      bool // slot-array presence marker (the map uses membership)
	isData    bool
	delivered bool
	dropped   bool
}

// flowAcct accumulates the byte ledger of one flow.
type flowAcct struct {
	size      int64 // -1 when the flow was never registered
	injected  int64
	delivered int64
	dropped   int64
	trimmed   int64
	residual  int64
	unique    int64
	forwarded int64   // handed across a shard boundary (outbound)
	arrived   int64   // handed in across a shard boundary (inbound)
	spans     []int64 // delivered byte ranges as flat sorted [s0,e0,s1,e1,...] pairs
}

// markRange records a delivery of payload bytes [start, end), reporting
// whether the range is new (the unique-payload case). Coverage is kept as
// merged half-open intervals, not a per-segment set: deliveries arrive
// overwhelmingly in offset order, so almost every flow carries exactly one
// span (16 bytes) for its whole life, where a map or sorted offset slice
// costs 8+ bytes per segment and dominated state_bytes_per_flow at scale.
// Out-of-order firsts open a second span that merges away when the gap
// fills. Segmentation is fixed per flow, so a range is either entirely
// inside one existing span (a duplicate) or entirely in a gap — partial
// overlap cannot occur, and the containment check only needs start.
func (fa *flowAcct) markRange(start, end int64) bool {
	s := fa.spans
	n := len(s)
	if n == 0 || start > s[n-1] {
		fa.spans = appendSpan(s, start, end)
		return true
	}
	if start == s[n-1] { // extends the last span in place
		s[n-1] = end
		return true
	}
	// Rightmost span whose start is <= start (span i occupies s[2i], s[2i+1]).
	lo, hi := 0, n/2
	for lo < hi {
		mid := (lo + hi) / 2
		if s[2*mid] <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i >= 0 && start < s[2*i+1] {
		return false // inside span i: a duplicate delivery
	}
	// New range in a gap; splice it in, merging with adjacent neighbors.
	left := i >= 0 && s[2*i+1] == start
	right := s[2*(i+1)] == end // span i+1 exists: start was not past the tail
	switch {
	case left && right:
		s[2*i+1] = s[2*(i+1)+1]
		copy(s[2*(i+1):], s[2*(i+2):])
		fa.spans = s[:n-2]
	case left:
		s[2*i+1] = end
	case right:
		s[2*(i+1)] = start
	default:
		s = appendSpan(s, 0, 0)
		copy(s[2*(i+1)+2:], s[2*(i+1):])
		s[2*(i+1)], s[2*(i+1)+1] = start, end
		fa.spans = s
	}
	return true
}

// appendSpan appends one [start, end) pair with a 1.25x growth policy
// instead of append's doubling: tens of thousands of resident flows each
// carrying up to 2x slack is real memory, and the copies a slower growth
// costs are trivial at per-flow span counts.
func appendSpan(s []int64, start, end int64) []int64 {
	if len(s)+2 > cap(s) {
		grown := make([]int64, len(s), len(s)+len(s)/4+8)
		copy(grown, s)
		s = grown
	}
	return append(s, start, end)
}

// Auditor observes an instrumented network and checks the invariants. It
// implements netem.Tracer. Attach it before any traffic is injected; it is
// not safe for use from multiple goroutines (one auditor per run).
//
// The per-packet ledger is kept in a flat array indexed by the packet's
// dense pool slot (netem.Packet.PoolSlot) whenever that key is valid: on a
// non-shared pool, slots name storage uniquely, so the Trace hot path is an
// array index instead of a pointer-keyed map probe. Packets without a slot
// (nil or disabled pools, hand-built fixtures) and every packet of a shared
// pool — where slots collide across the exchanging pools — fall back to the
// pointer-keyed map. Per-flow ledgers live in a flat open-addressed table
// for the same reason.
type Auditor struct {
	eng    *sim.Engine
	pool   *netem.PacketPool
	ports  []*netem.Port
	shared bool // pool exchanges packets with other shards' pools
	report Report

	slotStates []pktState                  // PoolSlot-indexed ledger (non-shared pools)
	pkts       map[*netem.Packet]*pktState // slot-less packets, shared pools
	flowIdx    flatmap.Index               // flow ID -> dense index into flowAccts
	flowAccts  []flowAcct
	lastTime   sim.Time
	hookDrops  [netem.NumDropReasons]uint64
}

// slotOf returns the packet's dense ledger slot, or -1 when the packet must
// be tracked by pointer (no slab slot, or a shared pool whose slots collide
// with its peers').
func (a *Auditor) slotOf(p *netem.Packet) int32 {
	if a.shared {
		return -1
	}
	return p.PoolSlot()
}

// lookup returns the packet's existing ledger entry, or nil. The pointer is
// only valid until the next ensure call (the slot array may grow).
func (a *Auditor) lookup(p *netem.Packet) *pktState {
	if s := a.slotOf(p); s >= 0 {
		if int(s) >= len(a.slotStates) {
			return nil
		}
		if st := &a.slotStates[s]; st.seen {
			return st
		}
		return nil
	}
	return a.pkts[p]
}

// ensure returns the packet's ledger entry, creating a zeroed one (with
// seen set) when absent; existed reports which. The pointer is only valid
// until the next ensure call.
func (a *Auditor) ensure(p *netem.Packet) (st *pktState, existed bool) {
	if s := a.slotOf(p); s >= 0 {
		if int(s) >= len(a.slotStates) {
			grown := make([]pktState, int(s)+netem.PacketChunkSize)
			copy(grown, a.slotStates)
			a.slotStates = grown
		}
		st = &a.slotStates[s]
		existed = st.seen
		st.seen = true
		return st, existed
	}
	if st = a.pkts[p]; st != nil {
		return st, true
	}
	st = &pktState{seen: true}
	a.pkts[p] = st
	return st, false
}

// forget retires the packet's ledger entry (recycle, shard departure).
func (a *Auditor) forget(p *netem.Packet) {
	if s := a.slotOf(p); s >= 0 {
		if int(s) < len(a.slotStates) {
			a.slotStates[s] = pktState{}
		}
		return
	}
	delete(a.pkts, p)
}

// Attach instruments every port and host of the network and claims each
// port's drop hook. Call once, before traffic starts; the returned auditor
// observes the whole run.
func Attach(net *netem.Network) *Auditor {
	return AttachScope(net.Eng, net.Pool, net.AllPorts(), net.Hosts, false)
}

// AttachScope instruments an explicit slice of the fabric — one shard's
// engine, pool, ports and hosts — rather than a whole network. A sharded run
// attaches one auditor per shard: every port and host fires its events on
// exactly one shard's engine, so each auditor is driven by a single
// goroutine and the per-shard books stay lock-free. shared marks the pool as
// one of several exchanging packets across shard boundaries, which relaxes
// the drain-time pool checks to the forms that survive migration (the
// harness checks the cross-pool balance globally over the merged reports).
func AttachScope(eng *sim.Engine, pool *netem.PacketPool, ports []*netem.Port, hosts []*netem.Host, shared bool) *Auditor {
	a := &Auditor{
		eng:    eng,
		pool:   pool,
		ports:  ports,
		shared: shared,
		pkts:   make(map[*netem.Packet]*pktState),
	}
	for _, pt := range ports {
		pt.Q.SetDropHook(func(p *netem.Packet, r netem.DropReason) {
			a.hookDrops[r]++
		})
	}
	netem.InstrumentPorts(ports, a)
	netem.InstrumentHosts(hosts, a)
	if pool != nil {
		pool.SetObserver(a)
	}
	return a
}

// Depart moves a packet's ledger entry to a shard boundary: its remaining
// unaccounted payload is booked as forwarded and the packet is forgotten, so
// it can neither show up as residual here nor be double-counted when the
// destination shard's auditor takes over. The sharded harness calls it at a
// window barrier, with every shard worker parked.
func (a *Auditor) Depart(p *netem.Packet) {
	st := a.lookup(p)
	if st == nil {
		return
	}
	fwd := st.isData && !st.delivered && !st.dropped && st.payload > 0
	payload, flow := st.payload, st.flow
	a.forget(p)
	if fwd {
		a.report.ForwardedPayload += int64(payload)
		a.flowOf(flow).forwarded += int64(payload)
	}
}

// Arrive registers a packet handed in from another shard: a fresh ledger
// entry seeded with the in-flight payload, booked as arrived rather than
// injected so the first local observation is not mistaken for an injection.
// Paired with the source auditor's Depart at the same barrier.
func (a *Auditor) Arrive(p *netem.Packet) {
	st, _ := a.ensure(p)
	*st = pktState{seen: true, payload: p.PayloadLen, flow: p.Flow, isData: p.Type == netem.Data}
	if st.isData && st.payload > 0 {
		a.report.ArrivedPayload += int64(st.payload)
		a.flowOf(st.flow).arrived += int64(st.payload)
	}
}

// PoolGet implements netem.PoolObserver: a recycled pointer is a brand-new
// packet, so any ledger state keyed on the old occupant of that address is
// retired. (Its payload was fully accounted at the terminal event that
// preceded the Put.)
func (a *Auditor) PoolGet(p *netem.Packet, fresh bool) {
	if !fresh {
		a.forget(p)
	}
}

// PoolPut implements netem.PoolObserver: double-Puts become structured
// violations, and releasing a packet the fabric still considers in flight
// (no terminal event observed) is reported as a premature free.
func (a *Auditor) PoolPut(p *netem.Packet, firstPut bool) {
	if !firstPut {
		a.report.add(Violation{Check: "pool-double-put", Flow: p.Flow,
			Detail: fmt.Sprintf("packet %v returned to the pool twice", p)})
		return
	}
	if st := a.lookup(p); st != nil && !st.delivered && !st.dropped {
		a.report.add(Violation{Check: "pool-put-live", Flow: st.flow,
			Detail: fmt.Sprintf("packet %v released without a terminal event", p)})
	}
}

// RegisterFlow declares a flow's payload size so delivery-bound checks have
// a reference. Unregistered flows are still conservation-checked, but their
// size-dependent invariants are skipped.
func (a *Auditor) RegisterFlow(id uint64, size int64) {
	slot, added := a.flowIdx.Put(id)
	if !added {
		return
	}
	_ = slot // slots are dense and issued in Put order: slot == len(flowAccts)
	a.appendAcct(flowAcct{size: size})
}

// appendAcct appends one flow ledger with a 1.25x growth policy: at ~96
// bytes per flowAcct, append's doubling would leave up to one ledger's worth
// of slack per resident flow at the scale cells' measurement point.
func (a *Auditor) appendAcct(fa flowAcct) {
	if len(a.flowAccts) == cap(a.flowAccts) {
		grown := make([]flowAcct, len(a.flowAccts), len(a.flowAccts)+len(a.flowAccts)/4+8)
		copy(grown, a.flowAccts)
		a.flowAccts = grown
	}
	a.flowAccts = append(a.flowAccts, fa)
}

// flowOf returns the flow's ledger, materializing an unregistered flow with
// unknown size. The pointer is only valid until the next flowOf call (the
// backing array may grow) — callers use it immediately and never retain it.
func (a *Auditor) flowOf(id uint64) *flowAcct {
	slot, added := a.flowIdx.Put(id)
	if added {
		a.appendAcct(flowAcct{size: -1})
	}
	return &a.flowAccts[slot]
}

// Trace implements netem.Tracer: the per-packet ledger.
func (a *Auditor) Trace(now sim.Time, ev netem.TraceEvent, where string, p *netem.Packet) {
	a.report.Events++
	if now < a.lastTime {
		a.report.add(Violation{Check: "monotonic-time", Where: where, Flow: p.Flow,
			Detail: fmt.Sprintf("event at %v after observing %v", now, a.lastTime)})
	} else {
		a.lastTime = now
	}

	st, seen := a.ensure(p)
	if !seen {
		// First observation is the injection: the packet enters the fabric
		// carrying its payload (zero for control packets).
		st.payload, st.flow, st.isData = p.PayloadLen, p.Flow, p.Type == netem.Data
		st.delivered, st.dropped = false, false
		if st.isData {
			a.report.InjectedPayload += int64(st.payload)
			a.flowOf(p.Flow).injected += int64(st.payload)
		}
	}

	switch ev {
	case netem.TraceEnqueue:
		if st.delivered || st.dropped {
			a.report.add(Violation{Check: "reuse-after-terminal", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v enqueued after its terminal event", p)})
		}
	case netem.TraceTrim:
		// Payload cut in place; the 64-byte header travels on.
		if st.isData {
			a.report.TrimmedPayload += int64(st.payload)
			a.flowOf(st.flow).trimmed += int64(st.payload)
			st.payload = 0
		}
	case netem.TraceDrop:
		if st.dropped {
			a.report.add(Violation{Check: "double-drop", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v dropped twice", p)})
			return
		}
		if st.delivered {
			a.report.add(Violation{Check: "drop-after-deliver", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v dropped after delivery", p)})
			return
		}
		st.dropped = true
		if st.isData {
			a.report.DroppedPayload += int64(st.payload)
			a.flowOf(st.flow).dropped += int64(st.payload)
			st.payload = 0
		}
	case netem.TraceDeliver:
		if st.delivered {
			a.report.add(Violation{Check: "double-deliver", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v delivered twice", p)})
			return
		}
		if st.dropped {
			a.report.add(Violation{Check: "deliver-after-drop", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v delivered after being dropped", p)})
			return
		}
		st.delivered = true
		if !st.isData {
			return
		}
		fa := a.flowOf(st.flow)
		a.report.DeliveredPayload += int64(st.payload)
		fa.delivered += int64(st.payload)
		if fa.size >= 0 && p.Seq+int64(st.payload) > fa.size {
			a.report.add(Violation{Check: "beyond-size", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("payload [%d, %d) outside flow of %d bytes",
					p.Seq, p.Seq+int64(st.payload), fa.size)})
		}
		if st.payload > 0 && fa.markRange(p.Seq, p.Seq+int64(st.payload)) {
			fa.unique += int64(st.payload)
			a.report.UniquePayload += int64(st.payload)
		}
		st.payload = 0
	}
}

// AuditProtocol runs the transport's own invariant checks, when it has any.
func (a *Auditor) AuditProtocol(p any) {
	aud, ok := p.(Auditable)
	if !ok {
		return
	}
	for _, err := range aud.AuditInvariants() {
		a.report.add(Violation{Check: "protocol-state", Detail: err.Error()})
	}
}

// CheckMeter cross-checks the transport-layer byte meter against the
// fabric-level ledger: every metered send must have reached a NIC queue, and
// the meter can never claim more unique delivery than the fabric performed.
// (It may claim less: ExpressPass only credits payload that arrived before
// flow establishment once the flow establishes.)
func (a *Auditor) CheckMeter(sentPayload, deliveredPayload int64) {
	if sentPayload != a.report.InjectedPayload {
		a.report.add(Violation{Check: "meter-sent",
			Detail: fmt.Sprintf("meter counted %d payload bytes sent, fabric saw %d injected",
				sentPayload, a.report.InjectedPayload)})
	}
	if deliveredPayload > a.report.UniquePayload {
		a.report.add(Violation{Check: "meter-delivered",
			Detail: fmt.Sprintf("meter counted %d payload bytes delivered, fabric delivered %d unique",
				deliveredPayload, a.report.UniquePayload)})
	}
}

// Finish runs the drain-time checks and returns the final report. Call it
// once, after the engine stops.
func (a *Auditor) Finish() *Report {
	if err := a.eng.CheckInvariants(); err != nil {
		a.report.add(Violation{Check: "engine-state", Detail: err.Error()})
	}

	// Queue-counter coherence and, when fully drained, empty backlogs.
	drained := a.eng.Pending() == 0
	var backlog int64
	for _, pt := range a.ports {
		if err := netem.AuditQdisc(pt.Q); err != nil {
			a.report.add(Violation{Check: "qdisc-backlog", Where: pt.Label, Detail: err.Error()})
		}
		backlog += pt.Q.Backlog().Bytes
	}
	if drained && backlog != 0 {
		a.report.add(Violation{Check: "drain",
			Detail: fmt.Sprintf("engine idle but %d bytes remain queued", backlog)})
	}

	// Residual payload: packets that saw no terminal event are still queued
	// somewhere (or were leaked — the drain check above distinguishes).
	// Every data flow was materialized at injection (or arrival), so these
	// flowOf calls never add flows and the accumulation order is irrelevant
	// (sums only).
	residual := func(st *pktState) {
		if !st.seen || st.delivered || st.dropped || !st.isData || st.payload == 0 {
			return
		}
		a.report.ResidualPayload += int64(st.payload)
		a.flowOf(st.flow).residual += int64(st.payload)
	}
	for i := range a.slotStates {
		residual(&a.slotStates[i])
	}
	for _, st := range a.pkts {
		residual(st)
	}
	if drained && a.report.ResidualPayload != 0 {
		a.report.add(Violation{Check: "residual",
			Detail: fmt.Sprintf("engine idle but %d payload bytes unaccounted", a.report.ResidualPayload)})
	}

	// Per-flow conservation and delivery bounds, in first-seen flow order.
	// Shard boundaries extend the identity symmetrically: payload handed in
	// (arrived) is an input like injection, payload handed out (forwarded) an
	// output like delivery — so the check closes per shard, and summing the
	// per-shard ledgers closes globally because every Depart pairs with an
	// Arrive at the same barrier.
	for slot, id := range a.flowIdx.Keys() {
		fa := &a.flowAccts[slot]
		got := fa.delivered + fa.dropped + fa.trimmed + fa.residual + fa.forwarded
		if want := fa.injected + fa.arrived; got != want {
			a.report.add(Violation{Check: "conservation", Flow: id,
				Detail: fmt.Sprintf("injected %d + arrived %d bytes but accounted %d (delivered %d + dropped %d + trimmed %d + residual %d + forwarded %d)",
					fa.injected, fa.arrived, got, fa.delivered, fa.dropped, fa.trimmed, fa.residual, fa.forwarded)})
		}
		if fa.size >= 0 && fa.unique > fa.size {
			a.report.add(Violation{Check: "delivery-bound", Flow: id,
				Detail: fmt.Sprintf("delivered %d unique bytes of a %d-byte flow", fa.unique, fa.size)})
		}
	}

	// Pool coherence: the pool's own conservation identity must hold, and a
	// drained engine means every packet terminated — so none may be live.
	// A shared (sharded) pool exchanges packets with its peers, so only the
	// migration-proof checks apply per pool; the hand-out/return balance is
	// checked globally by the harness over the merged reports.
	if pp := a.pool; pp != nil {
		if a.shared {
			if err := pp.CheckCoherenceShared(); err != nil {
				a.report.add(Violation{Check: "pool-coherence", Detail: err.Error()})
			}
		} else {
			if err := pp.CheckCoherence(); err != nil {
				a.report.add(Violation{Check: "pool-coherence", Detail: err.Error()})
			}
			if live := pp.Live(); drained && live != 0 {
				a.report.add(Violation{Check: "pool-leak",
					Detail: fmt.Sprintf("engine idle but %d packets still live (never returned to the pool)", live)})
			}
		}
		a.report.Pool = pp.Stats()
	}

	// Drop-hook tallies must agree with the qdisc counters: a mismatch means
	// a discipline dropped without firing its hook, or a counter was missed
	// by the aggregation.
	a.report.DropsByReason = a.hookDrops
	totals := netem.DropTotals(a.ports)
	for r, n := range totals {
		if a.hookDrops[r] != n {
			a.report.add(Violation{Check: "drop-count", Where: netem.DropReason(r).String(),
				Detail: fmt.Sprintf("drop hooks saw %d drops, qdisc counters report %d", a.hookDrops[r], n)})
		}
	}
	return &a.report
}
