// Package audit is an opt-in packet-conservation checker for simulation
// runs: it attaches to the existing observability seams (port/host tracing
// and drop hooks), follows every packet from injection to its terminal
// event, and verifies at drain time that the books balance.
//
// The invariants checked:
//
//  1. Conservation: every injected payload byte is accounted exactly once —
//     delivered, dropped (attributed to a netem.DropReason), trimmed, or
//     still sitting in a queue (residual). When the engine has no pending
//     events, residual must be zero and every port backlog empty.
//  2. Queue coherence: each qdisc's cached byte counters match its actual
//     contents (netem.AuditQdisc), and the event engine's bookkeeping is
//     internally consistent (sim.Engine.CheckInvariants).
//  3. Delivery bounds: a flow's unique delivered payload never exceeds its
//     size; duplicates are legal only as explicit retransmissions.
//  4. Protocol state: transports exposing Auditable have each flow's Aeolus
//     state machine verified (core.PreCredit.Audit).
//  5. Meter coherence: the transfer-efficiency meter's sent counter matches
//     the payload the fabric saw injected, and its delivered counter never
//     exceeds the unique payload the fabric delivered.
//  6. Pool coherence: every packet the pool ever created is live, in the
//     free-list, or was discarded while disabled (netem.PacketPool
//     .CheckCoherence); no packet is Put twice; and once the engine drains,
//     no packet remains live (a live packet at drain time was leaked by
//     whoever terminated it).
//
// The auditor deliberately depends only on netem and sim, so every
// transport package can be audited without import cycles.
package audit

import (
	"fmt"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/netem"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

// Auditable is implemented by transports that can verify their own per-flow
// invariants (the three Protocol types in internal/transport).
type Auditable interface {
	AuditInvariants() []error
}

// Violation is one invariant breach, structured so tests and tools can
// filter by check and locate the offending port or flow.
type Violation struct {
	Check  string // invariant identifier, e.g. "conservation", "qdisc-backlog"
	Where  string // port label, host, or subsystem
	Flow   uint64 // offending flow, 0 when not flow-specific
	Detail string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	s := v.Check
	if v.Where != "" {
		s += " at " + v.Where
	}
	if v.Flow != 0 {
		s += fmt.Sprintf(" flow=%d", v.Flow)
	}
	return s + ": " + v.Detail
}

// maxViolations bounds the report so a systemic breach doesn't flood memory;
// the count of suppressed violations is kept.
const maxViolations = 100

// Report is the outcome of an audited run.
type Report struct {
	Events           uint64 // packet events observed
	InjectedPayload  int64  // payload bytes first seen entering the fabric
	DeliveredPayload int64  // payload bytes handed to endpoints (incl. duplicates)
	UniquePayload    int64  // deduplicated delivered payload
	DroppedPayload   int64  // payload bytes on dropped packets
	TrimmedPayload   int64  // payload bytes cut by NDP trimming
	ResidualPayload  int64  // payload bytes still queued at audit time
	ForwardedPayload int64  // payload bytes handed to another shard's auditor
	ArrivedPayload   int64  // payload bytes handed in from another shard's auditor
	DropsByReason    [netem.NumDropReasons]uint64
	Pool             netem.PoolStats // packet-pool counters at audit time

	Violations []Violation
	Truncated  int // violations suppressed beyond maxViolations
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// violations (all of them, up to the report cap).
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(r.Violations)+r.Truncated)
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "\n  ... %d more suppressed", r.Truncated)
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) add(v Violation) {
	if len(r.Violations) >= maxViolations {
		r.Truncated++
		return
	}
	r.Violations = append(r.Violations, v)
}

// AddViolation records an externally detected violation — the sharded
// harness uses it for the invariants only visible across shard reports
// (the cross-pool packet balance).
func (r *Report) AddViolation(v Violation) { r.add(v) }

// MergeReports combines per-shard reports into one run-wide view: the byte
// ledgers, event counts and pool counters sum, the violations concatenate
// (still capped), and the per-pool Live figure is recomputed from the summed
// hand-out/return counters — per-shard Live is meaningless under migration.
func MergeReports(reps []*Report) *Report {
	m := &Report{}
	for _, r := range reps {
		m.Events += r.Events
		m.InjectedPayload += r.InjectedPayload
		m.DeliveredPayload += r.DeliveredPayload
		m.UniquePayload += r.UniquePayload
		m.DroppedPayload += r.DroppedPayload
		m.TrimmedPayload += r.TrimmedPayload
		m.ResidualPayload += r.ResidualPayload
		m.ForwardedPayload += r.ForwardedPayload
		m.ArrivedPayload += r.ArrivedPayload
		for i, n := range r.DropsByReason {
			m.DropsByReason[i] += n
		}
		m.Pool.Allocated += r.Pool.Allocated
		m.Pool.Gets += r.Pool.Gets
		m.Pool.Puts += r.Pool.Puts
		m.Pool.InPool += r.Pool.InPool
		m.Pool.DoublePuts += r.Pool.DoublePuts
		for _, v := range r.Violations {
			m.add(v)
		}
		m.Truncated += r.Truncated
	}
	m.Pool.Live = m.Pool.Gets - m.Pool.Puts
	return m
}

// pktState follows one packet object through the fabric.
type pktState struct {
	payload   int // unaccounted payload bytes riding the packet
	flow      uint64
	isData    bool
	delivered bool
	dropped   bool
}

// flowAcct accumulates the byte ledger of one flow.
type flowAcct struct {
	size      int64 // -1 when the flow was never registered
	injected  int64
	delivered int64
	dropped   int64
	trimmed   int64
	residual  int64
	unique    int64
	forwarded int64          // handed across a shard boundary (outbound)
	arrived   int64          // handed in across a shard boundary (inbound)
	offsets   map[int64]bool // payload offsets delivered at least once
}

// Auditor observes an instrumented network and checks the invariants. It
// implements netem.Tracer. Attach it before any traffic is injected; it is
// not safe for use from multiple goroutines (one auditor per run).
type Auditor struct {
	eng    *sim.Engine
	pool   *netem.PacketPool
	ports  []*netem.Port
	shared bool // pool exchanges packets with other shards' pools
	report Report

	pkts      map[*netem.Packet]*pktState
	flows     map[uint64]*flowAcct
	flowIDs   []uint64 // deterministic iteration order: first-seen
	lastTime  sim.Time
	hookDrops [netem.NumDropReasons]uint64
}

// Attach instruments every port and host of the network and claims each
// port's drop hook. Call once, before traffic starts; the returned auditor
// observes the whole run.
func Attach(net *netem.Network) *Auditor {
	return AttachScope(net.Eng, net.Pool, net.AllPorts(), net.Hosts, false)
}

// AttachScope instruments an explicit slice of the fabric — one shard's
// engine, pool, ports and hosts — rather than a whole network. A sharded run
// attaches one auditor per shard: every port and host fires its events on
// exactly one shard's engine, so each auditor is driven by a single
// goroutine and the per-shard books stay lock-free. shared marks the pool as
// one of several exchanging packets across shard boundaries, which relaxes
// the drain-time pool checks to the forms that survive migration (the
// harness checks the cross-pool balance globally over the merged reports).
func AttachScope(eng *sim.Engine, pool *netem.PacketPool, ports []*netem.Port, hosts []*netem.Host, shared bool) *Auditor {
	a := &Auditor{
		eng:    eng,
		pool:   pool,
		ports:  ports,
		shared: shared,
		pkts:   make(map[*netem.Packet]*pktState),
		flows:  make(map[uint64]*flowAcct),
	}
	for _, pt := range ports {
		pt.Q.SetDropHook(func(p *netem.Packet, r netem.DropReason) {
			a.hookDrops[r]++
		})
	}
	netem.InstrumentPorts(ports, a)
	netem.InstrumentHosts(hosts, a)
	if pool != nil {
		pool.SetObserver(a)
	}
	return a
}

// Depart moves a packet's ledger entry to a shard boundary: its remaining
// unaccounted payload is booked as forwarded and the packet is forgotten, so
// it can neither show up as residual here nor be double-counted when the
// destination shard's auditor takes over. The sharded harness calls it at a
// window barrier, with every shard worker parked.
func (a *Auditor) Depart(p *netem.Packet) {
	st, ok := a.pkts[p]
	if !ok {
		return
	}
	delete(a.pkts, p)
	if st.isData && !st.delivered && !st.dropped && st.payload > 0 {
		a.report.ForwardedPayload += int64(st.payload)
		a.flowOf(st.flow).forwarded += int64(st.payload)
	}
}

// Arrive registers a packet handed in from another shard: a fresh ledger
// entry seeded with the in-flight payload, booked as arrived rather than
// injected so the first local observation is not mistaken for an injection.
// Paired with the source auditor's Depart at the same barrier.
func (a *Auditor) Arrive(p *netem.Packet) {
	st := &pktState{payload: p.PayloadLen, flow: p.Flow, isData: p.Type == netem.Data}
	a.pkts[p] = st
	if st.isData && st.payload > 0 {
		a.report.ArrivedPayload += int64(st.payload)
		a.flowOf(st.flow).arrived += int64(st.payload)
	}
}

// PoolGet implements netem.PoolObserver: a recycled pointer is a brand-new
// packet, so any ledger state keyed on the old occupant of that address is
// retired. (Its payload was fully accounted at the terminal event that
// preceded the Put.)
func (a *Auditor) PoolGet(p *netem.Packet, fresh bool) {
	if !fresh {
		delete(a.pkts, p)
	}
}

// PoolPut implements netem.PoolObserver: double-Puts become structured
// violations, and releasing a packet the fabric still considers in flight
// (no terminal event observed) is reported as a premature free.
func (a *Auditor) PoolPut(p *netem.Packet, firstPut bool) {
	if !firstPut {
		a.report.add(Violation{Check: "pool-double-put", Flow: p.Flow,
			Detail: fmt.Sprintf("packet %v returned to the pool twice", p)})
		return
	}
	if st, ok := a.pkts[p]; ok && !st.delivered && !st.dropped {
		a.report.add(Violation{Check: "pool-put-live", Flow: st.flow,
			Detail: fmt.Sprintf("packet %v released without a terminal event", p)})
	}
}

// RegisterFlow declares a flow's payload size so delivery-bound checks have
// a reference. Unregistered flows are still conservation-checked, but their
// size-dependent invariants are skipped.
func (a *Auditor) RegisterFlow(id uint64, size int64) {
	if _, ok := a.flows[id]; ok {
		return
	}
	a.flows[id] = &flowAcct{size: size, offsets: make(map[int64]bool)}
	a.flowIDs = append(a.flowIDs, id)
}

func (a *Auditor) flowOf(id uint64) *flowAcct {
	if fa, ok := a.flows[id]; ok {
		return fa
	}
	fa := &flowAcct{size: -1, offsets: make(map[int64]bool)}
	a.flows[id] = fa
	a.flowIDs = append(a.flowIDs, id)
	return fa
}

// Trace implements netem.Tracer: the per-packet ledger.
func (a *Auditor) Trace(now sim.Time, ev netem.TraceEvent, where string, p *netem.Packet) {
	a.report.Events++
	if now < a.lastTime {
		a.report.add(Violation{Check: "monotonic-time", Where: where, Flow: p.Flow,
			Detail: fmt.Sprintf("event at %v after observing %v", now, a.lastTime)})
	} else {
		a.lastTime = now
	}

	st, seen := a.pkts[p]
	if !seen {
		// First observation is the injection: the packet enters the fabric
		// carrying its payload (zero for control packets).
		st = &pktState{payload: p.PayloadLen, flow: p.Flow, isData: p.Type == netem.Data}
		a.pkts[p] = st
		if st.isData {
			a.report.InjectedPayload += int64(st.payload)
			a.flowOf(p.Flow).injected += int64(st.payload)
		}
	}

	switch ev {
	case netem.TraceEnqueue:
		if st.delivered || st.dropped {
			a.report.add(Violation{Check: "reuse-after-terminal", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v enqueued after its terminal event", p)})
		}
	case netem.TraceTrim:
		// Payload cut in place; the 64-byte header travels on.
		if st.isData {
			a.report.TrimmedPayload += int64(st.payload)
			a.flowOf(st.flow).trimmed += int64(st.payload)
			st.payload = 0
		}
	case netem.TraceDrop:
		if st.dropped {
			a.report.add(Violation{Check: "double-drop", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v dropped twice", p)})
			return
		}
		if st.delivered {
			a.report.add(Violation{Check: "drop-after-deliver", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v dropped after delivery", p)})
			return
		}
		st.dropped = true
		if st.isData {
			a.report.DroppedPayload += int64(st.payload)
			a.flowOf(st.flow).dropped += int64(st.payload)
			st.payload = 0
		}
	case netem.TraceDeliver:
		if st.delivered {
			a.report.add(Violation{Check: "double-deliver", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v delivered twice", p)})
			return
		}
		if st.dropped {
			a.report.add(Violation{Check: "deliver-after-drop", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("packet %v delivered after being dropped", p)})
			return
		}
		st.delivered = true
		if !st.isData {
			return
		}
		fa := a.flowOf(st.flow)
		a.report.DeliveredPayload += int64(st.payload)
		fa.delivered += int64(st.payload)
		if fa.size >= 0 && p.Seq+int64(st.payload) > fa.size {
			a.report.add(Violation{Check: "beyond-size", Where: where, Flow: p.Flow,
				Detail: fmt.Sprintf("payload [%d, %d) outside flow of %d bytes",
					p.Seq, p.Seq+int64(st.payload), fa.size)})
		}
		if st.payload > 0 && !fa.offsets[p.Seq] {
			fa.offsets[p.Seq] = true
			fa.unique += int64(st.payload)
			a.report.UniquePayload += int64(st.payload)
		}
		st.payload = 0
	}
}

// AuditProtocol runs the transport's own invariant checks, when it has any.
func (a *Auditor) AuditProtocol(p any) {
	aud, ok := p.(Auditable)
	if !ok {
		return
	}
	for _, err := range aud.AuditInvariants() {
		a.report.add(Violation{Check: "protocol-state", Detail: err.Error()})
	}
}

// CheckMeter cross-checks the transport-layer byte meter against the
// fabric-level ledger: every metered send must have reached a NIC queue, and
// the meter can never claim more unique delivery than the fabric performed.
// (It may claim less: ExpressPass only credits payload that arrived before
// flow establishment once the flow establishes.)
func (a *Auditor) CheckMeter(sentPayload, deliveredPayload int64) {
	if sentPayload != a.report.InjectedPayload {
		a.report.add(Violation{Check: "meter-sent",
			Detail: fmt.Sprintf("meter counted %d payload bytes sent, fabric saw %d injected",
				sentPayload, a.report.InjectedPayload)})
	}
	if deliveredPayload > a.report.UniquePayload {
		a.report.add(Violation{Check: "meter-delivered",
			Detail: fmt.Sprintf("meter counted %d payload bytes delivered, fabric delivered %d unique",
				deliveredPayload, a.report.UniquePayload)})
	}
}

// Finish runs the drain-time checks and returns the final report. Call it
// once, after the engine stops.
func (a *Auditor) Finish() *Report {
	if err := a.eng.CheckInvariants(); err != nil {
		a.report.add(Violation{Check: "engine-state", Detail: err.Error()})
	}

	// Queue-counter coherence and, when fully drained, empty backlogs.
	drained := a.eng.Pending() == 0
	var backlog int64
	for _, pt := range a.ports {
		if err := netem.AuditQdisc(pt.Q); err != nil {
			a.report.add(Violation{Check: "qdisc-backlog", Where: pt.Label, Detail: err.Error()})
		}
		backlog += pt.Q.Backlog().Bytes
	}
	if drained && backlog != 0 {
		a.report.add(Violation{Check: "drain",
			Detail: fmt.Sprintf("engine idle but %d bytes remain queued", backlog)})
	}

	// Residual payload: packets that saw no terminal event are still queued
	// somewhere (or were leaked — the drain check above distinguishes).
	for _, st := range a.pkts {
		if st.delivered || st.dropped || !st.isData || st.payload == 0 {
			continue
		}
		a.report.ResidualPayload += int64(st.payload)
		a.flowOf(st.flow).residual += int64(st.payload)
	}
	if drained && a.report.ResidualPayload != 0 {
		a.report.add(Violation{Check: "residual",
			Detail: fmt.Sprintf("engine idle but %d payload bytes unaccounted", a.report.ResidualPayload)})
	}

	// Per-flow conservation and delivery bounds, in first-seen flow order.
	// Shard boundaries extend the identity symmetrically: payload handed in
	// (arrived) is an input like injection, payload handed out (forwarded) an
	// output like delivery — so the check closes per shard, and summing the
	// per-shard ledgers closes globally because every Depart pairs with an
	// Arrive at the same barrier.
	for _, id := range a.flowIDs {
		fa := a.flows[id]
		got := fa.delivered + fa.dropped + fa.trimmed + fa.residual + fa.forwarded
		if want := fa.injected + fa.arrived; got != want {
			a.report.add(Violation{Check: "conservation", Flow: id,
				Detail: fmt.Sprintf("injected %d + arrived %d bytes but accounted %d (delivered %d + dropped %d + trimmed %d + residual %d + forwarded %d)",
					fa.injected, fa.arrived, got, fa.delivered, fa.dropped, fa.trimmed, fa.residual, fa.forwarded)})
		}
		if fa.size >= 0 && fa.unique > fa.size {
			a.report.add(Violation{Check: "delivery-bound", Flow: id,
				Detail: fmt.Sprintf("delivered %d unique bytes of a %d-byte flow", fa.unique, fa.size)})
		}
	}

	// Pool coherence: the pool's own conservation identity must hold, and a
	// drained engine means every packet terminated — so none may be live.
	// A shared (sharded) pool exchanges packets with its peers, so only the
	// migration-proof checks apply per pool; the hand-out/return balance is
	// checked globally by the harness over the merged reports.
	if pp := a.pool; pp != nil {
		if a.shared {
			if err := pp.CheckCoherenceShared(); err != nil {
				a.report.add(Violation{Check: "pool-coherence", Detail: err.Error()})
			}
		} else {
			if err := pp.CheckCoherence(); err != nil {
				a.report.add(Violation{Check: "pool-coherence", Detail: err.Error()})
			}
			if live := pp.Live(); drained && live != 0 {
				a.report.add(Violation{Check: "pool-leak",
					Detail: fmt.Sprintf("engine idle but %d packets still live (never returned to the pool)", live)})
			}
		}
		a.report.Pool = pp.Stats()
	}

	// Drop-hook tallies must agree with the qdisc counters: a mismatch means
	// a discipline dropped without firing its hook, or a counter was missed
	// by the aggregation.
	a.report.DropsByReason = a.hookDrops
	totals := netem.DropTotals(a.ports)
	for r, n := range totals {
		if a.hookDrops[r] != n {
			a.report.add(Violation{Check: "drop-count", Where: netem.DropReason(r).String(),
				Detail: fmt.Sprintf("drop hooks saw %d drops, qdisc counters report %d", a.hookDrops[r], n)})
		}
	}
	return &a.report
}
