// Package aeolus_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the Aeolus paper's evaluation. Each benchmark
// executes the corresponding experiment end-to-end on the packet-level
// simulator and logs the regenerated table.
//
// Benchmarks are macro-scale (whole simulations); run them once each:
//
//	go test -bench=. -benchtime=1x -benchmem
//
// The AEOLUS_BUDGET environment variable (MiB of offered traffic per
// simulation run, default 24) scales fidelity; AEOLUS_FULL=1 disables the
// quick-sweep trimming for a complete reproduction.
package aeolus_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/experiments"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Budget = 24 << 20
	cfg.Quick = true
	if v := os.Getenv("AEOLUS_BUDGET"); v != "" {
		if mib, err := strconv.ParseInt(v, 10, 64); err == nil && mib > 0 {
			cfg.Budget = mib << 20
		}
	}
	if os.Getenv("AEOLUS_FULL") == "1" {
		cfg.Quick = false
	}
	return cfg
}

// runExperiment executes the experiment b.N times, logging its tables once
// and reporting the number of simulation runs per iteration.
func runExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Fn(cfg)
		if i == 0 {
			var sb strings.Builder
			for _, t := range tables {
				t.Fprint(&sb)
				sb.WriteString("\n")
			}
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: the performance gap between the
// existing proactive baselines and idealized pre-credit handling.
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2: the fraction of flows and bytes that
// could finish within the first RTT at each link speed (analytic).
func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3: ExpressPass vs hypothetical
// ExpressPass small-flow FCT on the oversubscribed fat-tree.
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4: Homa vs hypothetical Homa small-flow
// FCT on the two-tier fabric.
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable1 regenerates Table 1: tail FCT, transfer efficiency and
// average FCT under hypothetical, eager and original Homa.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig8 regenerates Figure 8: testbed 7-to-1 incast MCT under
// ExpressPass with and without Aeolus.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: ExpressPass ± Aeolus small-flow FCT
// across the four production workloads.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: average small-flow FCT versus load
// for ExpressPass ± Aeolus.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: testbed 7-to-1 incast MCT under
// Homa with and without Aeolus.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: Homa ± Aeolus small-flow FCT across
// the four workloads at 54% core load.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: flows suffering timeouts versus
// load under Homa ± Aeolus.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable3 regenerates Table 3: average FCT of all flows under eager
// Homa versus Homa+Aeolus.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig14 regenerates Figure 14: NDP ± Aeolus small-flow FCT across
// the four workloads.
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15: queue length versus the selective
// dropping threshold.
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16: first-RTT bottleneck utilization
// versus fan-in and threshold.
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkTable4 regenerates Table 4: the trapped-vs-lost ambiguity of
// priority queueing (max FCT and transfer efficiency).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5: priority queueing's shared-buffer
// starvation under a 20-to-1 incast.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig17 regenerates Figure 17: FCT slowdown under N-to-1 incast
// for all six schemes.
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18 regenerates Figure 18: goodput versus offered load for all
// six schemes.
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkAblation runs the design-choice ablation: selective-dropping
// threshold sweep and probe-based versus RTO-only first-RTT recovery.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }
