// Command aeolusbench regenerates the tables and figures of the Aeolus
// paper's evaluation. Each experiment builds the paper's topology, workload
// and schemes on the packet-level simulator and prints the rows the paper
// plots.
//
// Usage:
//
//	aeolusbench -list
//	aeolusbench -list-schemes
//	aeolusbench -exp fig9
//	aeolusbench -exp all -budget 512 -csv
//	aeolusbench -exp all -quick -parallel 8
//	aeolusbench -exp degrade -json > results/degradation.json
//	aeolusbench -digest -scheme homa+aeolus
//	aeolusbench -scenarios fig9 -quick
//
// -digest prints the golden-trace behavior digest for one scheme (or, with
// no -scheme, for the whole catalogue) — the regeneration path for the
// pinned table in internal/experiments/golden_test.go — with the digest of
// the scenario declaring each golden run alongside.
//
// -scenarios prints the scenario values an experiment's runs resolve to as a
// JSON array; each element is a self-contained scenario file runnable with
// aeolussim -scenario (see internal/scenario).
//
// The -budget flag (in MiB of offered traffic per run) trades fidelity for
// time; -quick trims parameter sweeps for a fast pass. Independent
// simulation runs within an experiment execute concurrently on -parallel
// workers (default: all cores); results are byte-identical for every
// -parallel value because each run's randomness derives only from the seed
// and the run's parameters, never from scheduling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/aeolus-transport/aeolus/internal/audit"
	"github.com/aeolus-transport/aeolus/internal/cliutil"
	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/sim"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID (fig1..fig18, table1..table5) or \"all\"")
		list      = flag.Bool("list", false, "list available experiments")
		listSch   = flag.Bool("list-schemes", false, "print the scheme catalogue and exit")
		listTopo  = flag.Bool("list-topos", false, "print the topology catalogue and exit")
		digest    = flag.Bool("digest", false, "print golden-trace digests (see -scheme)")
		schemeID  = flag.String("scheme", "", "with -digest: restrict to this scheme ID")
		scenarios = flag.String("scenarios", "", "print the scenario files an experiment's runs resolve to (JSON array) and exit")
		budget    = flag.Int64("budget", 150, "offered traffic per run, MiB")
		seed      = flag.Uint64("seed", 1, "random seed")
		quick     = flag.Bool("quick", false, "trim parameter sweeps")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation runs per experiment")
		shards    = flag.Int("shards", 1, "spatial shards per run (>1 partitions each fabric; results are identical); with -digest, also verify the sharded digest matrix")
		progress  = flag.Bool("progress", stderrIsTerminal(), "report per-run progress on stderr")
		auditOn   = flag.Bool("audit", false, "verify packet-conservation invariants; exit 1 on any violation")
		nopool    = flag.Bool("nopool", false, "disable packet recycling (results are identical; for bisection)")
		schedStr  = flag.String("sched", "", "event scheduler: wheel or heap (results are identical; for bisection)")
		jsonOut   = flag.Bool("json", false, "emit one JSON array of tables instead of aligned text")
		impair    = flag.String("impair", "", "inline impairment timeline applied to every run, ';'-separated steps")
		impFile   = flag.String("impair-file", "", "impairment timeline file, text or JSON (see internal/netem/timeline.go)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a post-run allocation profile to this file")
	)
	flag.Parse()
	stopProfiles := cliutil.StartProfiles(*cpuProf, *memProf)
	defer stopProfiles()
	sched := cliutil.Scheduler(*schedStr)
	timeline := cliutil.Timeline(*impair, *impFile)

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}
	if cliutil.Catalogues(*listSch, *listTopo) {
		return
	}
	if *digest {
		printDigests(*schemeID, *shards)
		return
	}
	if *scenarios != "" {
		scfg := experiments.DefaultConfig()
		scfg.Budget = *budget << 20
		scfg.Seed = *seed
		scfg.Quick = *quick
		printScenarios(*scenarios, scfg)
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Budget = *budget << 20
	cfg.Seed = *seed
	cfg.Quick = *quick
	cfg.Parallel = *parallel
	cfg.Shards = *shards
	cfg.DisablePool = *nopool
	cfg.Scheduler = sched
	cfg.Impair = timeline
	if *shards > 1 && timeline != nil {
		fmt.Fprintln(os.Stderr, "-shards > 1 is incompatible with -impair/-impair-file: impairments are engine-local")
		os.Exit(2)
	}
	if *progress {
		cfg.Progress = experiments.ProgressPrinter(os.Stderr)
	}
	var auditMu sync.Mutex
	var violated int
	if *auditOn {
		cfg.Audit = true
		// Runs execute concurrently under the experiment pool; serialize both
		// the tally and the stderr reporting.
		cfg.OnAudit = func(spec experiments.RunSpec, rep *audit.Report) {
			auditMu.Lock()
			defer auditMu.Unlock()
			if !rep.Ok() {
				violated++
				fmt.Fprintf(os.Stderr, "audit (%s on %s): %v\n", spec.Scheme.ID, spec.Topo, rep.Err())
			}
		}
	}

	var jsonTables []experiments.Table
	run := func(e experiments.Experiment) {
		start := time.Now()
		tables := e.Fn(cfg)
		for _, t := range tables {
			switch {
			case *jsonOut:
				jsonTables = append(jsonTables, t)
			case *csv:
				fmt.Printf("# %s,%s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			default:
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		}
		if *progress {
			fmt.Fprint(os.Stderr, "\r                                \r")
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	finish := func() {
		stopProfiles() // the exits below skip defers; flush the profiles first
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(jsonTables); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if violated > 0 {
			fmt.Fprintf(os.Stderr, "audit: %d run(s) violated conservation invariants\n", violated)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		finish()
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
	finish()
}

// printDigests runs the golden trace — pool on and off, under both event
// schedulers, and (with -shards > 1) with that shard count requested on top —
// and prints, per scheme, the behavior digest in the goldenDigests table
// format (for pasting into internal/experiments/golden_test.go after an
// intentional behavior change) alongside the digest of the scenario that
// declares the run: the pair ties "what was run" (scenario identity) to "what
// it did" (behavior). Any divergence across the pool, scheduler or shard
// matrix is an implementation bug, reported and exit 1. An unknown -scheme
// gets the catalogue and exit 2.
func printDigests(id string, shards int) {
	ids := []string{id}
	if id == "" {
		ids = ids[:0]
		for _, e := range experiments.Schemes() {
			ids = append(ids, e.ID)
		}
	}
	shardVals := []int{1}
	if shards > 1 {
		shardVals = append(shardVals, shards)
	}
	for _, id := range ids {
		var ref string
		for _, sched := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
			for _, pool := range []bool{true, false} {
				for _, sh := range shardVals {
					d, err := experiments.GoldenDigestSharded(id, pool, sched, sh)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(2)
					}
					if ref == "" {
						ref = d
					} else if d != ref {
						fmt.Fprintf(os.Stderr, "%s: digest diverges (sched=%s pool=%v shards=%d): %s vs %s\n", id, sched, pool, sh, d, ref)
						os.Exit(1)
					}
				}
			}
		}
		sc := experiments.GoldenScenario(id)
		fmt.Printf("%q: %q, // scenario %s\n", id, ref, sc.Digest())
	}
}

// printScenarios emits the scenario values declaring an experiment's runs as
// a JSON array — each element is a complete scenario file, runnable with
// aeolussim -scenario. Experiments with no scenario-declared runs (the
// analytic fig2, the instrumented fig15/fig16) are reported and exit 2.
func printScenarios(id string, cfg experiments.Config) {
	e, err := experiments.ByID(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if e.Scenarios == nil {
		fmt.Fprintf(os.Stderr, "%s declares no scenario runs (analytic or instrumented microbenchmark)\n", id)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.Scenarios(cfg)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// stderrIsTerminal reports whether stderr is an interactive terminal — the
// default for the \r-style progress line.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
