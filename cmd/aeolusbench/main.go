// Command aeolusbench regenerates the tables and figures of the Aeolus
// paper's evaluation. Each experiment builds the paper's topology, workload
// and schemes on the packet-level simulator and prints the rows the paper
// plots.
//
// Usage:
//
//	aeolusbench -list
//	aeolusbench -exp fig9
//	aeolusbench -exp all -budget 512 -csv
//
// The -budget flag (in MiB of offered traffic per run) trades fidelity for
// time; -quick trims parameter sweeps for a fast pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/aeolus-transport/aeolus/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID (fig1..fig18, table1..table5) or \"all\"")
		list   = flag.Bool("list", false, "list available experiments")
		budget = flag.Int64("budget", 150, "offered traffic per run, MiB")
		seed   = flag.Uint64("seed", 1, "random seed")
		quick  = flag.Bool("quick", false, "trim parameter sweeps")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Budget = *budget << 20
	cfg.Seed = *seed
	cfg.Quick = *quick

	run := func(e experiments.Experiment) {
		start := time.Now()
		tables := e.Fn(cfg)
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s,%s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
