// Command benchjson converts `go test -bench -benchmem` output (stdin) into
// a machine-readable JSON ledger, preserving the "baseline" section of the
// existing output file so regressions stay visible against the committed
// pre-optimization numbers:
//
//	go test -bench . -benchtime 100x -benchmem -run '^$' ./... | benchjson -o BENCH_micro.json
//
// The ledger maps benchmark name (GOMAXPROCS suffix stripped) to ns/op,
// B/op, allocs/op and any custom metrics (e.g. packets/sec).
//
// With -compare, benchjson instead reads BENCH_scale.json ledgers and prints
// per-cell ratios for events/sec, state_bytes_per_flow, heap_peak_bytes and
// peak_pending — flagging throughput that fell below -threshold or memory /
// scheduler pressure that grew beyond 1/threshold — exiting nonzero when any
// metric of any cell regressed:
//
//	benchjson -compare before.json after.json   # after ÷ before, per cell
//	benchjson -compare BENCH_scale.json         # current ÷ baseline, one file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/experiments"
)

// Result is one benchmark's measurements. Custom metrics reported via
// testing.B.ReportMetric land in Metrics keyed by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Ledger is the file layout: the frozen baseline plus the latest run.
type Ledger struct {
	Note     string            `json:"note,omitempty"`
	Baseline map[string]Result `json:"baseline,omitempty"`
	Current  map[string]Result `json:"current"`
}

func main() {
	out := flag.String("o", "BENCH_micro.json", "output file; its baseline section is preserved")
	compare := flag.Bool("compare", false,
		"compare scale ledgers: two files (after ÷ before) or one (current ÷ baseline)")
	threshold := flag.Float64("threshold", 0.9,
		"with -compare, flag cells whose events/sec ratio falls below this, or whose memory/pressure ratios exceed its reciprocal")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(os.Stdout, flag.Args(), *threshold))
	}

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var led Ledger
	if prev, err := os.ReadFile(*out); err == nil {
		// Tolerate a corrupt or hand-edited file: start over but say so.
		if err := json.Unmarshal(prev, &led); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: ignoring unparsable %s: %v\n", *out, err)
			led = Ledger{}
		}
	}
	led.Current = current
	if led.Baseline == nil {
		// First run seeds the baseline; commit it to freeze the reference.
		led.Baseline = current
	}

	buf, err := json.MarshalIndent(&led, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(current), *out)
}

// runCompare loads the requested scale ledgers and prints the per-cell
// comparison, returning the process exit status: 0 when no cell regressed,
// 1 when at least one did, 2 on usage or load errors.
func runCompare(w io.Writer, args []string, threshold float64) int {
	var before, after map[string]experiments.ScalePoint
	var beforeName, afterName string
	switch len(args) {
	case 1:
		led, err := experiments.LoadScaleLedger(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		before, after = led.Baseline, led.Current
		beforeName, afterName = args[0]+":baseline", args[0]+":current"
	case 2:
		var err error
		if before, beforeName, err = loadCells(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		if after, afterName, err = loadCells(args[1]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	default:
		fmt.Fprintln(os.Stderr, "benchjson: -compare wants one or two ledger files")
		return 2
	}
	report, regressed := compareCells(before, after, threshold)
	fmt.Fprintf(w, "events/sec ratio: %s ÷ %s (threshold %g)\n", afterName, beforeName, threshold)
	fmt.Fprint(w, report)
	if regressed > 0 {
		fmt.Fprintf(w, "%d cell(s) regressed\n", regressed)
		return 1
	}
	return 0
}

// loadCells reads one ledger's current section (the measured cells).
func loadCells(path string) (map[string]experiments.ScalePoint, string, error) {
	led, err := experiments.LoadScaleLedger(path)
	if err != nil {
		return nil, "", err
	}
	return led.Current, path + ":current", nil
}

// sideMetrics are the per-cell measurements compared alongside events/sec.
// They are all higher-is-worse: a cell regresses when the after÷before ratio
// exceeds 1/threshold — the mirror image of the events/sec rule — so one
// -threshold flag governs both directions. A metric absent (zero) on either
// side is skipped: old ledgers predate some fields, and a zero divisor has no
// ratio.
var sideMetrics = []struct {
	name string
	val  func(experiments.ScalePoint) float64
}{
	{"state/flow", func(p experiments.ScalePoint) float64 { return p.StateBytesPerFlow }},
	{"heapPeak", func(p experiments.ScalePoint) float64 { return float64(p.HeapPeakBytes) }},
	{"peakPending", func(p experiments.ScalePoint) float64 { return float64(p.PeakPending) }},
}

// compareCells renders the per-cell comparison table for every cell key the
// two sides share, in sorted key order: the events/sec ratio (regressed when
// below threshold) plus the memory and scheduler-pressure ratios (regressed
// when above 1/threshold), counting every flagged metric. Cells present on
// only one side are listed — a silent disappearance would otherwise read as
// "no regression".
func compareCells(before, after map[string]experiments.ScalePoint, threshold float64) (string, int) {
	var keys []string
	for k := range before {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	regressed := 0
	for _, k := range keys {
		a, ok := after[k]
		if !ok {
			fmt.Fprintf(&b, "%-16s only in before ledger\n", k)
			continue
		}
		o := before[k]
		if o.EventsPerSec <= 0 {
			fmt.Fprintf(&b, "%-16s before events/sec is zero; no ratio\n", k)
			continue
		}
		ratio := a.EventsPerSec / o.EventsPerSec
		flag := ""
		if ratio < threshold {
			flag = "  REGRESSED"
			regressed++
		}
		extra := ""
		for _, m := range sideMetrics {
			ov, av := m.val(o), m.val(a)
			if ov <= 0 || av <= 0 {
				continue
			}
			r := av / ov
			tag := ""
			if r*threshold > 1 {
				tag = " REGRESSED"
				regressed++
			}
			extra += fmt.Sprintf("  %s x%.2f%s", m.name, r, tag)
		}
		fmt.Fprintf(&b, "%-16s %11.3g -> %11.3g  x%.2f%s%s\n",
			k, o.EventsPerSec, a.EventsPerSec, ratio, flag, extra)
	}
	var extra []string
	for k := range after {
		if _, ok := before[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		fmt.Fprintf(&b, "%-16s only in after ledger (%.3g events/sec)\n", k, after[k].EventsPerSec)
	}
	return b.String(), regressed
}

// parse extracts benchmark lines. A line looks like:
//
//	BenchmarkPortPath-8   1000   179.5 ns/op   11 B/op   0 allocs/op
//
// with tab-separated "value unit" cells after the iteration count.
func parse(f *os.File) (map[string]Result, error) {
	res := make(map[string]Result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix, but not a -suffix inside a
			// sub-benchmark name that isn't numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := res[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		res[name] = r
	}
	return res, sc.Err()
}
