// Command benchjson converts `go test -bench -benchmem` output (stdin) into
// a machine-readable JSON ledger, preserving the "baseline" section of the
// existing output file so regressions stay visible against the committed
// pre-optimization numbers:
//
//	go test -bench . -benchtime 100x -benchmem -run '^$' ./... | benchjson -o BENCH_micro.json
//
// The ledger maps benchmark name (GOMAXPROCS suffix stripped) to ns/op,
// B/op, allocs/op and any custom metrics (e.g. packets/sec).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Custom metrics reported via
// testing.B.ReportMetric land in Metrics keyed by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Ledger is the file layout: the frozen baseline plus the latest run.
type Ledger struct {
	Note     string            `json:"note,omitempty"`
	Baseline map[string]Result `json:"baseline,omitempty"`
	Current  map[string]Result `json:"current"`
}

func main() {
	out := flag.String("o", "BENCH_micro.json", "output file; its baseline section is preserved")
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var led Ledger
	if prev, err := os.ReadFile(*out); err == nil {
		// Tolerate a corrupt or hand-edited file: start over but say so.
		if err := json.Unmarshal(prev, &led); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: ignoring unparsable %s: %v\n", *out, err)
			led = Ledger{}
		}
	}
	led.Current = current
	if led.Baseline == nil {
		// First run seeds the baseline; commit it to freeze the reference.
		led.Baseline = current
	}

	buf, err := json.MarshalIndent(&led, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(current), *out)
}

// parse extracts benchmark lines. A line looks like:
//
//	BenchmarkPortPath-8   1000   179.5 ns/op   11 B/op   0 allocs/op
//
// with tab-separated "value unit" cells after the iteration count.
func parse(f *os.File) (map[string]Result, error) {
	res := make(map[string]Result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix, but not a -suffix inside a
			// sub-benchmark name that isn't numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := res[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		res[name] = r
	}
	return res, sc.Err()
}
