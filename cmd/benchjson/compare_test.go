package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aeolus-transport/aeolus/internal/experiments"
)

func cell(hosts int, load float64, shards int, eps float64) experiments.ScalePoint {
	return experiments.ScalePoint{Hosts: hosts, Load: load, Shards: shards, EventsPerSec: eps}
}

func TestCompareCells(t *testing.T) {
	before := map[string]experiments.ScalePoint{
		"h1024/l0.8": cell(1024, 0.8, 1, 1.0e6),
		"h64/l0.4":   cell(64, 0.4, 1, 4.0e6),
		"h256/l0.8":  cell(256, 0.8, 1, 2.0e6),
		"gone/l0.4":  cell(16, 0.4, 1, 1.0e6),
		"zero/l0.4":  {Hosts: 4, Load: 0.4},
	}
	after := map[string]experiments.ScalePoint{
		"h1024/l0.8":    cell(1024, 0.8, 1, 0.5e6), // regressed
		"h64/l0.4":      cell(64, 0.4, 1, 4.1e6),   // improved
		"h256/l0.8":     cell(256, 0.8, 1, 1.9e6),  // within threshold
		"h1024/l0.8/s4": cell(1024, 0.8, 4, 2.1e6), // new sharded cell
		"zero/l0.4":     cell(4, 0.4, 1, 1.0e6),
	}
	report, regressed := compareCells(before, after, 0.9)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only h1024/l0.8)\n%s", regressed, report)
	}
	for _, want := range []string{
		"h1024/l0.8       ",
		"x0.50  REGRESSED",
		"x1.02",
		"x0.95",
		"gone/l0.4        only in before ledger",
		"h1024/l0.8/s4    only in after ledger",
		"zero/l0.4        before events/sec is zero",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Count(report, "REGRESSED") != 1 {
		t.Errorf("want exactly one REGRESSED flag:\n%s", report)
	}
}

// TestCompareCellMetrics checks the secondary higher-is-worse ratios: memory
// and scheduler-pressure growth beyond 1/threshold flags a regression even
// when events/sec held steady, and cells missing a metric on either side skip
// it silently.
func TestCompareCellMetrics(t *testing.T) {
	mem := func(eps, stateBpf float64, heap uint64, pending int) experiments.ScalePoint {
		return experiments.ScalePoint{Hosts: 256, Load: 0.8, EventsPerSec: eps,
			StateBytesPerFlow: stateBpf, HeapPeakBytes: heap, PeakPending: pending}
	}
	before := map[string]experiments.ScalePoint{
		"h256/l0.8": mem(2.0e6, 2500, 1<<30, 100_000),
		"h64/l0.4":  cell(64, 0.4, 1, 1.0e6), // no memory metrics on either side
	}
	after := map[string]experiments.ScalePoint{
		// events/sec fine; state/flow grew 1.6x and peak_pending 1.5x, heap flat.
		"h256/l0.8": mem(2.0e6, 4000, 1<<30, 150_000),
		"h64/l0.4":  cell(64, 0.4, 1, 1.0e6),
	}
	report, regressed := compareCells(before, after, 0.9)
	if regressed != 2 {
		t.Fatalf("regressed = %d, want 2 (state/flow and peakPending)\n%s", regressed, report)
	}
	for _, want := range []string{
		"state/flow x1.60 REGRESSED",
		"heapPeak x1.00",
		"peakPending x1.50 REGRESSED",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "heapPeak x1.00 REGRESSED") {
		t.Errorf("flat heap flagged as regressed:\n%s", report)
	}
	// h64 has no memory metrics: its line must stay bare.
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "h64/l0.4") && strings.Contains(line, "state/flow") {
			t.Errorf("metric-less cell grew metric columns: %s", line)
		}
	}
}

func writeLedger(t *testing.T, path string, led experiments.ScaleLedger) {
	t.Helper()
	buf, err := json.Marshal(led)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunCompare drives the CLI entry point over real files: two-ledger form,
// single-ledger (baseline vs current) form, and the error statuses.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	beforePath := filepath.Join(dir, "before.json")
	afterPath := filepath.Join(dir, "after.json")
	ok := map[string]experiments.ScalePoint{"h64/l0.4": cell(64, 0.4, 1, 1.0e6)}
	faster := map[string]experiments.ScalePoint{"h64/l0.4": cell(64, 0.4, 1, 2.0e6)}
	writeLedger(t, beforePath, experiments.ScaleLedger{Current: ok})
	writeLedger(t, afterPath, experiments.ScaleLedger{Current: faster})

	var out strings.Builder
	if got := runCompare(&out, []string{beforePath, afterPath}, 0.9); got != 0 {
		t.Errorf("improvement exited %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "x2.00") {
		t.Errorf("two-file compare missing ratio:\n%s", out.String())
	}

	out.Reset()
	if got := runCompare(&out, []string{afterPath, beforePath}, 0.9); got != 1 {
		t.Errorf("regression exited %d, want 1\n%s", got, out.String())
	}

	// Single-file form: baseline vs current inside one ledger.
	onePath := filepath.Join(dir, "one.json")
	writeLedger(t, onePath, experiments.ScaleLedger{Baseline: ok, Current: faster})
	out.Reset()
	if got := runCompare(&out, []string{onePath}, 0.9); got != 0 {
		t.Errorf("single-ledger compare exited %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "baseline") {
		t.Errorf("single-ledger header should name the baseline side:\n%s", out.String())
	}

	if got := runCompare(&out, nil, 0.9); got != 2 {
		t.Errorf("no-args compare exited %d, want 2", got)
	}
	if got := runCompare(&out, []string{filepath.Join(dir, "missing.json")}, 0.9); got != 2 {
		t.Errorf("missing-file compare exited %d, want 2", got)
	}
}
