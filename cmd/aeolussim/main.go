// Command aeolussim runs ad-hoc simulations from flags and prints a
// summary: pick a topology, a scheme, a workload and a load (and/or an
// incast), and get FCT statistics, efficiency, goodput and drop counters.
//
// Examples:
//
//	aeolussim -topo leafspine -scheme homa+aeolus -workload WebSearch -load 0.5 -flows 2000
//	aeolussim -topo single -scheme xpass+aeolus -incast 7 -msg 40000
//	aeolussim -topo fattree -scheme xpass -workload my-trace.cdf -runs 8 -parallel 4
//	aeolussim -topo 'clos:16x2g8/8/4,hosts=8,rate=100Gbps' -scheme xpass+aeolus -workload WebServer
//	aeolussim -topo micro -scheme ndp+aeolus -incast 16 -audit \
//	    -impair '0s sw0->* loss rate=0.01; 50us sw0->h0 fail; 150us sw0->h0 restore'
//	aeolussim -scheme xpass+aeolus -incast 7 -dump-scenario json > run.json
//	aeolussim -scenario run.json
//
// -topo accepts a catalogue name (-list-topos for the catalogue) or an ad-hoc
// parameterized Clos spec in the "clos:" grammar of internal/netem; an
// unknown name is rejected up front with the catalogue listing.
//
// -workload accepts either a built-in name or the path of a CDF file in the
// "<bytes> <cumulative probability>" text format. With -runs N the same
// experiment repeats over N consecutive seeds — executed concurrently on
// -parallel workers — and a cross-run summary is appended; results are
// independent of -parallel.
//
// -impair (inline steps) or -impair-file (text or JSON file) script link
// impairments — loss, failure, rate caps, delay — on the built topology; see
// internal/netem/timeline.go for the grammar. Injected drops show up in the
// drops line as impair=N and are audit-accounted like any other drop.
//
// -dump-scenario json|text prints the canonical scenario (internal/scenario)
// that the current flags resolve to, instead of running it; feeding that file
// back through -scenario reproduces the flag-driven run bit-identically. With
// -scenario, the run is fully determined by the scenario file: flags that
// would change what the run computes (-topo, -scheme, -seed, ...) are
// rejected, while runtime knobs (-audit, -parallel, -nopool, -trace, -cdf)
// and an explicit -sched still apply.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"

	"github.com/aeolus-transport/aeolus/internal/cliutil"
	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/scenario"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/stats"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

// semanticFlags are the flags that change what a run computes — exactly the
// information a scenario file carries. With -scenario they are rejected, so a
// scenario can never be silently half-overridden from the command line.
var semanticFlags = map[string]bool{
	"topo": true, "scheme": true, "opt": true, "workload": true, "load": true,
	"flows": true, "budget": true, "incast": true, "msg": true, "buffer": true,
	"threshold": true, "rto": true, "seed": true, "deadline": true,
	"impair": true, "impair-file": true, "runs": true,
}

func main() {
	var (
		topo     = flag.String("topo", "leafspine", "topology: catalogue name (-list-topos) or clos:<spec>")
		scheme   = flag.String("scheme", "xpass+aeolus", "scheme ID (-list-schemes for the catalogue)")
		listSch  = flag.Bool("list-schemes", false, "print the scheme catalogue and exit")
		listTopo = flag.Bool("list-topos", false, "print the topology catalogue and exit")
		wlName   = flag.String("workload", "", "workload name (WebServer, CacheFollower, WebSearch, DataMining) or CDF file path")
		load     = flag.Float64("load", 0.4, "core load for the Poisson workload")
		flows    = flag.Int("flows", 0, "flow count (0 = derive from -budget)")
		budget   = flag.Int64("budget", 64, "offered traffic, MiB (when -flows is 0)")
		incast   = flag.Int("incast", 0, "add an N-to-1 incast with this fan-in")
		msg      = flag.Int64("msg", 64_000, "incast message size, bytes")
		buffer   = flag.Int64("buffer", 0, "per-port buffer bytes (0 = 200KB)")
		thresh   = flag.Int64("threshold", 0, "selective dropping threshold bytes (0 = default)")
		rtoUs    = flag.Int64("rto", 0, "RTO override, microseconds (0 = scheme default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		runs     = flag.Int("runs", 1, "repeat over this many consecutive seeds")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs (with -runs > 1)")
		shards   = flag.Int("shards", 1, "spatial shards per run (>1 partitions the fabric across goroutines; results are identical)")
		deadline = flag.Int64("deadline", 500, "extra simulated time after last arrival, ms")
		trace    = flag.Uint64("trace", 0, "print a packet trace for this flow ID")
		cdf      = flag.Bool("cdf", false, "print the small-flow FCT CDF (the paper's figure format)")
		auditOn  = flag.Bool("audit", false, "verify packet-conservation invariants; exit 1 on any violation")
		nopool   = flag.Bool("nopool", false, "disable packet recycling (results are identical; for bisection)")
		schedStr = flag.String("sched", "", "event scheduler: wheel or heap (results are identical; for bisection)")
		impair   = flag.String("impair", "", "inline impairment timeline, ';'-separated steps (e.g. '0s sw0->* loss rate=0.01; 50us sw0->h0 fail; 150us sw0->h0 restore')")
		impFile  = flag.String("impair-file", "", "impairment timeline file, text or JSON (see internal/netem/timeline.go)")
		scenFile = flag.String("scenario", "", "run this scenario file (JSON or canonical text) instead of building the run from flags")
		dumpScen = flag.String("dump-scenario", "", "print the canonical scenario the flags resolve to, in this form (json or text), and exit")
	)
	opts := map[string]string{}
	flag.Func("opt", "scheme option as key=value (repeatable; keys are per-scheme)", func(s string) error {
		k, v, ok := strings.Cut(s, "=")
		if !ok || k == "" {
			return fmt.Errorf("want key=value, got %q", s)
		}
		opts[k] = v
		return nil
	})
	flag.Parse()

	if cliutil.Catalogues(*listSch, *listTopo) {
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Budget = *budget << 20
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.Shards = *shards
	cfg.Audit = *auditOn
	cfg.DisablePool = *nopool
	cfg.Scheduler = cliutil.Scheduler(*schedStr)
	cfg.Trace.TraceFlow = *trace

	if *scenFile != "" {
		flag.Visit(func(f *flag.Flag) {
			if semanticFlags[f.Name] {
				cliutil.Die(fmt.Errorf("-%s conflicts with -scenario: the scenario file determines the run; edit it (or regenerate with -dump-scenario) instead", f.Name))
			}
		})
		sc := cliutil.LoadScenario(*scenFile)
		if *dumpScen != "" {
			dumpScenario(sc, *dumpScen)
			return
		}
		sem, spec, err := experiments.FromScenario(sc)
		if err != nil {
			cliutil.Die(err)
		}
		run := cfg.ForScenario(sem)
		if cfg.Scheduler != "" {
			// An explicit -sched is a bisection knob and outranks the
			// scenario's pin; results are identical either way.
			run.Scheduler = cfg.Scheduler
		}
		r := experiments.Run(run, spec)
		print1(r, *cdf)
		exitOnViolations([]experiments.RunResult{r})
		return
	}

	wl := cliutil.Workload(*wlName)
	if wl == nil && *incast == 0 {
		fmt.Fprintln(os.Stderr, "nothing to send: give -workload and/or -incast")
		os.Exit(2)
	}
	if *runs < 1 {
		*runs = 1
	}
	tl := cliutil.Timeline(*impair, *impFile)
	if *shards > 1 && tl != nil {
		cliutil.Die(fmt.Errorf("-shards > 1 is incompatible with -impair/-impair-file: impairments are engine-local"))
	}

	specFor := func(runSeed uint64) experiments.RunSpec {
		spec := experiments.RunSpec{
			Scheme: experiments.SchemeSpec{
				ID: *scheme, Workload: wl, Opts: opts,
				RTO:       sim.Duration(*rtoUs) * sim.Microsecond,
				Threshold: *thresh, Seed: runSeed,
			},
			Topo: *topo, Buffer: *buffer,
			Workload: wl, CoreLoad: *load, Flows: *flows,
			Deadline: sim.Duration(*deadline) * sim.Millisecond,
			Impair:   tl,
		}
		if *incast > 0 {
			spec.Incast = &workload.IncastConfig{
				Fanin: *incast, Receiver: 0, MsgSize: *msg, Seed: runSeed,
				StartAt: sim.Time(10 * sim.Microsecond),
			}
		}
		return spec
	}

	// Validate the topology, the scheme (ID and -opt values) and the
	// impairment timeline's targets up front: a bad spec gets an error on
	// stderr instead of a panic mid-run.
	cliutil.Topo(*topo)
	if _, err := experiments.MakeScheme(specFor(*seed).Scheme); err != nil {
		cliutil.Die(err)
	}
	if err := experiments.CheckImpair(cfg, specFor(*seed)); err != nil {
		cliutil.Die(err)
	}

	if *dumpScen != "" {
		sc, err := experiments.ToScenario(cfg, specFor(*seed))
		if err != nil {
			cliutil.Die(err)
		}
		dumpScenario(sc, *dumpScen)
		return
	}

	if *runs == 1 {
		r := experiments.Run(cfg, specFor(*seed))
		print1(r, *cdf)
		exitOnViolations([]experiments.RunResult{r})
		return
	}

	// Seed-replicated mode: the same experiment over consecutive seeds, fanned
	// across the pool. Each run derives everything from its own seed, so the
	// output is identical for every -parallel value.
	pool := experiments.NewPool(cfg)
	for i := 0; i < *runs; i++ {
		pool.Submit(specFor(*seed + uint64(i)))
	}
	results := pool.Collect()
	var smallMeans, allMeans, effs []float64
	for i, r := range results {
		fmt.Printf("run %-3d seed=%-5d small mean=%sus p99=%sus | all mean=%sus max=%sus | eff=%.3f timeouts=%d\n",
			i, *seed+uint64(i),
			stats.FormatDur(r.Small.Mean), stats.FormatDur(r.Small.P99),
			stats.FormatDur(r.All.Mean), stats.FormatDur(r.All.Max),
			r.Efficiency, r.TimeoutFlows)
		smallMeans = append(smallMeans, r.Small.Mean.Microseconds())
		allMeans = append(allMeans, r.All.Mean.Microseconds())
		effs = append(effs, r.Efficiency)
	}
	fmt.Printf("\nacross %d seeds (%s, %s):\n", *runs, results[0].Scheme, *topo)
	fmt.Printf("  small-flow mean FCT  %.2f ± %.2f us\n", mean(smallMeans), stddev(smallMeans))
	fmt.Printf("  all-flow mean FCT    %.2f ± %.2f us\n", mean(allMeans), stddev(allMeans))
	fmt.Printf("  efficiency           %.3f ± %.3f\n", mean(effs), stddev(effs))
	exitOnViolations(results)
}

// dumpScenario prints the scenario in the requested interchange form. File
// references are inlined first, so the dump is self-contained: running it
// elsewhere needs no CDF files lying around.
func dumpScenario(sc *scenario.Scenario, form string) {
	if err := sc.Inline(); err != nil {
		cliutil.Die(err)
	}
	switch form {
	case "json":
		buf, err := sc.JSON()
		if err != nil {
			cliutil.Die(err)
		}
		os.Stdout.Write(buf)
	case "text":
		fmt.Print(sc.Text())
	default:
		cliutil.Die(fmt.Errorf("-dump-scenario: want json or text, got %q", form))
	}
}

// exitOnViolations prints every audit violation and exits nonzero when any
// audited run failed an invariant.
func exitOnViolations(results []experiments.RunResult) {
	bad := false
	for i, r := range results {
		if r.Audit == nil || r.Audit.Ok() {
			continue
		}
		bad = true
		fmt.Fprintf(os.Stderr, "run %d: %v\n", i, r.Audit.Err())
	}
	if bad {
		os.Exit(1)
	}
}

func print1(r experiments.RunResult, cdf bool) {
	fmt.Printf("scheme       %s\n", r.Scheme)
	fmt.Printf("flows        %d/%d completed\n", r.Completed, r.Total)
	fmt.Printf("small flows  n=%d p50=%sus p99=%sus p99.9=%sus mean=%sus in1RTT=%.3f\n",
		r.Small.N, stats.FormatDur(r.Small.P50), stats.FormatDur(r.Small.P99),
		stats.FormatDur(r.Small.P999), stats.FormatDur(r.Small.Mean), r.FirstRTTFrac)
	fmt.Printf("all flows    n=%d mean=%sus max=%sus slowdown(mean)=%.1f slowdown(p99)=%.1f\n",
		r.All.N, stats.FormatDur(r.All.Mean), stats.FormatDur(r.All.Max),
		r.All.MeanSlowdown, r.All.P99Slowdown)
	fmt.Printf("efficiency   %.3f\n", r.Efficiency)
	fmt.Printf("goodput      %.3f (whole run)   %.3f (steady window)\n", r.Goodput, r.WindowGoodput)
	fmt.Printf("timeouts     %d flows\n", r.TimeoutFlows)
	fmt.Printf("drops        tail=%d selective=%d credit=%d trim-fail=%d impair=%d\n",
		r.Drops[0], r.Drops[1], r.Drops[2], r.Drops[3], r.Drops[4])
	if a := r.Audit; a != nil {
		fmt.Printf("audit        %d events: injected=%d delivered=%d (unique %d) dropped=%d trimmed=%d residual=%d violations=%d\n",
			a.Events, a.InjectedPayload, a.DeliveredPayload, a.UniquePayload,
			a.DroppedPayload, a.TrimmedPayload, a.ResidualPayload, len(a.Violations)+a.Truncated)
	}
	if cdf {
		fmt.Println("\n# small-flow FCT CDF: fct_us cumulative_fraction")
		for _, pt := range r.SmallCDF {
			fmt.Printf("%.2f %.4f\n", pt[0], pt[1])
		}
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)-1))
}
