// Command workloadgen samples flow traces from the paper's workload
// distributions and prints them (or summary statistics). It also regenerates
// the analytic Figure 2 table (-fig2).
//
// Examples:
//
//	workloadgen -workload WebSearch -flows 1000 -hosts 64 -load 0.4
//	workloadgen -workload DataMining -stats
//	workloadgen -workload my-trace.cdf -stats
//	workloadgen -workload WebServer -dump-cdf > webserver.cdf
//	workloadgen -fig2
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aeolus-transport/aeolus/internal/experiments"
	"github.com/aeolus-transport/aeolus/internal/sim"
	"github.com/aeolus-transport/aeolus/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "WebSearch", "workload name or CDF file path")
		dump   = flag.Bool("dump-cdf", false, "print the workload in the CDF text format and exit")
		flows  = flag.Int("flows", 100, "flows to sample")
		hosts  = flag.Int("hosts", 64, "hosts to draw endpoints from")
		load   = flag.Float64("load", 0.4, "target edge load")
		rate   = flag.Int64("gbps", 100, "edge link rate, Gbps")
		seed   = flag.Uint64("seed", 1, "random seed")
		stat   = flag.Bool("stats", false, "print distribution statistics instead of a trace")
		fig2   = flag.Bool("fig2", false, "print the Figure 2 analytic table")
	)
	flag.Parse()

	if *fig2 {
		for _, t := range experiments.Fig2(experiments.DefaultConfig()) {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		return
	}

	wl, err := workload.Resolve(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *dump {
		fmt.Print(wl.Text())
		return
	}
	if *stat {
		fmt.Printf("workload      %s\n", wl.Name())
		fmt.Printf("mean          %.0f bytes\n", wl.Mean())
		for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
			fmt.Printf("p%-12.0f %.0f bytes\n", p*100, wl.Quantile(p))
		}
		fmt.Printf("P(<=100KB)    %.3f\n", wl.Fraction(100e3))
		fmt.Printf("P(100KB-1MB)  %.3f\n", wl.Fraction(1e6)-wl.Fraction(100e3))
		fmt.Printf("P(>1MB)       %.3f\n", 1-wl.Fraction(1e6))
		return
	}

	cfg := workload.PoissonConfig{
		CDF: wl, Hosts: *hosts, HostRate: sim.Rate(*rate) * sim.Gbps,
		Load: *load, Flows: *flows, Seed: *seed,
	}
	fmt.Println("# id src dst size_bytes start_us")
	for _, f := range cfg.Generate() {
		fmt.Printf("%d %d %d %d %.3f\n", f.ID, f.Src, f.Dst, f.Size, f.Start.Microseconds())
	}
}
