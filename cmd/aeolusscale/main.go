// Command aeolusscale runs the open-loop scale sweep (experiment "scale")
// over the full {64, 256, 1024}-host × {0.4, 0.8}-load grid and records the
// measurements in a JSON ledger:
//
//	aeolusscale -o BENCH_scale.json
//	aeolusscale -quick          # 64- and 256-host fabrics only
//
// The ledger keeps a frozen "baseline" section alongside the latest run
// (same layout as cmd/benchjson): the first write seeds the baseline, and
// committing the file freezes the reference the scale-smoke CI gates compare
// against. Cells run serially, smallest fabric first, because wall-clock
// throughput and the kernel's RSS high-water mark are process-wide.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/aeolus-transport/aeolus/internal/cliutil"
	"github.com/aeolus-transport/aeolus/internal/experiments"
)

func main() {
	var (
		out      = flag.String("o", "BENCH_scale.json", "output ledger; its baseline section is preserved")
		note     = flag.String("note", "open-loop scale sweep: leafspine n x n, WebServer, xpass+aeolus, 100 flows/host", "ledger note (kept if the file already has one)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "trim the grid to the 64- and 256-host fabrics")
		schedStr = flag.String("sched", "", "event scheduler: wheel or heap")
		shards   = flag.Int("shards", 1, "spatial shards per run; sharded cells get a /sN ledger key and merge alongside the sequential ones")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a post-sweep allocation profile to this file")
	)
	flag.Parse()
	stopProfiles := cliutil.StartProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Quick = *quick
	cfg.Shards = *shards
	cfg.Scheduler = cliutil.Scheduler(*schedStr)
	cfg.Progress = func(done, total int, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "[%d/%d cells, %v]\n", done, total, elapsed.Round(100*time.Millisecond))
	}

	points := experiments.RunScaleGrid(cfg)
	for _, p := range points {
		fmt.Printf("%-12s %9d flows  %12d events  %7.2fs  %10.3g ev/s  peak pending %8d  heap %6.1f MB  %5.0f B/flow  audit %s\n",
			p.Key(), p.Flows, p.Events, p.WallSeconds, p.EventsPerSec,
			p.PeakPending, float64(p.HeapPeakBytes)/(1<<20), p.StateBytesPerFlow,
			map[bool]string{true: "clean", false: "VIOLATED"}[p.AuditClean])
	}
	stopProfiles() // os.Exit below skips defers; flush the profiles first
	if err := experiments.WriteScaleLedger(*out, *note, points); err != nil {
		fmt.Fprintln(os.Stderr, "aeolusscale:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aeolusscale: wrote %d cells to %s\n", len(points), *out)
	for _, p := range points {
		if !p.AuditClean {
			fmt.Fprintln(os.Stderr, "aeolusscale: audit violations; see the audit_clean fields")
			os.Exit(1)
		}
	}
}
